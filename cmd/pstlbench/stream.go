package main

import (
	"fmt"
	"runtime"

	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/stream"
)

// runStreamSim prints the simulated STREAM row for the paper's machines —
// the Table 2 calibration the memory-system model must reproduce.
func runStreamSim() {
	t := &report.Table{
		Title:   "Simulated STREAM bandwidth (GB/s)",
		Headers: []string{"Machine", "1 core", "all cores"},
	}
	for _, m := range machine.CPUs() {
		t.AddRow(m.Name,
			fmt.Sprintf("%.1f", stream.Simulated(m, 1)),
			fmt.Sprintf("%.1f", stream.Simulated(m, m.Cores)))
	}
	fmt.Print(t.String())
}

// runStreamNative measures the host's STREAM bandwidth over a worker sweep
// (n elements per array, 3 arrays x 8 bytes; best of 3 per kernel).
func runStreamNative(n int) {
	t := &report.Table{
		Title:   fmt.Sprintf("Native STREAM, %d elements/array", n),
		Headers: []string{"Workers", "Copy", "Scale", "Add", "Triad (GB/s)"},
	}
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		r := stream.Native(w, n, 3)
		t.AddRow(fmt.Sprintf("%d", w),
			fmt.Sprintf("%.2f", r.Copy), fmt.Sprintf("%.2f", r.Scale),
			fmt.Sprintf("%.2f", r.Add), fmt.Sprintf("%.2f", r.Triad))
	}
	fmt.Print(t.String())
}
