// Command pstlbench runs the pSTL-Bench micro-benchmarks.
//
// Two modes exist:
//
//   - sim (default): measure the paper's five kernels on a simulated
//     machine under a chosen compiler/runtime backend, reproducing the
//     paper's experimental conditions (Mach A-E, GCC/ICC/NVC x
//     TBB/GNU/HPX/OMP/CUDA);
//   - native: measure this library's real parallel algorithms on the host
//     with a chosen scheduling strategy and worker count.
//
// Two auxiliary modes run the STREAM bandwidth benchmark (internal/stream)
// that calibrates the memory-bound expectations of Table 2's last row:
// stream-sim prints the simulated Mach A/B/C row, stream-native sweeps the
// host with 1..GOMAXPROCS workers. (These lived in cmd/pstlstream before
// that command became the streaming-plane driver.)
//
// Examples:
//
//	pstlbench -mode sim -machine a -backend GCC-TBB,NVC-OMP -algo for_each -minexp 10 -maxexp 24
//	pstlbench -mode native -strategy stealing -workers 8 -algo reduce,sort -maxexp 20
//	pstlbench -mode stream-native -maxexp 24
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/counters"
	"pstlbench/internal/exec"
	"pstlbench/internal/harness"
	"pstlbench/internal/kernels"
	"pstlbench/internal/machine"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/trace"
	"pstlbench/internal/tune"
)

func main() {
	var (
		mode      = flag.String("mode", "sim", "sim (simulated machines), native (this host), stream-sim, or stream-native (STREAM bandwidth)")
		machName  = flag.String("machine", "a", "simulated machine: a, b, c, d, e")
		backends  = flag.String("backend", "all", "comma-separated backend IDs (GCC-SEQ, GCC-TBB, GCC-GNU, GCC-HPX, ICC-TBB, NVC-OMP, NVC-CUDA) or 'all'")
		algos     = flag.String("algo", "all", "comma-separated kernels, 'all' (the five studied), or 'extended' (the full native set)")
		kit       = flag.Int("kit", 1, "for_each computational intensity (k_it)")
		minExp    = flag.Int("minexp", 10, "smallest problem size exponent (2^minexp elements)")
		maxExp    = flag.Int("maxexp", 24, "largest problem size exponent")
		threads   = flag.Int("threads", 0, "thread count (0 = all cores of the machine / GOMAXPROCS)")
		alloc     = flag.String("alloc", "first-touch", "allocation strategy: default or first-touch (sim mode)")
		strategy  = flag.String("strategy", "stealing", "native scheduling strategy: seq, forkjoin, stealing, centralqueue")
		numaSteal = flag.Bool("numa-steal", false, "NUMA-aware steal order: scan same-node victims before remote ones (sim: stealing backends; native: workers pinned to the -machine topology)")
		workers   = flag.Int("workers", 0, "native worker count (0 = GOMAXPROCS)")
		minTime   = flag.Duration("mintime", 200*time.Millisecond, "minimum measuring time per benchmark (native mode)")
		grainName = flag.String("grain", "", "grain policy: auto, static, fine, guided, or adaptive (online tuner keyed by loop site/size/workers; sim mode overrides the backend's own grain)")
		tuneCache = flag.String("tune-cache", "", "JSON tuning-cache file for -grain=adaptive: imported before the run when present (warm start), rewritten after")
		fused     = flag.Bool("fused", false, "add fused-vs-staged pipeline chain benchmarks (3-stage element-wise chains; sim and native modes) with modeled traffic columns")
		filter    = flag.String("filter", "", "regexp filter on benchmark instance names")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut   = flag.Bool("json", false, "emit JSON records instead of a table")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or ui.perfetto.dev; summarize with pstlreport -trace)")
	)
	flag.Parse()

	// The STREAM bandwidth modes are standalone: no suite, no filters.
	switch *mode {
	case "stream-sim":
		runStreamSim()
		return
	case "stream-native":
		// -maxexp sets the array size (2^maxexp elements, 3 arrays x 8 B).
		runStreamNative(1 << *maxExp)
		return
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fatal("bad -filter: %v", err)
		}
	}

	gs := parseGrain(*grainName)
	if gs.adaptive {
		gs.tuner = tune.New(tune.Options{})
		if *tuneCache != "" {
			if n, err := gs.tuner.LoadFile(*tuneCache); err != nil {
				fatal("%v", err)
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "pstlbench: warm-started tuner with %d cached entries from %s\n", n, *tuneCache)
			}
		}
	} else if *tuneCache != "" {
		fatal("-tune-cache requires -grain=adaptive")
	}

	selKernels := selectKernels(*algos)
	suite := &harness.Suite{Registry: counters.NewRegistry(), Tuner: gs.tuner}
	tracing := *traceOut != ""
	switch *mode {
	case "sim":
		suite.Tracer = registerSim(suite, *machName, *backends, selKernels, *kit, *minExp, *maxExp, *threads, *alloc, *numaSteal, tracing, gs)
		if *fused {
			registerFusedSim(suite, *machName, *backends, *minExp, *maxExp, *threads, *alloc)
		}
	case "native":
		suite.Tracer = registerNative(suite, *strategy, *workers, selKernels, *kit, *minExp, *maxExp, *minTime, *machName, *numaSteal, tracing, gs, *fused)
	default:
		fatal("unknown -mode %q", *mode)
	}

	results := suite.Run(re)
	harness.SortResults(results)
	if tracing {
		writeTrace(*traceOut, suite.Tracer)
	}
	if gs.adaptive {
		reportTuner(gs.tuner, *tuneCache)
	}
	if *jsonOut {
		emitJSON(results)
		return
	}
	t := &report.Table{
		Headers: []string{"Benchmark", "Iterations", "Time/call", "Stddev", "P99", "GiB/s", "Traffic/call"},
	}
	for _, r := range results {
		stddev, p99 := "-", "-"
		if s := r.Latency; s.Calls > 1 {
			stddev = fmt.Sprintf("%.3g s", s.StdDev)
			p99 = fmt.Sprintf("%.3g s", s.P99)
		}
		traffic := "-"
		if r.TrafficBytes > 0 {
			traffic = fmt.Sprintf("%.1f MiB", float64(r.TrafficBytes)/(1<<20))
		}
		t.AddRow(r.FullName(),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.6g s", r.Seconds),
			stddev,
			p99,
			fmt.Sprintf("%.2f", r.BytesPerSec/(1<<30)),
			traffic)
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}

// writeTrace exports the tracer's event stream as a Chrome trace-event
// JSON file.
func writeTrace(path string, tr *trace.Tracer) {
	f, err := os.Create(path)
	if err != nil {
		fatal("creating trace file: %v", err)
	}
	if err := trace.WriteChrome(f, tr); err != nil {
		fatal("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("closing trace file: %v", err)
	}
	fmt.Fprintf(os.Stderr, "pstlbench: wrote %d trace events to %s (%d lost to ring overflow); open in ui.perfetto.dev or summarize with: pstlreport -trace %s\n",
		tr.TotalEvents()-tr.Lost(), path, tr.Lost(), path)
}

// jsonRecord is the machine-readable result schema, one line per
// benchmark instance (JSON Lines).
type jsonRecord struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	Seconds    float64 `json:"seconds_per_call"`
	// Per-call Seconds spread over every timed sample of the instance.
	SecondsStdDev float64 `json:"seconds_stddev,omitempty"`
	SecondsMin    float64 `json:"seconds_min,omitempty"`
	SecondsMax    float64 `json:"seconds_max,omitempty"`
	SecondsP50    float64 `json:"seconds_p50,omitempty"`
	SecondsP99    float64 `json:"seconds_p99,omitempty"`
	BytesPerSec   float64 `json:"bytes_per_sec,omitempty"`
	// Modeled DRAM traffic per call (pipeline chains under -fused).
	TrafficBytes int64 `json:"traffic_bytes,omitempty"`
	// Modeled counters, when the simulator produced them.
	Instructions float64 `json:"instructions,omitempty"`
	DRAMBytes    float64 `json:"dram_bytes,omitempty"`
	// Event-stream distributions of the measured attempt, when tracing.
	ChunkP50        float64 `json:"chunk_p50,omitempty"`
	ChunkP95        float64 `json:"chunk_p95,omitempty"`
	ChunkMax        float64 `json:"chunk_max,omitempty"`
	StealToWorkP50  float64 `json:"steal_to_work_p50,omitempty"`
	TraceEvents     uint64  `json:"trace_events,omitempty"`
	TraceLostEvents uint64  `json:"trace_lost_events,omitempty"`
}

func emitJSON(results []harness.Result) {
	enc := json.NewEncoder(os.Stdout)
	for _, r := range results {
		rec := jsonRecord{
			Name:         r.FullName(),
			Iterations:   r.Iterations,
			Seconds:      r.Seconds,
			BytesPerSec:  r.BytesPerSec,
			TrafficBytes: r.TrafficBytes,
		}
		if s := r.Latency; s.Calls > 1 {
			rec.SecondsStdDev = s.StdDev
			rec.SecondsMin = s.Min
			rec.SecondsMax = s.Max
			rec.SecondsP50 = s.P50
			rec.SecondsP99 = s.P99
		}
		if r.HasCounters && r.Iterations > 0 {
			rec.Instructions = r.Counters.Instructions / float64(r.Iterations)
			rec.DRAMBytes = r.Counters.DRAMBytes / float64(r.Iterations)
		}
		if t := r.Trace; t != nil {
			rec.ChunkP50 = t.Chunk.P50
			rec.ChunkP95 = t.Chunk.P95
			rec.ChunkMax = t.Chunk.Max
			rec.StealToWorkP50 = t.StealToWork.P50
			rec.TraceEvents = t.Events
			rec.TraceLostEvents = t.Lost
		}
		if err := enc.Encode(rec); err != nil {
			fatal("encoding JSON: %v", err)
		}
	}
}

// grainSpec is the parsed -grain flag: a fixed named grain overriding the
// mode's default, or the adaptive tuner.
type grainSpec struct {
	adaptive bool
	override bool
	g        exec.Grain
	tuner    *tune.Tuner
}

func parseGrain(name string) grainSpec {
	switch name {
	case "":
		return grainSpec{}
	case "auto":
		return grainSpec{override: true, g: exec.Auto}
	case "static":
		return grainSpec{override: true, g: exec.Static}
	case "fine":
		return grainSpec{override: true, g: exec.Fine}
	case "guided":
		return grainSpec{override: true, g: exec.Guided}
	case "adaptive":
		return grainSpec{adaptive: true}
	}
	fatal("unknown -grain %q (auto, static, fine, guided, adaptive)", name)
	panic("unreachable")
}

// reportTuner prints the tuner's operating points to stderr and rewrites
// the tuning cache, if one was named.
func reportTuner(tn *tune.Tuner, cachePath string) {
	if cachePath != "" {
		if err := tn.SaveFile(cachePath); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "pstlbench: wrote tuning cache (%d entries) to %s\n",
			len(tn.Export().Entries), cachePath)
	}
	for _, k := range tn.Keys() {
		chunk, tp, ok := tn.Best(k)
		if !ok {
			continue
		}
		state := "exploring"
		if tn.Converged(k) {
			state = "converged"
		}
		fmt.Fprintf(os.Stderr, "pstlbench: tune %s: chunk=%d (%.3g items/s, %s)\n", k, chunk, tp, state)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pstlbench: "+format+"\n", args...)
	os.Exit(2)
}

func selectKernels(spec string) []kernels.Kernel {
	switch spec {
	case "all":
		return kernels.All()
	case "extended":
		return kernels.Extended()
	}
	var out []kernels.Kernel
	for _, name := range strings.Split(spec, ",") {
		k, ok := kernels.ExtByName(strings.TrimSpace(name))
		if !ok {
			fatal("unknown kernel %q", name)
		}
		out = append(out, k)
	}
	return out
}

func selectBackends(spec string) []*backend.Backend {
	if spec == "all" {
		return backend.All()
	}
	var out []*backend.Backend
	for _, id := range strings.Split(spec, ",") {
		b := backend.ByID(strings.TrimSpace(id))
		if b == nil {
			fatal("unknown backend %q", id)
		}
		out = append(out, b)
	}
	return out
}

// registerSim adds one benchmark per (kernel, backend) with the size sweep
// as range arguments; each iteration reports the simulator's virtual time
// via manual timing. With tracing, it returns a virtual-time tracer with
// one track per simulated core plus the harness marker track.
func registerSim(suite *harness.Suite, machName, backendSpec string, ks []kernels.Kernel, kit, minExp, maxExp, threads int, allocName string, numaSteal, tracing bool, gs grainSpec) *trace.Tracer {
	m := machine.ByName(machName)
	if m == nil {
		fatal("unknown machine %q", machName)
	}
	if threads <= 0 || threads > m.Cores {
		threads = m.Cores
	}
	var tr *trace.Tracer
	if tracing {
		tr = trace.NewVirtual(threads+1, trace.DefaultCapacity)
		for c := 0; c < threads; c++ {
			tr.SetLabel(c, fmt.Sprintf("core %d", c))
		}
		tr.SetLabel(threads, "harness")
	}
	var alloc allocsim.Strategy
	switch allocName {
	case "default":
		alloc = allocsim.Default
	case "first-touch", "firsttouch", "ft":
		alloc = allocsim.FirstTouch
	default:
		fatal("unknown -alloc %q", allocName)
	}
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	for _, k := range ks {
		if !k.Sim {
			continue // extended kernels are native-only
		}
		for _, b := range selectBackends(backendSpec) {
			if b.IsGPU() && m.GPU == nil {
				continue
			}
			b.NUMASteal = numaSteal // fresh per selectBackends call
			k, b := k, b
			site := fmt.Sprintf("%s/%s/%s", k.Name, machName, b.ID)
			tunable := gs.adaptive && !b.IsGPU()
			suite.Register(harness.Benchmark{
				Name: site,
				Args: args,
				Fn: func(st *harness.State) {
					n := st.Range(0)
					// The backend is copied so a grain override (fixed or
					// per-invocation adaptive proposal) stays local to this
					// instance.
					bb := *b
					if gs.override {
						bb.Grain = gs.g
					}
					var key tune.Key
					if tunable {
						key = tune.Key{Site: site, N: int(n), Workers: threads}
						st.Tune(key)
					}
					for st.Next() {
						if tunable {
							bb.Grain = gs.tuner.Propose(key)
						}
						r := simexec.Run(simexec.Config{
							Machine: m, Backend: &bb,
							Workload: skeleton.Workload{Op: k.Op, N: n, ElemBytes: 8, Kit: kit, HitFrac: 0.5},
							Threads:  threads, Alloc: alloc,
							TransferBack: bb.IsGPU(),
							Tracer:       tr,
						})
						st.SetIterationTime(r.Seconds)
						st.RecordCounters(r.Counters)
					}
					st.SetBytesProcessed(int64(st.Iterations()) * n * 8)
				},
			})
		}
	}
	return tr
}

// registerNative adds benchmarks running the real Go library on the host.
// With numaSteal, the pool's victim selection follows the -machine
// topology, as if the workers were pinned to that machine's core layout.
// With tracing, it returns a wall-clock tracer with one track per pool
// worker, a caller track, and the harness marker track.
func registerNative(suite *harness.Suite, strategyName string, workers int, ks []kernels.Kernel, kit, minExp, maxExp int, minTime time.Duration, machName string, numaSteal, tracing bool, gs grainSpec, fused bool) *trace.Tracer {
	var policy core.Policy
	var tr *trace.Tracer
	switch strategyName {
	case "seq":
		policy = core.Seq()
		if tracing {
			// Sequential runs have no scheduler; only harness markers.
			tr = trace.New(1, trace.DefaultCapacity)
			tr.SetLabel(0, "harness")
		}
	case "forkjoin", "stealing", "centralqueue":
		var s native.Strategy
		switch strategyName {
		case "forkjoin":
			s = native.StrategyForkJoin
		case "stealing":
			s = native.StrategyStealing
		default:
			s = native.StrategyCentralQueue
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		topo := native.Topology{}
		if numaSteal {
			m := machine.ByName(machName)
			if m == nil {
				fatal("unknown machine %q", machName)
			}
			topo = native.TopologyFromMachine(m, workers)
		}
		if tracing {
			tr = trace.New(workers+2, trace.DefaultCapacity)
			for w := 0; w < workers; w++ {
				tr.SetLabel(w, fmt.Sprintf("worker %d", w))
			}
			tr.SetLabel(workers, "caller")
			tr.SetLabel(workers+1, "harness")
		}
		pool := native.NewTraced(workers, s, topo, tr)
		// The pool lives for the process lifetime; no Close needed.
		policy = core.Par(pool).WithGrain(exec.Auto)
		if gs.override {
			policy = policy.WithGrain(gs.g)
		}
		if gs.adaptive {
			// The harness differences these snapshots to attribute the
			// pool's steal/park/spin traffic to each iteration.
			suite.TuneSched = func() counters.Set { return pool.Stats().Counters() }
		}
	default:
		fatal("unknown -strategy %q", strategyName)
	}
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	for _, k := range ks {
		k := k
		site := fmt.Sprintf("%s/native/%s", k.Name, strategyName)
		suite.Register(harness.Benchmark{
			Name:    site,
			Args:    args,
			MinTime: minTime,
			Fn: func(st *harness.State) {
				n := int(st.Range(0))
				p := policy
				if gs.adaptive && p.Pool != nil {
					// Observations key on the problem size; loops running at
					// other sizes (e.g. a scan's chunk-count loop) propose
					// under their own keys and stay at exec.Auto.
					st.Tune(tune.Key{Site: site, N: n, Workers: p.Pool.Workers()})
					p = p.WithGrainSource(gs.tuner.Site(site))
				}
				k.Body(p, n, kit)(st)
			},
		})
	}
	if fused {
		registerFusedNative(suite, policy, minTime, minExp, maxExp, gs)
	}
	return tr
}

// registerFusedNative adds the staged-vs-fused 3-stage chain benchmarks on
// the real library: the same chain run as separate core passes with a
// materialized intermediate, and as one fused pipeline pass. Each instance
// reports its modeled DRAM traffic (pipeline.ModelTraffic) next to the
// measured time — the traffic column the JSON records carry as
// traffic_bytes.
func registerFusedNative(suite *harness.Suite, policy core.Policy, minTime time.Duration, minExp, maxExp int, gs grainSpec) {
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	f := func(v float64) float64 { return v*3 + 1 }
	g := func(v float64) float64 { return v * 0.5 }
	gen := func(i int) float64 { return float64((uint64(i+1) * 6364136223846793005) >> 40) }

	register := func(site string, traffic func(n int) int64, body func(p core.Policy, n int, st *harness.State)) {
		suite.Register(harness.Benchmark{
			Name: site, Args: args, MinTime: minTime,
			Fn: func(st *harness.State) {
				n := int(st.Range(0))
				p := policy
				if gs.adaptive && p.Pool != nil {
					st.Tune(tune.Key{Site: site, N: n, Workers: p.Pool.Workers()})
					p = p.WithGrainSource(gs.tuner.Site(site))
				}
				body(p, n, st)
				st.SetItemsProcessed(int64(st.Iterations()) * int64(n))
				st.SetTrafficBytes(int64(st.Iterations()) * traffic(n))
			},
		})
	}

	// Traffic models come from the skeleton chain constants, which the
	// skeleton tests pin to pipeline.ModelTraffic.
	fromChain := skeleton.Chain{Stages: 2, Terminal: "reduce"}
	genChain := skeleton.Chain{Stages: 2, Terminal: "reduce", Generate: true}
	perElem := func(c skeleton.Chain, fusedRun bool) func(n int) int64 {
		return func(n int) int64 {
			if fusedRun {
				return int64(c.FusedBytesPerElem() * float64(n))
			}
			return int64(c.StagedBytesPerElem() * float64(n))
		}
	}

	register("chain_sum/native/staged", perElem(fromChain, false),
		func(p core.Policy, n int, st *harness.State) {
			src := chainSrc(n)
			tmp := make([]float64, n)
			for st.Next() {
				core.Transform(p, tmp, src, f)
				core.Transform(p, tmp, tmp, g)
				sink = core.Sum(p, tmp, 0)
			}
		})
	register("chain_sum/native/fused", perElem(fromChain, true),
		func(p core.Policy, n int, st *harness.State) {
			src := chainSrc(n)
			pl := pipeline.From(src).Transform(f).Transform(g)
			for st.Next() {
				sink = pipeline.Sum(p, pl, 0)
			}
		})
	register("chain_gen_sum/native/staged", perElem(genChain, false),
		func(p core.Policy, n int, st *harness.State) {
			tmp := make([]float64, n)
			for st.Next() {
				core.Generate(p, tmp, gen)
				core.Transform(p, tmp, tmp, f)
				core.Transform(p, tmp, tmp, g)
				sink = core.Sum(p, tmp, 0)
			}
		})
	register("chain_gen_sum/native/fused", perElem(genChain, true),
		func(p core.Policy, n int, st *harness.State) {
			pl := pipeline.Generate(n, gen).Transform(f).Transform(g)
			for st.Next() {
				sink = pipeline.Sum(p, pl, 0)
			}
		})
}

// sink defeats dead-code elimination of the benchmark bodies.
var sink float64

// chainSrc builds the slice source for the chain benchmarks.
func chainSrc(n int) []float64 {
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i % 4096)
	}
	return src
}

// registerFusedSim adds simulated staged-vs-fused chain benchmarks: the
// chain skeletons run through simexec.RunPhases on the selected machine,
// predicting the traffic drop the native rows measure.
func registerFusedSim(suite *harness.Suite, machName, backendSpec string, minExp, maxExp, threads int, allocName string) {
	m := machine.ByName(machName)
	if m == nil {
		fatal("unknown machine %q", machName)
	}
	if threads <= 0 || threads > m.Cores {
		threads = m.Cores
	}
	var alloc allocsim.Strategy
	if allocName == "default" {
		alloc = allocsim.Default
	} else {
		alloc = allocsim.FirstTouch
	}
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	chain := skeleton.Chain{Stages: 2, Terminal: "reduce"}
	for _, b := range selectBackends(backendSpec) {
		if b.IsGPU() || b.IsSequential() {
			continue
		}
		for _, fusedRun := range []bool{false, true} {
			b, fusedRun := b, fusedRun
			disc := "staged"
			if fusedRun {
				disc = "fused"
			}
			suite.Register(harness.Benchmark{
				Name: fmt.Sprintf("chain_sum/%s/%s/%s", machName, b.ID, disc),
				Args: args,
				Fn: func(st *harness.State) {
					n := st.Range(0)
					w := skeleton.Workload{Op: backend.OpTransform, N: n, ElemBytes: 8, Kit: 1}
					var phases []skeleton.Phase
					var par bool
					if fusedRun {
						phases, par = skeleton.FusedChainPhases(w, chain, b, threads, m)
					} else {
						phases, par = skeleton.StagedChainPhases(w, chain, b, threads, m)
					}
					for st.Next() {
						r := simexec.RunPhases(simexec.Config{
							Machine: m, Backend: b, Workload: w,
							Threads: threads, Alloc: alloc,
						}, phases, skeleton.ChainWorkingSet(w, chain, fusedRun), par)
						st.SetIterationTime(r.Seconds)
						st.RecordCounters(r.Counters)
					}
					perElem := chain.StagedBytesPerElem()
					if fusedRun {
						perElem = chain.FusedBytesPerElem()
					}
					st.SetBytesProcessed(int64(st.Iterations()) * n * 8)
					st.SetTrafficBytes(int64(st.Iterations()) * int64(perElem*float64(n)))
				},
			})
		}
	}
}
