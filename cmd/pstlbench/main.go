// Command pstlbench runs the pSTL-Bench micro-benchmarks.
//
// Two modes exist:
//
//   - sim (default): measure the paper's five kernels on a simulated
//     machine under a chosen compiler/runtime backend, reproducing the
//     paper's experimental conditions (Mach A-E, GCC/ICC/NVC x
//     TBB/GNU/HPX/OMP/CUDA);
//   - native: measure this library's real parallel algorithms on the host
//     with a chosen scheduling strategy and worker count.
//
// Examples:
//
//	pstlbench -mode sim -machine a -backend GCC-TBB,NVC-OMP -algo for_each -minexp 10 -maxexp 24
//	pstlbench -mode native -strategy stealing -workers 8 -algo reduce,sort -maxexp 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/harness"
	"pstlbench/internal/kernels"
	"pstlbench/internal/machine"
	"pstlbench/internal/native"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
)

func main() {
	var (
		mode     = flag.String("mode", "sim", "sim (simulated machines) or native (this host)")
		machName = flag.String("machine", "a", "simulated machine: a, b, c, d, e")
		backends = flag.String("backend", "all", "comma-separated backend IDs (GCC-SEQ, GCC-TBB, GCC-GNU, GCC-HPX, ICC-TBB, NVC-OMP, NVC-CUDA) or 'all'")
		algos    = flag.String("algo", "all", "comma-separated kernels, 'all' (the five studied), or 'extended' (the full native set)")
		kit      = flag.Int("kit", 1, "for_each computational intensity (k_it)")
		minExp   = flag.Int("minexp", 10, "smallest problem size exponent (2^minexp elements)")
		maxExp   = flag.Int("maxexp", 24, "largest problem size exponent")
		threads  = flag.Int("threads", 0, "thread count (0 = all cores of the machine / GOMAXPROCS)")
		alloc    = flag.String("alloc", "first-touch", "allocation strategy: default or first-touch (sim mode)")
		strategy = flag.String("strategy", "stealing", "native scheduling strategy: seq, forkjoin, stealing, centralqueue")
		numaSteal = flag.Bool("numa-steal", false, "NUMA-aware steal order: scan same-node victims before remote ones (sim: stealing backends; native: workers pinned to the -machine topology)")
		workers  = flag.Int("workers", 0, "native worker count (0 = GOMAXPROCS)")
		minTime  = flag.Duration("mintime", 200*time.Millisecond, "minimum measuring time per benchmark (native mode)")
		filter   = flag.String("filter", "", "regexp filter on benchmark instance names")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut  = flag.Bool("json", false, "emit JSON records instead of a table")
	)
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fatal("bad -filter: %v", err)
		}
	}

	selKernels := selectKernels(*algos)
	suite := &harness.Suite{}
	switch *mode {
	case "sim":
		registerSim(suite, *machName, *backends, selKernels, *kit, *minExp, *maxExp, *threads, *alloc, *numaSteal)
	case "native":
		registerNative(suite, *strategy, *workers, selKernels, *kit, *minExp, *maxExp, *minTime, *machName, *numaSteal)
	default:
		fatal("unknown -mode %q", *mode)
	}

	results := suite.Run(re)
	harness.SortResults(results)
	if *jsonOut {
		emitJSON(results)
		return
	}
	t := &report.Table{
		Headers: []string{"Benchmark", "Iterations", "Time/call", "GiB/s"},
	}
	for _, r := range results {
		t.AddRow(r.FullName(),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.6g s", r.Seconds),
			fmt.Sprintf("%.2f", r.BytesPerSec/(1<<30)))
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}

// jsonRecord is the machine-readable result schema, one line per
// benchmark instance (JSON Lines).
type jsonRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	Seconds     float64 `json:"seconds_per_call"`
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// Modeled counters, when the simulator produced them.
	Instructions float64 `json:"instructions,omitempty"`
	DRAMBytes    float64 `json:"dram_bytes,omitempty"`
}

func emitJSON(results []harness.Result) {
	enc := json.NewEncoder(os.Stdout)
	for _, r := range results {
		rec := jsonRecord{
			Name:        r.FullName(),
			Iterations:  r.Iterations,
			Seconds:     r.Seconds,
			BytesPerSec: r.BytesPerSec,
		}
		if r.HasCounters && r.Iterations > 0 {
			rec.Instructions = r.Counters.Instructions / float64(r.Iterations)
			rec.DRAMBytes = r.Counters.DRAMBytes / float64(r.Iterations)
		}
		if err := enc.Encode(rec); err != nil {
			fatal("encoding JSON: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pstlbench: "+format+"\n", args...)
	os.Exit(2)
}

func selectKernels(spec string) []kernels.Kernel {
	switch spec {
	case "all":
		return kernels.All()
	case "extended":
		return kernels.Extended()
	}
	var out []kernels.Kernel
	for _, name := range strings.Split(spec, ",") {
		k, ok := kernels.ExtByName(strings.TrimSpace(name))
		if !ok {
			fatal("unknown kernel %q", name)
		}
		out = append(out, k)
	}
	return out
}

func selectBackends(spec string) []*backend.Backend {
	if spec == "all" {
		return backend.All()
	}
	var out []*backend.Backend
	for _, id := range strings.Split(spec, ",") {
		b := backend.ByID(strings.TrimSpace(id))
		if b == nil {
			fatal("unknown backend %q", id)
		}
		out = append(out, b)
	}
	return out
}

// registerSim adds one benchmark per (kernel, backend) with the size sweep
// as range arguments; each iteration reports the simulator's virtual time
// via manual timing.
func registerSim(suite *harness.Suite, machName, backendSpec string, ks []kernels.Kernel, kit, minExp, maxExp, threads int, allocName string, numaSteal bool) {
	m := machine.ByName(machName)
	if m == nil {
		fatal("unknown machine %q", machName)
	}
	if threads <= 0 {
		threads = m.Cores
	}
	var alloc allocsim.Strategy
	switch allocName {
	case "default":
		alloc = allocsim.Default
	case "first-touch", "firsttouch", "ft":
		alloc = allocsim.FirstTouch
	default:
		fatal("unknown -alloc %q", allocName)
	}
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	for _, k := range ks {
		if !k.Sim {
			continue // extended kernels are native-only
		}
		for _, b := range selectBackends(backendSpec) {
			if b.IsGPU() && m.GPU == nil {
				continue
			}
			b.NUMASteal = numaSteal // fresh per selectBackends call
			k, b := k, b
			suite.Register(harness.Benchmark{
				Name: fmt.Sprintf("%s/%s/%s", k.Name, machName, b.ID),
				Args: args,
				Fn: func(st *harness.State) {
					n := st.Range(0)
					for st.Next() {
						r := simexec.Run(simexec.Config{
							Machine: m, Backend: b,
							Workload: skeleton.Workload{Op: k.Op, N: n, ElemBytes: 8, Kit: kit, HitFrac: 0.5},
							Threads:  threads, Alloc: alloc,
							TransferBack: b.IsGPU(),
						})
						st.SetIterationTime(r.Seconds)
						st.RecordCounters(r.Counters)
					}
					st.SetBytesProcessed(int64(st.Iterations()) * n * 8)
				},
			})
		}
	}
}

// registerNative adds benchmarks running the real Go library on the host.
// With numaSteal, the pool's victim selection follows the -machine
// topology, as if the workers were pinned to that machine's core layout.
func registerNative(suite *harness.Suite, strategyName string, workers int, ks []kernels.Kernel, kit, minExp, maxExp int, minTime time.Duration, machName string, numaSteal bool) {
	var policy core.Policy
	switch strategyName {
	case "seq":
		policy = core.Seq()
	case "forkjoin", "stealing", "centralqueue":
		var s native.Strategy
		switch strategyName {
		case "forkjoin":
			s = native.StrategyForkJoin
		case "stealing":
			s = native.StrategyStealing
		default:
			s = native.StrategyCentralQueue
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		topo := native.Topology{}
		if numaSteal {
			m := machine.ByName(machName)
			if m == nil {
				fatal("unknown machine %q", machName)
			}
			topo = native.TopologyFromMachine(m, workers)
		}
		pool := native.NewWithTopology(workers, s, topo)
		// The pool lives for the process lifetime; no Close needed.
		policy = core.Par(pool).WithGrain(exec.Auto)
	default:
		fatal("unknown -strategy %q", strategyName)
	}
	var args [][]int64
	for e := minExp; e <= maxExp; e++ {
		args = append(args, []int64{1 << e})
	}
	for _, k := range ks {
		k := k
		suite.Register(harness.Benchmark{
			Name:    fmt.Sprintf("%s/native/%s", k.Name, strategyName),
			Args:    args,
			MinTime: minTime,
			Fn: func(st *harness.State) {
				k.Body(policy, int(st.Range(0)), kit)(st)
			},
		})
	}
}
