package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
)

// runWatch is the live dashboard: it polls a running pstld's /stats and
// redraws a terminal frame every interval. It works against both shapes —
// a single server and the sharded router (detected by the "shards" field)
// — and needs only the public HTTP surface, so it can watch any pstld it
// can reach.
func runWatch(base string, interval time.Duration, frames int) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; frames <= 0 || i < frames; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		body, err := fetchStats(client, base+"/stats")
		if err != nil {
			fatal("watch %s: %v", base, err)
		}
		frame, err := renderFrame(base, body)
		if err != nil {
			fatal("watch %s: %v", base, err)
		}
		// Home the cursor and clear to end of screen: flicker-free refresh.
		fmt.Fprint(os.Stdout, "\x1b[H\x1b[2J"+frame)
	}
}

func fetchStats(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// renderFrame builds one dashboard frame from a /stats body.
func renderFrame(base string, body []byte) (string, error) {
	var probe struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return "", fmt.Errorf("bad /stats body: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pstld %s  %s\n\n", base, time.Now().Format("15:04:05"))
	if probe.Shards > 0 {
		var st shard.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			return "", err
		}
		renderRouter(&b, st)
	} else {
		var st serve.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			return "", err
		}
		renderServer(&b, "", st)
	}
	return b.String(), nil
}

func renderRouter(b *strings.Builder, st shard.Stats) {
	fmt.Fprintf(b, "router: shards=%d sched=%s joblog=%v accepted=%d completed=%d rejected=%d\n",
		st.Shards, st.Discipline, st.Joblog, st.Accepted, st.Completed, st.Rejected)
	fmt.Fprintf(b, "        spills=%d migrations=%d replayed=%d recovered=%d backlog=%d\n\n",
		st.Spills, st.Migrations, st.Replayed, st.Recovered, st.Backlog)
	t := &report.Table{Headers: []string{"Shard", "Load", "", "Queued", "Running", "Completed"}}
	for _, ss := range st.PerShard {
		t.AddRow(fmt.Sprintf("%d", ss.Shard),
			fmt.Sprintf("%.2f", ss.Load), loadBar(ss.Load, 20),
			fmt.Sprintf("%d", ss.Queued), fmt.Sprintf("%d", ss.Running),
			fmt.Sprintf("%d", ss.Completed))
	}
	b.WriteString(t.String())
	for _, ss := range st.PerShard {
		if len(ss.Tenants) > 0 {
			b.WriteString("\n")
			renderServer(b, fmt.Sprintf("shard %d ", ss.Shard), ss.Stats)
		}
	}
}

func renderServer(b *strings.Builder, prefix string, st serve.Stats) {
	fmt.Fprintf(b, "%ssched=%s workers=%d queued=%d running=%d load=%.2f %s\n",
		prefix, st.Discipline, st.Workers, st.Queued, st.Running, st.Load, loadBar(st.Load, 20))
	fmt.Fprintf(b, "%saccepted=%d completed=%d canceled=%d rejected=%d expired=%d\n",
		strings.Repeat(" ", len(prefix)), st.Accepted, st.Completed, st.Canceled, st.Rejected, st.Expired)
	if st.TraceEvents > 0 || st.TraceLost > 0 {
		fmt.Fprintf(b, "%strace: events=%d lost=%d occupancy=%.0f%%\n",
			strings.Repeat(" ", len(prefix)), st.TraceEvents, st.TraceLost, 100*st.TraceOccupancy)
	}
	if len(st.Tenants) == 0 {
		return
	}
	win := "window"
	if st.WindowSeconds > 0 {
		win = fmt.Sprintf("last %.0fs", st.WindowSeconds)
	}
	t := &report.Table{Headers: []string{"Tenant", "Done", "Rej",
		"p50", "p99", "p50 (" + win + ")", "p99 (" + win + ")", "Burn"}}
	for _, ts := range st.Tenants {
		burn := "-"
		if ts.SLOSeconds > 0 {
			burn = fmt.Sprintf("%.2f", ts.BurnRate)
		}
		wp50, wp99 := "-", "-"
		if ts.WindowJobs > 0 {
			wp50 = fmt.Sprintf("%.3g s", ts.WindowP50Seconds)
			wp99 = fmt.Sprintf("%.3g s", ts.WindowP99Seconds)
		}
		t.AddRow(ts.Tenant, fmt.Sprintf("%d", ts.Completed), fmt.Sprintf("%d", ts.Rejected),
			fmt.Sprintf("%.3g s", ts.P50Seconds), fmt.Sprintf("%.3g s", ts.P99Seconds),
			wp50, wp99, burn)
	}
	b.WriteString(t.String())
}

// loadBar renders a fixed-width ASCII gauge for a 0..1+ load signal.
func loadBar(load float64, width int) string {
	fill := int(load * float64(width))
	if fill < 0 {
		fill = 0
	}
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}
