// Command pstld is the algorithm-serving daemon: it exposes the parallel
// algorithm library as a long-running multi-tenant HTTP service on one
// shared work-stealing pool, with bounded admission queues, weighted fair
// scheduling across tenants, and cooperative job cancellation.
//
// Daemon mode:
//
//	pstld -addr :8080 -workers 8 -sched wfq -queue-cap 64 -max-concurrent 2 -weights gold=3,bronze=1
//
//	curl -s -X POST localhost:8080/jobs -d '{"kernel":"sort","n":1048576,"tenant":"gold","deadline_ms":5000}'
//	curl -s localhost:8080/jobs/job-1
//	curl -s -X DELETE localhost:8080/jobs/job-1
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics        # Prometheus text exposition
//	curl -s localhost:8080/spans          # terminal job lifecycle spans
//
// Observability is always on in daemon mode: /metrics serves queue depth,
// per-shard load, per-tenant latency histograms and more in Prometheus
// text format (no client library needed); /spans serves the last -span-log
// terminal job lifecycle spans; -slo sets a per-tenant latency objective
// whose rolling-window burn rate shows up in /stats and /metrics. Watch
// mode turns any reachable pstld's /stats into a live terminal dashboard:
//
//	pstld -watch localhost:8080 -watch-interval 1s
//
// Load-generator mode runs a closed-loop workload against an in-process
// server (each simulated client submits, waits, and immediately resubmits)
// and reports per-tenant latency and fairness:
//
//	pstld -loadgen -duration 2s -sched wfq \
//	    -spec "big:1:sort:1048576:4,small:1:reduce:65536:2"
//
// The -spec format is tenant:weight:kernel:n:clients, comma-separated.
//
// Sharded mode fronts N in-process server shards (each with its own pool)
// behind a consistent-hash router with load-aware overflow, and -joblog
// makes the tier restart-safe: a killed daemon replays the log on startup
// and resumes its queue with no acknowledged job lost and no completed
// job re-run:
//
//	pstld -addr :8080 -shards 4 -workers 2 -joblog /var/run/pstld.jsonl
//
// Distributed mode moves the shards into separate worker processes. Each
// worker is a single serve.Server exposing the worker RPC surface
// (submit/poll/withdraw/healthz); the router drives them over HTTP with
// health-checked failover — a SIGKILLed worker is detected by missed
// heartbeats and its acknowledged backlog is re-placed on the survivors:
//
//	pstld -worker -addr :9001
//	pstld -worker -addr :9002
//	pstld -addr :8080 -peers http://127.0.0.1:9001,http://127.0.0.1:9002
//
// A new worker can join a live ring; consistent hashing keeps the remap
// to roughly 1/(N+1) of tenants:
//
//	pstld -worker -addr :9003 -join http://127.0.0.1:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pstlbench/internal/cluster"
	"pstlbench/internal/obs"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address (daemon mode)")
		workers  = flag.Int("workers", 0, "pool worker count (0 = GOMAXPROCS)")
		strategy = flag.String("strategy", "stealing", "pool scheduling strategy: forkjoin, stealing, centralqueue")
		sched    = flag.String("sched", "wfq", "job-level discipline: wfq or fifo")
		queueCap = flag.Int("queue-cap", 64, "admission queue bound (jobs waiting beyond it are rejected with Retry-After)")
		maxConc  = flag.Int("max-concurrent", 1, "jobs running on the pool at once")
		weights  = flag.String("weights", "", "per-tenant WFQ weights, e.g. gold=3,bronze=1")
		smallMax = flag.Int("small-job-max", 0, "batch same-tenant jobs of n <= this into one pool submission (0 disables)")
		batchMax = flag.Int("batch-max", 16, "max jobs coalesced into one batched submission")
		shards   = flag.Int("shards", 1, "server shards behind the consistent-hash router (1 = single server, no router)")
		joblog   = flag.String("joblog", "", "append-only job log path for restart-safe serving (enables the router)")
		quota    = flag.Int("quota", 0, "per-tenant queued-job quota (0 disables)")
		retain   = flag.Int("retain-done", 1024, "terminal job records retained for status queries (-1 = unbounded)")
		loadgen  = flag.Bool("loadgen", false, "run the closed-loop load generator instead of serving HTTP")
		duration = flag.Duration("duration", 2*time.Second, "loadgen run time")
		spec     = flag.String("spec", "big:1:sort:262144:4,small:1:reduce:16384:2",
			"loadgen workload: tenant:weight:kernel:n:clients, comma-separated")
		slo       = flag.Duration("slo", 0, "per-tenant latency objective behind the burn-rate gauges (0 disables)")
		sloTarget = flag.Float64("slo-target", 0.99, "fraction of jobs that must meet -slo")
		window    = flag.Duration("window", 5*time.Second, "rolling latency window width")
		windows   = flag.Int("windows", 16, "rolling latency windows retained")
		spanCap   = flag.Int("span-log", 4096, "terminal job lifecycle spans retained for /spans (0 disables)")
		watchURL  = flag.String("watch", "", "watch mode: live dashboard polling this pstld base URL instead of serving")
		watchIvl  = flag.Duration("watch-interval", time.Second, "watch mode refresh interval")
		watchN    = flag.Int("watch-count", 0, "watch mode frames before exiting (0 = until interrupted)")
		worker    = flag.Bool("worker", false, "worker mode: serve one shard's RPC surface for a remote router")
		peers     = flag.String("peers", "", "comma-separated worker base URLs to drive as remote shards (router mode)")
		joinURL   = flag.String("join", "", "worker mode: router base URL to join once the listener is up")
		advertise = flag.String("advertise", "", "worker mode: base URL the router dials back (default derived from -addr)")
		heartbeat = flag.Duration("heartbeat", 250*time.Millisecond, "cluster heartbeat interval")
		suspectN  = flag.Int("suspect-after", 2, "consecutive failed heartbeats before a shard is suspect")
		deadN     = flag.Int("dead-after", 5, "consecutive failed heartbeats before a shard is dead and its backlog re-placed")
	)
	flag.Parse()

	if *watchURL != "" {
		runWatch(*watchURL, *watchIvl, *watchN)
		return
	}

	disc, ok := serve.ParseDiscipline(*sched)
	if !ok {
		fatal("unknown -sched %q (wfq, fifo)", *sched)
	}
	cfg := serve.Config{
		Workers:       *workers,
		Strategy:      *strategy,
		Discipline:    disc,
		QueueCap:      *queueCap,
		MaxConcurrent: *maxConc,
		Weights:       parseWeights(*weights),
		SmallJobMax:   *smallMax,
		BatchMax:      *batchMax,
		TenantQuota:   *quota,
		RetainDone:    *retain,
		SLOObjective:  *slo,
		SLOTarget:     *sloTarget,
		WindowWidth:   *window,
		WindowCount:   *windows,
	}

	if *loadgen {
		runLoadgen(cfg, *spec, *duration)
		return
	}

	// Observability is always on in daemon mode: the registry and span ring
	// cost nothing on the job path beyond atomic updates, and /metrics +
	// /spans are only routed when these are non-nil.
	metrics := obs.NewRegistry()
	var spanLog *obs.SpanLog
	if *spanCap > 0 {
		spanLog = obs.NewSpanLog(*spanCap)
	}

	// Worker mode: one serve.Server exposing the worker RPC surface; the
	// shard placement brain lives in the router process driving it.
	if *worker {
		cfg.Metrics = metrics
		cfg.Spans = spanLog
		runWorker(cfg, *addr, *advertise, *joinURL)
		return
	}

	// Sharded mode: a router over N shards — in-process with -shards, or
	// separate worker processes with -peers. The single-server path below
	// stays untouched when neither is asked for.
	if *shards > 1 || *joblog != "" || *peers != "" {
		scfg := shard.Config{
			Shards:     *shards,
			Serve:      cfg,
			LogPath:    *joblog,
			RetainDone: *retain,
			Metrics:    metrics,
			Spans:      spanLog,
		}
		if *peers != "" {
			cm := obs.NewClusterMetrics(metrics)
			dial := func(url string) (shard.ShardHandle, error) {
				return cluster.NewRemoteShard(cluster.RemoteConfig{
					Client: cluster.ClientConfig{BaseURL: url, Metrics: cm, Peer: url},
				}), nil
			}
			for _, u := range strings.Split(*peers, ",") {
				if u = strings.TrimSpace(u); u == "" {
					continue
				}
				h, _ := dial(u)
				scfg.Handles = append(scfg.Handles, h)
			}
			if len(scfg.Handles) == 0 {
				fatal("-peers lists no worker URLs")
			}
			scfg.Join = dial
			scfg.HeartbeatEvery = *heartbeat
			scfg.SuspectAfter = *suspectN
			scfg.DeadAfter = *deadN
		}
		runRouter(scfg, *addr, disc)
		return
	}

	cfg.Metrics = metrics
	cfg.Spans = spanLog
	s := serve.New(cfg)
	fmt.Fprintf(os.Stderr, "pstld: serving on %s (workers=%d sched=%s queue-cap=%d max-concurrent=%d)\n",
		*addr, s.Stats().Workers, disc, *queueCap, *maxConc)
	serveAndDrain(&http.Server{Handler: s.Handler()}, listen(*addr), s.Close)
}

// listen binds the daemon's address up front so the "listening" log line
// and any -join announcement only happen once the socket is really open.
func listen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	return ln
}

// serveAndDrain runs the listener until SIGINT/SIGTERM, drains in-flight
// HTTP exchanges via Shutdown, and only then closes the backing tier — a
// status query racing shutdown gets its response, not a connection reset,
// and jobs accepted before the signal still reach a terminal state.
func serveAndDrain(httpSrv *http.Server, ln net.Listener, closeBackend func()) {
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "pstld: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if httpSrv.Shutdown(ctx) != nil {
			httpSrv.Close()
		}
		close(drained)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("%v", err)
	}
	<-drained
	closeBackend()
}

// runWorker serves one shard over the worker RPC surface and, with -join,
// announces itself to a live router once the listener is up.
func runWorker(cfg serve.Config, addr, advertise, joinURL string) {
	s := serve.New(cfg)
	ln := listen(addr)
	self := advertise
	if self == "" {
		self = deriveAdvertise(ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "pstld: worker on %s (advertise %s, workers=%d)\n",
		ln.Addr(), self, s.Stats().Workers)
	if joinURL != "" {
		go func() {
			if err := cluster.Join(joinURL, self, 5*time.Second); err != nil {
				fatal("join %s: %v", joinURL, err)
			}
			fmt.Fprintf(os.Stderr, "pstld: joined ring at %s\n", joinURL)
		}()
	}
	serveAndDrain(&http.Server{Handler: s.Handler()}, ln, s.Close)
}

// deriveAdvertise turns the bound listener address into a base URL the
// router can dial back: an unspecified bind host becomes loopback.
func deriveAdvertise(a net.Addr) string {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return "http://" + a.String()
	}
	host := ta.IP.String()
	if ta.IP == nil || ta.IP.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, strconv.Itoa(ta.Port))
}

// runRouter serves the sharded tier: same HTTP surface as the single
// server, plus per-shard stats, (with -joblog) crash-safe replay, and
// (with -peers) remote shards with health-checked failover and /cluster/join.
func runRouter(cfg shard.Config, addr string, disc serve.Discipline) {
	r, err := shard.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	st := r.Stats()
	if len(cfg.Handles) > 0 {
		fmt.Fprintf(os.Stderr, "pstld: router on %s (remote shards=%d healthy=%d heartbeat=%v joblog=%q replayed=%d recovered=%d)\n",
			addr, st.Shards, st.HealthyShards, cfg.HeartbeatEvery, cfg.LogPath, st.Replayed, st.Recovered)
	} else {
		fmt.Fprintf(os.Stderr, "pstld: serving on %s (shards=%d workers=%d sched=%s joblog=%q replayed=%d recovered=%d)\n",
			addr, st.Shards, st.PerShard[0].Workers, disc, cfg.LogPath, st.Replayed, st.Recovered)
	}
	serveAndDrain(&http.Server{Handler: r.Handler()}, listen(addr), r.Close)
}

// tenantSpec is one parsed -spec entry.
type tenantSpec struct {
	tenant  string
	weight  float64
	kernel  string
	n       int
	clients int
}

func parseSpec(s string) []tenantSpec {
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 5 {
			fatal("bad -spec entry %q, want tenant:weight:kernel:n:clients", part)
		}
		w, err1 := strconv.ParseFloat(f[1], 64)
		n, err2 := strconv.Atoi(f[3])
		c, err3 := strconv.Atoi(f[4])
		if err1 != nil || err2 != nil || err3 != nil || w <= 0 || n < 1 || c < 1 {
			fatal("bad -spec entry %q", part)
		}
		if !serve.KernelValid(f[2]) {
			fatal("bad -spec entry %q: unknown kernel %q", part, f[2])
		}
		out = append(out, tenantSpec{tenant: f[0], weight: w, kernel: f[2], n: n, clients: c})
	}
	return out
}

func parseWeights(s string) map[string]float64 {
	if s == "" {
		return nil
	}
	m := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			fatal("bad -weights entry %q, want tenant=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w <= 0 {
			fatal("bad -weights entry %q", part)
		}
		m[kv[0]] = w
	}
	return m
}

// runLoadgen drives a closed loop against an in-process server: every
// client submits one job, waits for it, and immediately submits the next —
// so offered load tracks service capacity and the queue stays saturated,
// which is exactly the regime where the discipline choice shows.
func runLoadgen(cfg serve.Config, specStr string, dur time.Duration) {
	specs := parseSpec(specStr)
	if cfg.Weights == nil {
		cfg.Weights = make(map[string]float64)
	}
	for _, ts := range specs {
		cfg.Weights[ts.tenant] = ts.weight
	}
	s := serve.New(cfg)
	defer s.Close()

	var stop atomic.Bool
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for _, ts := range specs {
		for c := 0; c < ts.clients; c++ {
			ts := ts
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					j, err := s.Submit(serve.Spec{Kernel: ts.kernel, N: ts.n, Tenant: ts.tenant})
					if err != nil {
						var sat *serve.SaturatedError
						if errors.As(err, &sat) {
							rejected.Add(1)
							// Closed loop with backpressure: honor the hint
							// (capped so shutdown stays prompt).
							d := sat.RetryAfter
							if d > 50*time.Millisecond {
								d = 50 * time.Millisecond
							}
							time.Sleep(d)
							continue
						}
						fatal("loadgen submit: %v", err)
					}
					<-j.Done()
				}
			}()
		}
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()

	st := s.Stats()
	fmt.Printf("pstld loadgen: sched=%s workers=%d duration=%v completed=%d canceled=%d rejected=%d (client-observed %d)\n",
		st.Discipline, st.Workers, dur, st.Completed, st.Canceled, st.Rejected, rejected.Load())
	t := &report.Table{Headers: []string{"Tenant", "Completed", "Rejected", "Mean", "p50", "p99", "Jobs/s"}}
	for _, ts := range st.Tenants {
		t.AddRow(ts.Tenant,
			fmt.Sprintf("%d", ts.Completed),
			fmt.Sprintf("%d", ts.Rejected),
			fmt.Sprintf("%.3g s", ts.MeanSeconds),
			fmt.Sprintf("%.3g s", ts.P50Seconds),
			fmt.Sprintf("%.3g s", ts.P99Seconds),
			fmt.Sprintf("%.1f", float64(ts.Completed)/dur.Seconds()))
	}
	fmt.Print(t.String())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pstld: "+format+"\n", args...)
	os.Exit(2)
}
