// Command pstlreport regenerates the paper's tables and figures from the
// simulated machines:
//
//	pstlreport                    # every experiment, full scale
//	pstlreport -exp fig2,tab5     # selected experiments
//	pstlreport -scale 6           # shrink 2^30 workloads to 2^24
//	pstlreport -list              # list experiment IDs
//
// Output is plain text: aligned tables and ASCII charts (log-2 x axes,
// matching the paper's presentation).
//
// A third mode summarizes a Chrome trace-event file written by
// pstlbench --trace:
//
//	pstlreport -trace out.json    # ASCII timeline + per-track statistics
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"pstlbench/internal/experiments"
	"pstlbench/internal/report"
	"pstlbench/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs (fig1..fig9, tab2..tab7, ext-*, abl-*) or 'all'")
		scale     = flag.Int("scale", 0, "problem-size exponent reduction: N uses 2^(30-N) elements")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		csv       = flag.Bool("csv", false, "emit the experiments' tables as CSV (charts are omitted)")
		traceFile = flag.String("trace", "", "summarize a Chrome trace-event file written by pstlbench --trace")
		width     = flag.Int("width", 72, "timeline width in columns (-trace mode)")
	)
	flag.Parse()

	if *traceFile != "" {
		summarizeTrace(*traceFile, *width)
		return
	}

	if *list {
		for _, e := range experiments.Index() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Index() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run := experiments.ByID(id)
		if run == nil {
			fmt.Fprintf(os.Stderr, "pstlreport: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		r := run(cfg)
		if *csv {
			for _, t := range r.Tables {
				fmt.Printf("# %s: %s\n", r.ID, t.Title)
				fmt.Print(t.CSV())
			}
			continue
		}
		fmt.Println(r)
	}
}

// summarizeTrace loads a Chrome trace-event file, validates its shape, and
// prints the terminal timeline and per-track distributions.
func summarizeTrace(path string, width int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstlreport: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	ct, err := trace.ReadChrome(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstlreport: reading %s: %v\n", path, err)
		os.Exit(2)
	}
	if err := ct.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pstlreport: invalid trace %s: %v\n", path, err)
		os.Exit(2)
	}
	tracks, labels := ct.Tracks()
	s := trace.SummarizeEvents(tracks, labels, ct.Virtual(), math.MinInt64, math.MaxInt64)
	s.Lost = ct.LostEvents()
	fmt.Print(report.TraceTimeline(tracks, labels, s, width))
}
