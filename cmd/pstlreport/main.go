// Command pstlreport regenerates the paper's tables and figures from the
// simulated machines:
//
//	pstlreport                    # every experiment, full scale
//	pstlreport -exp fig2,tab5     # selected experiments
//	pstlreport -scale 6           # shrink 2^30 workloads to 2^24
//	pstlreport -list              # list experiment IDs
//
// Output is plain text: aligned tables and ASCII charts (log-2 x axes,
// matching the paper's presentation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pstlbench/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment IDs (fig1..fig9, tab2..tab7, ext-*, abl-*) or 'all'")
		scale = flag.Int("scale", 0, "problem-size exponent reduction: N uses 2^(30-N) elements")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		csv   = flag.Bool("csv", false, "emit the experiments' tables as CSV (charts are omitted)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Index() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale}
	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Index() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run := experiments.ByID(id)
		if run == nil {
			fmt.Fprintf(os.Stderr, "pstlreport: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		r := run(cfg)
		if *csv {
			for _, t := range r.Tables {
				fmt.Printf("# %s: %s\n", r.ID, t.Title)
				fmt.Print(t.CSV())
			}
			continue
		}
		fmt.Println(r)
	}
}
