// Command pstlstream is the continuous-ingest streaming driver: it builds
// an internal/flow engine over a shared serving layer, runs shaped load
// generators (or a deterministic replayed trace) against per-tenant
// streams, optionally runs a closed-loop batch tenant against the SAME
// server, and reports per-window p50/p99, watermark lag, and exact
// late/dropped accounting.
//
//	pstlstream                                    # two streams, bursty+steady, 5s
//	pstlstream -streams wc:wordcount:bursty:4000 -duration 10s -policy pause
//	pstlstream -windows 40 -json-out report.json  # stop after 40 windows
//	pstlstream -replay 20000 -seed 7              # deterministic trace + audit
//	pstlstream -batch batch:sort:65536:2          # batch tenant sharing the pool
//	pstlstream -ingest :8080 -duration 1m         # HTTP ingest + /metrics up
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstlbench/internal/counters"
	"pstlbench/internal/flow"
	"pstlbench/internal/obs"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pstlstream: "+format+"\n", args...)
	os.Exit(1)
}

// streamSpec is one parsed -streams entry: name:op:shape:rate.
type streamSpec struct {
	name  string
	op    string
	shape flow.Shape
	rate  float64
}

func parseStreams(s string) []streamSpec {
	var out []streamSpec
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 4 {
			fatal("bad -streams entry %q, want name:op:shape:rate", part)
		}
		shape, ok := flow.ParseShape(f[2])
		if !ok {
			fatal("bad shape %q in %q (want one of %v)", f[2], part, flow.Shapes())
		}
		rate, err := strconv.ParseFloat(f[3], 64)
		if err != nil || rate <= 0 {
			fatal("bad rate %q in %q", f[3], part)
		}
		out = append(out, streamSpec{name: f[0], op: f[1], shape: shape, rate: rate})
	}
	return out
}

// batchSpec is the parsed -batch entry: tenant:kernel:n:clients.
type batchSpec struct {
	tenant  string
	kernel  string
	n       int
	clients int
}

func parseBatch(s string) (batchSpec, bool) {
	if s == "" {
		return batchSpec{}, false
	}
	f := strings.Split(s, ":")
	if len(f) != 4 {
		fatal("bad -batch %q, want tenant:kernel:n:clients", s)
	}
	n, err1 := strconv.Atoi(f[2])
	c, err2 := strconv.Atoi(f[3])
	if err1 != nil || err2 != nil || n < 1 || c < 1 {
		fatal("bad -batch %q", s)
	}
	return batchSpec{tenant: f[0], kernel: f[1], n: n, clients: c}, true
}

// windowReport is one per-window line of the JSON report.
type windowReport struct {
	Start          int64   `json:"start_unix_ns"`
	End            int64   `json:"end_unix_ns"`
	Events         int     `json:"events"`
	State          string  `json:"state"`
	Checksum       float64 `json:"checksum,omitempty"`
	LatencySeconds float64 `json:"latency_seconds"`
	Flushed        bool    `json:"flushed,omitempty"`
}

// streamReport is one stream's section of the JSON report.
type streamReport struct {
	flow.StreamStats
	Generator *flow.GenStats `json:"generator,omitempty"`
	Windows   []windowReport `json:"windows"`
}

// batchReport summarizes the concurrent batch tenant.
type batchReport struct {
	Tenant     string  `json:"tenant"`
	Kernel     string  `json:"kernel"`
	N          int     `json:"n"`
	Clients    int     `json:"clients"`
	Completed  int64   `json:"completed"`
	Rejected   int64   `json:"rejected"`
	P50Seconds float64 `json:"p50_seconds,omitempty"`
	P99Seconds float64 `json:"p99_seconds,omitempty"`
}

// fullReport is the -json-out document.
type fullReport struct {
	DurationSeconds float64        `json:"duration_seconds"`
	Streams         []streamReport `json:"streams"`
	Batch           []batchReport  `json:"batch_tenants,omitempty"`
	Audit           *auditReport   `json:"audit,omitempty"`
}

// auditReport records the replay-mode exactness check.
type auditReport struct {
	Match         bool    `json:"match"`
	Accepted      int64   `json:"accepted"`
	Late          int64   `json:"late"`
	DroppedEvents int64   `json:"dropped_events"`
	WindowsClosed int64   `json:"windows_closed"`
	PeakBuffered  int     `json:"peak_buffered"`
	ChecksumTotal float64 `json:"checksum_total"`
	Detail        string  `json:"detail,omitempty"`
}

func main() {
	var (
		streamsStr = flag.String("streams", "wc:wordcount:bursty:2000,mc:montecarlo:steady:400",
			"comma-separated streams, each name:op:shape:rate (ops: "+strings.Join(flow.OpKinds(), ",")+"; shapes: steady,bursty,diurnal,step)")
		window   = flag.Duration("window", 250*time.Millisecond, "event-time window size")
		slide    = flag.Duration("slide", 0, "window slide (0 = tumbling)")
		lateness = flag.Duration("lateness", 50*time.Millisecond, "allowed out-of-orderness before an event is late")
		buffer   = flag.Int("buffer", 65536, "per-stream buffer cap in (event, window) assignments — the memory bound")
		policy   = flag.String("policy", "drop", "backpressure policy at the cap: drop (oldest) or pause")
		duration = flag.Duration("duration", 5*time.Second, "generator run time")
		windows  = flag.Int("windows", 0, "stop after this many terminal windows across all streams (0 = run for -duration)")
		burst    = flag.Float64("burst", 4, "shape peak multiplier (bursty/diurnal/step)")
		period   = flag.Duration("period", time.Second, "shape pattern period")
		words    = flag.Int("words", 128, "key dictionary size for wordcount streams")
		seed     = flag.Uint64("seed", 1, "generator / trace seed")
		replayN  = flag.Int("replay", 0, "replace generators with a deterministic n-event trace per stream, audited against the sequential oracle")

		workers     = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 256, "serve admission queue capacity")
		concurrency = flag.Int("concurrency", 2, "serve max concurrent jobs")
		batchStr    = flag.String("batch", "", "concurrent closed-loop batch tenant, tenant:kernel:n:clients (shares the pool and WFQ with the streams)")

		ingest     = flag.String("ingest", "", "also serve the flow HTTP ingest surface (plus /metrics, /healthz) on this address")
		jsonOut    = flag.String("json-out", "", "write the full JSON report to this file ('-' for stdout)")
		metricsOut = flag.String("metrics-out", "", "write a final Prometheus text scrape to this file")
	)
	flag.Parse()

	specs := parseStreams(*streamsStr)
	bspec, hasBatch := parseBatch(*batchStr)

	pol, ok := flow.ParsePolicy(*policy)
	if !ok {
		fatal("bad -policy %q, want drop or pause", *policy)
	}

	// One server, one pool, one WFQ: streams and the batch tenant are
	// peers under fair queuing.
	weights := map[string]float64{}
	for _, sp := range specs {
		weights[sp.name] = 1
	}
	if hasBatch {
		weights[bspec.tenant] = 1
	}
	met := obs.NewRegistry()
	reg := counters.NewRegistry()
	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueCap:      *queueCap,
		MaxConcurrent: *concurrency,
		Weights:       weights,
		Registry:      reg,
		Metrics:       met,
	})
	defer srv.Close()

	var mu sync.Mutex
	perStream := make(map[string][]windowReport)
	eng, err := flow.NewEngine(flow.Config{
		Server: srv, Registry: reg, Metrics: met,
		OnResult: func(r flow.WindowResult) {
			mu.Lock()
			perStream[r.Stream] = append(perStream[r.Stream], windowReport{
				Start: r.Start, End: r.End, Events: r.Events, State: r.State,
				Checksum: r.Checksum, LatencySeconds: r.LatencySeconds,
				Flushed: r.Flushed,
			})
			mu.Unlock()
		},
	})
	if err != nil {
		fatal("%v", err)
	}

	var auditCfg flow.StreamConfig // replay mode audits the first stream
	for i, sp := range specs {
		cfg := flow.StreamConfig{
			Name:   sp.name,
			Window: flow.WindowSpec{Size: *window, Slide: *slide, Lateness: *lateness},
			Op:     flow.OpSpec{Kind: sp.op},
			// Replay needs deep pending queues so the audit comparison is
			// not perturbed by admission-drop nondeterminism.
			BufferCap: *buffer,
			Policy:    pol,
		}
		if *replayN > 0 {
			cfg.PendingWindows = *replayN
		}
		if i == 0 {
			auditCfg = cfg
		}
		if _, err := eng.AddStream(cfg); err != nil {
			fatal("%v", err)
		}
	}

	// Optional HTTP surface: ingest + metrics + healthz on one mux.
	if *ingest != "" {
		ln, err := net.Listen("tcp", *ingest)
		if err != nil {
			fatal("listen %s: %v", *ingest, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/streams", eng.Handler())
		mux.Handle("/streams/", eng.Handler())
		mux.Handle("/healthz", eng.Handler())
		mux.Handle("GET /metrics", serve.MetricsHandler(met))
		go http.Serve(ln, mux)
		fmt.Fprintf(os.Stderr, "pstlstream: ingest listening on %s\n", ln.Addr())
	}

	// Batch tenant: a closed loop of clients against the same server.
	var batchDone, batchRej atomic.Int64
	var stopBatch atomic.Bool
	var batchWG sync.WaitGroup
	if hasBatch {
		for c := 0; c < bspec.clients; c++ {
			batchWG.Add(1)
			go func() {
				defer batchWG.Done()
				for !stopBatch.Load() {
					j, err := srv.Submit(serve.Spec{Kernel: bspec.kernel, N: bspec.n, Tenant: bspec.tenant})
					if err != nil {
						var sat *serve.SaturatedError
						if errors.As(err, &sat) {
							batchRej.Add(1)
							d := sat.RetryAfter
							if d > 20*time.Millisecond {
								d = 20 * time.Millisecond
							}
							time.Sleep(d)
							continue
						}
						fatal("batch submit: %v", err)
					}
					<-j.Done()
					batchDone.Add(1)
					// Yield between jobs: on a single-core box the
					// zero-sleep submit/complete handoff chain can starve
					// other runnable goroutines (the generators) for a
					// long time.
					runtime.Gosched()
				}
			}()
		}
	}
	stopBatchClients := func() {
		if hasBatch {
			stopBatch.Store(true)
			batchWG.Wait()
		}
	}

	start := time.Now()
	genStats := make(map[string]*flow.GenStats)
	var audit *auditReport
	if *replayN > 0 {
		// Deterministic replay: one synthetic trace per stream, the first
		// audited against the independent oracle.
		for i, sp := range specs {
			s := eng.Stream(sp.name)
			trace := flow.SynthTrace(*replayN, 0, int64(*window)/64, int64(*window)/16,
				97, 4*int64(*window), *words, *seed+uint64(i))
			acc, late, paused := flow.Replay(s, trace)
			gs := &flow.GenStats{Generated: int64(*replayN), Accepted: acc, Late: late, Paused: paused}
			genStats[sp.name] = gs
			if i == 0 {
				want, err := flow.Audit(auditCfg, trace)
				if err != nil {
					fatal("audit: %v", err)
				}
				s.Close() // settle every window job before comparing
				audit = compareAudit(s.Stats(), want)
			}
		}
	} else {
		// Live generators until -duration or -windows.
		stopGen := make(chan struct{})
		var genWG sync.WaitGroup
		var genMu sync.Mutex
		for _, sp := range specs {
			sp := sp
			g := &flow.Generator{
				Stream: eng.Stream(sp.name), Rate: sp.rate, Shape: sp.shape,
				Period: *period, Burst: *burst, Seed: *seed, Words: *words,
			}
			genWG.Add(1)
			go func() {
				defer genWG.Done()
				st := g.Run(stopGen)
				genMu.Lock()
				genStats[sp.name] = &st
				genMu.Unlock()
			}()
		}
		if *windows > 0 {
			for eng.WindowsFinished() < int64(*windows) {
				time.Sleep(10 * time.Millisecond)
			}
		} else {
			time.Sleep(*duration)
		}
		// Quiet the batch churn before joining the generators so their
		// stop signal is seen promptly even on a loaded box.
		stopBatchClients()
		close(stopGen)
		genWG.Wait()
	}
	eng.Close() // flush and settle every remaining window
	stopBatchClients()
	elapsed := time.Since(start)

	// Assemble the report.
	rep := fullReport{DurationSeconds: elapsed.Seconds(), Audit: audit}
	mu.Lock()
	for _, sp := range specs {
		s := eng.Stream(sp.name)
		rep.Streams = append(rep.Streams, streamReport{
			StreamStats: s.Stats(),
			Generator:   genStats[sp.name],
			Windows:     perStream[sp.name],
		})
	}
	mu.Unlock()
	if hasBatch {
		br := batchReport{
			Tenant: bspec.tenant, Kernel: bspec.kernel, N: bspec.n,
			Clients: bspec.clients, Completed: batchDone.Load(), Rejected: batchRej.Load(),
		}
		for _, ts := range srv.Stats().Tenants {
			if ts.Tenant == bspec.tenant {
				br.P50Seconds, br.P99Seconds = ts.P50Seconds, ts.P99Seconds
			}
		}
		rep.Batch = append(rep.Batch, br)
	}

	printReport(rep)
	if *jsonOut != "" {
		writeJSONReport(*jsonOut, rep)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal("%v", err)
		}
		met.WritePrometheus(f)
		f.Close()
	}
	if audit != nil && !audit.Match {
		fatal("audit mismatch: %s", audit.Detail)
	}
}

// compareAudit checks a settled stream against the oracle, field by field.
func compareAudit(st flow.StreamStats, want flow.AuditResult) *auditReport {
	rep := &auditReport{
		Accepted: want.Accepted, Late: want.Late, DroppedEvents: want.DroppedEvents,
		WindowsClosed: want.WindowsClosed, PeakBuffered: want.PeakBuffered,
		ChecksumTotal: want.ChecksumTotal,
	}
	var bad []string
	check := func(name string, got, exp any) {
		if fmt.Sprint(got) != fmt.Sprint(exp) {
			bad = append(bad, fmt.Sprintf("%s=%v want %v", name, got, exp))
		}
	}
	check("events", st.Events, want.Accepted)
	check("late", st.LateEvents, want.Late)
	check("dropped", st.DroppedEvents, want.DroppedEvents)
	check("windows_closed", st.WindowsClosed, want.WindowsClosed)
	check("windows_empty", st.WindowsEmpty, want.WindowsEmpty)
	check("peak_buffered", st.PeakBuffered, want.PeakBuffered)
	check("windows_dropped", st.WindowsDropped, int64(0))
	check("checksum", st.Checksum, want.ChecksumTotal)
	rep.Match = len(bad) == 0
	rep.Detail = strings.Join(bad, "; ")
	return rep
}

// printReport writes the human-readable summary to stdout.
func printReport(rep fullReport) {
	t := &report.Table{
		Title: fmt.Sprintf("pstlstream: %.1fs", rep.DurationSeconds),
		Headers: []string{"Stream", "Op", "Policy", "Events", "Late", "Dropped", "Paused",
			"Windows", "Done", "WDropped", "PeakBuf", "WM lag", "p50", "p99"},
	}
	for _, s := range rep.Streams {
		t.AddRow(s.Stream, s.Op, s.Policy,
			fmt.Sprintf("%d", s.Events), fmt.Sprintf("%d", s.LateEvents),
			fmt.Sprintf("%d", s.DroppedEvents), fmt.Sprintf("%d", s.PausedEvents),
			fmt.Sprintf("%d", s.WindowsClosed), fmt.Sprintf("%d", s.WindowsDone),
			fmt.Sprintf("%d", s.WindowsDropped), fmt.Sprintf("%d", s.PeakBuffered),
			fmt.Sprintf("%.3gs", s.WatermarkLagSeconds),
			fmt.Sprintf("%.3gs", s.P50Seconds), fmt.Sprintf("%.3gs", s.P99Seconds))
	}
	fmt.Print(t.String())
	for _, b := range rep.Batch {
		fmt.Printf("batch tenant %s: %s n=%d clients=%d completed=%d rejected=%d p50=%.3gs p99=%.3gs\n",
			b.Tenant, b.Kernel, b.N, b.Clients, b.Completed, b.Rejected, b.P50Seconds, b.P99Seconds)
	}
	if rep.Audit != nil {
		status := "MATCH"
		if !rep.Audit.Match {
			status = "MISMATCH: " + rep.Audit.Detail
		}
		fmt.Printf("audit vs sequential oracle: %s (events=%d late=%d dropped=%d windows=%d peak=%d checksum=%v)\n",
			status, rep.Audit.Accepted, rep.Audit.Late, rep.Audit.DroppedEvents,
			rep.Audit.WindowsClosed, rep.Audit.PeakBuffered, rep.Audit.ChecksumTotal)
	}
}

func writeJSONReport(path string, rep fullReport) {
	var out *os.File
	if path == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("%v", err)
	}
}
