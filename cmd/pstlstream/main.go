// Command pstlstream runs the STREAM bandwidth benchmark used to calibrate
// the memory-bound expectations (Table 2's last row):
//
//	pstlstream                  # simulated Table 2 row for Mach A/B/C
//	pstlstream -mode native     # measure the host with 1..GOMAXPROCS workers
package main

import (
	"flag"
	"fmt"
	"runtime"

	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/stream"
)

func main() {
	var (
		mode  = flag.String("mode", "sim", "sim or native")
		n     = flag.Int("n", 1<<24, "elements per array (native mode; 3 arrays x 8 bytes)")
		iters = flag.Int("iters", 3, "repetitions per kernel, best is reported (native mode)")
	)
	flag.Parse()

	switch *mode {
	case "sim":
		t := &report.Table{
			Title:   "Simulated STREAM bandwidth (GB/s)",
			Headers: []string{"Machine", "1 core", "all cores"},
		}
		for _, m := range machine.CPUs() {
			t.AddRow(m.Name,
				fmt.Sprintf("%.1f", stream.Simulated(m, 1)),
				fmt.Sprintf("%.1f", stream.Simulated(m, m.Cores)))
		}
		fmt.Print(t.String())
	case "native":
		t := &report.Table{
			Title:   fmt.Sprintf("Native STREAM, %d elements/array", *n),
			Headers: []string{"Workers", "Copy", "Scale", "Add", "Triad (GB/s)"},
		}
		for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
			r := stream.Native(w, *n, *iters)
			t.AddRow(fmt.Sprintf("%d", w),
				fmt.Sprintf("%.2f", r.Copy), fmt.Sprintf("%.2f", r.Scale),
				fmt.Sprintf("%.2f", r.Add), fmt.Sprintf("%.2f", r.Triad))
		}
		fmt.Print(t.String())
	default:
		fmt.Printf("pstlstream: unknown mode %q\n", *mode)
	}
}
