module pstlbench

go 1.22
