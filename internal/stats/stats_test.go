package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !approx(Median(xs), 4.5) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
	if !approx(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 || CV(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-value stddev")
	}
	if GeoMean([]float64{2, -1}) != 0 {
		t.Fatal("geomean with nonpositive value")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("GeoMean = %v", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("constant CV = %v", got)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean CV")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("Speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("Speedup zero denominator")
	}
	if Efficiency(8, 16) != 0.5 {
		t.Fatal("Efficiency")
	}
	if Efficiency(8, 0) != 0 {
		t.Fatal("Efficiency zero threads")
	}
}

func TestMaxThreadsAtEfficiency(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16, 32}
	speedups := []float64{1.0, 1.9, 3.6, 6.0, 9.0, 10.0}
	// efficiencies: 1.0 0.95 0.90 0.75 0.56 0.31
	if got := MaxThreadsAtEfficiency(threads, speedups, 0.70); got != 8 {
		t.Fatalf("MaxThreadsAtEfficiency = %d, want 8", got)
	}
	if got := MaxThreadsAtEfficiency(threads, speedups, 0.99); got != 1 {
		t.Fatalf("threshold 0.99: %d", got)
	}
	// Nothing qualifies.
	if got := MaxThreadsAtEfficiency([]int{2}, []float64{0.5}, 0.7); got != 0 {
		t.Fatalf("nothing qualifies: %d", got)
	}
	// Non-monotone efficiency: the LARGEST qualifying count wins.
	if got := MaxThreadsAtEfficiency([]int{2, 4, 8}, []float64{1.0, 3.9, 6.0}, 0.7); got != 8 {
		t.Fatalf("non-monotone: %d", got)
	}
}

func TestMaxThreadsAtEfficiencyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MaxThreadsAtEfficiency([]int{1, 2}, []float64{1}, 0.7)
}

// Property: mean is within [min, max]; stddev is non-negative.
func TestPropMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
