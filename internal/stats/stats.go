// Package stats provides the statistics used by the experiment reports:
// means, dispersion, speedup and parallel-efficiency calculations, and the
// ">= 70 % efficiency" thread-count metric of the paper's Table 6.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics — the estimator the serving
// layer's latency reporting uses for p50/p99. Empty input returns 0.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return PercentileSorted(c, q)
}

// PercentileSorted is Percentile over already-sorted input, without the
// copy — for callers taking several quantiles from one sample set.
func PercentileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// CV returns the coefficient of variation (stddev/mean).
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns baseline/parallel, the paper's speedup definition
// (against GCC's sequential implementation).
func Speedup(baseline, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return baseline / parallel
}

// Efficiency returns the parallel efficiency of a speedup at a thread
// count: speedup/threads.
func Efficiency(speedup float64, threads int) float64 {
	if threads < 1 {
		return 0
	}
	return speedup / float64(threads)
}

// MaxThreadsAtEfficiency returns the largest thread count whose efficiency
// (speedup[i]/threads[i]) is at least threshold — the metric of the
// paper's Table 6. threads and speedups are parallel slices. Returns 0 if
// no thread count qualifies.
func MaxThreadsAtEfficiency(threads []int, speedups []float64, threshold float64) int {
	if len(threads) != len(speedups) {
		panic("stats: threads/speedups length mismatch")
	}
	best := 0
	for i, th := range threads {
		if Efficiency(speedups[i], th) >= threshold && th > best {
			best = th
		}
	}
	return best
}
