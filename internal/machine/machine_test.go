package machine

import "testing"

func TestTable2Parameters(t *testing.T) {
	// The machine models must reproduce the paper's Table 2.
	cases := []struct {
		m          *Machine
		cores      int
		numa       int
		sockets    int
		bw1, bwAll float64
	}{
		{MachA(), 32, 2, 2, 11.7, 135},
		{MachB(), 64, 8, 2, 26.0, 204},
		{MachC(), 128, 8, 2, 42.6, 249},
	}
	for _, c := range cases {
		if c.m.Cores != c.cores || c.m.NUMANodes != c.numa || c.m.Sockets != c.sockets {
			t.Errorf("%s: topology %d/%d/%d", c.m.Name, c.m.Cores, c.m.NUMANodes, c.m.Sockets)
		}
		if c.m.BW1Core != c.bw1 || c.m.BWAllCores != c.bwAll {
			t.Errorf("%s: STREAM %v/%v", c.m.Name, c.m.BW1Core, c.m.BWAllCores)
		}
	}
}

func TestGPUTable2Parameters(t *testing.T) {
	d, e := MachD(), MachE()
	if d.GPU == nil || e.GPU == nil {
		t.Fatal("GPU machines missing GPU")
	}
	if got := d.GPU.SMs * d.GPU.CoresPerSM; got != 2560 {
		t.Errorf("T4 cores = %d, want 2560", got)
	}
	if got := e.GPU.SMs * e.GPU.CoresPerSM; got != 1280 {
		t.Errorf("A2 cores = %d, want 1280", got)
	}
	if d.GPU.DeviceBW != 264 || e.GPU.DeviceBW != 172 {
		t.Errorf("GPU STREAM BW: %v / %v", d.GPU.DeviceBW, e.GPU.DeviceBW)
	}
	if d.GPU.FreqGHz != 1.11 || e.GPU.FreqGHz != 1.77 {
		t.Errorf("GPU freq: %v / %v", d.GPU.FreqGHz, e.GPU.FreqGHz)
	}
}

func TestNodeOfBlockAssignment(t *testing.T) {
	m := MachB() // 64 cores, 8 nodes -> 8 cores per node
	if m.CoresPerNode() != 8 {
		t.Fatalf("CoresPerNode = %d", m.CoresPerNode())
	}
	for c := 0; c < m.Cores; c++ {
		if got, want := m.NodeOf(c), c/8; got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", c, got, want)
		}
	}
	if m.SocketOf(0) != 0 || m.SocketOf(63) != 1 || m.SocketOf(31) != 0 || m.SocketOf(32) != 1 {
		t.Fatal("SocketOf wrong")
	}
}

func TestRaggedTopologyAssignment(t *testing.T) {
	// A deliberately ragged machine: 10 cores over 4 nodes and 3 sockets.
	// Block assignment gives the leading groups one extra item: node sizes
	// 3,3,2,2 and socket sizes 4,3,3.
	m := &Machine{Name: "ragged", Cores: 10, NUMANodes: 4, Sockets: 3}
	if got := m.CoresPerNode(); got != 3 {
		t.Fatalf("CoresPerNode = %d, want 3 (largest node)", got)
	}
	wantNode := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	wantSock := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	nodeSeen := make(map[int]int)
	sockSeen := make(map[int]int)
	for c := 0; c < m.Cores; c++ {
		if got := m.NodeOf(c); got != wantNode[c] {
			t.Errorf("NodeOf(%d) = %d, want %d", c, got, wantNode[c])
		}
		if got := m.SocketOf(c); got != wantSock[c] {
			t.Errorf("SocketOf(%d) = %d, want %d", c, got, wantSock[c])
		}
		nodeSeen[m.NodeOf(c)]++
		sockSeen[m.SocketOf(c)]++
	}
	// Every node and socket is populated and sizes differ by at most one.
	if len(nodeSeen) != m.NUMANodes || len(sockSeen) != m.Sockets {
		t.Fatalf("populated nodes=%d sockets=%d", len(nodeSeen), len(sockSeen))
	}
	for g, sizes := range map[string]map[int]int{"node": nodeSeen, "socket": sockSeen} {
		min, max := m.Cores, 0
		for _, n := range sizes {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("%s sizes unbalanced: min=%d max=%d", g, min, max)
		}
	}
	// More groups than cores: every core still maps in range, no division
	// by zero.
	tiny := &Machine{Name: "tiny", Cores: 3, NUMANodes: 5, Sockets: 5}
	for c := 0; c < tiny.Cores; c++ {
		if n := tiny.NodeOf(c); n < 0 || n >= tiny.NUMANodes {
			t.Fatalf("tiny NodeOf(%d) = %d out of range", c, n)
		}
	}
}

func TestSocketOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MachA().SocketOf(-1)
}

func TestNodeOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MachA().NodeOf(32)
}

func TestThreadCounts(t *testing.T) {
	got := MachA().ThreadCounts()
	want := []int{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("ThreadCounts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ThreadCounts = %v, want %v", got, want)
		}
	}
	// 128 cores: powers of two up to 128.
	c := MachC().ThreadCounts()
	if c[len(c)-1] != 128 || len(c) != 8 {
		t.Fatalf("MachC ThreadCounts = %v", c)
	}
}

func TestNodeBW(t *testing.T) {
	if got := MachA().NodeBW(); got != 67.5 {
		t.Fatalf("MachA NodeBW = %v", got)
	}
	if got := MachB().NodeBW(); got != 25.5 {
		t.Fatalf("MachB NodeBW = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("z") != nil {
		t.Error("ByName(z) should be nil")
	}
	if len(CPUs()) != 3 || len(GPUs()) != 2 {
		t.Error("CPUs/GPUs counts wrong")
	}
}
