// Package machine describes the simulated hardware platforms.
//
// HARDWARE SUBSTITUTION: the paper evaluates on two-socket Skylake, Zen 1
// and Zen 3 servers (32/64/128 cores) plus NVIDIA T4 and A2 GPUs. None of
// that hardware is available here, so each platform is modeled from the
// parameters the paper publishes in Table 2 — core counts, frequencies,
// NUMA topology, and measured STREAM bandwidths for one core and for all
// cores — extended with public cache sizes for the three CPUs. The
// discrete-event simulator in package simexec consumes these descriptions.
package machine

import "fmt"

// Machine describes one simulated platform.
type Machine struct {
	// Name is the paper's identifier (e.g. "Mach A (Skylake)").
	Name string
	// CPU is the processor or GPU model.
	CPU string
	// Arch is the microarchitecture name.
	Arch string

	Sockets   int
	NUMANodes int // total NUMA nodes (paper's Table 2 "Sockets | NUMA nodes")
	Cores     int // total physical cores

	FreqGHz float64
	// BoostGHz is the single-core boost clock: a sequential run gets it,
	// an all-core run gets FreqGHz. On the Zen machines this gap is what
	// caps even perfectly parallel code at 80-86 %% efficiency relative
	// to the sequential baseline (Table 5's for_each k_it=1000 row).
	// 0 means no boost (Mach A runs with turbo disabled).
	BoostGHz float64
	// IPC is the sustained scalar instruction throughput per core per
	// cycle for the pointer-chasing/loop mix of the benchmark kernels.
	IPC float64
	// SIMDLanes64 is the number of 64-bit lanes of the widest vector unit
	// (4 = AVX2/256-bit, 8 = AVX-512).
	SIMDLanes64 int

	// Cache capacities (bytes).
	L2PerCore    int64
	LLCPerSocket int64

	// Measured STREAM bandwidths from Table 2 (GB/s).
	BW1Core    float64 // single core
	BWAllCores float64 // all cores together

	// Cache bandwidths for the capacity model (GB/s).
	L2BWPerCore float64 // private, per core
	LLCBWSocket float64 // shared, per socket

	// RemoteFactor scales effective bandwidth for accesses to a remote
	// NUMA node (0 < RemoteFactor <= 1).
	RemoteFactor float64

	// FabricBW is the total inter-node interconnect bandwidth (GB/s):
	// the sum of all remote-node traffic cannot exceed it. It is the
	// mechanism that makes the 8-node Zen machines collapse for badly
	// placed workloads (Table 5's Mach B/C columns).
	FabricBW float64

	// GPU is non-nil for the GPU platforms (Mach D, Mach E).
	GPU *GPU
}

// GPU describes a simulated CUDA device with unified memory.
type GPU struct {
	Name       string
	Arch       string
	SMs        int
	CoresPerSM int
	FreqGHz    float64

	// DeviceBW is the measured device memory bandwidth (Table 2's STREAM
	// row, GB/s).
	DeviceBW float64
	// MemBytes is the device memory capacity.
	MemBytes int64

	// LinkBW is the host<->device PCIe bandwidth (GB/s).
	LinkBW float64
	// LaunchLatency is the fixed cost of launching one kernel (seconds).
	LaunchLatency float64
	// PageFaultLatency is the fixed per-migration-batch cost of a unified
	// memory page-fault group (seconds). On-demand migration moves pages
	// in batches; the effective transfer rate for faulted data is well
	// below LinkBW.
	PageFaultLatency float64
	// FaultBWFactor scales LinkBW for fault-driven (as opposed to bulk
	// prefetched) transfers.
	FaultBWFactor float64
}

// NodeBW returns the DRAM bandwidth of one NUMA node (GB/s).
func (m *Machine) NodeBW() float64 { return m.BWAllCores / float64(m.NUMANodes) }

// CoresPerNode returns the number of cores in the largest NUMA node. When
// Cores is not divisible by NUMANodes the leading nodes hold one extra core
// (see blockAssign), so this is the ceiling of the average.
func (m *Machine) CoresPerNode() int {
	return (m.Cores + m.NUMANodes - 1) / m.NUMANodes
}

// blockAssign places item into one of groups consecutive blocks covering
// [0, items): the first items%groups blocks get one extra element, so every
// item maps to a valid group even when items is not divisible by groups.
func blockAssign(item, items, groups int) int {
	base := items / groups
	rem := items % groups
	cut := rem * (base + 1)
	if item < cut {
		return item / (base + 1)
	}
	return rem + (item-cut)/base
}

// NodeOf returns the NUMA node of a core (block assignment, as on the real
// machines: consecutive core IDs share a node). With a ragged core count the
// first Cores%NUMANodes nodes hold one extra core.
func (m *Machine) NodeOf(core int) int {
	if core < 0 || core >= m.Cores {
		panic(fmt.Sprintf("machine %s: core %d out of range", m.Name, core))
	}
	return blockAssign(core, m.Cores, m.NUMANodes)
}

// SocketOf returns the socket of a core, with the same block assignment and
// remainder rule as NodeOf.
func (m *Machine) SocketOf(core int) int {
	if core < 0 || core >= m.Cores {
		panic(fmt.Sprintf("machine %s: core %d out of range", m.Name, core))
	}
	return blockAssign(core, m.Cores, m.Sockets)
}

// ScalarRate returns one core's scalar instruction rate (instructions/s)
// at the all-core base clock.
func (m *Machine) ScalarRate() float64 { return m.FreqGHz * 1e9 * m.IPC }

// SeqFreqGHz returns the clock of a single-threaded run (boost clock when
// the machine has one).
func (m *Machine) SeqFreqGHz() float64 {
	if m.BoostGHz > m.FreqGHz {
		return m.BoostGHz
	}
	return m.FreqGHz
}

// ThreadCounts returns the 1, 2, 4, ..., Cores sequence used by the
// paper's strong-scaling experiments.
func (m *Machine) ThreadCounts() []int {
	var out []int
	for t := 1; t <= m.Cores; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != m.Cores {
		out = append(out, m.Cores)
	}
	return out
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// MachA is the paper's Mach A: 2-socket Intel Xeon Gold 6130F (Skylake),
// 32 cores, 2 NUMA nodes, STREAM 11.7 / 135 GB/s.
func MachA() *Machine {
	return &Machine{
		Name: "Mach A (Skylake)", CPU: "Intel Xeon 6130F", Arch: "Skylake",
		Sockets: 2, NUMANodes: 2, Cores: 32,
		FreqGHz: 2.10, IPC: 2.0, SIMDLanes64: 8, // AVX-512
		L2PerCore: mib, LLCPerSocket: 22 * mib,
		BW1Core: 11.7, BWAllCores: 135,
		L2BWPerCore: 70, LLCBWSocket: 300,
		RemoteFactor: 0.65, FabricBW: 55,
	}
}

// MachB is the paper's Mach B: 2-socket AMD EPYC 7551 (Zen 1), 64 cores,
// 8 NUMA nodes, STREAM 26.0 / 204 GB/s.
func MachB() *Machine {
	return &Machine{
		Name: "Mach B (Zen 1)", CPU: "AMD EPYC 7551", Arch: "Zen",
		Sockets: 2, NUMANodes: 8, Cores: 64,
		FreqGHz: 2.00, BoostGHz: 2.35, IPC: 2.0, SIMDLanes64: 2, // 128-bit FP datapath
		L2PerCore: 512 * kib, LLCPerSocket: 64 * mib,
		BW1Core: 26.0, BWAllCores: 204,
		L2BWPerCore: 60, LLCBWSocket: 400,
		RemoteFactor: 0.55, FabricBW: 32, // Zen 1's inter-CCX/inter-socket fabric is weak
	}
}

// MachC is the paper's Mach C: 2-socket AMD EPYC 7713 (Zen 3), 128 cores,
// 8 NUMA nodes, STREAM 42.6 / 249 GB/s.
func MachC() *Machine {
	return &Machine{
		Name: "Mach C (Zen 3)", CPU: "AMD EPYC 7713", Arch: "Zen 3",
		Sockets: 2, NUMANodes: 8, Cores: 128,
		FreqGHz: 2.00, BoostGHz: 2.50, IPC: 2.2, SIMDLanes64: 4, // AVX2
		L2PerCore: 512 * kib, LLCPerSocket: 256 * mib,
		BW1Core: 42.6, BWAllCores: 249,
		L2BWPerCore: 80, LLCBWSocket: 800,
		RemoteFactor: 0.6, FabricBW: 60,
	}
}

// hostCPU models the (unspecified) host driving the GPU machines; the
// paper only reports its compiler (g++ 10.2.1). A modest 16-core one-node
// host is assumed; Figures 8-9 compare against Mach A's CPUs anyway.
func hostCPU(name string) *Machine {
	return &Machine{
		Name: name, CPU: "host CPU (assumed 16-core)", Arch: "x86-64",
		Sockets: 1, NUMANodes: 1, Cores: 16,
		FreqGHz: 2.4, IPC: 2.0, SIMDLanes64: 4,
		L2PerCore: mib, LLCPerSocket: 20 * mib,
		BW1Core: 12, BWAllCores: 60,
		L2BWPerCore: 70, LLCBWSocket: 250,
		RemoteFactor: 1, FabricBW: 1e9,
	}
}

// MachD is the paper's Mach D: NVIDIA Tesla T4 (Turing), 2560 CUDA cores,
// 16 GiB, 264 GB/s measured STREAM.
func MachD() *Machine {
	m := hostCPU("Mach D (Tesla)")
	m.GPU = &GPU{
		Name: "NVIDIA Tesla T4", Arch: "Turing",
		SMs: 40, CoresPerSM: 64, FreqGHz: 1.11,
		DeviceBW: 264, MemBytes: 16 * gib,
		LinkBW: 12, LaunchLatency: 8e-6,
		PageFaultLatency: 25e-6, FaultBWFactor: 0.45,
	}
	return m
}

// MachE is the paper's Mach E: NVIDIA Ampere A2, 1280 CUDA cores, 8 GiB,
// 172 GB/s measured STREAM.
func MachE() *Machine {
	m := hostCPU("Mach E (Ampere)")
	m.GPU = &GPU{
		Name: "NVIDIA Ampere A2", Arch: "Ampere",
		SMs: 10, CoresPerSM: 128, FreqGHz: 1.77,
		DeviceBW: 172, MemBytes: 8 * gib,
		LinkBW: 12, LaunchLatency: 8e-6,
		PageFaultLatency: 25e-6, FaultBWFactor: 0.45,
	}
	return m
}

// MachF is an extension beyond the paper (its stated future work:
// "an extended analysis could include other architectures, such as ARM
// processors"): a single-socket ARM Neoverse-V1 server in the style of a
// Graviton3 — one NUMA node, no SMT, wide SIMD, and a flat memory system
// whose single-core bandwidth is a large fraction of the socket total.
func MachF() *Machine {
	return &Machine{
		Name: "Mach F (ARM)", CPU: "Neoverse V1 (Graviton3-class)", Arch: "ARMv8.4",
		Sockets: 1, NUMANodes: 1, Cores: 64,
		FreqGHz: 2.60, IPC: 2.2, SIMDLanes64: 4, // 2x256-bit SVE
		L2PerCore: mib, LLCPerSocket: 32 * mib,
		BW1Core: 28, BWAllCores: 300,
		L2BWPerCore: 90, LLCBWSocket: 600,
		RemoteFactor: 1, FabricBW: 1e9, // single node: no remote traffic
	}
}

// ByName returns the machine with the given short name (a, b, c, d, e, f),
// or nil if unknown.
func ByName(name string) *Machine {
	switch name {
	case "a", "A", "macha", "MachA":
		return MachA()
	case "b", "B", "machb", "MachB":
		return MachB()
	case "c", "C", "machc", "MachC":
		return MachC()
	case "d", "D", "machd", "MachD":
		return MachD()
	case "e", "E", "mache", "MachE":
		return MachE()
	case "f", "F", "machf", "MachF":
		return MachF()
	default:
		return nil
	}
}

// CPUs returns the three multi-core machines of the study.
func CPUs() []*Machine { return []*Machine{MachA(), MachB(), MachC()} }

// GPUs returns the two GPU machines of the study.
func GPUs() []*Machine { return []*Machine{MachD(), MachE()} }
