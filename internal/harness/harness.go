// Package harness is the measurement engine of the suite — the counterpart
// of Google Benchmark in pSTL-Bench. It provides:
//
//   - State: the per-run handle a benchmark body iterates with
//     (for state.Next() { ... }), with Range arguments, bytes/items
//     throughput accounting, and manual per-iteration timing — the
//     equivalent of pSTL-Bench's WRAP_TIMING macro, which times exactly
//     the STL call and excludes setup such as reshuffling before sort;
//   - adaptive iteration-count selection against a minimum measuring time
//     (--benchmark_min_time in the paper's setup, 5 s there);
//   - a Suite with registration, regexp filtering, and deterministic
//     ordering;
//   - hardware-counter regions in the style of the Likwid Marker API,
//     recorded into a counters.Registry.
//
// Manual timing also lets the simulator drive the same machinery: a
// benchmark body can run a simulated invocation and report its virtual
// duration via SetIterationTime, so native and simulated measurements flow
// through one pipeline.
package harness

import (
	"fmt"
	"regexp"
	"sort"
	"time"

	"pstlbench/internal/counters"
	"pstlbench/internal/trace"
	"pstlbench/internal/tune"
)

// State is the per-benchmark-run state handed to the benchmark body.
type State struct {
	name   string
	args   []int64
	target int

	iter        int
	started     bool
	startTime   time.Time
	elapsed     time.Duration
	manual      float64
	manualMode  bool
	manualIter  int // iteration of the last SetIterationTime call
	manualSeen  bool
	bytes       int64
	items       int64
	traffic     int64
	ctr         counters.Set
	ctrRecorded bool
	ctrIter     int // iteration of the last RecordCounters call

	tracer   *trace.Tracer
	tbuf     *trace.Buf // harness marker track
	registry *counters.Registry

	// Adaptive-grain auto-wiring (State.Tune): one tune.Observation per
	// iteration flows to the suite's Tuner at each Next() boundary.
	tuner         *tune.Tuner
	tuneSched     func() counters.Set
	tuneOn        bool
	tuneKey       tune.Key
	tuneWall      time.Time
	tuneManual    float64
	tuneCtr       counters.Set
	tuneSchedPrev counters.Set
}

// Name returns the full benchmark name including arguments.
func (s *State) Name() string { return s.name }

// Range returns the i-th range argument of the benchmark instance, like
// benchmark::State::range(i).
func (s *State) Range(i int) int64 {
	if i < 0 || i >= len(s.args) {
		panic(fmt.Sprintf("harness: benchmark %s has no range(%d)", s.name, i))
	}
	return s.args[i]
}

// Next advances the measurement loop; the body runs while it returns true.
// Timing starts at the first call.
func (s *State) Next() bool {
	if !s.started {
		s.started = true
		s.startTime = time.Now()
		if s.tuneOn {
			s.tuneWall = s.startTime
		}
		if s.tbuf != nil && s.target > 0 {
			s.tbuf.Instant(trace.KindIteration, s.tracer.Now(), 0, 0)
		}
		return s.target > 0
	}
	if s.iter++; s.iter < s.target {
		s.tuneFlush()
		if s.tbuf != nil {
			s.tbuf.Instant(trace.KindIteration, s.tracer.Now(), int64(s.iter), 0)
		}
		return true
	}
	s.elapsed += time.Since(s.startTime)
	s.tuneFlush()
	return false
}

// Tune declares that the benchmark's parallel loop is tuned under key k.
// When the suite runs with a Tuner, the harness then feeds it one
// tune.Observation per iteration at every Next() boundary: the iteration's
// duration (manual when the body uses SetIterationTime, wall-clock
// otherwise) merged with the scheduler-counter deltas from RecordCounters
// and from the suite's TuneSched snapshot hook. Call it once, before the
// measurement loop; without a suite Tuner it is a no-op.
func (s *State) Tune(k tune.Key) {
	if s.tuner == nil {
		return
	}
	s.tuneOn = true
	s.tuneKey = k
	s.tuneWall = time.Now()
	s.tuneManual = s.manual
	s.tuneCtr = s.ctr
	if s.tuneSched != nil {
		s.tuneSchedPrev = s.tuneSched()
	}
}

// tuneFlush attributes everything since the previous iteration boundary to
// one observation and hands it to the tuner.
func (s *State) tuneFlush() {
	if !s.tuneOn {
		return
	}
	now := time.Now()
	var secs float64
	if s.manualMode {
		secs = s.manual - s.tuneManual
	} else {
		secs = now.Sub(s.tuneWall).Seconds()
	}
	delta := s.ctr.Sub(s.tuneCtr)
	if s.tuneSched != nil {
		cur := s.tuneSched()
		delta.Add(cur.Sub(s.tuneSchedPrev))
		s.tuneSchedPrev = cur
	}
	obs := tune.FromCounters(delta)
	obs.Seconds = secs
	s.tuner.Observe(s.tuneKey, obs)
	s.tuneWall = now
	s.tuneManual = s.manual
	s.tuneCtr = s.ctr
}

// Iterations returns the number of iterations of the current run.
func (s *State) Iterations() int { return s.target }

// PauseTiming excludes the following code from the measured wall time.
func (s *State) PauseTiming() {
	s.elapsed += time.Since(s.startTime)
}

// ResumeTiming resumes the wall-time measurement after PauseTiming.
func (s *State) ResumeTiming() {
	s.startTime = time.Now()
}

// SetIterationTime reports a manually measured duration for the current
// iteration (WRAP_TIMING / benchmark::State::SetIterationTime). Once
// called, the benchmark's reported time comes exclusively from manual
// measurements.
//
// The manual-timing contract: call it at most once per iteration, strictly
// inside the measurement loop (after the first Next has returned true), and
// pass exactly the duration of the timed call — the harness sums the
// per-iteration values and never mixes them with wall-clock timing. Calling
// it before the loop starts panics: there is no current iteration to
// attribute the time to.
func (s *State) SetIterationTime(seconds float64) {
	if !s.started {
		panic(fmt.Sprintf("harness: %s called SetIterationTime before the first Next(); "+
			"manual timing must be reported from inside the measurement loop", s.name))
	}
	if s.manualSeen && s.manualIter == s.iter {
		panic(fmt.Sprintf("harness: %s called SetIterationTime twice in iteration %d; "+
			"report exactly one duration per iteration", s.name, s.iter))
	}
	s.manualSeen = true
	s.manualIter = s.iter
	s.manualMode = true
	s.manual += seconds
	if s.registry != nil {
		s.registry.Record(s.name, counters.Set{Seconds: seconds})
	}
}

// SetBytesProcessed declares the total bytes processed across all
// iterations, enabling throughput reporting.
func (s *State) SetBytesProcessed(n int64) { s.bytes = n }

// SetItemsProcessed declares the total items processed across all
// iterations.
func (s *State) SetItemsProcessed(n int64) { s.items = n }

// SetTrafficBytes declares the modeled DRAM traffic across all iterations
// (e.g. from pipeline.ModelTraffic), reported per call as
// Result.TrafficBytes. Unlike SetBytesProcessed this is a model, not a
// measurement — it lets reports place predicted memory traffic next to
// measured time.
func (s *State) SetTrafficBytes(n int64) { s.traffic = n }

// RecordCounters records the modeled hardware counters of the current
// iteration, in the style of a Likwid marker region around the timed call.
// Like SetIterationTime, it may be called at most once per iteration —
// a second call in the same iteration panics, since it would silently
// double-count the region.
func (s *State) RecordCounters(c counters.Set) {
	if s.ctrRecorded && s.ctrIter == s.iter {
		panic(fmt.Sprintf("harness: %s recorded counters twice in iteration %d; "+
			"accumulate within the body and record one set per iteration", s.name, s.iter))
	}
	s.ctrRecorded = true
	s.ctrIter = s.iter
	s.ctr.Add(c)
}

// Benchmark is one registered benchmark.
type Benchmark struct {
	// Name identifies the benchmark, e.g. "reduce/GCC-TBB".
	Name string
	// Fn is the benchmark body.
	Fn func(*State)
	// Args is the list of argument tuples; the benchmark runs once per
	// tuple (like Google Benchmark's ->Args). Empty means one run with
	// no arguments.
	Args [][]int64
	// MinTime is the minimum accumulated measuring time per instance
	// (default defaultMinTime).
	MinTime time.Duration
	// MaxIterations caps the adaptive iteration search (default 1e9, as
	// in Google Benchmark).
	MaxIterations int
}

const (
	defaultMinTime  = 100 * time.Millisecond
	defaultMaxIters = 1_000_000_000
)

// Result is the measurement of one benchmark instance.
type Result struct {
	Name       string
	Args       []int64
	Iterations int
	// Seconds is the average time per iteration.
	Seconds float64
	// BytesPerSec is the throughput if SetBytesProcessed was used.
	BytesPerSec float64
	// ItemsPerSec is the throughput if SetItemsProcessed was used.
	ItemsPerSec float64
	// TrafficBytes is the modeled DRAM traffic per call, if SetTrafficBytes
	// was used.
	TrafficBytes int64
	// Counters holds accumulated modeled counters, if recorded.
	Counters    counters.Set
	HasCounters bool
	// Latency is the per-call Seconds distribution (min/max/mean/stddev and
	// p50/p99) over every SetIterationTime sample, when the suite runs with
	// a Registry; zero-valued otherwise or under wall-clock timing.
	Latency counters.RegionStats
	// Trace summarizes the scheduler events of the final (measured)
	// attempt, when the suite runs with a Tracer: per-worker chunk-latency
	// distributions, steal-to-work latency, and idle-gap histograms.
	Trace *trace.Summary
}

// FullName returns the name with argument suffixes ("reduce/1048576").
func (r Result) FullName() string { return instanceName(r.Name, r.Args) }

func instanceName(name string, args []int64) string {
	for _, a := range args {
		name += fmt.Sprintf("/%d", a)
	}
	return name
}

// Suite is a registry of benchmarks.
type Suite struct {
	benches []Benchmark

	// Tracer, when non-nil, receives region and iteration markers on its
	// last track (the harness track) and is summarized per instance into
	// Result.Trace. The same tracer is shared with the execution plane
	// (native pool or simulator), so markers and scheduler events land on
	// one timeline.
	Tracer *trace.Tracer
	// Registry, when non-nil, receives one Seconds sample per
	// SetIterationTime call under the instance's full name — the region
	// names in the registry match the KindRegion markers in the trace.
	Registry *counters.Registry

	// Tuner, when non-nil, receives one tune.Observation per iteration of
	// every benchmark that declared a tuning key with State.Tune, and the
	// trace summary of each measured attempt via ObserveSummary.
	Tuner *tune.Tuner
	// TuneSched, when non-nil, snapshots live scheduler counters (e.g. a
	// native pool's Stats().Counters()); the harness differences
	// consecutive snapshots to attribute steals, parks, and spins to each
	// iteration's observation.
	TuneSched func() counters.Set
}

// Register adds a benchmark to the suite.
func (su *Suite) Register(b Benchmark) {
	if b.Name == "" || b.Fn == nil {
		panic("harness: benchmark needs a name and a body")
	}
	su.benches = append(su.benches, b)
}

// Names returns the registered benchmark names in registration order.
func (su *Suite) Names() []string {
	out := make([]string, len(su.benches))
	for i, b := range su.benches {
		out[i] = b.Name
	}
	return out
}

// Run executes every benchmark whose instance name matches filter (nil
// matches all) and returns the results in deterministic order.
func (su *Suite) Run(filter *regexp.Regexp) []Result {
	var results []Result
	for _, b := range su.benches {
		argSets := b.Args
		if len(argSets) == 0 {
			argSets = [][]int64{nil}
		}
		for _, args := range argSets {
			name := instanceName(b.Name, args)
			if filter != nil && !filter.MatchString(name) {
				continue
			}
			results = append(results, su.runOne(b, args))
		}
	}
	return results
}

// markerBuf returns the harness marker track (the tracer's last track).
func (su *Suite) markerBuf() *trace.Buf {
	if su.Tracer == nil {
		return nil
	}
	return su.Tracer.Buf(su.Tracer.Tracks() - 1)
}

// runOne measures a single benchmark instance with the adaptive
// iteration-count loop: run with n iterations, and while the accumulated
// measuring time is below MinTime, grow n geometrically based on the
// observed per-iteration time.
func (su *Suite) runOne(b Benchmark, args []int64) Result {
	minTime := b.MinTime
	if minTime <= 0 {
		minTime = defaultMinTime
	}
	maxIters := b.MaxIterations
	if maxIters <= 0 {
		maxIters = defaultMaxIters
	}
	name := instanceName(b.Name, args)
	tb := su.markerBuf()
	var region int64
	if tb != nil {
		region = su.Tracer.Intern(name)
	}
	n := 1
	var st *State
	var windowFrom, windowTo int64
	for {
		st = &State{name: name, args: args, target: n,
			tracer: su.Tracer, tbuf: tb, registry: su.Registry,
			tuner: su.Tuner, tuneSched: su.TuneSched}
		var rstart int64
		if tb != nil {
			rstart = su.Tracer.Now()
		}
		b.Fn(st)
		if tb != nil {
			windowFrom, windowTo = rstart, su.Tracer.Now()
			tb.Span(trace.KindRegion, rstart, windowTo, region, int64(n))
		}
		measured := st.measuredSeconds()
		if measured >= minTime.Seconds() || n >= maxIters {
			break
		}
		// Predict the iteration count reaching minTime, with head-room,
		// bounded to a 10x growth per attempt (Google Benchmark's rule).
		next := n * 10
		if measured > 0 {
			predicted := int(float64(n)*minTime.Seconds()/measured*1.4) + 1
			if predicted < next {
				next = predicted
			}
		}
		if next <= n {
			next = n + 1
		}
		if next > maxIters {
			next = maxIters
		}
		n = next
	}
	res := Result{
		Name:       b.Name,
		Args:       args,
		Iterations: st.target,
		Counters:   st.ctr,
	}
	res.HasCounters = st.ctrRecorded
	if su.Registry != nil {
		res.Latency = su.Registry.Stats(name)
	}
	if tb != nil {
		// Summarize only the final attempt — the one the timing comes from.
		res.Trace = trace.SummarizeWindow(su.Tracer, windowFrom, windowTo)
		if su.Tuner != nil && st.tuneOn && res.Trace != nil {
			// Feed the attempt's idle-gap mass back so the tuner's next
			// counter-only observations carry the trace signal too.
			su.Tuner.ObserveSummary(st.tuneKey, res.Trace)
		}
	}
	total := st.measuredSeconds()
	if st.target > 0 {
		res.Seconds = total / float64(st.target)
		res.TrafficBytes = st.traffic / int64(st.target)
	}
	if total > 0 {
		if st.bytes > 0 {
			res.BytesPerSec = float64(st.bytes) / total
		}
		if st.items > 0 {
			res.ItemsPerSec = float64(st.items) / total
		}
	}
	return res
}

func (s *State) measuredSeconds() float64 {
	if s.manualMode {
		return s.manual
	}
	return s.elapsed.Seconds()
}

// SortResults orders results by full instance name, for stable reporting.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].FullName() < rs[j].FullName() })
}
