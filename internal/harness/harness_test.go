package harness

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"pstlbench/internal/counters"
	"pstlbench/internal/trace"
	"pstlbench/internal/tune"
)

func TestStateLoopRunsTargetIterations(t *testing.T) {
	st := &State{name: "x", target: 7}
	n := 0
	for st.Next() {
		n++
	}
	if n != 7 || st.Iterations() != 7 {
		t.Fatalf("ran %d iterations, want 7", n)
	}
}

func TestStateZeroTarget(t *testing.T) {
	st := &State{name: "x", target: 0}
	for st.Next() {
		t.Fatal("body ran with target 0")
	}
}

func TestRangeArguments(t *testing.T) {
	su := &Suite{}
	var got []int64
	su.Register(Benchmark{
		Name:    "args",
		Args:    [][]int64{{1024, 3}},
		MinTime: time.Microsecond,
		Fn: func(s *State) {
			got = []int64{s.Range(0), s.Range(1)}
			for s.Next() {
			}
		},
	})
	rs := su.Run(nil)
	if len(rs) != 1 || got[0] != 1024 || got[1] != 3 {
		t.Fatalf("args = %v", got)
	}
	if rs[0].FullName() != "args/1024/3" {
		t.Fatalf("FullName = %q", rs[0].FullName())
	}
}

func TestRangePanicsOutOfBounds(t *testing.T) {
	st := &State{name: "x", args: []int64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	st.Range(1)
}

func TestAdaptiveIterationsReachMinTime(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:    "spin",
		MinTime: 20 * time.Millisecond,
		Fn: func(s *State) {
			for s.Next() {
				time.Sleep(50 * time.Microsecond)
			}
		},
	})
	rs := su.Run(nil)
	// Sleep granularity varies wildly across kernels; assert only that
	// the adaptive loop grew the count and filled the time budget.
	if rs[0].Iterations < 2 {
		t.Fatalf("iterations = %d, adaptive loop never grew", rs[0].Iterations)
	}
	if total := rs[0].Seconds * float64(rs[0].Iterations); total < 15e-3 {
		t.Fatalf("total measured %vs, want >= ~20ms", total)
	}
	if rs[0].Seconds < 40e-6 {
		t.Fatalf("per-iteration time %v implausibly low", rs[0].Seconds)
	}
}

func TestManualTimingOverridesWallClock(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:    "manual",
		MinTime: time.Millisecond,
		Fn: func(s *State) {
			for s.Next() {
				// Report 1 virtual second per iteration; wall time ~0.
				s.SetIterationTime(1.0)
			}
		},
	})
	rs := su.Run(nil)
	if rs[0].Seconds < 0.99 || rs[0].Seconds > 1.01 {
		t.Fatalf("manual per-iteration time = %v, want 1s", rs[0].Seconds)
	}
	// Manual mode must converge quickly: 1 virtual second >> MinTime.
	if rs[0].Iterations > 2 {
		t.Fatalf("iterations = %d; manual time should satisfy MinTime immediately", rs[0].Iterations)
	}
}

func TestBytesAndItemsThroughput(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:    "bw",
		MinTime: time.Nanosecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(0.5)
			}
			s.SetBytesProcessed(int64(s.Iterations()) * 100)
			s.SetItemsProcessed(int64(s.Iterations()) * 10)
		},
	})
	rs := su.Run(nil)
	if rs[0].BytesPerSec < 199 || rs[0].BytesPerSec > 201 {
		t.Fatalf("BytesPerSec = %v, want 200", rs[0].BytesPerSec)
	}
	if rs[0].ItemsPerSec < 19.9 || rs[0].ItemsPerSec > 20.1 {
		t.Fatalf("ItemsPerSec = %v, want 20", rs[0].ItemsPerSec)
	}
}

func TestTrafficBytesPerCall(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:    "traffic",
		MinTime: time.Nanosecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(0.5)
			}
			s.SetTrafficBytes(int64(s.Iterations()) * 1234)
		},
	})
	rs := su.Run(nil)
	if rs[0].TrafficBytes != 1234 {
		t.Fatalf("TrafficBytes = %v, want per-call 1234", rs[0].TrafficBytes)
	}
}

func TestCounterRecording(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:    "ctr",
		MinTime: time.Nanosecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(1)
				s.RecordCounters(counters.Set{Instructions: 5, DRAMBytes: 7})
			}
		},
	})
	rs := su.Run(nil)
	if !rs[0].HasCounters {
		t.Fatal("counters not recorded")
	}
	per := rs[0].Counters.Instructions / float64(rs[0].Iterations)
	if per != 5 {
		t.Fatalf("instructions per iteration = %v", per)
	}
}

func TestFilter(t *testing.T) {
	su := &Suite{}
	mk := func(name string) {
		su.Register(Benchmark{Name: name, MinTime: time.Nanosecond, Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(1)
			}
		}})
	}
	mk("find/GCC-TBB")
	mk("find/NVC-OMP")
	mk("sort/GCC-TBB")
	rs := su.Run(regexp.MustCompile(`^find/`))
	if len(rs) != 2 {
		t.Fatalf("filter matched %d benchmarks, want 2", len(rs))
	}
	if got := su.Names(); len(got) != 3 {
		t.Fatalf("Names = %v", got)
	}
}

func TestMultipleArgSets(t *testing.T) {
	su := &Suite{}
	var seen []int64
	su.Register(Benchmark{
		Name:    "sizes",
		Args:    [][]int64{{8}, {64}, {512}},
		MinTime: time.Nanosecond,
		Fn: func(s *State) {
			seen = append(seen, s.Range(0))
			for s.Next() {
				s.SetIterationTime(1)
			}
		},
	})
	rs := su.Run(nil)
	if len(rs) != 3 || seen[0] != 8 || seen[2] != 512 {
		t.Fatalf("arg sets: results=%d seen=%v", len(rs), seen)
	}
}

func TestRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Suite{}).Register(Benchmark{Name: "nameless"})
}

func TestPauseResumeTiming(t *testing.T) {
	su := &Suite{}
	su.Register(Benchmark{
		Name:          "paused",
		MinTime:       time.Millisecond,
		MaxIterations: 5,
		Fn: func(s *State) {
			for s.Next() {
				s.PauseTiming()
				time.Sleep(2 * time.Millisecond) // excluded
				s.ResumeTiming()
			}
		},
	})
	rs := su.Run(nil)
	if rs[0].Seconds > 1e-3 {
		t.Fatalf("paused time leaked into measurement: %v", rs[0].Seconds)
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{Name: "b"}, {Name: "a", Args: []int64{2}}, {Name: "a", Args: []int64{1}}}
	SortResults(rs)
	if rs[0].FullName() != "a/1" || rs[2].FullName() != "b" {
		t.Fatalf("sorted order: %v %v %v", rs[0].FullName(), rs[1].FullName(), rs[2].FullName())
	}
}

func TestSetIterationTimeBeforeNextPanics(t *testing.T) {
	st := &State{name: "early", target: 3}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetIterationTime before first Next did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "before the first Next") {
			t.Fatalf("panic message %v lacks contract explanation", r)
		}
	}()
	st.SetIterationTime(0.5)
}

func TestSetIterationTimeTwicePerIterationPanics(t *testing.T) {
	st := &State{name: "twice", target: 3}
	st.Next()
	st.SetIterationTime(0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("second SetIterationTime in one iteration did not panic")
		}
	}()
	st.SetIterationTime(0.1)
}

func TestRecordCountersTwicePerIterationPanics(t *testing.T) {
	st := &State{name: "ctr", target: 3}
	st.Next()
	st.RecordCounters(counters.Set{Instructions: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second RecordCounters in one iteration did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "twice in iteration") {
			t.Fatalf("panic message %v lacks contract explanation", r)
		}
	}()
	st.RecordCounters(counters.Set{Instructions: 1})
}

func TestOncePerIterationAcrossIterationsIsFine(t *testing.T) {
	st := &State{name: "ok", target: 5}
	for st.Next() {
		st.SetIterationTime(0.01)
		st.RecordCounters(counters.Set{Instructions: 10})
	}
	if st.ctr.Instructions != 50 {
		t.Fatalf("accumulated %v instructions, want 50", st.ctr.Instructions)
	}
}

func TestSuiteTracerRecordsRegionsAndIterations(t *testing.T) {
	tr := trace.New(1, trace.DefaultCapacity)
	reg := counters.NewRegistry()
	su := &Suite{Tracer: tr, Registry: reg}
	su.Register(Benchmark{
		Name:    "traced",
		Args:    [][]int64{{64}},
		MinTime: time.Millisecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(0.01)
			}
		},
	})
	rs := su.Run(nil)
	if rs[0].Trace == nil {
		t.Fatal("traced run has nil Result.Trace")
	}
	evs := tr.Events(0)
	var regions, iters int
	for _, e := range evs {
		switch e.Kind {
		case trace.KindRegion:
			regions++
			if tr.NameOf(e.A0) != "traced/64" {
				t.Fatalf("region marker names %q, want traced/64", tr.NameOf(e.A0))
			}
		case trace.KindIteration:
			iters++
		}
	}
	if regions == 0 || iters == 0 {
		t.Fatalf("markers: %d regions, %d iterations", regions, iters)
	}
	// The region name in the trace matches the registry region fed by
	// SetIterationTime.
	stats := reg.Stats("traced/64")
	if stats.Calls == 0 {
		t.Fatal("registry has no samples under the instance name")
	}
	if stats.Min != 0.01 || stats.Max != 0.01 {
		t.Fatalf("registry stats %+v, want 10ms samples", stats)
	}
}

func TestResultTraceSummarizesFinalAttemptOnly(t *testing.T) {
	tr := trace.New(1, trace.DefaultCapacity)
	su := &Suite{Tracer: tr}
	su.Register(Benchmark{
		Name:    "window",
		MinTime: time.Millisecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(0.01)
			}
		},
	})
	rs := su.Run(nil)
	s := rs[0].Trace
	if s == nil {
		t.Fatal("nil trace summary")
	}
	// The final attempt saw Iterations iteration markers plus nothing else
	// on the harness track inside the window (the region span itself ends
	// at the window edge).
	if s.Events == 0 {
		t.Fatal("summary window captured no events")
	}
	if int(s.Events) > rs[0].Iterations+1 {
		t.Fatalf("window captured %d events for %d iterations; leaked earlier attempts",
			s.Events, rs[0].Iterations)
	}
}

// TestTuneAutoWiring pins the adaptive-grain plumbing: a benchmark that
// declares a tuning key gets exactly one observation per iteration, whose
// duration comes from manual timing and whose scheduler counters merge the
// RecordCounters delta with the TuneSched snapshot delta.
func TestTuneAutoWiring(t *testing.T) {
	tn := tune.New(tune.Options{})
	sched := counters.Set{}
	su := &Suite{
		Tuner:     tn,
		TuneSched: func() counters.Set { return sched },
	}
	key := tune.Key{Site: "wired", N: 1 << 12, Workers: 4}
	iters := 0
	su.Register(Benchmark{
		Name:          "wired",
		MaxIterations: 6,
		MinTime:       time.Nanosecond, // one attempt
		Fn: func(st *State) {
			st.Tune(key)
			for st.Next() {
				iters++
				// Live scheduler counters advance during the iteration.
				sched.LocalSteals += 2
				sched.RemoteSteals += 5
				st.SetIterationTime(1e-3)
				st.RecordCounters(counters.Set{Parks: 1})
			}
		},
	})
	su.Run(nil)
	if iters == 0 {
		t.Fatal("benchmark body never ran")
	}
	// Every iteration produced one observation: the tuner's trial count
	// per operating point must sum to the iteration count.
	total := 0
	for _, k := range tn.Keys() {
		if k != key {
			t.Fatalf("observation landed on key %v, want %v", k, key)
		}
	}
	if _, _, ok := tn.Best(key); !ok {
		t.Fatal("tuner saw no observations")
	}
	reg := tn.Registry()
	for _, r := range reg.Regions() {
		_, calls := reg.Region(r)
		total += calls
	}
	if total != iters {
		t.Fatalf("tuner recorded %d observations, want one per iteration (%d)", total, iters)
	}
}

// TestTuneWithoutTunerIsNoop: State.Tune must be safe when the suite has
// no tuner.
func TestTuneWithoutTunerIsNoop(t *testing.T) {
	su := &Suite{}
	ran := false
	su.Register(Benchmark{
		Name:          "plain",
		MaxIterations: 2,
		MinTime:       time.Nanosecond,
		Fn: func(st *State) {
			st.Tune(tune.Key{Site: "plain", N: 10, Workers: 1})
			for st.Next() {
				ran = true
			}
		},
	})
	su.Run(nil)
	if !ran {
		t.Fatal("body did not run")
	}
}

// TestTuneObservesWallClockWithoutManualTiming: bodies that never call
// SetIterationTime still produce observations from wall-clock deltas.
func TestTuneObservesWallClockWithoutManualTiming(t *testing.T) {
	tn := tune.New(tune.Options{})
	su := &Suite{Tuner: tn}
	key := tune.Key{Site: "wall", N: 1 << 10, Workers: 2}
	su.Register(Benchmark{
		Name:          "wall",
		MaxIterations: 3,
		MinTime:       time.Nanosecond,
		Fn: func(st *State) {
			st.Tune(key)
			for st.Next() {
				time.Sleep(100 * time.Microsecond)
			}
		},
	})
	su.Run(nil)
	if _, _, ok := tn.Best(key); !ok {
		t.Fatal("no wall-clock observations reached the tuner")
	}
}

func TestResultLatencyFromRegistry(t *testing.T) {
	su := &Suite{Registry: counters.NewRegistry()}
	su.Register(Benchmark{
		Name:          "lat",
		MinTime:       100 * time.Millisecond,
		MaxIterations: 100,
		Fn: func(s *State) {
			i := 0.0
			for s.Next() {
				// A virtual ramp 0.01, 0.02, ... s: spread with known order.
				i++
				s.SetIterationTime(i / 100)
			}
		},
	})
	rs := su.Run(nil)
	lat := rs[0].Latency
	// The registry sees every attempt of the adaptive loop, so it holds at
	// least the final attempt's samples.
	if lat.Calls < rs[0].Iterations || lat.Calls < 2 {
		t.Fatalf("Latency.Calls = %d, want >= %d", lat.Calls, rs[0].Iterations)
	}
	if lat.P50 <= lat.Min || lat.P50 >= lat.P99 || lat.P99 > lat.Max {
		t.Fatalf("quantiles out of order: min=%v p50=%v p99=%v max=%v",
			lat.Min, lat.P50, lat.P99, lat.Max)
	}
	// Without a registry the field stays zero rather than inventing numbers.
	su2 := &Suite{}
	su2.Register(Benchmark{Name: "lat", MinTime: time.Nanosecond,
		Fn: func(s *State) {
			for s.Next() {
				s.SetIterationTime(0.5)
			}
		}})
	if l := su2.Run(nil)[0].Latency; l.Calls != 0 {
		t.Fatalf("Latency populated without a Registry: %+v", l)
	}
}
