package report

import (
	"strings"
	"testing"

	"pstlbench/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"Name", "Value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "12345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Fatalf("header line: %q", lines[1])
	}
	// All data lines share the header's width.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned: %q vs %q", lines[3], lines[4])
	}
}

func TestTableShortRow(t *testing.T) {
	tb := &Table{Headers: []string{"A", "B", "C"}}
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row dropped")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Headers: []string{"name", "note"}}
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestChartRendersSeriesAndLegend(t *testing.T) {
	c := &Chart{
		Title:  "speedup",
		XLabel: "threads", YLabel: "speedup",
		Series: []Series{
			{Name: "ideal", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 4, 8}},
			{Name: "real", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.8, 3, 4}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "* = ideal") || !strings.Contains(out, "+ = real") {
		t.Fatalf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "2^0") || !strings.Contains(out, "2^3") {
		t.Fatalf("chart missing log-2 x ticks:\n%s", out)
	}
	// Markers must appear in the plot area.
	if strings.Count(out, "*") < 2 || strings.Count(out, "+") < 2 {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestChartLogY(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{
			{Name: "t", X: []float64{8, 1 << 20}, Y: []float64{1e-6, 1}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "1.0") { // top label 10^0
		t.Fatalf("log-y labels missing:\n%s", out)
	}
	// Non-positive values must not panic in log mode.
	c.Series = append(c.Series, Series{Name: "zero", X: []float64{8}, Y: []float64{0}})
	_ = c.String()
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.String(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", X: []float64{4}, Y: []float64{2}}}}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestFmtShort(t *testing.T) {
	cases := map[float64]string{
		150:   "150",
		2.5:   "2.5",
		0.004: "4ms",
		3e-6:  "3us",
		5e-9:  "5ns",
		0:     "0",
	}
	for v, want := range cases {
		if got := fmtShort(v); got != want {
			t.Errorf("fmtShort(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	g := Gantt{
		Title: "sched",
		Rows: []GanttRow{
			{Label: "core 0", Spans: []Span{{Start: 0, End: 0.5}, {Start: 0.6, End: 1.0, Mark: '1'}}},
			{Label: "core 1", Spans: []Span{{Start: 0.2, End: 0.4, Mark: 'x'}}},
		},
	}
	out := g.String()
	if !strings.Contains(out, "sched") || !strings.Contains(out, "core 0") {
		t.Fatalf("missing parts:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	row0 := lines[1]
	if !strings.Contains(row0, "#") || !strings.Contains(row0, "1") {
		t.Fatalf("row 0 missing marks: %q", row0)
	}
	if !strings.Contains(lines[2], "x") {
		t.Fatalf("row 1 missing truncation mark: %q", lines[2])
	}
	// Idle time renders as dots.
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("row 1 missing idle dots: %q", lines[2])
	}
	empty := Gantt{Rows: []GanttRow{{Label: "idle"}}}
	if !strings.Contains(empty.String(), "(no spans)") {
		t.Fatal("empty gantt should say so")
	}
}

func TestTraceTimeline(t *testing.T) {
	tr := trace.New(2, 256)
	tr.SetLabel(0, "worker 0")
	tr.SetLabel(1, "worker 1")
	ms := int64(1e6)
	b0, b1 := tr.Buf(0), tr.Buf(1)
	b0.Span(trace.KindChunk, 0, 5*ms, 0, 100)
	b0.Span(trace.KindChunk, 6*ms, 10*ms, 100, 200)
	b1.Instant(trace.KindSteal, 1*ms, 0, trace.TierRemote)
	b1.Span(trace.KindChunk, 2*ms, 9*ms, 200, 300)
	b1.Span(trace.KindPark, 9*ms, 10*ms, 0, 0)
	s := trace.Summarize(tr)
	tracks := [][]trace.Event{tr.Events(0), tr.Events(1)}
	out := TraceTimeline(tracks, tr.Labels(), s, 40)
	for _, want := range []string{"worker 0", "worker 1", "#", "s", "p", "chunks", "steals(rem)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "lost") {
		t.Fatalf("timeline reports loss without overflow:\n%s", out)
	}
}

func TestTraceTimelineEmpty(t *testing.T) {
	out := TraceTimeline(nil, nil, nil, 40)
	if !strings.Contains(out, "no spans") {
		t.Fatalf("empty timeline output: %q", out)
	}
}
