package report

import (
	"fmt"
	"strings"

	"pstlbench/internal/trace"
)

// TraceTimeline renders a trace as a terminal view: an ASCII Gantt of the
// chunk spans (one row per worker or core, '#' busy, 's' steal instants,
// 'p' parks), a per-track statistics table, and the idle-gap histogram —
// the quick-look companion to the Chrome-trace export.
func TraceTimeline(tracks [][]trace.Event, labels []string, s *trace.Summary, width int) string {
	var b strings.Builder
	clock := "wall"
	if s != nil && s.Virtual {
		clock = "virtual"
	}
	title := fmt.Sprintf("schedule (%s time)", clock)
	g := &Gantt{Title: title, Width: width}
	base := int64(0)
	if s != nil {
		base = int64(s.Start * 1e9)
	}
	for ti, evs := range tracks {
		label := fmt.Sprintf("track %d", ti)
		if ti < len(labels) && labels[ti] != "" {
			label = labels[ti]
		}
		row := GanttRow{Label: label}
		for _, e := range evs {
			start := float64(e.Start-base) * 1e-9
			end := float64(e.End-base) * 1e-9
			switch e.Kind {
			case trace.KindChunk:
				row.Spans = append(row.Spans, Span{Start: start, End: end})
			case trace.KindSteal:
				row.Spans = append(row.Spans, Span{Start: start, End: start, Mark: 's'})
			case trace.KindPark:
				row.Spans = append(row.Spans, Span{Start: start, End: end, Mark: 'p'})
			}
		}
		if len(row.Spans) > 0 {
			g.Rows = append(g.Rows, row)
		}
	}
	b.WriteString(g.String())
	b.WriteString("  (# chunk  s steal  p park)\n")
	if s == nil {
		return b.String()
	}

	tbl := &Table{Headers: []string{
		"track", "chunks", "busy", "chunk p50/p95/max", "steals(rem)", "steal->work p50", "parks",
	}}
	for _, ts := range s.Tracks {
		if ts.Chunks == 0 && ts.LocalSteals == 0 && ts.RemoteSteals == 0 && ts.Parks == 0 {
			continue
		}
		label := ts.Label
		if label == "" {
			label = fmt.Sprintf("track %d", ts.Track)
		}
		s2w := "-"
		if ts.StealToWork.Count > 0 {
			s2w = fmtShort(ts.StealToWork.P50)
		}
		tbl.AddRow(
			label,
			fmt.Sprintf("%d", ts.Chunks),
			fmtShort(ts.BusySeconds),
			ts.Chunk.String(),
			fmt.Sprintf("%d(%d)", ts.LocalSteals+ts.RemoteSteals, ts.RemoteSteals),
			s2w,
			fmt.Sprintf("%d", ts.Parks),
		)
	}
	b.WriteString("\n")
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nevents: %d", s.Events)
	if s.Lost > 0 {
		fmt.Fprintf(&b, " (lost %d to ring overflow)", s.Lost)
	}
	fmt.Fprintf(&b, "  span: %s\n", fmtShort(s.End-s.Start))
	if s.IdleGap.Total() > 0 {
		fmt.Fprintf(&b, "idle gaps: %s\n", s.IdleGap)
	}
	return b.String()
}
