package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Span is one busy interval of a Gantt row.
type Span struct {
	Start, End float64
	// Mark distinguishes span classes ('#' work, 'x' truncated, ...).
	// 0 draws '#'.
	Mark byte
}

// Gantt renders per-core schedules as an ASCII timeline — one row per
// core, time left to right.
type Gantt struct {
	Title string
	// Rows maps row label -> busy spans.
	Rows  []GanttRow
	Width int // timeline columns (default 64)
}

// GanttRow is one labelled timeline.
type GanttRow struct {
	Label string
	Spans []Span
}

// String renders the chart.
func (g *Gantt) String() string {
	w := g.Width
	if w <= 0 {
		w = 64
	}
	var b strings.Builder
	if g.Title != "" {
		b.WriteString(g.Title + "\n")
	}
	tmax := 0.0
	labelW := 0
	for _, r := range g.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		for _, s := range r.Spans {
			tmax = math.Max(tmax, s.End)
		}
	}
	if tmax <= 0 {
		b.WriteString("(no spans)\n")
		return b.String()
	}
	for _, r := range g.Rows {
		line := []byte(strings.Repeat(".", w))
		spans := append([]Span(nil), r.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			lo := int(s.Start / tmax * float64(w-1))
			hi := int(s.End / tmax * float64(w-1))
			mark := s.Mark
			if mark == 0 {
				mark = '#'
			}
			for c := lo; c <= hi && c < w; c++ {
				line[c] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.Label, string(line))
	}
	fmt.Fprintf(&b, "%-*s  0%s%s\n", labelW, "", strings.Repeat(" ", w-len(fmtShort(tmax))-1), fmtShort(tmax))
	return b.String()
}
