// Package report renders experiment results as aligned text tables, ASCII
// charts (log-scaled x axis, like the paper's figures), and CSV.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is an ASCII line chart. The x axis is plotted in log2 (the paper's
// problem-size and thread-count axes); the y axis is linear by default or
// log10 when LogY is set (the paper's execution-time axes).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

// markers label the series in drawing order.
const markers = "*+ox#@%&"

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	// Gather bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := math.Log2(s.X[i])
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	if math.IsInf(xmin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		var prevCol, prevRow int
		hasPrev := false
		for i := range s.X {
			x := math.Log2(s.X[i])
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((x - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((y-ymin)/(ymax-ymin)*float64(h-1))
			if hasPrev {
				drawLine(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = mark
			prevCol, prevRow, hasPrev = col, row, true
		}
	}
	// y-axis labels on 4 rows.
	for r := 0; r < h; r++ {
		frac := float64(h-1-r) / float64(h-1)
		val := ymin + frac*(ymax-ymin)
		label := ""
		if r == 0 || r == h-1 || r == h/2 {
			if c.LogY {
				// Log-y charts plot times; label with time units.
				label = fmtShort(math.Pow(10, val))
			} else {
				label = fmt.Sprintf("%.3g", val)
			}
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	// x ticks: 2^k labels at the edges and middle.
	lo, mid, hi := xmin, (xmin+xmax)/2, xmax
	tick := func(v float64) string { return fmt.Sprintf("2^%.3g", v) }
	pad := strings.Repeat(" ", 12)
	axis := []byte(pad + strings.Repeat(" ", w))
	place := func(v float64, s string, rightAlign bool) {
		col := 12 + int((v-xmin)/(xmax-xmin)*float64(w-1))
		if rightAlign {
			col -= len(s) - 1
		}
		if col < 0 {
			col = 0
		}
		for i := 0; i < len(s) && col+i < len(axis); i++ {
			axis[col+i] = s[i]
		}
	}
	place(lo, tick(lo), false)
	place(mid, tick(mid), false)
	place(hi, tick(hi), true)
	b.WriteString(strings.TrimRight(string(axis), " ") + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%12sx: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%12s%c = %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawLine draws a faint connector between two points (Bresenham), not
// overwriting series markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := sign(x1-x0), sign(y1-y0)
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// fmtShort formats a value compactly for axis labels.
func fmtShort(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case av >= 1e-3:
		return fmt.Sprintf("%.2gms", v*1e3)
	case av >= 1e-6:
		return fmt.Sprintf("%.2gus", v*1e6)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2gns", v*1e9)
	}
}
