package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pstlbench/internal/serve"
)

// tenantFor finds a tenant name whose consistent-hash home is shard.
func tenantFor(t *testing.T, ring *Ring, shard int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if ring.Shard(name) == shard {
			return name
		}
	}
	t.Fatalf("no tenant hashes to shard %d", shard)
	return ""
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

// waitRunning polls until the job reports state "running".
func waitRunning(t *testing.T, r *Router, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, ok := r.Get(id)
		if ok && info.State == "running" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running (state %q)", id, info.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterCompletesJobsAcrossShards: the baseline contract — mixed
// kernels and tenants through a 4-shard router all complete with the
// deterministic checksum their kernel owes.
func TestRouterCompletesJobsAcrossShards(t *testing.T) {
	r, err := New(Config{
		Shards: 4,
		Serve:  serve.Config{Workers: 2, QueueCap: 64, MaxConcurrent: 2},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	kernels := []string{"foreach", "reduce", "scan", "sort", "find"}
	var jobs []*Job
	for i := 0; i < 20; i++ {
		spec := serve.Spec{
			Kernel: kernels[i%len(kernels)],
			N:      1 << 12,
			Tenant: fmt.Sprintf("tenant-%d", i%7),
		}
		j, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		waitJob(t, j)
		info, ok := r.Get(j.ID())
		if !ok {
			t.Fatalf("job %s vanished", j.ID())
		}
		if info.State != "done" {
			t.Fatalf("job %s: state %q reason %q, want done", j.ID(), info.State, info.Reason)
		}
		want := serve.ExpectedChecksum(kernels[i%len(kernels)], 1<<12)
		if info.Checksum != want {
			t.Fatalf("job %s: checksum %v, want %v", j.ID(), info.Checksum, want)
		}
		if info.Shard < 0 || info.Shard >= 4 {
			t.Fatalf("job %s: shard %d out of range", j.ID(), info.Shard)
		}
	}
	st := r.Stats()
	if st.Accepted != 20 || st.Completed != 20 || st.Rejected != 0 {
		t.Fatalf("stats accepted=%d completed=%d rejected=%d, want 20/20/0", st.Accepted, st.Completed, st.Rejected)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries, want 4", len(st.PerShard))
	}
	var sum int64
	for _, ss := range st.PerShard {
		sum += ss.Completed
	}
	if sum != 20 {
		t.Fatalf("per-shard completed sums to %d, want 20", sum)
	}
}

// TestPlacementFollowsRingWhenIdle: with no load, every job lands on its
// tenant's consistent-hash home and nothing spills.
func TestPlacementFollowsRingWhenIdle(t *testing.T) {
	r, err := New(Config{
		Shards:         4,
		Serve:          serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1},
		RebalanceEvery: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	for shard := 0; shard < 4; shard++ {
		tenant := tenantFor(t, r.ring, shard)
		j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: tenant})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitJob(t, j)
		info, _ := r.Get(j.ID())
		if info.Shard != shard {
			t.Fatalf("tenant %q: placed on shard %d, home is %d", tenant, info.Shard, shard)
		}
	}
	if st := r.Stats(); st.Spills != 0 {
		t.Fatalf("idle router spilled %d jobs", st.Spills)
	}
}

// TestOverflowSpillsUnderSaturatedHome: once the home shard's Load
// crosses SpillThreshold, new jobs for the same tenant overflow to the
// least-loaded shard instead of queueing behind the hot spot.
func TestOverflowSpillsUnderSaturatedHome(t *testing.T) {
	r, err := New(Config{
		Shards:         2,
		Serve:          serve.Config{Workers: 1, QueueCap: 4, MaxConcurrent: 1},
		RebalanceEvery: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	home := 0
	tenant := tenantFor(t, r.ring, home)
	blocker, err := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 22, Tenant: tenant})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitRunning(t, r, blocker.ID())

	// Three queued jobs bring home occupancy to 3/4 = SpillThreshold.
	for i := 0; i < 3; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: tenant})
		if err != nil {
			t.Fatalf("Submit filler %d: %v", i, err)
		}
		info, _ := r.Get(j.ID())
		if info.Shard != home {
			t.Fatalf("filler %d spilled to shard %d before saturation", i, info.Shard)
		}
	}
	spilled, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: tenant})
	if err != nil {
		t.Fatalf("Submit past threshold: %v", err)
	}
	info, _ := r.Get(spilled.ID())
	if info.Shard != 1 {
		t.Fatalf("saturated-home job landed on shard %d, want overflow to 1", info.Shard)
	}
	if st := r.Stats(); st.Spills != 1 {
		t.Fatalf("spills=%d, want 1", st.Spills)
	}
	waitJob(t, spilled) // completes on the idle shard while home is still blocked
}

// TestRebalanceMigratesQueuedJobs: a saturated shard next to an idle one
// gets its queued jobs withdrawn and resubmitted there; migrated jobs are
// not billed as canceled and still complete with valid checksums.
func TestRebalanceMigratesQueuedJobs(t *testing.T) {
	r, err := New(Config{
		Shards:         2,
		Serve:          serve.Config{Workers: 1, QueueCap: 8, MaxConcurrent: 1},
		SpillThreshold: 2, // disable admission spill; force everything home
		MigrateBatch:   4,
		RebalanceEvery: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	tenant := tenantFor(t, r.ring, 0)
	blocker, err := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 22, Tenant: tenant})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitRunning(t, r, blocker.ID())

	var queued []*Job
	for i := 0; i < 8; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: tenant})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	if got := r.Shard(0).Queued(); got != 8 {
		t.Fatalf("home shard queued=%d, want 8", got)
	}

	r.Rebalance()

	st := r.Stats()
	if st.Migrations != 4 {
		t.Fatalf("migrations=%d, want 4", st.Migrations)
	}
	if st.PerShard[1].Accepted != 4 {
		t.Fatalf("cold shard accepted=%d, want the 4 migrated jobs", st.PerShard[1].Accepted)
	}
	if st.PerShard[0].Withdrawn != 4 {
		t.Fatalf("hot shard withdrawn=%d, want 4", st.PerShard[0].Withdrawn)
	}

	for _, j := range queued {
		waitJob(t, j)
		info, _ := r.Get(j.ID())
		if info.State != "done" {
			t.Fatalf("job %s: state %q reason %q after migration, want done", j.ID(), info.State, info.Reason)
		}
		if want := serve.ExpectedChecksum("reduce", 1<<12); info.Checksum != want {
			t.Fatalf("job %s: checksum %v, want %v", j.ID(), info.Checksum, want)
		}
	}
	if st := r.Stats(); st.Canceled != 0 {
		t.Fatalf("router billed %d cancellations for migrated jobs", st.Canceled)
	}
	waitJob(t, blocker)
}

// TestReplayRecoversTerminalCanceledAndPending builds a log by hand with
// the three replay classes: a completed job (recovered, never re-run), a
// canceled-but-not-completed job (finalized as canceled now), and a
// pending job (resubmitted and run to completion). ID sequencing must
// also survive: the first post-replay submission continues the series.
func TestReplayRecoversTerminalCanceledAndPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog.jsonl")
	doneSum := serve.ExpectedChecksum("reduce", 1<<10)
	seed := []Record{
		{T: "submit", ID: "job-1", Seq: 1, Kernel: "reduce", N: 1 << 10, Tenant: "a"},
		{T: "complete", ID: "job-1", State: "done", Checksum: doneSum},
		{T: "submit", ID: "job-2", Seq: 2, Kernel: "scan", N: 1 << 10, Tenant: "b"},
		{T: "cancel", ID: "job-2"},
		{T: "submit", ID: "job-3", Seq: 3, Kernel: "reduce", N: 1 << 10, Tenant: "c"},
	}
	var data []byte
	for _, rec := range seed {
		b, _ := json.Marshal(rec)
		data = append(append(data, b...), '\n')
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	r, err := New(Config{
		Shards:  2,
		Serve:   serve.Config{Workers: 1, QueueCap: 16, MaxConcurrent: 1},
		LogPath: path,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	st := r.Stats()
	if st.Recovered != 2 || st.Replayed != 1 {
		t.Fatalf("recovered=%d replayed=%d, want 2/1", st.Recovered, st.Replayed)
	}
	if info, ok := r.Get("job-1"); !ok || info.State != "done" || info.Checksum != doneSum {
		t.Fatalf("job-1 recovered as %+v, want done with checksum %v", info, doneSum)
	}
	info, ok := r.Get("job-2")
	if !ok || info.State != "canceled" {
		t.Fatalf("job-2 recovered as %+v, want canceled", info)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, ok = r.Get("job-3")
		if ok && info.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job-3 never completed after replay (now %+v)", info)
		}
		time.Sleep(time.Millisecond)
	}
	if info.Checksum != doneSum {
		t.Fatalf("job-3 checksum %v, want %v", info.Checksum, doneSum)
	}

	// ID sequence continues after the replayed range.
	j4, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: "d"})
	if err != nil {
		t.Fatalf("Submit after replay: %v", err)
	}
	if j4.ID() != "job-4" {
		t.Fatalf("post-replay ID %q, want job-4", j4.ID())
	}
	waitJob(t, j4)
	r.Close()

	// The log now carries exactly one complete record per ID.
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	completes := map[string]int{}
	for _, rec := range recs {
		if rec.T == "complete" {
			completes[rec.ID]++
		}
	}
	for _, id := range []string{"job-1", "job-2", "job-3", "job-4"} {
		if completes[id] != 1 {
			t.Fatalf("id %s has %d complete records, want exactly 1 (%v)", id, completes[id], completes)
		}
	}
}

// TestGracefulCloseLeavesBacklogReplayable: Close cancels queued AND
// running jobs with reason "shutdown" (serve's cooperative cancel) but
// writes no completion record for them, so a restarted router resumes
// every unfinished job — graceful stop and crash converge on the same
// replay path.
func TestGracefulCloseLeavesBacklogReplayable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog.jsonl")
	r, err := New(Config{
		Shards:  1,
		Serve:   serve.Config{Workers: 1, QueueCap: 16, MaxConcurrent: 1},
		LogPath: path,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	blocker, err := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 22, Tenant: "a"})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitRunning(t, r, blocker.ID())
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: "b"})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, j.ID())
	}
	r.Close() // running blocker and the 5 queued all die as "shutdown"

	r2, err := New(Config{
		Shards:  1,
		Serve:   serve.Config{Workers: 1, QueueCap: 16, MaxConcurrent: 1},
		LogPath: path,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	st := r2.Stats()
	if st.Replayed != 6 || st.Recovered != 0 {
		t.Fatalf("replayed=%d recovered=%d, want all 6 unfinished jobs resumed", st.Replayed, st.Recovered)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range append(ids, blocker.ID()) {
		for {
			info, ok := r2.Get(id)
			if ok && info.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("resumed job %s never completed (%+v)", id, info)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReplayOverflowParksInBacklog: more pending records than the shards
// can admit at once park in the router backlog and drain through the
// rebalancer as capacity frees — no replayed job is dropped.
func TestReplayOverflowParksInBacklog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog.jsonl")
	var data []byte
	const jobs = 10
	for i := 1; i <= jobs; i++ {
		b, _ := json.Marshal(Record{
			T: "submit", ID: fmt.Sprintf("job-%d", i), Seq: int64(i),
			Kernel: "reduce", N: 1 << 10, Tenant: fmt.Sprintf("t%d", i%3),
		})
		data = append(append(data, b...), '\n')
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	r, err := New(Config{
		Shards:         1,
		Serve:          serve.Config{Workers: 1, QueueCap: 2, MaxConcurrent: 1},
		LogPath:        path,
		RebalanceEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	if st := r.Stats(); st.Replayed != jobs {
		t.Fatalf("replayed=%d, want %d", st.Replayed, jobs)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := r.Stats()
		if st.Completed == jobs && st.Backlog == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= jobs; i++ {
		id := fmt.Sprintf("job-%d", i)
		info, ok := r.Get(id)
		if !ok || info.State != "done" {
			t.Fatalf("replayed %s: %+v, want done", id, info)
		}
	}
}

// TestRouterCancel covers both cancel paths: a queued shard-held job and
// idempotent re-cancel of a terminal one.
func TestRouterCancel(t *testing.T) {
	r, err := New(Config{
		Shards:         1,
		Serve:          serve.Config{Workers: 1, QueueCap: 8, MaxConcurrent: 1},
		RebalanceEvery: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	blocker, _ := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 22, Tenant: "a"})
	waitRunning(t, r, blocker.ID())
	victim, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 10, Tenant: "b"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	info, err := r.Cancel(victim.ID())
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if info.State != "canceled" {
		t.Fatalf("canceled job state %q", info.State)
	}
	waitJob(t, victim)
	if info, err = r.Cancel(victim.ID()); err != nil || info.State != "canceled" {
		t.Fatalf("re-cancel: info=%+v err=%v", info, err)
	}
	if _, err := r.Cancel("job-999"); err == nil {
		t.Fatal("Cancel of unknown id succeeded")
	}
}
