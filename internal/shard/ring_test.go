package shard

import (
	"fmt"
	"testing"
)

const ringTenants = 10000

// TestRingDeterministic pins that placement is a pure function of the
// tenant name and ring shape — the property replay relies on.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	for i := 0; i < ringTenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if a.Shard(name) != b.Shard(name) {
			t.Fatalf("tenant %q: ring placement not deterministic (%d vs %d)", name, a.Shard(name), b.Shard(name))
		}
	}
}

// TestRingBalance checks virtual points keep shard shares near 1/N.
func TestRingBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		ring := NewRing(shards, 64)
		counts := make([]int, shards)
		for i := 0; i < ringTenants; i++ {
			counts[ring.Shard(fmt.Sprintf("tenant-%d", i))]++
		}
		ideal := 1.0 / float64(shards)
		for s, c := range counts {
			share := float64(c) / ringTenants
			if share < ideal*0.5 || share > ideal*1.6 {
				t.Errorf("shards=%d: shard %d holds %.3f of tenants, ideal %.3f", shards, s, share, ideal)
			}
		}
	}
}

// TestRingStability is the consistent-hash contract: growing the ring from
// N to N+1 shards remaps roughly a 1/(N+1) fraction of tenants, and every
// tenant that moves, moves onto the new shard — existing shards never
// trade tenants with each other.
func TestRingStability(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		before, after := NewRing(n, 64), NewRing(n+1, 64)
		moved := 0
		for i := 0; i < ringTenants; i++ {
			name := fmt.Sprintf("tenant-%d", i)
			a, b := before.Shard(name), after.Shard(name)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d: tenant %q moved %d -> %d; movers must land on the new shard %d", n, name, a, b, n)
			}
		}
		frac := float64(moved) / ringTenants
		ideal := 1.0 / float64(n+1)
		if frac < ideal*0.4 || frac > ideal*2.0 {
			t.Errorf("n=%d->%d: %.3f of tenants remapped, want near %.3f", n, n+1, frac, ideal)
		}
	}
}
