package shard

import "pstlbench/internal/serve"

// JobHandle is the router's view of one job incarnation on one shard. It
// is comparable: the router's incarnation check (`j.sj != sj`) relies on
// two handles for the same incarnation comparing equal.
type JobHandle interface {
	// ID returns the job identifier — the router-assigned ID, since the
	// router stamps Spec.ID before placement.
	ID() string
	// Done is closed when the job reaches a terminal state on this shard —
	// including "the shard lost it" (worker death, migration withdrawal).
	Done() <-chan struct{}
}

// ShardHandle abstracts one shard behind the router: an in-process
// serve.Server (Local) or a worker process reached over a transport
// (cluster.RemoteShard). The router drives placement, migration, health
// probing, and dead-shard recovery exclusively through this surface, so
// local and remote shards mix freely behind one ring.
//
// Contract:
//   - Submit must deduplicate on Spec.ID: a resubmit of an ID the shard
//     already holds returns a handle to the existing job, never a copy.
//   - Info on a terminal handle must return the terminal snapshot without
//     blocking or touching the network.
//   - Withdraw returns the withdrawn job IDs only; the router resubmits
//     from its own authoritative Spec (span and absolute deadline intact).
//   - Load/Queued/QueueCap are placement signals; a remote handle serves
//     them from its last heartbeat rather than a per-call RPC.
//   - Close must release every outstanding JobHandle (close its Done); the
//     router closes a handle after declaring its shard dead.
type ShardHandle interface {
	Submit(spec serve.Spec) (JobHandle, error)
	Info(h JobHandle) serve.JobInfo
	Cancel(id string) (serve.JobInfo, error)
	Withdraw(max int) []string
	Load() float64
	Queued() int
	QueueCap() int
	Stats() serve.Stats
	// Ping probes liveness — the router's heartbeat. nil means healthy; a
	// remote handle refreshes its cached load signals on success.
	Ping() error
	Close()
}

// Local adapts an in-process serve.Server to the ShardHandle surface.
type Local struct{ s *serve.Server }

// NewLocal wraps s as a ShardHandle.
func NewLocal(s *serve.Server) *Local { return &Local{s: s} }

// Server returns the wrapped in-process server.
func (l *Local) Server() *serve.Server { return l.s }

// localJob is a value type so two wraps of the same *serve.Job compare
// equal as JobHandles.
type localJob struct{ sj *serve.Job }

func (j localJob) ID() string            { return j.sj.ID() }
func (j localJob) Done() <-chan struct{} { return j.sj.Done() }

func (l *Local) Submit(spec serve.Spec) (JobHandle, error) {
	sj, err := l.s.Submit(spec)
	if err != nil {
		return nil, err
	}
	return localJob{sj}, nil
}

func (l *Local) Info(h JobHandle) serve.JobInfo { return l.s.Info(h.(localJob).sj) }

func (l *Local) Cancel(id string) (serve.JobInfo, error) { return l.s.Cancel(id) }

func (l *Local) Withdraw(max int) []string {
	jobs := l.s.WithdrawQueued(max)
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID()
	}
	return ids
}

func (l *Local) Load() float64      { return l.s.Load() }
func (l *Local) Queued() int        { return l.s.Queued() }
func (l *Local) QueueCap() int      { return l.s.QueueCap() }
func (l *Local) Stats() serve.Stats { return l.s.Stats() }

// Ping never fails in-process: a local shard shares the router's fate.
func (l *Local) Ping() error { return nil }

func (l *Local) Close() { l.s.Close() }
