package shard

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pstlbench/internal/serve"
)

// TestKillReplayStress is the durability gauntlet, run under -race in CI:
// concurrent clients submit and cancel against a logged router, the
// router is killed mid-backlog (log severed first, no completion records
// written — exactly as SIGKILL), a second incarnation replays the log and
// drains, and the final log must show EXACTLY one completion per
// acknowledged job — nothing lost, nothing run twice — with every "done"
// checksum matching the kernel's deterministic expected value (the
// torn-checksum detector the serve-level stress tests established).
func TestKillReplayStress(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/replay stress is a long test")
	}
	path := filepath.Join(t.TempDir(), "joblog.jsonl")
	cfg := Config{
		Shards:         2,
		Serve:          serve.Config{Workers: 2, QueueCap: 64, MaxConcurrent: 2},
		LogPath:        path,
		FsyncEvery:     8,
		FsyncInterval:  time.Millisecond,
		RebalanceEvery: 5 * time.Millisecond,
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	kernels := []string{"foreach", "reduce", "scan", "sort", "find"}
	var mu sync.Mutex
	acked := map[string]serve.Spec{} // every ID a client was told "accepted"
	canceled := map[string]bool{}    // IDs we asked to cancel (may still finish done)

	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			for i := 0; i < 40; i++ {
				spec := serve.Spec{
					Kernel: kernels[rng.Intn(len(kernels))],
					N:      1 << (10 + rng.Intn(5)),
					Tenant: fmt.Sprintf("tenant-%d", rng.Intn(4)),
				}
				j, err := r.Submit(spec)
				if err != nil {
					// Saturated or killed: either way the client was NOT
					// acked, so the job must not appear in the log.
					continue
				}
				mu.Lock()
				acked[j.ID()] = spec
				mu.Unlock()
				if i%7 == 3 {
					if _, err := r.Cancel(j.ID()); err == nil {
						mu.Lock()
						canceled[j.ID()] = true
						mu.Unlock()
					}
				}
				if i%11 == 0 {
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				}
			}
		}(c)
	}

	// Kill mid-flight: clients racing the kill observe ErrClosed and stop.
	time.Sleep(15 * time.Millisecond)
	r.Kill()
	wg.Wait()

	mu.Lock()
	total := len(acked)
	mu.Unlock()
	if total == 0 {
		t.Fatal("no jobs were acknowledged before the kill; stress proves nothing")
	}

	// Incarnation two: replay and drain.
	r2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	st := r2.Stats()
	if st.Replayed+st.Recovered == 0 {
		t.Fatalf("replay found nothing (stats %+v) despite %d acked jobs", st, total)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st = r2.Stats()
		busy := st.Backlog
		for _, ss := range st.PerShard {
			busy += ss.Queued + ss.Running
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second incarnation never drained: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Every acked job must be terminal and queryable at the router.
	for id := range acked {
		info, ok := r2.Get(id)
		if !ok {
			t.Fatalf("acked job %s unknown after replay", id)
		}
		if info.State != "done" && info.State != "canceled" {
			t.Fatalf("acked job %s non-terminal after drain: %+v", id, info)
		}
	}
	r2.Close()

	// The ledger check: exactly one complete record per acked ID, every
	// "done" checksum equal to the kernel's deterministic value, and no
	// record for any job a client was never acked.
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	completes := map[string]int{}
	for _, rec := range recs {
		if rec.T == "submit" {
			if _, ok := acked[rec.ID]; !ok {
				t.Fatalf("log has submit for %s which no client was acked", rec.ID)
			}
		}
		if rec.T != "complete" {
			continue
		}
		completes[rec.ID]++
		if rec.State == "done" {
			spec, ok := acked[rec.ID]
			if !ok {
				t.Fatalf("complete record for unknown job %s", rec.ID)
			}
			if want := serve.ExpectedChecksum(spec.Kernel, spec.N); rec.Checksum != want {
				t.Fatalf("job %s: torn/wrong checksum %v, want %v", rec.ID, rec.Checksum, want)
			}
		}
	}
	for id := range acked {
		if n := completes[id]; n != 1 {
			t.Fatalf("job %s has %d complete records, want exactly 1 (lost or duplicated)", id, n)
		}
	}
	t.Logf("stress: %d acked (%d cancel requests), %d replayed + %d recovered by incarnation two, %d log records",
		total, len(canceled), st.Replayed, st.Recovered, len(recs))
}
