// Package shard is the horizontal scaling layer over internal/serve: a
// Router fronts N in-process serve.Server shards, each with its own
// work-stealing pool, and places jobs by consistent-hash tenant->shard
// assignment with load-aware overflow. The layering repeats the paper's
// scheduling story one level up: the pool's deques balance *chunks* of a
// job across workers, the fair queue balances *jobs* across tenants, and
// the router balances *tenants* across shards — with spill-on-saturation
// and cross-shard migration of queued jobs as the distributed analogue of
// deque stealing (HPX's locality-aware task placement is the reference
// shape). An optional append-only job log makes the tier restart-safe: a
// killed daemon replays the log on startup and resumes its queue with no
// acknowledged job lost and no completed job re-run.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping tenant names to shard indices.
// Each shard owns Replicas virtual points on a uint64 ring; a tenant maps
// to the shard owning the first point at or after the tenant's hash.
// Virtual points keep per-shard load shares near 1/N, and changing the
// shard count remaps only the tenants whose nearest point changed —
// roughly a 1/(N+1) fraction — so scaling the tier does not reshuffle
// every tenant's home (the property TestRingStability pins).
type Ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards shards with replicas virtual points
// each (replicas <= 0 selects the default 64).
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	members := make([]int, shards)
	for i := range members {
		members[i] = i
	}
	return NewRingOf(members, replicas)
}

// NewRingOf builds a ring over an explicit member set. Point names are
// keyed by member identity, not position, so removing a dead member or
// appending a new one leaves every surviving member's points in place —
// only the changed member's arc remaps (the ~1/(N+1) fraction). A router
// with non-contiguous live shards (one died) rebuilds the ring through
// this form.
func NewRingOf(members []int, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{shards: len(members), points: make([]ringPoint, 0, len(members)*replicas)}
	for _, s := range members {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d/%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Shard returns tenant's home shard: the owner of the first ring point
// clockwise from the tenant's hash.
func (r *Ring) Shard(tenant string) int {
	if len(r.points) == 0 {
		return -1 // every member dead: nothing to place on
	}
	h := hash64(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is FNV-1a with a murmur-style avalanche finalizer. Raw FNV of
// short near-identical strings ("shard-2/17", "tenant-413") clusters in
// the upper bits, which on a ring means one shard's points can capture
// most of the keyspace; the final mix spreads every input bit across the
// whole word so arc lengths come out near-uniform.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
