package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"pstlbench/internal/obs"
)

// Record is one entry of the append-only job log. Three kinds:
//
//   - "submit": an accepted job (spec fields set) — written after the
//     shard admitted it, so every acknowledged job is in the log.
//   - "cancel": a client cancellation was accepted for a live job. Written
//     before the shard acts, so a crash between the cancel ack and the
//     completion record still replays as canceled, never as runnable.
//   - "complete": the job reached a terminal state (State "done" with its
//     Checksum, or "canceled" with its Reason). A job with a durable
//     complete record is never resubmitted by replay — the exactly-once
//     guard. Shutdown cancellations are deliberately NOT recorded: a
//     graceful stop leaves its backlog replayable, same as a crash.
type Record struct {
	T          string  `json:"t"`
	ID         string  `json:"id"`
	Seq        int64   `json:"seq,omitempty"`
	Kernel     string  `json:"kernel,omitempty"`
	N          int     `json:"n,omitempty"`
	Tenant     string  `json:"tenant,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
	State      string  `json:"state,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	Checksum   float64 `json:"checksum,omitempty"`
	// Phases carries the job's lifecycle-span stamps known at append time
	// (obs.Phase name -> UnixNano). Replay seeds the new incarnation's span
	// from it, so a replayed job keeps its pre-crash history — above all
	// the original admission time.
	Phases map[string]int64 `json:"phases,omitempty"`
}

// Log is the append-only JSON-lines job log with group-committed fsync.
// Every Append issues its write(2) synchronously, so a SIGKILLed process
// loses nothing it acknowledged — the kernel already holds the bytes.
// fsync, the power-loss barrier, is batched: one sync per every records or
// per interval since the first unsynced record, whichever comes first, so
// a submission burst shares one disk flush instead of paying one each.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	pending  int // records written since the last fsync
	every    int
	interval time.Duration
	timer    *time.Timer
	closed   bool

	// Instrumentation (see Instrument); nil histograms are disabled no-ops.
	fsyncH  *obs.Histogram
	commitH *obs.Histogram
}

// OpenLog opens (creating if absent) the log at path for appending and
// returns the records already present, crash tolerance included: a torn
// final line — the signature of a partial physical write — is dropped and
// truncated away so subsequent appends start on a clean record boundary,
// while corruption anywhere else is an error. every and interval bound
// the fsync batch (<= 0 selects 32 records / 5ms).
func OpenLog(path string, every int, interval time.Duration) (*Log, []Record, error) {
	recs, valid, err := readLogValid(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if st, err := f.Stat(); err == nil && st.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if every <= 0 {
		every = 32
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	return &Log{f: f, every: every, interval: interval}, recs, nil
}

// ReadLog parses the records in the log at path. A torn final line is
// dropped; a missing file reads as empty via os.IsNotExist on the error.
func ReadLog(path string) ([]Record, error) {
	recs, _, err := readLogValid(path)
	return recs, err
}

// readLogValid parses records and returns the byte offset of the last
// complete record — the length OpenLog truncates a torn tail back to. A
// record is complete only when newline-terminated and parseable; each
// Append writes record+newline in one write(2), so an unterminated or
// unparseable tail can only come from a partial physical write (power
// loss), and dropping it re-runs at most that one in-flight job.
func readLogValid(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		next := len(data)
		if nl < 0 {
			line = data[off:]
		} else {
			line = data[off : off+nl]
			next = off + nl + 1
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			valid = int64(next)
			off = next
			continue
		}
		var rec Record
		if nl < 0 || json.Unmarshal(trimmed, &rec) != nil {
			// Torn tail: tolerated only when nothing valid follows.
			if nl >= 0 && bytes.IndexFunc(data[next:], notSpace) >= 0 {
				return nil, 0, fmt.Errorf("shard: corrupt job log %s at byte %d", path, off)
			}
			break
		}
		recs = append(recs, rec)
		valid = int64(next)
		off = next
	}
	return recs, valid, nil
}

func notSpace(r rune) bool {
	return r != ' ' && r != '\t' && r != '\n' && r != '\r'
}

// Append writes one record through to the kernel and schedules its fsync.
// It returns os.ErrClosed after Close or Kill.
func (l *Log) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	if _, err := l.f.Write(b); err != nil {
		return err
	}
	l.pending++
	if l.pending >= l.every {
		return l.syncLocked()
	}
	if l.timer == nil {
		l.timer = time.AfterFunc(l.interval, l.flushTimer)
	}
	return nil
}

func (l *Log) flushTimer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timer = nil
	if !l.closed && l.pending > 0 {
		l.syncLocked()
	}
}

// Instrument points the log at a fsync-latency histogram (seconds per
// fsync barrier) and a group-commit-size histogram (records per barrier),
// so fsync stalls stop masquerading as scheduler saturation. Either may be
// nil; safe to call before traffic.
func (l *Log) Instrument(fsync, commit *obs.Histogram) {
	l.mu.Lock()
	l.fsyncH, l.commitH = fsync, commit
	l.mu.Unlock()
}

func (l *Log) syncLocked() error {
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	if l.pending > 0 {
		l.commitH.Observe(float64(l.pending))
	}
	l.pending = 0
	start := time.Now()
	err := l.f.Sync()
	l.fsyncH.Observe(time.Since(start).Seconds())
	return err
}

// Sync forces any pending records to disk now.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	return l.syncLocked()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.syncLocked()
	l.closed = true
	return l.f.Close()
}

// Kill closes the log abruptly, without the final fsync — the crash path
// the kill-and-replay tests exercise. Records already appended survive (a
// dead process cannot revoke a completed write(2)); anything a caller was
// about to append is lost, exactly as a SIGKILL would lose it.
func (l *Log) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	l.closed = true
	l.f.Close()
}
