package shard

import (
	"sort"
	"strconv"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// HealthState is one shard's position in the failure state machine.
// Consecutive heartbeat failures walk a shard healthy -> suspect -> dead;
// one success walks suspect back to healthy. Dead is sticky: a dead
// shard's backlog has already been re-placed, so letting it return would
// double-run jobs — a recovered worker rejoins as a NEW member via
// AddShard instead.
type HealthState int32

const (
	Healthy HealthState = iota
	Suspect
	Dead
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// shardHealth is one shard's health record, guarded by the router lock.
type shardHealth struct {
	state HealthState
	fails int            // consecutive heartbeat failures
	rtt   *obs.Histogram // heartbeat round-trip latency
}

// healthLoop is shard i's heartbeat: one probe per HeartbeatEvery tick
// until the router stops or the shard is declared dead.
func (r *Router) healthLoop(i int) {
	defer r.loopWG.Done()
	t := time.NewTicker(r.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if !r.probe(i) {
				return
			}
		}
	}
}

// probe runs one heartbeat against shard i and advances its state machine.
// The Ping itself runs outside the router lock — a stalled worker must not
// stall the whole router. Returns false once the shard is dead (or the
// router closed), ending the loop.
func (r *Router) probe(i int) bool {
	r.mu.Lock()
	if r.closed || r.health[i].state == Dead {
		r.mu.Unlock()
		return false
	}
	h := r.shards[i]
	r.mu.Unlock()

	start := time.Now()
	err := h.Ping()
	rtt := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.health[i].state == Dead {
		return false
	}
	hs := r.health[i]
	if err == nil {
		hs.rtt.Observe(rtt.Seconds())
		hs.fails = 0
		hs.state = Healthy
		return true
	}
	hs.fails++
	switch {
	case hs.fails >= r.cfg.DeadAfter:
		hs.state = Dead
		r.deaths++
		r.onShardDeadLocked(i)
		return false
	case hs.fails >= r.cfg.SuspectAfter:
		hs.state = Suspect
	}
	return true
}

// onShardDeadLocked is dead-shard recovery: rebuild the ring without the
// dead member (surviving members keep their points, so only the dead arc
// remaps), then re-place every non-terminal job the dead shard held — in
// original admission order — onto the survivors, parking what they cannot
// take in the backlog. The job specs live in the router (with spans and
// absolute deadlines intact), and each job's log "submit" record predates
// its shard accept, so an acked job is never lost with its shard: this is
// the in-process replay guarantee extended across process death.
func (r *Router) onShardDeadLocked(dead int) {
	r.rebuildRingLocked()
	var victims []*Job
	for _, j := range r.jobs {
		if !j.terminal && j.shard == dead {
			victims = append(victims, j)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].seq < victims[b].seq })
	for _, j := range victims {
		if j.sj != nil {
			delete(r.byShard, j.sj)
		}
		j.sj, j.shard = nil, -1
		j.spec.Span.Mark(obs.PhaseMigrated)
		r.replaced++
		if err := r.placeLocked(j); err != nil {
			r.backlog = append(r.backlog, j)
		} else {
			r.watchLocked(j)
		}
	}
	// Tear the handle down off the lock: it closes every orphaned job
	// handle, whose watchers then stand down via the incarnation check
	// (the re-placements above already happened under this lock).
	h := r.shards[dead]
	r.loopWG.Add(1)
	go func() {
		defer r.loopWG.Done()
		h.Close()
	}()
}

// rebuildRingLocked rebuilds the placement ring over the live members.
func (r *Router) rebuildRingLocked() {
	var members []int
	for i := range r.shards {
		if r.health[i].state != Dead {
			members = append(members, i)
		}
	}
	r.ring = NewRingOf(members, r.cfg.Replicas)
}

// AddShard grows the tier under live traffic: h joins the ring as a new
// member, remapping ~1/(N+1) of tenants onto it (survivors keep their ring
// points), and the health plane starts probing it. Returns the new shard's
// index.
func (r *Router) AddShard(h ShardHandle) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return -1, serve.ErrClosed
	}
	i := len(r.shards)
	r.shards = append(r.shards, h)
	r.health = append(r.health, r.newShardHealthLocked(i))
	r.rebuildRingLocked()
	r.registerShardMetrics(i)
	if r.cfg.HeartbeatEvery > 0 {
		r.loopWG.Add(1)
		go r.healthLoop(i)
	}
	return i, nil
}

// newShardHealthLocked builds shard i's health record and registers its
// pull-time state gauge and heartbeat histogram.
func (r *Router) newShardHealthLocked(i int) *shardHealth {
	cm := obs.NewClusterMetrics(r.cfg.Metrics)
	label := strconv.Itoa(i)
	hs := &shardHealth{rtt: cm.HeartbeatRTT(label)}
	cm.HealthState(label, func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(r.health[i].state)
	})
	return hs
}

// HealthOf reports shard i's current health state.
func (r *Router) HealthOf(i int) HealthState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health[i].state
}

// MarkDead force-declares shard i dead, as if its heartbeat threshold had
// tripped — the hook tests and drivers without a heartbeat loop use.
func (r *Router) MarkDead(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.health[i].state == Dead {
		return
	}
	r.health[i].state = Dead
	r.deaths++
	r.onShardDeadLocked(i)
}

// HomeShard returns tenant's current ring placement — the hook the remap-
// fraction measurement and the join smoke use.
func (r *Router) HomeShard(tenant string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Shard(tenant)
}
