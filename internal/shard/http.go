package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pstlbench/internal/serve"
)

// errorBody mirrors serve's JSON error envelope.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the router's HTTP API — the same surface as a single
// serve.Server, with shard placement visible in every JobInfo and a
// per-shard breakdown in /stats:
//
//	POST   /jobs      submit a job   -> 202 JobInfo | 429 (saturated) | 400
//	GET    /jobs/{id} job status     -> 200 JobInfo | 404
//	DELETE /jobs/{id} cancel a job   -> 200 JobInfo | 404
//	GET    /stats     router stats   -> 200 Stats
//	GET    /healthz   readiness      -> 200 HealthInfo | 503 (closed or no healthy shard)
//	POST   /cluster/join  add a worker to the ring -> 200 (when Config.Join set)
//	GET    /metrics   Prometheus text exposition (when Config.Metrics set)
//	GET    /spans     terminal job lifecycle spans (when Config.Spans set)
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", r.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", r.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", r.handleCancel)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	if r.cfg.Join != nil {
		mux.HandleFunc("POST /cluster/join", r.handleJoin)
	}
	if r.cfg.Metrics != nil {
		mux.Handle("GET /metrics", serve.MetricsHandler(r.cfg.Metrics))
	}
	if r.cfg.Spans != nil {
		mux.Handle("GET /spans", serve.SpansHandler(r.cfg.Spans))
	}
	return mux
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var body serve.SubmitRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	j, err := r.Submit(serve.Spec{
		Kernel:   body.Kernel,
		N:        body.N,
		Tenant:   body.Tenant,
		Deadline: time.Duration(body.DeadlineMS) * time.Millisecond,
	})
	if err != nil {
		var sat *serve.SaturatedError
		switch {
		case errors.As(err, &sat):
			secs := int64((sat.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:        err.Error(),
				RetryAfterMS: sat.RetryAfter.Milliseconds(),
			})
		case errors.Is(err, serve.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	info, _ := r.Get(j.ID())
	writeJSON(w, http.StatusAccepted, info)
}

func (r *Router) handleGet(w http.ResponseWriter, req *http.Request) {
	info, ok := r.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	info, err := r.Cancel(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := r.Health()
	status := http.StatusOK
	if !h.OK {
		// A probe keys on the status code; the body still carries the why.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// JoinRequest is the POST /cluster/join body: the base URL the router
// should dial the joining worker at.
type JoinRequest struct {
	URL string `json:"url"`
}

// JoinResponse acknowledges a join with the new member's shard index.
type JoinResponse struct {
	Shard int `json:"shard"`
}

func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	var body JoinRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if body.URL == "" {
		writeError(w, http.StatusBadRequest, "url required")
		return
	}
	r.joinMu.Lock()
	defer r.joinMu.Unlock()
	// Idempotent join: a worker whose first join succeeded but whose
	// response was lost retries — it must get its existing membership
	// back, not a duplicate ring member.
	r.mu.Lock()
	if i, ok := r.joined[body.URL]; ok {
		r.mu.Unlock()
		writeJSON(w, http.StatusOK, JoinResponse{Shard: i})
		return
	}
	r.mu.Unlock()
	h, err := r.cfg.Join(body.URL)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cannot reach worker: %v", err))
		return
	}
	// Probe before committing: a ring member that never answered anything
	// would immediately walk the suspect->dead path and churn the ring.
	if err := h.Ping(); err != nil {
		h.Close()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("worker not healthy: %v", err))
		return
	}
	i, err := r.AddShard(h)
	if err != nil {
		h.Close()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	r.mu.Lock()
	r.joined[body.URL] = i
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, JoinResponse{Shard: i})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
