package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "joblog.jsonl")
}

func TestLogRoundTrip(t *testing.T) {
	path := logPath(t)
	want := []Record{
		{T: "submit", ID: "job-1", Seq: 1, Kernel: "reduce", N: 4096, Tenant: "a", DeadlineMS: 250},
		{T: "cancel", ID: "job-1"},
		{T: "complete", ID: "job-1", State: "canceled", Reason: "canceled"},
		{T: "submit", ID: "job-2", Seq: 2, Kernel: "sort", N: 1 << 16, Tenant: "b"},
		{T: "complete", ID: "job-2", State: "done", Checksum: 42.5},
	}
	l, recs, err := OpenLog(path, 2, time.Millisecond)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestLogKillKeepsAppendedRecords pins the write-through property: records
// appended but not yet fsynced (batch not reached, timer not fired)
// survive Kill, because each Append issued its write(2) synchronously.
func TestLogKillKeepsAppendedRecords(t *testing.T) {
	path := logPath(t)
	l, _, err := OpenLog(path, 1000, time.Hour) // batch never reached
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{T: "submit", ID: "job-1", Seq: int64(i + 1)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Kill()
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records after Kill, want 5", len(recs))
	}
	if err := l.Append(Record{T: "submit", ID: "job-2"}); err != os.ErrClosed {
		t.Fatalf("Append after Kill: err=%v, want os.ErrClosed", err)
	}
}

// TestLogTornTailTolerated simulates a partial final write: the torn line
// is dropped on read, and OpenLog truncates it away so the next append
// starts on a clean record boundary instead of gluing onto the fragment.
func TestLogTornTailTolerated(t *testing.T) {
	path := logPath(t)
	good := Record{T: "submit", ID: "job-1", Seq: 1, Kernel: "reduce", N: 64}
	b, _ := json.Marshal(good)
	data := append(append([]byte{}, b...), '\n')
	data = append(data, []byte(`{"t":"complete","id":"job-1","sta`)...) // torn mid-record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog with torn tail: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("got %+v, want just the intact record", recs)
	}

	l, recs, err := OpenLog(path, 1, 0)
	if err != nil {
		t.Fatalf("OpenLog with torn tail: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("OpenLog returned %d records, want 1", len(recs))
	}
	if err := l.Append(Record{T: "complete", ID: "job-1", State: "done", Checksum: 7}); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	l.Close()
	recs, err = ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog after repair+append: %v", err)
	}
	if len(recs) != 2 || recs[1].T != "complete" || recs[1].Checksum != 7 {
		t.Fatalf("after repair got %+v, want intact record + new complete", recs)
	}
}

// TestLogMidFileCorruptionRejected: tolerance is for the tail only —
// garbage with valid records after it means the file is untrustworthy.
func TestLogMidFileCorruptionRejected(t *testing.T) {
	path := logPath(t)
	b, _ := json.Marshal(Record{T: "submit", ID: "job-1", Seq: 1})
	data := append(append([]byte{}, b...), '\n')
	data = append(data, []byte("not json at all\n")...)
	data = append(data, b...)
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Fatal("ReadLog accepted mid-file corruption")
	}
	if _, _, err := OpenLog(path, 0, 0); err == nil {
		t.Fatal("OpenLog accepted mid-file corruption")
	}
}

// TestLogBatchedFsyncStillSyncs: the interval timer flushes a partial
// batch, so a quiet log does not hold records out of durability forever.
func TestLogBatchedFsyncStillSyncs(t *testing.T) {
	path := logPath(t)
	l, _, err := OpenLog(path, 1000, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	if err := l.Append(Record{T: "submit", ID: "job-1", Seq: 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		l.mu.Lock()
		pending := l.pending
		l.mu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval timer never flushed the pending batch")
		}
		time.Sleep(time.Millisecond)
	}
}
