package shard

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pstlbench/internal/serve"
)

// BenchmarkRouterThroughput measures closed-loop job throughput through
// the router at 1 vs 4 shards. Each shard owns one worker and one run
// slot, so the shard count is the service parallelism; ns/op is the
// per-job latency seen by 8 concurrent clients and should drop roughly
// linearly with shards until job granularity dominates (the ext-shard
// experiment explores the same axis with controlled service times).
func BenchmarkRouterThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r, err := New(Config{
				Shards: shards,
				Serve:  serve.Config{Workers: 1, QueueCap: 512, MaxConcurrent: 1},
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			defer r.Close()
			var tenantSeq atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tenant := fmt.Sprintf("tenant-%d", tenantSeq.Add(1))
				for pb.Next() {
					j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: tenant})
					if err != nil {
						continue // saturated under heavy b.N; closed-loop retries next iter
					}
					<-j.Done()
				}
			})
		})
	}
}
