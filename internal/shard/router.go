package shard

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// Config configures a Router. The zero value runs one shard with a
// defaulted serve.Config and no durability.
type Config struct {
	// Shards is the number of in-process serve.Server shards (default 1).
	Shards int
	// Serve is the per-shard template. Pool must be nil: every shard owns
	// its own pool (Workers workers each), so one shard's load never
	// steals another shard's cores through a shared substrate.
	Serve serve.Config
	// Replicas is the ring's virtual points per shard (default 64).
	Replicas int

	// LogPath enables the append-only job log; "" runs without durability.
	// FsyncEvery/FsyncInterval bound the group-commit batch (defaults 32
	// records / 5ms; see Log).
	LogPath       string
	FsyncEvery    int
	FsyncInterval time.Duration

	// SpillThreshold is the home-shard Load above which a new job spills to
	// the least-loaded shard instead (default 0.75) — admission-time
	// overflow, the cheap half of load balancing.
	SpillThreshold float64
	// MigrateThreshold is the sustained Load above which the rebalancer
	// withdraws queued jobs from the hottest shard and resubmits them on
	// the coldest (default 0.9), provided the coldest sits below half the
	// hottest's load — the expensive half, for jobs that already queued
	// before the imbalance showed.
	MigrateThreshold float64
	// MigrateBatch caps jobs moved per rebalance pass (default 4).
	MigrateBatch int
	// RebalanceEvery is the rebalancer cadence (default 25ms; < 0 disables
	// the background loop — tests drive Rebalance directly).
	RebalanceEvery time.Duration

	// RetainDone bounds the router's terminal job records, like
	// serve.Config.RetainDone (default 1024; -1 unbounded). Replay loads at
	// most this many recovered terminal records.
	RetainDone int

	// Handles, when non-empty, supplies the shard tier directly — remote
	// workers dialed through internal/cluster, or any mix of local and
	// remote handles — and Shards/Serve are not used for construction.
	Handles []ShardHandle
	// Join, when non-nil, enables live ring growth over HTTP: the router's
	// handler accepts POST /cluster/join {"url": ...}, dials the worker
	// through this constructor, and adds it behind the ring. The
	// indirection exists because this package cannot import the transport
	// (internal/cluster imports this package for the handle interface).
	Join func(url string) (ShardHandle, error)
	// HeartbeatEvery paces the per-shard health probes (default 250ms;
	// < 0 disables the health plane — local-only tiers don't need one).
	// SuspectAfter and DeadAfter are the consecutive-failure thresholds of
	// the healthy -> suspect -> dead state machine (defaults 2 and 5).
	HeartbeatEvery time.Duration
	SuspectAfter   int
	DeadAfter      int

	// Metrics, when non-nil, receives the tier's Prometheus instruments:
	// router-level families (shard count, per-shard load, spill/migration/
	// replay counters, backlog, joblog fsync latency and group-commit size)
	// plus every shard server's own families labeled {shard="i"}. The
	// registry is shared — one /metrics endpoint covers the whole tier.
	Metrics *obs.Registry
	// Spans, when non-nil, is the shared terminal-span ring: the router
	// creates each job's lifecycle span at admission (so phase stamps
	// survive spill, migration, and crash-replay) and the shard servers
	// retire spans into this log.
	Spans *obs.SpanLog
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.SpillThreshold <= 0 {
		c.SpillThreshold = 0.75
	}
	if c.MigrateThreshold <= 0 {
		c.MigrateThreshold = 0.9
	}
	if c.MigrateBatch <= 0 {
		c.MigrateBatch = 4
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 25 * time.Millisecond
	}
	if c.RetainDone == 0 {
		c.RetainDone = 1024
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5
	}
	return c
}

// Job is the router-side handle of one submission. The router owns job
// identity: shard-level jobs are an implementation detail that can change
// under migration or replay while the router ID stays fixed.
type Job struct {
	id   string
	seq  int64
	spec serve.Spec
	enq  time.Time

	// Guarded by the router lock:
	shard    int       // current shard, -1 while parked in the backlog
	sj       JobHandle // current shard-level incarnation, nil in backlog
	terminal bool
	info     JobInfo // terminal snapshot
	done     chan struct{}
}

// ID returns the router-assigned job identifier (stable across restarts).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job is terminal at the router.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobInfo is a serve.JobInfo plus the shard that holds (or held) the job;
// Shard is -1 for jobs parked in the replay backlog or recovered from the
// log, where the original placement is unknown and irrelevant.
type JobInfo struct {
	serve.JobInfo
	Shard int `json:"shard"`
}

// Router fronts N shards — in-process serve.Servers, separate-process
// workers behind cluster handles, or a mix: consistent-hash placement with
// load-aware spill, cross-shard migration of queued jobs, health-checked
// failover with dead-shard re-placement, live ring growth, and (with a job
// log) crash-safe replay. All client traffic goes through the router; it
// is the only submitter to its shards, which is what makes the
// withdraw-and-resubmit migration race-free.
type Router struct {
	cfg  Config
	ring *Ring
	log  *Log

	mu       sync.Mutex
	shards   []ShardHandle  // append-only; indices are stable member IDs
	health   []*shardHealth // parallel to shards
	jobs     map[string]*Job
	byShard  map[JobHandle]*Job
	backlog  []*Job // replayed jobs awaiting shard admission
	doneRing []string
	joined   map[string]int // worker URL -> shard index, for idempotent joins
	nextID   int64
	closed   bool

	accepted, rejected, completed, canceled int64
	spills, migrations, replayed, recovered int64
	replaced, deaths                        int64

	// joinMu serializes /cluster/join handling end to end (dial, probe,
	// AddShard), so two concurrent joins of one URL cannot both pass the
	// dedup check. Never held together with mu.
	joinMu sync.Mutex

	stop    chan struct{}
	loopWG  sync.WaitGroup
	watchWG sync.WaitGroup
}

// New builds the shard tier — cfg.Handles when supplied (remote or mixed
// shards), else cfg.Shards in-process servers on their own pools — plus
// the placement ring, the health plane, and, when cfg.LogPath is set, the
// job log, replaying any records a previous incarnation left behind
// before accepting traffic.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Serve.Pool != nil {
		return nil, errors.New("shard: Config.Serve.Pool must be nil; each shard owns its pool")
	}
	n := cfg.Shards
	if len(cfg.Handles) > 0 {
		n = len(cfg.Handles)
	}
	r := &Router{
		cfg:     cfg,
		ring:    NewRing(n, cfg.Replicas),
		jobs:    make(map[string]*Job),
		byShard: make(map[JobHandle]*Job),
		joined:  make(map[string]int),
		stop:    make(chan struct{}),
	}
	if len(cfg.Handles) > 0 {
		r.shards = append(r.shards, cfg.Handles...)
	} else {
		for i := 0; i < cfg.Shards; i++ {
			sc := cfg.Serve
			sc.Metrics = cfg.Metrics
			sc.Spans = cfg.Spans
			if cfg.Metrics != nil {
				sc.MetricsLabels = append([]string{"shard", strconv.Itoa(i)}, cfg.Serve.MetricsLabels...)
			}
			r.shards = append(r.shards, NewLocal(serve.New(sc)))
		}
	}
	for i := range r.shards {
		r.health = append(r.health, r.newShardHealthLocked(i))
	}
	r.initMetrics(cfg.Metrics)
	if cfg.LogPath != "" {
		log, recs, err := OpenLog(cfg.LogPath, cfg.FsyncEvery, cfg.FsyncInterval)
		if err != nil {
			for _, s := range r.shards {
				s.Close()
			}
			return nil, err
		}
		r.log = log
		if cfg.Metrics != nil {
			log.Instrument(
				cfg.Metrics.Histogram("pstld_joblog_fsync_seconds",
					"Latency of each job-log fsync barrier.", obs.LatencyBuckets),
				cfg.Metrics.Histogram("pstld_joblog_commit_records",
					"Records group-committed per fsync barrier.", obs.SizeBuckets),
			)
		}
		r.mu.Lock()
		r.replayLocked(recs)
		r.mu.Unlock()
	}
	if cfg.RebalanceEvery > 0 {
		r.loopWG.Add(1)
		go r.rebalanceLoop(cfg.RebalanceEvery)
	}
	if cfg.HeartbeatEvery > 0 {
		for i := range r.shards {
			r.loopWG.Add(1)
			go r.healthLoop(i)
		}
	}
	return r, nil
}

// initMetrics registers the router-level families. Pull-time closures take
// the router lock at scrape time; the registry never holds its own lock
// while calling them, so the order is safe.
func (r *Router) initMetrics(m *obs.Registry) {
	if m == nil {
		return
	}
	m.GaugeFunc("pstld_shards", "Shard servers behind the router.",
		func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return float64(len(r.shards)) })
	for i := range r.shards {
		r.registerShardMetrics(i)
	}
	m.GaugeFunc("pstld_backlog", "Replayed jobs still awaiting shard admission.",
		func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return float64(len(r.backlog)) })
	ctr := func(name, help string, f func() int64) {
		m.CounterFunc(name, help, func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(f())
		})
	}
	ctr("pstld_spills_total", "Jobs placed off their home shard at admission.", func() int64 { return r.spills })
	ctr("pstld_migrations_total", "Queued jobs moved between shards by the rebalancer.", func() int64 { return r.migrations })
	ctr("pstld_replayed_total", "Jobs resubmitted from the job log at startup.", func() int64 { return r.replayed })
	ctr("pstld_recovered_total", "Terminal records recovered from the job log.", func() int64 { return r.recovered })
	ctr("pstld_cluster_replaced_total", "Jobs re-placed off dead or lost shards.", func() int64 { return r.replaced })
	ctr("pstld_cluster_shard_deaths_total", "Shards declared dead by the health plane.", func() int64 { return r.deaths })
}

// registerShardMetrics registers shard i's load gauge. Safe under r.mu:
// the registry evaluates pull-time closures without holding its own lock,
// and registration itself never calls back into the router.
func (r *Router) registerShardMetrics(i int) {
	m := r.cfg.Metrics
	if m == nil {
		return
	}
	h := r.shards[i]
	m.GaugeFunc("pstld_shard_load", "Per-shard admission pressure (see serve.Server.Load).",
		h.Load, "shard", strconv.Itoa(i))
}

// Shard returns shard i's in-process server, or nil when shard i is
// remote — the per-shard stats and registry hook for local tiers.
func (r *Router) Shard(i int) *serve.Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.shards[i].(*Local); ok {
		return l.Server()
	}
	return nil
}

// Handle returns shard i's ShardHandle.
func (r *Router) Handle(i int) ShardHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards[i]
}

// Shards returns the shard count (dead members included — indices are
// stable member IDs).
func (r *Router) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shards)
}

// Submit admits a job through consistent-hash placement with load-aware
// overflow. Error contract matches serve.Server.Submit.
func (r *Router) Submit(spec serve.Spec) (*Job, error) {
	if spec.Fn != nil {
		// A custom Fn body is an in-process closure: it cannot be serialized
		// into the job log, spilled to another shard, or replayed. Callers
		// that need one (internal/flow) submit to a serve.Server directly.
		return nil, fmt.Errorf("shard: custom Fn jobs are in-process only")
	}
	if !serve.KernelValid(spec.Kernel) {
		return nil, fmt.Errorf("shard: unknown kernel %q", spec.Kernel)
	}
	if spec.N < 1 {
		return nil, fmt.Errorf("shard: job size %d, want >= 1", spec.N)
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, serve.ErrClosed
	}
	r.nextID++
	j := &Job{
		id:   fmt.Sprintf("job-%d", r.nextID),
		seq:  r.nextID,
		spec: spec,
		enq:  time.Now(),
		done: make(chan struct{}),
	}
	// The router owns job identity: the shard-level job carries the router
	// ID, which is what lets a transport retry dedupe on the worker and a
	// withdrawn ID map straight back to this record.
	j.spec.ID = j.id
	// Fix the deadline in absolute terms at first admission, so spills,
	// migrations, and dead-shard re-placements inherit the remaining
	// budget instead of restarting it.
	if j.spec.DeadlineAt.IsZero() && j.spec.Deadline > 0 {
		j.spec.DeadlineAt = j.enq.Add(j.spec.Deadline)
	}
	if r.cfg.Spans != nil {
		// Router-owned span: the stamps travel with the Spec through spill,
		// migration, and (via the log record's Phases) crash-replay.
		j.spec.Span = obs.NewJobSpan(j.id, j.seq, spec.Tenant, spec.Kernel, spec.N)
		j.spec.Span.Mark(obs.PhaseAdmitted)
	}
	if err := r.placeLocked(j); err != nil {
		r.rejected++
		return nil, err
	}
	// Logged only after a shard accepted: every acknowledged job is in the
	// log, and nothing the client never heard of is.
	r.appendLocked(Record{
		T: "submit", ID: j.id, Seq: j.seq,
		Kernel: spec.Kernel, N: spec.N, Tenant: spec.Tenant,
		DeadlineMS: int64(spec.Deadline / time.Millisecond),
		Phases:     j.spec.Span.Phases(),
	})
	r.jobs[j.id] = j
	r.accepted++
	r.watchLocked(j)
	return j, nil
}

// errNoShards reports a tier whose live members are all gone.
var errNoShards = errors.New("shard: no live shards")

// placeLocked picks a shard and submits j: the consistent-hash home
// first, spilled to the least-loaded live shard when the home is suspect
// or its admission EMA saturates, with one more attempt on the least-
// loaded shard when the first choice rejects — a saturated queue or, for
// a remote shard, a transport failure the health plane has not yet
// caught.
func (r *Router) placeLocked(j *Job) error {
	home := r.ring.Shard(j.spec.Tenant)
	if home < 0 {
		return errNoShards
	}
	target := home
	if r.health[home].state != Healthy || r.shards[home].Load() >= r.cfg.SpillThreshold {
		if ll := r.leastLoadedLocked(); ll >= 0 && ll != home {
			target = ll
		}
	}
	sj, err := r.shards[target].Submit(j.spec)
	if err != nil {
		if !retriablePlacement(err) {
			return err
		}
		alt := r.leastLoadedLocked()
		if alt < 0 || alt == target {
			return err
		}
		if sj, err = r.shards[alt].Submit(j.spec); err != nil {
			return err
		}
		target = alt
	}
	if target != home {
		r.spills++
	}
	j.spec.Span.SetShard(target)
	j.shard = target
	j.sj = sj
	r.byShard[sj] = j
	return nil
}

// retriablePlacement reports whether a submit failure is worth one retry
// on another shard: saturation always, and any non-spec failure (a remote
// shard's transport error) — an invalid spec would fail identically
// everywhere, but the router validates specs before placing, so remaining
// errors are shard-local.
func retriablePlacement(err error) bool {
	var sat *serve.SaturatedError
	if errors.As(err, &sat) {
		return true
	}
	return !errors.Is(err, serve.ErrClosed)
}

// leastLoadedLocked returns the least-loaded healthy shard, falling back
// to suspect shards when no healthy one exists, and -1 when every member
// is dead.
func (r *Router) leastLoadedLocked() int {
	best := -1
	var bestL float64
	for _, want := range []HealthState{Healthy, Suspect} {
		for i := range r.shards {
			if r.health[i].state != want {
				continue
			}
			if l := r.shards[i].Load(); best < 0 || l < bestL {
				best, bestL = i, l
			}
		}
		if best >= 0 {
			return best
		}
	}
	return best
}

// watchLocked spawns the completion watcher for j's current shard-level
// incarnation. A migrated job gets a new watcher; the old one recognizes
// the swap and stands down.
func (r *Router) watchLocked(j *Job) {
	r.watchWG.Add(1)
	go r.watch(j, j.sj, j.shard)
}

func (r *Router) watch(j *Job, sj JobHandle, shard int) {
	defer r.watchWG.Done()
	<-sj.Done()
	r.mu.Lock()
	h := r.shards[shard]
	r.mu.Unlock()
	info := h.Info(sj)
	r.mu.Lock()
	defer r.mu.Unlock()
	if j.sj != sj {
		return // migrated or re-placed: a newer incarnation owns this job
	}
	delete(r.byShard, sj)
	info.ID = j.id
	// A shard that lost the job (worker restart, dead-shard teardown) or
	// shut down under a live router hands the job back, not a terminal
	// state: the router re-places it on a surviving shard. The exactly-once
	// guarantee holds because only the router delivers terminal states.
	if !r.closed && info.State == "canceled" && (info.Reason == "lost" || info.Reason == "shutdown") {
		j.sj, j.shard = nil, -1
		j.spec.Span.Mark(obs.PhaseMigrated)
		r.replaced++
		if err := r.placeLocked(j); err != nil {
			r.backlog = append(r.backlog, j)
		} else {
			r.watchLocked(j)
		}
		return
	}
	j.terminal = true
	j.info = JobInfo{JobInfo: info, Shard: shard}
	switch {
	case info.State == "done":
		r.completed++
		r.appendLocked(Record{T: "complete", ID: j.id, State: "done", Checksum: info.Checksum})
	case info.Reason == "shutdown":
		// Crash-consistent shutdown: no record, so the job replays as
		// pending on the next start instead of dying with the process.
		r.canceled++
	default:
		r.canceled++
		r.appendLocked(Record{T: "complete", ID: j.id, State: "canceled", Reason: info.Reason})
	}
	close(j.done)
	r.retireLocked(j)
}

// appendLocked writes a log record; a nil (disabled) or severed (killed)
// log is a no-op — in-memory serving continues either way.
func (r *Router) appendLocked(rec Record) {
	if r.log != nil {
		r.log.Append(rec)
	}
}

// retireLocked bounds the terminal records like serve.Server.retireLocked.
func (r *Router) retireLocked(j *Job) {
	if r.cfg.RetainDone < 0 {
		return
	}
	r.doneRing = append(r.doneRing, j.id)
	for len(r.doneRing) > r.cfg.RetainDone {
		delete(r.jobs, r.doneRing[0])
		r.doneRing = r.doneRing[1:]
	}
}

// Get returns a job snapshot by router ID.
func (r *Router) Get(id string) (JobInfo, bool) {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return JobInfo{}, false
	}
	if j.terminal {
		info := j.info
		r.mu.Unlock()
		return info, true
	}
	if j.sj == nil {
		info := JobInfo{JobInfo: serve.JobInfo{
			ID: j.id, Kernel: j.spec.Kernel, N: j.spec.N, Tenant: j.spec.Tenant,
			State: "queued", QueueSeconds: time.Since(j.enq).Seconds(),
		}, Shard: -1}
		r.mu.Unlock()
		return info, true
	}
	sj, shard, h := j.sj, j.shard, r.shards[j.shard]
	r.mu.Unlock()
	info := h.Info(sj)
	info.ID = id
	return JobInfo{JobInfo: info, Shard: shard}, true
}

// Cancel cancels a job by router ID, logging the intent before acting so
// a crash between the ack and the completion record still replays the job
// as canceled, never as runnable.
func (r *Router) Cancel(id string) (JobInfo, error) {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return JobInfo{}, fmt.Errorf("shard: no job %q", id)
	}
	if j.terminal {
		info := j.info
		r.mu.Unlock()
		return info, nil
	}
	if j.sj == nil {
		// Backlog job: never reached a shard, finalize right here.
		r.dropBacklogLocked(j)
		j.terminal = true
		j.info = JobInfo{JobInfo: serve.JobInfo{
			ID: j.id, Kernel: j.spec.Kernel, N: j.spec.N, Tenant: j.spec.Tenant,
			State: "canceled", Reason: "canceled",
			QueueSeconds: time.Since(j.enq).Seconds(),
			TotalSeconds: time.Since(j.enq).Seconds(),
		}, Shard: -1}
		r.appendLocked(Record{T: "complete", ID: j.id, State: "canceled", Reason: "canceled"})
		r.canceled++
		if sp := j.spec.Span; sp != nil {
			sp.Mark(obs.PhaseCanceled)
			r.cfg.Spans.Add(sp)
		}
		close(j.done)
		r.retireLocked(j)
		info := j.info
		r.mu.Unlock()
		return info, nil
	}
	r.appendLocked(Record{T: "cancel", ID: id})
	sj, shard, h := j.sj, j.shard, r.shards[j.shard]
	r.mu.Unlock()
	info, err := h.Cancel(sj.ID())
	if err != nil {
		return JobInfo{}, err
	}
	info.ID = id
	return JobInfo{JobInfo: info, Shard: shard}, nil
}

func (r *Router) dropBacklogLocked(j *Job) {
	for i, b := range r.backlog {
		if b == j {
			r.backlog = append(r.backlog[:i], r.backlog[i+1:]...)
			return
		}
	}
}

// replayLocked reconstructs state from a previous incarnation's records:
// jobs with a durable complete record are recovered as terminal (never
// re-run — the exactly-once guard), a durable cancel with no completion
// finalizes as canceled now, and everything else is resubmitted in the
// original order — through normal placement, overflowing into the backlog
// when the shards cannot take the whole queue at once.
func (r *Router) replayLocked(recs []Record) {
	submits := make(map[string]Record)
	completes := make(map[string]Record)
	cancels := make(map[string]bool)
	var order []string
	for _, rec := range recs {
		switch rec.T {
		case "submit":
			if _, dup := submits[rec.ID]; !dup {
				submits[rec.ID] = rec
				order = append(order, rec.ID)
			}
			if rec.Seq > r.nextID {
				r.nextID = rec.Seq
			}
		case "cancel":
			cancels[rec.ID] = true
		case "complete":
			completes[rec.ID] = rec
		}
	}
	for _, id := range order {
		rec := submits[id]
		spec := serve.Spec{
			ID: id, Kernel: rec.Kernel, N: rec.N, Tenant: rec.Tenant,
			Deadline: time.Duration(rec.DeadlineMS) * time.Millisecond,
		}
		j := &Job{id: id, seq: rec.Seq, spec: spec, enq: time.Now(), shard: -1, done: make(chan struct{})}
		if c, ok := completes[id]; ok {
			j.terminal = true
			j.info = JobInfo{JobInfo: serve.JobInfo{
				ID: id, Kernel: spec.Kernel, N: spec.N, Tenant: spec.Tenant,
				State: c.State, Reason: c.Reason, Checksum: c.Checksum,
			}, Shard: -1}
			close(j.done)
			r.jobs[id] = j
			r.recovered++
			r.retireLocked(j)
			continue
		}
		if cancels[id] {
			j.terminal = true
			j.info = JobInfo{JobInfo: serve.JobInfo{
				ID: id, Kernel: spec.Kernel, N: spec.N, Tenant: spec.Tenant,
				State: "canceled", Reason: "canceled",
			}, Shard: -1}
			close(j.done)
			r.jobs[id] = j
			r.recovered++
			r.appendLocked(Record{T: "complete", ID: id, State: "canceled", Reason: "canceled"})
			r.retireLocked(j)
			continue
		}
		// Pending: resume. The deadline budget restarts from now — the
		// original submission's wall clock did not survive the crash.
		if r.cfg.Spans != nil {
			// The new incarnation's span starts from the logged pre-crash
			// phases (the original admission stamp above all), plus a
			// replayed mark dating the restart.
			sp := obs.NewJobSpan(id, rec.Seq, spec.Tenant, spec.Kernel, spec.N)
			sp.SeedPhases(rec.Phases)
			sp.Mark(obs.PhaseReplayed)
			j.spec.Span = sp
		}
		r.jobs[id] = j
		r.replayed++
		if err := r.placeLocked(j); err != nil {
			j.sj, j.shard = nil, -1
			r.backlog = append(r.backlog, j)
		} else {
			r.watchLocked(j)
		}
	}
}

func (r *Router) rebalanceLoop(every time.Duration) {
	defer r.loopWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Rebalance()
		}
	}
}

// Rebalance runs one balancing pass: drain the replay backlog into shards
// with room, then — when the hottest shard stays saturated while the
// coldest sits under half its load — withdraw queued jobs from the back
// of the hot shard's dispatch order and resubmit them on the cold one.
// Exported so tests and single-threaded drivers can pace it directly.
func (r *Router) Rebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.drainBacklogLocked()
	hot, cold := -1, -1
	var hotL, coldL float64
	for i := range r.shards {
		if r.health[i].state == Dead {
			continue
		}
		l := r.shards[i].Load()
		if hot < 0 || l > hotL {
			hot, hotL = i, l
		}
		if cold < 0 || l < coldL {
			cold, coldL = i, l
		}
	}
	if hot < 0 || hot == cold || hotL < r.cfg.MigrateThreshold || coldL > hotL/2 {
		return
	}
	// The router is the only submitter, so the room observed here cannot
	// be taken by anyone else before the resubmits below.
	room := r.shards[cold].QueueCap() - r.shards[cold].Queued()
	batch := r.cfg.MigrateBatch
	if batch > room {
		batch = room
	}
	if batch <= 0 {
		return
	}
	// For a remote hot shard, Withdraw is an RPC under the router lock —
	// bounded by the client's per-request timeout, and deadlock-free
	// because handles never call back into the router.
	_, hotLocal := r.shards[hot].(*Local)
	for _, id := range r.shards[hot].Withdraw(batch) {
		j := r.jobs[id]
		if j == nil || j.terminal {
			continue
		}
		if j.sj != nil {
			delete(r.byShard, j.sj)
		}
		if !hotLocal {
			// A local withdraw marks the shared span inside serve; a remote
			// worker's span is its own copy, so stamp the router's here.
			j.spec.Span.Mark(obs.PhaseMigrated)
		}
		nsj, err := r.shards[cold].Submit(j.spec)
		target := cold
		if err != nil {
			// Fall back to the shard we just freed a slot on; if even that
			// fails, park in the backlog for the next pass.
			if nsj, err = r.shards[hot].Submit(j.spec); err != nil {
				j.sj, j.shard = nil, -1
				r.backlog = append(r.backlog, j)
				continue
			}
			target = hot
		} else {
			r.migrations++
		}
		j.sj, j.shard = nsj, target
		j.spec.Span.SetShard(target)
		r.byShard[nsj] = j
		r.watchLocked(j)
	}
}

func (r *Router) drainBacklogLocked() {
	if len(r.backlog) == 0 {
		return
	}
	var rest []*Job
	for _, j := range r.backlog {
		if err := r.placeLocked(j); err != nil {
			rest = append(rest, j)
		} else {
			r.watchLocked(j)
		}
	}
	r.backlog = rest
}

// ShardStats is one shard's slice of the router stats.
type ShardStats struct {
	Shard int `json:"shard"`
	// Health is the router's view of the shard: healthy, suspect, or dead.
	Health string `json:"health"`
	serve.Stats
}

// Stats is the router-wide snapshot the /stats endpoint serves.
type Stats struct {
	Shards     int    `json:"shards"`
	Discipline string `json:"discipline"`
	Joblog     bool   `json:"joblog"`
	Accepted   int64  `json:"accepted"`
	Rejected   int64  `json:"rejected"`
	Completed  int64  `json:"completed"`
	Canceled   int64  `json:"canceled"`
	// Spills counts jobs placed off their home shard at admission;
	// Migrations counts queued jobs moved between shards by the rebalancer.
	Spills     int64 `json:"spills"`
	Migrations int64 `json:"migrations"`
	// Replayed counts jobs resubmitted from the log at startup; Recovered
	// counts terminal records loaded from it; Backlog is the replay
	// overflow still waiting for shard admission.
	Replayed  int64 `json:"replayed"`
	Recovered int64 `json:"recovered"`
	Backlog   int   `json:"backlog"`
	// Replaced counts jobs re-placed off dead or lost shards; Deaths
	// counts shards the health plane declared dead; HealthyShards is the
	// current live membership.
	Replaced      int64        `json:"replaced"`
	Deaths        int64        `json:"shard_deaths"`
	HealthyShards int          `json:"healthy_shards"`
	PerShard      []ShardStats `json:"per_shard"`
}

// HealthInfo is the router's GET /healthz snapshot: OK while the router is
// open and at least one shard is healthy — the condition under which a new
// submission can actually be placed. External probes and the streaming
// driver share this one readiness check across every pstld mode.
type HealthInfo struct {
	OK            bool `json:"ok"`
	Shards        int  `json:"shards"`
	HealthyShards int  `json:"healthy_shards"`
	Backlog       int  `json:"backlog"`
}

// Health returns the router's liveness snapshot.
func (r *Router) Health() HealthInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := HealthInfo{Shards: len(r.shards), Backlog: len(r.backlog)}
	for i := range r.shards {
		if r.health[i].state == Healthy {
			h.HealthyShards++
		}
	}
	h.OK = !r.closed && h.HealthyShards > 0
	return h
}

// Stats returns a consistent snapshot of the router counters plus each
// shard's own Stats.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Shards:    len(r.shards),
		Joblog:    r.log != nil,
		Accepted:  r.accepted,
		Rejected:  r.rejected,
		Completed: r.completed,
		Canceled:  r.canceled,
		Spills:    r.spills, Migrations: r.migrations,
		Replayed: r.replayed, Recovered: r.recovered,
		Backlog:  len(r.backlog),
		Replaced: r.replaced, Deaths: r.deaths,
	}
	shards := append([]ShardHandle(nil), r.shards...)
	states := make([]HealthState, len(shards))
	for i := range shards {
		states[i] = r.health[i].state
		if states[i] == Healthy {
			st.HealthyShards++
		}
	}
	r.mu.Unlock()
	// Shard stats take each shard's own lock (or an RPC for a remote
	// shard, which serves a cached snapshot once unreachable); collect
	// them outside ours. Dead shards report their last known stats.
	for i, s := range shards {
		st.PerShard = append(st.PerShard, ShardStats{Shard: i, Health: states[i].String(), Stats: s.Stats()})
	}
	st.Discipline = st.PerShard[0].Discipline
	return st
}

// Close shuts the tier down gracefully: the rebalancer stops, shards
// cancel their backlogs with reason "shutdown" and wait for running jobs,
// and the log is synced and closed. Shutdown cancellations are not logged
// as terminal, so a logged router resumes them on the next start — Close
// is crash-consistent by design.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.watchWG.Wait()
		return
	}
	r.closed = true
	close(r.stop)
	for _, j := range r.backlog {
		j.terminal = true
		j.info = JobInfo{JobInfo: serve.JobInfo{
			ID: j.id, Kernel: j.spec.Kernel, N: j.spec.N, Tenant: j.spec.Tenant,
			State: "canceled", Reason: "shutdown",
		}, Shard: -1}
		close(j.done)
		r.canceled++
	}
	r.backlog = nil
	shards := append([]ShardHandle(nil), r.shards...)
	r.mu.Unlock()
	r.loopWG.Wait()
	for _, s := range shards {
		s.Close()
	}
	r.watchWG.Wait()
	if r.log != nil {
		r.log.Close()
	}
}

// Kill simulates a crash for the kill-and-replay tests: the log is
// severed first (anything not yet appended is lost, exactly as SIGKILL
// would lose it), then the shards are torn down without completion
// records. The joblog on disk is left as a real crash would leave it.
func (r *Router) Kill() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	if r.log != nil {
		r.log.Kill()
	}
	shards := append([]ShardHandle(nil), r.shards...)
	r.mu.Unlock()
	r.loopWG.Wait()
	for _, s := range shards {
		s.Close()
	}
	r.watchWG.Wait()
}
