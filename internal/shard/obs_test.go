package shard

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// TestJoblogFsyncInstrumentation pins the group-commit accounting: with
// FsyncEvery=2 and a long interval, four appends produce exactly two
// barriers, each committing two records — visible in the histograms'
// counts, sums, and bucket placement.
func TestJoblogFsyncInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	fsyncH := reg.Histogram("fsync_seconds", "", obs.LatencyBuckets)
	commitH := reg.Histogram("commit_records", "", obs.SizeBuckets)

	path := filepath.Join(t.TempDir(), "log.jsonl")
	l, _, err := OpenLog(path, 2, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(fsyncH, commitH)
	for i := 0; i < 4; i++ {
		if err := l.Append(Record{T: "submit", ID: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fsyncH.Count(); got != 2 {
		t.Fatalf("fsync barriers = %d, want 2 (4 appends / every=2)", got)
	}
	if got := commitH.Count(); got != 2 {
		t.Fatalf("commit observations = %d, want 2", got)
	}
	if got := commitH.Sum(); got != 4 {
		t.Fatalf("committed records = %v, want 4", got)
	}
	// Bucket placement: both commits carried 2 records, so the le=2 bucket
	// (SizeBuckets index 1) holds both.
	snap := commitH.Snapshot()
	if snap.Bounds[1] != 2 || snap.Counts[1] != 2 {
		t.Fatalf("commit-size buckets = %v over %v, want 2 observations at le=2", snap.Counts, snap.Bounds)
	}
	if fsyncH.Sum() <= 0 {
		t.Fatal("fsync latency sum not positive")
	}
	// Close syncs with nothing pending: a barrier happens (fsync observed)
	// but no empty group-commit is recorded.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fsyncH.Count(); got != 3 {
		t.Fatalf("fsync barriers after close = %d, want 3", got)
	}
	if got := commitH.Count(); got != 2 {
		t.Fatalf("commit observations after empty close = %d, want 2 (no 0-size commits)", got)
	}
}

// TestReplayPreservesSpanPhases is the kill-and-replay acceptance check at
// the span layer: a job resubmitted from the log keeps its pre-crash
// admission stamp and carries the replayed phase, on a span ring created
// only after the restart.
func TestReplayPreservesSpanPhases(t *testing.T) {
	cfg := Config{
		Shards:  2,
		Serve:   serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1},
		LogPath: filepath.Join(t.TempDir(), "log.jsonl"),
		Spans:   obs.NewSpanLog(256),
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Blockers pin the run slots so the jobs behind them die queued.
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 20, Tenant: fmt.Sprintf("blk-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	ids := map[string]bool{}
	for i := 0; i < 10; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: fmt.Sprintf("tenant-%d", i%3)})
		if err != nil {
			t.Fatal(err)
		}
		ids[j.ID()] = true
	}
	r.Kill()
	killNS := time.Now().UnixNano()

	cfg.Spans = obs.NewSpanLog(256)
	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Stats().Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := r2.Stats()
		busy := st.Backlog
		for _, ss := range st.PerShard {
			busy += ss.Queued + ss.Running
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed backlog did not drain")
		}
		time.Sleep(time.Millisecond)
	}

	checked := 0
	for _, sp := range cfg.Spans.Spans() {
		if !ids[sp.ID] {
			continue
		}
		checked++
		if sp.At(obs.PhaseReplayed) == 0 {
			t.Errorf("span %s missing the replayed phase", sp.ID)
		}
		adm := sp.At(obs.PhaseAdmitted)
		if adm == 0 || adm >= killNS {
			t.Errorf("span %s admitted at %d, want a pre-kill stamp", sp.ID, adm)
		}
		if _, _, ok := sp.Terminal(); !ok {
			t.Errorf("span %s never reached a terminal phase", sp.ID)
		}
	}
	if checked != len(ids) {
		t.Fatalf("checked %d replayed spans, want %d", checked, len(ids))
	}
}

// TestRouterMetricsFamilies: the tier-level registry carries per-shard
// labeled series plus the router families, rendered as valid text.
func TestRouterMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	r, err := New(Config{
		Shards:  2,
		Serve:   serve.Config{Workers: 1, QueueCap: 16},
		Metrics: reg,
		Spans:   obs.NewSpanLog(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pstld_shards 2",
		`pstld_shard_load{shard="0"}`,
		`pstld_shard_load{shard="1"}`,
		`pstld_queue_depth{shard="0"}`,
		"pstld_spills_total",
		"pstld_migrations_total",
		"pstld_backlog",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router metrics missing %q", want)
		}
	}
	// The completed job's per-tenant series carries both labels.
	if !strings.Contains(out, `tenant="acme"`) {
		t.Error("per-tenant series missing from the shared registry")
	}
}
