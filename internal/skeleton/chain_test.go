package skeleton_test

import (
	"testing"

	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/pipeline"
	"pstlbench/internal/skeleton"
)

// TestChainBytesMatchPipelineModel pins the two traffic models to each
// other: skeleton.Chain (which the simulator executes) and
// pipeline.ModelTraffic (which the runtime library reports) must agree on
// the per-element staged and fused traffic for every chain shape, or the
// ext-fusion prediction and the pstlbench traffic columns would drift
// apart silently.
func TestChainBytesMatchPipelineModel(t *testing.T) {
	const n = 1000
	const elem = 8
	f := func(v float64) float64 { return v + 1 }
	for _, gen := range []bool{false, true} {
		for stages := 0; stages <= 3; stages++ {
			for _, term := range []string{"reduce", "copy", "scan"} {
				c := skeleton.Chain{Stages: stages, Terminal: term, Generate: gen}
				var pl *pipeline.Pipeline[float64]
				if gen {
					pl = pipeline.Generate(n, func(i int) float64 { return float64(i) })
				} else {
					pl = pipeline.From(make([]float64, n))
				}
				for s := 0; s < stages; s++ {
					pl = pl.Transform(f)
				}
				tr := pl.ModelTraffic(elem, term)
				if got, want := c.StagedBytesPerElem()*n, float64(tr.Staged); got != want {
					t.Errorf("gen=%v stages=%d %s: skeleton staged %v != pipeline %v",
						gen, stages, term, got, want)
				}
				if got, want := c.FusedBytesPerElem()*n, float64(tr.Fused); got != want {
					t.Errorf("gen=%v stages=%d %s: skeleton fused %v != pipeline %v",
						gen, stages, term, got, want)
				}
			}
		}
	}
}

// TestChainPhasesTrafficConsistent: the phase lists the simulator executes
// must carry exactly the per-element bytes the closed-form model claims.
func TestChainPhasesTrafficConsistent(t *testing.T) {
	m := machine.MachA()
	b := backend.GCCTBB()
	w := skeleton.Workload{Op: backend.OpTransform, N: 1 << 22, ElemBytes: 8, Kit: 1}
	sum := func(phases []skeleton.Phase) float64 {
		var total float64
		for _, ph := range phases {
			for _, task := range ph.Tasks {
				total += task.Elems * task.BytesPerElem
			}
		}
		return total / float64(w.N)
	}
	for _, gen := range []bool{false, true} {
		for stages := 0; stages <= 3; stages++ {
			for _, term := range []string{"reduce", "copy", "scan"} {
				c := skeleton.Chain{Stages: stages, Terminal: term, Generate: gen}
				st, _ := skeleton.StagedChainPhases(w, c, b, m.Cores, m)
				fu, _ := skeleton.FusedChainPhases(w, c, b, m.Cores, m)
				if got, want := sum(st), c.StagedBytesPerElem(); !close(got, want) {
					t.Errorf("%+v: staged phases carry %v B/elem, model says %v", c, got, want)
				}
				if got, want := sum(fu), c.FusedBytesPerElem(); !close(got, want) {
					t.Errorf("%+v: fused phases carry %v B/elem, model says %v", c, got, want)
				}
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestFusedChainPredictsFasterAtBandwidthBoundSize: at a DRAM-resident
// size the simulated fused chain must beat the staged chain by at least
// the acceptance bar for the headline 3-stage reduce chain.
func TestFusedChainPredictsFaster(t *testing.T) {
	m := machine.MachA()
	b := backend.GCCTBB()
	w := skeleton.Workload{Op: backend.OpTransform, N: 1 << 24, ElemBytes: 8, Kit: 1}
	c := skeleton.Chain{Stages: 2, Terminal: "reduce"}
	st, sp := skeleton.StagedChainPhases(w, c, b, m.Cores, m)
	fu, fp := skeleton.FusedChainPhases(w, c, b, m.Cores, m)
	if !sp || !fp {
		t.Fatalf("expected parallel execution at n=%d", w.N)
	}
	var stagedElems, fusedElems float64
	for _, ph := range st {
		for _, task := range ph.Tasks {
			stagedElems += task.Elems
		}
	}
	for _, ph := range fu {
		for _, task := range ph.Tasks {
			fusedElems += task.Elems
		}
	}
	// Staged: 3 passes (2 transforms + reduce) over n; fused: one pass.
	if stagedElems != 3*float64(w.N) || fusedElems != float64(w.N) {
		t.Fatalf("staged sweeps %v elems, fused %v; want %v and %v",
			stagedElems, fusedElems, 3*float64(w.N), float64(w.N))
	}
}
