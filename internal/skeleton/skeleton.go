// Package skeleton builds per-algorithm cost skeletons: the phase and task
// structure the discrete-event simulator executes. A skeleton mirrors the
// decomposition of the real implementation in internal/core — the same
// grain policy produces the chunk list, scans are two passes over the same
// chunks, sorts are leaf sorts plus merge rounds — so the schedule being
// timed is the schedule the library actually runs.
//
// Intrinsic per-element costs are calibrated against the paper's
// measurements (Table 3 and 4); see package backend for the per-runtime
// overhead split.
package skeleton

import (
	"fmt"
	"math"

	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
)

// Intrinsic kernel costs per element (64-bit elements), before backend
// overhead and SIMD. Calibrated so that intrinsic + backend overhead
// reproduces the per-element instruction counts of Tables 3 and 4.
const (
	// ForEach (Listing 1): the volatile loop counter forces a
	// load/inc/store/cmp/branch sequence per k_it iteration (~8 instr)
	// plus ~6 instructions of loop setup and the final store.
	forEachBaseInstr  = 6.0
	forEachInstrPerIt = 8.0
	// Write + write-allocate read of the output element.
	forEachBytes = 16.0

	// Find: the hot compare loop sustains several comparisons per cycle
	// on an out-of-order core, so a sequential std::find runs at memory
	// speed; 8 bytes read per element.
	findInstr = 1.2
	findBytes = 8.0

	// Reduce: load + add per element (Table 4: GCC-TBB retires
	// 1.75 instr/elem of which 0.25 is TBB overhead).
	reduceInstr = 1.5
	reduceBytes = 8.0

	// Scan passes: the reduce-like first pass and the rescan second pass
	// (load, add, store).
	scanPass1Instr = 1.5
	scanPass1Bytes = 8.0
	scanPass2Instr = 3.0
	scanPass2Bytes = 24.0 // read 8 + write 8 + write-allocate 8

	// Extension ops (beyond the paper's five): transform and copy stream
	// two arrays; count and minmax are read-only reductions.
	transformInstr = 3.0
	transformBytes = 24.0 // read 8 + write 8 + write-allocate 8
	copyInstr      = 0.5
	copyBytes      = 24.0
	countInstr     = 2.0
	countBytes     = 8.0
	minmaxInstr    = 3.0
	minmaxBytes    = 8.0

	// Sort: comparison-sort cost per element per log2(n) level. The value
	// reflects the low effective IPC of branchy comparison sorting, not
	// just the instruction count.
	sortCmpInstr    = 4.5
	sortMergeInstr  = 8.0
	sortMergeBytes  = 48.0 // read both runs + write merge buffer + copy back
	multiwayFactor  = 3.0  // GNU multiway merge: instr per elem per log2(p)
	seqSortOverhead = 1.15 // introsort constant vs. plain comparisons
)

// Task is one schedulable unit of a phase.
type Task struct {
	// Elems is the number of elements the task processes.
	Elems float64
	// Span is the element index range the task covers, used to locate its
	// pages for the NUMA traffic model. For tasks that touch the whole
	// array (merge rounds), Span covers the merged region.
	Span exec.Range
	// InstrPerElem is the scalar instruction count per element.
	InstrPerElem float64
	// FlopsPerElem is the double-precision op count per element.
	FlopsPerElem float64
	// BytesPerElem is the memory traffic per element.
	BytesPerElem float64
	// Vectorizable marks the intrinsic part of the work as amenable to
	// the backend's SIMD lanes for this op.
	Vectorizable bool
}

// Phase is a set of tasks separated from the next phase by a barrier, plus
// an optional sequential section (e.g. the chunk-offset pass of a scan).
type Phase struct {
	Tasks []Task
	// SeqInstr is executed by one core after the tasks complete.
	SeqInstr float64
	// SeqBytes is the memory traffic of the sequential section.
	SeqBytes float64
	// EarlyExit, if >= 0, is the index of the task whose completion ends
	// the phase (parallel find: the task whose chunk contains the hit).
	EarlyExit int
}

// Workload describes one benchmark invocation to simulate.
type Workload struct {
	Op backend.Op
	// N is the element count.
	N int64
	// ElemBytes is the element size (8 for double, 4 for float).
	ElemBytes int
	// Kit is the for_each computational intensity (iterations per
	// element); ignored for other ops.
	Kit int
	// HitFrac is the position of the found element as a fraction of N
	// (find only). The paper searches a random element: expectation 0.5.
	HitFrac float64
}

// Validate panics on malformed workloads.
func (w Workload) Validate() {
	if w.N < 0 {
		panic("skeleton: negative N")
	}
	if w.ElemBytes != 4 && w.ElemBytes != 8 {
		panic(fmt.Sprintf("skeleton: unsupported element size %d", w.ElemBytes))
	}
	if w.Op == backend.OpForEach && w.Kit < 1 {
		panic("skeleton: for_each requires Kit >= 1")
	}
	if w.Op == backend.OpFind && (w.HitFrac < 0 || w.HitFrac > 1) {
		panic("skeleton: HitFrac out of [0,1]")
	}
}

// scaleBytes adjusts byte costs for 32-bit elements.
func (w Workload) scaleBytes(b float64) float64 {
	return b * float64(w.ElemBytes) / 8
}

// Build returns the phase list for executing w with backend b on the given
// thread count of machine m, and whether the execution is parallel. A
// sequential execution (seq backend, unsupported op, or below the backend's
// sequential threshold) is a single phase with a single task. The machine
// is needed because a sort's DRAM traffic depends on how its partitions
// relate to the cache sizes.
func Build(w Workload, b *backend.Backend, threads int, m *machine.Machine) (phases []Phase, parallel bool) {
	w.Validate()
	if w.N == 0 {
		return nil, false
	}
	tr := b.Traits(w.Op)
	parallel = !b.IsSequential() && tr.ParallelImpl && threads > 1 && w.N >= int64(tr.SeqThreshold)
	if !parallel {
		return buildSequential(w, m), false
	}
	chunks := b.Grain.Partition(int(w.N), threads)
	switch w.Op {
	case backend.OpForEach:
		return []Phase{chunkPhase(w, chunks, forEachInstr(w.Kit), float64(w.Kit), w.scaleBytes(forEachBytes), true)}, true
	case backend.OpFind:
		return buildParallelFind(w, chunks, tr.FindCancelAtChunk), true
	case backend.OpReduce:
		ph := chunkPhase(w, chunks, reduceInstr, 1, w.scaleBytes(reduceBytes), true)
		// Combining the per-chunk partials is a short sequential tail.
		ph.SeqInstr = 20 * float64(len(chunks))
		return []Phase{ph}, true
	case backend.OpInclusiveScan:
		p1 := chunkPhase(w, chunks, scanPass1Instr, 1, w.scaleBytes(scanPass1Bytes), true)
		p1.SeqInstr = 20 * float64(len(chunks)) // exclusive prefix of chunk sums
		p2 := chunkPhase(w, chunks, scanPass2Instr, 1, w.scaleBytes(scanPass2Bytes), true)
		return []Phase{p1, p2}, true
	case backend.OpSort:
		return buildParallelSort(w, b, threads, m), true
	case backend.OpTransform:
		return []Phase{chunkPhase(w, chunks, transformInstr, 1, w.scaleBytes(transformBytes), true)}, true
	case backend.OpCopy:
		return []Phase{chunkPhase(w, chunks, copyInstr, 0, w.scaleBytes(copyBytes), true)}, true
	case backend.OpCount:
		ph := chunkPhase(w, chunks, countInstr, 0, w.scaleBytes(countBytes), true)
		ph.SeqInstr = 5 * float64(len(chunks))
		return []Phase{ph}, true
	case backend.OpMinMax:
		ph := chunkPhase(w, chunks, minmaxInstr, 0, w.scaleBytes(minmaxBytes), true)
		ph.SeqInstr = 10 * float64(len(chunks))
		return []Phase{ph}, true
	default:
		panic(fmt.Sprintf("skeleton: unknown op %v", w.Op))
	}
}

func forEachInstr(kit int) float64 {
	return forEachBaseInstr + forEachInstrPerIt*float64(kit)
}

// sortPassBytes returns the per-element DRAM traffic of comparison-sorting
// a region of regionBytes with cacheBytes of cache available: every
// partition/merge level whose working set exceeds the cache streams the
// region once (16 bytes: read + write).
func sortPassBytes(regionBytes, cacheBytes float64) float64 {
	if cacheBytes <= 0 {
		cacheBytes = 1
	}
	passes := math.Log2(regionBytes / cacheBytes)
	if passes < 2 {
		passes = 2
	}
	if passes > 12 {
		passes = 12
	}
	return 16 * passes
}

// buildSequential models the single-threaded execution of w.
func buildSequential(w Workload, m *machine.Machine) []Phase {
	n := float64(w.N)
	one := func(instr, flops, bytes float64, vec bool) []Phase {
		return []Phase{{
			Tasks: []Task{{
				Elems: n, Span: exec.Range{Lo: 0, Hi: int(w.N)},
				InstrPerElem: instr, FlopsPerElem: flops,
				BytesPerElem: bytes, Vectorizable: vec,
			}},
			EarlyExit: -1,
		}}
	}
	switch w.Op {
	case backend.OpForEach:
		return one(forEachInstr(w.Kit), float64(w.Kit), w.scaleBytes(forEachBytes), true)
	case backend.OpFind:
		// A sequential find scans until the hit.
		scanned := n * w.HitFrac
		ph := one(findInstr, 0, w.scaleBytes(findBytes), false)
		ph[0].Tasks[0].Elems = math.Max(1, scanned)
		ph[0].Tasks[0].Span = exec.Range{Lo: 0, Hi: int(math.Max(1, scanned))}
		return ph
	case backend.OpReduce:
		return one(reduceInstr, 1, w.scaleBytes(reduceBytes), true)
	case backend.OpInclusiveScan:
		// One pass: read, add, store.
		return one(scanPass2Instr, 1, w.scaleBytes(scanPass2Bytes), true)
	case backend.OpTransform:
		return one(transformInstr, 1, w.scaleBytes(transformBytes), true)
	case backend.OpCopy:
		return one(copyInstr, 0, w.scaleBytes(copyBytes), true)
	case backend.OpCount:
		return one(countInstr, 0, w.scaleBytes(countBytes), true)
	case backend.OpMinMax:
		return one(minmaxInstr, 0, w.scaleBytes(minmaxBytes), true)
	case backend.OpSort:
		// Introsort: ~log2(n) comparison levels; every partition level
		// whose working set exceeds the LLC streams the array from DRAM.
		levels := math.Max(1, math.Log2(n))
		bytes := sortPassBytes(n*float64(w.ElemBytes), float64(m.LLCPerSocket))
		ph := one(seqSortOverhead*sortCmpInstr*levels, 0, bytes, false)
		return ph
	default:
		panic(fmt.Sprintf("skeleton: unknown op %v", w.Op))
	}
}

// chunkPhase builds one phase with a task per chunk.
func chunkPhase(w Workload, chunks []exec.Range, instr, flops, bytes float64, vec bool) Phase {
	tasks := make([]Task, len(chunks))
	for i, c := range chunks {
		tasks[i] = Task{
			Elems: float64(c.Len()), Span: c,
			InstrPerElem: instr, FlopsPerElem: flops,
			BytesPerElem: bytes, Vectorizable: vec,
		}
	}
	return Phase{Tasks: tasks, EarlyExit: -1}
}

// buildParallelFind builds the early-exit scan: every chunk streams until
// the chunk containing the hit reaches it, at which point cancellation
// propagates. Implementations that only check for cancellation at chunk
// boundaries (cancelAtChunk) scan everything regardless of the hit.
func buildParallelFind(w Workload, chunks []exec.Range, cancelAtChunk bool) []Phase {
	hit := int(w.HitFrac * float64(w.N-1))
	ph := chunkPhase(w, chunks, findInstr, 0, w.scaleBytes(findBytes), false)
	if cancelAtChunk {
		return []Phase{ph}
	}
	ph.EarlyExit = 0
	for i, c := range chunks {
		if hit >= c.Lo && hit < c.Hi {
			ph.EarlyExit = i
			// The owner only scans up to the hit.
			ph.Tasks[i].Elems = math.Max(1, float64(hit-c.Lo+1))
			break
		}
	}
	return []Phase{ph}
}

// buildParallelSort builds the mergesort skeleton. The GNU backend models
// MCSTL's multiway mergesort (leaf sorts + ONE p-way merge pass), which
// streams the array once and therefore scales best at high thread counts
// (Fig. 7b); the other backends model binary merge rounds, each streaming
// the full array.
func buildParallelSort(w Workload, b *backend.Backend, threads int, m *machine.Machine) []Phase {
	n := float64(w.N)
	parts := threads
	if parts > int(w.N) {
		parts = int(w.N)
	}
	leafElems := n / float64(parts)
	leafLevels := math.Max(1, math.Log2(math.Max(2, leafElems)))
	leafBytes := sortPassBytes(leafElems*float64(w.ElemBytes), float64(m.L2PerCore))
	leafChunks := exec.Static.Partition(int(w.N), parts)
	phases := []Phase{chunkPhase(w, leafChunks, sortCmpInstr*leafLevels, 0, leafBytes, false)}

	if b.Runtime == "GNU" {
		// Single multiway merge: every part merges its share of the
		// output from all p sorted runs.
		mw := chunkPhase(w, leafChunks, multiwayFactor*math.Log2(float64(parts)+1), 0, w.scaleBytes(sortMergeBytes), false)
		// Splitter selection is a short sequential section.
		mw.SeqInstr = 500 * float64(parts)
		return append(phases, mw)
	}

	// Binary merge rounds: each round merges pairs of runs across the
	// whole array. The merges themselves are parallelized (split at run
	// medians), so every round keeps all cores busy, but each round
	// streams the full array and pays split/scatter instructions — the
	// log2(p) extra passes are the scalability ceiling the paper
	// observes for TBB/HPX/NVC sort.
	rounds := int(math.Ceil(math.Log2(float64(parts))))
	for r := 0; r < rounds; r++ {
		mergeChunks := exec.Static.Partition(int(w.N), parts)
		phases = append(phases, chunkPhase(w, mergeChunks, sortMergeInstr, 0, w.scaleBytes(sortMergeBytes), false))
	}
	return phases
}
