package skeleton

import (
	"fmt"

	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
)

// Chain describes an s-stage element-wise pipeline chain for the fusion
// model: the shape internal/pipeline executes, here as a cost skeleton so
// the simulator can predict the staged-vs-fused traffic and time delta that
// the ext-fusion experiment measures natively.
type Chain struct {
	// Stages is the number of element-wise transform stages before the
	// terminal (the "3-stage chain" of the headline claim has Stages=3
	// counting the terminal's own pass, i.e. Stages=2 transforms + reduce).
	Stages int
	// Terminal is "reduce", "copy", or "scan".
	Terminal string
	// Generate marks a generated source (no input array read; the staged
	// form still pays a materialization pass for it).
	Generate bool
}

// fusedStageInstr is the per-element cost of one fused stage: the user
// function's arithmetic only — the load/store and loop overhead that each
// staged pass repeats are paid once, in the terminal's base cost.
const fusedStageInstr = 1.0

// Validate panics on malformed chains.
func (c Chain) Validate() {
	if c.Stages < 0 {
		panic("skeleton: negative chain stages")
	}
	switch c.Terminal {
	case "reduce", "copy", "scan":
	default:
		panic(fmt.Sprintf("skeleton: unknown chain terminal %q", c.Terminal))
	}
}

// StagedBytesPerElem returns the modeled per-element DRAM traffic of
// running the chain as separate passes with materialized intermediates,
// for 8-byte elements (write-allocate accounting: a streamed store costs a
// read plus a write). It mirrors pipeline.ModelTraffic exactly — the two
// are cross-checked by test.
func (c Chain) StagedBytesPerElem() float64 {
	var b float64
	if c.Generate {
		b += 16 // materialize the generated source: write + write-allocate
	}
	b += float64(c.Stages) * 24 // per stage: read + write + write-allocate
	switch c.Terminal {
	case "reduce":
		b += 8
	case "copy":
		b += 24
	case "scan":
		b += 32 // reduce-like pass + rescan pass
	}
	return b
}

// FusedBytesPerElem returns the modeled per-element DRAM traffic of the
// fused single-pass execution: the source is read (at most) once per pass
// and only the terminal writes.
func (c Chain) FusedBytesPerElem() float64 {
	srcRead := 8.0
	if c.Generate {
		srcRead = 0
	}
	switch c.Terminal {
	case "reduce":
		return srcRead
	case "copy":
		return srcRead + 16
	case "scan":
		// Two passes, each re-evaluating the chain from the source.
		return 2*srcRead + 16
	}
	return srcRead
}

// chainParallel decides parallel execution the same way Build does for the
// transform op, whose traits dominate an element-wise chain.
func chainParallel(n int64, b *backend.Backend, threads int) (backend.OpTraits, bool) {
	tr := b.Traits(backend.OpTransform)
	return tr, !b.IsSequential() && tr.ParallelImpl && threads > 1 && n >= int64(tr.SeqThreshold)
}

// StagedChainPhases builds the phase list for executing the chain as
// separate core passes — one barrier-separated phase per stage plus the
// terminal — with backend b on the given thread count. Mirrors Build's
// conventions: a sequential execution is single-task phases.
func StagedChainPhases(w Workload, c Chain, b *backend.Backend, threads int, m *machine.Machine) (phases []Phase, parallel bool) {
	w.Validate()
	c.Validate()
	if w.N == 0 {
		return nil, false
	}
	_, parallel = chainParallel(w.N, b, threads)
	chunks := chainChunks(w, b, threads, parallel)

	if c.Generate {
		// Materialization pass for the generated source.
		phases = append(phases, chunkPhase(w, chunks, transformInstr, 1, w.scaleBytes(16), true))
	}
	for s := 0; s < c.Stages; s++ {
		phases = append(phases, chunkPhase(w, chunks, transformInstr, 1, w.scaleBytes(24), true))
	}
	switch c.Terminal {
	case "reduce":
		ph := chunkPhase(w, chunks, reduceInstr, 1, w.scaleBytes(reduceBytes), true)
		ph.SeqInstr = 20 * float64(len(chunks))
		phases = append(phases, ph)
	case "copy":
		phases = append(phases, chunkPhase(w, chunks, copyInstr, 0, w.scaleBytes(copyBytes), true))
	case "scan":
		p1 := chunkPhase(w, chunks, scanPass1Instr, 1, w.scaleBytes(scanPass1Bytes), true)
		p1.SeqInstr = 20 * float64(len(chunks))
		phases = append(phases, p1,
			chunkPhase(w, chunks, scanPass2Instr, 1, w.scaleBytes(scanPass2Bytes), true))
	}
	return phases, parallel
}

// FusedChainPhases builds the phase list for the fused chunk-granular
// execution of the same chain: one pass (two for scan), each element
// flowing through every stage in registers, with only the source read and
// the terminal's writes touching memory.
func FusedChainPhases(w Workload, c Chain, b *backend.Backend, threads int, m *machine.Machine) (phases []Phase, parallel bool) {
	w.Validate()
	c.Validate()
	if w.N == 0 {
		return nil, false
	}
	_, parallel = chainParallel(w.N, b, threads)
	chunks := chainChunks(w, b, threads, parallel)

	stageInstr := fusedStageInstr * float64(c.Stages)
	stageFlops := float64(c.Stages)
	srcRead := w.scaleBytes(8)
	if c.Generate {
		srcRead = 0
	}
	switch c.Terminal {
	case "reduce":
		ph := chunkPhase(w, chunks, reduceInstr+stageInstr, 1+stageFlops, srcRead, true)
		ph.SeqInstr = 20 * float64(len(chunks))
		phases = append(phases, ph)
	case "copy":
		phases = append(phases, chunkPhase(w, chunks, copyInstr+stageInstr, stageFlops, srcRead+w.scaleBytes(16), true))
	case "scan":
		p1 := chunkPhase(w, chunks, scanPass1Instr+stageInstr, 1+stageFlops, srcRead, true)
		p1.SeqInstr = 20 * float64(len(chunks))
		phases = append(phases, p1,
			chunkPhase(w, chunks, scanPass2Instr+stageInstr, 1+stageFlops, srcRead+w.scaleBytes(16), true))
	}
	return phases, parallel
}

// chainChunks partitions the chain's iteration space like Build does: the
// backend's grain for parallel runs, one whole-array task otherwise.
func chainChunks(w Workload, b *backend.Backend, threads int, parallel bool) []exec.Range {
	if parallel {
		return b.Grain.Partition(int(w.N), threads)
	}
	return []exec.Range{{Lo: 0, Hi: int(w.N)}}
}

// ChainWorkingSet returns the bytes the chain touches repeatedly, for the
// memory-level decision: staged execution ping-pongs the source and one
// materialized intermediate; fused execution touches only the source (plus
// the destination for copy/scan terminals).
func ChainWorkingSet(w Workload, c Chain, fused bool) int64 {
	ws := w.N * int64(w.ElemBytes)
	if c.Generate {
		ws = 0
	}
	if !fused && (c.Stages > 0 || c.Generate) {
		// One materialized intermediate array lives across passes.
		ws += w.N * int64(w.ElemBytes)
	}
	if c.Terminal != "reduce" {
		ws += w.N * int64(w.ElemBytes)
	}
	if ws == 0 {
		ws = w.N * int64(w.ElemBytes) // generated reduce: charge one pass
	}
	return ws
}
