package skeleton

import (
	"testing"

	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
)

func wl(op backend.Op, n int64) Workload {
	return Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.5}
}

// totalElems sums the element counts across a phase.
func totalElems(ph Phase) float64 {
	s := 0.0
	for _, t := range ph.Tasks {
		s += t.Elems
	}
	return s
}

func TestSequentialBuildsSingleTask(t *testing.T) {
	m := machine.MachA()
	for _, op := range backend.Ops() {
		phases, parallel := Build(wl(op, 1<<20), backend.GCCSeq(), 32, m)
		if parallel {
			t.Errorf("%s: sequential backend built a parallel skeleton", op)
		}
		if len(phases) != 1 || len(phases[0].Tasks) != 1 {
			t.Errorf("%s: sequential skeleton has %d phases", op, len(phases))
		}
	}
}

func TestParallelTaskCountsFollowGrain(t *testing.T) {
	m := machine.MachA()
	b := backend.GCCTBB() // Auto grain: 4 chunks/worker
	phases, parallel := Build(wl(backend.OpForEach, 1<<20), b, 32, m)
	if !parallel {
		t.Fatal("not parallel")
	}
	if got := len(phases[0].Tasks); got != 128 {
		t.Fatalf("task count %d, want 128 (4 x 32)", got)
	}
	if totalElems(phases[0]) != float64(1<<20) {
		t.Fatalf("tasks cover %v elements", totalElems(phases[0]))
	}
}

func TestScanHasTwoPhases(t *testing.T) {
	m := machine.MachC()
	phases, parallel := Build(wl(backend.OpInclusiveScan, 1<<22), backend.GCCTBB(), 128, m)
	if !parallel || len(phases) != 2 {
		t.Fatalf("scan skeleton: parallel=%v phases=%d, want 2", parallel, len(phases))
	}
	if phases[0].SeqInstr == 0 {
		t.Error("scan phase 1 missing the sequential offset pass")
	}
	// Both passes cover the whole array: ~2x the work of a single pass.
	if totalElems(phases[0]) != float64(1<<22) || totalElems(phases[1]) != float64(1<<22) {
		t.Error("scan phases do not each cover the array")
	}
}

func TestFindEarlyExitOwner(t *testing.T) {
	m := machine.MachA()
	w := wl(backend.OpFind, 1<<20)
	w.HitFrac = 0.25
	phases, _ := Build(w, backend.GCCTBB(), 32, m)
	ph := phases[0]
	if ph.EarlyExit < 0 {
		t.Fatal("find skeleton lost its early exit")
	}
	owner := ph.Tasks[ph.EarlyExit]
	nElems := float64(int64(1)<<20 - 1)
	hit := int(0.25 * nElems)
	if hit < owner.Span.Lo || hit >= owner.Span.Hi {
		t.Fatalf("early-exit task %v does not contain hit %d", owner.Span, hit)
	}
	if owner.Elems > float64(owner.Span.Len()) {
		t.Fatal("owner scans beyond its chunk")
	}
}

func TestFindCancelAtChunkScansEverything(t *testing.T) {
	m := machine.MachA()
	phases, _ := Build(wl(backend.OpFind, 1<<20), backend.NVCOMP(), 32, m)
	ph := phases[0]
	if ph.EarlyExit >= 0 {
		t.Fatal("NVC find should not early-exit (chunk-granular cancellation)")
	}
	if totalElems(ph) != float64(1<<20) {
		t.Fatalf("NVC find scans %v elements, want all", totalElems(ph))
	}
}

func TestSequentialFindScansHalf(t *testing.T) {
	m := machine.MachA()
	w := wl(backend.OpFind, 1<<20)
	w.HitFrac = 0.5
	phases, _ := Build(w, backend.GCCSeq(), 1, m)
	if got := phases[0].Tasks[0].Elems; got < float64(1<<19)*0.99 || got > float64(1<<19)*1.01 {
		t.Fatalf("sequential find scans %v elements, want ~half", got)
	}
}

func TestSortSkeletonShapes(t *testing.T) {
	m := machine.MachC()
	// GNU: leaf phase + ONE multiway merge phase.
	gnu, _ := Build(wl(backend.OpSort, 1<<24), backend.GCCGNU(), 128, m)
	if len(gnu) != 2 {
		t.Fatalf("GNU sort has %d phases, want 2 (multiway)", len(gnu))
	}
	// TBB: leaf phase + log2(128) = 7 binary merge rounds.
	tbb, _ := Build(wl(backend.OpSort, 1<<24), backend.GCCTBB(), 128, m)
	if len(tbb) != 8 {
		t.Fatalf("TBB sort has %d phases, want 8", len(tbb))
	}
	// Every phase covers the array.
	for i, ph := range tbb {
		if totalElems(ph) != float64(1<<24) {
			t.Fatalf("TBB sort phase %d covers %v elements", i, totalElems(ph))
		}
	}
}

func TestThresholdFallbacks(t *testing.T) {
	m := machine.MachA()
	if _, parallel := Build(wl(backend.OpForEach, 1<<9), backend.GCCGNU(), 32, m); parallel {
		t.Error("GNU for_each below 2^10 should be sequential")
	}
	if _, parallel := Build(wl(backend.OpSort, 1<<9), backend.GCCTBB(), 32, m); parallel {
		t.Error("TBB sort at 2^9 should be sequential")
	}
	if _, parallel := Build(wl(backend.OpInclusiveScan, 1<<24), backend.NVCOMP(), 32, m); parallel {
		t.Error("NVC scan should never be parallel")
	}
	if _, parallel := Build(wl(backend.OpReduce, 1<<24), backend.GCCTBB(), 1, m); parallel {
		t.Error("1 thread should never be parallel")
	}
}

func TestTable3InstructionTotals(t *testing.T) {
	// intrinsic + overhead must reproduce the Table 3 per-element counts.
	m := machine.MachA()
	want := map[string]float64{
		"GCC-TBB": 16.0, "GCC-GNU": 22.4, "GCC-HPX": 35.7,
		"ICC-TBB": 14.4, "NVC-OMP": 20.9,
	}
	for _, b := range backend.Parallel() {
		phases, _ := Build(wl(backend.OpForEach, 1<<24), b, 32, m)
		perElem := phases[0].Tasks[0].InstrPerElem + b.Traits(backend.OpForEach).InstrOverheadPerElem
		if got, w := perElem, want[b.ID]; got < w*0.98 || got > w*1.02 {
			t.Errorf("%s: %v instr/elem, want %v", b.ID, got, w)
		}
	}
}

func TestZeroAndValidation(t *testing.T) {
	m := machine.MachA()
	if phases, _ := Build(wl(backend.OpReduce, 0), backend.GCCTBB(), 32, m); phases != nil {
		t.Error("N=0 should produce no phases")
	}
	mustPanic := func(name string, w Workload) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		Build(w, backend.GCCTBB(), 32, m)
	}
	mustPanic("negative N", Workload{Op: backend.OpReduce, N: -1, ElemBytes: 8})
	mustPanic("bad elem size", Workload{Op: backend.OpReduce, N: 8, ElemBytes: 3})
	mustPanic("zero kit", Workload{Op: backend.OpForEach, N: 8, ElemBytes: 8, Kit: 0})
	mustPanic("bad hitfrac", Workload{Op: backend.OpFind, N: 8, ElemBytes: 8, HitFrac: 2})
}

func TestFloatHalvesTraffic(t *testing.T) {
	m := machine.MachA()
	d, _ := Build(wl(backend.OpReduce, 1<<20), backend.GCCTBB(), 32, m)
	wf := wl(backend.OpReduce, 1<<20)
	wf.ElemBytes = 4
	f, _ := Build(wf, backend.GCCTBB(), 32, m)
	if f[0].Tasks[0].BytesPerElem*2 != d[0].Tasks[0].BytesPerElem {
		t.Fatalf("float traffic %v, double traffic %v", f[0].Tasks[0].BytesPerElem, d[0].Tasks[0].BytesPerElem)
	}
}

func TestForEachKitScalesInstructions(t *testing.T) {
	m := machine.MachA()
	w1 := wl(backend.OpForEach, 1<<20)
	w1000 := w1
	w1000.Kit = 1000
	p1, _ := Build(w1, backend.GCCTBB(), 32, m)
	p1000, _ := Build(w1000, backend.GCCTBB(), 32, m)
	r := p1000[0].Tasks[0].InstrPerElem / p1[0].Tasks[0].InstrPerElem
	if r < 400 || r > 700 {
		t.Fatalf("kit=1000/kit=1 instruction ratio %v implausible", r)
	}
	if p1000[0].Tasks[0].FlopsPerElem != 1000 {
		t.Fatalf("kit=1000 flops = %v", p1000[0].Tasks[0].FlopsPerElem)
	}
}
