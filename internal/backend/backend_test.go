package backend

import "testing"

func TestAllBackendsComplete(t *testing.T) {
	for _, b := range All() {
		if b.ID == "" || b.Compiler == "" {
			t.Errorf("backend missing identity: %+v", b)
		}
		for _, op := range Ops() {
			tr := b.Traits(op) // must not panic
			if tr.MemFactor <= 0 {
				t.Errorf("%s/%s: MemFactor %v", b.ID, op, tr.MemFactor)
			}
			if tr.SIMDLanes < 1 {
				t.Errorf("%s/%s: SIMDLanes %d", b.ID, op, tr.SIMDLanes)
			}
			if tr.AffinityMatch < 0 || tr.AffinityMatch > 1 {
				t.Errorf("%s/%s: AffinityMatch %v", b.ID, op, tr.AffinityMatch)
			}
		}
	}
}

func TestTable7BinarySizes(t *testing.T) {
	// The modeled footprints are the paper's Table 7 values.
	want := map[string]float64{
		"GCC-SEQ": 2.52, "GCC-TBB": 17.21, "GCC-GNU": 5.31, "GCC-HPX": 61.98,
		"ICC-TBB": 16.64, "NVC-OMP": 1.81, "NVC-CUDA": 7.80,
	}
	for id, mib := range want {
		b := ByID(id)
		if b == nil {
			t.Fatalf("missing backend %s", id)
		}
		if b.BinMiB != mib {
			t.Errorf("%s: BinMiB = %v, want %v", id, b.BinMiB, mib)
		}
	}
}

func TestPaperFallbacks(t *testing.T) {
	// Section 5.4: GNU has no parallel inclusive_scan; NVC-OMP falls back
	// to sequential for it.
	if GCCGNU().Traits(OpInclusiveScan).ParallelImpl {
		t.Error("GNU should have no parallel scan")
	}
	if NVCOMP().Traits(OpInclusiveScan).ParallelImpl {
		t.Error("NVC-OMP scan should fall back to sequential")
	}
	// Section 5.2/5.3: GNU sequential thresholds.
	if th := GCCGNU().Traits(OpForEach).SeqThreshold; th != 1<<10 {
		t.Errorf("GNU for_each threshold %d, want 2^10", th)
	}
	if th := GCCGNU().Traits(OpFind).SeqThreshold; th != 1<<9 {
		t.Errorf("GNU find threshold %d, want 2^9", th)
	}
	// Section 5.6: TBB sorts sequentially below 2^9, HPX below 2^15.
	if th := GCCTBB().Traits(OpSort).SeqThreshold; th != 1<<9+1 {
		t.Errorf("TBB sort threshold %d", th)
	}
	if th := GCCHPX().Traits(OpSort).SeqThreshold; th != 1<<15+1 {
		t.Errorf("HPX sort threshold %d", th)
	}
}

func TestTable4Vectorization(t *testing.T) {
	// Table 4: only ICC and HPX vectorize the reduction (256-bit).
	for _, b := range Parallel() {
		lanes := b.Traits(OpReduce).SIMDLanes
		wantVec := b.ID == "ICC-TBB" || b.ID == "GCC-HPX"
		if wantVec && lanes != 4 {
			t.Errorf("%s reduce lanes = %d, want 4", b.ID, lanes)
		}
		if !wantVec && lanes != 1 {
			t.Errorf("%s reduce lanes = %d, want 1", b.ID, lanes)
		}
	}
}

func TestStrategies(t *testing.T) {
	cases := map[string]Strategy{
		"GCC-SEQ": StrategySerial, "GCC-TBB": StrategyStealing,
		"GCC-GNU": StrategyStatic, "GCC-HPX": StrategyQueue,
		"ICC-TBB": StrategyStealing, "NVC-OMP": StrategyStatic,
		"NVC-CUDA": StrategyOffload,
	}
	for id, want := range cases {
		if got := ByID(id).Strategy; got != want {
			t.Errorf("%s strategy = %v, want %v", id, got, want)
		}
	}
	if !NVCCUDA().IsGPU() || GCCTBB().IsGPU() {
		t.Error("IsGPU wrong")
	}
	if !GCCSeq().IsSequential() || GCCGNU().IsSequential() {
		t.Error("IsSequential wrong")
	}
}

func TestICCUnavailableOnMachB(t *testing.T) {
	if ICCTBB().AvailableOn("Mach B (Zen 1)") {
		t.Error("ICC should be N/A on Mach B (Table 5)")
	}
	if !ICCTBB().AvailableOn("Mach A (Skylake)") {
		t.Error("ICC should exist on Mach A")
	}
	if !GCCTBB().AvailableOn("Mach B (Zen 1)") {
		t.Error("GCC should exist everywhere")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for _, op := range Ops() {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("bogus op resolved")
	}
}

func TestSetTrait(t *testing.T) {
	b := GCCTBB()
	orig := b.Traits(OpReduce).AffinityMatch
	b.SetTrait(OpReduce, func(tr *OpTraits) { tr.AffinityMatch = 0.123 })
	if b.Traits(OpReduce).AffinityMatch != 0.123 {
		t.Fatal("SetTrait did not apply")
	}
	// Constructors return fresh instances: the original is untouched.
	if GCCTBB().Traits(OpReduce).AffinityMatch != orig {
		t.Fatal("SetTrait leaked across constructor calls")
	}
}

func TestByIDUnknown(t *testing.T) {
	if ByID("GCC-LLVM") != nil {
		t.Fatal("unknown ID resolved")
	}
}

func TestTraitsPanicsOnMissingOp(t *testing.T) {
	b := &Backend{ID: "empty", ops: map[Op]OpTraits{}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Traits(OpSort)
}
