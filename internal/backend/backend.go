// Package backend describes the compiler/runtime combinations the paper
// compares: GCC-SEQ, GCC-TBB, GCC-GNU, GCC-HPX, ICC-TBB, NVC-OMP, and
// NVC-CUDA. A backend is a scheduling *strategy* (work stealing, static
// fork-join, central task queue, GPU offload) plus a *cost sheet*: per-
// invocation fork cost, per-task cost, per-element instruction overhead,
// SIMD usage, sequential-fallback thresholds, and unsupported operations.
//
// The strategies are code (shared with the native goroutine pools); the
// cost sheets are data, calibrated against the paper's published
// measurements: Table 3 (for_each instruction counts), Table 4 (reduce
// instruction counts and vector usage), and the qualitative observations of
// Section 5 (GNU's ~2^10/2^9 sequential thresholds, TBB's sequential sort
// below 2^9, HPX's single-thread sort below 2^15, NVC-OMP's sequential
// inclusive_scan fallback, GNU's missing parallel scan).
package backend

import (
	"fmt"

	"pstlbench/internal/exec"
)

// Op identifies one benchmarked STL algorithm.
type Op int

const (
	OpForEach Op = iota
	OpFind
	OpReduce
	OpInclusiveScan
	OpSort
	// Extension ops beyond the paper's five studied kernels (its stated
	// future work: "we would like to expand our benchmark suite").
	OpTransform
	OpCopy
	OpCount
	OpMinMax
	numOps
)

// String returns the pSTL-Bench kernel name.
func (o Op) String() string {
	switch o {
	case OpForEach:
		return "for_each"
	case OpFind:
		return "find"
	case OpReduce:
		return "reduce"
	case OpInclusiveScan:
		return "inclusive_scan"
	case OpSort:
		return "sort"
	case OpTransform:
		return "transform"
	case OpCopy:
		return "copy"
	case OpCount:
		return "count_if"
	case OpMinMax:
		return "minmax_element"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Ops returns the five operations of the paper's study.
func Ops() []Op {
	return []Op{OpFind, OpForEach, OpInclusiveScan, OpReduce, OpSort}
}

// ExtOps returns the extension operations simulated beyond the paper.
func ExtOps() []Op {
	return []Op{OpTransform, OpCopy, OpCount, OpMinMax}
}

// AllOps returns every simulated operation.
func AllOps() []Op { return append(Ops(), ExtOps()...) }

// OpByName returns the operation with the given kernel name.
func OpByName(name string) (Op, bool) {
	for _, o := range AllOps() {
		if o.String() == name {
			return o, true
		}
	}
	return 0, false
}

// Strategy is the scheduling strategy class of a backend.
type Strategy int

const (
	// StrategySerial runs everything on one core.
	StrategySerial Strategy = iota
	// StrategyStatic is OpenMP-style static fork-join (GNU, NVC-OMP).
	StrategyStatic
	// StrategyStealing is TBB-style work stealing.
	StrategyStealing
	// StrategyQueue is HPX-style futures over a central task queue.
	StrategyQueue
	// StrategyOffload is CUDA GPU offload (NVC-CUDA).
	StrategyOffload
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategySerial:
		return "serial"
	case StrategyStatic:
		return "static"
	case StrategyStealing:
		return "stealing"
	case StrategyQueue:
		return "queue"
	case StrategyOffload:
		return "offload"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// OpTraits is the per-operation part of a backend's cost sheet.
type OpTraits struct {
	// ParallelImpl is false when the backend has no parallel
	// implementation of the op and silently falls back to the sequential
	// one (GNU & NVC-OMP for inclusive_scan, per Section 5.4).
	ParallelImpl bool

	// SeqThreshold is the input size below which the runtime chooses its
	// sequential path (GNU: ~2^10 for for_each, 2^9 for find; TBB: 2^9
	// for sort; HPX: 2^15 for sort).
	SeqThreshold int

	// InstrOverheadPerElem is the per-element instruction overhead of the
	// backend's iteration abstraction on top of the kernel's own work
	// (HPX's per-element future machinery dominates Table 3/4).
	InstrOverheadPerElem float64

	// SIMDLanes is the vector width in 64-bit lanes the backend's
	// generated code achieves for this op (1 = scalar). Table 4: only
	// ICC-TBB and HPX vectorize reduce (256-bit => 4 lanes).
	SIMDLanes int

	// IPCFactor scales the retirement rate of the backend's *overhead*
	// instructions only (0 means 1.0). The paper's Table 3/4 data shows
	// the same instruction counts taking very different times per code
	// generator: NVC's bookkeeping pipelines well alongside the kernel
	// (factor > 1) while HPX's future machinery serializes (factor < 1).
	// Counters report raw counts; only the time cost is scaled.
	IPCFactor float64

	// MemFactor scales the kernel's DRAM traffic (write-allocate and
	// prefetch behaviour differs per code generator; Table 3's data
	// volumes range 1762-2151 GiB for the same kernel).
	MemFactor float64

	// DefaultAllocDistributed marks ops whose benchmark setup already
	// touches the data in parallel (shuffle before sort, parallel
	// generation for find/scan), so even the default allocator leaves
	// pages distributed. For these ops Figure 1's custom allocator has
	// no node-0 bottleneck to remove — which is why the paper records
	// losses for find and inclusive_scan and no change for sort.
	DefaultAllocDistributed bool

	// FirstTouchPenalty (>= 1, 0 means none) is an explicit calibration
	// multiplier applied under the first-touch allocator, reproducing
	// Figure 1's negative allocator effects for find and inclusive_scan,
	// for which the paper reports no mechanism.
	FirstTouchPenalty float64

	// FindCancelAtChunk marks a find implementation that only checks for
	// cancellation at chunk boundaries: every thread scans its whole
	// chunk even after the hit is found, doubling the expected traffic.
	FindCancelAtChunk bool

	// AffinityMatch in [0,1] is the fraction of a task's accesses that
	// hit the pages its own thread first-touched, when the first-touch
	// allocator is used. Static schedules match well; dynamic block
	// scheduling (find) and phase-shifted passes (scan) match poorly,
	// which is how Figure 1's negative allocator effects arise.
	AffinityMatch float64
}

// Backend is one compiler/runtime combination.
type Backend struct {
	// ID is the paper's label, e.g. "GCC-TBB".
	ID string
	// Compiler and Runtime split the ID for reporting.
	Compiler, Runtime string

	Strategy Strategy
	// Grain is the chunk decomposition the runtime uses.
	Grain exec.Grain

	// NUMASteal makes StrategyStealing victim selection topology-aware:
	// idle workers scan same-node bands before remote ones, so chunks
	// keep executing on the node that first-touched their pages and only
	// remote steals put data on the fabric. Off (the default) models the
	// runtimes the paper measures, whose uniform random stealing
	// decorrelates chunks from their pages. Other strategies ignore it.
	NUMASteal bool

	// ForkBase and ForkPerThread model the cost of opening+closing one
	// parallel region (seconds). The total fork/join cost with p threads
	// is ForkBase + ForkPerThread*p.
	ForkBase      float64
	ForkPerThread float64
	// TaskCost is the per-task spawn/retire cost (seconds).
	TaskCost float64
	// QueuePop is the serialization cost per task pop from the central
	// queue (seconds); only StrategyQueue backends pay it. It caps task
	// throughput at 1/QueuePop regardless of core count — the mechanism
	// behind HPX's scaling plateau (Fig. 3).
	QueuePop float64

	// SeqIPCFactor scales the machine's IPC for this backend's
	// *sequential* codegen (ICC's and NVC's sequential loops differ from
	// GCC's; Section 5.5 notes NVC/GNU sequential code is less efficient
	// than GCC's).
	SeqIPCFactor float64

	// BinMiB is the modeled binary footprint (Table 7): the runtime
	// library plus template instantiations.
	BinMiB float64

	ops map[Op]OpTraits
}

// Traits returns the cost-sheet entry for op.
func (b *Backend) Traits(op Op) OpTraits {
	t, ok := b.ops[op]
	if !ok {
		panic(fmt.Sprintf("backend %s: no traits for %s", b.ID, op))
	}
	return t
}

// SetTrait applies fn to the cost-sheet entry for op. It is used by the
// calibration and ablation experiments to vary one knob at a time.
func (b *Backend) SetTrait(op Op, fn func(*OpTraits)) {
	t := b.Traits(op)
	fn(&t)
	b.ops[op] = t
}

// IsGPU reports whether the backend offloads to a GPU.
func (b *Backend) IsGPU() bool { return b.Strategy == StrategyOffload }

// IsSequential reports whether the backend is the sequential baseline.
func (b *Backend) IsSequential() bool { return b.Strategy == StrategySerial }

// kernelInstr is the paper-calibrated *total* per-element instruction count
// of each backend for the studied kernels (Table 3 and Table 4, divided by
// 100 calls x 2^30 elements). The per-backend overhead stored in the cost
// sheet is the difference from the kernel's intrinsic work, computed in
// skeleton; here we store the overhead directly.
//
// Table 3 (for_each, k_it=1):  GCC-TBB 16.0, GCC-GNU 22.4, GCC-HPX 35.7,
//                              ICC-TBB 14.4, NVC-OMP 20.9 instr/elem.
// Table 4 (reduce):            GCC-TBB 1.75, GCC-GNU 2.11, GCC-HPX 16.2,
//                              ICC-TBB 1.00, NVC-OMP 2.75 instr/elem.

// GCCSeq is the sequential GCC baseline every speedup in the paper is
// measured against.
func GCCSeq() *Backend {
	return &Backend{
		ID: "GCC-SEQ", Compiler: "GCC", Runtime: "seq",
		Strategy:     StrategySerial,
		SeqIPCFactor: 1.0,
		BinMiB:       2.52,
		ops: map[Op]OpTraits{
			// GCC's plain sequential for_each loop is ~3 instr/elem
			// tighter than the policy-wrapped parallel loops.
			OpForEach:       {ParallelImpl: false, InstrOverheadPerElem: -3.0, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpFind:          {DefaultAllocDistributed: true, ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpReduce:        {ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpTransform:     {ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpCopy:          {ParallelImpl: false, SIMDLanes: 2, MemFactor: 1.0, AffinityMatch: 1},
			OpCount:         {ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpMinMax:        {ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
		},
	}
}

// GCCTBB is GCC with the oneTBB parallel STL (libstdc++'s default).
func GCCTBB() *Backend {
	return &Backend{
		ID: "GCC-TBB", Compiler: "GCC", Runtime: "TBB",
		Strategy: StrategyStealing, Grain: exec.Auto,
		ForkBase: 3e-6, ForkPerThread: 0.45e-6, TaskCost: 0.4e-6,
		SeqIPCFactor: 1.0,
		BinMiB:       17.21,
		ops: map[Op]OpTraits{
			OpForEach: {ParallelImpl: true, InstrOverheadPerElem: 2.0, IPCFactor: 1.2, SIMDLanes: 1, MemFactor: 1.21, AffinityMatch: 0.2},
			OpFind:    {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 1.0, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.75, FirstTouchPenalty: 1.15},
			OpReduce:  {ParallelImpl: true, InstrOverheadPerElem: 0.25, SIMDLanes: 1, MemFactor: 1.05, AffinityMatch: 0.75},
			// The PSTL scan over TBB re-reads temporaries between its
			// passes, inflating DRAM traffic well beyond 2 clean sweeps.
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 0.5, SIMDLanes: 1, MemFactor: 1.6, AffinityMatch: 0.75, FirstTouchPenalty: 1.19},
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: true, SeqThreshold: 1<<9 + 1, InstrOverheadPerElem: 1.0, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.6},
			OpTransform:     {ParallelImpl: true, InstrOverheadPerElem: 1.5, SIMDLanes: 1, MemFactor: 1.1, AffinityMatch: 0.4},
			OpCopy:          {ParallelImpl: true, InstrOverheadPerElem: 0.3, SIMDLanes: 2, MemFactor: 1.0, AffinityMatch: 0.4},
			OpCount:         {ParallelImpl: true, InstrOverheadPerElem: 0.3, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.75},
			OpMinMax:        {ParallelImpl: true, InstrOverheadPerElem: 0.3, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.75},
		},
	}
}

// GCCGNU is GCC with the libstdc++ "GNU parallel mode" (MCSTL, OpenMP).
func GCCGNU() *Backend {
	return &Backend{
		ID: "GCC-GNU", Compiler: "GCC", Runtime: "GNU",
		Strategy: StrategyStatic, Grain: exec.Static,
		ForkBase: 2e-6, ForkPerThread: 0.5e-6, TaskCost: 0.1e-6,
		SeqIPCFactor: 0.92, // Section 5.5: GNU's generated code trails GCC's plain loop
		BinMiB:       5.31,
		ops: map[Op]OpTraits{
			OpForEach:       {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 8.4, SIMDLanes: 1, MemFactor: 1.10, AffinityMatch: 0.35},
			OpFind:          {DefaultAllocDistributed: true, ParallelImpl: true, SeqThreshold: 1 << 9, InstrOverheadPerElem: 2.0, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.45},
			OpReduce:        {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 0.6, SIMDLanes: 1, MemFactor: 0.95, AffinityMatch: 0.7},
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1}, // no parallel scan in GNU mode (Section 5.4)
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 1.0, SIMDLanes: 1, MemFactor: 0.85, AffinityMatch: 0.85},
			OpTransform:     {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 4.0, SIMDLanes: 1, MemFactor: 1.05, AffinityMatch: 0.5},
			OpCopy:          {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 0.5, SIMDLanes: 2, MemFactor: 1.0, AffinityMatch: 0.5},
			OpCount:         {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 0.6, SIMDLanes: 1, MemFactor: 0.95, AffinityMatch: 0.7},
			// GNU parallel mode has no minmax_element: two passes via
			// min_element + max_element.
			OpMinMax: {ParallelImpl: true, SeqThreshold: 1 << 10, InstrOverheadPerElem: 0.6, SIMDLanes: 1, MemFactor: 1.9, AffinityMatch: 0.7},
		},
	}
}

// GCCHPX is GCC with the HPX parallel algorithms.
func GCCHPX() *Backend {
	return &Backend{
		ID: "GCC-HPX", Compiler: "GCC", Runtime: "HPX",
		Strategy: StrategyQueue, Grain: exec.Fine,
		ForkBase: 12e-6, ForkPerThread: 1.2e-6, TaskCost: 1.5e-6, QueuePop: 0.8e-6,
		SeqIPCFactor: 1.0,
		BinMiB:       61.98,
		ops: map[Op]OpTraits{
			OpForEach:       {ParallelImpl: true, InstrOverheadPerElem: 21.7, IPCFactor: 0.6, SIMDLanes: 1, MemFactor: 1.05, AffinityMatch: 0.0},
			OpFind:          {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 6.0, IPCFactor: 0.5, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.35},
			OpReduce:        {ParallelImpl: true, InstrOverheadPerElem: 15.2, IPCFactor: 1.3, SIMDLanes: 4, MemFactor: 1.0, AffinityMatch: 0.25},
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 12.0, IPCFactor: 0.3, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.2},
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: true, SeqThreshold: 1<<15 + 1, InstrOverheadPerElem: 4.0, SIMDLanes: 1, MemFactor: 1.05, AffinityMatch: 0.5},
			OpTransform:     {ParallelImpl: true, InstrOverheadPerElem: 20.0, IPCFactor: 0.6, SIMDLanes: 1, MemFactor: 1.05, AffinityMatch: 0.0},
			OpCopy:          {ParallelImpl: true, InstrOverheadPerElem: 10.0, IPCFactor: 0.8, SIMDLanes: 2, MemFactor: 1.0, AffinityMatch: 0.0},
			OpCount:         {ParallelImpl: true, InstrOverheadPerElem: 14.0, IPCFactor: 1.3, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.25},
			OpMinMax:        {ParallelImpl: true, InstrOverheadPerElem: 14.0, IPCFactor: 1.3, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.25},
		},
	}
}

// ICCTBB is the Intel oneAPI compiler with TBB.
func ICCTBB() *Backend {
	b := GCCTBB()
	b.ID, b.Compiler = "ICC-TBB", "ICC"
	b.SeqIPCFactor = 1.05
	b.BinMiB = 16.64
	// ICC's codegen vectorizes the reduction (Table 4: 26G FP256 ops)
	// and emits a slightly tighter for_each loop.
	fe := b.ops[OpForEach]
	fe.InstrOverheadPerElem = 0.4
	b.ops[OpForEach] = fe
	rd := b.ops[OpReduce]
	rd.InstrOverheadPerElem = 0.6
	rd.SIMDLanes = 4
	b.ops[OpReduce] = rd
	// ICC-TBB's reduce scales worse across NUMA nodes than GCC-TBB
	// (Fig. 6b groups it with HPX); its data distribution matches
	// first-touch less well.
	rd2 := b.ops[OpReduce]
	rd2.AffinityMatch = 0.55
	b.ops[OpReduce] = rd2
	return b
}

// NVCOMP is the NVIDIA HPC SDK compiler (nvc++) with -stdpar=multicore
// (OpenMP-based Thrust backend).
func NVCOMP() *Backend {
	return &Backend{
		ID: "NVC-OMP", Compiler: "NVC", Runtime: "OMP",
		Strategy: StrategyStatic, Grain: exec.Static,
		ForkBase: 0.8e-6, ForkPerThread: 0.15e-6, TaskCost: 0.05e-6,
		SeqIPCFactor: 0.93, // Section 5.5: NVC's scalar code trails GCC's
		BinMiB:       1.81,
		ops: map[Op]OpTraits{
			// NVC's fused loop is the fastest parallel for_each in nearly
			// every scenario (Fig. 2/3) thanks to minimal fork cost.
			OpForEach: {ParallelImpl: true, InstrOverheadPerElem: 6.9, IPCFactor: 4.5, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.6},
			// NVC's find cancels only at chunk boundaries, so all
			// threads scan their full chunks (FindCancelAtChunk).
			OpFind:          {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 1.5, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.5, FirstTouchPenalty: 1.25, FindCancelAtChunk: true},
			OpReduce:        {ParallelImpl: true, InstrOverheadPerElem: 1.25, SIMDLanes: 1, MemFactor: 0.95, AffinityMatch: 0.7},
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: false, SIMDLanes: 1, MemFactor: 1.1, AffinityMatch: 1, FirstTouchPenalty: 1.19}, // sequential fallback (Section 5.4)
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: true, InstrOverheadPerElem: 2.5, SIMDLanes: 1, MemFactor: 1.4, AffinityMatch: 0.45},
			OpTransform:     {ParallelImpl: true, InstrOverheadPerElem: 2.0, IPCFactor: 2.0, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 0.6},
			OpCopy:          {ParallelImpl: true, InstrOverheadPerElem: 0.2, SIMDLanes: 2, MemFactor: 1.0, AffinityMatch: 0.6},
			OpCount:         {ParallelImpl: true, InstrOverheadPerElem: 1.0, SIMDLanes: 1, MemFactor: 0.95, AffinityMatch: 0.7},
			OpMinMax:        {ParallelImpl: true, InstrOverheadPerElem: 1.0, SIMDLanes: 1, MemFactor: 0.95, AffinityMatch: 0.7},
		},
	}
}

// NVCCUDA is nvc++ with -stdpar=gpu: the Thrust/CUDA backend with unified
// memory.
func NVCCUDA() *Backend {
	return &Backend{
		ID: "NVC-CUDA", Compiler: "NVC", Runtime: "CUDA",
		Strategy: StrategyOffload,
		BinMiB:   7.80,
		ops: map[Op]OpTraits{
			OpForEach:       {ParallelImpl: true, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpFind:          {DefaultAllocDistributed: true, ParallelImpl: true, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpReduce:        {ParallelImpl: true, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpInclusiveScan: {DefaultAllocDistributed: true, ParallelImpl: true, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
			OpSort:          {DefaultAllocDistributed: true, ParallelImpl: true, SIMDLanes: 1, MemFactor: 1.0, AffinityMatch: 1},
		},
	}
}

// Parallel returns the five multicore backends of the study, in the
// paper's table order.
func Parallel() []*Backend {
	return []*Backend{GCCTBB(), GCCGNU(), GCCHPX(), ICCTBB(), NVCOMP()}
}

// All returns every backend including the sequential baseline and CUDA.
func All() []*Backend {
	return append(append([]*Backend{GCCSeq()}, Parallel()...), NVCCUDA())
}

// ByID returns the backend with the given ID, or nil.
func ByID(id string) *Backend {
	for _, b := range All() {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// AvailableOn reports whether the backend exists on the given machine in
// the paper's study (ICC was not installed on Mach B; Table 5/6 mark it
// N/A).
func (b *Backend) AvailableOn(machineName string) bool {
	if b.Compiler == "ICC" && machineName == "Mach B (Zen 1)" {
		return false
	}
	return true
}
