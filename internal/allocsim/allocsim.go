// Package allocsim models the two memory-allocation strategies the paper
// compares (Section 3.3 / Figure 1): the default allocator, whose pages are
// all faulted in by the setup thread and land on NUMA node 0, and
// pSTL-Bench's custom parallel allocator, which first-touches pages with
// the parallel policy so they distribute across the participating nodes.
package allocsim

import (
	"fmt"

	"pstlbench/internal/machine"
	"pstlbench/internal/memsys"
)

// Strategy selects the allocation model.
type Strategy int

const (
	// Default is the system allocator: first touch happens on the
	// (single-threaded) initialization path, so every page lands on the
	// allocating thread's node.
	Default Strategy = iota
	// FirstTouch is the custom parallel allocator: each worker touches
	// the pages of its own chunk, distributing them across nodes.
	FirstTouch
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Default:
		return "default"
	case FirstTouch:
		return "first-touch"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// defaultNode0Frac is the fraction of a default allocation that lands on
// the allocating thread's node; the rest spreads (transparent huge pages,
// reused arenas, kernel page-cache effects keep the default allocator from
// being a perfect single-node pessimum).
const defaultNode0Frac = 0.55

// Placement returns the page distribution an allocation strategy produces
// on machine m when threads workers participate.
func Placement(m *machine.Machine, threads int, s Strategy) memsys.Placement {
	switch s {
	case FirstTouch:
		return memsys.FirstTouch(m, threads)
	default:
		pl := memsys.Interleaved(m.NUMANodes)
		for n := range pl.NodeFrac {
			pl.NodeFrac[n] *= 1 - defaultNode0Frac
		}
		pl.NodeFrac[0] += defaultNode0Frac
		return pl
	}
}

// TaskTraffic returns the NUMA-node distribution of one task's memory
// traffic, given the array placement, the node of the core executing the
// task, and the backend's affinity match for the operation.
//
// Under the default allocator the traffic simply follows the pages (all on
// node 0). Under first-touch, a fraction `match` of the accesses hit the
// pages the task's own thread touched (local node), and the rest spread
// like the placement — the regime of a dynamic schedule whose chunk-to-
// thread assignment has decorrelated from the touch pattern.
func TaskTraffic(placement memsys.Placement, localNode int, match float64, s Strategy) []float64 {
	if s != FirstTouch {
		out := make([]float64, len(placement.NodeFrac))
		copy(out, placement.NodeFrac)
		return out
	}
	if match < 0 {
		match = 0
	} else if match > 1 {
		match = 1
	}
	out := make([]float64, len(placement.NodeFrac))
	for n, f := range placement.NodeFrac {
		out[n] = (1 - match) * f
	}
	out[localNode] += match
	return out
}
