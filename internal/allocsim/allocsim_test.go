package allocsim

import (
	"math"
	"testing"

	"pstlbench/internal/machine"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestStrategyString(t *testing.T) {
	if Default.String() != "default" || FirstTouch.String() != "first-touch" {
		t.Fatal("strategy names")
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Fatal("unknown strategy name")
	}
}

func TestDefaultPlacementBiasedToNode0(t *testing.T) {
	m := machine.MachB()
	pl := Placement(m, 64, Default)
	pl.Validate()
	if pl.NodeFrac[0] < 0.5 {
		t.Fatalf("default placement node0 = %v, want majority", pl.NodeFrac[0])
	}
	// The remainder spreads uniformly.
	for n := 1; n < m.NUMANodes; n++ {
		if math.Abs(pl.NodeFrac[n]-pl.NodeFrac[1]) > 1e-12 {
			t.Fatalf("non-uniform spread: %v", pl.NodeFrac)
		}
	}
}

func TestFirstTouchPlacementFollowsThreads(t *testing.T) {
	m := machine.MachB() // 8 cores per node
	pl := Placement(m, 16, FirstTouch)
	pl.Validate()
	if pl.NodeFrac[0] != 0.5 || pl.NodeFrac[1] != 0.5 {
		t.Fatalf("16 threads should cover nodes 0 and 1 equally: %v", pl.NodeFrac)
	}
	if sum(pl.NodeFrac[2:]) != 0 {
		t.Fatalf("unused nodes received pages: %v", pl.NodeFrac)
	}
}

func TestTaskTrafficDefaultFollowsPlacement(t *testing.T) {
	m := machine.MachA()
	pl := Placement(m, 32, Default)
	tr := TaskTraffic(pl, 1, 0.9, Default)
	for n := range tr {
		if tr[n] != pl.NodeFrac[n] {
			t.Fatalf("default traffic diverged from placement at node %d", n)
		}
	}
}

func TestTaskTrafficFirstTouchBlending(t *testing.T) {
	m := machine.MachA()
	pl := Placement(m, 32, FirstTouch) // 50/50 on Mach A
	// Full affinity: everything local.
	tr := TaskTraffic(pl, 1, 1.0, FirstTouch)
	if tr[1] != 1.0 || tr[0] != 0 {
		t.Fatalf("match=1 traffic = %v, want all on local node 1", tr)
	}
	// Zero affinity: traffic follows the pages.
	tr = TaskTraffic(pl, 1, 0.0, FirstTouch)
	if math.Abs(tr[0]-0.5) > 1e-12 || math.Abs(tr[1]-0.5) > 1e-12 {
		t.Fatalf("match=0 traffic = %v, want placement", tr)
	}
	// Half affinity: half local plus half of the distribution.
	tr = TaskTraffic(pl, 0, 0.5, FirstTouch)
	if math.Abs(tr[0]-0.75) > 1e-12 || math.Abs(tr[1]-0.25) > 1e-12 {
		t.Fatalf("match=0.5 traffic = %v", tr)
	}
	if math.Abs(sum(tr)-1) > 1e-9 {
		t.Fatalf("traffic fractions sum to %v", sum(tr))
	}
}

func TestTaskTrafficClampsMatch(t *testing.T) {
	m := machine.MachA()
	pl := Placement(m, 32, FirstTouch)
	for _, match := range []float64{-0.5, 1.5} {
		tr := TaskTraffic(pl, 0, match, FirstTouch)
		if math.Abs(sum(tr)-1) > 1e-9 {
			t.Fatalf("match=%v: fractions sum to %v", match, sum(tr))
		}
		for _, f := range tr {
			if f < 0 || f > 1 {
				t.Fatalf("match=%v: fraction out of range: %v", match, tr)
			}
		}
	}
}
