package cluster

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
)

// testWorker is one in-process "worker process": a real serve.Server
// behind a real HTTP listener, reachable only through the transport.
type testWorker struct {
	s  *serve.Server
	ts *httptest.Server
}

func startWorker(t *testing.T, cfg serve.Config) *testWorker {
	t.Helper()
	s := serve.New(cfg)
	w := &testWorker{s: s, ts: httptest.NewServer(s.Handler())}
	t.Cleanup(func() {
		w.ts.Close()
		s.Close()
	})
	return w
}

// kill severs the worker's listener abruptly — the in-test stand-in for
// SIGKILL: every future RPC fails, in-flight connections break.
func (w *testWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
}

func (w *testWorker) handle(pollEvery time.Duration) *RemoteShard {
	return NewRemoteShard(RemoteConfig{
		Client: ClientConfig{
			BaseURL:     w.ts.URL,
			Timeout:     time.Second,
			Retries:     2,
			BackoffBase: time.Millisecond,
		},
		PollEvery: pollEvery,
	})
}

func newClusterRouter(t *testing.T, workers []*testWorker, cfg shard.Config) *shard.Router {
	t.Helper()
	for _, w := range workers {
		cfg.Handles = append(cfg.Handles, w.handle(5*time.Millisecond))
	}
	r, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// waitCompleted waits for the router's own completion accounting to
// reach n. Get reflects the worker's live state a poll cycle before the
// router's watcher records the terminal, so Stats assertions need this.
func waitCompleted(t *testing.T, r *shard.Router, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Completed < n {
		if time.Now().After(deadline) {
			t.Fatalf("router completed=%d, want %d", r.Stats().Completed, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, r *shard.Router, ids []string) map[string]shard.JobInfo {
	t.Helper()
	out := make(map[string]shard.JobInfo, len(ids))
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			info, ok := r.Get(id)
			if ok && (info.State == "done" || info.State == "canceled") {
				out[id] = info
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck (state=%q ok=%v)", id, info.State, ok)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return out
}

// TestRemoteRouterEndToEnd: a router whose shards are only reachable over
// HTTP behaves like the in-process tier — every job completes exactly
// once with the right checksum, on the shard the ring chose.
func TestRemoteRouterEndToEnd(t *testing.T) {
	workers := []*testWorker{
		startWorker(t, serve.Config{Workers: 2, QueueCap: 128, MaxConcurrent: 2}),
		startWorker(t, serve.Config{Workers: 2, QueueCap: 128, MaxConcurrent: 2}),
	}
	r := newClusterRouter(t, workers, shard.Config{
		HeartbeatEvery: 10 * time.Millisecond,
		RebalanceEvery: -1,
	})
	var ids []string
	for i := 0; i < 24; i++ {
		j, err := r.Submit(serve.Spec{
			Kernel: "reduce", N: 8192,
			Tenant: fmt.Sprintf("tenant-%d", i%6),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID())
	}
	want := serve.ExpectedChecksum("reduce", 8192)
	for id, info := range waitTerminal(t, r, ids) {
		if info.State != "done" || info.Checksum != want {
			t.Errorf("%s: state=%s checksum=%v, want done/%v", id, info.State, info.Checksum, want)
		}
	}
	waitCompleted(t, r, 24)
	st := r.Stats()
	if st.Completed != 24 || st.HealthyShards != 2 {
		t.Fatalf("completed=%d healthy=%d, want 24 and 2", st.Completed, st.HealthyShards)
	}
	// Both workers actually served traffic (the ring spread 6 tenants).
	for i, w := range workers {
		if w.s.Stats().Accepted == 0 {
			t.Errorf("worker %d never saw a job", i)
		}
	}
}

// TestDeadWorkerFailover pins tentpole (2)+(3): a killed worker walks
// healthy -> suspect -> dead, its acknowledged backlog re-places onto the
// survivor, and every acked job still reaches exactly one terminal state
// with the right checksum.
func TestDeadWorkerFailover(t *testing.T) {
	workers := []*testWorker{
		startWorker(t, serve.Config{Workers: 1, QueueCap: 256, MaxConcurrent: 1}),
		startWorker(t, serve.Config{Workers: 1, QueueCap: 256, MaxConcurrent: 1}),
	}
	r := newClusterRouter(t, workers, shard.Config{
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      3,
		RebalanceEvery: 10 * time.Millisecond,
	})
	// A backlog of real work: sorts slow enough that the kill lands mid-
	// backlog, spread over enough tenants to hit both shards.
	var ids []string
	for i := 0; i < 40; i++ {
		j, err := r.Submit(serve.Spec{
			Kernel: "sort", N: 1 << 15,
			Tenant: fmt.Sprintf("tenant-%d", i%8),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID())
	}
	workers[0].kill()
	// The health plane must declare the shard dead on its own.
	deadline := time.Now().Add(10 * time.Second)
	for r.HealthOf(0) != shard.Dead {
		if time.Now().After(deadline) {
			t.Fatal("killed worker never declared dead")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := serve.ExpectedChecksum("sort", 1<<15)
	done := 0
	for id, info := range waitTerminal(t, r, ids) {
		if info.State != "done" {
			t.Errorf("%s: state=%s reason=%s, want done", id, info.State, info.Reason)
			continue
		}
		if info.Checksum != want {
			t.Errorf("%s: checksum %v, want %v", id, info.Checksum, want)
		}
		done++
	}
	if done != len(ids) {
		t.Fatalf("%d/%d acked jobs completed", done, len(ids))
	}
	waitCompleted(t, r, int64(len(ids)))
	st := r.Stats()
	if st.Deaths != 1 {
		t.Fatalf("deaths=%d, want 1", st.Deaths)
	}
	if st.Completed != int64(len(ids)) {
		t.Fatalf("completed=%d, want %d (exactly once)", st.Completed, len(ids))
	}
	if st.PerShard[0].Health != "dead" || st.PerShard[1].Health != "healthy" {
		t.Fatalf("health states: %s/%s", st.PerShard[0].Health, st.PerShard[1].Health)
	}
}

// TestLiveJoinRemap pins tentpole (4): adding a worker under live traffic
// moves roughly 1/(N+1) of tenants — and nothing in flight is disturbed.
func TestLiveJoinRemap(t *testing.T) {
	workers := []*testWorker{
		startWorker(t, serve.Config{Workers: 1, QueueCap: 512}),
		startWorker(t, serve.Config{Workers: 1, QueueCap: 512}),
	}
	r := newClusterRouter(t, workers, shard.Config{
		HeartbeatEvery: 10 * time.Millisecond,
		RebalanceEvery: -1,
	})
	const tenants = 2000
	before := make([]int, tenants)
	for i := range before {
		before[i] = r.HomeShard(fmt.Sprintf("tenant-%d", i))
	}
	// Traffic in flight across the join.
	var ids []string
	for i := 0; i < 30; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "scan", N: 4096, Tenant: fmt.Sprintf("tenant-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	joiner := startWorker(t, serve.Config{Workers: 1, QueueCap: 512})
	idx, err := r.AddShard(joiner.handle(5 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("joiner got index %d, want 2", idx)
	}
	moved := 0
	for i := range before {
		if r.HomeShard(fmt.Sprintf("tenant-%d", i)) != before[i] {
			moved++
		}
	}
	frac := float64(moved) / tenants
	// Ideal is 1/3; TestRingStability's tolerance band scaled here.
	if frac > 0.5 || frac < 0.15 {
		t.Fatalf("join moved %.1f%% of tenants, want ~33%%", 100*frac)
	}
	want := serve.ExpectedChecksum("scan", 4096)
	for id, info := range waitTerminal(t, r, ids) {
		if info.State != "done" || info.Checksum != want {
			t.Errorf("%s: state=%s, want done", id, info.State)
		}
	}
	// New tenants land on the joiner too.
	var joinerHit bool
	for i := 0; i < 60 && !joinerHit; i++ {
		tenant := fmt.Sprintf("fresh-%d", i)
		if r.HomeShard(tenant) == idx {
			j, err := r.Submit(serve.Spec{Kernel: "reduce", N: 2048, Tenant: tenant})
			if err != nil {
				t.Fatal(err)
			}
			waitTerminal(t, r, []string{j.ID()})
			joinerHit = joiner.s.Stats().Accepted > 0
		}
	}
	if !joinerHit {
		t.Fatal("no fresh tenant ever landed on the joined shard")
	}
}

// TestWorkerRestartLosesJobsGracefully: a worker that restarts (same URL,
// empty state) answers polls with "missing" — the router must re-place
// those jobs, not wedge them.
func TestWorkerRestartLosesJobsGracefully(t *testing.T) {
	// One worker that will "restart": we simulate by a second serve.Server
	// taking over the same handle after the first dies.
	w0 := startWorker(t, serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1})
	w1 := startWorker(t, serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1})
	r := newClusterRouter(t, []*testWorker{w0, w1}, shard.Config{
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      3,
		RebalanceEvery: 10 * time.Millisecond,
	})
	var ids []string
	for i := 0; i < 20; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "foreach", N: 1 << 14, Tenant: fmt.Sprintf("t-%d", i%5)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	w0.kill()
	want := serve.ExpectedChecksum("foreach", 1<<14)
	for id, info := range waitTerminal(t, r, ids) {
		if info.State != "done" || info.Checksum != want {
			t.Errorf("%s: state=%s reason=%s", id, info.State, info.Reason)
		}
	}
}
