// Package cluster is the transport that turns internal/shard's router
// into a small distributed system: a typed HTTP client for the worker
// surface internal/serve exposes (submit, cancel, poll, withdraw, stats,
// healthz — JSON bodies, per-request timeouts, bounded retries with
// exponential backoff and jitter), and a RemoteShard adapter that lets
// shard.Router drive a separate-process `pstld -worker` exactly like an
// in-process shard. Submits are idempotent across retries because the
// router stamps Spec.ID and the worker dedupes on it: a submit whose
// response is lost after the worker accepted returns the same job on
// retry, never a second execution.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// ClientConfig configures one worker client.
type ClientConfig struct {
	// BaseURL is the worker's base URL, e.g. "http://127.0.0.1:9001".
	BaseURL string
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Retries is how many attempts beyond the first an idempotent request
	// gets (default 3). Non-idempotent requests (withdraw) never retry.
	Retries int
	// BackoffBase is the first retry's backoff (default 25ms); each
	// further retry doubles it up to BackoffMax (default 1s), with equal
	// jitter so synchronized retry storms decorrelate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Transport, when non-nil, replaces http.DefaultTransport — the fault-
	// injection hook the retry tests use.
	Transport http.RoundTripper
	// Metrics, when non-nil, receives the transport counters; Peer labels
	// them (defaults to BaseURL).
	Metrics *obs.ClusterMetrics
	Peer    string
}

// Client is a typed HTTP client for one worker's serve surface.
type Client struct {
	base        string
	hc          *http.Client
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	retriesC    *obs.Counter
	timeoutsC   *obs.Counter
}

// NewClient builds a worker client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	peer := cfg.Peer
	if peer == "" {
		peer = cfg.BaseURL
	}
	return &Client{
		base:        cfg.BaseURL,
		hc:          &http.Client{Transport: tr},
		timeout:     cfg.Timeout,
		retries:     cfg.Retries,
		backoffBase: cfg.BackoffBase,
		backoffMax:  cfg.BackoffMax,
		retriesC:    cfg.Metrics.Retries(peer),
		timeoutsC:   cfg.Metrics.Timeouts(peer),
	}
}

// do runs one exchange with bounded retries: transport errors, timeouts,
// and 5xx responses retry with exponential backoff plus jitter when
// retryable; any other status returns to the caller for decoding. Only
// requests that are idempotent on the worker may pass retryable=true —
// submits qualify because the worker dedupes on Spec.ID.
func (c *Client) do(method, path string, in any, retryable bool) (int, []byte, error) {
	var reqBody []byte
	if in != nil {
		var err error
		if reqBody, err = json.Marshal(in); err != nil {
			return 0, nil, err
		}
	}
	attempts := 1
	if retryable {
		attempts += c.retries
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.retriesC.Inc()
			time.Sleep(c.backoff(a))
		}
		status, body, err := c.once(method, path, reqBody)
		if err != nil {
			if isTimeout(err) {
				c.timeoutsC.Inc()
			}
			lastErr = err
			continue
		}
		if status >= 500 {
			lastErr = fmt.Errorf("cluster: %s %s: status %d: %s", method, path, status, errMsg(body))
			continue
		}
		return status, body, nil
	}
	return 0, nil, fmt.Errorf("cluster: %s %s failed after %d attempt(s): %w", method, path, attempts, lastErr)
}

func (c *Client) once(method, path string, reqBody []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(reqBody))
	if err != nil {
		return 0, nil, err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// backoff returns the a'th retry's delay: exponential with equal jitter
// (half fixed, half uniform), capped at BackoffMax.
func (c *Client) backoff(a int) time.Duration {
	d := c.backoffBase << (a - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// errMsg extracts the serve error envelope's message, falling back to the
// raw body.
func errMsg(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(body)
}

// Submit places a job on the worker. The request is retried on transport
// failure — safe if and only if spec.ID is set (the router always sets
// it); an unset ID submits exactly once. A relative Deadline is converted
// to an absolute deadline_unix_ms here, at the edge closest to the
// client's clock, so transport latency can only shrink the budget.
func (c *Client) Submit(spec serve.Spec) (serve.JobInfo, error) {
	req := serve.SubmitRequest{
		ID:     spec.ID,
		Kernel: spec.Kernel,
		N:      spec.N,
		Tenant: spec.Tenant,
	}
	switch {
	case !spec.DeadlineAt.IsZero():
		req.DeadlineUnixMS = spec.DeadlineAt.UnixMilli()
	case spec.Deadline > 0:
		req.DeadlineUnixMS = time.Now().Add(spec.Deadline).UnixMilli()
	}
	status, body, err := c.do("POST", "/jobs", req, spec.ID != "")
	if err != nil {
		return serve.JobInfo{}, err
	}
	switch status {
	case http.StatusAccepted, http.StatusOK:
		var info serve.JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			return serve.JobInfo{}, fmt.Errorf("cluster: bad submit response: %w", err)
		}
		return info, nil
	case http.StatusTooManyRequests:
		var e struct {
			Error        string `json:"error"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(body, &e)
		return serve.JobInfo{}, &serve.SaturatedError{RetryAfter: time.Duration(e.RetryAfterMS) * time.Millisecond}
	case http.StatusServiceUnavailable:
		return serve.JobInfo{}, serve.ErrClosed
	default:
		return serve.JobInfo{}, fmt.Errorf("cluster: submit rejected: status %d: %s", status, errMsg(body))
	}
}

// Get fetches one job's status; found=false means the worker does not
// know the ID.
func (c *Client) Get(id string) (serve.JobInfo, bool, error) {
	status, body, err := c.do("GET", "/jobs/"+id, nil, true)
	if err != nil {
		return serve.JobInfo{}, false, err
	}
	if status == http.StatusNotFound {
		return serve.JobInfo{}, false, nil
	}
	var info serve.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return serve.JobInfo{}, false, err
	}
	return info, true, nil
}

// Cancel cancels a job on the worker.
func (c *Client) Cancel(id string) (serve.JobInfo, error) {
	status, body, err := c.do("DELETE", "/jobs/"+id, nil, true)
	if err != nil {
		return serve.JobInfo{}, err
	}
	if status == http.StatusNotFound {
		return serve.JobInfo{}, fmt.Errorf("cluster: no job %q on worker", id)
	}
	var info serve.JobInfo
	err = json.Unmarshal(body, &info)
	return info, err
}

// Poll batch-queries job statuses: one RPC regardless of how many jobs
// are in flight. Missing lists IDs the worker no longer knows.
func (c *Client) Poll(ids []string) (jobs []serve.JobInfo, missing []string, err error) {
	status, body, err := c.do("POST", "/jobs/poll", serve.PollRequest{IDs: ids}, true)
	if err != nil {
		return nil, nil, err
	}
	if status != http.StatusOK {
		return nil, nil, fmt.Errorf("cluster: poll: status %d: %s", status, errMsg(body))
	}
	var resp serve.PollResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, nil, err
	}
	return resp.Jobs, resp.Missing, nil
}

// Withdraw removes up to max queued jobs for migration. Never retried: a
// withdraw whose response is lost has already dequeued jobs on the
// worker, and a retry would withdraw a second batch. The lost jobs
// surface as poll misses and re-place through the router's lost path.
func (c *Client) Withdraw(max int) ([]serve.WithdrawnJob, error) {
	status, body, err := c.do("POST", "/withdraw", serve.WithdrawRequest{Max: max}, false)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: withdraw: status %d: %s", status, errMsg(body))
	}
	var resp serve.WithdrawResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Healthz probes the worker: a single attempt on purpose — the health
// plane's failure counting is the retry policy.
func (c *Client) Healthz() (serve.HealthInfo, error) {
	status, body, err := c.do("GET", "/healthz", nil, false)
	if err != nil {
		return serve.HealthInfo{}, err
	}
	var h serve.HealthInfo
	if err := json.Unmarshal(body, &h); err != nil {
		return serve.HealthInfo{}, err
	}
	if status != http.StatusOK || !h.OK {
		return h, fmt.Errorf("cluster: worker unhealthy (status %d)", status)
	}
	return h, nil
}

// Stats fetches the worker's stats snapshot: a single attempt, so a stats
// scrape against a dead worker fails fast and the caller serves its
// cached copy.
func (c *Client) Stats() (serve.Stats, error) {
	status, body, err := c.do("GET", "/stats", nil, false)
	if err != nil {
		return serve.Stats{}, err
	}
	if status != http.StatusOK {
		return serve.Stats{}, fmt.Errorf("cluster: stats: status %d: %s", status, errMsg(body))
	}
	var st serve.Stats
	err = json.Unmarshal(body, &st)
	return st, err
}

// Join registers a worker with a running router: POST routerURL
// /cluster/join with the worker's advertised URL. Retried — the router
// dedupes nothing here, but AddShard of the same worker twice is the
// operator's error, and the common failure (router still starting) wants
// the retry.
func Join(routerURL, workerURL string, timeout time.Duration) error {
	c := NewClient(ClientConfig{BaseURL: routerURL, Timeout: timeout})
	status, body, err := c.do("POST", "/cluster/join", shardJoinRequest{URL: workerURL}, true)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: join rejected: status %d: %s", status, errMsg(body))
	}
	return nil
}

// shardJoinRequest mirrors shard.JoinRequest without importing the
// package into every client user.
type shardJoinRequest struct {
	URL string `json:"url"`
}
