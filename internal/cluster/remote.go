package cluster

import (
	"sync"
	"time"

	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
)

// RemoteConfig configures a RemoteShard.
type RemoteConfig struct {
	Client ClientConfig
	// PollEvery paces the batched status poll for in-flight jobs (default
	// 20ms). One POST /jobs/poll per cycle carries every in-flight ID.
	PollEvery time.Duration
}

// RemoteShard adapts one `pstld -worker` process to shard.ShardHandle:
// the router submits, cancels, withdraws, and heartbeats through it
// exactly as it would an in-process shard. Completion delivery is a poll
// loop rather than a push channel — the worker stays a plain HTTP server
// with no connection back into the router, so worker death is just a
// failed poll, not a broken callback path.
//
// A job the worker no longer knows (restart, eviction) finishes here as
// canceled with reason "lost"; the router's watcher re-places lost jobs
// on a surviving shard, which is how exactly-once completion survives
// worker death: only the router delivers terminal states, and it delivers
// exactly one per job.
type RemoteShard struct {
	c         *Client
	pollEvery time.Duration

	mu       sync.Mutex
	inflight map[string]*remoteJob
	load     float64
	queued   int
	qcap     int
	last     serve.Stats
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRemoteShard dials nothing: it builds the client and starts the poll
// loop. The first heartbeat or submit is the first contact.
func NewRemoteShard(cfg RemoteConfig) *RemoteShard {
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 20 * time.Millisecond
	}
	r := &RemoteShard{
		c:         NewClient(cfg.Client),
		pollEvery: cfg.PollEvery,
		inflight:  make(map[string]*remoteJob),
		stop:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.pollLoop()
	return r
}

// remoteJob is the handle for one job on the worker.
type remoteJob struct {
	id   string
	done chan struct{}

	mu       sync.Mutex
	info     serve.JobInfo
	terminal bool
}

func (j *remoteJob) ID() string            { return j.id }
func (j *remoteJob) Done() <-chan struct{} { return j.done }

func (j *remoteJob) snapshot() serve.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

func (j *remoteJob) setInfo(info serve.JobInfo) {
	j.mu.Lock()
	if !j.terminal {
		j.info = info
	}
	j.mu.Unlock()
}

// finish records the terminal snapshot and closes done, once.
func (j *remoteJob) finish(info serve.JobInfo) {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return
	}
	j.terminal = true
	j.info = info
	j.mu.Unlock()
	close(j.done)
}

func lostInfo(id string) serve.JobInfo {
	return serve.JobInfo{ID: id, State: "canceled", Reason: "lost"}
}

func terminalState(state string) bool {
	return state == "done" || state == "canceled"
}

// Submit places the job on the worker. The client retries transport
// failures; the worker dedupes on spec.ID, so a retried accept returns
// the same job. If the ID is already in flight here (a router resubmit
// racing a retry), the existing handle is returned so the router's
// byShard map stays one-to-one.
func (r *RemoteShard) Submit(spec serve.Spec) (shard.JobHandle, error) {
	info, err := r.c.Submit(spec)
	if err != nil {
		return nil, err
	}
	id := spec.ID
	if id == "" {
		id = info.ID
	}
	r.mu.Lock()
	if ex := r.inflight[id]; ex != nil {
		r.mu.Unlock()
		return ex, nil
	}
	j := &remoteJob{id: id, done: make(chan struct{}), info: info}
	if r.closed {
		r.mu.Unlock()
		j.finish(lostInfo(id))
		return j, nil
	}
	if terminalState(info.State) {
		// Deduped resubmit of an already-finished job: terminal on arrival.
		r.mu.Unlock()
		j.finish(info)
		return j, nil
	}
	r.inflight[id] = j
	r.mu.Unlock()
	return j, nil
}

func (r *RemoteShard) pollLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.pollEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.pollOnce()
		}
	}
}

// pollOnce drives every in-flight job's state forward with one RPC. A
// failed poll changes nothing — the health plane owns deciding when the
// worker is dead; a missing ID means the worker lost the job (restart),
// which finishes the handle as lost so the router re-places it.
func (r *RemoteShard) pollOnce() {
	r.mu.Lock()
	if len(r.inflight) == 0 {
		r.mu.Unlock()
		return
	}
	ids := make([]string, 0, len(r.inflight))
	for id := range r.inflight {
		ids = append(ids, id)
	}
	r.mu.Unlock()

	jobs, missing, err := r.c.Poll(ids)
	if err != nil {
		return
	}
	var finished []*remoteJob
	var infos []serve.JobInfo
	r.mu.Lock()
	for _, info := range jobs {
		j := r.inflight[info.ID]
		if j == nil {
			continue
		}
		if terminalState(info.State) {
			delete(r.inflight, info.ID)
			finished = append(finished, j)
			infos = append(infos, info)
		} else {
			j.setInfo(info)
		}
	}
	for _, id := range missing {
		if j := r.inflight[id]; j != nil {
			delete(r.inflight, id)
			finished = append(finished, j)
			infos = append(infos, lostInfo(id))
		}
	}
	r.mu.Unlock()
	// finish outside r.mu: closing done wakes router watchers, which take
	// the router lock; keeping our lock out of that path avoids ever
	// forming a lock cycle with callers that hold the router lock.
	for i, j := range finished {
		j.finish(infos[i])
	}
}

// Info returns the job's snapshot: the terminal one for finished handles,
// a live fetch for in-flight ones (status queries want current state),
// falling back to the last poll's snapshot when the worker is unreachable.
func (r *RemoteShard) Info(h shard.JobHandle) serve.JobInfo {
	j := h.(*remoteJob)
	j.mu.Lock()
	terminal, cached := j.terminal, j.info
	j.mu.Unlock()
	if terminal {
		return cached
	}
	if info, found, err := r.c.Get(j.id); err == nil && found {
		j.setInfo(info)
		return info
	}
	return cached
}

// Cancel cancels the job on the worker; the terminal state flows back
// through the poll loop like any other completion.
func (r *RemoteShard) Cancel(id string) (serve.JobInfo, error) {
	return r.c.Cancel(id)
}

// Withdraw pulls queued jobs off the worker for migration and finishes
// their local handles as migrated; the router resubmits from its own
// specs. A transport failure withdraws nothing — if the worker actually
// dequeued, those jobs surface as poll misses and re-place via the lost
// path, so the no-retry policy loses no jobs.
func (r *RemoteShard) Withdraw(max int) []string {
	jobs, err := r.c.Withdraw(max)
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(jobs))
	var finished []*remoteJob
	r.mu.Lock()
	for _, wj := range jobs {
		ids = append(ids, wj.ID)
		if j := r.inflight[wj.ID]; j != nil {
			delete(r.inflight, wj.ID)
			finished = append(finished, j)
		}
	}
	r.mu.Unlock()
	for _, j := range finished {
		j.finish(serve.JobInfo{ID: j.id, State: "canceled", Reason: "migrated"})
	}
	return ids
}

// Load, Queued, and QueueCap serve the last heartbeat's snapshot — the
// placement signals lag by at most one heartbeat instead of costing an
// RPC per submit.
func (r *RemoteShard) Load() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.load
}

func (r *RemoteShard) Queued() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued
}

func (r *RemoteShard) QueueCap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.qcap
}

// Stats fetches the worker's stats, caching the last good snapshot so a
// dead worker's slice of the router stats shows its final numbers instead
// of zeros.
func (r *RemoteShard) Stats() serve.Stats {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if !closed {
		if st, err := r.c.Stats(); err == nil {
			r.mu.Lock()
			r.last = st
			r.mu.Unlock()
			return st
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Ping is the heartbeat: one GET /healthz, refreshing the cached load
// signals on success.
func (r *RemoteShard) Ping() error {
	h, err := r.c.Healthz()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.load, r.queued, r.qcap = h.Load, h.Queued, h.QueueCap
	r.mu.Unlock()
	return nil
}

// Close stops the poll loop and finishes every in-flight handle as lost.
// The router closes a handle only after re-placing its jobs (dead-shard
// recovery), so the lost completions only release stale watchers.
func (r *RemoteShard) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	orphans := r.inflight
	r.inflight = make(map[string]*remoteJob)
	r.mu.Unlock()
	r.wg.Wait()
	for id, j := range orphans {
		j.finish(lostInfo(id))
	}
}
