package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pstlbench/internal/serve"
)

// timeoutError satisfies net.Error with Timeout() == true.
type timeoutError struct{}

func (timeoutError) Error() string   { return "injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// dropResponse forwards requests to the real transport but, for matching
// requests, discards the worker's response and reports a timeout — the
// "accepted but the ack was lost" fault the retry path must survive.
type dropResponse struct {
	next    http.RoundTripper
	match   func(*http.Request) bool
	dropped atomic.Int64
	limit   int64 // drop at most this many matches
}

func (d *dropResponse) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.next.RoundTrip(req)
	if err != nil || !d.match(req) {
		return resp, err
	}
	if n := d.dropped.Add(1); n > d.limit {
		d.dropped.Add(-1)
		return resp, nil
	}
	// The worker processed the request; the client never hears about it.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil, timeoutError{}
}

func newWorker(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2, QueueCap: 256, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestRetriedSubmitDeduplicates pins the transport retry semantics: a
// submit whose response times out after the worker accepted must return
// the SAME job on retry — one accept, one execution, no double-run.
func TestRetriedSubmitDeduplicates(t *testing.T) {
	s, ts := newWorker(t)
	fault := &dropResponse{
		next:  http.DefaultTransport,
		match: func(r *http.Request) bool { return r.Method == "POST" && r.URL.Path == "/jobs" },
		limit: 1,
	}
	c := NewClient(ClientConfig{
		BaseURL:     ts.URL,
		Transport:   fault,
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
	})
	info, err := c.Submit(serve.Spec{ID: "job-42", Kernel: "reduce", N: 4096})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if info.ID != "job-42" {
		t.Fatalf("submitted job ID %q, want job-42", info.ID)
	}
	if got := fault.dropped.Load(); got != 1 {
		t.Fatalf("fault injected %d times, want 1", got)
	}
	waitDone(t, c, "job-42")
	st := s.Stats()
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("worker accepted=%d completed=%d, want 1/1 (retry double-ran the job)", st.Accepted, st.Completed)
	}
	if want := serve.ExpectedChecksum("reduce", 4096); mustGet(t, c, "job-42").Checksum != want {
		t.Fatalf("checksum mismatch")
	}
}

// TestRetryGivesUpAfterBudget: a transport that always fails must surface
// an error after 1+Retries attempts, not hang.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	_, ts := newWorker(t)
	fault := &dropResponse{
		next:  http.DefaultTransport,
		match: func(r *http.Request) bool { return true },
		limit: 1 << 30,
	}
	c := NewClient(ClientConfig{
		BaseURL:     ts.URL,
		Transport:   fault,
		Retries:     2,
		BackoffBase: time.Millisecond,
	})
	_, err := c.Submit(serve.Spec{ID: "job-1", Kernel: "reduce", N: 64})
	if err == nil {
		t.Fatal("submit succeeded through an always-failing transport")
	}
	if got := fault.dropped.Load(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if !strings.Contains(err.Error(), "injected timeout") {
		t.Fatalf("error should carry the last transport failure: %v", err)
	}
}

// TestSubmitWithoutIDNeverRetries: with no dedup key, a retry could
// double-run; the client must make exactly one attempt.
func TestSubmitWithoutIDNeverRetries(t *testing.T) {
	_, ts := newWorker(t)
	fault := &dropResponse{
		next:  http.DefaultTransport,
		match: func(r *http.Request) bool { return r.Method == "POST" && r.URL.Path == "/jobs" },
		limit: 1 << 30,
	}
	c := NewClient(ClientConfig{BaseURL: ts.URL, Transport: fault, BackoffBase: time.Millisecond})
	if _, err := c.Submit(serve.Spec{Kernel: "reduce", N: 64}); err == nil {
		t.Fatal("submit should fail when its only attempt times out")
	}
	if got := fault.dropped.Load(); got != 1 {
		t.Fatalf("ID-less submit made %d attempts, want exactly 1", got)
	}
}

// TestSaturationNotRetried: 429 is a worker decision, not a transport
// fault — it must surface immediately as a SaturatedError.
func TestSaturationNotRetried(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, QueueCap: 1, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	c := NewClient(ClientConfig{BaseURL: ts.URL, BackoffBase: time.Millisecond})
	// Fill the only queue slot (plus the running slot) with slow sorts.
	var id int
	for {
		id++
		_, err := c.Submit(serve.Spec{ID: fmt.Sprintf("job-%d", id), Kernel: "sort", N: 1 << 20})
		if err != nil {
			var sat *serve.SaturatedError
			if !asSaturated(err, &sat) {
				t.Fatalf("want SaturatedError, got %v", err)
			}
			if sat.RetryAfter <= 0 {
				t.Fatalf("saturated error carries no Retry-After hint")
			}
			return
		}
		if id > 64 {
			t.Fatal("queue never saturated")
		}
	}
}

// TestDeadlineTravelsAbsolute: the wire deadline is an absolute
// timestamp, so a deadline already spent by transport delay expires the
// job instead of granting it a fresh budget.
func TestDeadlineTravelsAbsolute(t *testing.T) {
	_, ts := newWorker(t)
	c := NewClient(ClientConfig{BaseURL: ts.URL})
	spec := serve.Spec{
		ID: "job-7", Kernel: "sort", N: 1 << 22,
		DeadlineAt: time.Now().Add(-time.Second), // spent before arrival
	}
	if _, err := c.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	info := waitDone(t, c, "job-7")
	if info.State != "canceled" || info.Reason != "deadline" {
		t.Fatalf("spent deadline gave state=%s reason=%s, want canceled/deadline", info.State, info.Reason)
	}
}

func asSaturated(err error, sat **serve.SaturatedError) bool {
	s, ok := err.(*serve.SaturatedError)
	if ok {
		*sat = s
	}
	return ok
}

func mustGet(t *testing.T, c *Client, id string) serve.JobInfo {
	t.Helper()
	info, found, err := c.Get(id)
	if err != nil || !found {
		t.Fatalf("get %s: found=%v err=%v", id, found, err)
	}
	return info
}

func waitDone(t *testing.T, c *Client, id string) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, found, err := c.Get(id)
		if err == nil && found && (info.State == "done" || info.State == "canceled") {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return serve.JobInfo{}
}
