package serve

import (
	"fmt"
	"testing"
)

// TestFairQueueLongRunNoLaneLeak simulates the streaming steady state:
// transient tenants (one per short-lived stream or loadgen client) arrive
// forever, push a handful of jobs, and vanish. Across many virtual hours
// of service the lanes map must stay bounded — before lane pruning it
// grew one entry per tenant ever seen — and the virtual clock must stay
// monotone.
func TestFairQueueLongRunNoLaneLeak(t *testing.T) {
	q := NewQueue(WFQ, 1024)
	lastVirtual := -1.0
	const generations = 20000
	for g := 0; g < generations; g++ {
		// Each generation is a fresh tenant that queues 3 jobs...
		tenant := fmt.Sprintf("ephemeral-%d", g)
		for i := 0; i < 3; i++ {
			if !q.Push(Item{Tenant: tenant, Cost: 10, Value: g*10 + i}) {
				t.Fatalf("gen %d: push rejected with %d queued", g, q.Len())
			}
		}
		// ...that are fully served before the next tenant appears.
		for q.Len() > 0 {
			if _, ok := q.Pop(); !ok {
				t.Fatal("pop failed with items queued")
			}
		}
		if q.virtual < lastVirtual {
			t.Fatalf("gen %d: virtual clock moved backwards %v -> %v", g, lastVirtual, q.virtual)
		}
		lastVirtual = q.virtual
	}
	// 20k tenants went through; an unpruned map would hold all of them.
	if len(q.lanes) > 64 {
		t.Fatalf("lanes map leaked: %d entries after %d transient tenants", len(q.lanes), generations)
	}
	if len(q.counts) != 0 {
		t.Fatalf("counts map leaked: %d entries on an empty queue", len(q.counts))
	}
}

// TestFairQueueLongRunClockTracksService pins the no-drift property: with
// a single persistent weight-1 tenant at cost 1, the virtual clock after N
// served jobs is exactly N — each job's start tag is the previous finish,
// and the clock follows start tags. Any accumulation error or pruning bug
// that rewound a live lane would break the equality.
func TestFairQueueLongRunClockTracksService(t *testing.T) {
	q := NewQueue(WFQ, 8)
	const n = 200000
	for i := 0; i < n; i++ {
		if !q.Push(Item{Tenant: "steady", Cost: 1, Value: i}) {
			t.Fatalf("push %d rejected", i)
		}
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	// Start tags: job i starts at finish of job i-1 = i, so after n jobs
	// the clock sits at the last start tag, n-1.
	if q.virtual != float64(n-1) {
		t.Fatalf("virtual clock %v after %d unit jobs, want %d", q.virtual, n, n-1)
	}
}

// TestFairQueueLaneStatePreservedAcrossPrune checks pruning is invisible
// to scheduling: a tenant whose lane still carries banked debt (finish
// ahead of the clock) is never pruned, so its next job cannot jump the
// line; and a pruned idle tenant rejoins exactly at the virtual clock, the
// same start tag an unpruned stale lane would produce.
func TestFairQueueLaneStatePreservedAcrossPrune(t *testing.T) {
	q := NewQueue(WFQ, 4096)
	// Heavy tenant banks debt: many queued jobs, none served yet.
	for i := 0; i < 10; i++ {
		q.Push(Item{Tenant: "heavy", Cost: 100, Value: 1000 + i})
	}
	heavyFinish := q.lanes["heavy"]
	// Churn enough one-shot tenants to trigger the amortized sweep many
	// times over.
	for g := 0; g < 1000; g++ {
		q.Push(Item{Tenant: fmt.Sprintf("churn-%d", g), Cost: 1, Value: g})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	if got := q.lanes["heavy"]; got != heavyFinish {
		t.Fatalf("live lane perturbed by pruning: finish %v, want %v", got, heavyFinish)
	}
	// After service the clock passed every churn lane; they must be gone.
	churned := 0
	for tenant := range q.lanes {
		if tenant != "heavy" {
			churned++
		}
	}
	if churned > 32 {
		t.Fatalf("%d churn lanes survived pruning", churned)
	}
}
