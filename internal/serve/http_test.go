package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req SubmitRequest) (*http.Response, JobInfo) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return resp, info
}

func TestHTTPSubmitStatusLifecycle(t *testing.T) {
	srv, ts := httpServer(t, Config{})
	resp, info := postJob(t, ts, SubmitRequest{Kernel: "reduce", N: 1 << 16, Tenant: "web"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if info.ID == "" || info.Tenant != "web" {
		t.Fatalf("submit info %+v", info)
	}
	// Poll status until done.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobInfo
		json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.State == "done" {
			if want := ExpectedChecksum("reduce", 1<<16); got.Checksum != want {
				t.Fatalf("checksum %v, want %v", got.Checksum, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	_ = srv
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := httpServer(t, Config{})
	resp, _ := postJob(t, ts, SubmitRequest{Kernel: "nope", N: 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel status %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d, want 400", r.StatusCode)
	}
	g, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", g.StatusCode)
	}
}

func TestHTTPSaturationCarriesRetryAfter(t *testing.T) {
	_, ts := httpServer(t, Config{QueueCap: 1, MaxConcurrent: 1})
	// Keep submitting until the slot plus the one-deep queue are full; the
	// server drains concurrently, so saturation shows up within a few
	// submissions rather than at a fixed count.
	var resp *http.Response
	for i := 0; i < 50; i++ {
		body, _ := json.Marshal(SubmitRequest{Kernel: "sort", N: 1 << 21})
		r, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusTooManyRequests {
			resp = r
			break
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, r.StatusCode)
		}
	}
	if resp == nil {
		t.Fatal("never saturated after 50 submissions of a 1-deep queue")
	}
	defer resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", eb.RetryAfterMS)
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, ts := httpServer(t, Config{MaxConcurrent: 1})
	// A long blocker plus a queued victim to cancel.
	postJob(t, ts, SubmitRequest{Kernel: "sort", N: 1 << 21})
	_, victim := postJob(t, ts, SubmitRequest{Kernel: "reduce", N: 1 << 20})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	// If the blocker finished first the victim may have been running (or
	// even done) when the DELETE landed; a still-queued victim reports
	// canceled immediately, a running one once the token is observed.
	srv.mu.Lock()
	j := srv.jobs[victim.ID]
	srv.mu.Unlock()
	waitJob(t, j)
	info := srv.Info(j)
	if info.State != "canceled" && info.State != "done" {
		t.Fatalf("cancel state %s, want canceled (or done on a raced finish)", info.State)
	}
	if info.State == "done" {
		t.Logf("victim outran the cancel; covered deterministically in TestCancelQueuedJob")
	}
}

func TestHTTPStatsShape(t *testing.T) {
	_, ts := httpServer(t, Config{Discipline: WFQ})
	resp, _ := postJob(t, ts, SubmitRequest{Kernel: "reduce", N: 1 << 14, Tenant: "a"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	time.Sleep(50 * time.Millisecond)
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if st.Discipline != "wfq" || st.Workers != 4 || st.Accepted != 1 {
		t.Fatalf("stats %+v", st)
	}
}
