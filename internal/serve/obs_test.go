package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/trace"
)

// TestStatsTraceLoss overflows a deliberately tiny trace ring and checks
// the loss is visible in Stats — evicted events were previously invisible
// to the operator, which is exactly how a truncated trace gets mistaken
// for a quiet server.
func TestStatsTraceLoss(t *testing.T) {
	tr := trace.New(1, 4) // one track, four events: overflows immediately
	s := newTestServer(t, Config{Tracer: tr, MaxConcurrent: 1})
	for i := 0; i < 12; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "t"})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
	}
	st := s.Stats()
	if st.TraceEvents < 12 {
		t.Fatalf("trace events = %d, want >= 12", st.TraceEvents)
	}
	if st.TraceLost == 0 {
		t.Fatal("trace lost = 0, want evictions after overflowing a 4-event ring")
	}
	if st.TraceOccupancy <= 0 || st.TraceOccupancy > 1 {
		t.Fatalf("trace occupancy = %v, want (0,1]", st.TraceOccupancy)
	}
	if got := tr.Surviving(); got > 4 {
		t.Fatalf("surviving = %d, want <= ring capacity 4", got)
	}
}

// TestWindowedQuantilesLoadStep drives the end-to-end satellite guarantee
// through the server: a latency step (fast jobs, then jobs stuck behind a
// blocker) moves the windowed p99 in Stats within two windows, and ages
// out once the horizon passes — while the cumulative p99 still remembers.
func TestWindowedQuantilesLoadStep(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Now().UnixNano())
	cfg := Config{
		MaxConcurrent: 1,
		WindowWidth:   time.Second,
		WindowCount:   4,
		windowNow:     clock.Load,
	}
	s := newTestServer(t, cfg)

	for i := 0; i < 20; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
	}
	before := tenantOf(t, s, "acme")
	if before.WindowJobs != 20 {
		t.Fatalf("window jobs = %d, want 20", before.WindowJobs)
	}

	// The step, one window later: a heavy blocker occupies the single run
	// slot, so the fast jobs behind it inherit its runtime as queue wait.
	clock.Add(int64(time.Second))
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 21, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	var victims []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, j)
	}
	waitJob(t, blocker)
	for _, j := range victims {
		waitJob(t, j)
	}
	clock.Add(int64(time.Second)) // second window boundary after the step
	after := tenantOf(t, s, "acme")
	if after.WindowP99Seconds <= before.WindowP99Seconds*2 {
		t.Fatalf("windowed p99 %v -> %v: step not visible within two windows",
			before.WindowP99Seconds, after.WindowP99Seconds)
	}

	// Past the horizon the windowed view forgets; the cumulative view must
	// not — that contrast is the whole reason both exist.
	clock.Add(int64(cfg.WindowCount+1) * int64(time.Second))
	gone := tenantOf(t, s, "acme")
	if gone.WindowJobs != 0 {
		t.Fatalf("window jobs past horizon = %d, want 0", gone.WindowJobs)
	}
	if gone.P99Seconds <= 0 {
		t.Fatal("cumulative p99 vanished with the window")
	}
	if gone.WindowP99Seconds != 0 {
		t.Fatalf("windowed p99 past horizon = %v, want 0", gone.WindowP99Seconds)
	}
}

func tenantOf(t *testing.T, s *Server, name string) TenantStats {
	t.Helper()
	for _, ts := range s.Stats().Tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("tenant %s missing from stats", name)
	return TenantStats{}
}

// TestSLOBurnRateInStats: with an objective no job can meet, the burn rate
// must exceed the budget-exhausting threshold.
func TestSLOBurnRateInStats(t *testing.T) {
	s := newTestServer(t, Config{SLOObjective: time.Nanosecond, SLOTarget: 0.9})
	for i := 0; i < 5; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 12, Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
	}
	ts := tenantOf(t, s, "acme")
	if ts.SLOSeconds == 0 {
		t.Fatal("SLO objective missing from tenant stats")
	}
	// Every job violates a 1ns objective: bad fraction 1.0 over budget 0.1.
	if ts.BurnRate < 5 {
		t.Fatalf("burn rate = %v, want ~10 with every job violating", ts.BurnRate)
	}
}

// TestJobSpanLifecycle checks the span a completed job leaves behind:
// ordered phase stamps through the whole path, including the first-chunk
// stamp CASed in by the pool dispatch.
func TestJobSpanLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Spans: obs.NewSpanLog(16)})
	j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 15, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	spans := s.SpanLog().Spans()
	if len(spans) != 1 {
		t.Fatalf("span log holds %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.ID != j.ID() || sp.Tenant != "acme" || sp.Kernel != "sort" {
		t.Fatalf("span identity = %s %s/%s", sp.ID, sp.Tenant, sp.Kernel)
	}
	order := []obs.Phase{obs.PhaseAdmitted, obs.PhaseEnqueued, obs.PhaseDequeued,
		obs.PhaseStarted, obs.PhaseFirstChunk, obs.PhaseCompleted}
	last := int64(0)
	for _, p := range order {
		ns := sp.At(p)
		if ns == 0 {
			t.Fatalf("phase %s never stamped", p)
		}
		if ns < last {
			t.Fatalf("phase %s stamped before its predecessor", p)
		}
		last = ns
	}
	if sp.TotalSeconds() <= 0 {
		t.Fatal("total seconds not positive")
	}
}

// TestCanceledSpanCarriesCancelPhase: a job canceled while queued retires
// with the canceled phase and no started stamp.
func TestCanceledSpanCarriesCancelPhase(t *testing.T) {
	s := newTestServer(t, Config{Spans: obs.NewSpanLog(16), MaxConcurrent: 1})
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 21, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, queued)
	waitJob(t, blocker)

	var sp *obs.JobSpan
	for _, c := range s.SpanLog().Spans() {
		if c.ID == queued.ID() {
			sp = c
		}
	}
	if sp == nil {
		t.Fatal("canceled job left no span")
	}
	if sp.At(obs.PhaseCanceled) == 0 {
		t.Fatal("canceled span missing the canceled phase")
	}
	if _, ok := sp.Phases()["canceled"]; !ok {
		t.Fatal("canceled phase missing from the serialized phase map")
	}
	if sp.At(obs.PhaseStarted) != 0 {
		t.Fatal("queued-then-canceled job claims it started")
	}
	if sp.QueueSeconds() <= 0 {
		t.Fatal("canceled-in-queue span shows no queue wait")
	}
}

// TestChromeExportNestsJobsOverChunks is the end-to-end export check: real
// jobs through a real server produce a Chrome trace where the jobs track
// sits after the tracer's tracks and each job interval contains scheduler
// events from the same timeline — and a canceled job rides along with its
// cancel phase in the args.
func TestChromeExportNestsJobsOverChunks(t *testing.T) {
	tr := trace.New(3, 4096)
	s := newTestServer(t, Config{Tracer: tr, Workers: 2, Spans: obs.NewSpanLog(64), MaxConcurrent: 1})
	j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 16, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(victim.ID())
	waitJob(t, j)
	waitJob(t, victim)

	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, tr, s.SpanLog()); err != nil {
		t.Fatal(err)
	}
	ct, err := trace.ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	tracks, labels := ct.Tracks()
	jobsTid := tr.Tracks()
	if len(labels) <= jobsTid || labels[jobsTid] != "jobs" {
		t.Fatalf("labels = %v, want a jobs track at tid %d (after the tracer's)", labels, jobsTid)
	}
	if len(tracks[jobsTid]) == 0 {
		t.Fatal("jobs track is empty")
	}

	// Parent/child: the completed job's span must contain at least one
	// scheduler event on a lower track within its [start, end].
	var jobStart, jobEnd float64
	foundJob, foundCanceled := false, false
	for _, e := range ct.TraceEvents {
		if e.Tid != jobsTid || e.Ph != "X" {
			continue
		}
		switch e.Args["terminal"] {
		case "completed":
			jobStart, jobEnd = e.Ts, e.Ts+e.Dur
			foundJob = true
		case "canceled":
			foundCanceled = true
		}
	}
	if !foundJob {
		t.Fatal("completed job has no X event on the jobs track")
	}
	if !foundCanceled {
		t.Fatal("canceled job missing from the jobs track")
	}
	nested := false
	for _, e := range ct.TraceEvents {
		if e.Tid < jobsTid && e.Ph != "M" && e.Ts >= jobStart && e.Ts <= jobEnd {
			nested = true
			break
		}
	}
	if !nested {
		t.Fatal("no scheduler event nests inside the job span interval")
	}
}

// TestMetricsAndSpansEndpoints scrapes the real HTTP surface: /metrics
// must serve parseable Prometheus text carrying the acceptance families,
// and /spans a JSON array of terminal span records.
func TestMetricsAndSpansEndpoints(t *testing.T) {
	s, ts := httpServer(t, Config{
		Metrics: obs.NewRegistry(),
		Spans:   obs.NewSpanLog(16),
	})
	j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 12, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE pstld_queue_depth gauge",
		"pstld_queue_depth 0",
		"# TYPE pstld_job_latency_seconds histogram",
		`pstld_job_latency_seconds_bucket{tenant="acme",le="+Inf"} 1`,
		"# TYPE pstld_window_latency_seconds histogram",
		`pstld_window_latency_seconds_count{tenant="acme"} 1`,
		"pstld_jobs_completed_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Line-level format check: every sample line is `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed /metrics line %q", line)
		}
	}

	sresp, err := http.Get(ts.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var infos []obs.SpanInfo
	if err := json.NewDecoder(sresp.Body).Decode(&infos); err != nil {
		t.Fatalf("/spans not a JSON array: %v", err)
	}
	if len(infos) != 1 || infos[0].ID != j.ID() || infos[0].Phases["completed"] == 0 {
		t.Fatalf("/spans = %+v, want the completed job's span", infos)
	}
}
