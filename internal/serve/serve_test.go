package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pstlbench/internal/native"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestSubmitRunsEveryKernel(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 1 << 14
	for _, k := range Kernels() {
		j, err := s.Submit(Spec{Kernel: k, N: n, Tenant: "t"})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		waitJob(t, j)
		info := s.Info(j)
		if info.State != "done" {
			t.Fatalf("%s: state %s (%s), want done", k, info.State, info.Reason)
		}
		if want := ExpectedChecksum(k, n); info.Checksum != want {
			t.Fatalf("%s: checksum %v, want %v", k, info.Checksum, want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(Spec{Kernel: "frobnicate", N: 10}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := s.Submit(Spec{Kernel: "reduce", N: 0}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestAdmissionControl fills the queue and checks saturation is reported
// with a retry hint instead of queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{QueueCap: 2, MaxConcurrent: 1})
	// One long job occupies the slot; two fill the queue.
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 19, Tenant: "a"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "b"})
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("4th submit: %v, want SaturatedError", err)
	}
	if sat.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", sat.RetryAfter)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Accepted != 3 {
		t.Fatalf("accepted/rejected = %d/%d, want 3/1", st.Accepted, st.Rejected)
	}
	for _, j := range jobs {
		waitJob(t, j)
	}
	// Capacity freed: submissions flow again.
	j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10, Tenant: "b"})
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	waitJob(t, j)
}

// TestCancelQueuedJob withdraws a job before it ever runs.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Cancel(victim.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "canceled" || info.Reason != "canceled" {
		t.Fatalf("canceled queued job: %s/%s", info.State, info.Reason)
	}
	waitJob(t, victim) // done channel must be closed
	waitJob(t, blocker)
	if got := s.Stats().Canceled; got != 1 {
		t.Fatalf("canceled count = %d, want 1", got)
	}
}

// TestCancelRunningJobFreesWorkers cancels a large running job and checks
// the pool is free for the next job promptly — the workers abandoned the
// canceled job at a chunk boundary rather than finishing it.
func TestCancelRunningJobFreesWorkers(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	big, err := s.Submit(Spec{Kernel: "foreach", N: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	// Let it start.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info := s.Info(big); info.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("big job never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := s.Cancel(big.ID()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, big)
	info := s.Info(big)
	if info.State != "canceled" {
		t.Fatalf("state %s, want canceled", info.State)
	}
	small, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, small)
	if got := s.Info(small); got.State != "done" {
		t.Fatalf("job after cancel: %s", got.State)
	}
}

// TestDeadlineExpiresQueuedAndRunning covers both deadline paths.
func TestDeadlineExpiresQueuedAndRunning(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	// Blocker keeps the slot busy well past the victim's deadline.
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	queuedVictim, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 22, Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, queuedVictim)
	if info := s.Info(queuedVictim); info.State != "canceled" || info.Reason != "deadline" {
		t.Fatalf("queued victim: %s/%s, want canceled/deadline", info.State, info.Reason)
	}
	waitJob(t, blocker)

	runningVictim, err := s.Submit(Spec{Kernel: "foreach", N: 1 << 22, Deadline: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, runningVictim)
	info := s.Info(runningVictim)
	// Small machines may finish 4M elements inside 2ms; accept done, but a
	// canceled outcome must carry the deadline reason.
	if info.State == "canceled" && info.Reason != "deadline" {
		t.Fatalf("running victim: %s/%s, want reason deadline", info.State, info.Reason)
	}
	if s.Stats().Expired < 1 {
		t.Fatal("expired counter never incremented")
	}
}

// TestPerTenantStatsIsolation: each tenant's latency region and counters
// are its own.
func TestPerTenantStatsIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	tenants := []string{"alpha", "beta"}
	for _, tn := range tenants {
		for i := 0; i < 3; i++ {
			j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 16, Tenant: tn})
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, j)
		}
	}
	st := s.Stats()
	if len(st.Tenants) != 2 {
		t.Fatalf("tenant rows = %d, want 2", len(st.Tenants))
	}
	for _, ts := range st.Tenants {
		if ts.Completed != 3 {
			t.Fatalf("tenant %s completed = %d, want 3", ts.Tenant, ts.Completed)
		}
		if ts.P50Seconds <= 0 || ts.P99Seconds < ts.P50Seconds {
			t.Fatalf("tenant %s quantiles p50=%v p99=%v", ts.Tenant, ts.P50Seconds, ts.P99Seconds)
		}
	}
	// Regions exist per tenant and per kernel.
	if rs := s.Registry().Stats("serve:alpha/reduce"); rs.Calls != 3 {
		t.Fatalf("per-kernel region calls = %d, want 3", rs.Calls)
	}
}

// TestSharedPoolNotClosed: a server on a caller-owned pool must leave it
// open on Close.
func TestSharedPoolNotClosed(t *testing.T) {
	pool := native.New(2, native.StrategyStealing)
	defer pool.Close()
	s := New(Config{Pool: pool})
	j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	s.Close()
	// The pool still works.
	var sum int
	pool.Do(func() { sum++ })
	if sum != 1 {
		t.Fatal("shared pool unusable after server Close")
	}
	if _, err := s.Submit(Spec{Kernel: "reduce", N: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestCloseCancelsBacklog: Close drains queued jobs as canceled/shutdown
// and waits for running ones.
func TestCloseCancelsBacklog(t *testing.T) {
	s := New(Config{Workers: 4, MaxConcurrent: 1})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 19})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Close()
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after Close", j.ID())
		}
	}
	shutdown := 0
	for _, j := range jobs {
		if info := s.Info(j); info.Reason == "shutdown" {
			shutdown++
		}
	}
	if shutdown == 0 {
		t.Fatal("no job carries the shutdown reason")
	}
}

// TestWFQEndToEndOrdering drives the server itself (not just the queue):
// with one slot busy, a heavy tenant's backlog queued, and a light job
// arriving last, the light job must be served before the backlog drains.
func TestWFQEndToEndOrdering(t *testing.T) {
	s := newTestServer(t, Config{Discipline: WFQ, MaxConcurrent: 1})
	var order []string
	var mu sync.Mutex
	noteDone := func(tag string, j *Job) {
		go func() {
			<-j.Done()
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}()
	}
	var all []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 19, Tenant: "heavy"})
		if err != nil {
			t.Fatal(err)
		}
		noteDone("heavy", j)
		all = append(all, j)
	}
	light, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 14, Tenant: "light"})
	if err != nil {
		t.Fatal(err)
	}
	noteDone("light", light)
	all = append(all, light)
	for _, j := range all {
		waitJob(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, tag := range order {
		if tag == "light" {
			pos = i
		}
	}
	// The light job may lose only to jobs already running or popped when
	// it arrived, never to the whole backlog.
	if pos < 0 || pos > 2 {
		t.Fatalf("light job finished at position %d of %v, want <= 2", pos, order)
	}
}
