package serve

import (
	"fmt"
	"sort"

	"pstlbench/internal/core"
)

// Kernels lists the job kernels the server accepts, in stable order.
func Kernels() []string {
	return []string{"foreach", "reduce", "scan", "sort", "find"}
}

// KernelValid reports whether name is a servable kernel.
func KernelValid(name string) bool {
	for _, k := range Kernels() {
		if k == name {
			return true
		}
	}
	return false
}

// runJob dispatches one job body: a custom Fn when the spec carries one
// (the streaming plane's window jobs), else the named kernel. A custom
// body reports ok under the same rule as the kernels — a fired token means
// the result is torn and must be discarded.
func runJob(p core.Policy, spec Spec) (float64, bool) {
	if spec.Fn != nil {
		sum := spec.Fn(p)
		return sum, !p.Canceled()
	}
	return runKernel(p, spec.Kernel, spec.N)
}

// runKernel executes one job body under p (which carries the job's
// cancellation token) and returns a checksum of the result. ok=false means
// the token fired and the result is torn: the checksum must be discarded,
// never reported — the invariant the cancellation property tests pin.
//
// Each job owns its data: inputs are allocated and filled per call, so
// concurrent jobs on the shared pool never alias. The fill is
// deterministic in n, making checksums reproducible for validation.
func runKernel(p core.Policy, kernel string, n int) (checksum float64, ok bool) {
	switch kernel {
	case "foreach":
		data := fill(n, func(i int) float64 { return float64(i % 16) })
		core.ForEach(p, data, func(v *float64) { *v = *v*3 + 1 })
		checksum = core.Sum(p, data, 0)
	case "reduce":
		data := fill(n, func(i int) float64 { return 1 })
		checksum = core.Sum(p, data, 0)
	case "scan":
		data := fill(n, func(i int) float64 { return 1 })
		dst := make([]float64, n)
		core.InclusiveScan(p, dst, data, func(a, b float64) float64 { return a + b })
		checksum = dst[n-1]
	case "sort":
		data := fill(n, func(i int) float64 {
			// Multiplicative LCG: deterministic shuffle-like fill.
			return float64((uint64(i+1) * 6364136223846793005) % 1_000_003)
		})
		core.Sort(p, data)
		checksum = data[0] + data[n/2] + data[n-1]
	case "find":
		data := fill(n, func(i int) float64 { return float64(i) })
		checksum = float64(core.Find(p, data, float64(n-1)))
	default:
		panic(fmt.Sprintf("serve: unknown kernel %q (validated at admission)", kernel))
	}
	return checksum, !p.Canceled()
}

// ExpectedChecksum returns the reference checksum of a kernel at size n,
// computed sequentially — the validation oracle of the tests and the
// loadgen.
func ExpectedChecksum(kernel string, n int) float64 {
	switch kernel {
	case "foreach":
		s := 0.0
		for i := 0; i < n; i++ {
			s += float64(i%16)*3 + 1
		}
		return s
	case "reduce", "scan":
		return float64(n)
	case "sort":
		data := make([]float64, n)
		for i := range data {
			data[i] = float64((uint64(i+1) * 6364136223846793005) % 1_000_003)
		}
		sort.Float64s(data)
		return data[0] + data[n/2] + data[n-1]
	case "find":
		return float64(n - 1)
	}
	return 0
}

func fill(n int, f func(int) float64) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = f(i)
	}
	return data
}
