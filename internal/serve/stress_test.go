package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSubmitCancelStress races many clients submitting, polling,
// and canceling jobs on one shared pool — the serving layer's steady state
// and the main -race target of the subsystem. Every completed job's
// checksum must validate: a canceled job may be torn, a done one never.
func TestConcurrentSubmitCancelStress(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxConcurrent: 2, QueueCap: 32})
	const clients = 8
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var torn, completed, canceled atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			kernels := Kernels()
			for i := 0; i < iters; i++ {
				k := kernels[rng.Intn(len(kernels))]
				n := 1 << (12 + rng.Intn(6))
				spec := Spec{Kernel: k, N: n, Tenant: []string{"a", "b", "c"}[c%3]}
				if rng.Intn(4) == 0 {
					spec.Deadline = time.Duration(rng.Intn(3)) * time.Millisecond
				}
				j, err := s.Submit(spec)
				if err != nil {
					var sat *SaturatedError
					if errors.As(err, &sat) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				if rng.Intn(3) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					s.Cancel(j.ID())
				}
				<-j.Done()
				info := s.Info(j)
				switch info.State {
				case "done":
					completed.Add(1)
					if info.Checksum != ExpectedChecksum(k, n) {
						torn.Add(1)
						t.Errorf("torn result escaped: %s n=%d checksum=%v want=%v",
							k, n, info.Checksum, ExpectedChecksum(k, n))
					}
				case "canceled":
					canceled.Add(1)
				default:
					t.Errorf("job %s terminal state %s", j.ID(), info.State)
				}
			}
		}()
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("stress run completed zero jobs")
	}
	t.Logf("completed=%d canceled=%d torn=%d", completed.Load(), canceled.Load(), torn.Load())
	// The server must still be healthy.
	j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if info := s.Info(j); info.State != "done" {
		t.Fatalf("post-stress job: %s", info.State)
	}
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("leaked work: queued=%d running=%d", st.Queued, st.Running)
	}
}
