package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pstlbench/internal/obs"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMS bounds the job's total time in the server, milliseconds.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses (also sent as the standard
	// Retry-After header, in whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /jobs      submit a job   -> 202 JobInfo | 429 (saturated) | 400
//	GET    /jobs/{id} job status     -> 200 JobInfo | 404
//	DELETE /jobs/{id} cancel a job   -> 200 JobInfo | 404
//	GET    /stats     server stats   -> 200 Stats
//	GET    /metrics   Prometheus text exposition (when Config.Metrics set)
//	GET    /spans     terminal job lifecycle spans (when Config.Spans set)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	if s.metrics != nil {
		mux.Handle("GET /metrics", MetricsHandler(s.metrics))
	}
	if s.spans != nil {
		mux.Handle("GET /spans", SpansHandler(s.spans))
	}
	return mux
}

// MetricsHandler serves a registry in the Prometheus text exposition
// format — shared by the standalone server and the shard router.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// SpansHandler serves the span log's surviving terminal spans, oldest
// first, as a JSON array of obs.SpanInfo.
func SpansHandler(log *obs.SpanLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := log.Spans()
		out := make([]obs.SpanInfo, len(spans))
		for i, sp := range spans {
			out[i] = sp.Info()
		}
		writeJSON(w, http.StatusOK, out)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	spec := Spec{
		Kernel:   req.Kernel,
		N:        req.N,
		Tenant:   req.Tenant,
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
	}
	j, err := s.Submit(spec)
	if err != nil {
		var sat *SaturatedError
		switch {
		case errors.As(err, &sat):
			// Backpressure: tell the client when to come back instead of
			// queueing unboundedly.
			secs := int64((sat.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:        err.Error(),
				RetryAfterMS: sat.RetryAfter.Milliseconds(),
			})
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.Info(j))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
