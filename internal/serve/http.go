package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pstlbench/internal/obs"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// ID, when set, is a caller-assigned job identifier (see Spec.ID); a
	// resubmission with a known ID returns the existing job, which makes
	// transport-level submit retries safe.
	ID     string `json:"id,omitempty"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMS bounds the job's total time in the server, milliseconds.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// DeadlineUnixMS, when set, is the absolute deadline as a Unix
	// timestamp in milliseconds and takes precedence over DeadlineMS, so
	// transport latency tightens the budget instead of extending it.
	DeadlineUnixMS int64 `json:"deadline_unix_ms,omitempty"`
}

// WithdrawRequest is the POST /withdraw body.
type WithdrawRequest struct {
	// Max bounds how many queued jobs to withdraw.
	Max int `json:"max"`
}

// WithdrawnJob is one job handed back by POST /withdraw: everything the
// router needs to resubmit it on another shard.
type WithdrawnJob struct {
	ID             string `json:"id"`
	Kernel         string `json:"kernel"`
	N              int    `json:"n"`
	Tenant         string `json:"tenant"`
	DeadlineUnixMS int64  `json:"deadline_unix_ms,omitempty"`
}

// WithdrawResponse is the POST /withdraw reply.
type WithdrawResponse struct {
	Jobs []WithdrawnJob `json:"jobs"`
}

// PollRequest is the POST /jobs/poll body: a batch status query, one RPC
// per poll cycle regardless of how many jobs are in flight.
type PollRequest struct {
	IDs []string `json:"ids"`
}

// PollResponse is the POST /jobs/poll reply. Missing lists IDs the server
// no longer knows — evicted or lost to a restart — which the caller must
// treat as gone, not pending.
type PollResponse struct {
	Jobs    []JobInfo `json:"jobs"`
	Missing []string  `json:"missing,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses (also sent as the standard
	// Retry-After header, in whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /jobs      submit a job   -> 202 JobInfo | 429 (saturated) | 400
//	GET    /jobs/{id} job status     -> 200 JobInfo | 404
//	DELETE /jobs/{id} cancel a job   -> 200 JobInfo | 404
//	GET    /stats     server stats   -> 200 Stats
//	GET    /healthz   liveness + load -> 200 HealthInfo
//	POST   /jobs/poll batch job status -> 200 PollResponse
//	POST   /withdraw  withdraw queued jobs for migration -> 200 WithdrawResponse
//	GET    /metrics   Prometheus text exposition (when Config.Metrics set)
//	GET    /spans     terminal job lifecycle spans (when Config.Spans set)
//
// /healthz, /jobs/poll, and /withdraw form the worker surface a shard
// router drives over internal/cluster when this server runs as a separate
// `pstld -worker` process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/poll", s.handlePoll)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /withdraw", s.handleWithdraw)
	if s.metrics != nil {
		mux.Handle("GET /metrics", MetricsHandler(s.metrics))
	}
	if s.spans != nil {
		mux.Handle("GET /spans", SpansHandler(s.spans))
	}
	return mux
}

// MetricsHandler serves a registry in the Prometheus text exposition
// format — shared by the standalone server and the shard router.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// SpansHandler serves the span log's surviving terminal spans, oldest
// first, as a JSON array of obs.SpanInfo.
func SpansHandler(log *obs.SpanLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := log.Spans()
		out := make([]obs.SpanInfo, len(spans))
		for i, sp := range spans {
			out[i] = sp.Info()
		}
		writeJSON(w, http.StatusOK, out)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	spec := Spec{
		ID:       req.ID,
		Kernel:   req.Kernel,
		N:        req.N,
		Tenant:   req.Tenant,
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
	}
	if req.DeadlineUnixMS > 0 {
		spec.DeadlineAt = time.UnixMilli(req.DeadlineUnixMS)
	}
	j, err := s.Submit(spec)
	if err != nil {
		var sat *SaturatedError
		switch {
		case errors.As(err, &sat):
			// Backpressure: tell the client when to come back instead of
			// queueing unboundedly.
			secs := int64((sat.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:        err.Error(),
				RetryAfterMS: sat.RetryAfter.Milliseconds(),
			})
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.Info(j))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp := PollResponse{Jobs: make([]JobInfo, 0, len(req.IDs))}
	for _, id := range req.IDs {
		if info, ok := s.Get(id); ok {
			resp.Jobs = append(resp.Jobs, info)
		} else {
			resp.Missing = append(resp.Missing, id)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWithdraw(w http.ResponseWriter, r *http.Request) {
	var req WithdrawRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Max < 1 {
		writeError(w, http.StatusBadRequest, "max must be >= 1")
		return
	}
	jobs := s.WithdrawQueued(req.Max)
	resp := WithdrawResponse{Jobs: make([]WithdrawnJob, len(jobs))}
	for i, j := range jobs {
		spec := j.Spec()
		wj := WithdrawnJob{
			ID:     j.ID(),
			Kernel: spec.Kernel,
			N:      spec.N,
			Tenant: spec.Tenant,
		}
		if !spec.DeadlineAt.IsZero() {
			wj.DeadlineUnixMS = spec.DeadlineAt.UnixMilli()
		}
		resp.Jobs[i] = wj
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
