package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/counters"
	"pstlbench/internal/exec"
	"pstlbench/internal/native"
	"pstlbench/internal/obs"
	"pstlbench/internal/trace"
)

// Config configures a Server. The zero value is usable: an owned
// GOMAXPROCS stealing pool, WFQ, and defaulted bounds.
type Config struct {
	// Pool is the shared execution pool; when nil the server creates and
	// owns one with Workers workers (default GOMAXPROCS) under Strategy
	// ("forkjoin", "stealing", or "centralqueue"; default "stealing"),
	// closing it on Close.
	Pool     *native.Pool
	Workers  int
	Strategy string

	// Discipline is the job-level queueing policy (the zero value is WFQ).
	Discipline Discipline
	// QueueCap bounds the admission queue (queued jobs, excluding running
	// ones); submissions beyond it are rejected with a SaturatedError.
	// Default 64. The queue is the only place jobs wait, so server memory
	// stays bounded at QueueCap + MaxConcurrent job records plus their
	// running working sets.
	QueueCap int
	// MaxConcurrent is the number of jobs running on the pool at once
	// (default 1: jobs parallelize internally across all workers via
	// chunk-level stealing; the fair queue decides which job runs next).
	MaxConcurrent int
	// Weights are the per-tenant WFQ weights (default 1 each).
	Weights map[string]float64

	// TenantQuota bounds the queued jobs of any single tenant (0 disables):
	// a tenant at its quota is rejected with a SaturatedError even while the
	// global queue has room, so one flooding tenant cannot consume the whole
	// admission budget. TenantQuotas overrides the bound per tenant.
	TenantQuota  int
	TenantQuotas map[string]int

	// RetainDone bounds how many terminal (done/canceled) job records the
	// server keeps for status queries; older ones are evicted oldest-first
	// and Get on an evicted ID reports not-found. Default 1024; -1 retains
	// everything (the pre-bound behavior — unbounded memory in a daemon).
	// Queued and running jobs are never evicted, so the documented memory
	// bound QueueCap + MaxConcurrent + RetainDone job records holds.
	RetainDone int

	// RetryAfterMax caps the Retry-After backpressure hint (default 30s).
	// The hint is backlog x observed service time, so one slow job through
	// the EMA can otherwise quote minutes — and loadgen clients that honor
	// the hint would never come back.
	RetryAfterMax time.Duration

	// SmallJobMax, when positive, enables the batched small-job fast path:
	// when the next job to run is small (N <= SmallJobMax), up to
	// BatchMax-1 further queued small jobs from the SAME tenant are
	// coalesced with it into one pool submission occupying ONE concurrency
	// slot. Tiny kernels are dominated by per-job admission and dispatch
	// overhead, not compute (the small-n regime of the paper, where the
	// GNU runtime goes sequential); batching amortizes that overhead while
	// each job keeps its own completion, checksum, cancellation token and
	// deadline. Jobs inside a batch run single-threaded — the batch is the
	// unit of parallelism. 0 disables batching (the default: single-job
	// dispatch is the behavior the ext-serve experiment validates).
	SmallJobMax int
	// BatchMax caps jobs per batch (default 16).
	BatchMax int

	// Registry receives one end-to-end Seconds sample per completed job
	// under region "serve:<tenant>", and per-kernel samples under
	// "serve:<tenant>/<kernel>" — the per-tenant latency distributions
	// (p50/p99) the Stats endpoint reports. Created when nil.
	Registry *counters.Registry
	// Tracer, when non-nil, receives one KindRegion span per job on its
	// last track, from dispatch to completion, labeled
	// "serve:<tenant>/<kernel>" with the numeric job ID — so per-job
	// service intervals land on the same timeline as the pool's chunk and
	// steal events and a cancelled job's freed workers are visible in the
	// trace.
	Tracer *trace.Tracer

	// Metrics, when non-nil, receives the server's Prometheus instruments
	// (queue depth, running, load, admission counters, per-tenant latency
	// and windowed-latency histograms — see obs.go). MetricsLabels are
	// alternating key, value pairs stamped on every instrument; a shard
	// router labels each shard's server ("shard", "0") so the shared
	// registry keeps the series apart.
	Metrics       *obs.Registry
	MetricsLabels []string

	// Spans, when non-nil, retains each terminal job's lifecycle span (see
	// obs.JobSpan) for /spans and the Chrome-trace export. Jobs arriving
	// with Spec.Span already set (from a shard router) keep it; otherwise
	// the server creates one per job.
	Spans *obs.SpanLog

	// SLOObjective is the per-tenant latency objective backing the burn-
	// rate gauges and /stats SLO fields (0 disables). SLOObjectives
	// overrides it per tenant; SLOTarget is the fraction of jobs that must
	// meet the objective (default 0.99).
	SLOObjective  time.Duration
	SLOObjectives map[string]time.Duration
	SLOTarget     float64

	// WindowWidth x WindowCount size the rolling latency windows behind
	// the windowed /stats quantiles (defaults 5s x 16).
	WindowWidth time.Duration
	WindowCount int

	// windowNow is the rolling-window clock test hook (in-package tests
	// step windows deterministically); nil means wall clock.
	windowNow func() int64
}

// SaturatedError is the admission-control rejection: the queue is at
// capacity. RetryAfter is the server's backoff hint, derived from the
// observed service rate and the current backlog.
type SaturatedError struct {
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: queue saturated, retry after %v", e.RetryAfter)
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// JobState is the lifecycle state of a job.
type JobState int

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateCanceled
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return "canceled"
	}
}

// Spec is one job submission.
type Spec struct {
	// ID, when non-empty, is the caller-assigned job identifier; the server
	// adopts it instead of generating one, and a resubmission carrying an ID
	// the server already holds returns the existing job rather than running
	// a second copy. This is the dedup a retrying transport relies on: a
	// submit that times out after the worker accepted is safe to retry.
	ID string
	// Kernel names the algorithm (see Kernels).
	Kernel string
	// N is the problem size in elements.
	N int
	// Tenant is the fair-queuing flow; empty means "default".
	Tenant string
	// Deadline, when positive, bounds the job's total time in the server
	// (queue wait included); past it the job is canceled cooperatively.
	Deadline time.Duration
	// DeadlineAt, when non-zero, is the absolute deadline and takes
	// precedence over Deadline. A router stamps it at first admission so
	// transport hops, retries, and migrations never extend the budget; a
	// DeadlineAt already in the past expires the job immediately.
	DeadlineAt time.Time
	// Span, when non-nil, is the job's lifecycle span. A shard router sets
	// it at admission so phase stamps survive spill, migration, and
	// crash-replay; a standalone server with Config.Spans creates one per
	// job itself.
	Span *obs.JobSpan
	// Fn, when non-nil, is the job body itself: a caller-supplied kernel
	// run on the shared pool under the job's policy (cancellation token,
	// first-chunk stamp) in place of the named kernels. Kernel then serves
	// only as a label for stats and traces, and N only as the WFQ cost
	// estimate. Fn jobs cannot cross a process boundary — the shard router
	// rejects them and they never enter a job log. The streaming plane
	// (internal/flow) uses this to run closed windows on the server that
	// shares its pool with batch tenants.
	Fn func(p core.Policy) float64 `json:"-"`
}

// Job is the server-side record of one submission. All fields are guarded
// by the server lock; read them through Info.
type Job struct {
	id   string
	num  int64
	spec Spec

	state    JobState
	reason   string // for StateCanceled: "canceled", "deadline", "shutdown"
	token    *exec.Cancel
	timer    *time.Timer
	enqueued time.Time
	started  time.Time
	finished time.Time
	checksum float64
	done     chan struct{}
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's submission spec — what a shard router needs to
// resubmit a withdrawn job elsewhere.
func (j *Job) Spec() Spec { return j.spec }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobInfo is a consistent snapshot of a job, the shape the HTTP API serves.
type JobInfo struct {
	ID     string `json:"id"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	// Reason qualifies a canceled state: "canceled", "deadline", "shutdown".
	Reason string `json:"reason,omitempty"`
	// Checksum is the kernel's result digest, valid only when state=done.
	Checksum float64 `json:"checksum,omitempty"`
	// QueueSeconds is time spent waiting for a slot; RunSeconds is service
	// time; TotalSeconds is end-to-end (what the latency stats report).
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Server is the multi-tenant algorithm service.
type Server struct {
	pool    *native.Pool
	ownPool bool
	reg     *counters.Registry
	tb      *trace.Buf
	tr      *trace.Tracer

	maxConcurrent int
	smallJobMax   int
	batchMax      int
	retainDone    int
	retryMax      time.Duration
	quota         int
	quotas        map[string]int

	mu      sync.Mutex
	q       *FairQueue
	jobs    map[string]*Job
	running int
	nextID  int64
	closed  bool
	wg      sync.WaitGroup

	// doneOrder is the eviction ring over terminal job IDs: oldest-first,
	// bounded at retainDone (see Config.RetainDone).
	doneOrder []string

	// Observability strands (see obs.go). tenantObsM is guarded by obsMu,
	// never by mu: the finish path reads it while holding mu, the submit
	// path populates it before taking mu.
	metrics       *obs.Registry
	mlabels       []string
	spans         *obs.SpanLog
	batchHist     *obs.Histogram
	sloObjective  time.Duration
	sloObjectives map[string]time.Duration
	sloTarget     float64
	winCfg        obs.WindowConfig
	obsMu         sync.Mutex
	tenantObsM    map[string]*tenantObs
	nextBatch     int64

	accepted, rejected, completed, canceled, expired int64
	batches, batchedJobs, withdrawn                  int64
	tenants                                          map[string]*tenantCounts
	// emaRun tracks service time to derive the Retry-After hint.
	emaRun float64
	// emaAdm tracks queue occupancy at admission time — the saturation
	// signal the shard router's load-aware placement reads (see Load).
	emaAdm float64
}

type tenantCounts struct {
	completed, canceled, rejected int64
}

// New starts a Server from cfg.
func New(cfg Config) *Server {
	pool := cfg.Pool
	own := false
	if pool == nil {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		st := native.StrategyStealing
		switch cfg.Strategy {
		case "", "stealing":
		case "forkjoin":
			st = native.StrategyForkJoin
		case "centralqueue":
			st = native.StrategyCentralQueue
		default:
			panic(fmt.Sprintf("serve: unknown strategy %q", cfg.Strategy))
		}
		pool = native.New(w, st)
		own = true
	}
	reg := cfg.Registry
	if reg == nil {
		reg = counters.NewRegistry()
	}
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = 64
	}
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 1
	}
	batchMax := cfg.BatchMax
	if batchMax <= 0 {
		batchMax = 16
	}
	retain := cfg.RetainDone
	if retain == 0 {
		retain = 1024
	}
	retryMax := cfg.RetryAfterMax
	if retryMax <= 0 {
		retryMax = 30 * time.Second
	}
	q := NewQueue(cfg.Discipline, qcap)
	for t, w := range cfg.Weights {
		q.SetWeight(t, w)
	}
	// Multi-slot servers use the in-service virtual clock so the WFQ
	// fairness bound holds per slot (see FairQueue.TrackService).
	q.TrackService(maxc > 1)
	s := &Server{
		pool:          pool,
		ownPool:       own,
		reg:           reg,
		tr:            cfg.Tracer,
		maxConcurrent: maxc,
		smallJobMax:   cfg.SmallJobMax,
		batchMax:      batchMax,
		retainDone:    retain,
		retryMax:      retryMax,
		quota:         cfg.TenantQuota,
		quotas:        cfg.TenantQuotas,
		q:             q,
		jobs:          make(map[string]*Job),
		tenants:       make(map[string]*tenantCounts),
	}
	if s.tr != nil {
		s.tb = s.tr.Buf(s.tr.Tracks() - 1)
	}
	s.initObs(cfg)
	return s
}

// Registry returns the registry holding the per-tenant latency regions.
func (s *Server) Registry() *counters.Registry { return s.reg }

// Queued returns the number of jobs waiting in the admission queue.
func (s *Server) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// QueueCap returns the admission queue bound.
func (s *Server) QueueCap() int { return s.q.cap }

// Submit admits a job. It returns a *SaturatedError when the queue is at
// capacity (carrying a Retry-After hint), ErrClosed after Close, and a
// plain error for an invalid spec.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if spec.Fn == nil && !KernelValid(spec.Kernel) {
		return nil, fmt.Errorf("serve: unknown kernel %q", spec.Kernel)
	}
	if spec.Fn != nil && spec.Kernel == "" {
		spec.Kernel = "custom"
	}
	if spec.N < 1 {
		return nil, fmt.Errorf("serve: job size %d, want >= 1", spec.N)
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	// Tenant windows/instruments are created outside the server lock (see
	// obs.go lock-order note); after the first submission this is a map hit.
	s.ensureTenantObs(spec.Tenant)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Idempotent resubmit: an ID the server already holds means the caller
	// never saw our first accept (a transport retry). Return the existing
	// job — before quota checks, so a retried accept is never re-rejected.
	if spec.ID != "" {
		if j := s.jobs[spec.ID]; j != nil {
			s.mu.Unlock()
			return j, nil
		}
	}
	s.noteAdmissionLocked()
	// Per-tenant quota: a flooding tenant is bounded before it can consume
	// the shared admission budget.
	if quota := s.quotaFor(spec.Tenant); quota > 0 && s.q.TenantLen(spec.Tenant) >= quota {
		s.rejected++
		s.tenant(spec.Tenant).rejected++
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		return nil, &SaturatedError{RetryAfter: retry}
	}
	s.nextID++
	id := spec.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", s.nextID)
	} else if n, ok := parseJobNum(id); ok && n > s.nextID {
		// Adopted IDs in our own "job-N" format advance the counter so a
		// later generated ID can never collide with one a router assigned.
		s.nextID = n
	}
	j := &Job{
		id:       id,
		num:      s.nextID,
		spec:     spec,
		token:    &exec.Cancel{},
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	j.spec.ID = id
	if j.spec.Span == nil && s.spans != nil {
		j.spec.Span = obs.NewJobSpan(j.id, j.num, spec.Tenant, spec.Kernel, spec.N)
	}
	// MarkOnce: a replayed or migrated job keeps its original admission
	// stamp — the span records when the work first entered the system.
	j.spec.Span.MarkOnce(obs.PhaseAdmitted)
	// Admission control: jobs only ever wait in the bounded queue.
	if !s.q.Push(Item{Tenant: spec.Tenant, Cost: float64(spec.N), Value: j}) {
		s.rejected++
		s.tenant(spec.Tenant).rejected++
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		return nil, &SaturatedError{RetryAfter: retry}
	}
	j.spec.Span.Mark(obs.PhaseEnqueued)
	s.accepted++
	s.jobs[j.id] = j
	// Resolve the deadline. An absolute DeadlineAt wins: it was fixed when
	// the work first entered the system, so transport latency and re-
	// placement hops shrink the remaining budget instead of resetting it. A
	// relative Deadline is converted to DeadlineAt here for the same reason
	// — a later migration carries the absolute stamp onward.
	dl := spec.Deadline
	if !spec.DeadlineAt.IsZero() {
		dl = time.Until(spec.DeadlineAt)
		if dl <= 0 {
			dl = time.Nanosecond // already past: expire immediately
		}
	} else if dl > 0 {
		j.spec.DeadlineAt = j.enqueued.Add(dl)
	}
	if dl > 0 {
		j.timer = time.AfterFunc(dl, func() { s.expire(j) })
	}
	s.drainLocked()
	s.mu.Unlock()
	return j, nil
}

// parseJobNum extracts N from a "job-N" identifier.
func parseJobNum(id string) (int64, bool) {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// retryAfterLocked estimates when a queue slot will free: the backlog
// drained at the observed per-job service time, clamped to RetryAfterMax —
// one slow job through the EMA must not quote an hours-long hint that an
// obedient client would honor and never return from.
func (s *Server) retryAfterLocked() time.Duration {
	per := s.emaRun
	if per <= 0 {
		per = 0.01
	}
	d := time.Duration(per * float64(s.q.Len()+s.running) / float64(s.maxConcurrent) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > s.retryMax {
		d = s.retryMax
	}
	return d
}

// quotaFor returns tenant's queued-job quota (0 = unbounded).
func (s *Server) quotaFor(tenant string) int {
	if q, ok := s.quotas[tenant]; ok {
		return q
	}
	return s.quota
}

// noteAdmissionLocked folds the instantaneous queue occupancy into the
// admission EMA at each submission.
func (s *Server) noteAdmissionLocked() {
	occ := float64(s.q.Len()) / float64(s.q.cap)
	s.emaAdm = 0.6*s.emaAdm + 0.4*occ
}

// Load reports the shard's admission pressure in [0, ~1]: the larger of
// the admission-time occupancy EMA and the instantaneous queue occupancy.
// The shard router spills new jobs away from a home shard whose Load is
// saturated and migrates queued jobs off one that stays saturated.
func (s *Server) Load() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	occ := float64(s.q.Len()) / float64(s.q.cap)
	if occ > s.emaAdm {
		return occ
	}
	return s.emaAdm
}

// HealthInfo is the liveness snapshot served at GET /healthz: alive, plus
// the load signals a shard router's placement and migration decisions read
// between stats scrapes — one cheap RPC refreshes all of them.
type HealthInfo struct {
	OK       bool    `json:"ok"`
	Queued   int     `json:"queued"`
	QueueCap int     `json:"queue_cap"`
	Running  int     `json:"running"`
	Load     float64 `json:"load"`
}

// Health returns the server's liveness snapshot.
func (s *Server) Health() HealthInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	load := float64(s.q.Len()) / float64(s.q.cap)
	if s.emaAdm > load {
		load = s.emaAdm
	}
	return HealthInfo{
		OK:       !s.closed,
		Queued:   s.q.Len(),
		QueueCap: s.q.cap,
		Running:  s.running,
		Load:     load,
	}
}

func (s *Server) tenant(name string) *tenantCounts {
	tc := s.tenants[name]
	if tc == nil {
		tc = &tenantCounts{}
		s.tenants[name] = tc
	}
	return tc
}

// drainLocked starts queued jobs while concurrency slots are free. With
// batching enabled and a small job at the head, further small jobs of the
// same tenant are coalesced into the same slot (see Config.SmallJobMax);
// the fair queue charges each of them as dispatched, so tenant accounting
// is unchanged — the batch only amortizes dispatch overhead.
func (s *Server) drainLocked() {
	for !s.closed && s.running < s.maxConcurrent {
		it, ok := s.q.Pop()
		if !ok {
			return
		}
		j := it.Value.(*Job)
		j.spec.Span.Mark(obs.PhaseDequeued)
		batch := []*Job{j}
		if s.smallJobMax > 0 && j.spec.N <= s.smallJobMax {
			tenant := j.spec.Tenant
			for _, bi := range s.q.TakeMatching(s.batchMax-1, func(q Item) bool {
				return q.Tenant == tenant && q.Value.(*Job).spec.N <= s.smallJobMax
			}) {
				batch = append(batch, bi.Value.(*Job))
			}
		}
		now := time.Now()
		if len(batch) > 1 {
			s.nextBatch++
			for _, bj := range batch {
				bj.spec.Span.Mark(obs.PhaseBatched)
				bj.spec.Span.SetBatch(s.nextBatch)
			}
		}
		for _, bj := range batch {
			bj.state = StateRunning
			bj.started = now
			bj.spec.Span.MarkAt(obs.PhaseStarted, now.UnixNano())
		}
		s.running++
		s.wg.Add(1)
		if len(batch) == 1 {
			go s.run(j)
		} else {
			s.batches++
			s.batchedJobs += int64(len(batch))
			s.batchHist.Observe(float64(len(batch)))
			go s.runBatch(batch)
		}
	}
}

// finishJobLocked retires one executed job: records its terminal state,
// latency samples and counters, stops its deadline timer, releases its
// fair-queue service slot, and closes its done channel. sum is the kernel
// checksum; ok=false means the cancellation token fired and the result was
// discarded.
func (s *Server) finishJobLocked(j *Job, sum float64, ok bool) {
	j.finished = time.Now()
	if ok && !j.token.Canceled() {
		j.state = StateDone
		j.checksum = sum
		s.completed++
		s.tenant(j.spec.Tenant).completed++
		total := j.finished.Sub(j.enqueued).Seconds()
		s.reg.Record("serve:"+j.spec.Tenant, counters.Set{Seconds: total})
		s.reg.Record("serve:"+j.spec.Tenant+"/"+j.spec.Kernel, counters.Set{Seconds: total})
		runSec := j.finished.Sub(j.started).Seconds()
		s.observeDone(j.spec.Tenant, total, j.started.Sub(j.enqueued).Seconds(), runSec)
		if s.emaRun == 0 {
			s.emaRun = runSec
		} else {
			s.emaRun = 0.8*s.emaRun + 0.2*runSec
		}
	} else {
		j.state = StateCanceled
		if j.reason == "" {
			j.reason = "canceled"
		}
		s.canceled++
		s.tenant(j.spec.Tenant).canceled++
	}
	if j.timer != nil {
		j.timer.Stop()
	}
	s.markTerminal(j, j.finished.UnixNano())
	s.q.Done(j)
	close(j.done)
	s.retireLocked(j)
}

// retireLocked enters a terminal job into the bounded retention ring,
// evicting the oldest terminal records beyond RetainDone so the jobs map
// honors the documented QueueCap + MaxConcurrent + RetainDone bound.
// Queued and running jobs never enter the ring, so they are never evicted.
func (s *Server) retireLocked(j *Job) {
	if s.retainDone < 0 {
		return
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.retainDone {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// run executes one job on the shared pool and finalizes it.
func (s *Server) run(j *Job) {
	defer s.wg.Done()
	p := core.Par(s.pool).WithCancel(j.token)
	// The first parallel chunk CASes its wall time into the span's
	// first-chunk slot: started-to-first-chunk is pure dispatch latency.
	p.FirstChunkNS = j.spec.Span.Slot(obs.PhaseFirstChunk)
	var from int64
	if s.tb != nil {
		from = s.tr.Now()
	}
	sum, ok := runJob(p, j.spec)

	s.mu.Lock()
	s.finishJobLocked(j, sum, ok)
	s.running--
	if s.tb != nil {
		s.tb.Span(trace.KindRegion, from, s.tr.Now(),
			s.tr.Intern("serve:"+j.spec.Tenant+"/"+j.spec.Kernel), j.num)
	}
	s.drainLocked()
	s.mu.Unlock()
}

// runBatch executes a coalesced set of same-tenant small jobs as ONE pool
// submission: each job is one task of a single Do call, so the batch pays
// one dispatch through the concurrency gate instead of len(jobs). Each
// task runs its kernel single-threaded (small jobs are overhead-bound, not
// compute-bound; the batch itself is the unit of parallelism) under the
// job's own cancellation token, and each job is finalized individually as
// its task completes — per-job completion, checksum, deadline and
// cancellation semantics are identical to solo dispatch. A job whose token
// fired before its task starts is finalized canceled without running.
func (s *Server) runBatch(jobs []*Job) {
	defer s.wg.Done()
	var from int64
	if s.tb != nil {
		from = s.tr.Now()
	}
	tasks := make([]func(), len(jobs))
	for i, j := range jobs {
		j := j
		tasks[i] = func() {
			var sum float64
			ok := false
			if !j.token.Canceled() {
				// Batched jobs run sequentially (no chunk dispatch), so the
				// task's own start stands in for the first chunk.
				j.spec.Span.MarkOnce(obs.PhaseFirstChunk)
				p := core.Policy{Cancel: j.token}
				sum, ok = runJob(p, j.spec)
			}
			s.mu.Lock()
			s.finishJobLocked(j, sum, ok)
			s.mu.Unlock()
		}
	}
	s.pool.Do(tasks...)

	s.mu.Lock()
	s.running--
	if s.tb != nil {
		s.tb.Span(trace.KindRegion, from, s.tr.Now(),
			s.tr.Intern("serve:"+jobs[0].spec.Tenant+"/batch"), int64(len(jobs)))
	}
	s.drainLocked()
	s.mu.Unlock()
}

// expire is the deadline path: cancel the job wherever it is.
func (s *Server) expire(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateQueued:
		s.q.Remove(func(v any) bool { return v == any(j) })
		s.finishCanceledLocked(j, "deadline")
		s.expired++
	case StateRunning:
		j.reason = "deadline"
		s.expired++
		j.token.Cancel() // run() observes the token and finalizes
	}
}

// finishCanceledLocked retires a job that never ran.
func (s *Server) finishCanceledLocked(j *Job, reason string) {
	j.state = StateCanceled
	j.reason = reason
	j.finished = time.Now()
	j.token.Cancel()
	if j.timer != nil {
		j.timer.Stop()
	}
	s.canceled++
	s.tenant(j.spec.Tenant).canceled++
	s.markTerminal(j, j.finished.UnixNano())
	close(j.done)
	s.retireLocked(j)
}

// WithdrawQueued removes up to max still-queued jobs from the BACK of the
// dispatch order (largest virtual finish — the jobs least likely to run
// soon) and finalizes each as canceled with reason "migrated", without
// billing the WFQ clock, the in-service set, or the tenant cancel
// counters: the jobs are moving to another shard, not dying. The caller
// resubmits each job's Spec elsewhere; the withdrawn records leave this
// server's jobs map entirely.
func (s *Server) WithdrawQueued(max int) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	items := s.q.TakeBack(max)
	jobs := make([]*Job, len(items))
	for i, it := range items {
		j := it.Value.(*Job)
		j.state = StateCanceled
		j.reason = "migrated"
		// The span travels with the Spec to the next shard; no terminal
		// phase — the job is moving, not dying.
		j.spec.Span.Mark(obs.PhaseMigrated)
		j.finished = time.Now()
		if j.timer != nil {
			j.timer.Stop()
		}
		s.withdrawn++
		delete(s.jobs, j.id)
		close(j.done)
		jobs[i] = j
	}
	return jobs
}

// Cancel cancels a job by ID: a queued job is withdrawn immediately, a
// running one is canceled cooperatively (its workers abandon the job at
// the next chunk boundary). Canceling a finished or unknown job is a
// reported no-op.
func (s *Server) Cancel(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobInfo{}, fmt.Errorf("serve: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		s.q.Remove(func(v any) bool { return v == any(j) })
		s.finishCanceledLocked(j, "canceled")
	case StateRunning:
		j.token.Cancel() // run() finalizes at the next chunk boundary
	}
	return s.infoLocked(j), nil
}

// Get returns a job snapshot.
func (s *Server) Get(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobInfo{}, false
	}
	return s.infoLocked(j), true
}

// Info returns a snapshot of j.
func (s *Server) Info(j *Job) JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(j)
}

func (s *Server) infoLocked(j *Job) JobInfo {
	info := JobInfo{
		ID:     j.id,
		Kernel: j.spec.Kernel,
		N:      j.spec.N,
		Tenant: j.spec.Tenant,
		State:  j.state.String(),
		Reason: j.reason,
	}
	switch j.state {
	case StateQueued:
		info.QueueSeconds = time.Since(j.enqueued).Seconds()
	case StateRunning:
		info.QueueSeconds = j.started.Sub(j.enqueued).Seconds()
		info.RunSeconds = time.Since(j.started).Seconds()
	default:
		if !j.started.IsZero() {
			info.QueueSeconds = j.started.Sub(j.enqueued).Seconds()
			info.RunSeconds = j.finished.Sub(j.started).Seconds()
		} else {
			info.QueueSeconds = j.finished.Sub(j.enqueued).Seconds()
		}
		info.TotalSeconds = j.finished.Sub(j.enqueued).Seconds()
		if j.state == StateDone {
			info.Checksum = j.checksum
		}
	}
	return info
}

// TenantStats is the per-tenant slice of Stats.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Completed int64  `json:"completed"`
	Canceled  int64  `json:"canceled"`
	Rejected  int64  `json:"rejected"`
	// End-to-end latency of completed jobs, seconds. Mean/P50/P99 are
	// cumulative since process start; the Window fields cover only the
	// rolling window (WindowSeconds in Stats) — the pair distinguishes
	// "slow since boot" from "slow right now".
	MeanSeconds float64 `json:"mean_seconds,omitempty"`
	P50Seconds  float64 `json:"p50_seconds,omitempty"`
	P99Seconds  float64 `json:"p99_seconds,omitempty"`
	// WindowJobs is how many completions the rolling window holds.
	WindowJobs       int64   `json:"window_jobs,omitempty"`
	WindowP50Seconds float64 `json:"window_p50_seconds,omitempty"`
	WindowP99Seconds float64 `json:"window_p99_seconds,omitempty"`
	// SLOSeconds echoes the tenant's latency objective; BurnRate is the
	// windowed error-budget burn (1 = exactly on budget). Both omitted
	// when no objective is configured.
	SLOSeconds float64 `json:"slo_seconds,omitempty"`
	BurnRate   float64 `json:"burn_rate,omitempty"`
}

// Stats is the server-wide snapshot the /stats endpoint serves.
type Stats struct {
	Discipline string `json:"discipline"`
	Workers    int    `json:"workers"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Accepted   int64  `json:"accepted"`
	Rejected   int64  `json:"rejected"`
	Completed  int64  `json:"completed"`
	Canceled   int64  `json:"canceled"`
	Expired    int64  `json:"expired"`
	// Batches counts batched small-job dispatches; BatchedJobs the jobs
	// they carried (0/0 unless Config.SmallJobMax enables batching).
	Batches     int64 `json:"batches,omitempty"`
	BatchedJobs int64 `json:"batched_jobs,omitempty"`
	// Withdrawn counts queued jobs a shard router migrated away.
	Withdrawn int64 `json:"withdrawn,omitempty"`
	// Load is the admission-pressure signal (see Server.Load).
	Load float64 `json:"load"`
	// WindowSeconds is the rolling-window horizon behind the tenants'
	// windowed quantiles.
	WindowSeconds float64 `json:"window_seconds,omitempty"`
	// Trace-ring health (present when the server has a Tracer): recorded
	// events, events evicted from full rings (drops were previously
	// invisible to the operator), and the fraction of ring capacity in use.
	TraceEvents    uint64        `json:"trace_events,omitempty"`
	TraceLost      uint64        `json:"trace_lost,omitempty"`
	TraceOccupancy float64       `json:"trace_occupancy,omitempty"`
	Tenants        []TenantStats `json:"tenants"`
}

// Stats returns a consistent snapshot of the server counters and the
// per-tenant latency distributions.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for t := range s.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	st := Stats{
		Discipline:  s.q.disc.String(),
		Workers:     s.pool.Workers(),
		Queued:      s.q.Len(),
		Running:     s.running,
		Accepted:    s.accepted,
		Rejected:    s.rejected,
		Completed:   s.completed,
		Canceled:    s.canceled,
		Expired:     s.expired,
		Batches:     s.batches,
		BatchedJobs: s.batchedJobs,
		Withdrawn:   s.withdrawn,
	}
	occ := float64(s.q.Len()) / float64(s.q.cap)
	st.Load = s.emaAdm
	if occ > st.Load {
		st.Load = occ
	}
	type pair struct {
		t  string
		tc tenantCounts
	}
	pairs := make([]pair, 0, len(names))
	for _, t := range names {
		pairs = append(pairs, pair{t, *s.tenants[t]})
	}
	s.mu.Unlock()
	if s.tr != nil {
		st.TraceEvents = s.tr.TotalEvents()
		st.TraceLost = s.tr.Lost()
		if c := s.tr.Capacity(); c > 0 {
			st.TraceOccupancy = float64(s.tr.Surviving()) / float64(c)
		}
	}
	// Registry reads take the registry's own lock; do them outside ours.
	for _, p := range pairs {
		ts := TenantStats{
			Tenant:    p.t,
			Completed: p.tc.completed,
			Canceled:  p.tc.canceled,
			Rejected:  p.tc.rejected,
		}
		if rs := s.reg.Stats("serve:" + p.t); rs.Calls > 0 {
			ts.MeanSeconds = rs.Mean
			ts.P50Seconds = rs.P50
			ts.P99Seconds = rs.P99
		}
		if to := s.tenantObsOf(p.t); to != nil {
			if st.WindowSeconds == 0 {
				st.WindowSeconds = to.windows.Span().Seconds()
			}
			snap := to.windows.Snapshot()
			ts.WindowJobs = snap.Count
			ts.WindowP50Seconds = snap.Quantile(0.5)
			ts.WindowP99Seconds = snap.Quantile(0.99)
			if to.slo.Objective > 0 {
				ts.SLOSeconds = to.slo.Objective
				ts.BurnRate = to.slo.BurnRate(snap)
			}
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}

// Close drains the server: queued jobs are canceled with reason
// "shutdown", running jobs are canceled cooperatively and waited for, and
// an owned pool is closed. Close is idempotent; Submit fails afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// DrainAll, not a Pop loop: popping bills the WFQ virtual clock for
	// jobs that will never run and — under TrackService — inserts each into
	// the in-service set with no Done ever coming, leaking one map entry
	// per drained job.
	for _, it := range s.q.DrainAll() {
		s.finishCanceledLocked(it.Value.(*Job), "shutdown")
	}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			j.reason = "shutdown"
			j.token.Cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.ownPool {
		s.pool.Close()
	}
}
