// Package serve turns the algorithm library into a long-running
// multi-tenant service: a Server admits algorithm jobs (kernel, size,
// tenant, deadline) onto one shared native.Pool, with bounded admission
// queues, weighted fair scheduling across tenants, and cooperative
// cancellation threaded down to chunk granularity.
//
// The layering mirrors the paper's backend split: the pool's work-stealing
// scheduler balances *chunks* of one job across workers (the TBB-style
// plane the paper measures), while the serving layer schedules *jobs*
// across tenants on top of it. Job-level weighted fair queuing keeps a
// small tenant's latency bounded when a heavy tenant floods the queue —
// the property the ext-serve experiment measures against FIFO.
package serve

import "container/heap"

// Discipline selects the job-level queueing policy.
type Discipline int

const (
	// WFQ (the default) serves jobs by start-time weighted fair queuing
	// across tenants: each job gets a virtual finish time advanced by
	// cost/weight on its tenant's virtual lane, and the queue always
	// serves the smallest finish time. A tenant's share of service
	// converges to its weight regardless of how many jobs it keeps queued.
	WFQ Discipline = iota
	// FIFO serves jobs in strict arrival order regardless of tenant — the
	// baseline that lets one heavy tenant starve everyone behind it.
	FIFO
)

func (d Discipline) String() string {
	if d == WFQ {
		return "wfq"
	}
	return "fifo"
}

// ParseDiscipline maps a flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, bool) {
	switch s {
	case "fifo":
		return FIFO, true
	case "wfq":
		return WFQ, true
	}
	return FIFO, false
}

// Item is one queued entry: an opaque value with the tenant and cost that
// drive the fair-queuing clock.
type Item struct {
	// Tenant is the fair-queuing flow the item bills to.
	Tenant string
	// Cost is the service-time estimate in arbitrary units (the serving
	// layer uses the element count); it advances the tenant's virtual lane.
	Cost float64
	// Value is the caller's payload.
	Value any
}

// queued is Item plus its scheduling keys.
type queued struct {
	Item
	seq    uint64  // arrival order: FIFO key and deterministic tie-break
	start  float64 // virtual start time (WFQ)
	finish float64 // virtual finish time (WFQ): the dequeue key
	index  int     // heap position
}

// FairQueue is a bounded job queue under a FIFO or WFQ discipline. It is
// not safe for concurrent use — the Server serializes access under its own
// lock, and the discrete-event experiment drives it single-threaded.
type FairQueue struct {
	disc    Discipline
	cap     int
	seq     uint64
	virtual float64            // virtual clock: start time of the last pop
	lanes   map[string]float64 // per-tenant virtual finish of the last push
	weights map[string]float64
	h       queueHeap
}

// NewQueue returns an empty queue with the given discipline and capacity
// (capacity <= 0 means unbounded — the Server always passes a bound).
func NewQueue(d Discipline, capacity int) *FairQueue {
	return &FairQueue{
		disc:    d,
		cap:     capacity,
		lanes:   make(map[string]float64),
		weights: make(map[string]float64),
	}
}

// SetWeight fixes a tenant's fair-queuing weight (default 1). Larger
// weights earn proportionally more service under contention.
func (q *FairQueue) SetWeight(tenant string, w float64) {
	if w > 0 {
		q.weights[tenant] = w
	}
}

func (q *FairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// Len returns the number of queued items.
func (q *FairQueue) Len() int { return len(q.h) }

// Push enqueues it; false means the queue is at capacity and the item was
// rejected (the admission-control signal).
func (q *FairQueue) Push(it Item) bool {
	if q.cap > 0 && len(q.h) >= q.cap {
		return false
	}
	e := &queued{Item: it, seq: q.seq}
	q.seq++
	if q.disc == WFQ {
		// Start-time fair queuing: a lane that went idle rejoins at the
		// current virtual time instead of keeping banked credit.
		e.start = q.virtual
		if f := q.lanes[it.Tenant]; f > e.start {
			e.start = f
		}
		cost := it.Cost
		if cost <= 0 {
			cost = 1
		}
		e.finish = e.start + cost/q.weight(it.Tenant)
		q.lanes[it.Tenant] = e.finish
	}
	heap.Push(&q.h, e)
	return true
}

// Pop dequeues the next item under the discipline; ok=false when empty.
func (q *FairQueue) Pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	e := heap.Pop(&q.h).(*queued)
	if q.disc == WFQ && e.start > q.virtual {
		q.virtual = e.start
	}
	return e.Item, true
}

// Remove deletes the first item whose Value matches, returning whether one
// was found — the path a cancellation takes for a still-queued job.
func (q *FairQueue) Remove(match func(v any) bool) bool {
	for _, e := range q.h {
		if match(e.Value) {
			heap.Remove(&q.h, e.index)
			return true
		}
	}
	return false
}

// queueHeap orders by (finish, seq): virtual finish time under WFQ, pure
// arrival order under FIFO (where finish is always 0).
type queueHeap []*queued

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h queueHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *queueHeap) Push(x any) {
	e := x.(*queued)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *queueHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
