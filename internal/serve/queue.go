// Package serve turns the algorithm library into a long-running
// multi-tenant service: a Server admits algorithm jobs (kernel, size,
// tenant, deadline) onto one shared native.Pool, with bounded admission
// queues, weighted fair scheduling across tenants, and cooperative
// cancellation threaded down to chunk granularity.
//
// The layering mirrors the paper's backend split: the pool's work-stealing
// scheduler balances *chunks* of one job across workers (the TBB-style
// plane the paper measures), while the serving layer schedules *jobs*
// across tenants on top of it. Job-level weighted fair queuing keeps a
// small tenant's latency bounded when a heavy tenant floods the queue —
// the property the ext-serve experiment measures against FIFO.
package serve

import (
	"container/heap"
	"sort"
)

// Discipline selects the job-level queueing policy.
type Discipline int

const (
	// WFQ (the default) serves jobs by start-time weighted fair queuing
	// across tenants: each job gets a virtual finish time advanced by
	// cost/weight on its tenant's virtual lane, and the queue always
	// serves the smallest finish time. A tenant's share of service
	// converges to its weight regardless of how many jobs it keeps queued.
	WFQ Discipline = iota
	// FIFO serves jobs in strict arrival order regardless of tenant — the
	// baseline that lets one heavy tenant starve everyone behind it.
	FIFO
)

func (d Discipline) String() string {
	if d == WFQ {
		return "wfq"
	}
	return "fifo"
}

// ParseDiscipline maps a flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, bool) {
	switch s {
	case "fifo":
		return FIFO, true
	case "wfq":
		return WFQ, true
	}
	return FIFO, false
}

// Item is one queued entry: an opaque value with the tenant and cost that
// drive the fair-queuing clock.
type Item struct {
	// Tenant is the fair-queuing flow the item bills to.
	Tenant string
	// Cost is the service-time estimate in arbitrary units (the serving
	// layer uses the element count); it advances the tenant's virtual lane.
	Cost float64
	// Value is the caller's payload.
	Value any
}

// queued is Item plus its scheduling keys.
type queued struct {
	Item
	seq    uint64  // arrival order: FIFO key and deterministic tie-break
	start  float64 // virtual start time (WFQ)
	finish float64 // virtual finish time (WFQ): the dequeue key
	index  int     // heap position
}

// FairQueue is a bounded job queue under a FIFO or WFQ discipline. It is
// not safe for concurrent use — the Server serializes access under its own
// lock, and the discrete-event experiment drives it single-threaded.
type FairQueue struct {
	disc    Discipline
	cap     int
	seq     uint64
	virtual float64            // virtual clock: see Pop
	lanes   map[string]float64 // per-tenant virtual finish of the last push
	weights map[string]float64
	counts  map[string]int // queued items per tenant (quota enforcement)
	h       queueHeap

	// track enables the multi-slot virtual clock (TrackService). With one
	// concurrency slot the classic SFQ rule — advance the clock to the
	// start tag of each popped entry — gives the one-residual fairness
	// bound: a light tenant waits at most one in-flight heavy job. With D
	// slots that rule lets the clock race ahead through D consecutive pops
	// while the earliest-tagged job is still in service, so a tenant
	// arriving mid-burst gets a start tag up to D-1 service quanta in the
	// future and its earned lane debt is erased. Tracking keeps the clock
	// at the MINIMUM start tag among in-service entries (the SFQ(D) rule),
	// restoring the one-residual bound per slot; Done retires an entry
	// from the in-service set. Off by default so single-slot behavior is
	// bit-identical to the validated ext-serve model.
	track     bool
	inService map[any]float64 // payload value -> virtual start tag
}

// NewQueue returns an empty queue with the given discipline and capacity
// (capacity <= 0 means unbounded — the Server always passes a bound).
func NewQueue(d Discipline, capacity int) *FairQueue {
	return &FairQueue{
		disc:    d,
		cap:     capacity,
		lanes:   make(map[string]float64),
		weights: make(map[string]float64),
		counts:  make(map[string]int),
	}
}

// SetWeight fixes a tenant's fair-queuing weight (default 1). Larger
// weights earn proportionally more service under contention.
func (q *FairQueue) SetWeight(tenant string, w float64) {
	if w > 0 {
		q.weights[tenant] = w
	}
}

func (q *FairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// Len returns the number of queued items.
func (q *FairQueue) Len() int { return len(q.h) }

// TenantLen returns the number of queued items billed to tenant — the
// quantity per-tenant quotas bound.
func (q *FairQueue) TenantLen(tenant string) int { return q.counts[tenant] }

// uncount decrements a tenant's queued-item count on any removal path.
func (q *FairQueue) uncount(tenant string) {
	if q.counts[tenant] <= 1 {
		delete(q.counts, tenant)
	} else {
		q.counts[tenant]--
	}
}

// Push enqueues it; false means the queue is at capacity and the item was
// rejected (the admission-control signal).
func (q *FairQueue) Push(it Item) bool {
	if q.cap > 0 && len(q.h) >= q.cap {
		return false
	}
	e := &queued{Item: it, seq: q.seq}
	q.seq++
	if q.disc == WFQ {
		// Start-time fair queuing: a lane that went idle rejoins at the
		// current virtual time instead of keeping banked credit.
		e.start = q.virtual
		if f := q.lanes[it.Tenant]; f > e.start {
			e.start = f
		}
		cost := it.Cost
		if cost <= 0 {
			cost = 1
		}
		e.finish = e.start + cost/q.weight(it.Tenant)
		q.lanes[it.Tenant] = e.finish
	}
	heap.Push(&q.h, e)
	q.counts[it.Tenant]++
	return true
}

// Pop dequeues the next item under the discipline; ok=false when empty.
// Under WFQ the virtual clock advances to the popped entry's start tag —
// or, with service tracking on, to the minimum start tag still in service,
// which never exceeds the former (the clock stays monotone either way).
func (q *FairQueue) Pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	e := heap.Pop(&q.h).(*queued)
	q.uncount(e.Tenant)
	if q.disc == WFQ {
		q.noteService(e)
	}
	return e.Item, true
}

// TrackService switches the WFQ virtual clock to the multi-slot rule (see
// the FairQueue field docs). The Server enables it when MaxConcurrent > 1;
// callers that enable it must pair every Pop/TakeMatching dispatch with a
// Done when the item's service completes.
func (q *FairQueue) TrackService(on bool) {
	q.track = on
	if on && q.inService == nil {
		q.inService = make(map[any]float64)
	}
}

// Done retires a dispatched item's payload value from the in-service set.
// A no-op when tracking is off or the value is unknown.
func (q *FairQueue) Done(v any) {
	if q.track {
		delete(q.inService, v)
	}
}

// noteService folds a dispatched entry into the virtual clock.
func (q *FairQueue) noteService(e *queued) {
	if !q.track {
		if e.start > q.virtual {
			q.virtual = e.start
		}
		q.pruneLanes()
		return
	}
	q.inService[e.Value] = e.start
	min := e.start
	for _, st := range q.inService {
		if st < min {
			min = st
		}
	}
	if min > q.virtual {
		q.virtual = min
	}
	q.pruneLanes()
}

// pruneLanes drops idle lanes the virtual clock has passed. A lane whose
// tenant has nothing queued and whose banked finish tag is at or behind the
// clock is indistinguishable from an absent one — Push rejoins an absent
// lane at max(virtual, 0) = virtual, exactly what max(virtual, finish)
// yields when finish <= virtual — so deleting it changes no schedule. This
// bounds the lanes map under streaming workloads where transient tenants
// (one lane per short-lived stream or loadgen client) arrive forever; the
// sweep is amortized by only running once the map has clearly outgrown the
// set of tenants that still have items queued.
func (q *FairQueue) pruneLanes() {
	if len(q.lanes) <= 2*len(q.counts)+16 {
		return
	}
	for tenant, finish := range q.lanes {
		if q.counts[tenant] == 0 && finish <= q.virtual {
			delete(q.lanes, tenant)
		}
	}
}

// VirtualLag returns how far the busiest tenant lane has run ahead of the
// WFQ virtual clock — the backlog of earned-but-unserved virtual service.
// Near zero the queue is keeping up; growth means some tenant is queueing
// faster than its weight earns service. Always 0 under FIFO.
func (q *FairQueue) VirtualLag() float64 {
	if q.disc != WFQ {
		return 0
	}
	lag := 0.0
	for tenant, finish := range q.lanes {
		// An idle lane's banked finish tag is stale, not backlog.
		if q.counts[tenant] == 0 {
			continue
		}
		if d := finish - q.virtual; d > lag {
			lag = d
		}
	}
	return lag
}

// TakeMatching removes and returns up to max queued items satisfying
// match, in dequeue order — the batched small-job path uses it to coalesce
// same-tenant small jobs behind the entry Pop just selected. Each taken
// item counts as dispatched for the fair-queuing clock, exactly as if
// popped.
func (q *FairQueue) TakeMatching(max int, match func(it Item) bool) []Item {
	if max <= 0 || len(q.h) == 0 {
		return nil
	}
	picked := make([]*queued, 0, max)
	for _, e := range q.h {
		if match(e.Item) {
			picked = append(picked, e)
		}
	}
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].finish != picked[j].finish {
			return picked[i].finish < picked[j].finish
		}
		return picked[i].seq < picked[j].seq
	})
	if len(picked) > max {
		picked = picked[:max]
	}
	out := make([]Item, len(picked))
	for i, e := range picked {
		heap.Remove(&q.h, e.index)
		q.uncount(e.Tenant)
		out[i] = e.Item
		if q.disc == WFQ {
			q.noteService(e)
		}
	}
	return out
}

// TakeBack removes and returns up to max items from the BACK of the
// dispatch order — the largest virtual finish times, the jobs least likely
// to run soon — without touching the virtual clock or the in-service set:
// the items are leaving this queue, not being dispatched by it. The shard
// router migrates these to a less-loaded shard.
func (q *FairQueue) TakeBack(max int) []Item {
	if max <= 0 || len(q.h) == 0 {
		return nil
	}
	picked := make([]*queued, len(q.h))
	copy(picked, q.h)
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].finish != picked[j].finish {
			return picked[i].finish > picked[j].finish
		}
		return picked[i].seq > picked[j].seq
	})
	if len(picked) > max {
		picked = picked[:max]
	}
	out := make([]Item, len(picked))
	for i, e := range picked {
		heap.Remove(&q.h, e.index)
		q.uncount(e.Tenant)
		out[i] = e.Item
	}
	return out
}

// DrainAll empties the queue and returns every item in no particular
// order, WITHOUT advancing the virtual clock or registering anything in
// the in-service set — drained items are being discarded (shutdown), not
// dispatched. Using Pop for this leaks inService entries under
// TrackService (no paired Done ever comes) and mutates the clock for jobs
// that never run.
func (q *FairQueue) DrainAll() []Item {
	out := make([]Item, len(q.h))
	for i, e := range q.h {
		out[i] = e.Item
		q.h[i] = nil
	}
	q.h = q.h[:0]
	q.counts = make(map[string]int)
	return out
}

// Remove deletes the first item whose Value matches, returning whether one
// was found — the path a cancellation takes for a still-queued job.
func (q *FairQueue) Remove(match func(v any) bool) bool {
	for _, e := range q.h {
		if match(e.Value) {
			heap.Remove(&q.h, e.index)
			q.uncount(e.Tenant)
			return true
		}
	}
	return false
}

// queueHeap orders by (finish, seq): virtual finish time under WFQ, pure
// arrival order under FIFO (where finish is always 0).
type queueHeap []*queued

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h queueHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *queueHeap) Push(x any) {
	e := x.(*queued)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *queueHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
