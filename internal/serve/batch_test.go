package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// submitBlocker occupies the single concurrency slot long enough for small
// jobs to pile up behind it, so drainLocked sees a coalescible queue.
func submitBlocker(t testing.TB, s *Server, n int) *Job {
	t.Helper()
	j, err := s.Submit(Spec{Kernel: "sort", N: n, Tenant: "blocker"})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	return j
}

// TestBatchedDispatchCorrectness piles small same-tenant jobs behind a
// running blocker and checks they are dispatched in batches with every
// per-job checksum intact.
func TestBatchedDispatchCorrectness(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4, MaxConcurrent: 1, QueueCap: 128,
		SmallJobMax: 1 << 14, BatchMax: 8,
	})
	blocker := submitBlocker(t, s, 1<<19)
	const n = 1 << 10
	var jobs []*Job
	for i := 0; i < 32; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: n, Tenant: "small"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	waitJob(t, blocker)
	for i, j := range jobs {
		waitJob(t, j)
		info := s.Info(j)
		if info.State != "done" {
			t.Fatalf("job %d: state %s (%s), want done", i, info.State, info.Reason)
		}
		if want := ExpectedChecksum("reduce", n); info.Checksum != want {
			t.Fatalf("job %d: checksum %v, want %v", i, info.Checksum, want)
		}
	}
	st := s.Stats()
	if st.Batches == 0 || st.BatchedJobs < 8 {
		t.Fatalf("expected batched dispatch, got batches=%d batchedJobs=%d",
			st.Batches, st.BatchedJobs)
	}
}

// Batching must not cross tenants or the size threshold: a large job and a
// foreign tenant queued between small jobs run solo.
func TestBatchRespectsTenantAndSize(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4, MaxConcurrent: 1, QueueCap: 128,
		SmallJobMax: 1 << 10, BatchMax: 16,
	})
	blocker := submitBlocker(t, s, 1<<19)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, _ := s.Submit(Spec{Kernel: "reduce", N: 512, Tenant: "a"})
		jobs = append(jobs, j)
	}
	big, _ := s.Submit(Spec{Kernel: "reduce", N: 1 << 15, Tenant: "a"})
	other, _ := s.Submit(Spec{Kernel: "reduce", N: 512, Tenant: "b"})
	jobs = append(jobs, big, other)
	waitJob(t, blocker)
	for _, j := range jobs {
		waitJob(t, j)
		if info := s.Info(j); info.State != "done" {
			t.Fatalf("job %s: state %s, want done", j.ID(), info.State)
		}
	}
	st := s.Stats()
	// The six tenant-a small jobs batch (possibly split); big and tenant-b
	// small (alone at its dispatch) run solo.
	if st.BatchedJobs > 6 {
		t.Fatalf("batched %d jobs, only 6 were coalescible", st.BatchedJobs)
	}
	if st.Completed != int64(len(jobs))+1 {
		t.Fatalf("completed %d, want %d", st.Completed, len(jobs)+1)
	}
}

// Canceling a job that is queued inside a would-be batch, or already
// batched and waiting for its task to start, must finalize it as canceled
// without running it — and must not disturb its batch-mates.
func TestBatchedCancelSemantics(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4, MaxConcurrent: 1, QueueCap: 128,
		SmallJobMax: 1 << 12, BatchMax: 16,
	})
	blocker := submitBlocker(t, s, 1<<19)
	var jobs []*Job
	for i := 0; i < 16; i++ {
		j, err := s.Submit(Spec{Kernel: "scan", N: 1 << 10, Tenant: "small"})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		jobs = append(jobs, j)
	}
	// Cancel every third while still queued behind the blocker.
	for i := 0; i < len(jobs); i += 3 {
		if _, err := s.Cancel(jobs[i].ID()); err != nil {
			t.Fatalf("cancel: %v", err)
		}
	}
	waitJob(t, blocker)
	for i, j := range jobs {
		waitJob(t, j)
		info := s.Info(j)
		if i%3 == 0 {
			if info.State != "canceled" {
				t.Fatalf("job %d: state %s, want canceled", i, info.State)
			}
		} else if info.State != "done" {
			t.Fatalf("job %d: state %s (%s), want done", i, info.State, info.Reason)
		} else if want := ExpectedChecksum("scan", 1<<10); info.Checksum != want {
			t.Fatalf("job %d: checksum %v, want %v", i, info.Checksum, want)
		}
	}
}

// TestBatchedSubmitCancelStress is the -race target for the batched path:
// many clients flooding small same-tenant jobs with concurrent cancels and
// deadlines, batching enabled, multiple slots. Done checksums must always
// validate.
func TestBatchedSubmitCancelStress(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4, MaxConcurrent: 2, QueueCap: 64,
		SmallJobMax: 1 << 13, BatchMax: 8,
	})
	const clients = 8
	iters := 30
	if testing.Short() {
		iters = 8
	}
	var torn atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < iters; i++ {
				n := 1 << (8 + rng.Intn(5)) // 256 .. 4096: all below SmallJobMax
				spec := Spec{Kernel: "reduce", N: n, Tenant: []string{"a", "b"}[c%2]}
				if rng.Intn(5) == 0 {
					spec.Deadline = time.Duration(rng.Intn(2)) * time.Millisecond
				}
				j, err := s.Submit(spec)
				if err != nil {
					var sat *SaturatedError
					if errors.As(err, &sat) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				if rng.Intn(3) == 0 {
					if _, err := s.Cancel(j.ID()); err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
				}
				<-j.Done()
				info := s.Info(j)
				if info.State == "done" && info.Checksum != ExpectedChecksum("reduce", n) {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if v := torn.Load(); v != 0 {
		t.Fatalf("%d done jobs had torn checksums", v)
	}
}

// BenchmarkBatchedDispatch measures per-job overhead for a flood of small
// jobs with batching off vs on — the serve half of the dispatch
// amortization claim. Picked up by the CI bench-smoke step.
func BenchmarkBatchedDispatch(b *testing.B) {
	run := func(b *testing.B, smallMax int) {
		s := New(Config{
			Workers: 4, MaxConcurrent: 1, QueueCap: 4096,
			SmallJobMax: smallMax, BatchMax: 16,
		})
		defer s.Close()
		const jobs = 256
		const n = 1 << 12
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			// A short blocker lets the queue fill so dispatch decisions — not
			// the blocker — are what the timed region measures.
			b.StopTimer()
			hold := submitBlocker(b, s, 1<<15)
			batch := make([]*Job, 0, jobs)
			for i := 0; i < jobs; i++ {
				j, err := s.Submit(Spec{Kernel: "reduce", N: n, Tenant: "t"})
				if err != nil {
					b.Fatalf("submit: %v", err)
				}
				batch = append(batch, j)
			}
			<-hold.Done()
			b.StartTimer()
			for _, j := range batch {
				<-j.Done()
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
	}
	b.Run("individual", func(b *testing.B) { run(b, 0) })
	b.Run("batched", func(b *testing.B) { run(b, 1<<14) })
}
