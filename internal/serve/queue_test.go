package serve

import (
	"fmt"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := NewQueue(FIFO, 0)
	for i := 0; i < 10; i++ {
		q.Push(Item{Tenant: fmt.Sprintf("t%d", i%3), Cost: float64(100 - i), Value: i})
	}
	for i := 0; i < 10; i++ {
		it, ok := q.Pop()
		if !ok || it.Value.(int) != i {
			t.Fatalf("pop %d: got %v ok=%v, want %d", i, it.Value, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestCapacityRejects(t *testing.T) {
	q := NewQueue(WFQ, 3)
	for i := 0; i < 3; i++ {
		if !q.Push(Item{Tenant: "a", Cost: 1, Value: i}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.Push(Item{Tenant: "a", Cost: 1, Value: 99}) {
		t.Fatal("push above capacity accepted")
	}
	q.Pop()
	if !q.Push(Item{Tenant: "a", Cost: 1, Value: 100}) {
		t.Fatal("push rejected after a slot freed")
	}
}

// TestWFQInterleavesTenants: a heavy tenant with a long backlog of large
// jobs must not starve a light tenant — under WFQ the light tenant's small
// job overtakes most of the backlog, while FIFO serves it last.
func TestWFQInterleavesTenants(t *testing.T) {
	for _, d := range []Discipline{WFQ, FIFO} {
		q := NewQueue(d, 0)
		for i := 0; i < 8; i++ {
			q.Push(Item{Tenant: "heavy", Cost: 1000, Value: fmt.Sprintf("h%d", i)})
		}
		q.Push(Item{Tenant: "light", Cost: 10, Value: "light"})
		pos := -1
		for i := 0; ; i++ {
			it, ok := q.Pop()
			if !ok {
				break
			}
			if it.Value == "light" {
				pos = i
			}
		}
		switch d {
		case WFQ:
			// One heavy job is already ahead on the virtual clock when the
			// light job arrives; the light job must run right after it.
			if pos > 1 {
				t.Errorf("WFQ served the light job at position %d, want <= 1", pos)
			}
		case FIFO:
			if pos != 8 {
				t.Errorf("FIFO served the light job at position %d, want 8 (last)", pos)
			}
		}
	}
}

// TestWFQWeightedShare: with a 3:1 weight ratio and equal-cost backlogs,
// the service order interleaves roughly 3 jobs of the heavy-weight tenant
// per 1 of the other.
func TestWFQWeightedShare(t *testing.T) {
	q := NewQueue(WFQ, 0)
	q.SetWeight("gold", 3)
	q.SetWeight("bronze", 1)
	for i := 0; i < 12; i++ {
		q.Push(Item{Tenant: "gold", Cost: 1, Value: "g"})
	}
	for i := 0; i < 12; i++ {
		q.Push(Item{Tenant: "bronze", Cost: 1, Value: "b"})
	}
	gold := 0
	for i := 0; i < 8; i++ {
		it, _ := q.Pop()
		if it.Value == "g" {
			gold++
		}
	}
	// In the first 8 pops a 3:1 split predicts 6 gold; allow one off.
	if gold < 5 || gold > 7 {
		t.Fatalf("gold got %d of the first 8 slots, want ~6 at weight 3:1", gold)
	}
}

// TestWFQIdleLaneNoCredit: a tenant that sat idle must not bank virtual
// time and then burst ahead of an active tenant's queued work.
func TestWFQIdleLaneNoCredit(t *testing.T) {
	q := NewQueue(WFQ, 0)
	// Active tenant advances the virtual clock far.
	for i := 0; i < 50; i++ {
		q.Push(Item{Tenant: "active", Cost: 100, Value: "a"})
		q.Pop()
	}
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "active", Cost: 100, Value: "a"})
	}
	// Idle tenant shows up now with a burst. Its lane starts at the
	// current virtual time — not at the zero it would have banked from —
	// so it interleaves 1:1 with the active tenant instead of draining its
	// whole burst first.
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "idle", Cost: 100, Value: "i"})
	}
	idleRun := 0
	for i := 0; i < 4; i++ {
		it, _ := q.Pop()
		if it.Value == "i" {
			idleRun++
		}
	}
	if idleRun > 2 {
		t.Fatalf("idle tenant took %d of the first 4 slots; banked credit leaked", idleRun)
	}
}

func TestRemove(t *testing.T) {
	q := NewQueue(WFQ, 0)
	for i := 0; i < 5; i++ {
		q.Push(Item{Tenant: "a", Cost: 1, Value: i})
	}
	if !q.Remove(func(v any) bool { return v.(int) == 2 }) {
		t.Fatal("Remove did not find a queued item")
	}
	if q.Remove(func(v any) bool { return v.(int) == 2 }) {
		t.Fatal("Remove found an already-removed item")
	}
	seen := map[int]bool{}
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		seen[it.Value.(int)] = true
	}
	if len(seen) != 4 || seen[2] {
		t.Fatalf("after Remove, drained %v", seen)
	}
}

func TestParseDiscipline(t *testing.T) {
	if d, ok := ParseDiscipline("wfq"); !ok || d != WFQ {
		t.Fatal("wfq did not parse")
	}
	if d, ok := ParseDiscipline("fifo"); !ok || d != FIFO {
		t.Fatal("fifo did not parse")
	}
	if _, ok := ParseDiscipline("lifo"); ok {
		t.Fatal("lifo parsed")
	}
}
