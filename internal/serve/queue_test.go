package serve

import (
	"fmt"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := NewQueue(FIFO, 0)
	for i := 0; i < 10; i++ {
		q.Push(Item{Tenant: fmt.Sprintf("t%d", i%3), Cost: float64(100 - i), Value: i})
	}
	for i := 0; i < 10; i++ {
		it, ok := q.Pop()
		if !ok || it.Value.(int) != i {
			t.Fatalf("pop %d: got %v ok=%v, want %d", i, it.Value, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestCapacityRejects(t *testing.T) {
	q := NewQueue(WFQ, 3)
	for i := 0; i < 3; i++ {
		if !q.Push(Item{Tenant: "a", Cost: 1, Value: i}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.Push(Item{Tenant: "a", Cost: 1, Value: 99}) {
		t.Fatal("push above capacity accepted")
	}
	q.Pop()
	if !q.Push(Item{Tenant: "a", Cost: 1, Value: 100}) {
		t.Fatal("push rejected after a slot freed")
	}
}

// TestWFQInterleavesTenants: a heavy tenant with a long backlog of large
// jobs must not starve a light tenant — under WFQ the light tenant's small
// job overtakes most of the backlog, while FIFO serves it last.
func TestWFQInterleavesTenants(t *testing.T) {
	for _, d := range []Discipline{WFQ, FIFO} {
		q := NewQueue(d, 0)
		for i := 0; i < 8; i++ {
			q.Push(Item{Tenant: "heavy", Cost: 1000, Value: fmt.Sprintf("h%d", i)})
		}
		q.Push(Item{Tenant: "light", Cost: 10, Value: "light"})
		pos := -1
		for i := 0; ; i++ {
			it, ok := q.Pop()
			if !ok {
				break
			}
			if it.Value == "light" {
				pos = i
			}
		}
		switch d {
		case WFQ:
			// One heavy job is already ahead on the virtual clock when the
			// light job arrives; the light job must run right after it.
			if pos > 1 {
				t.Errorf("WFQ served the light job at position %d, want <= 1", pos)
			}
		case FIFO:
			if pos != 8 {
				t.Errorf("FIFO served the light job at position %d, want 8 (last)", pos)
			}
		}
	}
}

// TestWFQWeightedShare: with a 3:1 weight ratio and equal-cost backlogs,
// the service order interleaves roughly 3 jobs of the heavy-weight tenant
// per 1 of the other.
func TestWFQWeightedShare(t *testing.T) {
	q := NewQueue(WFQ, 0)
	q.SetWeight("gold", 3)
	q.SetWeight("bronze", 1)
	for i := 0; i < 12; i++ {
		q.Push(Item{Tenant: "gold", Cost: 1, Value: "g"})
	}
	for i := 0; i < 12; i++ {
		q.Push(Item{Tenant: "bronze", Cost: 1, Value: "b"})
	}
	gold := 0
	for i := 0; i < 8; i++ {
		it, _ := q.Pop()
		if it.Value == "g" {
			gold++
		}
	}
	// In the first 8 pops a 3:1 split predicts 6 gold; allow one off.
	if gold < 5 || gold > 7 {
		t.Fatalf("gold got %d of the first 8 slots, want ~6 at weight 3:1", gold)
	}
}

// TestWFQIdleLaneNoCredit: a tenant that sat idle must not bank virtual
// time and then burst ahead of an active tenant's queued work.
func TestWFQIdleLaneNoCredit(t *testing.T) {
	q := NewQueue(WFQ, 0)
	// Active tenant advances the virtual clock far.
	for i := 0; i < 50; i++ {
		q.Push(Item{Tenant: "active", Cost: 100, Value: "a"})
		q.Pop()
	}
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "active", Cost: 100, Value: "a"})
	}
	// Idle tenant shows up now with a burst. Its lane starts at the
	// current virtual time — not at the zero it would have banked from —
	// so it interleaves 1:1 with the active tenant instead of draining its
	// whole burst first.
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "idle", Cost: 100, Value: "i"})
	}
	idleRun := 0
	for i := 0; i < 4; i++ {
		it, _ := q.Pop()
		if it.Value == "i" {
			idleRun++
		}
	}
	if idleRun > 2 {
		t.Fatalf("idle tenant took %d of the first 4 slots; banked credit leaked", idleRun)
	}
}

// TestWFQMultiSlotClockBound pins the satellite fix for the multi-slot
// weakness: with D concurrency slots, popping D entries back-to-back while
// the first is still in service must NOT advance the virtual clock past the
// earliest in-service start tag. Otherwise a tenant arriving mid-burst is
// tagged up to D-1 service quanta in the future and the one-residual
// fairness bound degrades to D residuals.
//
// Scenario (deterministic): heavy backlogs 8 unit-cost jobs; the server
// dispatches a burst of D=4 of them (no completions yet); light then
// arrives with 4 unit-cost jobs. With the tracked (min-in-service) clock
// the light tenant's jobs are tagged from virtual time 0 and all 4 are
// served before any further heavy job. With the untracked single-slot rule
// the clock has raced to 3 and light interleaves ~1:1 with heavy — which
// the second half of the test demonstrates as the contrast.
func TestWFQMultiSlotClockBound(t *testing.T) {
	serveOrder := func(track bool) []string {
		q := NewQueue(WFQ, 0)
		q.TrackService(track)
		for i := 0; i < 8; i++ {
			q.Push(Item{Tenant: "heavy", Cost: 1, Value: fmt.Sprintf("h%d", i)})
		}
		// Burst-dispatch D=4 heavy jobs; none completes yet.
		for i := 0; i < 4; i++ {
			if it, ok := q.Pop(); !ok || it.Tenant != "heavy" {
				t.Fatalf("burst pop %d: got %v", i, it)
			}
		}
		for i := 0; i < 4; i++ {
			q.Push(Item{Tenant: "light", Cost: 1, Value: fmt.Sprintf("l%d", i)})
		}
		var order []string
		for {
			it, ok := q.Pop()
			if !ok {
				return order
			}
			order = append(order, it.Tenant)
		}
	}

	tracked := serveOrder(true)
	for i := 0; i < 4; i++ {
		if tracked[i] != "light" {
			t.Fatalf("tracked clock: pop %d after burst was %s, want light (order %v)",
				i, tracked[i], tracked)
		}
	}
	untracked := serveOrder(false)
	lightFirst4 := 0
	for i := 0; i < 4; i++ {
		if untracked[i] == "light" {
			lightFirst4++
		}
	}
	// The untracked rule erases light's claim on the burst window: it gets
	// at most half of the next D slots. If this starts passing with 4, the
	// single-slot rule changed and the tracked mode is redundant.
	if lightFirst4 > 2 {
		t.Fatalf("untracked clock unexpectedly gave light %d of 4 post-burst slots (order %v)",
			lightFirst4, untracked)
	}
}

// TestWFQTrackedSingleSlotIdentical: with one slot (every Pop followed by
// Done before the next), the tracked clock must reproduce the untracked
// service order exactly — the property that keeps the validated ext-serve
// single-slot behavior bit-identical.
func TestWFQTrackedSingleSlotIdentical(t *testing.T) {
	runSeq := func(track bool) []any {
		q := NewQueue(WFQ, 0)
		q.TrackService(track)
		q.SetWeight("a", 2)
		push := func(tenant string, cost float64, v any) {
			q.Push(Item{Tenant: tenant, Cost: cost, Value: v})
		}
		var order []any
		step := func() {
			if it, ok := q.Pop(); ok {
				order = append(order, it.Value)
				q.Done(it.Value)
			}
		}
		// Mixed arrivals interleaved with single-slot service.
		for i := 0; i < 6; i++ {
			push("a", float64(1+i%3), fmt.Sprintf("a%d", i))
		}
		step()
		step()
		for i := 0; i < 6; i++ {
			push("b", float64(3-i%3), fmt.Sprintf("b%d", i))
		}
		for q.Len() > 0 {
			step()
		}
		return order
	}
	got, want := runSeq(true), runSeq(false)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tracked single-slot order %v differs from untracked %v", got, want)
	}
}

// TestWFQDoneAdvancesClock: retiring in-service entries lets the clock
// catch up on the next dispatch — without Done, a completed job's stale
// start tag would pin the minimum (and the clock) at its start forever.
func TestWFQDoneAdvancesClock(t *testing.T) {
	q := NewQueue(WFQ, 0)
	q.TrackService(true)
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "a", Cost: 1, Value: fmt.Sprintf("a%d", i)})
	}
	// Dispatch a0 (start 0) and a1 (start 1); both stay in service, so the
	// clock holds at the minimum in-service start.
	q.Pop()
	q.Pop()
	if q.virtual != 0 {
		t.Fatalf("clock %v with a0 (start 0) in service, want 0", q.virtual)
	}
	// a0 completes; dispatching a2 (start 2) now sees min(1, 2) = 1.
	q.Done("a0")
	q.Pop()
	if q.virtual != 1 {
		t.Fatalf("clock %v after retiring a0 and dispatching a2, want 1", q.virtual)
	}
	// Retire everything; dispatching a3 (start 3) advances the clock fully.
	q.Done("a1")
	q.Done("a2")
	q.Pop()
	if q.virtual != 3 {
		t.Fatalf("clock %v after retiring the burst, want 3", q.virtual)
	}
}

// TestTakeMatchingChargesClock: items coalesced via TakeMatching must count
// as dispatched on the WFQ clock exactly like popped items, so batching a
// tenant's small jobs doesn't hand it free service.
func TestTakeMatchingChargesClock(t *testing.T) {
	q := NewQueue(WFQ, 0)
	for i := 0; i < 4; i++ {
		q.Push(Item{Tenant: "a", Cost: 1, Value: fmt.Sprintf("a%d", i)})
	}
	// Dispatch a0, then coalesce a1..a3 in one TakeMatching.
	if it, _ := q.Pop(); it.Value != "a0" {
		t.Fatalf("pop got %v", it.Value)
	}
	taken := q.TakeMatching(8, func(it Item) bool { return it.Tenant == "a" })
	if len(taken) != 3 || taken[0].Value != "a1" || taken[2].Value != "a3" {
		t.Fatalf("TakeMatching returned %v", taken)
	}
	// Tenant b arriving now starts at the clock advanced by the batch, not
	// at 0: its unit job finishes at virtual 4, after a's lane at 4 ties on
	// seq. A fresh a job must NOT precede it by more than the lane rule.
	q.Push(Item{Tenant: "a", Cost: 1, Value: "a4"})
	q.Push(Item{Tenant: "b", Cost: 1, Value: "b0"})
	if it, _ := q.Pop(); it.Value != "b0" {
		t.Fatalf("pop after batch got %v, want b0 (batch must charge a's lane)", it.Value)
	}
}

func TestRemove(t *testing.T) {
	q := NewQueue(WFQ, 0)
	for i := 0; i < 5; i++ {
		q.Push(Item{Tenant: "a", Cost: 1, Value: i})
	}
	if !q.Remove(func(v any) bool { return v.(int) == 2 }) {
		t.Fatal("Remove did not find a queued item")
	}
	if q.Remove(func(v any) bool { return v.(int) == 2 }) {
		t.Fatal("Remove found an already-removed item")
	}
	seen := map[int]bool{}
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		seen[it.Value.(int)] = true
	}
	if len(seen) != 4 || seen[2] {
		t.Fatalf("after Remove, drained %v", seen)
	}
}

func TestParseDiscipline(t *testing.T) {
	if d, ok := ParseDiscipline("wfq"); !ok || d != WFQ {
		t.Fatal("wfq did not parse")
	}
	if d, ok := ParseDiscipline("fifo"); !ok || d != FIFO {
		t.Fatal("fifo did not parse")
	}
	if _, ok := ParseDiscipline("lifo"); ok {
		t.Fatal("lifo parsed")
	}
}
