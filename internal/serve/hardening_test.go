package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRetainDoneBoundsJobsMap is the regression test for the unbounded
// finished-job map: a daemon that has served 10x RetainDone jobs must hold
// at most RetainDone terminal records, with the oldest evicted first and
// Get on an evicted ID reporting not-found — the documented
// QueueCap + MaxConcurrent + RetainDone memory bound.
func TestRetainDoneBoundsJobsMap(t *testing.T) {
	const retain = 8
	s := newTestServer(t, Config{RetainDone: retain, QueueCap: 128})
	var ids []string
	for i := 0; i < 10*retain; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 8})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitJob(t, j)
		ids = append(ids, j.ID())
	}
	s.mu.Lock()
	live := len(s.jobs)
	s.mu.Unlock()
	if live > retain {
		t.Fatalf("jobs map holds %d records after %d jobs, want <= %d", live, len(ids), retain)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatalf("oldest job %s still queryable after eviction", ids[0])
	}
	if _, ok := s.Get(ids[len(ids)-1]); !ok {
		t.Fatalf("newest job %s evicted", ids[len(ids)-1])
	}
}

// TestRetainDoneNeverEvictsLiveJobs: queued and running jobs stay
// queryable no matter how many terminal records cycle through the ring.
func TestRetainDoneNeverEvictsLiveJobs(t *testing.T) {
	s := newTestServer(t, Config{RetainDone: 1, QueueCap: 16, MaxConcurrent: 1})
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Churn terminal records past the ring size via cancellations.
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(queued.ID()); !ok {
		t.Fatal("queued job evicted by terminal churn")
	}
	if _, ok := s.Get(blocker.ID()); !ok {
		t.Fatal("running job evicted by terminal churn")
	}
	waitJob(t, blocker)
	waitJob(t, queued)
}

// TestCloseDrainsWithoutServiceClockLeak is the regression test for the
// shutdown leak: under TrackService (MaxConcurrent > 1), draining the
// queue through Pop inserted every never-run job into the in-service map
// with no paired Done, and advanced the virtual clock for jobs that never
// ran. After Close both must be clean.
func TestCloseDrainsWithoutServiceClockLeak(t *testing.T) {
	s := New(Config{Workers: 4, MaxConcurrent: 2, QueueCap: 32})
	for i := 0; i < 12; i++ {
		if _, err := s.Submit(Spec{Kernel: "sort", N: 1 << 21, Tenant: fmt.Sprintf("t%d", i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	virtualBefore := s.q.virtual
	s.mu.Unlock()
	s.Close()
	if n := len(s.q.inService); n != 0 {
		t.Fatalf("inService holds %d entries after Close, want 0", n)
	}
	// Running jobs legitimately advanced the clock before Close was called;
	// the drained backlog must not have advanced it further: every queued
	// entry's start tag is >= the pre-Close clock, so any advance here could
	// only come from billing never-run jobs.
	if s.q.virtual != virtualBefore {
		t.Fatalf("virtual clock moved %v -> %v during shutdown drain", virtualBefore, s.q.virtual)
	}
}

// TestRetryAfterClamped is the regression test for the uncapped
// Retry-After hint: with a service-time EMA inflated by one slow job and a
// deep backlog, the hint must still be clamped to RetryAfterMax.
func TestRetryAfterClamped(t *testing.T) {
	for _, tc := range []struct {
		name string
		max  time.Duration
		want time.Duration
	}{
		{"default", 0, 30 * time.Second},
		{"custom", 100 * time.Millisecond, 100 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, Config{QueueCap: 4, MaxConcurrent: 1, RetryAfterMax: tc.max})
			// Fill the slot and the queue with slow jobs.
			for i := 0; i < 5; i++ {
				if _, err := s.Submit(Spec{Kernel: "sort", N: 1 << 19}); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}
			// One pathologically slow observed job: an unclamped hint would
			// quote hours for this backlog.
			s.mu.Lock()
			s.emaRun = 3600
			s.mu.Unlock()
			_, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 10})
			var sat *SaturatedError
			if !errors.As(err, &sat) {
				t.Fatalf("submit on full queue: %v, want SaturatedError", err)
			}
			if sat.RetryAfter <= 0 || sat.RetryAfter > tc.want {
				t.Fatalf("RetryAfter = %v, want in (0, %v]", sat.RetryAfter, tc.want)
			}
		})
	}
}

// TestTenantQuota: a tenant at its queued-job quota is rejected while the
// global queue still has room and other tenants keep flowing.
func TestTenantQuota(t *testing.T) {
	s := newTestServer(t, Config{
		QueueCap:      32,
		MaxConcurrent: 1,
		TenantQuota:   2,
		TenantQuotas:  map[string]int{"vip": 4},
	})
	// Blocker occupies the slot so submissions queue.
	if _, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20, Tenant: "block"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 18, Tenant: "flood"}); err != nil {
			t.Fatalf("flood submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 18, Tenant: "flood"})
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("over-quota submit: %v, want SaturatedError", err)
	}
	// Another tenant is unaffected, and the per-tenant override holds.
	if _, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 18, Tenant: "calm"}); err != nil {
		t.Fatalf("calm tenant rejected: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 18, Tenant: "vip"}); err != nil {
			t.Fatalf("vip submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(Spec{Kernel: "reduce", N: 1 << 18, Tenant: "vip"}); !errors.As(err, &sat) {
		t.Fatalf("vip over-quota submit: %v, want SaturatedError", err)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}

// TestWithdrawQueued: withdrawn jobs leave the queue, the jobs map, and
// the tenant counters untouched, carrying reason "migrated" — and the
// fair-queue state stays clean enough that the server keeps serving.
func TestWithdrawQueued(t *testing.T) {
	s := newTestServer(t, Config{QueueCap: 16, MaxConcurrent: 2})
	blocker, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Spec{Kernel: "sort", N: 1 << 20, Tenant: "a"})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	got := s.WithdrawQueued(2)
	if len(got) != 2 {
		t.Fatalf("withdrew %d jobs, want 2", len(got))
	}
	for _, j := range got {
		select {
		case <-j.Done():
		default:
			t.Fatalf("withdrawn job %s not terminal", j.ID())
		}
		if info := s.Info(j); info.State != "canceled" || info.Reason != "migrated" {
			t.Fatalf("withdrawn job %s: %s/%s", j.ID(), info.State, info.Reason)
		}
		if _, ok := s.Get(j.ID()); ok {
			t.Fatalf("withdrawn job %s still in the jobs map", j.ID())
		}
		if j.Spec().Kernel != "sort" || j.Spec().Tenant != "a" {
			t.Fatalf("withdrawn spec %+v", j.Spec())
		}
	}
	st := s.Stats()
	if st.Withdrawn != 2 {
		t.Fatalf("withdrawn counter = %d, want 2", st.Withdrawn)
	}
	if st.Canceled != 0 {
		t.Fatalf("withdrawals billed as cancels: canceled = %d", st.Canceled)
	}
	waitJob(t, blocker)
	for _, j := range queued {
		waitJob(t, j)
	}
	if n := len(s.q.inService); n != 0 {
		t.Fatalf("inService holds %d entries after drain", n)
	}
}
