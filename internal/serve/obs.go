package serve

// Serving-tier observability: the Server's bridge into internal/obs.
//
// Three strands, all optional and all nil-safe:
//   - Metrics (Config.Metrics): queue/running/load gauges, admission
//     counters, per-tenant latency histograms, and windowed-latency
//     families rendered by /metrics. Hot-path updates are atomic
//     histogram observations; everything derivable from existing locked
//     state is exported as pull-time funcs so the job path pays nothing.
//   - Windows: per-tenant rolling-window latency histograms backing the
//     windowed quantiles in /stats and the SLO burn-rate gauges. Always
//     on (the windows are a few KB per tenant) so /stats reflects current
//     load even when no metrics registry is configured.
//   - Spans (Config.Spans): terminal job lifecycle spans retained in a
//     bounded ring for /spans and the Chrome-trace export.
//
// Lock order: Server.mu > obsMu > (windows' own lock). Registry
// registration never runs under Server.mu — tenant instruments are
// created in ensureTenantObs on the submit path before the server lock is
// taken — and obs.Registry evaluates pull-time closures without its own
// lock held, so the GaugeFunc closures below may take Server.mu freely.

import (
	"time"

	"pstlbench/internal/obs"
)

// tenantObs is the per-tenant observability state: cumulative histograms
// (nil without a metrics registry) plus the rolling latency windows.
type tenantObs struct {
	lat, wait, exec *obs.Histogram
	windows         *obs.Windows
	slo             obs.SLO
}

// initObs wires the observability strands at construction time.
func (s *Server) initObs(cfg Config) {
	s.metrics = cfg.Metrics
	s.mlabels = cfg.MetricsLabels
	s.spans = cfg.Spans
	s.tenantObsM = make(map[string]*tenantObs)
	s.sloObjective = cfg.SLOObjective
	s.sloObjectives = cfg.SLOObjectives
	s.sloTarget = cfg.SLOTarget
	if s.sloTarget <= 0 || s.sloTarget >= 1 {
		s.sloTarget = 0.99
	}
	s.winCfg = obs.WindowConfig{
		Width: cfg.WindowWidth,
		Count: cfg.WindowCount,
		Now:   cfg.windowNow,
	}

	m := s.metrics
	if m == nil {
		return
	}
	l := s.mlabels
	m.GaugeFunc("pstld_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(s.Queued()) }, l...)
	m.GaugeFunc("pstld_queue_cap", "Admission queue capacity.",
		func() float64 { return float64(s.q.cap) }, l...)
	m.GaugeFunc("pstld_running", "Jobs occupying concurrency slots.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.running) }, l...)
	m.GaugeFunc("pstld_load", "Admission pressure in [0,~1] (see Server.Load).",
		s.Load, l...)
	m.GaugeFunc("pstld_admission_ema", "EMA of queue occupancy sampled at admission.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.emaAdm }, l...)
	m.GaugeFunc("pstld_wfq_virtual_lag",
		"Largest tenant-lane lead over the WFQ virtual clock (virtual service units).",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.q.VirtualLag() }, l...)
	ctr := func(name, help string, f func() int64) {
		m.CounterFunc(name, help, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(f())
		}, l...)
	}
	ctr("pstld_jobs_accepted_total", "Jobs admitted past the queue bound.", func() int64 { return s.accepted })
	ctr("pstld_jobs_rejected_total", "Submissions rejected by admission control.", func() int64 { return s.rejected })
	ctr("pstld_jobs_completed_total", "Jobs finished with a result.", func() int64 { return s.completed })
	ctr("pstld_jobs_canceled_total", "Jobs canceled (client, deadline, shutdown).", func() int64 { return s.canceled })
	ctr("pstld_jobs_expired_total", "Jobs canceled by their deadline.", func() int64 { return s.expired })
	ctr("pstld_batches_total", "Batched small-job dispatches.", func() int64 { return s.batches })
	ctr("pstld_batched_jobs_total", "Jobs carried inside batches.", func() int64 { return s.batchedJobs })
	ctr("pstld_jobs_withdrawn_total", "Queued jobs withdrawn for migration.", func() int64 { return s.withdrawn })
	s.batchHist = m.Histogram("pstld_batch_jobs",
		"Jobs coalesced per batched dispatch.", obs.SizeBuckets, l...)
	if s.tr != nil {
		m.CounterFunc("pstld_trace_events_total", "Events recorded across trace rings (evicted included).",
			func() float64 { return float64(s.tr.TotalEvents()) }, l...)
		m.CounterFunc("pstld_trace_lost_events_total", "Events evicted from full trace rings.",
			func() float64 { return float64(s.tr.Lost()) }, l...)
		m.GaugeFunc("pstld_trace_ring_occupancy", "Fraction of trace ring capacity in use.",
			func() float64 {
				if c := s.tr.Capacity(); c > 0 {
					return float64(s.tr.Surviving()) / float64(c)
				}
				return 0
			}, l...)
	}
}

// sloFor returns tenant's latency objective (0 disables).
func (s *Server) sloFor(tenant string) time.Duration {
	if d, ok := s.sloObjectives[tenant]; ok {
		return d
	}
	return s.sloObjective
}

// ensureTenantObs creates the tenant's windows and (when a registry is
// configured) its metric instruments. Called on the submit path BEFORE the
// server lock so registration never nests inside Server.mu; one map hit
// after the first call.
func (s *Server) ensureTenantObs(tenant string) *tenantObs {
	s.obsMu.Lock()
	if to, ok := s.tenantObsM[tenant]; ok {
		s.obsMu.Unlock()
		return to
	}
	to := &tenantObs{
		windows: obs.NewWindows(s.winCfg),
		slo:     obs.SLO{Objective: s.sloFor(tenant).Seconds(), Target: s.sloTarget},
	}
	s.tenantObsM[tenant] = to
	s.obsMu.Unlock()

	if m := s.metrics; m != nil {
		l := append(append([]string(nil), s.mlabels...), "tenant", tenant)
		to.lat = m.Histogram("pstld_job_latency_seconds",
			"End-to-end latency of completed jobs (cumulative).", obs.LatencyBuckets, l...)
		to.wait = m.Histogram("pstld_queue_wait_seconds",
			"Admission-to-start queue wait of completed jobs.", obs.LatencyBuckets, l...)
		to.exec = m.Histogram("pstld_execute_seconds",
			"Start-to-finish execution time of completed jobs.", obs.LatencyBuckets, l...)
		w := to.windows
		m.HistogramFunc("pstld_window_latency_seconds",
			"End-to-end latency over the rolling window (merged at scrape).",
			w.Snapshot, l...)
		if to.slo.Objective > 0 {
			slo := to.slo
			m.GaugeFunc("pstld_slo_burn_rate",
				"Error-budget burn rate over the rolling window (1 = on budget).",
				func() float64 { return slo.BurnRate(w.Snapshot()) }, l...)
		}
	}
	return to
}

// tenantObsOf returns the tenant's obs state without creating it — the
// finish path (under Server.mu) reads what the submit path ensured.
func (s *Server) tenantObsOf(tenant string) *tenantObs {
	s.obsMu.Lock()
	to := s.tenantObsM[tenant]
	s.obsMu.Unlock()
	return to
}

// observeDone records one completed job's latency split into the tenant's
// cumulative histograms and rolling windows. Called with Server.mu held;
// every update is an atomic or short-mutex observation, no allocation.
func (s *Server) observeDone(tenant string, total, wait, exec float64) {
	to := s.tenantObsOf(tenant)
	if to == nil {
		return
	}
	to.lat.Observe(total)
	to.wait.Observe(wait)
	to.exec.Observe(exec)
	to.windows.Observe(total)
}

// markTerminal stamps the span's terminal phase from the job's final state
// and retains it in the span log.
func (s *Server) markTerminal(j *Job, atNS int64) {
	sp := j.spec.Span
	if sp == nil {
		return
	}
	switch {
	case j.state == StateDone:
		sp.MarkAt(obs.PhaseCompleted, atNS)
	case j.reason == "deadline":
		sp.MarkAt(obs.PhaseFailed, atNS)
	default:
		sp.MarkAt(obs.PhaseCanceled, atNS)
	}
	s.spans.Add(sp)
}

// SpanLog returns the server's terminal-span ring (nil when disabled).
func (s *Server) SpanLog() *obs.SpanLog { return s.spans }
