package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pstlbench/internal/machine"
)

func TestCacheLevelClassification(t *testing.T) {
	m := machine.MachA() // 1 MiB L2/core, 22 MiB LLC/socket
	cases := []struct {
		ws    int64
		cores int
		want  Level
	}{
		{1 << 10, 1, LevelL2},
		{1 << 20, 1, LevelL2},     // exactly one core's L2
		{1<<20 + 1, 1, LevelLLC},  // just over
		{32 << 20, 32, LevelL2},   // 32 MiB across 32 cores' L2
		{40 << 20, 32, LevelLLC},  // fits 2 sockets' LLC (44 MiB)
		{45 << 20, 32, LevelDRAM}, // exceeds both sockets' LLC
		{1 << 33, 32, LevelDRAM},
	}
	for _, c := range cases {
		if got := CacheLevel(m, c.ws, c.cores); got != c.want {
			t.Errorf("CacheLevel(ws=%d, cores=%d) = %v, want %v", c.ws, c.cores, got, c.want)
		}
	}
}

func TestCacheLevelClampsCores(t *testing.T) {
	m := machine.MachA()
	if got := CacheLevel(m, 1<<10, 0); got != LevelL2 {
		t.Fatalf("cores=0: %v", got)
	}
	if got := CacheLevel(m, 1<<30, 1000); got != LevelDRAM {
		t.Fatalf("cores>max: %v", got)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL2.String() != "L2" || LevelLLC.String() != "LLC" || LevelDRAM.String() != "DRAM" {
		t.Fatal("level names")
	}
	if Level(9).String() != "Level(9)" {
		t.Fatal("unknown level name")
	}
}

func TestPlacements(t *testing.T) {
	m := machine.MachB()
	nz := NodeZero(m.NUMANodes)
	nz.Validate()
	if nz.NodeFrac[0] != 1 {
		t.Fatal("NodeZero not on node 0")
	}
	ft := FirstTouch(m, 64)
	ft.Validate()
	for n, f := range ft.NodeFrac {
		if f < 0.124 || f > 0.126 {
			t.Fatalf("FirstTouch(64) node %d frac %v, want 1/8", n, f)
		}
	}
	// 8 threads on Mach B cover exactly node 0.
	ft8 := FirstTouch(m, 8)
	ft8.Validate()
	if ft8.NodeFrac[0] < 0.999 {
		t.Fatalf("FirstTouch(8) = %v", ft8.NodeFrac)
	}
	il := Interleaved(4)
	il.Validate()
	if il.NodeFrac[2] != 0.25 {
		t.Fatal("Interleaved")
	}
}

func TestValidateRejectsBadPlacement(t *testing.T) {
	for _, bad := range []Placement{
		{NodeFrac: []float64{0.5, 0.2}},
		{NodeFrac: []float64{1.5, -0.5}},
	} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("placement %v not rejected", bad.NodeFrac)
				}
			}()
			bad.Validate()
		}()
	}
}

func localStreams(m *machine.Machine, cores int, demand float64) []Stream {
	pl := FirstTouch(m, cores)
	streams := make([]Stream, cores)
	for c := 0; c < cores; c++ {
		tr := make([]float64, m.NUMANodes)
		tr[m.NodeOf(c)] = 1 // perfectly local
		_ = pl
		streams[c] = Stream{Core: c, Demand: demand, NodeFrac: tr}
	}
	return streams
}

func total(rates []float64) float64 {
	s := 0.0
	for _, r := range rates {
		s += r
	}
	return s
}

func TestSolveDRAMLocalSaturatesSTREAM(t *testing.T) {
	// Perfectly local streams with unbounded demand must achieve the
	// machine's all-core STREAM bandwidth (within the per-core cap).
	for _, m := range machine.CPUs() {
		rates := Solve(m, LevelDRAM, localStreams(m, m.Cores, 1e12))
		got := total(rates) / 1e9
		if got > m.BWAllCores*1.001 {
			t.Errorf("%s: achieved %v GB/s exceeds STREAM %v", m.Name, got, m.BWAllCores)
		}
		if got < m.BWAllCores*0.95 {
			t.Errorf("%s: achieved %v GB/s, want ~%v", m.Name, got, m.BWAllCores)
		}
	}
}

func TestSolveSingleCoreCappedAtBW1(t *testing.T) {
	for _, m := range machine.CPUs() {
		rates := Solve(m, LevelDRAM, localStreams(m, 1, 1e12))
		got := rates[0] / 1e9
		if got > m.BW1Core*1.001 || got < m.BW1Core*0.99 {
			t.Errorf("%s: single core %v GB/s, want %v", m.Name, got, m.BW1Core)
		}
	}
}

func TestSolveNodeZeroBottleneck(t *testing.T) {
	// All pages on node 0: total throughput cannot exceed one node's
	// controller plus what the fabric carries, and must be well below the
	// all-core bandwidth. This is the default-allocator regime of Fig. 1.
	m := machine.MachA()
	pl := NodeZero(m.NUMANodes)
	streams := make([]Stream, m.Cores)
	for c := range streams {
		streams[c] = Stream{Core: c, Demand: 1e12, NodeFrac: pl.NodeFrac}
	}
	got := total(Solve(m, LevelDRAM, streams)) / 1e9
	if got > m.NodeBW()*1.05 {
		t.Errorf("node-0 placement achieved %v GB/s, want <= node BW %v", got, m.NodeBW())
	}
	if got < m.NodeBW()*0.5 {
		t.Errorf("node-0 placement achieved %v GB/s, implausibly low", got)
	}
}

func TestSolveFabricCapsRemoteTraffic(t *testing.T) {
	// Streams with fully remote traffic are limited by the fabric.
	m := machine.MachB()
	streams := make([]Stream, m.Cores)
	for c := range streams {
		tr := make([]float64, m.NUMANodes)
		tr[(m.NodeOf(c)+1)%m.NUMANodes] = 1 // all remote
		streams[c] = Stream{Core: c, Demand: 1e12, NodeFrac: tr}
	}
	got := total(Solve(m, LevelDRAM, streams)) / 1e9
	if got > m.FabricBW*1.05 {
		t.Errorf("all-remote traffic %v GB/s exceeds fabric %v", got, m.FabricBW)
	}
}

func TestSolveL2PrivatePerCore(t *testing.T) {
	m := machine.MachA()
	streams := []Stream{
		{Core: 0, Demand: 1e12},
		{Core: 1, Demand: 5e9},
	}
	rates := Solve(m, LevelL2, streams)
	if rates[0] != m.L2BWPerCore*1e9 {
		t.Errorf("L2 cap: %v", rates[0])
	}
	if rates[1] != 5e9 {
		t.Errorf("under-demand stream altered: %v", rates[1])
	}
}

func TestSolveLLCSharedPerSocket(t *testing.T) {
	m := machine.MachA() // 16 cores per socket
	var streams []Stream
	for c := 0; c < 16; c++ { // all on socket 0
		streams = append(streams, Stream{Core: c, Demand: 60e9})
	}
	rates := Solve(m, LevelLLC, streams)
	got := total(rates) / 1e9
	if got > m.LLCBWSocket*1.001 {
		t.Errorf("socket LLC: %v GB/s exceeds %v", got, m.LLCBWSocket)
	}
	// Streams on the other socket are unaffected.
	streams = append(streams, Stream{Core: 20, Demand: 10e9})
	rates = Solve(m, LevelLLC, streams)
	if rates[16] != 10e9 {
		t.Errorf("other-socket stream throttled: %v", rates[16])
	}
}

// Property: solver rates never exceed demand and are non-negative, and
// total DRAM throughput never exceeds the machine's STREAM bandwidth.
func TestPropSolverBounds(t *testing.T) {
	m := machine.MachC()
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nStreams := 1 + r.Intn(64)
		streams := make([]Stream, nStreams)
		for i := range streams {
			tr := make([]float64, m.NUMANodes)
			rem := 1.0
			for n := 0; n < m.NUMANodes-1; n++ {
				f := r.Float64() * rem
				tr[n] = f
				rem -= f
			}
			tr[m.NUMANodes-1] = rem
			streams[i] = Stream{
				Core:     r.Intn(m.Cores),
				Demand:   r.Float64() * 1e11,
				NodeFrac: tr,
			}
		}
		rates := Solve(m, LevelDRAM, streams)
		tot := 0.0
		for i, rate := range rates {
			if rate < 0 || rate > streams[i].Demand*1.0001 {
				return false
			}
			tot += rate
		}
		return tot <= m.BWAllCores*1e9*1.001
	}
	for i := 0; i < 100; i++ {
		if !f(rng.Int63()) {
			t.Fatal("solver bounds violated")
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveZeroDemand(t *testing.T) {
	m := machine.MachA()
	rates := Solve(m, LevelDRAM, []Stream{{Core: 0, Demand: 0, NodeFrac: NodeZero(2).NodeFrac}})
	if rates[0] != 0 {
		t.Fatalf("zero demand rate = %v", rates[0])
	}
}
