// Package memsys models the memory system of a simulated machine: NUMA
// page placement, a cache-capacity model, and a bandwidth-contention solver
// that splits each NUMA node's controller bandwidth among concurrent
// streams.
//
// This single mechanism is what produces the paper's memory-bound results:
// the ~7x speedup ceiling of X::find and X::inclusive_scan (the STREAM
// all-core/one-core ratio), the NUMA knee near 16 threads in Table 6, and
// the first-touch allocator gains of Figure 1.
package memsys

import (
	"fmt"
	"math"

	"pstlbench/internal/machine"
)

// Level identifies the memory level that serves a benchmark's working set.
type Level int

const (
	// LevelL2 means the working set fits in the participating cores'
	// private L2 caches.
	LevelL2 Level = iota
	// LevelLLC means it fits in the participating sockets' shared last
	// level caches.
	LevelLLC
	// LevelDRAM means it spills to main memory.
	LevelDRAM
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// CacheLevel classifies a working set against the aggregate cache capacity
// of the participating cores. Google-Benchmark-style measurement loops
// re-run the same data, so a fitting working set stays resident.
func CacheLevel(m *machine.Machine, workingSet int64, cores int) Level {
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	if workingSet <= int64(cores)*m.L2PerCore {
		return LevelL2
	}
	socketsUsed := (cores + m.Cores/m.Sockets - 1) / (m.Cores / m.Sockets)
	if workingSet <= int64(socketsUsed)*m.LLCPerSocket {
		return LevelLLC
	}
	return LevelDRAM
}

// Placement describes where an array's pages live: NodeFrac[i] is the
// fraction of pages on NUMA node i. Fractions sum to 1.
type Placement struct {
	NodeFrac []float64
}

// Validate panics if the placement is malformed.
func (p Placement) Validate() {
	sum := 0.0
	for _, f := range p.NodeFrac {
		if f < 0 {
			panic("memsys: negative page fraction")
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("memsys: page fractions sum to %v", sum))
	}
}

// NodeZero places every page on NUMA node 0 — the behaviour of the default
// allocator, where the (single-threaded) setup code faults in every page.
func NodeZero(nodes int) Placement {
	f := make([]float64, nodes)
	f[0] = 1
	return Placement{NodeFrac: f}
}

// FirstTouch places pages according to the parallel first-touch allocator:
// each participating thread faults in its own chunk, so pages distribute
// proportionally to the cores participating per node.
func FirstTouch(m *machine.Machine, threads int) Placement {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Cores {
		threads = m.Cores
	}
	f := make([]float64, m.NUMANodes)
	for c := 0; c < threads; c++ {
		f[m.NodeOf(c)] += 1.0 / float64(threads)
	}
	return Placement{NodeFrac: f}
}

// Interleaved places pages round-robin across all nodes.
func Interleaved(nodes int) Placement {
	f := make([]float64, nodes)
	for i := range f {
		f[i] = 1.0 / float64(nodes)
	}
	return Placement{NodeFrac: f}
}

// Stream is one core's memory traffic during a simulation interval.
type Stream struct {
	// Core is the executing core (determines the local node/socket).
	Core int
	// Demand is the unconstrained consumption rate in bytes/s (i.e. what
	// the compute side could absorb).
	Demand float64
	// NodeFrac is the distribution of this stream's traffic over NUMA
	// nodes. Ignored for cache levels above DRAM.
	NodeFrac []float64
}

// solverIterations bounds the proportional-scaling fixpoint loop.
const solverIterations = 6

// Solve returns the achieved rate in bytes/s for every stream, given the
// machine and the cache level serving the traffic.
//
// DRAM model: every stream draws from each node according to its NodeFrac;
// remote accesses consume 1/RemoteFactor of controller service per byte.
// Node controllers are capacity NodeBW; overloaded controllers scale their
// streams down proportionally (a processor-sharing approximation iterated
// to a near-fixpoint). A single core's draw is additionally capped by the
// machine's single-core STREAM bandwidth, derated by RemoteFactor for its
// remote fraction.
//
// LLC model: per-socket shared capacity LLCBWSocket with proportional
// sharing. L2 model: private per-core capacity, no sharing.
func Solve(m *machine.Machine, level Level, streams []Stream) []float64 {
	rates := make([]float64, len(streams))
	switch level {
	case LevelL2:
		capBS := m.L2BWPerCore * 1e9
		for i, s := range streams {
			rates[i] = min(s.Demand, capBS)
		}
		return rates
	case LevelLLC:
		return solveShared(streams, func(s Stream) int { return m.SocketOf(s.Core) },
			m.Sockets, m.LLCBWSocket*1e9, m.L2BWPerCore*1e9)
	default:
		return solveDRAM(m, streams)
	}
}

// solveShared handles the single-resource-per-group case (LLC per socket).
func solveShared(streams []Stream, groupOf func(Stream) int, groups int, groupBW, coreCap float64) []float64 {
	demand := make([]float64, groups)
	rates := make([]float64, len(streams))
	for i, s := range streams {
		rates[i] = min(s.Demand, coreCap)
		demand[groupOf(s)] += rates[i]
	}
	for i, s := range streams {
		g := groupOf(s)
		if demand[g] > groupBW {
			rates[i] *= groupBW / demand[g]
		}
	}
	return rates
}

func solveDRAM(m *machine.Machine, streams []Stream) []float64 {
	// A single controller can deliver more than the per-node share of the
	// all-core STREAM figure (on the Zen machines one core's 42.6 GB/s
	// exceeds 249/8); the aggregate is separately capped at BWAllCores.
	nodeBW := max(m.NodeBW(), m.BW1Core*1.1) * 1e9
	totalBW := m.BWAllCores * 1e9
	coreCap := m.BW1Core * 1e9
	alpha := make([]float64, len(streams))
	for i, s := range streams {
		// Per-core cap, derated by the remote fraction of the stream.
		local := 0.0
		if s.NodeFrac != nil {
			local = s.NodeFrac[m.NodeOf(s.Core)]
		} else {
			local = 1
		}
		eff := coreCap * (local + (1-local)*m.RemoteFactor)
		d := s.Demand
		if d <= 0 {
			alpha[i] = 0
			continue
		}
		alpha[i] = min(1, eff/d)
	}
	fabricBW := m.FabricBW * 1e9
	if fabricBW <= 0 {
		fabricBW = math.MaxFloat64
	}
	load := make([]float64, m.NUMANodes)
	remoteFrac := make([]float64, len(streams))
	for i, s := range streams {
		if s.NodeFrac == nil {
			continue
		}
		localNode := m.NodeOf(s.Core)
		for n, f := range s.NodeFrac {
			if n != localNode {
				remoteFrac[i] += f
			}
		}
	}
	for iter := 0; iter < solverIterations; iter++ {
		for n := range load {
			load[n] = 0
		}
		remoteLoad := 0.0
		totalLoad := 0.0
		for i, s := range streams {
			if alpha[i] <= 0 || s.NodeFrac == nil {
				continue
			}
			localNode := m.NodeOf(s.Core)
			for n, f := range s.NodeFrac {
				if f == 0 {
					continue
				}
				w := 1.0
				if n != localNode {
					w = 1 / m.RemoteFactor
				}
				load[n] += alpha[i] * s.Demand * f * w
			}
			remoteLoad += alpha[i] * s.Demand * remoteFrac[i]
			totalLoad += alpha[i] * s.Demand
		}
		change := false
		for i, s := range streams {
			if alpha[i] <= 0 || s.NodeFrac == nil {
				continue
			}
			scale := 1.0
			for n, f := range s.NodeFrac {
				if f == 0 {
					continue
				}
				if load[n] > nodeBW {
					scale = min(scale, nodeBW/load[n])
				}
			}
			// A stream's remote accesses share the inter-node fabric;
			// its progress is gated by its remote portion completing.
			if remoteFrac[i] > 0 && remoteLoad > fabricBW {
				scale = min(scale, fabricBW/remoteLoad)
			}
			if totalLoad > totalBW {
				scale = min(scale, totalBW/totalLoad)
			}
			if scale < 1 {
				alpha[i] *= scale
				change = true
			}
		}
		if !change {
			break
		}
	}
	rates := make([]float64, len(streams))
	for i, s := range streams {
		rates[i] = alpha[i] * s.Demand
	}
	return rates
}
