// Package counters provides the hardware-performance-counter model of the
// benchmark suite: a counter set mirroring the Likwid/PAPI metrics the
// paper reports (Tables 3 and 4), and a Likwid-Marker-style region API so
// harness code can bracket exactly the STL call, excluding setup — the
// property pSTL-Bench gets from the Likwid Marker API.
//
// In native runs only wall time is measurable (Go exposes no PMU access);
// in simulated runs the discrete-event executor fills in the modeled
// instruction, floating-point, and DRAM-traffic counts.
package counters

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pstlbench/internal/stats"
)

// Set is one sample of the modeled hardware counters.
type Set struct {
	// Instructions is the total retired instruction count (any kind).
	Instructions float64
	// FPScalar is the number of scalar double-precision FP instructions.
	FPScalar float64
	// FP128 is the number of 128-bit packed FP instructions (2 doubles).
	FP128 float64
	// FP256 is the number of 256-bit packed FP instructions (4 doubles).
	FP256 float64
	// DRAMBytes is the data volume moved to/from DRAM.
	DRAMBytes float64
	// Seconds is the wall time of the region.
	Seconds float64

	// Scheduler counters: the runtime events behind the backend overhead
	// the paper measures (TBB deque steals vs. HPX central-queue traffic).
	// Native pools report them from their deque scheduler
	// (native.Pool.Stats); simulated runs model them in simexec, so both
	// report comparable scheduling statistics.

	// LocalSteals is the number of work items acquired away from their
	// home worker by a worker on the same NUMA node (deque/injector steals
	// natively; off-home task assignments in the simulator). Pools without
	// a topology report every steal here.
	LocalSteals float64
	// RemoteSteals is the number of work items dragged across NUMA nodes —
	// the steals that move first-touched data over the fabric and drive
	// the Table 6 knee.
	RemoteSteals float64
	// Parks is the number of times an idle worker blocked after its spin
	// budget (natively) or a core went idle for the rest of a phase
	// (simulated).
	Parks float64
	// Wakeups is the number of idle workers woken to take on new work.
	Wakeups float64
	// EmptySpins is the number of scavenging rounds that found no runnable
	// work (queue-empty polls).
	EmptySpins float64
}

// Add accumulates o into s.
func (s *Set) Add(o Set) {
	s.Instructions += o.Instructions
	s.FPScalar += o.FPScalar
	s.FP128 += o.FP128
	s.FP256 += o.FP256
	s.DRAMBytes += o.DRAMBytes
	s.Seconds += o.Seconds
	s.LocalSteals += o.LocalSteals
	s.RemoteSteals += o.RemoteSteals
	s.Parks += o.Parks
	s.Wakeups += o.Wakeups
	s.EmptySpins += o.EmptySpins
}

// Sub returns the counter-wise difference s - o, for attributing a live
// counter snapshot pair to the interval between them.
func (s Set) Sub(o Set) Set {
	return Set{
		Instructions: s.Instructions - o.Instructions,
		FPScalar:     s.FPScalar - o.FPScalar,
		FP128:        s.FP128 - o.FP128,
		FP256:        s.FP256 - o.FP256,
		DRAMBytes:    s.DRAMBytes - o.DRAMBytes,
		Seconds:      s.Seconds - o.Seconds,
		LocalSteals:  s.LocalSteals - o.LocalSteals,
		RemoteSteals: s.RemoteSteals - o.RemoteSteals,
		Parks:        s.Parks - o.Parks,
		Wakeups:      s.Wakeups - o.Wakeups,
		EmptySpins:   s.EmptySpins - o.EmptySpins,
	}
}

// Scale multiplies every counter by f and returns the result.
func (s Set) Scale(f float64) Set {
	return Set{
		Instructions: s.Instructions * f,
		FPScalar:     s.FPScalar * f,
		FP128:        s.FP128 * f,
		FP256:        s.FP256 * f,
		DRAMBytes:    s.DRAMBytes * f,
		Seconds:      s.Seconds * f,
		LocalSteals:  s.LocalSteals * f,
		RemoteSteals: s.RemoteSteals * f,
		Parks:        s.Parks * f,
		Wakeups:      s.Wakeups * f,
		EmptySpins:   s.EmptySpins * f,
	}
}

// Steals returns the total steal count regardless of locality.
func (s Set) Steals() float64 { return s.LocalSteals + s.RemoteSteals }

// SchedString formats the scheduler counters in the style of the paper's
// overhead discussion ("steals=12 (remote 4) parks=3 wakeups=7
// empty-spins=41").
func (s Set) SchedString() string {
	return fmt.Sprintf("steals=%s (remote %s) parks=%s wakeups=%s empty-spins=%s",
		SI(s.Steals()), SI(s.RemoteSteals), SI(s.Parks), SI(s.Wakeups), SI(s.EmptySpins))
}

// Flops returns the total double-precision operation count.
func (s Set) Flops() float64 { return s.FPScalar + 2*s.FP128 + 4*s.FP256 }

// GFlopsPerSec returns the double-precision rate in GFLOP/s.
func (s Set) GFlopsPerSec() float64 {
	if s.Seconds == 0 {
		return 0
	}
	return s.Flops() / s.Seconds / 1e9
}

// BandwidthGiBs returns the DRAM bandwidth in GiB/s.
func (s Set) BandwidthGiBs() float64 {
	if s.Seconds == 0 {
		return 0
	}
	return s.DRAMBytes / s.Seconds / (1 << 30)
}

// DataVolumeGiB returns the DRAM data volume in GiB.
func (s Set) DataVolumeGiB() float64 { return s.DRAMBytes / (1 << 30) }

// SI formats a count with T/G/M/K suffixes in the style of the paper's
// tables ("1.72T", "107G").
func SI(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.3gT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Registry accumulates counter sets into named regions, in the style of
// the Likwid Marker API (LIKWID_MARKER_START/STOP). It is safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	regions map[string]*regionData
}

type regionData struct {
	set   Set
	calls int

	// Seconds distribution over samples with a nonzero timing component.
	// Counter-only records (Seconds == 0) accumulate into set without
	// perturbing the timing statistics.
	secCalls int
	secMin   float64
	secMax   float64
	secSum   float64
	secSumSq float64

	// Bounded sample reservoir for quantile estimation: a systematic
	// (every stride-th) subsample of the timed records, decimated in place
	// whenever it fills — deterministic, allocation-bounded, and uniform
	// over the region's lifetime, so long-running regions (serving-layer
	// latency per tenant) keep meaningful p50/p99 without unbounded memory.
	secSamples []float64
	secStride  int // record every stride-th timed sample (power of two)
	secSkip    int // timed samples to skip before the next recorded one
}

// sampleCap bounds the per-region quantile reservoir. At 2048 samples the
// p99 estimate rests on ~20 order statistics, enough for reporting.
const sampleCap = 2048

// RegionStats summarizes the per-call Seconds distribution of a region:
// the min/max spread and the call-count-weighted mean and standard
// deviation over every timed sample recorded into it.
type RegionStats struct {
	// Calls counts the timed samples (records with Seconds > 0); a region
	// may hold more total records if counter-only sets were added.
	Calls int
	// Min, Max, Mean are per-call Seconds.
	Min, Max, Mean float64
	// StdDev is the population standard deviation of per-call Seconds.
	StdDev float64
	// P50 and P99 are per-call Seconds quantiles, estimated from a bounded
	// systematic subsample of the region's timed records (exact until the
	// region exceeds the reservoir capacity).
	P50, P99 float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{regions: make(map[string]*regionData)}
}

// Record adds one sample to the named region.
func (r *Registry) Record(region string, s Set) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.regions[region]
	if d == nil {
		d = &regionData{}
		r.regions[region] = d
	}
	d.set.Add(s)
	d.calls++
	if s.Seconds > 0 {
		if d.secCalls == 0 || s.Seconds < d.secMin {
			d.secMin = s.Seconds
		}
		if s.Seconds > d.secMax {
			d.secMax = s.Seconds
		}
		d.secSum += s.Seconds
		d.secSumSq += s.Seconds * s.Seconds
		d.secCalls++
		d.sample(s.Seconds)
	}
}

// sample feeds one timed record into the region's quantile reservoir.
func (d *regionData) sample(seconds float64) {
	if d.secStride == 0 {
		d.secStride = 1
	}
	if d.secSkip > 0 {
		d.secSkip--
		return
	}
	if len(d.secSamples) >= sampleCap {
		// Decimate in place: keep every other sample and double the
		// stride, so the reservoir stays a uniform systematic subsample.
		kept := d.secSamples[:0]
		for i := 0; i < len(d.secSamples); i += 2 {
			kept = append(kept, d.secSamples[i])
		}
		d.secSamples = kept
		d.secStride *= 2
	}
	d.secSamples = append(d.secSamples, seconds)
	d.secSkip = d.secStride - 1
}

// Region returns the accumulated counters and call count of a region.
func (r *Registry) Region(region string) (Set, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.regions[region]
	if d == nil {
		return Set{}, 0
	}
	return d.set, d.calls
}

// Stats returns the per-call Seconds distribution of a region. Unknown
// regions — and regions holding only counter-only records — return the
// zero RegionStats.
func (r *Registry) Stats(region string) RegionStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.regions[region]
	if d == nil || d.secCalls == 0 {
		return RegionStats{}
	}
	n := float64(d.secCalls)
	mean := d.secSum / n
	sorted := append([]float64(nil), d.secSamples...)
	sort.Float64s(sorted)
	p50 := stats.PercentileSorted(sorted, 0.50)
	p99 := stats.PercentileSorted(sorted, 0.99)
	if d.secCalls == 1 {
		// A single sample has no spread; short-circuit so no rounding path
		// can ever surface NaN to consumers (the tuner's stop condition
		// reads this blind).
		return RegionStats{Calls: 1, Min: d.secMin, Max: d.secMax, Mean: mean, P50: p50, P99: p99}
	}
	// Population variance via the sum-of-squares identity; clamp the
	// cancellation error for near-constant samples.
	variance := d.secSumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return RegionStats{
		Calls:  d.secCalls,
		Min:    d.secMin,
		Max:    d.secMax,
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		P50:    p50,
		P99:    p99,
	}
}

// Regions returns the region names in sorted order.
func (r *Registry) Regions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.regions))
	for n := range r.regions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset clears all regions.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regions = make(map[string]*regionData)
}
