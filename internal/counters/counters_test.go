package counters

import (
	"math"
	"sync"
	"testing"
)

func TestAddAndScale(t *testing.T) {
	a := Set{Instructions: 10, FPScalar: 2, FP128: 1, FP256: 1, DRAMBytes: 100, Seconds: 1}
	b := Set{Instructions: 5, FPScalar: 1, DRAMBytes: 50, Seconds: 0.5}
	a.Add(b)
	if a.Instructions != 15 || a.DRAMBytes != 150 || a.Seconds != 1.5 {
		t.Fatalf("Add: %+v", a)
	}
	s := a.Scale(2)
	if s.Instructions != 30 || s.FP128 != 2 || a.Instructions != 15 {
		t.Fatalf("Scale: %+v (orig %+v)", s, a)
	}
}

func TestFlopsAccounting(t *testing.T) {
	s := Set{FPScalar: 10, FP128: 5, FP256: 2}
	// 10 + 5*2 + 2*4 = 28 double-precision operations.
	if got := s.Flops(); got != 28 {
		t.Fatalf("Flops = %v", got)
	}
	s.Seconds = 2
	if got, want := s.GFlopsPerSec(), 28.0/2/1e9; got != want {
		t.Fatalf("GFlopsPerSec = %v, want %v", got, want)
	}
}

func TestRatesZeroTime(t *testing.T) {
	s := Set{FPScalar: 100, DRAMBytes: 1 << 30}
	if s.GFlopsPerSec() != 0 || s.BandwidthGiBs() != 0 {
		t.Fatal("zero-time rates should be 0")
	}
	if s.DataVolumeGiB() != 1 {
		t.Fatalf("DataVolumeGiB = %v", s.DataVolumeGiB())
	}
}

func TestBandwidth(t *testing.T) {
	s := Set{DRAMBytes: 2 << 30, Seconds: 2}
	if got := s.BandwidthGiBs(); got != 1 {
		t.Fatalf("BandwidthGiBs = %v", got)
	}
}

func TestSIFormatting(t *testing.T) {
	cases := map[float64]string{
		1.72e12: "1.72T",
		107e9:   "107G",
		26e9:    "26G",
		1.33e6:  "1.33M",
		12.8e3:  "12.8K",
		42:      "42",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Record("reduce", Set{Instructions: 10})
	r.Record("reduce", Set{Instructions: 5})
	r.Record("find", Set{Instructions: 1})
	s, calls := r.Region("reduce")
	if s.Instructions != 15 || calls != 2 {
		t.Fatalf("reduce region: %v, %d calls", s.Instructions, calls)
	}
	if _, calls := r.Region("missing"); calls != 0 {
		t.Fatal("missing region should have 0 calls")
	}
	names := r.Regions()
	if len(names) != 2 || names[0] != "find" || names[1] != "reduce" {
		t.Fatalf("Regions = %v", names)
	}
	r.Reset()
	if _, calls := r.Region("reduce"); calls != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record("hot", Set{Instructions: 1})
			}
		}()
	}
	wg.Wait()
	s, calls := r.Region("hot")
	if s.Instructions != 8000 || calls != 8000 {
		t.Fatalf("concurrent recording lost samples: %v/%d", s.Instructions, calls)
	}
}

func TestRegionStats(t *testing.T) {
	r := NewRegistry()
	if s := r.Stats("missing"); s != (RegionStats{}) {
		t.Fatalf("unknown region stats = %+v, want zero", s)
	}
	for _, sec := range []float64{2e-3, 4e-3, 6e-3} {
		r.Record("loop", Set{Seconds: sec})
	}
	// A counter-only record must not perturb the timing distribution.
	r.Record("loop", Set{Instructions: 100})
	s := r.Stats("loop")
	if s.Calls != 3 {
		t.Fatalf("Calls = %d, want 3 (counter-only record counted)", s.Calls)
	}
	if math.Abs(s.Min-2e-3) > 1e-12 || math.Abs(s.Max-6e-3) > 1e-12 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-4e-3) > 1e-12 {
		t.Fatalf("mean = %v, want 4ms", s.Mean)
	}
	// Population stddev of {2,4,6}ms is sqrt(8/3) ms.
	if want := math.Sqrt(8.0/3.0) * 1e-3; math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	// The accumulated set still includes every record.
	set, calls := r.Region("loop")
	if calls != 4 || math.Abs(set.Seconds-12e-3) > 1e-12 || set.Instructions != 100 {
		t.Fatalf("region set = %+v calls = %d", set, calls)
	}
}

func TestRegionStatsConstantSamples(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Record("flat", Set{Seconds: 1e-3})
	}
	s := r.Stats("flat")
	if s.StdDev != 0 {
		t.Fatalf("stddev of constant samples = %v, want exactly 0", s.StdDev)
	}
	if s.Min != s.Max || s.Min != 1e-3 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestRegionStatsSingleSample(t *testing.T) {
	r := NewRegistry()
	r.Record("once", Set{Seconds: 0.5})
	s := r.Stats("once")
	if s.Calls != 1 {
		t.Fatalf("Calls = %d, want 1", s.Calls)
	}
	if s.Min != 0.5 || s.Max != 0.5 || s.Mean != 0.5 {
		t.Fatalf("min/max/mean = %v/%v/%v, want 0.5", s.Min, s.Max, s.Mean)
	}
	// The tuner's stop condition reads this blind: a single sample has no
	// spread and must report exactly 0, never NaN.
	if s.StdDev != 0 || math.IsNaN(s.StdDev) {
		t.Fatalf("single-sample stddev = %v, want exactly 0", s.StdDev)
	}
}

func TestSub(t *testing.T) {
	a := Set{Instructions: 100, Seconds: 2, LocalSteals: 10, RemoteSteals: 4, Parks: 3, Wakeups: 2, EmptySpins: 7, DRAMBytes: 64}
	b := Set{Instructions: 40, Seconds: 0.5, LocalSteals: 6, RemoteSteals: 1, Parks: 1, Wakeups: 2, EmptySpins: 5, DRAMBytes: 32}
	d := a.Sub(b)
	if d.Instructions != 60 || d.Seconds != 1.5 || d.DRAMBytes != 32 {
		t.Fatalf("Sub core fields: %+v", d)
	}
	if d.LocalSteals != 4 || d.RemoteSteals != 3 || d.Parks != 2 || d.Wakeups != 0 || d.EmptySpins != 2 {
		t.Fatalf("Sub sched fields: %+v", d)
	}
	// Sub is the inverse of Add over a snapshot pair.
	b.Add(d)
	if b != a {
		t.Fatalf("b + (a-b) = %+v, want %+v", b, a)
	}
}

func TestRegionPercentiles(t *testing.T) {
	r := NewRegistry()
	// 1..100 ms: exact sample set, well under the reservoir cap.
	for i := 1; i <= 100; i++ {
		r.Record("lat", Set{Seconds: float64(i) / 1000})
	}
	s := r.Stats("lat")
	if s.P50 < 0.049 || s.P50 > 0.052 {
		t.Fatalf("P50 = %v, want ~0.0505", s.P50)
	}
	if s.P99 < 0.098 || s.P99 > 0.100 {
		t.Fatalf("P99 = %v, want ~0.099", s.P99)
	}
	if s.P50 >= s.P99 {
		t.Fatalf("P50 %v >= P99 %v", s.P50, s.P99)
	}
}

func TestRegionPercentilesSingleSample(t *testing.T) {
	r := NewRegistry()
	r.Record("one", Set{Seconds: 0.25})
	s := r.Stats("one")
	if s.P50 != 0.25 || s.P99 != 0.25 {
		t.Fatalf("single-sample quantiles = %v/%v, want 0.25", s.P50, s.P99)
	}
}

// TestReservoirDecimation drives a region far past the reservoir capacity
// and checks the quantile estimates stay close to the true distribution —
// the property the serving layer's long-lived per-tenant regions rely on.
func TestReservoirDecimation(t *testing.T) {
	r := NewRegistry()
	const n = 100_000
	for i := 1; i <= n; i++ {
		// Deterministic shuffle of a uniform ramp so arrival order does not
		// line up with the systematic stride.
		v := float64((i*7919)%n+1) / float64(n)
		r.Record("big", Set{Seconds: v})
	}
	s := r.Stats("big")
	if s.Calls != n {
		t.Fatalf("Calls = %d, want %d", s.Calls, n)
	}
	// Uniform(0,1]: p50 ~ 0.5, p99 ~ 0.99. Allow the subsampling error.
	if s.P50 < 0.45 || s.P50 > 0.55 {
		t.Fatalf("P50 = %v, want ~0.5", s.P50)
	}
	if s.P99 < 0.95 || s.P99 > 1.0 {
		t.Fatalf("P99 = %v, want ~0.99", s.P99)
	}
}
