package pipeline_test

import (
	"testing"

	"pstlbench/internal/core"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
)

// BenchmarkFusedVsStaged measures the headline claim of the fusion work:
// 3-stage element-wise chains at a bandwidth-bound size, run as separate
// core passes with materialized intermediates vs one fused chunk-granular
// pass. Three shapes: a slice-source chain reduced with a user op, the
// same chain summed (inlined +, no op callback), and a generate-source
// chain whose staged form also pays the materialization pass. Picked up by
// the CI bench-smoke step (-bench=. -benchtime=1x).
func BenchmarkFusedVsStaged(b *testing.B) {
	const n = 1 << 22 // 32 MiB of float64: past LLC on typical hosts
	pool := native.New(0, native.StrategyStealing)
	defer pool.Close()
	p := core.Par(pool)
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i % 4096)
	}
	gen := func(i int) float64 { return float64((uint64(i+1) * 6364136223846793005) >> 40) }
	f := func(v float64) float64 { return v*3 + 1 }
	g := func(v float64) float64 { return v * 0.5 }
	add := func(a, b float64) float64 { return a + b }

	b.Run("reduce/staged", func(b *testing.B) {
		tmp := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Transform(p, tmp, src, f)
			core.Transform(p, tmp, tmp, g)
			_ = core.Reduce(p, tmp, 0, add)
		}
	})
	b.Run("reduce/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pipeline.From(src).Transform(f).Transform(g).Reduce(p, 0, add)
		}
	})
	b.Run("sum/staged", func(b *testing.B) {
		tmp := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Transform(p, tmp, src, f)
			core.Transform(p, tmp, tmp, g)
			_ = core.Sum(p, tmp, 0)
		}
	})
	b.Run("sum/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pipeline.Sum(p, pipeline.From(src).Transform(f).Transform(g), 0)
		}
	})
	b.Run("gen/staged", func(b *testing.B) {
		tmp := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Generate(p, tmp, gen)
			core.Transform(p, tmp, tmp, f)
			core.Transform(p, tmp, tmp, g)
			_ = core.Sum(p, tmp, 0)
		}
	})
	b.Run("gen/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pipeline.Sum(p, pipeline.Generate(n, gen).Transform(f).Transform(g), 0)
		}
	})
}
