// Package pipeline provides a lazy, composable pipeline over slices whose
// adjacent element-wise stages are fused into a single chunk-granular pass.
//
// The staged idiom this package replaces runs each algorithm as its own
// full sweep over the data:
//
//	tmp := make([]float64, n)
//	core.Transform(p, tmp, src, f)        // read src, write tmp
//	core.Transform(p, tmp, tmp, g)        // read tmp, write tmp
//	sum := core.Reduce(p, tmp, 0, add)    // read tmp
//
// At bandwidth-bound n (the regime pSTL-Bench measures for big inputs)
// each sweep is a trip through DRAM, so a 3-stage chain pays ~3× the
// memory traffic the arithmetic needs. The fused form
//
//	sum := pipeline.From(src).Transform(f).Transform(g).Reduce(p, 0, add)
//
// evaluates f∘g per element inside ONE chunk-granular loop: one pool
// submission, one memory sweep, no intermediate arrays. Chains compile
// down to the same exported core dispatch surface the staged algorithms
// use (Policy.ParallelFor / Chunks / ForEachChunk), so per-chunk
// cancellation, grain sources, and the seq-threshold gate behave
// identically — every fused chain is element-wise equivalent to its
// staged core.* composition, which the property tests pin.
//
// Fusion rules: only 1:1 element-wise stages fuse (Transform/Map,
// TransformIndexed, and the type-changing MapTo). Terminals that need a
// global view are barriers: Scan needs two passes (the second pass
// re-evaluates the chain rather than materializing it), Sort must
// materialize before comparing, and cardinality-changing stages (filter,
// unique) are deliberately absent — they end a chain via CopyIf on a
// materialized buffer. See DESIGN.md §9.
package pipeline

import (
	"strings"

	"pstlbench/internal/core"
	"pstlbench/internal/tune"
)

// Pipeline is a lazy chain of element-wise stages over a logical index
// domain [0, n). Nothing executes until a terminal (Reduce, Copy, Scan,
// Sort, Each, Count) is called with a core.Policy. The zero value is an
// empty pipeline; build one with From or Generate.
//
// Go methods cannot introduce new type parameters, so in-chain stages are
// T→T; type-changing maps are the free function MapTo.
type Pipeline[T any] struct {
	n      int
	src    []T           // From source (nil for Generate)
	gen    func(i int) T // Generate source (nil for From)
	stages []func(i int, v T) T
	// plain[k] is stage k's index-free form when it has one (Transform/
	// Map), nil for TransformIndexed. All-plain chains over a slice source
	// compile to loops that call the user functions directly — one
	// indirect call per stage per element, nothing else — which is what
	// keeps the fused pass cheaper than the staged one even where the
	// generic-dictionary call overhead rivals the DRAM cost per element.
	plain []func(v T) T
	names []string // signature parts: source, then one per stage
	tuner *tune.Tuner
}

// From starts a pipeline that reads its elements from src.
func From[T any](src []T) *Pipeline[T] {
	return &Pipeline[T]{n: len(src), src: src, names: []string{"from"}}
}

// Generate starts a pipeline whose element i is produced by gen(i) — a
// source with zero memory traffic, like std::generate feeding a chain.
// gen must be safe for concurrent calls with distinct i.
func Generate[T any](n int, gen func(i int) T) *Pipeline[T] {
	if n < 0 {
		n = 0
	}
	return &Pipeline[T]{n: n, gen: gen, names: []string{"gen"}}
}

// Len returns the pipeline's element count.
func (pl *Pipeline[T]) Len() int { return pl.n }

// Transform appends an element-wise stage computing f(v) — fused into the
// same pass as its neighbours (std::transform without the intermediate
// array). f must be pure: it may run concurrently and, under a Scan
// terminal, more than once per element.
func (pl *Pipeline[T]) Transform(f func(v T) T) *Pipeline[T] {
	return pl.push("map", func(_ int, v T) T { return f(v) }, f)
}

// Map is Transform under its functional-programming name.
func (pl *Pipeline[T]) Map(f func(v T) T) *Pipeline[T] { return pl.Transform(f) }

// TransformIndexed appends an element-wise stage that also sees the
// element index — enough to express iota-style and position-dependent
// kernels without a materialized index array.
func (pl *Pipeline[T]) TransformIndexed(f func(i int, v T) T) *Pipeline[T] {
	return pl.push("mapi", f, nil)
}

// WithTuner attaches an adaptive grain tuner: every terminal derives a
// tune site from the chain's Signature and executes under
// p.WithGrainSource(tuner.Site(sig)), so `--grain=adaptive` works on fused
// loops exactly as on the staged algorithms. The fused chain gets its OWN
// tune key — its bytes-per-element and instruction mix differ from any
// single stage, so it must not share a site with them.
func (pl *Pipeline[T]) WithTuner(t *tune.Tuner) *Pipeline[T] {
	pl.tuner = t
	return pl
}

// push appends a stage in place and returns the receiver: chains are
// built-and-consumed values, not persistent structures.
func (pl *Pipeline[T]) push(name string, f func(i int, v T) T, p func(v T) T) *Pipeline[T] {
	pl.stages = append(pl.stages, f)
	pl.plain = append(pl.plain, p)
	pl.names = append(pl.names, name)
	return pl
}

// allPlain reports whether every stage has an index-free form.
func (pl *Pipeline[T]) allPlain() bool {
	for _, p := range pl.plain {
		if p == nil {
			return false
		}
	}
	return true
}

// Signature identifies the fused chain's shape, e.g.
// "pipeline:from+map+map". Terminals append their own tag
// ("…+reduce") to form the tune site and trace label, so chains with the
// same stage mix share tuning state across call sites.
func (pl *Pipeline[T]) Signature() string {
	return "pipeline:" + strings.Join(pl.names, "+")
}

// MapTo fuses a type-changing stage onto the chain, starting a new
// Pipeline[U] whose source evaluates the old chain per element. No
// materialization happens at the seam: U's source function IS the fused
// T-chain followed by f.
func MapTo[T, U any](pl *Pipeline[T], f func(v T) U) *Pipeline[U] {
	ev := pl.eval()
	return &Pipeline[U]{
		n:     pl.n,
		gen:   func(i int) U { return f(ev(i)) },
		names: append(append([]string{}, pl.names...), "mapto"),
		tuner: pl.tuner,
	}
}

// eval compiles the chain into a single per-element evaluator. Short
// chains are specialized per (source, stage count) so the hot loop pays
// one indirect call per stage — no generic load wrapper, no stage-slice
// walk — which is what lets the fused pass win on memory traffic instead
// of giving the saving back as call overhead.
func (pl *Pipeline[T]) eval() func(i int) T {
	if pl.allPlain() {
		if src := pl.src; src != nil {
			switch len(pl.stages) {
			case 0:
				return func(i int) T { return src[i] }
			case 1:
				f0 := pl.plain[0]
				return func(i int) T { return f0(src[i]) }
			case 2:
				f0, f1 := pl.plain[0], pl.plain[1]
				return func(i int) T { return f1(f0(src[i])) }
			case 3:
				f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
				return func(i int) T { return f2(f1(f0(src[i]))) }
			}
		} else if gen := pl.gen; gen != nil {
			switch len(pl.stages) {
			case 0:
				return gen
			case 1:
				f0 := pl.plain[0]
				return func(i int) T { return f0(gen(i)) }
			case 2:
				f0, f1 := pl.plain[0], pl.plain[1]
				return func(i int) T { return f1(f0(gen(i))) }
			case 3:
				f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
				return func(i int) T { return f2(f1(f0(gen(i)))) }
			}
		}
	}
	load := pl.gen
	if src := pl.src; src != nil {
		load = func(i int) T { return src[i] }
	}
	if load == nil {
		var zero T
		load = func(int) T { return zero }
	}
	switch len(pl.stages) {
	case 0:
		return load
	case 1:
		f0 := pl.stages[0]
		return func(i int) T { return f0(i, load(i)) }
	case 2:
		f0, f1 := pl.stages[0], pl.stages[1]
		return func(i int) T { return f1(i, f0(i, load(i))) }
	case 3:
		f0, f1, f2 := pl.stages[0], pl.stages[1], pl.stages[2]
		return func(i int) T { return f2(i, f1(i, f0(i, load(i)))) }
	default:
		fns := pl.stages
		return func(i int) T {
			v := load(i)
			for _, f := range fns {
				v = f(i, v)
			}
			return v
		}
	}
}

// folder compiles the chain + op into a fold over a non-empty index range.
// Within the range the fold runs four interleaved accumulator stripes —
// op must be associative (the std::reduce contract core.Reduce already
// states) and the striping breaks the loop-carried dependence through the
// non-inlinable op call, which otherwise serializes one call+ALU latency
// per element. The stripe layout is fixed, so results stay deterministic
// for a fixed policy. Slice-source all-plain chains get fully specialized
// loops that call the user stages directly: one indirect call per stage
// per element is the entire per-element cost beyond the memory sweep.
func (pl *Pipeline[T]) folder(op func(a, b T) T) func(lo, hi int) T {
	if pl.src != nil && pl.allPlain() {
		src := pl.src
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := src[lo]
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, src[i])
					}
					return acc
				}
				a0, a1, a2, a3 := src[lo], src[lo+1], src[lo+2], src[lo+3]
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, src[i])
					a1 = op(a1, src[i+1])
					a2 = op(a2, src[i+2])
					a3 = op(a3, src[i+3])
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, src[i])
				}
				return acc
			}
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f0(src[lo])
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f0(src[i]))
					}
					return acc
				}
				a0, a1, a2, a3 := f0(src[lo]), f0(src[lo+1]), f0(src[lo+2]), f0(src[lo+3])
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f0(src[i]))
					a1 = op(a1, f0(src[i+1]))
					a2 = op(a2, f0(src[i+2]))
					a3 = op(a3, f0(src[i+3]))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f0(src[i]))
				}
				return acc
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f1(f0(src[lo]))
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f1(f0(src[i])))
					}
					return acc
				}
				a0, a1, a2, a3 := f1(f0(src[lo])), f1(f0(src[lo+1])), f1(f0(src[lo+2])), f1(f0(src[lo+3]))
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f1(f0(src[i])))
					a1 = op(a1, f1(f0(src[i+1])))
					a2 = op(a2, f1(f0(src[i+2])))
					a3 = op(a3, f1(f0(src[i+3])))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f1(f0(src[i])))
				}
				return acc
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f2(f1(f0(src[lo])))
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f2(f1(f0(src[i]))))
					}
					return acc
				}
				a0, a1, a2, a3 := f2(f1(f0(src[lo]))), f2(f1(f0(src[lo+1]))), f2(f1(f0(src[lo+2]))), f2(f1(f0(src[lo+3])))
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f2(f1(f0(src[i]))))
					a1 = op(a1, f2(f1(f0(src[i+1]))))
					a2 = op(a2, f2(f1(f0(src[i+2]))))
					a3 = op(a3, f2(f1(f0(src[i+3]))))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f2(f1(f0(src[i]))))
				}
				return acc
			}
		}
	}
	if pl.gen != nil && pl.allPlain() {
		gen := pl.gen
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := gen(lo)
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, gen(i))
					}
					return acc
				}
				a0, a1, a2, a3 := gen(lo), gen(lo+1), gen(lo+2), gen(lo+3)
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, gen(i))
					a1 = op(a1, gen(i+1))
					a2 = op(a2, gen(i+2))
					a3 = op(a3, gen(i+3))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, gen(i))
				}
				return acc
			}
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f0(gen(lo))
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f0(gen(i)))
					}
					return acc
				}
				a0, a1, a2, a3 := f0(gen(lo)), f0(gen(lo+1)), f0(gen(lo+2)), f0(gen(lo+3))
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f0(gen(i)))
					a1 = op(a1, f0(gen(i+1)))
					a2 = op(a2, f0(gen(i+2)))
					a3 = op(a3, f0(gen(i+3)))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f0(gen(i)))
				}
				return acc
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f1(f0(gen(lo)))
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f1(f0(gen(i))))
					}
					return acc
				}
				a0, a1, a2, a3 := f1(f0(gen(lo))), f1(f0(gen(lo+1))), f1(f0(gen(lo+2))), f1(f0(gen(lo+3)))
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f1(f0(gen(i))))
					a1 = op(a1, f1(f0(gen(i+1))))
					a2 = op(a2, f1(f0(gen(i+2))))
					a3 = op(a3, f1(f0(gen(i+3))))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f1(f0(gen(i))))
				}
				return acc
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) T {
				if hi-lo < 8 {
					acc := f2(f1(f0(gen(lo))))
					for i := lo + 1; i < hi; i++ {
						acc = op(acc, f2(f1(f0(gen(i)))))
					}
					return acc
				}
				a0, a1, a2, a3 := f2(f1(f0(gen(lo)))), f2(f1(f0(gen(lo+1)))), f2(f1(f0(gen(lo+2)))), f2(f1(f0(gen(lo+3))))
				i := lo + 4
				for ; i+3 < hi; i += 4 {
					a0 = op(a0, f2(f1(f0(gen(i)))))
					a1 = op(a1, f2(f1(f0(gen(i+1)))))
					a2 = op(a2, f2(f1(f0(gen(i+2)))))
					a3 = op(a3, f2(f1(f0(gen(i+3)))))
				}
				acc := op(op(a0, a1), op(a2, a3))
				for ; i < hi; i++ {
					acc = op(acc, f2(f1(f0(gen(i)))))
				}
				return acc
			}
		}
	}
	ev := pl.eval()
	return func(lo, hi int) T {
		if hi-lo < 8 {
			acc := ev(lo)
			for i := lo + 1; i < hi; i++ {
				acc = op(acc, ev(i))
			}
			return acc
		}
		a0, a1, a2, a3 := ev(lo), ev(lo+1), ev(lo+2), ev(lo+3)
		i := lo + 4
		for ; i+3 < hi; i += 4 {
			a0 = op(a0, ev(i))
			a1 = op(a1, ev(i+1))
			a2 = op(a2, ev(i+2))
			a3 = op(a3, ev(i+3))
		}
		acc := op(op(a0, a1), op(a2, a3))
		for ; i < hi; i++ {
			acc = op(acc, ev(i))
		}
		return acc
	}
}

// copier compiles the chain into a range writer dst[i] = chain(i) with the
// same direct-call specializations as folder (no striping: element writes
// are independent, so the CPU overlaps them on its own).
func (pl *Pipeline[T]) copier(dst []T) func(lo, hi int) {
	if pl.src != nil && pl.allPlain() {
		src := pl.src
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) { copy(dst[lo:hi], src[lo:hi]) }
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f0(src[i])
				}
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f1(f0(src[i]))
				}
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f2(f1(f0(src[i])))
				}
			}
		}
	}
	if pl.gen != nil && pl.allPlain() {
		gen := pl.gen
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = gen(i)
				}
			}
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f0(gen(i))
				}
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f1(f0(gen(i)))
				}
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f2(f1(f0(gen(i))))
				}
			}
		}
	}
	ev := pl.eval()
	return func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = ev(i)
		}
	}
}

// policyFor derives the execution policy of a terminal: the caller's
// policy, plus the chain-signature tune site when a tuner is attached.
func (pl *Pipeline[T]) policyFor(p core.Policy, terminal string) (core.Policy, string) {
	sig := pl.Signature() + "+" + terminal
	if pl.tuner != nil {
		p = p.WithGrainSource(pl.tuner.Site(sig))
	}
	return p, sig
}

// Reduce executes the chain and folds the results with op starting from
// init (std::transform_reduce over the whole fused chain). op must be
// associative: like std::reduce the combination order is unspecified
// (within a chunk the fold runs fixed accumulator stripes, across chunks
// partials fold in chunk order), but it is deterministic for a fixed
// policy. Under a
// canceled policy the result is incomplete and must be discarded
// (p.Canceled() is the source of truth), exactly as with the staged form.
func (pl *Pipeline[T]) Reduce(p core.Policy, init T, op func(a, b T) T) T {
	p, _ = pl.policyFor(p, "reduce")
	n := pl.n
	if n == 0 {
		return init
	}
	fold := pl.folder(op)
	if !p.ShouldParallelize(n) {
		return op(init, fold(0, n))
	}
	chunks := p.Chunks(n)
	partial := make([]T, chunks.Len())
	hasVal := make([]bool, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		partial[ci] = fold(c.Lo, c.Hi)
		hasVal[ci] = true
	})
	acc := init
	for ci := range partial {
		if hasVal[ci] {
			acc = op(acc, partial[ci])
		}
	}
	return acc
}

// Sum folds a numeric chain with +, the fused counterpart of core.Sum
// (the common std::reduce case the paper benchmarks). A free function
// because methods cannot add the Number constraint — which is exactly what
// lets it inline the addition: the fold pays zero op-callback calls per
// element, only the user stages, so a fused sum chain runs at the speed of
// its source sweep plus one indirect call per stage.
func Sum[T core.Number](p core.Policy, pl *Pipeline[T], init T) T {
	p, _ = pl.policyFor(p, "reduce")
	n := pl.n
	if n == 0 {
		return init
	}
	fold := sumFolder(pl)
	if !p.ShouldParallelize(n) {
		return init + fold(0, n)
	}
	chunks := p.Chunks(n)
	partial := make([]T, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		partial[ci] = fold(c.Lo, c.Hi)
	})
	acc := init
	for _, v := range partial {
		acc += v
	}
	return acc
}

// sumFolder is folder specialized to the + operator: same striping, no op
// callback. Empty chunks contribute the zero value, which is the identity
// of +, so no has-value tracking is needed.
func sumFolder[T core.Number](pl *Pipeline[T]) func(lo, hi int) T {
	if pl.src != nil && pl.allPlain() {
		src := pl.src
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += src[i]
					a1 += src[i+1]
					a2 += src[i+2]
					a3 += src[i+3]
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += src[i]
				}
				return acc
			}
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f0(src[i])
					a1 += f0(src[i+1])
					a2 += f0(src[i+2])
					a3 += f0(src[i+3])
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f0(src[i])
				}
				return acc
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f1(f0(src[i]))
					a1 += f1(f0(src[i+1]))
					a2 += f1(f0(src[i+2]))
					a3 += f1(f0(src[i+3]))
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f1(f0(src[i]))
				}
				return acc
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f2(f1(f0(src[i])))
					a1 += f2(f1(f0(src[i+1])))
					a2 += f2(f1(f0(src[i+2])))
					a3 += f2(f1(f0(src[i+3])))
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f2(f1(f0(src[i])))
				}
				return acc
			}
		}
	}
	if pl.gen != nil && pl.allPlain() {
		gen := pl.gen
		switch len(pl.stages) {
		case 0:
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += gen(i)
					a1 += gen(i + 1)
					a2 += gen(i + 2)
					a3 += gen(i + 3)
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += gen(i)
				}
				return acc
			}
		case 1:
			f0 := pl.plain[0]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f0(gen(i))
					a1 += f0(gen(i + 1))
					a2 += f0(gen(i + 2))
					a3 += f0(gen(i + 3))
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f0(gen(i))
				}
				return acc
			}
		case 2:
			f0, f1 := pl.plain[0], pl.plain[1]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f1(f0(gen(i)))
					a1 += f1(f0(gen(i + 1)))
					a2 += f1(f0(gen(i + 2)))
					a3 += f1(f0(gen(i + 3)))
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f1(f0(gen(i)))
				}
				return acc
			}
		case 3:
			f0, f1, f2 := pl.plain[0], pl.plain[1], pl.plain[2]
			return func(lo, hi int) T {
				var a0, a1, a2, a3 T
				i := lo
				for ; i+3 < hi; i += 4 {
					a0 += f2(f1(f0(gen(i))))
					a1 += f2(f1(f0(gen(i + 1))))
					a2 += f2(f1(f0(gen(i + 2))))
					a3 += f2(f1(f0(gen(i + 3))))
				}
				acc := a0 + a1 + a2 + a3
				for ; i < hi; i++ {
					acc += f2(f1(f0(gen(i))))
				}
				return acc
			}
		}
	}
	ev := pl.eval()
	return func(lo, hi int) T {
		var a0, a1, a2, a3 T
		i := lo
		for ; i+3 < hi; i += 4 {
			a0 += ev(i)
			a1 += ev(i + 1)
			a2 += ev(i + 2)
			a3 += ev(i + 3)
		}
		acc := a0 + a1 + a2 + a3
		for ; i < hi; i++ {
			acc += ev(i)
		}
		return acc
	}
}

// Copy executes the chain and writes element i to dst[i] — the fused
// generate/transform-into-destination terminal. dst must have length ≥ n
// and must not alias a From source unless element-wise overwrite is
// intended (i is written only after being read, within the same index).
func (pl *Pipeline[T]) Copy(p core.Policy, dst []T) {
	p, _ = pl.policyFor(p, "copy")
	n := pl.n
	_ = dst[:n] // bounds check once, like core.Transform
	write := pl.copier(dst)
	if !p.ShouldParallelize(n) {
		write(0, n)
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		write(lo, hi)
	})
}

// Each executes the chain and calls fn(i, value) per element. fn runs
// concurrently across chunks and must synchronize any shared writes.
func (pl *Pipeline[T]) Each(p core.Policy, fn func(i int, v T)) {
	p, _ = pl.policyFor(p, "each")
	n := pl.n
	ev := pl.eval()
	if !p.ShouldParallelize(n) {
		for i := 0; i < n; i++ {
			fn(i, ev(i))
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i, ev(i))
		}
	})
}

// Count executes the chain and returns how many elements satisfy pred —
// the fused transform+count_if.
func (pl *Pipeline[T]) Count(p core.Policy, pred func(v T) bool) int {
	p, _ = pl.policyFor(p, "count")
	n := pl.n
	ev := pl.eval()
	if !p.ShouldParallelize(n) {
		total := 0
		for i := 0; i < n; i++ {
			if pred(ev(i)) {
				total++
			}
		}
		return total
	}
	chunks := p.Chunks(n)
	partial := make([]int, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		count := 0
		for i := c.Lo; i < c.Hi; i++ {
			if pred(ev(i)) {
				count++
			}
		}
		partial[ci] = count
	})
	total := 0
	for _, c := range partial {
		total += c
	}
	return total
}

// Scan executes the chain and writes its inclusive prefix combination
// under op into dst (fused transform_inclusive_scan). Scan is a fusion
// BARRIER: a prefix needs every earlier element, so the parallel form is
// the same two-phase decomposition core.TransformInclusiveScan uses —
// phase 1 folds per-chunk sums, phase 2 re-evaluates the chain and adds
// the chunk offset. The chain is therefore evaluated twice per element;
// stages must be pure, and for expensive stages a materializing
// Copy-then-core.InclusiveScan can be cheaper. Both phases derive from ONE
// chunk decomposition, so adaptive grain sources cannot shear the phases.
func (pl *Pipeline[T]) Scan(p core.Policy, dst []T, op func(a, b T) T) {
	p, _ = pl.policyFor(p, "scan")
	n := pl.n
	_ = dst[:n]
	ev := pl.eval()
	if n == 0 {
		return
	}
	if !p.ShouldParallelize(n) {
		acc := ev(0)
		dst[0] = acc
		for i := 1; i < n; i++ {
			acc = op(acc, ev(i))
			dst[i] = acc
		}
		return
	}
	chunks := p.Chunks(n)
	fold := pl.folder(op)
	sums := make([]T, chunks.Len())
	hasVal := make([]bool, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		sums[ci] = fold(c.Lo, c.Hi)
		hasVal[ci] = true
	})
	offsets := make([]T, chunks.Len())
	hasOff := make([]bool, chunks.Len())
	for ci := 1; ci < chunks.Len(); ci++ {
		hasOff[ci] = hasOff[ci-1] || hasVal[ci-1]
		if !hasOff[ci] {
			continue
		}
		if hasOff[ci-1] {
			offsets[ci] = op(offsets[ci-1], sums[ci-1])
		} else {
			offsets[ci] = sums[ci-1]
		}
	}
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		var acc T
		if hasOff[ci] {
			acc = op(offsets[ci], ev(c.Lo))
		} else {
			acc = ev(c.Lo)
		}
		dst[c.Lo] = acc
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, ev(i))
			dst[i] = acc
		}
	})
}

// Sort executes the chain into dst and sorts it ascending under less.
// Sort is a fusion BARRIER: comparisons need materialized values, so the
// chain fuses into the fill pass (one sweep instead of k) and the
// comparison sort runs on dst as core.SortFunc would. dst must have
// length ≥ n.
func (pl *Pipeline[T]) Sort(p core.Policy, dst []T, less func(a, b T) bool) {
	pl.Copy(p, dst)
	pol, _ := pl.policyFor(p, "sort")
	core.SortFunc(pol, dst[:pl.n], less)
}

// ---------------------------------------------------------------------------
// Traffic model
//
// The per-element DRAM traffic of the staged vs fused execution, using the
// same write-allocate accounting as the simexec skeletons (a store to a
// cold line costs a read + a write): every materialized intermediate costs
// 2e to produce and e to consume, for element size e. These constants feed
// the pstlbench traffic columns and the ext-fusion experiment tables; the
// memsys plane derives its prediction independently from skeleton phases
// built with the same accounting.

// Traffic is the modeled DRAM traffic of one execution of a chain, in
// bytes, for both execution disciplines.
type Traffic struct {
	Fused  int64
	Staged int64
}

// ModelTraffic returns the modeled DRAM traffic of this chain under a
// given terminal ("reduce", "copy", "scan", "sort", "count", "each"),
// assuming elemBytes per element and an n too large to cache. The fused
// execution touches only source and sink; the staged execution streams
// every intermediate through memory.
func (pl *Pipeline[T]) ModelTraffic(elemBytes int, terminal string) Traffic {
	e := int64(elemBytes)
	n := int64(pl.n)
	srcRead := e // From: the source array is real traffic
	if pl.src == nil {
		srcRead = 0 // Generate: elements come from registers
	}
	stages := int64(len(pl.stages))

	// Staged: source materializes (Generate writes a tmp), each stage
	// reads its input array and writes (write-allocate) its output, the
	// terminal consumes the last array.
	var staged int64
	if pl.src == nil {
		staged += 2 * e // generate tmp0: write + allocate-read
	}
	staged += stages * 3 * e // per stage: read in + write out + wa
	var fused int64
	switch terminal {
	case "reduce", "count", "each":
		staged += e
		fused = srcRead
	case "copy", "sort":
		staged += 3 * e // read last + write dst + wa
		fused = srcRead + 2*e
	case "scan":
		staged += 4 * e // pass1 read, pass2 read + write + wa
		fused = 2*srcRead + 2*e
	default:
		staged += e
		fused = srcRead
	}
	return Traffic{Fused: fused * n, Staged: staged * n}
}
