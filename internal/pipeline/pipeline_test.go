package pipeline_test

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
	"pstlbench/internal/tune"
)

func testPolicy(t *testing.T) core.Policy {
	t.Helper()
	pool := native.New(4, native.StrategyStealing)
	t.Cleanup(pool.Close)
	// Fine grain, no sequential threshold: even tiny inputs take the
	// parallel path so the fusion properties exercise chunked dispatch.
	return core.Par(pool).WithGrain(exec.Fine)
}

// stageSpec is one randomized element-wise stage, applicable both to a
// fused pipeline and to a staged core.* composition over a buffer.
type stageSpec struct {
	kind int   // 0 add, 1 mul, 2 xor-fold, 3 indexed add
	k    int64 // parameter
}

func (s stageSpec) fuse(pl *pipeline.Pipeline[int64]) *pipeline.Pipeline[int64] {
	k := s.k
	switch s.kind {
	case 0:
		return pl.Transform(func(v int64) int64 { return v + k })
	case 1:
		return pl.Map(func(v int64) int64 { return v * k })
	case 2:
		return pl.Transform(func(v int64) int64 { return v ^ (v >> 3) ^ k })
	default:
		return pl.TransformIndexed(func(i int, v int64) int64 { return v + int64(i)*k })
	}
}

// staged applies the stage to buf as its own full core.* pass — the
// composition the fused chain must match element-wise.
func (s stageSpec) staged(p core.Policy, buf []int64) {
	k := s.k
	switch s.kind {
	case 0:
		core.Transform(p, buf, buf, func(v int64) int64 { return v + k })
	case 1:
		core.Transform(p, buf, buf, func(v int64) int64 { return v * k })
	case 2:
		core.Transform(p, buf, buf, func(v int64) int64 { return v ^ (v >> 3) ^ k })
	default:
		core.ForEachIndex(p, buf, func(i int, v *int64) { *v += int64(i) * k })
	}
}

// Property: every fused chain is element-wise equivalent to the staged
// core.* composition, across randomized sources, stage mixes, sizes
// (empty and 1-element forced), and terminals.
func TestPropFusedEqualsStagedComposition(t *testing.T) {
	p := testPolicy(t)
	rng := rand.New(rand.NewSource(42))
	add := func(a, b int64) int64 { return a + b }
	less := func(a, b int64) bool { return a < b }

	for trial := 0; trial < 400; trial++ {
		var n int
		switch trial % 8 { // force the degenerate sizes often
		case 0:
			n = 0
		case 1:
			n = 1
		default:
			n = rng.Intn(700)
		}
		fromSource := rng.Intn(2) == 0
		src := make([]int64, n)
		for i := range src {
			src[i] = rng.Int63n(1 << 20)
		}
		gen := func(i int) int64 { return int64(i)*2654435761 % (1 << 20) }

		stages := make([]stageSpec, rng.Intn(5))
		for i := range stages {
			stages[i] = stageSpec{kind: rng.Intn(4), k: rng.Int63n(64) + 1}
		}

		build := func() *pipeline.Pipeline[int64] {
			var pl *pipeline.Pipeline[int64]
			if fromSource {
				pl = pipeline.From(src)
			} else {
				pl = pipeline.Generate(n, gen)
			}
			for _, s := range stages {
				pl = s.fuse(pl)
			}
			return pl
		}
		// Staged reference: materialize the source, run every stage as a
		// separate core pass.
		buf := make([]int64, n)
		if fromSource {
			core.Copy(p, buf, src)
		} else {
			core.Generate(p, buf, gen)
		}
		for _, s := range stages {
			s.staged(p, buf)
		}

		switch rng.Intn(6) {
		case 0: // reduce
			got := build().Reduce(p, 7, add)
			want := core.Reduce(p, buf, 7, add)
			if got != want {
				t.Fatalf("trial %d: Reduce fused=%d staged=%d (n=%d stages=%v from=%v)",
					trial, got, want, n, stages, fromSource)
			}
		case 1: // sum
			got := pipeline.Sum(p, build(), 3)
			want := core.Sum(p, buf, 3)
			if got != want {
				t.Fatalf("trial %d: Sum fused=%d staged=%d", trial, got, want)
			}
		case 2: // copy
			got := make([]int64, n)
			build().Copy(p, got)
			if !slices.Equal(got, buf) {
				t.Fatalf("trial %d: Copy diverges (n=%d stages=%v)", trial, n, stages)
			}
		case 3: // scan
			got := make([]int64, n)
			want := make([]int64, n)
			build().Scan(p, got, add)
			core.InclusiveScan(p, want, buf, add)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d: Scan diverges (n=%d stages=%v)", trial, n, stages)
			}
		case 4: // count
			pred := func(v int64) bool { return v%3 == 0 }
			got := build().Count(p, pred)
			want := core.CountIf(p, buf, pred)
			if got != want {
				t.Fatalf("trial %d: Count fused=%d staged=%d", trial, got, want)
			}
		default: // sort
			got := make([]int64, n)
			build().Sort(p, got, less)
			want := slices.Clone(buf)
			core.SortFunc(p, want, less)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d: Sort diverges (n=%d stages=%v)", trial, n, stages)
			}
		}
	}
}

// Each and MapTo equivalence, including the type-changing seam.
func TestMapToAndEach(t *testing.T) {
	p := testPolicy(t)
	n := 1000
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	// float64 chain -> int lengths via MapTo, reduced.
	pl := pipeline.MapTo(
		pipeline.From(src).Transform(func(v float64) float64 { return v * 2 }),
		func(v float64) int64 { return int64(v) % 7 },
	)
	got := pipeline.Sum(p, pl, 0)
	var want int64
	for i := range src {
		want += int64(src[i]*2) % 7
	}
	if got != want {
		t.Fatalf("MapTo+Sum = %d, want %d", got, want)
	}

	// Each visits every index exactly once with the fused value.
	seen := make([]int64, n)
	pipeline.From(src).
		TransformIndexed(func(i int, v float64) float64 { return v + float64(i) }).
		Each(p, func(i int, v float64) { seen[i] = int64(v) })
	for i := range seen {
		if seen[i] != int64(2*i) {
			t.Fatalf("Each[%d] = %d, want %d", i, seen[i], 2*i)
		}
	}
}

// A pre-canceled policy must skip all chunks: Reduce returns init, Copy
// leaves dst untouched — and the token reports the result is not to be
// trusted, matching the staged algorithms' contract.
func TestPreCanceledSkipsWork(t *testing.T) {
	p := testPolicy(t)
	tok := &exec.Cancel{}
	tok.Cancel()
	pc := p.WithCancel(tok)
	src := make([]int64, 1<<12)
	for i := range src {
		src[i] = 1
	}
	got := pipeline.From(src).Transform(func(v int64) int64 { return v * 2 }).
		Reduce(pc, 99, func(a, b int64) int64 { return a + b })
	if got != 99 {
		t.Fatalf("pre-canceled Reduce = %d, want init 99", got)
	}
	dst := make([]int64, len(src))
	pipeline.From(src).Copy(pc, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("pre-canceled Copy wrote dst[%d]=%d", i, v)
		}
	}
	if !pc.Canceled() {
		t.Fatal("token must still report canceled")
	}
}

// Cancellation mid-chain: racing a cancel against a fused chain must never
// produce a state where the result is torn but the token claims the run
// was clean — the same property the core cancel tests pin, now through the
// fused executor.
func TestCancelMidChainNeverTearsSilently(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	const n = 1 << 16
	src := make([]int64, n)
	for i := range src {
		src[i] = 1
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tok := &exec.Cancel{}
		p := core.Par(pool).WithCancel(tok)
		delay := time.Duration(rng.Intn(40)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			tok.Cancel()
		}()
		sum := pipeline.From(src).
			Transform(func(v int64) int64 { return v * 3 }).
			Transform(func(v int64) int64 { return v - 2 }).
			Reduce(p, 0, func(a, b int64) int64 { return a + b })
		if !tok.Canceled() && sum != n {
			t.Fatalf("trial %d: token clean but sum=%d, want %d (torn result escaped)",
				trial, sum, n)
		}
	}
}

// Fused chains get their own tune sites: running a terminal under
// WithTuner must create tuner state keyed by the chain signature, and that
// site must converge under the same synthetic cost model an unfused stage
// site converges under (the auto-tuner cross-check of the issue).
func TestFusedSiteTunesLikeUnfused(t *testing.T) {
	p := testPolicy(t)
	tn := tune.New(tune.Options{})
	src := make([]int64, 1<<12)
	got := pipeline.From(src).
		Transform(func(v int64) int64 { return v + 1 }).
		Map(func(v int64) int64 { return v * 2 }).
		WithTuner(tn).
		Reduce(p, 0, func(a, b int64) int64 { return a + b })
	if got == -1 {
		t.Fatal("unreachable")
	}
	wantSite := "pipeline:from+map+map+reduce"
	found := false
	for _, k := range tn.Keys() {
		if k.Site == wantSite {
			found = true
			if k.N != 1<<12 {
				t.Fatalf("fused tune key N = %d, want %d", k.N, 1<<12)
			}
		}
	}
	if !found {
		t.Fatalf("no tuner state for fused site %q; keys=%v", wantSite, tn.Keys())
	}

	// Convergence cross-check: drive both a fused-chain site and a plain
	// stage site through the same synthetic U-shaped cost model (dispatch
	// overhead per chunk + imbalance penalty for coarse chunks); both must
	// lock, and on the same model they must lock onto comparable chunks.
	cost := func(chunk int) float64 {
		nChunks := float64((1<<16 + chunk - 1) / chunk)
		return 1e-5*nChunks + 2e-6*float64(chunk)
	}
	converge := func(site string) int {
		k := tune.Key{Site: site, N: 1 << 16, Workers: 8}
		for i := 0; i < 64; i++ {
			g := tn.Propose(k)
			tn.Observe(k, tune.Observation{Seconds: cost(g.MaxChunk)})
			if tn.Converged(k) {
				break
			}
		}
		if !tn.Converged(k) {
			t.Fatalf("site %q did not converge", site)
		}
		best, _, ok := tn.Best(k)
		if !ok {
			t.Fatalf("site %q converged without a best point", site)
		}
		return best
	}
	fused := converge("pipeline:from+map+map+reduce")
	unfused := converge("transform")
	ratio := float64(fused) / float64(unfused)
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("fused site locked chunk %d, unfused %d: diverged beyond 4x on the same cost model",
			fused, unfused)
	}
}

// The traffic model must report the fused form as strictly cheaper for any
// chain with at least one stage, with the staged bill growing per stage.
func TestModelTrafficMonotone(t *testing.T) {
	src := make([]float64, 1024)
	base := pipeline.From(src).ModelTraffic(8, "reduce")
	one := pipeline.From(src).Transform(func(v float64) float64 { return v }).ModelTraffic(8, "reduce")
	two := pipeline.From(src).Transform(func(v float64) float64 { return v }).
		Transform(func(v float64) float64 { return v }).ModelTraffic(8, "reduce")
	if !(two.Staged > one.Staged && one.Staged > base.Staged) {
		t.Fatalf("staged traffic not increasing per stage: %d %d %d",
			base.Staged, one.Staged, two.Staged)
	}
	if two.Fused != base.Fused {
		t.Fatalf("fused traffic should not grow with stages: %d vs %d", base.Fused, two.Fused)
	}
	if two.Fused >= two.Staged {
		t.Fatalf("fused %d not cheaper than staged %d", two.Fused, two.Staged)
	}
}
