// Package kernels defines the native benchmark kernels of the suite — the
// Go equivalents of pSTL-Bench's Listings 1-3: the k_it volatile loop for
// for_each, the random-element find, the plus-reduction, the inclusive
// prefix sum, and the shuffled sort. Each kernel produces a harness
// benchmark body that measures exactly the algorithm call (shuffling and
// setup are excluded via manual timing, as WRAP_TIMING does).
package kernels

import (
	"math/rand"
	"time"

	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/harness"
)

// Elem is the benchmark element type, following the paper's default of
// 64-bit floating point operands.
type Elem = float64

// sink defeats dead-code elimination of the for_each kernel, playing the
// role of the volatile qualifier in Listing 1.
var sink Elem

// ForEachKernel is the paper's Listing 1: run kit dependent increments and
// store the result into the element.
func ForEachKernel(kit int) func(*Elem) {
	return func(v *Elem) {
		var a Elem
		for i := 0; i < kit; i++ {
			a++
		}
		*v = a
	}
}

// Kernel is one named benchmark kernel.
type Kernel struct {
	// Name is the pSTL-Bench kernel name.
	Name string
	// Op is the corresponding simulator operation; only meaningful when
	// Sim is true.
	Op backend.Op
	// Sim marks the five studied kernels that the performance simulator
	// models; the extended kernels run natively only.
	Sim bool
	// Body builds a harness benchmark body running the kernel natively
	// over n elements with the given policy and computational intensity.
	Body func(p core.Policy, n, kit int) func(*harness.State)
}

// All returns the five studied kernels in the paper's order.
func All() []Kernel {
	return []Kernel{
		{Name: "find", Op: backend.OpFind, Sim: true, Body: findBody},
		{Name: "for_each", Op: backend.OpForEach, Sim: true, Body: forEachBody},
		{Name: "inclusive_scan", Op: backend.OpInclusiveScan, Sim: true, Body: scanBody},
		{Name: "reduce", Op: backend.OpReduce, Sim: true, Body: reduceBody},
		{Name: "sort", Op: backend.OpSort, Sim: true, Body: sortBody},
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// increasing returns [1, 2, ..., n] like pstl::generate_increment.
func increasing(p core.Policy, n int) []Elem {
	data := make([]Elem, n)
	core.Generate(p, data, func(i int) Elem { return Elem(i + 1) })
	return data
}

func timeIt(st *harness.State, f func()) {
	start := time.Now()
	f()
	st.SetIterationTime(time.Since(start).Seconds())
}

func findBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		rng := rand.New(rand.NewSource(42))
		for st.Next() {
			target := Elem(rng.Intn(n) + 1)
			var idx int
			timeIt(st, func() { idx = core.Find(p, data, target) })
			if idx < 0 {
				panic("kernels: find missed a present element")
			}
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func forEachBody(p core.Policy, n, kit int) func(*harness.State) {
	if kit < 1 {
		kit = 1
	}
	kernel := ForEachKernel(kit)
	return func(st *harness.State) {
		data := increasing(p, n)
		for st.Next() {
			timeIt(st, func() { core.ForEach(p, data, kernel) })
		}
		sink = data[0]
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func scanBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() { core.InclusiveSum(p, dst, data) })
		}
		if n > 0 && dst[n-1] != Elem(n)*Elem(n+1)/2 {
			panic("kernels: inclusive_scan result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func reduceBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		var r Elem
		for st.Next() {
			timeIt(st, func() { r = core.Sum(p, data, 0) })
		}
		if n > 0 && r != Elem(n)*Elem(n+1)/2 {
			panic("kernels: reduce result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func sortBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		rng := rand.New(rand.NewSource(7))
		for st.Next() {
			// The shuffle is setup, excluded from the measurement
			// exactly as pSTL-Bench's WRAP_TIMING excludes it.
			rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
			timeIt(st, func() { core.Sort(p, data) })
		}
		if n > 1 && (data[0] != 1 || data[n-1] != Elem(n)) {
			panic("kernels: sort result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}
