package kernels

import (
	"math/rand"
	"slices"

	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/harness"
)

// Extended returns the wider benchmark set covering the Table-1 subset
// that pSTL-Bench supports beyond the five studied kernels. These run
// natively only (the simulator models the five studied operations); each
// body validates its own result.
func Extended() []Kernel {
	ext := []Kernel{
		{Name: "transform", Op: backend.OpTransform, Sim: true, Body: transformBody},
		{Name: "transform_reduce", Body: transformReduceBody},
		{Name: "exclusive_scan", Body: exclusiveScanBody},
		{Name: "adjacent_difference", Body: adjacentDifferenceBody},
		{Name: "count_if", Op: backend.OpCount, Sim: true, Body: countIfBody},
		{Name: "minmax_element", Op: backend.OpMinMax, Sim: true, Body: minMaxBody},
		{Name: "copy", Op: backend.OpCopy, Sim: true, Body: copyBody},
		{Name: "fill", Body: fillBody},
		{Name: "all_of", Body: allOfBody},
		{Name: "merge", Body: mergeBody},
		{Name: "stable_sort", Body: stableSortBody},
		{Name: "partition", Body: partitionBody},
		{Name: "unique", Body: uniqueBody},
		{Name: "reverse", Body: reverseBody},
	}
	return append(All(), ext...)
}

// ExtByName looks a kernel up across the extended set.
func ExtByName(name string) (Kernel, bool) {
	for _, k := range Extended() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

func transformBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := increasing(p, n)
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() {
				core.Transform(p, dst, src, func(v Elem) Elem { return 2*v + 1 })
			})
		}
		if n > 0 && dst[n-1] != 2*Elem(n)+1 {
			panic("kernels: transform result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func transformReduceBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		a := increasing(p, n)
		b := make([]Elem, n)
		core.Fill(p, b, 2)
		var dot Elem
		for st.Next() {
			timeIt(st, func() {
				dot = core.TransformReduceBinary(p, a, b, 0,
					func(x, y Elem) Elem { return x + y },
					func(x, y Elem) Elem { return x * y })
			})
		}
		if n > 0 && dot != Elem(n)*Elem(n+1) {
			panic("kernels: transform_reduce result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func exclusiveScanBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := make([]Elem, n)
		core.Fill(p, src, 1)
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() {
				core.ExclusiveScan(p, dst, src, 0, func(a, b Elem) Elem { return a + b })
			})
		}
		if n > 1 && dst[n-1] != Elem(n-1) {
			panic("kernels: exclusive_scan result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func adjacentDifferenceBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := increasing(p, n)
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() {
				core.AdjacentDifference(p, dst, src, func(cur, prev Elem) Elem { return cur - prev })
			})
		}
		if n > 1 && dst[n-1] != 1 {
			panic("kernels: adjacent_difference result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func countIfBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		var c int
		for st.Next() {
			timeIt(st, func() {
				c = core.CountIf(p, data, func(v Elem) bool { return int64(v)%2 == 0 })
			})
		}
		if c != n/2 {
			panic("kernels: count_if result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func minMaxBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		var lo, hi int
		for st.Next() {
			timeIt(st, func() {
				lo, hi = core.MinMaxElement(p, data, func(a, b Elem) bool { return a < b })
			})
		}
		if n > 0 && (data[lo] != 1 || data[hi] != Elem(n)) {
			panic("kernels: minmax_element result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func copyBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := increasing(p, n)
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() { core.Copy(p, dst, src) })
		}
		if n > 0 && dst[n-1] != Elem(n) {
			panic("kernels: copy result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func fillBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		dst := make([]Elem, n)
		for st.Next() {
			timeIt(st, func() { core.Fill(p, dst, 7) })
		}
		if n > 0 && dst[n-1] != 7 {
			panic("kernels: fill result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func allOfBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		ok := true
		for st.Next() {
			timeIt(st, func() {
				ok = core.AllOf(p, data, func(v Elem) bool { return v > 0 })
			})
		}
		if !ok {
			panic("kernels: all_of result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func mergeBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		half := n / 2
		a := increasing(p, half)
		b := increasing(p, n-half)
		dst := make([]Elem, n)
		less := func(x, y Elem) bool { return x < y }
		for st.Next() {
			timeIt(st, func() { core.Merge(p, dst, a, b, less) })
		}
		if n > 1 && !core.IsSorted(p, dst, less) {
			panic("kernels: merge result not sorted")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 24)
	}
}

func stableSortBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		rng := rand.New(rand.NewSource(9))
		less := func(a, b Elem) bool { return a < b }
		for st.Next() {
			rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
			timeIt(st, func() { core.StableSort(p, data, less) })
		}
		if n > 1 && !slices.IsSorted(data) {
			panic("kernels: stable_sort result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 8)
	}
}

func partitionBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := increasing(p, n)
		work := make([]Elem, n)
		pred := func(v Elem) bool { return int64(v)%2 == 0 }
		var k int
		for st.Next() {
			copy(work, src) // setup, excluded
			timeIt(st, func() { k = core.StablePartition(p, work, pred) })
		}
		if k != n/2 || !core.IsPartitioned(p, work, pred) {
			panic("kernels: partition result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func uniqueBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		src := make([]Elem, n)
		core.Generate(p, src, func(i int) Elem { return Elem(i / 4) })
		work := make([]Elem, n)
		var k int
		for st.Next() {
			copy(work, src) // setup, excluded
			timeIt(st, func() { k = core.Unique(p, work) })
		}
		if want := (n + 3) / 4; n > 0 && k != want {
			panic("kernels: unique result wrong")
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}

func reverseBody(p core.Policy, n, _ int) func(*harness.State) {
	return func(st *harness.State) {
		data := increasing(p, n)
		for st.Next() {
			timeIt(st, func() { core.Reverse(p, data) })
		}
		st.SetBytesProcessed(int64(st.Iterations()) * int64(n) * 16)
	}
}
