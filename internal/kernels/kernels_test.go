package kernels

import (
	"strings"
	"testing"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/harness"
	"pstlbench/internal/native"
)

func runKernel(t *testing.T, k Kernel, p core.Policy, n, kit int) harness.Result {
	t.Helper()
	su := &harness.Suite{}
	su.Register(harness.Benchmark{
		Name:    k.Name,
		MinTime: 5 * time.Millisecond,
		Fn:      k.Body(p, n, kit),
	})
	rs := su.Run(nil)
	if len(rs) != 1 {
		t.Fatalf("expected one result, got %d", len(rs))
	}
	return rs[0]
}

func policies(t *testing.T) map[string]core.Policy {
	t.Helper()
	pool := native.New(4, native.StrategyStealing)
	t.Cleanup(pool.Close)
	return map[string]core.Policy{
		"seq": core.Seq(),
		"par": core.Par(pool),
	}
}

func TestAllKernelsRunAndValidate(t *testing.T) {
	// Each kernel body validates its own result and panics on corruption,
	// so a clean run is a correctness check of the real library under
	// benchmark conditions.
	for name, p := range policies(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			for _, k := range All() {
				r := runKernel(t, k, p, 10000, 4)
				if r.Seconds <= 0 {
					t.Errorf("%s: non-positive time", k.Name)
				}
				if r.BytesPerSec <= 0 {
					t.Errorf("%s: missing throughput", k.Name)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, k := range All() {
		got, ok := ByName(k.Name)
		if !ok || got.Name != k.Name {
			t.Errorf("ByName(%q) failed", k.Name)
		}
	}
	if _, ok := ByName("transform"); ok {
		t.Error("unknown kernel resolved")
	}
	names := make([]string, 0, 5)
	for _, k := range All() {
		names = append(names, k.Name)
	}
	if strings.Join(names, ",") != "find,for_each,inclusive_scan,reduce,sort" {
		t.Errorf("kernel order: %v", names)
	}
}

func TestForEachKernelSemantics(t *testing.T) {
	// Listing 1: the kernel stores k_it into each element.
	k := ForEachKernel(37)
	var v Elem = 99
	k(&v)
	if v != 37 {
		t.Fatalf("kernel stored %v, want 37", v)
	}
}

func TestKernelsHonorKit(t *testing.T) {
	// Higher k_it must take proportionally longer on for_each.
	p := core.Seq()
	lo := runKernel(t, mustKernel(t, "for_each"), p, 1<<14, 1)
	hi := runKernel(t, mustKernel(t, "for_each"), p, 1<<14, 2000)
	if hi.Seconds < 20*lo.Seconds {
		t.Errorf("k_it=2000 (%v) should cost >> k_it=1 (%v)", hi.Seconds, lo.Seconds)
	}
}

func mustKernel(t *testing.T, name string) Kernel {
	t.Helper()
	k, ok := ByName(name)
	if !ok {
		t.Fatalf("missing kernel %s", name)
	}
	return k
}

func TestExtendedKernelsRunAndValidate(t *testing.T) {
	pool := native.New(3, native.StrategyForkJoin)
	t.Cleanup(pool.Close)
	p := core.Par(pool)
	ext := Extended()
	if len(ext) < 19 {
		t.Fatalf("extended set has %d kernels, want >= 19", len(ext))
	}
	for _, k := range ext {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			r := runKernel(t, k, p, 4096, 2)
			if r.Seconds <= 0 || r.BytesPerSec <= 0 {
				t.Fatalf("%s: bad measurement %+v", k.Name, r)
			}
		})
	}
	// Lookup across the extended set.
	if _, ok := ExtByName("stable_sort"); !ok {
		t.Error("ExtByName missed stable_sort")
	}
	if _, ok := ExtByName("nope"); ok {
		t.Error("ExtByName resolved a bogus name")
	}
	// The five studied kernels plus the four extension ops are
	// simulator-backed.
	simCount := 0
	for _, k := range ext {
		if k.Sim {
			simCount++
		}
	}
	if simCount != 9 {
		t.Errorf("sim-backed kernels = %d, want 9", simCount)
	}
}
