package experiments

import (
	"fmt"
	"time"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/machine"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/stats"
)

// ExtensionFusion is an extension beyond the paper: it quantifies the win
// of fusing element-wise pipeline chains (internal/pipeline) into one
// chunk-granular pass, and of coalescing small jobs into batched pool
// submissions (internal/serve). Three parts:
//
//  1. Prediction: the discrete-event simulator executes staged and fused
//     chain skeletons (skeleton.StagedChainPhases / FusedChainPhases) on
//     the modeled machine, predicting the DRAM-traffic drop and the time
//     ratio at bandwidth-bound sizes — a 3-stage reduce-terminated chain
//     should cut traffic ~7x and time toward the traffic ratio as the
//     chain becomes memory-bound.
//  2. Measurement: the same chains run natively — separate core.* passes
//     with a materialized intermediate vs one pipeline.Sum pass — on the
//     real pool. The acceptance bar is a >= 2x wall-time reduction for
//     the 3-stage chain.
//  3. Batching: per-job overhead of flooding a Server with small jobs,
//     individual dispatch vs the batched small-job fast path.
func ExtensionFusion(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-fusion",
		Title: "Fused pipeline chains: predicted traffic drop vs measured native win, plus batched small-job dispatch",
	}
	fusionPredicted(cfg, rep)
	fusionMeasured(cfg, rep)
	fusionBatched(cfg, rep)
	return rep
}

// fusionChain names one modeled/measured chain shape.
type fusionChain struct {
	name  string
	chain skeleton.Chain
}

func fusionChains() []fusionChain {
	return []fusionChain{
		{"from+2map+reduce", skeleton.Chain{Stages: 2, Terminal: "reduce"}},
		{"gen+2map+reduce", skeleton.Chain{Stages: 2, Terminal: "reduce", Generate: true}},
		{"from+2map+copy", skeleton.Chain{Stages: 2, Terminal: "copy"}},
		{"from+2map+scan", skeleton.Chain{Stages: 2, Terminal: "scan"}},
	}
}

// fusionPredicted runs the staged and fused skeletons through the
// simulator on Mach A / GCC-TBB at a bandwidth-bound size.
func fusionPredicted(cfg Config, rep *Report) {
	m := machine.MachA()
	b := backend.GCCTBB()
	threads := m.Cores
	n := int64(1) << (cfg.maxExp() - 6) // 2^24 at full scale: past LLC
	w := skeleton.Workload{Op: backend.OpTransform, N: n, ElemBytes: 8, Kit: 1}

	t := &report.Table{
		Title: fmt.Sprintf("%s, GCC-TBB, %d threads, n=%d: simulated staged vs fused chains",
			m.Name, threads, n),
		Headers: []string{"chain", "B/elem staged", "B/elem fused", "traffic ratio",
			"staged time", "fused time", "predicted speedup"},
	}
	var headline float64
	for _, fc := range fusionChains() {
		staged := runChainSim(m, b, w, fc.chain, threads, false)
		fused := runChainSim(m, b, w, fc.chain, threads, true)
		sb := fc.chain.StagedBytesPerElem()
		fb := fc.chain.FusedBytesPerElem()
		ratio := 0.0
		if fb > 0 {
			ratio = sb / fb
		}
		sp := staged.Seconds / fused.Seconds
		if fc.name == "from+2map+reduce" {
			headline = sp
		}
		ratioCell := "inf"
		if ratio > 0 {
			ratioCell = fmt.Sprintf("%.1fx", ratio)
		}
		t.AddRow(fc.name, f1(sb), f1(fb), ratioCell,
			fmt.Sprintf("%.3gs", staged.Seconds), fmt.Sprintf("%.3gs", fused.Seconds),
			fmt.Sprintf("%.2fx", sp))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"prediction: the 3-stage reduce chain cuts per-element traffic from %g to %g bytes (write-allocate accounting) and the simulator predicts a %.2fx speedup at the bandwidth-bound size — the ceiling the measured run below is compared against",
		skeleton.Chain{Stages: 2, Terminal: "reduce"}.StagedBytesPerElem(),
		skeleton.Chain{Stages: 2, Terminal: "reduce"}.FusedBytesPerElem(), headline))
}

func runChainSim(m *machine.Machine, b *backend.Backend, w skeleton.Workload,
	c skeleton.Chain, threads int, fused bool) simexec.Result {
	var phases []skeleton.Phase
	var parallel bool
	if fused {
		phases, parallel = skeleton.FusedChainPhases(w, c, b, threads, m)
	} else {
		phases, parallel = skeleton.StagedChainPhases(w, c, b, threads, m)
	}
	return simexec.RunPhases(simexec.Config{
		Machine: m, Backend: b, Workload: w,
		Threads: threads, Alloc: allocsim.FirstTouch,
	}, phases, skeleton.ChainWorkingSet(w, c, fused), parallel)
}

// fusionMeasured times the 3-stage sum chain natively: staged core passes
// vs the fused pipeline, slice and generated sources.
func fusionMeasured(cfg Config, rep *Report) {
	n := 1 << 22
	reps := 5
	if cfg.Scale >= 8 { // quick/CI runs
		n = 1 << 18
		reps = 3
	}
	pool := native.New(0, native.StrategyStealing)
	defer pool.Close()
	p := core.Par(pool)

	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i % 4096)
	}
	tmp := make([]float64, n)
	gen := func(i int) float64 { return float64((uint64(i+1) * 6364136223846793005) >> 40) }
	f := func(v float64) float64 { return v*3 + 1 }
	g := func(v float64) float64 { return v * 0.5 }

	type variant struct {
		name          string
		staged, fused func() float64
		chain         skeleton.Chain
	}
	variants := []variant{
		{
			name: "from+2map+sum",
			staged: func() float64 {
				core.Transform(p, tmp, src, f)
				core.Transform(p, tmp, tmp, g)
				return core.Sum(p, tmp, 0)
			},
			fused: func() float64 {
				return pipeline.Sum(p, pipeline.From(src).Transform(f).Transform(g), 0)
			},
			chain: skeleton.Chain{Stages: 2, Terminal: "reduce"},
		},
		{
			name: "gen+2map+sum",
			staged: func() float64 {
				core.Generate(p, tmp, gen)
				core.Transform(p, tmp, tmp, f)
				core.Transform(p, tmp, tmp, g)
				return core.Sum(p, tmp, 0)
			},
			fused: func() float64 {
				return pipeline.Sum(p, pipeline.Generate(n, gen).Transform(f).Transform(g), 0)
			},
			chain: skeleton.Chain{Stages: 2, Terminal: "reduce", Generate: true},
		},
	}

	t := &report.Table{
		Title: fmt.Sprintf("native, %d workers, n=%d: measured staged vs fused (median of %d)",
			pool.Workers(), n, reps),
		Headers: []string{"chain", "staged", "fused", "measured speedup", "traffic model"},
	}
	var headline float64
	for _, v := range variants {
		sv := v.staged()
		fv := v.fused()
		if diff := sv - fv; diff < -1e-6*sv || diff > 1e-6*sv {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"WARNING %s: fused result %g differs from staged %g", v.name, fv, sv))
		}
		ts := medianSeconds(v.staged, reps)
		tf := medianSeconds(v.fused, reps)
		sp := ts / tf
		if v.name == "from+2map+sum" {
			headline = sp
		}
		fb := v.chain.FusedBytesPerElem()
		trafficCell := fmt.Sprintf("%.0f->%.0f B/elem", v.chain.StagedBytesPerElem(), fb)
		t.AddRow(v.name, fmt.Sprintf("%.3gs", ts), fmt.Sprintf("%.3gs", tf),
			fmt.Sprintf("%.2fx", sp), trafficCell)
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"measured: the 3-stage slice-source chain runs %.2fx faster fused (acceptance bar: 2x); the win combines the modeled traffic drop with one loop's worth of per-element call overhead instead of three",
		headline))
}

func medianSeconds(fn func() float64, reps int) float64 {
	var sink float64
	samples := make([]float64, reps)
	for i := range samples {
		start := time.Now()
		sink += fn()
		samples[i] = time.Since(start).Seconds()
	}
	_ = sink
	return stats.Median(samples)
}

// fusionBatched measures per-job overhead of a small-job flood with the
// batched fast path off vs on.
func fusionBatched(cfg Config, rep *Report) {
	jobs := 256
	if cfg.Scale >= 8 {
		jobs = 64
	}
	const nJob = 1 << 12
	perJob := func(smallMax int) float64 {
		s := serve.New(serve.Config{
			Workers: 4, MaxConcurrent: 1, QueueCap: jobs + 8,
			SmallJobMax: smallMax, BatchMax: 16,
		})
		defer s.Close()
		// A short blocker lets the queue fill before dispatch decisions run.
		hold, err := s.Submit(serve.Spec{Kernel: "sort", N: 1 << 15, Tenant: "hold"})
		if err != nil {
			panic(err)
		}
		batch := make([]*serve.Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			j, err := s.Submit(serve.Spec{Kernel: "reduce", N: nJob, Tenant: "t"})
			if err != nil {
				panic(err)
			}
			batch = append(batch, j)
		}
		<-hold.Done()
		start := time.Now()
		for _, j := range batch {
			<-j.Done()
		}
		return time.Since(start).Seconds() / float64(jobs)
	}
	indiv := perJob(0)
	batched := perJob(1 << 14)
	t := &report.Table{
		Title:   fmt.Sprintf("serve: %d jobs of reduce n=%d behind one slot", jobs, nJob),
		Headers: []string{"dispatch", "per-job time", "relative"},
	}
	t.AddRow("individual", fmt.Sprintf("%.3gs", indiv), "1.00x")
	t.AddRow("batched", fmt.Sprintf("%.3gs", batched), fmt.Sprintf("%.2fx", indiv/batched))
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"batching: coalescing same-tenant small jobs into one pool submission cuts per-job dispatch overhead %.2fx (goroutine spawn, drain round-trip, and submission amortized across the batch)",
		indiv/batched))
}
