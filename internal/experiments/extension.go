package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
)

// ExtensionARM implements the paper's stated future work: predict the
// backend comparison on an ARM server (Mach F, a Graviton3-class
// single-socket Neoverse V1). The interesting hypothesis the model can
// test: on a flat (single-NUMA-node) machine with a high per-core
// bandwidth share, the placement-sensitivity differences between backends
// largely vanish, and the ranking collapses to pure scheduling overhead.
func ExtensionARM(cfg Config) *Report {
	m := machine.MachF()
	n := int64(1) << cfg.maxExp()
	t := &report.Table{
		Title:   fmt.Sprintf("Predicted speedup vs GCC-SEQ on %s (%d cores, 1 NUMA node), n=%d", m.Name, m.Cores, n),
		Headers: append([]string{"Backend"}, tab5Labels()...),
	}
	for _, b := range backend.Parallel() {
		row := []string{b.ID}
		for _, k := range tab5Kernels {
			row = append(row, speedupCell(m, b, k.op, k.kit, n))
		}
		t.AddRow(row...)
	}

	// The allocator experiment on a single-node machine is the control
	// case: first-touch cannot help when there is only one node.
	ta := &report.Table{
		Title:   "Allocator speedup on Mach F (single node): expected ~1.00 everywhere",
		Headers: append([]string{"Backend"}, fig1Labels()...),
	}
	for _, b := range []*backend.Backend{backend.GCCTBB(), backend.NVCOMP()} {
		row := []string{b.ID}
		for _, k := range fig1Kernels {
			def := runCase(caseSpec{m: m, b: b, op: k.op, n: n, kit: k.kit, threads: m.Cores, alloc: allocsim.Default}).Seconds
			ft := runCase(caseSpec{m: m, b: b, op: k.op, n: n, kit: k.kit, threads: m.Cores, alloc: allocsim.FirstTouch}).Seconds
			row = append(row, f2(def/ft))
		}
		ta.AddRow(row...)
	}
	return &Report{
		ID: "ext-arm", Title: "Extension: predicted backend comparison on ARM (paper future work)",
		Tables: []*report.Table{t, ta},
		Notes: []string{
			"prediction, not a reproduction: no published ARM measurements exist in the paper",
			"single NUMA node: memory-bound ceilings rise to the raw STREAM ratio (~10.7x) and the allocator becomes irrelevant — backend ranking is set by scheduling overhead alone",
		},
	}
}
