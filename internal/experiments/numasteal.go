package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/stats"
)

// ExtensionNUMASteal is an extension beyond the paper: it sweeps the
// NUMA-aware steal-order toggle on the two 8-node Zen machines (Mach B and
// Mach C), where Table 5/6 locate the scaling knee, and reports the strong
// scaling of the work-stealing backend with the policy off (the uniform
// random stealing the paper's runtimes use) and on (locality-ordered
// victim scans). The headline metrics are the remote-steal counts — the
// events that put first-touched pages on the fabric — and the Table 6
// knee: the largest thread count still reaching 70 % parallel efficiency.
func ExtensionNUMASteal(cfg Config) *Report {
	n := int64(1) << cfg.maxExp()
	rep := &Report{
		ID:    "ext-numasteal",
		Title: "NUMA-aware steal order: remote steals and the Table 6 knee (Mach B/C, GCC-TBB for_each)",
	}
	for _, m := range []*machine.Machine{machine.MachB(), machine.MachC()} {
		t := &report.Table{
			Title: fmt.Sprintf("%s, for_each n=%d, first-touch", m.Name, n),
			Headers: []string{"threads", "speedup off", "speedup on",
				"remote steals off", "remote steals on", "local steals off", "local steals on"},
		}
		seq := seqBaseline(caseSpec{m: m, op: backend.OpForEach, n: n})
		var ths []int
		var spsOff, spsOn []float64
		var totRemOff, totRemOn float64
		for _, th := range m.ThreadCounts() {
			off := runCase(caseSpec{m: m, b: backend.GCCTBB(), op: backend.OpForEach,
				n: n, threads: th, alloc: allocsim.FirstTouch})
			bOn := backend.GCCTBB()
			bOn.NUMASteal = true
			on := runCase(caseSpec{m: m, b: bOn, op: backend.OpForEach,
				n: n, threads: th, alloc: allocsim.FirstTouch})
			ths = append(ths, th)
			spsOff = append(spsOff, seq/off.Seconds)
			spsOn = append(spsOn, seq/on.Seconds)
			totRemOff += off.Counters.RemoteSteals
			totRemOn += on.Counters.RemoteSteals
			t.AddRow(fmt.Sprintf("%d", th),
				f2(seq/off.Seconds), f2(seq/on.Seconds),
				f1(off.Counters.RemoteSteals), f1(on.Counters.RemoteSteals),
				f1(off.Counters.LocalSteals), f1(on.Counters.LocalSteals))
		}
		knee70Off := stats.MaxThreadsAtEfficiency(ths, spsOff, 0.70)
		knee70On := stats.MaxThreadsAtEfficiency(ths, spsOn, 0.70)
		kneeOff := selfRelativeKnee(ths, spsOff, 0.50)
		kneeOn := selfRelativeKnee(ths, spsOn, 0.50)
		rep.Tables = append(rep.Tables, t)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: scaling knee (>=50%% efficiency vs the backend's own 1-thread run) %d -> %d threads with NUMA-aware stealing; Table 6 knee (>=70%% vs sequential) %d -> %d; remote steals %.0f -> %.0f over the sweep",
			m.Name, kneeOff, kneeOn, knee70Off, knee70On, totRemOff, totRemOn))
	}
	rep.Notes = append(rep.Notes,
		"off models the paper's runtimes (uniform random victim selection decorrelates chunks from their first-touched pages); on scans same-node victims first, so only cross-node steals generate fabric traffic")
	rep.Notes = append(rep.Notes,
		"the strict Table 6 metric is dominated by the backend's dispatch overhead at low thread counts, so the knee is reported both ways; the self-relative knee isolates the fabric collapse the policy removes")
	return rep
}

// selfRelativeKnee is the largest thread count whose efficiency relative
// to the backend's own single-thread run stays at or above threshold —
// the knee of the strong-scaling curve itself, independent of the
// sequential-baseline overhead gap.
func selfRelativeKnee(ths []int, sps []float64, threshold float64) int {
	if len(sps) == 0 || sps[0] <= 0 {
		return 0
	}
	rel := make([]float64, len(sps))
	for i, s := range sps {
		rel[i] = s / sps[0]
	}
	return stats.MaxThreadsAtEfficiency(ths, rel, threshold)
}
