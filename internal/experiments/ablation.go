package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
)

// The ablations probe the design decisions called out in DESIGN.md: the
// grain-size policy, the bandwidth-contention model, and HPX's per-task
// cost structure. They are extensions beyond the paper's own experiments.

// AblationGrain sweeps the chunks-per-worker grain of the TBB backend for
// for_each on Mach A: coarser grains reduce per-task overhead, finer
// grains balance better; the sweet spot the auto_partitioner targets is a
// few chunks per worker.
func AblationGrain(cfg Config) *Report {
	m := machine.MachA()
	nBig := int64(1) << cfg.maxExp()
	nSmall := int64(1) << 16
	t := &report.Table{
		Title: fmt.Sprintf("for_each k_it=1 on Mach A, 32 threads (GCC-TBB grain sweep; HPX-class task cost in parentheses)"),
		Headers: []string{"chunks/worker",
			fmt.Sprintf("n=%d time", nBig), fmt.Sprintf("n=%d time", nSmall)},
	}
	timeFor := func(b *backend.Backend, n int64) float64 {
		return runCase(caseSpec{m: m, b: b, op: backend.OpForEach, n: n, kit: 1, threads: 32, alloc: allocsim.FirstTouch}).Seconds
	}
	for _, cpw := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		b := backend.GCCTBB()
		b.Grain = exec.Grain{ChunksPerWorker: cpw}
		// The same sweep with HPX-class per-task cost exposes why grain
		// matters: cheap tasks make the grain invisible at DRAM scale,
		// expensive ones punish fine grains at small n.
		bc := backend.GCCTBB()
		bc.Grain = b.Grain
		bc.TaskCost, bc.QueuePop = 1.5e-6, 0.8e-6
		t.AddRow(fmt.Sprintf("%d", cpw),
			fmt.Sprintf("%.2fms (%.2fms)", timeFor(b, nBig)*1e3, timeFor(bc, nBig)*1e3),
			fmt.Sprintf("%.1fus (%.1fus)", timeFor(b, nSmall)*1e6, timeFor(bc, nSmall)*1e6))
	}
	return &Report{
		ID: "abl-grain", Title: "Ablation: grain-size policy",
		Tables: []*report.Table{t},
		Notes: []string{
			"at DRAM scale the grain is invisible (bandwidth-bound); at 2^16 fine grains multiply the per-task cost — the regime where the paper's small-size crossovers live",
		},
	}
}

// AblationContention disables the NUMA mechanisms one at a time (remote
// penalty, fabric cap, node-0 default placement) to show each one's
// contribution to the memory-bound results.
func AblationContention(cfg Config) *Report {
	n := int64(1) << cfg.maxExp()
	t := &report.Table{
		Title:   fmt.Sprintf("reduce on Mach B, 64 threads, n=%d: contention mechanisms", n),
		Headers: []string{"Model variant", "GCC-TBB speedup", "GCC-HPX speedup"},
	}
	variants := []struct {
		name string
		mod  func(*machine.Machine)
	}{
		{"full model", func(*machine.Machine) {}},
		{"no remote penalty", func(m *machine.Machine) { m.RemoteFactor = 1 }},
		{"no fabric cap", func(m *machine.Machine) { m.FabricBW = 1e9 }},
		{"no NUMA at all", func(m *machine.Machine) {
			m.RemoteFactor = 1
			m.FabricBW = 1e9
			m.NUMANodes = 1
		}},
	}
	addRows := func(t *report.Table, mk func() *machine.Machine, op backend.Op) {
		for _, v := range variants {
			m := mk()
			v.mod(m)
			seq := seqBaseline(caseSpec{m: m, op: op, n: n})
			row := []string{v.name}
			for _, b := range []*backend.Backend{backend.GCCTBB(), backend.GCCHPX()} {
				r := runCase(caseSpec{m: m, b: b, op: op, n: n, threads: m.Cores, alloc: allocsim.FirstTouch})
				row = append(row, f1(seq/r.Seconds))
			}
			t.AddRow(row...)
		}
	}
	addRows(t, machine.MachB, backend.OpReduce)
	tA := &report.Table{
		Title:   fmt.Sprintf("for_each k_it=1 on Mach A, 32 threads, n=%d: contention mechanisms", n),
		Headers: []string{"Model variant", "GCC-TBB speedup", "GCC-HPX speedup"},
	}
	addRows(tA, machine.MachA, backend.OpForEach)
	return &Report{
		ID: "abl-contention", Title: "Ablation: NUMA contention mechanisms",
		Tables: []*report.Table{t, tA},
		Notes: []string{
			"on Mach B (8 nodes) the fabric cap is the binding constraint for reduce; removing every NUMA effect erases most of the backend differences",
			"on Mach A (2 nodes) the node-controller contention dominates instead",
		},
	}
}

// AblationCheapFutures asks what HPX's scalability would look like if its
// futures were as cheap as TBB's tasks: it replaces HPX's cost sheet
// (fork, per-task, queue pop, per-element overhead) with TBB's while
// keeping the central-queue strategy.
func AblationCheapFutures(cfg Config) *Report {
	m := machine.MachA()
	n := int64(1) << cfg.maxExp()
	t := &report.Table{
		Title:   fmt.Sprintf("for_each k_it=1 on Mach A, n=%d: HPX with hypothetical cheap futures", n),
		Headers: []string{"threads", "HPX (real)", "HPX (cheap futures)", "GCC-TBB"},
	}
	cheap := backend.GCCHPX()
	tbb := backend.GCCTBB()
	cheap.ForkBase, cheap.ForkPerThread = tbb.ForkBase, tbb.ForkPerThread
	cheap.TaskCost, cheap.QueuePop = tbb.TaskCost, 0.1e-6
	cheap.SetTrait(backend.OpForEach, func(tr *backend.OpTraits) {
		tt := tbb.Traits(backend.OpForEach)
		tr.InstrOverheadPerElem = tt.InstrOverheadPerElem
		tr.IPCFactor = 1
	})
	seq := seqBaseline(caseSpec{m: m, op: backend.OpForEach, n: n, kit: 1})
	for _, th := range m.ThreadCounts() {
		row := []string{fmt.Sprintf("%d", th)}
		for _, b := range []*backend.Backend{backend.GCCHPX(), cheap, backend.GCCTBB()} {
			r := runCase(caseSpec{m: m, b: b, op: backend.OpForEach, n: n, kit: 1, threads: th, alloc: allocsim.FirstTouch})
			row = append(row, f1(seq/r.Seconds))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID: "abl-hpx", Title: "Ablation: HPX with TBB-class task costs",
		Tables: []*report.Table{t},
		Notes:  []string{"most of HPX's deficit is its per-element abstraction overhead, not the queue: cheap futures close most of the gap"},
	}
}
