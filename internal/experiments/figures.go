package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/stream"
)

// Tab2Stream reproduces the STREAM row of Table 2: simulated single-core
// and all-core bandwidth for the three CPU machines (the GPU column is the
// device bandwidth by construction).
func Tab2Stream(cfg Config) *Report {
	t := &report.Table{
		Title:   "STREAM bandwidth, 1 core | all cores (GB/s)",
		Headers: []string{"Machine", "model 1", "model all", "paper 1", "paper all"},
	}
	paper := map[string][2]float64{
		"Mach A (Skylake)": {11.7, 135},
		"Mach B (Zen 1)":   {26.0, 204},
		"Mach C (Zen 3)":   {42.6, 249},
	}
	for _, m := range machine.CPUs() {
		t.AddRow(m.Name,
			f1(stream.Simulated(m, 1)), f1(stream.Simulated(m, m.Cores)),
			f1(paper[m.Name][0]), f1(paper[m.Name][1]))
	}
	return &Report{
		ID: "tab2", Title: "STREAM bandwidth calibration (Table 2, last row)",
		Tables: []*report.Table{t},
		Notes:  []string{"the model is calibrated so perfectly-local streams reproduce the paper's measured STREAM figures"},
	}
}

// fig1Kernels are Figure 1's benchmark columns.
var fig1Kernels = []struct {
	label string
	op    backend.Op
	kit   int
}{
	{"find", backend.OpFind, 1},
	{"for_each k=1", backend.OpForEach, 1},
	{"for_each k=1000", backend.OpForEach, 1000},
	{"inclusive_scan", backend.OpInclusiveScan, 1},
	{"reduce", backend.OpReduce, 1},
	{"sort", backend.OpSort, 1},
}

// Fig1Allocator reproduces Figure 1: the speedup of the custom parallel
// first-touch allocator over the default allocator on Mach A with 32
// threads and 2^30 elements. Values above 1.00 mean the custom allocator
// is faster. HPX is excluded: it always uses its own NUMA allocator.
func Fig1Allocator(cfg Config) *Report {
	m := machine.MachA()
	n := int64(1) << cfg.maxExp()
	backends := []*backend.Backend{backend.GCCTBB(), backend.GCCGNU(), backend.ICCTBB(), backend.NVCOMP()}
	t := &report.Table{
		Title:   fmt.Sprintf("Speedup of custom first-touch allocator vs default (Mach A, 32 threads, n=%d)", n),
		Headers: append([]string{"Backend"}, fig1Labels()...),
	}
	for _, b := range backends {
		row := []string{b.ID}
		for _, k := range fig1Kernels {
			def := runCase(caseSpec{m: m, b: b, op: k.op, n: n, kit: k.kit, threads: 32, alloc: allocsim.Default}).Seconds
			ft := runCase(caseSpec{m: m, b: b, op: k.op, n: n, kit: k.kit, threads: 32, alloc: allocsim.FirstTouch}).Seconds
			row = append(row, f2(def/ft))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID: "fig1", Title: "Impact of the custom parallel allocator (Figure 1)",
		Tables: []*report.Table{t},
		Notes: []string{
			"paper: for_each k=1 gains up to +63%, reduce up to +50%, sort and for_each k=1000 ~unchanged, find up to -24%, inclusive_scan up to -19%",
		},
	}
}

func fig1Labels() []string {
	out := make([]string, len(fig1Kernels))
	for i, k := range fig1Kernels {
		out[i] = k.label
	}
	return out
}

// problemScalingChart builds one execution-time-vs-size chart: the
// sequential baseline plus every parallel backend at full thread count.
func problemScalingChart(m *machine.Machine, op backend.Op, kit, maxExp int, elem int) *report.Chart {
	ch := &report.Chart{
		Title:  fmt.Sprintf("%s on %s (k_it=%d, %d threads)", op, m.Name, kit, m.Cores),
		XLabel: "problem size (elements)", YLabel: "time per call (s)",
		LogY: true,
	}
	sizes := sizesUpTo(maxExp)
	addSeries := func(name string, b *backend.Backend, threads int) {
		s := report.Series{Name: name}
		for _, n := range sizes {
			r := runCase(caseSpec{m: m, b: b, op: op, n: n, kit: kit, threads: threads, alloc: allocsim.FirstTouch, elem: elem})
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Seconds)
		}
		ch.Series = append(ch.Series, s)
	}
	addSeries("GCC-SEQ", backend.GCCSeq(), 1)
	for _, b := range backend.Parallel() {
		if !b.AvailableOn(m.Name) {
			continue
		}
		addSeries(b.ID, b, m.Cores)
	}
	return ch
}

// strongScalingChart builds one speedup-vs-threads chart at n = 2^maxExp,
// with speedups measured against the GCC sequential baseline (log-x,
// linear-y, as the paper argues for in Section 4.2).
func strongScalingChart(m *machine.Machine, op backend.Op, kit, maxExp int) *report.Chart {
	n := int64(1) << maxExp
	ch := &report.Chart{
		Title:  fmt.Sprintf("%s strong scaling on %s (n=2^%d, k_it=%d)", op, m.Name, maxExp, kit),
		XLabel: "threads", YLabel: "speedup vs GCC-SEQ",
	}
	seq := seqBaseline(caseSpec{m: m, b: nil, op: op, n: n, kit: kit})
	ideal := report.Series{Name: "ideal"}
	for _, th := range m.ThreadCounts() {
		ideal.X = append(ideal.X, float64(th))
		ideal.Y = append(ideal.Y, float64(th))
	}
	ch.Series = append(ch.Series, ideal)
	for _, b := range backend.Parallel() {
		if !b.AvailableOn(m.Name) {
			continue
		}
		s := report.Series{Name: b.ID}
		for _, th := range m.ThreadCounts() {
			r := runCase(caseSpec{m: m, b: b, op: op, n: n, kit: kit, threads: th, alloc: allocsim.FirstTouch})
			s.X = append(s.X, float64(th))
			s.Y = append(s.Y, seq/r.Seconds)
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Fig2ForEachProblem reproduces Figure 2: for_each problem scaling on the
// three CPU machines for k_it=1 and k_it=1000.
func Fig2ForEachProblem(cfg Config) *Report {
	r := &Report{ID: "fig2", Title: "X::for_each problem scaling (Figure 2)"}
	for _, m := range machine.CPUs() {
		for _, kit := range []int{1, 1000} {
			r.Charts = append(r.Charts, problemScalingChart(m, backend.OpForEach, kit, cfg.maxExp(), 8))
		}
	}
	r.Notes = append(r.Notes,
		"paper: sequential wins below ~2^10; parallel wins beyond ~2^16; NVC-OMP fastest almost everywhere; HPX slowest; GNU sequential below 2^10")
	return r
}

// Fig3ForEachStrong reproduces Figure 3: for_each strong scaling at 2^30.
func Fig3ForEachStrong(cfg Config) *Report {
	r := &Report{ID: "fig3", Title: "X::for_each strong scaling (Figure 3)"}
	for _, m := range machine.CPUs() {
		for _, kit := range []int{1, 1000} {
			r.Charts = append(r.Charts, strongScalingChart(m, backend.OpForEach, kit, cfg.maxExp()))
		}
	}
	r.Notes = append(r.Notes,
		"paper: k_it=1000 is near-ideal for all but HPX (66% efficiency on Mach C vs 79-83%); k_it=1 speedups are far from ideal and HPX plateaus beyond 16 threads")
	return r
}

// Fig4Find reproduces Figure 4: find on Mach B — (a) problem scaling with
// 64 threads, (b) strong scaling at 2^30.
func Fig4Find(cfg Config) *Report {
	m := machine.MachB()
	return &Report{
		ID: "fig4", Title: "X::find on Mach B (Figure 4)",
		Charts: []*report.Chart{
			problemScalingChart(m, backend.OpFind, 1, cfg.maxExp(), 8),
			strongScalingChart(m, backend.OpFind, 1, cfg.maxExp()),
		},
		Notes: []string{
			"paper: sequential wins below ~2^16-2^18; max speedup ~6 (GCC-TBB), consistent with the STREAM ratio ~7.8; GNU switches to parallel at 2^9",
		},
	}
}

// Fig5InclusiveScan reproduces Figure 5: inclusive_scan on Mach C — (a)
// problem scaling with 128 threads, (b) strong scaling at 2^30.
func Fig5InclusiveScan(cfg Config) *Report {
	m := machine.MachC()
	return &Report{
		ID: "fig5", Title: "X::inclusive_scan on Mach C (Figure 5)",
		Charts: []*report.Chart{
			problemScalingChart(m, backend.OpInclusiveScan, 1, cfg.maxExp(), 8),
			strongScalingChart(m, backend.OpInclusiveScan, 1, cfg.maxExp()),
		},
		Notes: []string{
			"paper: sequential (incl. NVC-OMP's fallback) wins up to ~L2/LLC capacity; TBB backends win beyond the LLC and reach speedup ~5; GNU has no parallel scan; HPX does not scale",
		},
	}
}

// Fig6Reduce reproduces Figure 6: reduce on Mach A — (a) problem scaling
// with 32 threads, (b) strong scaling at 2^30.
func Fig6Reduce(cfg Config) *Report {
	m := machine.MachA()
	return &Report{
		ID: "fig6", Title: "X::reduce on Mach A (Figure 6)",
		Charts: []*report.Chart{
			problemScalingChart(m, backend.OpReduce, 1, cfg.maxExp(), 8),
			strongScalingChart(m, backend.OpReduce, 1, cfg.maxExp()),
		},
		Notes: []string{
			"paper: crossover ~2^15; NVC-OMP/GCC-TBB/GCC-GNU form the faster group; ICC-TBB and HPX scale well only to 16 threads (one NUMA node)",
		},
	}
}

// Fig7Sort reproduces Figure 7: sort on Mach C — (a) problem scaling with
// 32 threads, (b) strong scaling at 2^30.
func Fig7Sort(cfg Config) *Report {
	m := machine.MachC()
	ch := problemScalingChart(m, backend.OpSort, 1, cfg.maxExp(), 8)
	// The paper's Fig 7a uses 32 threads on the 128-core machine.
	ch32 := &report.Chart{Title: ch.Title, XLabel: ch.XLabel, YLabel: ch.YLabel, LogY: true}
	sizes := sizesUpTo(cfg.maxExp())
	add := func(name string, b *backend.Backend, threads int) {
		s := report.Series{Name: name}
		for _, n := range sizes {
			r := runCase(caseSpec{m: m, b: b, op: backend.OpSort, n: n, threads: threads, alloc: allocsim.FirstTouch})
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Seconds)
		}
		ch32.Series = append(ch32.Series, s)
	}
	ch32.Title = fmt.Sprintf("sort on %s (32 threads)", m.Name)
	add("GCC-SEQ", backend.GCCSeq(), 1)
	for _, b := range backend.Parallel() {
		if b.AvailableOn(m.Name) {
			add(b.ID, b, 32)
		}
	}
	return &Report{
		ID: "fig7", Title: "X::sort on Mach C (Figure 7)",
		Charts: []*report.Chart{ch32, strongScalingChart(m, backend.OpSort, 1, cfg.maxExp())},
		Notes: []string{
			"paper: TBB sequential below 2^9, HPX single-threaded below 2^15; NVC-OMP fastest at low thread counts; GNU's multiway mergesort most efficient at high thread counts",
		},
	}
}
