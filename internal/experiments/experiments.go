// Package experiments defines every experiment of the paper's evaluation —
// one constructor per figure and table — and an index that maps experiment
// identifiers to runners. Each experiment returns a Report of tables,
// charts, and notes; the pstlreport command and the repository's benchmark
// harness both consume this package.
package experiments

import (
	"fmt"
	"strings"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
)

// Scale shrinks the experiment sizes from the paper's 2^30 for quick runs;
// 0 means full scale. The value is the exponent reduction: Scale=6 turns
// 2^30 into 2^24 (and thread sweeps are unaffected).
type Config struct {
	Scale int
}

// maxExp returns the paper's largest problem-size exponent under the
// configured scale.
func (c Config) maxExp() int {
	e := 30 - c.Scale
	if e < 10 {
		e = 10
	}
	return e
}

// Report is the result of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*report.Table
	Charts []*report.Chart
	Notes  []string
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, c := range r.Charts {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// Runner produces one experiment report.
type Runner func(Config) *Report

// Index maps experiment IDs (fig1..fig9, tab2..tab7, ablation ids) to
// runners, in presentation order.
func Index() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"tab2", Tab2Stream},
		{"fig1", Fig1Allocator},
		{"fig2", Fig2ForEachProblem},
		{"fig3", Fig3ForEachStrong},
		{"tab3", Tab3ForEachCounters},
		{"fig4", Fig4Find},
		{"fig5", Fig5InclusiveScan},
		{"fig6", Fig6Reduce},
		{"tab4", Tab4ReduceCounters},
		{"fig7", Fig7Sort},
		{"tab5", Tab5Speedups},
		{"tab6", Tab6Efficiency},
		{"tab7", Tab7BinarySizes},
		{"fig8", Fig8GPUForEach},
		{"fig9", Fig9GPUReduce},
		{"ext-arm", ExtensionARM},
		{"ext-numasteal", ExtensionNUMASteal},
		{"ext-adaptive", ExtensionAdaptive},
		{"ext-serve", ExtensionServe},
		{"ext-fusion", ExtensionFusion},
		{"ext-shard", ExtensionShard},
		{"ext-obs", ExtensionObs},
		{"ext-cluster", ExtensionCluster},
		{"ext-stream", ExtensionStream},
		{"abl-grain", AblationGrain},
		{"abl-contention", AblationContention},
		{"abl-hpx", AblationCheapFutures},
	}
}

// ByID returns the runner for an experiment ID, or nil.
func ByID(id string) Runner {
	for _, e := range Index() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

// findFracs samples hit positions for X::find, mirroring the paper's
// random-element search.
var findFracs = []float64{0.05, 0.17, 0.29, 0.41, 0.53, 0.65, 0.77, 0.89}

// runCase simulates one benchmark invocation, averaging find over hit
// positions. kit applies to for_each only.
type caseSpec struct {
	m       *machine.Machine
	b       *backend.Backend
	op      backend.Op
	n       int64
	kit     int
	threads int
	alloc   allocsim.Strategy
	elem    int // element bytes; 0 means 8
}

func runCase(cs caseSpec) simexec.Result {
	elem := cs.elem
	if elem == 0 {
		elem = 8
	}
	kit := cs.kit
	if kit == 0 {
		kit = 1
	}
	cfg := simexec.Config{
		Machine: cs.m, Backend: cs.b,
		Workload: skeleton.Workload{Op: cs.op, N: cs.n, ElemBytes: elem, Kit: kit, HitFrac: 0.5},
		Threads:  cs.threads, Alloc: cs.alloc,
	}
	if cs.op != backend.OpFind {
		return simexec.Run(cfg)
	}
	var agg simexec.Result
	for _, f := range findFracs {
		c := cfg
		c.Workload.HitFrac = f
		r := simexec.Run(c)
		agg.Seconds += r.Seconds
		agg.Counters.Add(r.Counters)
		agg.Level = r.Level
		agg.Parallel = r.Parallel
	}
	k := float64(len(findFracs))
	agg.Seconds /= k
	agg.Counters = agg.Counters.Scale(1 / k)
	return agg
}

// seqBaseline returns the GCC sequential time for the case. Like every
// experiment after Figure 1, the baseline runs with the custom first-touch
// allocator (which, for one thread, simply places all pages locally).
func seqBaseline(cs caseSpec) float64 {
	cs.b = backend.GCCSeq()
	cs.threads = 1
	cs.alloc = allocsim.FirstTouch
	return runCase(cs).Seconds
}

// sizesUpTo returns 2^3, 2^4, ..., 2^max.
func sizesUpTo(max int) []int64 {
	var out []int64
	for e := 3; e <= max; e++ {
		out = append(out, int64(1)<<e)
	}
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
