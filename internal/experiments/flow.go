package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pstlbench/internal/counters"
	"pstlbench/internal/flow"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
)

// ExtensionStream is an extension beyond the paper: it evaluates the
// continuous-ingest streaming plane (internal/flow) — event-time windows
// over unbounded feeds, each closed window compiled onto the fused
// chunk-dispatch pipelines and admitted through the same weighted-fair
// serving tier the batch tenants use. Three questions:
//
//  1. Exactness: does a live, concurrent stream replaying a deterministic
//     trace agree with an independently written sequential oracle on every
//     count (accepted / late / dropped / windows) and every per-window
//     checksum, for each windowed operator?
//  2. Backpressure: under a 4x burst over the buffer cap, do both
//     policies (drop-oldest and pause) keep peak buffered assignments at
//     or below the cap, with the overflow accounted exactly?
//  3. Sharing: with a bursty stream and a closed-loop batch tenant on one
//     pool, do both sides make progress and report sane latencies?
func ExtensionStream(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-stream",
		Title: "Extension: streaming plane — windowed operators over unbounded feeds through the shared serving tier",
	}
	flowReplayAudit(cfg, rep)
	flowBackpressure(rep)
	flowSharedPool(cfg, rep)
	return rep
}

// flowEngine builds a small server + engine pair for one experiment run.
func flowEngine(workers int) (*serve.Server, *flow.Engine) {
	srv := serve.New(serve.Config{
		Workers:       workers,
		QueueCap:      4096,
		MaxConcurrent: 2,
		Registry:      counters.NewRegistry(),
	})
	eng, err := flow.NewEngine(flow.Config{Server: srv, Registry: counters.NewRegistry()})
	if err != nil {
		panic(err)
	}
	return srv, eng
}

// flowReplayAudit replays one deterministic out-of-order trace per
// operator through a live stream and compares every count and checksum
// against the sequential oracle.
func flowReplayAudit(cfg Config, rep *Report) {
	const windowNS = int64(10 * time.Millisecond)
	n := 2000
	if cfg.Scale == 0 {
		n = 50000
	}
	type runRow struct {
		op      string
		slide   time.Duration
		st      flow.StreamStats
		want    flow.AuditResult
		verdict string
	}
	var rows []runRow
	allPass := true
	for _, op := range flow.OpKinds() {
		for _, slide := range []time.Duration{0, time.Duration(windowNS / 2)} {
			// Sliding windows double the trace's assignment count; run the
			// sliding variant only for reduce and wordcount to keep the
			// experiment quick.
			if slide != 0 && op != "reduce" && op != "wordcount" {
				continue
			}
			scfg := flow.StreamConfig{
				Name:           "audit-" + op,
				Window:         flow.WindowSpec{Size: time.Duration(windowNS), Slide: slide, Lateness: time.Duration(windowNS / 4)},
				Op:             flow.OpSpec{Kind: op},
				PendingWindows: n, // never drop windows at admission in the audit run
			}
			trace := flow.SynthTrace(n, 0, windowNS/64, windowNS/16, 97, 4*windowNS, 32, 42)
			want, err := flow.Audit(scfg, trace)
			if err != nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf("audit %s: %v", op, err))
				continue
			}
			srv, eng := flowEngine(2)
			s, err := eng.AddStream(scfg)
			if err != nil {
				srv.Close()
				rep.Notes = append(rep.Notes, fmt.Sprintf("audit %s: %v", op, err))
				continue
			}
			flow.Replay(s, trace)
			eng.Close()
			st := s.Stats()
			srv.Close()

			verdict := "PASS"
			if st.Events != want.Accepted || st.LateEvents != want.Late ||
				st.DroppedEvents != want.DroppedEvents || st.Assigned != want.Assigned ||
				st.WindowsClosed != want.WindowsClosed || st.WindowsEmpty != want.WindowsEmpty ||
				st.WindowsDropped != 0 || st.WindowsCanceled != 0 ||
				st.PeakBuffered != want.PeakBuffered || st.Checksum != want.ChecksumTotal {
				verdict = "FAIL"
				allPass = false
			}
			rows = append(rows, runRow{op: op, slide: slide, st: st, want: want, verdict: verdict})
		}
	}
	t := &report.Table{
		Title: fmt.Sprintf("deterministic replay vs sequential oracle: %d-event out-of-order trace (jitter, every 97th event 4 windows late), exact comparison of all counts and per-window checksums", n),
		Headers: []string{"op", "windowing", "events", "late", "assigned", "windows", "empty", "peak buf", "checksum", "verdict"},
	}
	for _, r := range rows {
		kind := "tumbling"
		if r.slide != 0 {
			kind = "sliding /2"
		}
		t.AddRow(r.op, kind,
			fmt.Sprintf("%d", r.st.Events), fmt.Sprintf("%d", r.st.LateEvents),
			fmt.Sprintf("%d", r.st.Assigned), fmt.Sprintf("%d", r.st.WindowsClosed),
			fmt.Sprintf("%d", r.st.WindowsEmpty), fmt.Sprintf("%d", r.st.PeakBuffered),
			fmt.Sprintf("%g", r.st.Checksum), r.verdict)
	}
	rep.Tables = append(rep.Tables, t)
	note := "exactness mechanism: windowed operators keep checksums integer-valued, so parallel chunk merges are bit-exact in any order and a concurrent stream must match the oracle to the last bit; late/dropped accounting is compared count-for-count"
	if !allPass {
		note = "AUDIT MISMATCH — a live stream diverged from the sequential oracle; see the FAIL rows above"
	}
	rep.Notes = append(rep.Notes, note)
}

// flowBackpressure pushes a 4x burst over the buffer cap under both
// policies and audits that the cap actually bounds buffer memory.
func flowBackpressure(rep *Report) {
	const cap = 256
	const burst = 4 * cap
	t := &report.Table{
		Title:   fmt.Sprintf("backpressure under a 4x burst: buffer cap %d assignments, %d events in one window's span", cap, burst),
		Headers: []string{"policy", "pushed", "accepted", "dropped", "paused", "peak buf", "cap bound", "conservation"},
	}
	for _, pol := range []flow.BackpressurePolicy{flow.DropOldest, flow.Pause} {
		scfg := flow.StreamConfig{
			Name:      "bp-" + pol.String(),
			Window:    flow.WindowSpec{Size: time.Second, Lateness: 0},
			Op:        flow.OpSpec{Kind: "reduce"},
			BufferCap: cap,
			Policy:    pol,
		}
		// All events land in one open window, so the only thing keeping
		// memory bounded is the policy.
		trace := flow.SynthTrace(burst, 0, int64(time.Millisecond)/4, 0, 0, 0, 8, 7)
		srv, eng := flowEngine(2)
		s, err := eng.AddStream(scfg)
		if err != nil {
			srv.Close()
			rep.Notes = append(rep.Notes, fmt.Sprintf("backpressure %s: %v", pol, err))
			continue
		}
		flow.Replay(s, trace)
		preClose := s.Stats() // peak before the flush drains the buffer
		eng.Close()
		st := s.Stats()
		srv.Close()

		bound := "PASS"
		if preClose.PeakBuffered > cap || st.PeakBuffered > cap {
			bound = "FAIL"
		}
		// Conservation: every accepted assignment is either in a closed
		// window, was evicted, or was still buffered at flush (none here).
		closedEvents := st.Assigned - st.DroppedEvents - int64(st.Buffered)
		conserv := "PASS"
		if pol == flow.DropOldest && (st.DroppedEvents != burst-cap || closedEvents != cap) {
			conserv = "FAIL"
		}
		if pol == flow.Pause && (st.PausedEvents != burst-cap || st.Events != cap) {
			conserv = "FAIL"
		}
		t.AddRow(pol.String(), fmt.Sprintf("%d", burst),
			fmt.Sprintf("%d", st.Events), fmt.Sprintf("%d", st.DroppedEvents),
			fmt.Sprintf("%d", st.PausedEvents), fmt.Sprintf("%d", st.PeakBuffered),
			bound, conserv)
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"backpressure mechanism: the cap counts (event, window) assignments; drop-oldest evicts from the front of the oldest open window (freshest data wins), pause refuses the push so the source must retry — either way peak buffered never exceeds the cap")
}

// flowSharedPool runs a live bursty stream beside a closed-loop batch
// tenant on one server and checks both make progress with sane latency.
func flowSharedPool(cfg Config, rep *Report) {
	srv := serve.New(serve.Config{
		Workers:       2,
		QueueCap:      4096,
		MaxConcurrent: 2,
		Weights:       map[string]float64{"stream": 1, "batch": 1},
		Registry:      counters.NewRegistry(),
	})
	defer srv.Close()
	eng, err := flow.NewEngine(flow.Config{Server: srv, Registry: counters.NewRegistry()})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("shared-pool run skipped: %v", err))
		return
	}
	s, err := eng.AddStream(flow.StreamConfig{
		Name:   "stream",
		Window: flow.WindowSpec{Size: 50 * time.Millisecond, Lateness: 10 * time.Millisecond},
		Op:     flow.OpSpec{Kind: "wordcount"},
	})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("shared-pool run skipped: %v", err))
		return
	}

	batchN := 1 << 14
	if cfg.Scale == 0 {
		batchN = 1 << 20
	}
	var stop atomic.Bool
	var done, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				j, err := srv.Submit(serve.Spec{Kernel: "reduce", N: batchN, Tenant: "batch"})
				if err != nil {
					rejected.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				<-j.Done()
				done.Add(1)
				// Yield between jobs so the generator's ticker goroutine is
				// never starved by the submit/complete handoff chain on a
				// single-core box.
				runtime.Gosched()
			}
		}()
	}
	gen := &flow.Generator{Stream: s, Rate: 4000, Shape: flow.ShapeBursty, Period: 100 * time.Millisecond, Burst: 4, Seed: 3, Words: 64}
	genStop := make(chan struct{})
	var gs flow.GenStats
	var genWG sync.WaitGroup
	genWG.Add(1)
	go func() { defer genWG.Done(); gs = gen.Run(genStop) }()
	// Run until a handful of windows complete rather than for a fixed wall
	// time: on a loaded single-core CI box the generator's 1ms ticker can
	// starve for a while, and a fixed 400ms run would flake.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().WindowsDone < 3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	// Quiet the batch churn before joining the generator so its stop
	// signal is seen promptly.
	stop.Store(true)
	wg.Wait()
	close(genStop)
	genWG.Wait()
	eng.Close()
	st := s.Stats()

	verdict := "PASS"
	// Loose, CI-stable bounds: both sides finished work, no stream window
	// was lost, and per-window latency stayed under a second.
	if st.WindowsDone == 0 || st.WindowsDropped != 0 || done.Load() == 0 ||
		(st.P99Seconds != 0 && st.P99Seconds > 1.0) {
		verdict = "FAIL"
	}
	t := &report.Table{
		Title:   "one pool, two tenants: bursty wordcount stream (4x burst, 100ms period) beside a closed-loop batch reduce tenant under weighted fair queuing",
		Headers: []string{"side", "work finished", "rejected/dropped", "p50", "p99", "verdict"},
	}
	t.AddRow("stream (windows)", fmt.Sprintf("%d done of %d closed", st.WindowsDone, st.WindowsClosed),
		fmt.Sprintf("%d", st.WindowsDropped),
		fmt.Sprintf("%.4fs", st.P50Seconds), fmt.Sprintf("%.4fs", st.P99Seconds), verdict)
	t.AddRow("batch (jobs)", fmt.Sprintf("%d", done.Load()), fmt.Sprintf("%d", rejected.Load()), "-", "-", "-")
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("generator emitted %d events (%d accepted); each closed window became one serve job under tenant %q, admitted through the same WFQ lane structure as the batch tenant — neither side can starve the other", gs.Generated, gs.Accepted, "stream"))
}
