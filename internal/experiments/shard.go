package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
	"pstlbench/internal/stats"
)

// ExtensionShard is an extension beyond the paper: it evaluates the
// sharded serving tier (internal/shard) that fronts N servers behind a
// consistent-hash router. Three questions:
//
//  1. Placement: does the ring keep tenant shares near 1/N, and does
//     growing the tier remap only ~1/(N+1) of tenants?
//  2. Scaling: with a fixed multi-tenant offered load, does aggregate
//     throughput scale with the shard count while a light tenant's p99
//     stays near its unloaded service time? Measured with the same
//     deterministic discrete-event model as ext-serve, one slot + fair
//     queue per shard, tenants partitioned by the real Ring — so the
//     result is exact and CI-stable.
//  3. Durability: does a router killed mid-backlog replay its job log and
//     finish every acknowledged job exactly once, checksums intact?
//     Measured on the real router with a real log file.
func ExtensionShard(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-shard",
		Title: "Sharded serving tier: placement balance, throughput scaling, and kill-and-replay durability",
	}
	shardPlacement(rep)
	shardScaling(cfg, rep)
	shardReplay(rep)
	return rep
}

// shardPlacement builds the ring balance and remap table.
func shardPlacement(rep *Report) {
	const tenants = 10000
	t := &report.Table{
		Title:   fmt.Sprintf("consistent-hash placement, %d tenants, 64 virtual points per shard", tenants),
		Headers: []string{"shards", "min share", "max share", "ideal", "remapped to +1 shard", "ideal remap"},
	}
	for _, n := range []int{2, 4, 8} {
		ring := shard.NewRing(n, 0)
		grown := shard.NewRing(n+1, 0)
		counts := make([]int, n)
		moved := 0
		for i := 0; i < tenants; i++ {
			name := fmt.Sprintf("tenant-%d", i)
			s := ring.Shard(name)
			counts[s]++
			if grown.Shard(name) != s {
				moved++
			}
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", float64(min)/tenants),
			fmt.Sprintf("%.3f", float64(max)/tenants),
			fmt.Sprintf("%.3f", 1.0/float64(n)),
			fmt.Sprintf("%.3f", float64(moved)/tenants),
			fmt.Sprintf("%.3f", 1.0/float64(n+1)))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"growing the ring N -> N+1 moves only the tenants whose nearest virtual point changed, and every mover lands on the new shard — existing shards never trade tenants")
}

// shardScaling drains a fixed multi-tenant load through 1, 2, and 4 model
// shards. Each shard is the ext-serve discrete-event model (one slot
// draining a serve.FairQueue under WFQ); tenants partition across shards
// by the real consistent-hash ring, so shards are independent and the
// tier model is simulateServing per shard over its tenant subset.
func shardScaling(cfg Config, rep *Report) {
	m := machine.MachA()
	threads := m.Cores
	n := int64(1) << (cfg.maxExp() - 8)
	s := serveServiceTime(m, backend.OpReduce, n, threads)

	// Eight heavy tenants at 0.3 utilization each plus one light tenant at
	// 0.05 offer ~2.45x one shard's capacity: one shard saturates and
	// sheds load, four shards sit below 0.9 utilization each and serve
	// everything. All jobs share one service time so the light tenant's
	// WFQ bound (one in-service job plus its own) is visible in the tail.
	var streams []dsStream
	for h := 0; h < 8; h++ {
		streams = append(streams, dsStream{
			tenant: fmt.Sprintf("heavy-%d", h), service: s, cost: float64(n),
			period: s / 0.3, burst: 1, phase: s * float64(h) * 0.137,
		})
	}
	light := dsStream{tenant: "light", service: s, cost: float64(n), period: s / 0.05, burst: 1, phase: s * 0.41}
	streams = append(streams, light)
	horizon := 400 * s

	t := &report.Table{
		Title: fmt.Sprintf("%s, GCC-TBB, %d threads: 8 heavy + 1 light tenant, reduce n=%d (S=%.3gs), offered ~2.45x one shard, WFQ per shard",
			m.Name, threads, n, s),
		Headers: []string{"shards", "completed", "jobs/s", "scaling", "rejected", "light p99", "light p99/unloaded"},
	}
	base := 0.0
	scale4 := 0.0
	lightRatio4 := 0.0
	for _, shards := range []int{1, 2, 4} {
		ring := shard.NewRing(shards, 0)
		perShard := make([][]dsStream, shards)
		for _, st := range streams {
			home := ring.Shard(st.tenant)
			perShard[home] = append(perShard[home], st)
		}
		completed, rejected := 0, 0
		var lightLat []float64
		for _, sub := range perShard {
			if len(sub) == 0 {
				continue
			}
			lat, rej := simulateServing(serve.WFQ, sub, horizon, 32)
			for tenant, ls := range lat {
				completed += len(ls)
				if tenant == "light" {
					lightLat = ls
				}
			}
			for _, c := range rej {
				rejected += c
			}
		}
		tput := float64(completed) / horizon
		if shards == 1 {
			base = tput
		}
		lp99 := stats.Percentile(lightLat, 0.99)
		ratio := lp99 / s
		if shards == 4 {
			scale4 = tput / base
			lightRatio4 = ratio
		}
		t.AddRow(fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", completed),
			fmt.Sprintf("%.2f", tput),
			fmt.Sprintf("%.2fx", tput/base),
			fmt.Sprintf("%d", rejected),
			fmt.Sprintf("%.3gs", lp99),
			fmt.Sprintf("%.2fx", ratio))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"scaling criterion: 4 shards carry %.1fx the 1-shard throughput (bound: >= 2x — one shard saturates at capacity while four absorb the whole offered load) with the light tenant's p99 at %.2fx its unloaded service time (bound: 2x — WFQ leaves at most one in-service job ahead of it)",
		scale4, lightRatio4))
	rep.Notes = append(rep.Notes,
		"model: tenants partition across shards by the real consistent-hash ring and each shard is the ext-serve single-slot fair-queue model; spill and migration are admission-time mechanisms outside this model, exercised by the real-router replay run below and the package's unit tests")
}

// shardReplay runs the real router against a real log file: build a
// backlog, kill the router mid-flight (log severed first, no completion
// records — exactly as SIGKILL), restart, drain, and audit the log for
// exactly-once completion with intact checksums.
func shardReplay(rep *Report) {
	dir, err := os.MkdirTemp("", "pstl-shard-*")
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay run skipped: %v", err))
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "joblog.jsonl")
	cfg := shard.Config{
		Shards: 2,
		Serve:  serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1},
	}
	cfg.LogPath = path

	r, err := shard.New(cfg)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay run skipped: %v", err))
		return
	}
	// Two large sorts pin the run slots so the 40 small jobs behind them
	// are still queued when the kill lands — the backlog the replay must
	// not lose.
	const jobs = 40
	specs := map[string]serve.Spec{}
	for i := 0; i < 2; i++ {
		spec := serve.Spec{Kernel: "sort", N: 1 << 20, Tenant: fmt.Sprintf("blk-%d", i)}
		if j, err := r.Submit(spec); err == nil {
			specs[j.ID()] = spec
		}
	}
	for i := 0; i < jobs; i++ {
		spec := serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: fmt.Sprintf("tenant-%d", i%5)}
		j, err := r.Submit(spec)
		if err != nil {
			continue
		}
		specs[j.ID()] = spec
	}
	preKill := r.Stats()
	r.Kill()

	r2, err := shard.New(cfg)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay reopen failed: %v", err))
		return
	}
	replayed := r2.Stats()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := r2.Stats()
		busy := st.Backlog
		for _, ss := range st.PerShard {
			busy += ss.Queued + ss.Running
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r2.Close()

	recs, err := shard.ReadLog(path)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay log audit failed: %v", err))
		return
	}
	completes := map[string]int{}
	badSums := 0
	for _, rec := range recs {
		if rec.T != "complete" {
			continue
		}
		completes[rec.ID]++
		if rec.State == "done" {
			if spec, ok := specs[rec.ID]; !ok || rec.Checksum != serve.ExpectedChecksum(spec.Kernel, spec.N) {
				badSums++
			}
		}
	}
	once := 0
	for id := range specs {
		if completes[id] == 1 {
			once++
		}
	}
	verdict := "PASS"
	if once != len(specs) || badSums > 0 || len(specs) == 0 {
		verdict = "FAIL"
	}

	t := &report.Table{
		Title:   fmt.Sprintf("kill-and-replay on the real router: %d shards, %d acknowledged jobs, SIGKILL-equivalent mid-backlog", cfg.Shards, len(specs)),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("completed before kill", fmt.Sprintf("%d", preKill.Completed))
	t.AddRow("in flight at kill", fmt.Sprintf("%d", int64(len(specs))-preKill.Completed-preKill.Canceled))
	t.AddRow("recovered terminal from log", fmt.Sprintf("%d", replayed.Recovered))
	t.AddRow("replayed as pending", fmt.Sprintf("%d", replayed.Replayed))
	t.AddRow("jobs with exactly one complete record", fmt.Sprintf("%d of %d", once, len(specs)))
	t.AddRow("torn/mismatched checksums", fmt.Sprintf("%d", badSums))
	t.AddRow("exactly-once verdict", verdict)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"durability mechanism: every record is written through to the kernel before the client is acked (SIGKILL loses nothing acknowledged) and fsync is group-committed as the power-loss barrier; replay recovers completed jobs from their records and resubmits the rest in order")
}
