package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
	"pstlbench/internal/native"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/stats"
	"pstlbench/internal/trace"
)

// ExtensionServe is an extension beyond the paper: it evaluates the
// serving layer built on top of the measured algorithms. Two questions:
//
//  1. Fairness: when a heavy tenant floods the job queue in bursts, does
//     job-level weighted fair queuing keep a light tenant's tail latency
//     bounded where FIFO lets it grow with the burst size? Measured with a
//     deterministic discrete-event model of the serving loop — one
//     concurrency slot draining a serve.FairQueue, with per-job service
//     times taken from the simulated machine (Mach A, GCC-TBB) — so the
//     comparison is exact and CI-stable.
//  2. Cancellation: when a large running job is canceled, how fast does
//     the shared pool actually free its workers? Measured on the real
//     native pool with the chunk-granular cooperative token, with the
//     scheduler trace as evidence.
func ExtensionServe(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-serve",
		Title: "Serving layer: WFQ vs FIFO tail latency under tenant floods, and cancellation drain",
	}
	serveFairness(cfg, rep)
	serveCancellation(cfg, rep)
	return rep
}

// dsJob is one job in the discrete-event serving model.
type dsJob struct {
	tenant  string
	arrival float64
}

// dsStream describes one tenant's deterministic arrival process: bursts of
// `burst` jobs every `period` seconds (burst=1 gives evenly spaced
// singles), each with the same modeled service time.
type dsStream struct {
	tenant  string
	service float64
	cost    float64
	period  float64
	burst   int
	phase   float64
}

// simulateServing drains the merged arrival streams through one
// concurrency slot fed by a serve.FairQueue under discipline d — the same
// queueing structure the Server runs, minus the wall clock. Returns
// per-tenant end-to-end latency samples and rejection counts.
func simulateServing(d serve.Discipline, streams []dsStream, horizon float64, qcap int) (map[string][]float64, map[string]int) {
	var arrivals []dsJob
	service := map[string]float64{}
	cost := map[string]float64{}
	for _, st := range streams {
		service[st.tenant] = st.service
		cost[st.tenant] = st.cost
		for t := st.phase; t < horizon; t += st.period {
			for b := 0; b < st.burst; b++ {
				arrivals = append(arrivals, dsJob{tenant: st.tenant, arrival: t})
			}
		}
	}
	// Merge-sort by arrival (stable within a burst by construction order).
	for i := 1; i < len(arrivals); i++ {
		for j := i; j > 0 && arrivals[j].arrival < arrivals[j-1].arrival; j-- {
			arrivals[j], arrivals[j-1] = arrivals[j-1], arrivals[j]
		}
	}

	q := serve.NewQueue(d, qcap)
	lat := map[string][]float64{}
	rej := map[string]int{}
	busy := false
	var cur dsJob
	var curDone float64
	i := 0
	for i < len(arrivals) || busy {
		if busy && (i >= len(arrivals) || curDone <= arrivals[i].arrival) {
			// Completion fires first: record, then pull the next job.
			now := curDone
			lat[cur.tenant] = append(lat[cur.tenant], now-cur.arrival)
			if it, ok := q.Pop(); ok {
				cur = it.Value.(dsJob)
				curDone = now + service[cur.tenant]
			} else {
				busy = false
			}
			continue
		}
		a := arrivals[i]
		i++
		if !busy {
			cur, busy = a, true
			curDone = a.arrival + service[a.tenant]
		} else if !q.Push(serve.Item{Tenant: a.tenant, Cost: cost[a.tenant], Value: a}) {
			rej[a.tenant]++
		}
	}
	return lat, rej
}

// serveFairness builds the WFQ-vs-FIFO tail-latency tables.
func serveFairness(cfg Config, rep *Report) {
	m := machine.MachA()
	threads := m.Cores
	// A light tenant submitting small reduce jobs, against a heavy tenant
	// flooding bursts of jobs ~1.5x the size. Service times come from the
	// simulated machine, so they carry the paper's parallel overheads.
	nSmall := int64(1) << (cfg.maxExp() - 8)
	nBig := nSmall + nSmall/2
	sSmall := serveServiceTime(m, backend.OpReduce, nSmall, threads)
	sBig := serveServiceTime(m, backend.OpReduce, nBig, threads)

	const burst = 10
	t := &report.Table{
		Title: fmt.Sprintf("%s, GCC-TBB, %d threads: light tenant (reduce n=%d, S=%.3gs) vs heavy bursts (%d jobs of n=%d, S=%.3gs); unloaded p99 = %.3gs",
			m.Name, threads, nSmall, sSmall, burst, nBig, sBig, sSmall),
		Headers: []string{"offered load", "sched", "light p50", "light p99", "light p99/unloaded", "heavy p99", "rejected"},
	}
	// The light tenant offers a fixed, genuinely small share of capacity;
	// the heavy tenant's bursts take the rest of the swept offered load, so
	// total utilization stays below 1 and the queues remain stable — the
	// regime where scheduling (not raw capacity) decides the tail.
	const lightUtil = 0.08
	worstFIFO, bestWFQ := 0.0, 0.0
	for _, rho := range []float64{0.5, 0.8, 0.95} {
		burstPeriod := float64(burst) * sBig / (rho - lightUtil)
		streams := []dsStream{
			// Light singles on a period incommensurate with the burst
			// period, so they land at varied offsets within the bursts.
			{tenant: "light", service: sSmall, cost: float64(nSmall), period: sSmall / lightUtil, burst: 1, phase: burstPeriod * 0.03},
			{tenant: "heavy", service: sBig, cost: float64(nBig), period: burstPeriod, burst: burst, phase: 0},
		}
		horizon := 300 * burstPeriod
		for _, d := range []serve.Discipline{serve.FIFO, serve.WFQ} {
			lat, rej := simulateServing(d, streams, horizon, 4*burst)
			lp50 := stats.Percentile(lat["light"], 0.50)
			lp99 := stats.Percentile(lat["light"], 0.99)
			hp99 := stats.Percentile(lat["heavy"], 0.99)
			ratio := lp99 / sSmall
			if d == serve.FIFO && ratio > worstFIFO {
				worstFIFO = ratio
			}
			if d == serve.WFQ && ratio > bestWFQ {
				bestWFQ = ratio
			}
			t.AddRow(fmt.Sprintf("%.2f", rho), d.String(),
				fmt.Sprintf("%.3gs", lp50), fmt.Sprintf("%.3gs", lp99),
				fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.3gs", hp99),
				fmt.Sprintf("%d", rej["light"]+rej["heavy"]))
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fairness criterion: WFQ holds the light tenant's p99 at %.1fx its unloaded p99 (bound: 3x — one in-service heavy job is never preempted, plus its own service), while FIFO reaches %.1fx because the light job drains behind whole bursts",
		bestWFQ, worstFIFO))
	rep.Notes = append(rep.Notes,
		"model: one concurrency slot draining a serve.FairQueue with simexec-modeled service times — the Server's queueing structure on a virtual clock, so the WFQ/FIFO comparison is deterministic")
}

// serveServiceTime models one job's service time on the simulated machine.
func serveServiceTime(m *machine.Machine, op backend.Op, n int64, threads int) float64 {
	r := simexec.Run(simexec.Config{
		Machine: m, Backend: backend.GCCTBB(),
		Workload: skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.5},
		Threads:  threads, Alloc: allocsim.FirstTouch,
	})
	return r.Seconds
}

// serveCancellation measures, on the real pool, how many chunks still run
// after a cancel fires — the "workers freed within one chunk boundary"
// criterion — with the scheduler trace as corroborating evidence.
func serveCancellation(cfg Config, rep *Report) {
	const workers = 4
	tr := trace.New(workers+1, trace.DefaultCapacity)
	pool := native.NewTraced(workers, native.StrategyStealing, native.Topology{}, tr)
	defer pool.Close()

	n := 1 << 16
	g := exec.Grain{MinChunk: 64, MaxChunk: 64}
	chunks := g.ChunkCount(n, workers)
	spin := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i&7) * 1.0000001
		}
		return s
	}

	// Uncancelled baseline: wall time and per-chunk trace distribution.
	var sink atomic.Int64
	t0 := time.Now()
	from := tr.Now()
	pool.ForChunks(n, g, func(_, lo, hi int) { sink.Add(int64(spin(lo, hi))) })
	full := time.Since(t0)
	baseline := trace.SummarizeWindow(tr, from, tr.Now())

	// Canceled run: fire the token from inside an early chunk and count
	// how many chunk bodies still execute afterwards.
	tok := &exec.Cancel{}
	var executed, atCancel atomic.Int64
	cancelFrom := tr.Now()
	pool.ForChunksCancel(n, g, tok, func(_, lo, hi int) {
		if executed.Add(1) == 3 {
			atCancel.Store(3)
			tok.Cancel()
		}
		sink.Add(int64(spin(lo, hi)))
	})
	after := trace.SummarizeWindow(tr, cancelFrom, tr.Now())
	ranAfter := executed.Load() - atCancel.Load()

	t := &report.Table{
		Title:   fmt.Sprintf("cancellation drain: n=%d, %d chunks of 64, %d workers, stealing pool", n, chunks, workers),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("full run wall time", fmt.Sprintf("%.3gs", full.Seconds()))
	if baseline != nil && baseline.Chunk.Count > 0 {
		t.AddRow("chunk p50/p95/max (trace)", baseline.Chunk.String())
	}
	t.AddRow("chunks before cancel", fmt.Sprintf("%d", atCancel.Load()))
	t.AddRow("chunk bodies after cancel", fmt.Sprintf("%d (bound: one in-flight chunk per worker = %d)", ranAfter, workers))
	t.AddRow("chunks abandoned", fmt.Sprintf("%d of %d", int64(chunks)-executed.Load(), chunks))
	if after != nil {
		t.AddRow("trace events in canceled window", fmt.Sprintf("%d", after.Events))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"a canceled job frees the pool within one chunk boundary: every chunk dispatch checks the token, so at most the %d already-claimed chunks finish (%d did here) and the remaining %d are skipped without running their bodies",
		workers, ranAfter, int64(chunks)-executed.Load()))
}
