package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pstlbench/internal/obs"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
	"pstlbench/internal/stats"
)

// ExtensionObs is an extension beyond the paper: it validates the
// end-to-end observability pillar (internal/obs) on the real sharded tier.
// Two questions, both answered using only the exported surfaces — the
// terminal span log (/spans) and the metrics registry (/metrics) — never
// by reaching into server internals:
//
//  1. Attribution: when one shard runs hot, do the lifecycle spans
//     attribute its p99 regression to queue wait rather than execute time?
//     That distinction is the entire point of per-phase stamps: "slow
//     because overloaded" and "slow because the kernel regressed" demand
//     opposite fixes, and a latency histogram alone cannot tell them apart.
//  2. Durability: does a kill-and-replay cycle preserve each replayed
//     job's pre-crash span history — above all the original admission
//     stamp — so queue-wait attribution stays honest across a restart?
func ExtensionObs(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-obs",
		Title: "End-to-end observability: span-based p99 attribution on a hot shard and phase history across kill-and-replay",
	}
	obsAttribution(rep)
	obsReplaySpans(rep)
	return rep
}

// tenantOn finds a tenant name the ring homes on the wanted shard.
func tenantOn(ring *shard.Ring, want int, prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if ring.Shard(name) == want {
			return name
		}
	}
}

// obsAttribution floods shard 0 of a 2-shard router with a same-tenant
// backlog while shard 1 serves only a light probe, then reads every
// terminal span back from the shared span log and splits each shard's p99
// into queue-wait and execute. Spill and migration are disabled so the
// imbalance persists — this run is about diagnosing a hot shard, not
// curing it.
func obsAttribution(rep *Report) {
	reg := obs.NewRegistry()
	spans := obs.NewSpanLog(4096)
	r, err := shard.New(shard.Config{
		Shards: 2,
		// FIFO on purpose: under WFQ the probe tenant's fresh lane would be
		// served ahead of the backlog, which is the cure — this run wants
		// the disease on display.
		Serve:            serve.Config{Workers: 1, QueueCap: 256, MaxConcurrent: 1, Discipline: serve.FIFO},
		SpillThreshold:   2, // > any reachable Load: admission never spills
		MigrateThreshold: 2,
		RebalanceEvery:   -1, // no background rebalancer
		Metrics:          reg,
		Spans:            spans,
	})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("attribution run skipped: %v", err))
		return
	}
	ring := shard.NewRing(2, 0)
	hot := tenantOn(ring, 0, "hot")
	probe0 := tenantOn(ring, 0, "probe-hot")
	probe1 := tenantOn(ring, 1, "probe-cold")

	// Warm both pools first so the probes' execute column measures the
	// kernel, not first-touch page faults.
	r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 13, Tenant: tenantOn(ring, 0, "warm")})
	r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 13, Tenant: tenantOn(ring, 1, "warm")})
	waitDrain(r, 30*time.Second)

	// The backlog: one tenant, 24 mid-size sorts, all homed on shard 0 and
	// drained by its single worker one at a time. Probes land last, so the
	// hot-shard probe queues behind the whole backlog while the cold-shard
	// probe runs almost immediately — identical work, different wait.
	const backlog = 24
	for i := 0; i < backlog; i++ {
		if _, err := r.Submit(serve.Spec{Kernel: "sort", N: 1 << 17, Tenant: hot}); err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("attribution submit: %v", err))
		}
	}
	for i := 0; i < 4; i++ {
		r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 13, Tenant: probe0})
		r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 13, Tenant: probe1})
	}
	waitDrain(r, 30*time.Second)
	r.Close()

	// Everything below this line uses the exported span log only. The probe
	// tenants are the controlled comparison: identical jobs, one homed on
	// the hot shard and one on the cold, so the p99 gap between them IS the
	// regression — and the spans say which phase produced it.
	type agg struct{ total, queue, exec []float64 }
	perShard := map[int]*agg{}
	perProbe := map[string]*agg{probe0: {}, probe1: {}}
	for _, sp := range spans.Spans() {
		sh := int(sp.Shard())
		if perShard[sh] == nil {
			perShard[sh] = &agg{}
		}
		for _, e := range []*agg{perShard[sh], perProbe[sp.Tenant]} {
			if e == nil {
				continue
			}
			e.total = append(e.total, sp.TotalSeconds())
			e.queue = append(e.queue, sp.QueueSeconds())
			e.exec = append(e.exec, sp.ExecSeconds())
		}
	}
	p99 := func(e *agg) (t, q, x float64) {
		if e == nil {
			return
		}
		return stats.Percentile(e.total, 0.99), stats.Percentile(e.queue, 0.99), stats.Percentile(e.exec, 0.99)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("2 shards, 1 worker each, %d-job backlog pinned to shard 0, spill/migration off; per-shard p99 from /spans data", backlog),
		Headers: []string{"shard", "jobs", "p99 total", "p99 queue-wait", "p99 execute"},
	}
	for sh := 0; sh < 2; sh++ {
		p99t, p99q, p99e := p99(perShard[sh])
		n := 0
		if perShard[sh] != nil {
			n = len(perShard[sh].total)
		}
		t.AddRow(fmt.Sprintf("%d", sh), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3gs", p99t), fmt.Sprintf("%.3gs", p99q), fmt.Sprintf("%.3gs", p99e))
	}
	rep.Tables = append(rep.Tables, t)

	ht, hq, hx := p99(perProbe[probe0])
	ct, cq, cx := p99(perProbe[probe1])
	gap, qgap := ht-ct, hq-cq
	attribution := 0.0
	if gap > 0 {
		attribution = qgap / gap
	}
	pt := &report.Table{
		Title:   "the controlled pair: identical probe jobs (reduce n=8192) submitted behind the backlog, one tenant per shard",
		Headers: []string{"probe", "shard", "p99 total", "p99 queue-wait", "p99 execute"},
	}
	pt.AddRow(probe0, "0 (hot)", fmt.Sprintf("%.3gs", ht), fmt.Sprintf("%.3gs", hq), fmt.Sprintf("%.3gs", hx))
	pt.AddRow(probe1, "1 (cold)", fmt.Sprintf("%.3gs", ct), fmt.Sprintf("%.3gs", cq), fmt.Sprintf("%.3gs", cx))
	rep.Tables = append(rep.Tables, pt)

	verdict := "queue-wait explains the hot-shard probe's p99 regression"
	if gap <= 0 || attribution < 0.8 {
		verdict = "ATTRIBUTION UNCLEAR — expected queue-wait to explain >= 80% of the probe p99 gap"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%s: the hot probe runs %.1fx slower end-to-end than its cold twin and queue-wait accounts for %.0f%% of the gap, while execute p99 stays in the milliseconds on both shards (%.3gs hot, %.3gs cold) — a kernel regression would move the execute column instead",
		verdict, ht/ct, 100*attribution, hx, cx))
}

// obsReplaySpans builds a backlog on a durable router, kills it, restarts
// it with a fresh span log, and checks every replayed job's span against
// the two guarantees: it carries the "replayed" phase, and its admission
// stamp predates the kill — the pre-crash history survived the process.
func obsReplaySpans(rep *Report) {
	dir, err := os.MkdirTemp("", "pstl-obs-*")
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay run skipped: %v", err))
		return
	}
	defer os.RemoveAll(dir)
	cfg := shard.Config{
		Shards:  2,
		Serve:   serve.Config{Workers: 1, QueueCap: 64, MaxConcurrent: 1},
		LogPath: filepath.Join(dir, "joblog.jsonl"),
		Spans:   obs.NewSpanLog(1024),
	}
	r, err := shard.New(cfg)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay run skipped: %v", err))
		return
	}
	// Two large sorts pin the run slots; the small jobs behind them are
	// still queued when the kill lands.
	for i := 0; i < 2; i++ {
		r.Submit(serve.Spec{Kernel: "sort", N: 1 << 20, Tenant: fmt.Sprintf("blk-%d", i)})
	}
	const jobs = 30
	for i := 0; i < jobs; i++ {
		r.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: fmt.Sprintf("tenant-%d", i%5)})
	}
	r.Kill()
	killNS := time.Now().UnixNano()

	cfg.Spans = obs.NewSpanLog(1024) // fresh ring: history must come from the log
	r2, err := shard.New(cfg)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("replay reopen failed: %v", err))
		return
	}
	replayed := r2.Stats().Replayed
	waitDrain(r2, 30*time.Second)
	r2.Close()

	withPhase, preCrash, terminal := 0, 0, 0
	for _, sp := range cfg.Spans.Spans() {
		if sp.At(obs.PhaseReplayed) == 0 {
			continue
		}
		withPhase++
		if adm := sp.At(obs.PhaseAdmitted); adm > 0 && adm < killNS {
			preCrash++
		}
		if _, _, ok := sp.Terminal(); ok {
			terminal++
		}
	}
	verdict := "PASS"
	if replayed == 0 || int64(withPhase) != replayed || preCrash != withPhase || terminal != withPhase {
		verdict = "FAIL"
	}
	t := &report.Table{
		Title:   "span history across kill-and-replay: fresh span ring after restart, history reloaded from the job log",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("jobs replayed as pending", fmt.Sprintf("%d", replayed))
	t.AddRow("replayed spans carrying the replayed phase", fmt.Sprintf("%d", withPhase))
	t.AddRow("of those, admission stamp predates the kill", fmt.Sprintf("%d", preCrash))
	t.AddRow("of those, reached a terminal phase after restart", fmt.Sprintf("%d", terminal))
	t.AddRow("verdict", verdict)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"mechanism: every job-log record carries the span's phase map at append time; replay seeds the new incarnation's span from it and stamps the replayed phase, so a post-restart queue-wait reading still measures from the client's original admission")
}

// waitDrain blocks until the router has nothing queued, running, or in
// backlog, or the deadline passes.
func waitDrain(r *shard.Router, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		st := r.Stats()
		busy := st.Backlog
		for _, ss := range st.PerShard {
			busy += ss.Queued + ss.Running
		}
		if busy == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
