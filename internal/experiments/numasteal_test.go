package experiments

import (
	"strings"
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
)

// TestNUMAStealKneeShift pins the acceptance criterion of the NUMA
// steal-order extension: on Mach B, turning the policy on must cut remote
// steals and push the 70%-efficiency knee (Table 6's metric) to a higher
// thread count for the DRAM-bound work-stealing for_each.
func TestNUMAStealKneeShift(t *testing.T) {
	m := machine.MachB()
	n := int64(1) << 27 // 1 GiB: DRAM-resident on Mach B
	seq := seqBaseline(caseSpec{m: m, op: backend.OpForEach, n: n})

	var ths []int
	var spsOff, spsOn []float64
	var remOff, remOn float64
	for _, th := range m.ThreadCounts() {
		off := runCase(caseSpec{m: m, b: backend.GCCTBB(), op: backend.OpForEach,
			n: n, threads: th, alloc: allocsim.FirstTouch})
		bOn := backend.GCCTBB()
		bOn.NUMASteal = true
		on := runCase(caseSpec{m: m, b: bOn, op: backend.OpForEach,
			n: n, threads: th, alloc: allocsim.FirstTouch})
		ths = append(ths, th)
		spsOff = append(spsOff, seq/off.Seconds)
		spsOn = append(spsOn, seq/on.Seconds)
		remOff += off.Counters.RemoteSteals
		remOn += on.Counters.RemoteSteals
	}

	if remOff == 0 {
		t.Fatal("uniform stealing sweep recorded no remote steals")
	}
	if remOn >= remOff {
		t.Fatalf("NUMA-aware stealing did not reduce remote steals: on=%v off=%v", remOn, remOff)
	}
	// The full-width run must be measurably faster with the policy on.
	last := len(ths) - 1
	if spsOn[last] <= spsOff[last] {
		t.Fatalf("no full-machine speedup gain: on=%v off=%v", spsOn[last], spsOff[last])
	}
	// The scaling knee — the thread count where the backend's own strong
	// scaling collapses — must move right once remote steals stop putting
	// first-touched pages on the fabric.
	kneeOff := selfRelativeKnee(ths, spsOff, 0.50)
	kneeOn := selfRelativeKnee(ths, spsOn, 0.50)
	if kneeOn <= kneeOff {
		t.Fatalf("scaling knee did not shift: off=%d on=%d (speedups off=%v on=%v)",
			kneeOff, kneeOn, spsOff, spsOn)
	}
}

// TestExtensionNUMAStealReport sanity-checks the report plumbing.
func TestExtensionNUMAStealReport(t *testing.T) {
	r := ExtensionNUMASteal(Config{Scale: 6})
	if len(r.Tables) != 2 {
		t.Fatalf("got %d tables, want one per Zen machine", len(r.Tables))
	}
	out := r.String()
	if !strings.Contains(out, "knee") || !strings.Contains(out, "Mach C") {
		t.Fatalf("report missing knee notes:\n%s", out)
	}
}
