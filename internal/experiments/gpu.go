package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
)

// gpuCase simulates one CUDA invocation on a GPU machine.
func gpuCase(m *machine.Machine, op backend.Op, n int64, kit int, transferBack, resident bool) float64 {
	return simexec.Run(simexec.Config{
		Machine: m, Backend: backend.NVCCUDA(),
		Workload:     skeleton.Workload{Op: op, N: n, ElemBytes: 4, Kit: kit, HitFrac: 0.5},
		Threads:      1,
		TransferBack: transferBack,
		DataResident: resident,
	}).Seconds
}

// gpuProblemChart builds a Figure 8/9-style chart: CPU references (GCC-SEQ
// and the parallel CPU backends on Mach A) against the two GPUs, using
// 32-bit floats.
func gpuProblemChart(op backend.Op, kit, maxExp int, transferBack, resident bool, title string) *report.Chart {
	ch := &report.Chart{
		Title:  title,
		XLabel: "problem size (float elements)", YLabel: "time per call (s)",
		LogY: true,
	}
	sizes := sizesUpTo(maxExp)
	cpu := machine.MachA()
	addCPU := func(name string, b *backend.Backend, threads int) {
		s := report.Series{Name: name}
		for _, n := range sizes {
			r := runCase(caseSpec{m: cpu, b: b, op: op, n: n, kit: kit, threads: threads, alloc: allocsim.FirstTouch, elem: 4})
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Seconds)
		}
		ch.Series = append(ch.Series, s)
	}
	addCPU("GCC-SEQ (Mach A)", backend.GCCSeq(), 1)
	addCPU("NVC-OMP (Mach A)", backend.NVCOMP(), cpu.Cores)
	for _, gm := range machine.GPUs() {
		s := report.Series{Name: "NVC-CUDA (" + gm.Name + ")"}
		for _, n := range sizes {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, gpuCase(gm, op, n, kit, transferBack, resident))
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Fig8GPUForEach reproduces Figure 8: for_each with float data across
// computational intensities, with the data transferred back to the host
// between calls.
func Fig8GPUForEach(cfg Config) *Report {
	r := &Report{ID: "fig8", Title: "X::for_each on GPUs, float, forced transfer back (Figure 8)"}
	maxExp := cfg.maxExp() - 2 // 2^28 floats = 1 GiB fits both GPUs
	if maxExp < 10 {
		maxExp = 10
	}
	for _, kit := range []int{1, 100, 10000} {
		r.Charts = append(r.Charts, gpuProblemChart(backend.OpForEach, kit, maxExp, true, false,
			fmt.Sprintf("for_each, k_it=%d, float, D2H forced", kit)))
	}
	r.Notes = append(r.Notes,
		"paper: at low intensity the transfer cost makes the GPU slower than the CPUs (even sequential for small n); at high intensity the GPUs win by 23.5x (T4) and 13.3x (A2) over the parallel CPU",
		"volatile quirk (Section 5.8): targeting the GPU, the k_it loop is never optimized away for float, which is why Figure 8 uses float data")
	return r
}

// Fig9GPUReduce reproduces Figure 9: reduce with float data, with (a) and
// without (b) the device-to-host transfer between chained calls.
func Fig9GPUReduce(cfg Config) *Report {
	r := &Report{ID: "fig9", Title: "X::reduce on GPUs, float, chained calls (Figure 9)"}
	maxExp := cfg.maxExp() - 2
	if maxExp < 10 {
		maxExp = 10
	}
	r.Charts = append(r.Charts,
		gpuProblemChart(backend.OpReduce, 1, maxExp, true, false, "reduce, float, WITH D2H transfer each call (9a)"),
		gpuProblemChart(backend.OpReduce, 1, maxExp, false, true, "reduce, float, data resident on device (9b)"),
	)
	r.Notes = append(r.Notes,
		"paper: with transfers the execution is communication-limited and the GPUs can lose even to the sequential CPU; with resident data the GPUs outperform the CPUs")
	return r
}
