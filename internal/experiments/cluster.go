package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"pstlbench/internal/cluster"
	"pstlbench/internal/report"
	"pstlbench/internal/serve"
	"pstlbench/internal/shard"
)

// ExtensionCluster is an extension beyond the paper: it evaluates the
// distributed shard plane (internal/cluster) — the router driving worker
// processes over HTTP with health-checked failover and live ring growth.
// Two questions, both answered on the real router and real transport
// (workers are in-process serve.Servers behind real HTTP listeners, so
// the runs are fast and CI-stable while every RPC crosses a socket; the
// multi-process equivalent with SIGKILL is `make cluster-smoke` / CI):
//
//  1. Failover: when a worker dies mid-backlog, does the health plane
//     detect it unassisted, and does every acknowledged job still reach
//     exactly one terminal state with an intact checksum?
//  2. Growth: does joining a worker under live traffic remap only
//     ~1/(N+1) of tenants, without disturbing in-flight jobs?
func ExtensionCluster(cfg Config) *Report {
	rep := &Report{
		ID:    "ext-cluster",
		Title: "Distributed shard plane: worker-death failover and live ring growth over real HTTP transport",
	}
	clusterFailover(cfg, rep)
	clusterJoin(rep)
	return rep
}

// clusterWorker is one worker "process": a serve.Server reachable only
// through its HTTP listener, like a separate pstld -worker.
type clusterWorker struct {
	s  *serve.Server
	ts *httptest.Server
}

func startClusterWorker(cfg serve.Config) *clusterWorker {
	s := serve.New(cfg)
	return &clusterWorker{s: s, ts: httptest.NewServer(s.Handler())}
}

func (w *clusterWorker) handle() shard.ShardHandle {
	return cluster.NewRemoteShard(cluster.RemoteConfig{
		Client: cluster.ClientConfig{
			BaseURL:     w.ts.URL,
			Timeout:     time.Second,
			Retries:     2,
			BackoffBase: time.Millisecond,
		},
		PollEvery: 2 * time.Millisecond,
	})
}

// kill severs the listener abruptly — the transport-level equivalent of
// SIGKILL: every future RPC fails, in-flight connections break.
func (w *clusterWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
}

func (w *clusterWorker) stop() {
	w.ts.Close()
	w.s.Close()
}

// drainCluster waits until the router has delivered a terminal state for
// every listed job, returning how many landed "done" with the expected
// checksum and how many finished otherwise.
func drainCluster(r *shard.Router, ids []string, sums map[string]float64, timeout time.Duration) (done, bad int) {
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		for {
			info, ok := r.Get(id)
			if ok && (info.State == "done" || info.State == "canceled") {
				if info.State == "done" && info.Checksum == sums[id] {
					done++
				} else {
					bad++
				}
				break
			}
			if time.Now().After(deadline) {
				bad++
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// The completion counter trails Get by up to one poll cycle; settle it
	// so the exactly-once row reads the final number.
	for time.Now().Before(deadline) && r.Stats().Completed < int64(done) {
		time.Sleep(time.Millisecond)
	}
	return done, bad
}

// clusterFailover builds a backlog across two workers, kills one, and
// audits detection latency and exactly-once completion delivery.
func clusterFailover(cfg Config, rep *Report) {
	workers := []*clusterWorker{
		startClusterWorker(serve.Config{Workers: 1, QueueCap: 256, MaxConcurrent: 1}),
		startClusterWorker(serve.Config{Workers: 1, QueueCap: 256, MaxConcurrent: 1}),
	}
	r, err := shard.New(shard.Config{
		Handles:        []shard.ShardHandle{workers[0].handle(), workers[1].handle()},
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      3,
		RebalanceEvery: 10 * time.Millisecond,
	})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("failover run skipped: %v", err))
		return
	}
	defer func() {
		r.Close()
		workers[1].stop()
	}()

	// The kill fires from a timer while submissions are still streaming in:
	// with kernels and transport sharing the CPU budget, killing after the
	// loop would find the backlog already drained. Mid-stream, part of the
	// acknowledged backlog is queued on the dying shard and must be
	// re-placed, and submissions racing the death exercise the
	// retry-then-spill path (an acked job is acked wherever it landed).
	type killMark struct {
		at  time.Time
		pre shard.Stats
	}
	killed := make(chan killMark, 1)
	go func() {
		time.Sleep(120 * time.Millisecond)
		pre := r.Stats()
		workers[0].kill()
		killed <- killMark{at: time.Now(), pre: pre}
	}()

	// Large sorts pin the single run slot on each shard; the smaller sorts
	// behind them are the queued backlog the death must not lose.
	var ids []string
	sums := map[string]float64{}
	blockN := 1 << 18
	for i := 0; i < 4; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "sort", N: blockN, Tenant: fmt.Sprintf("blk-%d", i)})
		if err != nil {
			continue
		}
		ids = append(ids, j.ID())
		sums[j.ID()] = serve.ExpectedChecksum("sort", blockN)
	}
	jobs := 24 + 2*cfg.Scale
	n := 1 << 14
	for i := 0; i < jobs; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "sort", N: n, Tenant: fmt.Sprintf("tenant-%d", i%8)})
		if err != nil {
			continue
		}
		ids = append(ids, j.ID())
		sums[j.ID()] = serve.ExpectedChecksum("sort", n)
	}
	mark := <-killed
	preKill := mark.pre
	detect := time.Duration(-1)
	for deadline := mark.at.Add(10 * time.Second); time.Now().Before(deadline); {
		if r.HealthOf(0) == shard.Dead {
			detect = time.Since(mark.at)
			break
		}
		time.Sleep(time.Millisecond)
	}
	done, bad := drainCluster(r, ids, sums, 60*time.Second)
	st := r.Stats()

	verdict := "PASS"
	if detect < 0 || done != len(ids) || bad != 0 || st.Completed != int64(len(ids)) {
		verdict = "FAIL"
	}
	t := &report.Table{
		Title: fmt.Sprintf("worker-death failover: 2 remote shards over HTTP, %d acked sorts (slot-pinning n=%d + backlog n=%d), one worker killed mid-backlog (heartbeat 5ms, dead after 3 misses)",
			len(ids), blockN, n),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("acknowledged jobs", fmt.Sprintf("%d", len(ids)))
	t.AddRow("completed before kill", fmt.Sprintf("%d", preKill.Completed))
	t.AddRow("dead detected after", fmt.Sprintf("%v", detect.Round(time.Millisecond)))
	t.AddRow("jobs re-placed on survivor", fmt.Sprintf("%d", st.Replaced))
	t.AddRow("shard deaths", fmt.Sprintf("%d", st.Deaths))
	t.AddRow("done with intact checksum", fmt.Sprintf("%d of %d", done, len(ids)))
	t.AddRow("lost / wrong-checksum / stuck", fmt.Sprintf("%d", bad))
	t.AddRow("terminal deliveries (router counter)", fmt.Sprintf("%d", st.Completed))
	t.AddRow("exactly-once verdict", verdict)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"failover mechanism: missed heartbeats walk the shard healthy -> suspect -> dead; on death the ring drops the member and the router re-places the dead shard's acknowledged backlog from its own specs — kernels are deterministic, so re-execution on a survivor reproduces the same checksum, and only the router delivers terminal states (exactly one per job)")
}

// clusterJoin measures the remap fraction of a live join and checks that
// traffic in flight across the join is undisturbed.
func clusterJoin(rep *Report) {
	workers := []*clusterWorker{
		startClusterWorker(serve.Config{Workers: 1, QueueCap: 512}),
		startClusterWorker(serve.Config{Workers: 1, QueueCap: 512}),
	}
	r, err := shard.New(shard.Config{
		Handles:        []shard.ShardHandle{workers[0].handle(), workers[1].handle()},
		HeartbeatEvery: 10 * time.Millisecond,
		RebalanceEvery: -1,
	})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("join run skipped: %v", err))
		return
	}
	joiner := startClusterWorker(serve.Config{Workers: 1, QueueCap: 512})
	defer func() {
		r.Close()
		for _, w := range workers {
			w.stop()
		}
		joiner.stop()
	}()

	const tenants = 5000
	before := make([]int, tenants)
	for i := range before {
		before[i] = r.HomeShard(fmt.Sprintf("tenant-%d", i))
	}
	var ids []string
	sums := map[string]float64{}
	for i := 0; i < 20; i++ {
		j, err := r.Submit(serve.Spec{Kernel: "scan", N: 1 << 12, Tenant: fmt.Sprintf("tenant-%d", i)})
		if err != nil {
			continue
		}
		ids = append(ids, j.ID())
		sums[j.ID()] = serve.ExpectedChecksum("scan", 1<<12)
	}
	if _, err := r.AddShard(joiner.handle()); err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("join failed: %v", err))
		return
	}
	moved := 0
	for i := range before {
		if r.HomeShard(fmt.Sprintf("tenant-%d", i)) != before[i] {
			moved++
		}
	}
	frac := float64(moved) / tenants
	done, bad := drainCluster(r, ids, sums, 30*time.Second)

	verdict := "PASS"
	if frac < 0.15 || frac > 0.5 || done != len(ids) || bad != 0 {
		verdict = "FAIL"
	}
	t := &report.Table{
		Title:   fmt.Sprintf("live ring growth 2 -> 3 workers, %d tenants, %d jobs in flight across the join", tenants, len(ids)),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("tenants remapped", fmt.Sprintf("%d", moved))
	t.AddRow("remap fraction", fmt.Sprintf("%.3f", frac))
	t.AddRow("ideal 1/(N+1)", fmt.Sprintf("%.3f", 1.0/3))
	t.AddRow("in-flight jobs done with intact checksum", fmt.Sprintf("%d of %d", done, len(ids)))
	t.AddRow("in-flight jobs disturbed", fmt.Sprintf("%d", bad))
	t.AddRow("join verdict", verdict)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"growth mechanism: the ring keys virtual points by member identity, so adding a member only claims arcs from its own new points — existing members never trade tenants with each other, and jobs already placed stay where they are")
}
