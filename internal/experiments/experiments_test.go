package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs everything at strongly reduced scale.
var quick = Config{Scale: 10} // 2^20 elements

func TestIndexCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"tab2", "fig1", "fig2", "fig3", "tab3", "fig4", "fig5", "fig6",
		"tab4", "fig7", "tab5", "tab6", "tab7", "fig8", "fig9",
	}
	have := map[string]bool{}
	for _, e := range Index() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from index", id)
		}
	}
	if ByID("fig2") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

func TestEveryExperimentProducesOutput(t *testing.T) {
	for _, e := range Index() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run(quick)
			if r.ID != e.ID {
				t.Errorf("report ID %q != %q", r.ID, e.ID)
			}
			out := r.String()
			if len(out) < 100 {
				t.Errorf("suspiciously short report:\n%s", out)
			}
			if len(r.Tables) == 0 && len(r.Charts) == 0 {
				t.Error("report has neither tables nor charts")
			}
		})
	}
}

// parseCell extracts the float from a table cell like "8.7" or the first
// element of "8.7 | 4.4 | 6.9".
func parseCell(cell string, idx int) float64 {
	parts := strings.Split(cell, "|")
	v, err := strconv.ParseFloat(strings.TrimSpace(parts[idx]), 64)
	if err != nil {
		return -1
	}
	return v
}

func findRow(rows [][]string, name string) []string {
	for _, r := range rows {
		if r[0] == name {
			return r
		}
	}
	return nil
}

func TestTab5ShapesAtReducedScale(t *testing.T) {
	r := Tab5Speedups(Config{Scale: 6}) // 2^24: still DRAM-resident
	rows := r.Tables[0].Rows
	tbb := findRow(rows, "GCC-TBB")
	hpx := findRow(rows, "GCC-HPX")
	nvc := findRow(rows, "NVC-OMP")
	gnu := findRow(rows, "GCC-GNU")
	if tbb == nil || hpx == nil || nvc == nil || gnu == nil {
		t.Fatal("missing backend rows")
	}
	// Columns: 1=find 2=for_each k1 3=for_each k1000 4=scan 5=reduce 6=sort.
	// NVC leads for_each k=1 on Mach A; HPX trails.
	if !(parseCell(nvc[2], 0) > parseCell(tbb[2], 0) && parseCell(hpx[2], 0) < parseCell(tbb[2], 0)) {
		t.Errorf("for_each ordering wrong: nvc=%s tbb=%s hpx=%s", nvc[2], tbb[2], hpx[2])
	}
	// Scan: GNU and NVC sequential fallbacks stay around 1.
	if parseCell(gnu[4], 0) > 1.2 || parseCell(nvc[4], 0) > 1.2 {
		t.Errorf("scan fallbacks not sequential: gnu=%s nvc=%s", gnu[4], nvc[4])
	}
	// Sort: GNU clearly fastest on every machine.
	for mi := 0; mi < 3; mi++ {
		if gnuV, tbbV := parseCell(gnu[6], mi), parseCell(tbb[6], mi); gnuV < 1.5*tbbV {
			t.Errorf("machine %d: GNU sort %v not clearly ahead of TBB %v", mi, gnuV, tbbV)
		}
	}
	// ICC rows are N/A on Mach B.
	icc := findRow(rows, "ICC-TBB")
	if !strings.Contains(icc[1], "N/A") {
		t.Errorf("ICC on Mach B should be N/A: %s", icc[1])
	}
}

func TestFig1Signs(t *testing.T) {
	r := Fig1Allocator(Config{Scale: 4}) // 2^26
	rows := r.Tables[0].Rows
	for _, row := range rows {
		// Columns: 1=find 2=fe k1 3=fe k1000 4=scan 5=reduce 6=sort.
		name := row[0]
		feGain := parseCell(row[2], 0)
		if feGain < 1.2 {
			t.Errorf("%s: for_each k=1 allocator gain %v, want > 1.2", name, feGain)
		}
		if sortGain := parseCell(row[6], 0); sortGain < 0.95 || sortGain > 1.05 {
			t.Errorf("%s: sort allocator gain %v, want ~1.0", name, sortGain)
		}
		if kitGain := parseCell(row[3], 0); kitGain < 0.95 || kitGain > 1.05 {
			t.Errorf("%s: k_it=1000 allocator gain %v, want ~1.0", name, kitGain)
		}
	}
	// The negative cases: TBB find/scan, NVC find/scan.
	tbb := findRow(rows, "GCC-TBB")
	nvc := findRow(rows, "NVC-OMP")
	if parseCell(tbb[1], 0) >= 1.0 || parseCell(nvc[1], 0) >= 1.0 {
		t.Errorf("find allocator gains should be negative: tbb=%s nvc=%s", tbb[1], nvc[1])
	}
	if parseCell(tbb[4], 0) >= 1.0 || parseCell(nvc[4], 0) >= 1.0 {
		t.Errorf("scan allocator gains should be negative: tbb=%s nvc=%s", tbb[4], nvc[4])
	}
}

func TestTab7MatchesPaperExactly(t *testing.T) {
	r := Tab7BinarySizes(quick)
	want := map[string]string{
		"GCC-SEQ": "2.52", "GCC-TBB": "17.21", "GCC-GNU": "5.31",
		"GCC-HPX": "61.98", "ICC-TBB": "16.64", "NVC-OMP": "1.81", "NVC-CUDA": "7.80",
	}
	for _, row := range r.Tables[0].Rows {
		if want[row[0]] != row[1] {
			t.Errorf("%s: %s, want %s", row[0], row[1], want[row[0]])
		}
	}
}

func TestGPUChartsShowCrossover(t *testing.T) {
	// Fig 9: with transfers the GPU line must sit far above the resident
	// line at large n.
	r := Fig9GPUReduce(Config{Scale: 4})
	if len(r.Charts) != 2 {
		t.Fatalf("fig9 has %d charts", len(r.Charts))
	}
	withT := r.Charts[0]
	resident := r.Charts[1]
	// Find the T4 series in both charts and compare the largest size.
	var a, b float64
	for _, s := range withT.Series {
		if strings.Contains(s.Name, "Tesla") {
			a = s.Y[len(s.Y)-1]
		}
	}
	for _, s := range resident.Series {
		if strings.Contains(s.Name, "Tesla") {
			b = s.Y[len(s.Y)-1]
		}
	}
	if a == 0 || b == 0 {
		t.Fatal("missing T4 series")
	}
	if a < 3*b {
		t.Errorf("transfers should dominate: with=%v resident=%v", a, b)
	}
}

func TestAblationContentionMonotone(t *testing.T) {
	// 2^26 elements: comfortably DRAM-resident on Mach B, where the
	// NUMA mechanisms actually bind (at 2^24 the LLC would serve it).
	r := AblationContention(Config{Scale: 4})
	rows := r.Tables[0].Rows
	full := parseCell(rows[0][1], 0)
	noNUMA := parseCell(rows[len(rows)-1][1], 0)
	if noNUMA <= full {
		t.Errorf("removing NUMA effects should raise TBB speedup: full=%v none=%v", full, noNUMA)
	}
}

// TestFig2CrossoverLocation: in the problem-scaling chart, the sequential
// and parallel series must cross between 2^12 and 2^20 (the paper puts it
// near 2^16 on Mach A).
func TestFig2CrossoverLocation(t *testing.T) {
	r := Fig2ForEachProblem(Config{Scale: 6})
	chart := r.Charts[0] // Mach A, k_it = 1
	var seq, tbb *struct{ X, Y []float64 }
	for i := range chart.Series {
		s := &chart.Series[i]
		switch s.Name {
		case "GCC-SEQ":
			seq = &struct{ X, Y []float64 }{s.X, s.Y}
		case "GCC-TBB":
			tbb = &struct{ X, Y []float64 }{s.X, s.Y}
		}
	}
	if seq == nil || tbb == nil {
		t.Fatal("missing series")
	}
	cross := -1.0
	for i := range seq.X {
		if tbb.Y[i] < seq.Y[i] {
			cross = seq.X[i]
			break
		}
	}
	if cross < 0 {
		t.Fatal("parallel never overtakes sequential")
	}
	if cross < 1<<12 || cross > 1<<20 {
		t.Errorf("crossover at n=%v, want within [2^12, 2^20]", cross)
	}
	// And at the smallest size, sequential must win by a wide margin
	// (the paper: often by orders of magnitude).
	if tbb.Y[0] < 10*seq.Y[0] {
		t.Errorf("at n=8 parallel (%v) should be >=10x slower than seq (%v)", tbb.Y[0], seq.Y[0])
	}
}
