package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/counters"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/stats"
)

// counterTable renders a Table 3/4-style Likwid report for 100 calls of op
// on Mach A with 32 threads.
func counterTable(op backend.Op, kit int, cfg Config, title string) *report.Table {
	m := machine.MachA()
	n := int64(1) << cfg.maxExp()
	const calls = 100
	t := &report.Table{
		Title:   fmt.Sprintf("%s (n=%d, %d calls, Mach A, 32 threads)", title, n, calls),
		Headers: []string{"Metric", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"},
	}
	var sets []counters.Set
	for _, b := range backend.Parallel() {
		r := runCase(caseSpec{m: m, b: b, op: op, n: n, kit: kit, threads: 32, alloc: allocsim.FirstTouch})
		sets = append(sets, r.Counters.Scale(calls))
	}
	row := func(metric string, get func(counters.Set) string) {
		cells := []string{metric}
		for _, s := range sets {
			cells = append(cells, get(s))
		}
		t.AddRow(cells...)
	}
	row("Instructions", func(s counters.Set) string { return counters.SI(s.Instructions) })
	row("FP scalar", func(s counters.Set) string { return counters.SI(s.FPScalar) })
	row("FP 128-bit packed", func(s counters.Set) string { return counters.SI(s.FP128) })
	row("FP 256-bit packed", func(s counters.Set) string { return counters.SI(s.FP256) })
	row("GFLOP/s", func(s counters.Set) string { return f2(s.GFlopsPerSec()) })
	row("Mem. bandwidth (GiB/s)", func(s counters.Set) string { return f1(s.BandwidthGiBs()) })
	row("Mem. data volume (GiB)", func(s counters.Set) string { return f1(s.DataVolumeGiB()) })
	return t
}

// Tab3ForEachCounters reproduces Table 3: counters for 100 calls of
// for_each (k_it = 1) on Mach A.
func Tab3ForEachCounters(cfg Config) *Report {
	return &Report{
		ID: "tab3", Title: "Executed instructions, X::for_each k_it=1 (Table 3)",
		Tables: []*report.Table{counterTable(backend.OpForEach, 1, cfg, "X::for_each counters")},
		Notes: []string{
			"paper instr/elem: GCC-TBB 16.0, GCC-GNU 22.4, GCC-HPX 35.7, ICC-TBB 14.4, NVC-OMP 20.9; FP scalar 107G per 100 calls for all backends",
		},
	}
}

// Tab4ReduceCounters reproduces Table 4: counters for 100 calls of reduce
// on Mach A. Only ICC-TBB and GCC-HPX vectorize (FP 256-bit packed).
func Tab4ReduceCounters(cfg Config) *Report {
	return &Report{
		ID: "tab4", Title: "Executed instructions, X::reduce (Table 4)",
		Tables: []*report.Table{counterTable(backend.OpReduce, 1, cfg, "X::reduce counters")},
		Notes: []string{
			"paper: HPX executes up to 6x more instructions; HPX and ICC use 256-bit vector FP, the rest are scalar",
		},
	}
}

// tab5Kernels are the kernel columns of Tables 5 and 6.
var tab5Kernels = []struct {
	label string
	op    backend.Op
	kit   int
}{
	{"find", backend.OpFind, 1},
	{"for_each k=1", backend.OpForEach, 1},
	{"for_each k=1000", backend.OpForEach, 1000},
	{"inclusive_scan", backend.OpInclusiveScan, 1},
	{"reduce", backend.OpReduce, 1},
	{"sort", backend.OpSort, 1},
}

// speedupCell computes one Table 5 cell: speedup vs GCC-SEQ with all
// cores at n = 2^maxExp, or "N/A" when the backend is unavailable.
func speedupCell(m *machine.Machine, b *backend.Backend, op backend.Op, kit int, n int64) string {
	if !b.AvailableOn(m.Name) {
		return "N/A"
	}
	seq := seqBaseline(caseSpec{m: m, op: op, n: n, kit: kit})
	par := runCase(caseSpec{m: m, b: b, op: op, n: n, kit: kit, threads: m.Cores, alloc: allocsim.FirstTouch}).Seconds
	return f1(seq / par)
}

// Tab5Speedups reproduces Table 5: speedup against GCC's sequential
// implementation on Mach A/B/C with all cores, problem size 2^30.
func Tab5Speedups(cfg Config) *Report {
	n := int64(1) << cfg.maxExp()
	t := &report.Table{
		Title:   fmt.Sprintf("Speedup vs GCC-SEQ, all cores, n=%d (cells: Mach A | Mach B | Mach C)", n),
		Headers: append([]string{"Backend"}, tab5Labels()...),
	}
	for _, b := range backend.Parallel() {
		row := []string{b.ID}
		for _, k := range tab5Kernels {
			cell := ""
			for i, m := range machine.CPUs() {
				if i > 0 {
					cell += " | "
				}
				cell += speedupCell(m, b, k.op, k.kit, n)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return &Report{
		ID: "tab5", Title: "Speedups against GCC-SEQ (Table 5)",
		Tables: []*report.Table{t},
	}
}

func tab5Labels() []string {
	out := make([]string, len(tab5Kernels))
	for i, k := range tab5Kernels {
		out[i] = k.label
	}
	return out
}

// Tab6Efficiency reproduces Table 6: the maximum number of threads whose
// parallel efficiency vs the sequential execution stays at or above 70 %.
func Tab6Efficiency(cfg Config) *Report {
	n := int64(1) << cfg.maxExp()
	t := &report.Table{
		Title:   fmt.Sprintf("Max threads with efficiency >= 70%%, n=%d (cells: Mach A | Mach B | Mach C)", n),
		Headers: append([]string{"Backend"}, tab5Labels()...),
	}
	for _, b := range backend.Parallel() {
		row := []string{b.ID}
		for _, k := range tab5Kernels {
			cell := ""
			for i, m := range machine.CPUs() {
				if i > 0 {
					cell += " | "
				}
				if !b.AvailableOn(m.Name) {
					cell += "N/A"
					continue
				}
				seq := seqBaseline(caseSpec{m: m, op: k.op, n: n, kit: k.kit})
				var ths []int
				var sps []float64
				for _, th := range m.ThreadCounts() {
					par := runCase(caseSpec{m: m, b: b, op: k.op, n: n, kit: k.kit, threads: th, alloc: allocsim.FirstTouch}).Seconds
					ths = append(ths, th)
					sps = append(sps, seq/par)
				}
				cell += fmt.Sprintf("%d", stats.MaxThreadsAtEfficiency(ths, sps, 0.70))
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return &Report{
		ID: "tab6", Title: "Threads usable at >= 70% efficiency (Table 6)",
		Tables: []*report.Table{t},
		Notes: []string{
			"paper: backends typically fail beyond 16 threads — the cores of one NUMA node — except for the compute-bound for_each k_it=1000",
		},
	}
}

// Tab7BinarySizes reproduces Table 7: binary sizes per compiler/backend.
// The sizes are the modeled runtime-library footprints recorded in the
// backend cost sheets (a static property, not a simulation).
func Tab7BinarySizes(cfg Config) *Report {
	t := &report.Table{
		Title:   "Binary sizes (MiB), Mach A target (NVC-CUDA: Mach D target)",
		Headers: []string{"Compiler-Backend", "Bin. size (MiB)"},
	}
	order := []string{"GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP", "NVC-CUDA"}
	for _, id := range order {
		b := backend.ByID(id)
		t.AddRow(b.ID, f2(b.BinMiB))
	}
	return &Report{
		ID: "tab7", Title: "Binary sizes (Table 7)",
		Tables: []*report.Table{t},
		Notes: []string{
			"modeled footprints reproduce the paper's measurements exactly: the HPX runtime dominates at ~62 MiB, NVC-OMP is smallest at 1.81 MiB",
		},
	}
}
