package experiments

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/tune"
)

// adaptiveInvocations is the repeated-invocation budget the acceptance
// criterion allows the tuner before it must be within 10% of the sweep.
const adaptiveInvocations = 8

// ExtensionAdaptive is an extension beyond the paper: it closes the loop
// on the paper's central chunking observation by letting the adaptive
// grain tuner (internal/tune) pick the chunk size online, and compares the
// converged operating point against an exhaustive fixed-grain sweep and
// against the backend's own default grain. GCC-HPX is the backend under
// test — the cost sheet with the strongest grain sensitivity (per-future
// spawn cost plus central-queue pops), mirroring the paper's observation
// that HPX's fine decomposition only amortizes at the right grain — shown
// on a 2-node Skylake (Mach A) and an 8-node Zen1 (Mach B).
func ExtensionAdaptive(cfg Config) *Report {
	n := int64(1) << (cfg.maxExp() - 6)
	rep := &Report{
		ID:    "ext-adaptive",
		Title: fmt.Sprintf("Adaptive grain auto-tuning: converged vs fixed grain (Mach A/B, GCC-HPX, n=%d)", n),
	}
	ops := []struct {
		op   backend.Op
		name string
	}{
		{backend.OpForEach, "for_each"},
		{backend.OpReduce, "reduce"},
	}
	for _, m := range []*machine.Machine{machine.MachA(), machine.MachB()} {
		threads := m.Cores
		for _, o := range ops {
			// Exhaustive fixed-grain sweep over the power-of-two chunk
			// ladder, from one chunk per worker downwards.
			t := &report.Table{
				Title:   fmt.Sprintf("%s, %s n=%d, %d threads: fixed-grain sweep", m.Name, o.name, n, threads),
				Headers: []string{"chunk", "chunks", "time", "items/s"},
			}
			bestTp, bestChunk := 0.0, 0
			for _, c := range adaptiveLadder(n, threads, 6) {
				r := runGrainCase(m, o.op, n, threads, exec.Grain{MinChunk: c, MaxChunk: c})
				tp := float64(n) / r.Seconds
				if tp > bestTp {
					bestTp, bestChunk = tp, c
				}
				t.AddRow(fmt.Sprintf("%d", c),
					fmt.Sprintf("%d", (n+int64(c)-1)/int64(c)),
					fmt.Sprintf("%.3gs", r.Seconds), f1(tp))
			}
			rep.Tables = append(rep.Tables, t)

			// Adaptive: repeated invocations of one loop site, observations
			// fed from the simulator's modeled scheduler counters.
			tn := tune.New(tune.Options{})
			key := tune.Key{Site: fmt.Sprintf("%s/%s", o.name, m.Name), N: int(n), Workers: threads}
			var iters, tps []float64
			converged := 0
			for i := 1; i <= adaptiveInvocations; i++ {
				g := tn.Propose(key)
				r := runGrainCase(m, o.op, n, threads, g)
				obs := tune.FromCounters(r.Counters)
				obs.Seconds = r.Seconds
				tn.Observe(key, obs)
				iters = append(iters, float64(i))
				tps = append(tps, float64(n)/r.Seconds)
				if converged == 0 && tn.Converged(key) {
					converged = i
				}
			}
			gConv := tn.Propose(key)
			rConv := runGrainCase(m, o.op, n, threads, gConv)
			tpConv := float64(n) / rConv.Seconds
			rDef := runGrainCase(m, o.op, n, threads, backend.GCCHPX().Grain)
			tpDef := float64(n) / rDef.Seconds

			best := make([]float64, len(iters))
			for i := range best {
				best[i] = bestTp
			}
			rep.Charts = append(rep.Charts, &report.Chart{
				Title:  fmt.Sprintf("%s %s: tuner convergence (n=%d, %d threads)", m.Name, o.name, n, threads),
				XLabel: "invocation",
				YLabel: "items/s",
				Series: []report.Series{
					{Name: "adaptive", X: iters, Y: tps},
					{Name: "best fixed", X: iters, Y: best},
				},
			})
			chunkConv, _, _ := tn.Best(key)
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s %s: converged after %d invocations to chunk=%d at %.1f%% of the best fixed grain (chunk=%d); the backend's default grain reaches %.1f%%",
				m.Name, o.name, converged, chunkConv,
				100*tpConv/bestTp, bestChunk, 100*tpDef/bestTp))
		}
	}
	rep.Notes = append(rep.Notes,
		"observations come from the simulator's modeled scheduler counters (tune.FromCounters); the central-queue backend reports every dispatch as a local steal, so the climb is throughput-driven with the steal mix as a tie-breaker")
	return rep
}

// runGrainCase simulates one GCC-HPX invocation with an explicit grain.
func runGrainCase(m *machine.Machine, op backend.Op, n int64, threads int, g exec.Grain) simexec.Result {
	b := backend.GCCHPX()
	b.Grain = g
	return simexec.Run(simexec.Config{
		Machine: m, Backend: b,
		Workload: skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.5},
		Threads:  threads, Alloc: allocsim.FirstTouch,
	})
}

// adaptiveLadder returns the power-of-two chunk ladder from one chunk per
// worker down to points points.
func adaptiveLadder(n int64, threads, points int) []int {
	c := int((n + int64(threads) - 1) / int64(threads))
	var out []int
	for i := 0; i < points && c >= 1; i++ {
		out = append(out, c)
		c /= 2
	}
	return out
}
