package simexec

import (
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/memsys"
	"pstlbench/internal/skeleton"
)

// findFracs mirrors the paper's random-element search: find results are
// averaged over hit positions.
var findFracs = []float64{0.05, 0.17, 0.29, 0.41, 0.53, 0.65, 0.77, 0.89}

func avgSeconds(cfg Config) float64 {
	if cfg.Workload.Op != backend.OpFind {
		return Run(cfg).Seconds
	}
	tot := 0.0
	for _, f := range findFracs {
		c := cfg
		c.Workload.HitFrac = f
		tot += Run(c).Seconds
	}
	return tot / float64(len(findFracs))
}

func wl(op backend.Op, n int64) skeleton.Workload {
	return skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.5}
}

func speedup(m *machine.Machine, b *backend.Backend, op backend.Op, n int64, threads int) float64 {
	seq := avgSeconds(Config{Machine: m, Backend: backend.GCCSeq(), Workload: wl(op, n), Threads: 1, Alloc: allocsim.FirstTouch})
	par := avgSeconds(Config{Machine: m, Backend: b, Workload: wl(op, n), Threads: threads, Alloc: allocsim.FirstTouch})
	return seq / par
}

// TestTable5GoldenShapes pins the qualitative findings of the paper's
// Table 5: per machine and operation, who wins, who loses, and the rough
// magnitude of the winner.
func TestTable5GoldenShapes(t *testing.T) {
	n := int64(1) << 30
	type sp map[string]float64
	speedups := func(m *machine.Machine, op backend.Op) sp {
		out := sp{}
		for _, b := range backend.Parallel() {
			out[b.ID] = speedup(m, b, op, n, m.Cores)
		}
		return out
	}

	a := machine.MachA()

	// for_each kit=1 on Mach A: NVC-OMP fastest, HPX slowest (Fig 2/3,
	// Table 5), both by a clear margin.
	fe := speedups(a, backend.OpForEach)
	if !(fe["NVC-OMP"] > fe["GCC-TBB"] && fe["NVC-OMP"] > fe["GCC-GNU"]) {
		t.Errorf("for_each: NVC-OMP not fastest: %v", fe)
	}
	if !(fe["GCC-HPX"] < fe["GCC-TBB"]*0.7) {
		t.Errorf("for_each: HPX not clearly slowest: %v", fe)
	}
	if fe["GCC-TBB"] < 10 || fe["GCC-TBB"] > 22 {
		t.Errorf("for_each TBB speedup %v outside [10,22] (paper: 14.2)", fe["GCC-TBB"])
	}

	// reduce on Mach A: all backends around 10, HPX trailing (~7).
	rd := speedups(a, backend.OpReduce)
	for id, s := range rd {
		if id == "GCC-HPX" {
			if s < 4 || s > 11 {
				t.Errorf("reduce HPX speedup %v outside [4,11] (paper: 7.3)", s)
			}
			continue
		}
		if s < 7 || s > 16 {
			t.Errorf("reduce %s speedup %v outside [7,16] (paper: ~10-11)", id, s)
		}
	}

	// inclusive_scan: GNU and NVC-OMP fall back to sequential
	// (speedup ~<=1); TBB leads at ~4.5.
	sc := speedups(a, backend.OpInclusiveScan)
	if sc["GCC-GNU"] > 1.1 || sc["NVC-OMP"] > 1.1 {
		t.Errorf("scan: GNU/NVC should be sequential fallbacks: %v", sc)
	}
	if sc["GCC-TBB"] < 2.5 || sc["GCC-TBB"] > 7 {
		t.Errorf("scan TBB speedup %v outside [2.5,7] (paper: 4.5)", sc["GCC-TBB"])
	}

	// find: memory-bound; no backend exceeds ~BWall/BW1 (the STREAM
	// ratio), per Section 5.3.
	fd := speedups(a, backend.OpFind)
	streamRatio := a.BWAllCores / a.BW1Core
	for id, s := range fd {
		if s > streamRatio*1.05 {
			t.Errorf("find %s speedup %v exceeds STREAM ratio %v", id, s, streamRatio)
		}
	}

	// sort: GNU's multiway mergesort is the clear winner (Table 5: 25.4
	// vs ~10 for the rest).
	so := speedups(a, backend.OpSort)
	if !(so["GCC-GNU"] > 1.8*so["GCC-TBB"]) {
		t.Errorf("sort: GNU not clearly fastest: %v", so)
	}

	// Mach B: NVC-OMP for_each stays strong (15.0) while TBB/GNU drop to
	// 6-8 and HPX is worst.
	b := machine.MachB()
	feb := speedups(b, backend.OpForEach)
	if !(feb["NVC-OMP"] > 1.5*feb["GCC-TBB"]) {
		t.Errorf("for_each Mach B: NVC-OMP should lead clearly: %v", feb)
	}
	if feb["GCC-TBB"] < 3 || feb["GCC-TBB"] > 10 {
		t.Errorf("for_each Mach B TBB %v outside [3,10] (paper: 6.1)", feb["GCC-TBB"])
	}
	// find on Mach B collapses for NVC (chunk-granular cancellation).
	fdb := speedups(b, backend.OpFind)
	if fdb["NVC-OMP"] > 2.5 {
		t.Errorf("find Mach B NVC %v, paper: 1.4", fdb["NVC-OMP"])
	}
}

// TestForEachHighIntensityNearIdeal pins the paper's k_it=1000 result:
// with high computational intensity every backend approaches ideal
// speedup (Table 5: 32.0-32.5 on 32 cores).
func TestForEachHighIntensityNearIdeal(t *testing.T) {
	a := machine.MachA()
	w := skeleton.Workload{Op: backend.OpForEach, N: 1 << 30, ElemBytes: 8, Kit: 1000}
	seq := Run(Config{Machine: a, Backend: backend.GCCSeq(), Workload: w, Threads: 1, Alloc: allocsim.FirstTouch}).Seconds
	for _, b := range backend.Parallel() {
		s := seq / Run(Config{Machine: a, Backend: b, Workload: w, Threads: 32, Alloc: allocsim.FirstTouch}).Seconds
		if s < 25 || s > 33 {
			t.Errorf("%s kit=1000 speedup %v outside [25,33] (paper: 32.0-32.5)", b.ID, s)
		}
	}
}

// TestProblemScalingCrossover pins Fig. 2's observation: sequential wins
// below ~2^10 and parallel wins beyond ~2^16-2^18.
func TestProblemScalingCrossover(t *testing.T) {
	a := machine.MachA()
	for _, b := range []*backend.Backend{backend.GCCTBB(), backend.NVCOMP()} {
		seqT := func(n int64) float64 {
			return Run(Config{Machine: a, Backend: backend.GCCSeq(), Workload: wl(backend.OpForEach, n), Threads: 1, Alloc: allocsim.FirstTouch}).Seconds
		}
		parT := func(n int64) float64 {
			return Run(Config{Machine: a, Backend: b, Workload: wl(backend.OpForEach, n), Threads: 32, Alloc: allocsim.FirstTouch}).Seconds
		}
		if parT(1<<8) < seqT(1<<8) {
			t.Errorf("%s: parallel should lose at 2^8", b.ID)
		}
		if parT(1<<20) > seqT(1<<20) {
			t.Errorf("%s: parallel should win at 2^20", b.ID)
		}
	}
}

// TestGNUSeqFallbackThreshold pins Section 5.2/5.3: GNU runs sequentially
// below ~2^10 elements for for_each (2^9 for find).
func TestGNUSeqFallbackThreshold(t *testing.T) {
	a := machine.MachA()
	gnu := backend.GCCGNU()
	small := Run(Config{Machine: a, Backend: gnu, Workload: wl(backend.OpForEach, 1<<9), Threads: 32, Alloc: allocsim.FirstTouch})
	if small.Parallel {
		t.Error("GNU for_each at 2^9 should be sequential")
	}
	big := Run(Config{Machine: a, Backend: gnu, Workload: wl(backend.OpForEach, 1<<11), Threads: 32, Alloc: allocsim.FirstTouch})
	if !big.Parallel {
		t.Error("GNU for_each at 2^11 should be parallel")
	}
}

// TestHPXSortThreshold pins Section 5.6: HPX sorts on a single thread for
// inputs of 2^15 or smaller.
func TestHPXSortThreshold(t *testing.T) {
	a := machine.MachA()
	hpx := backend.GCCHPX()
	r := Run(Config{Machine: a, Backend: hpx, Workload: wl(backend.OpSort, 1<<15), Threads: 32, Alloc: allocsim.FirstTouch})
	if r.Parallel {
		t.Error("HPX sort at 2^15 should be sequential")
	}
	r = Run(Config{Machine: a, Backend: hpx, Workload: wl(backend.OpSort, 1<<16), Threads: 32, Alloc: allocsim.FirstTouch})
	if !r.Parallel {
		t.Error("HPX sort at 2^16 should be parallel")
	}
}

// TestCountersMatchTable3 pins the modeled instruction counts against the
// paper's Table 3 (for_each, k_it=1, 100 calls of 2^30 on Mach A).
func TestCountersMatchTable3(t *testing.T) {
	a := machine.MachA()
	want := map[string]float64{ // instructions per element
		"GCC-TBB": 16.0, "GCC-GNU": 22.4, "GCC-HPX": 35.7,
		"ICC-TBB": 14.4, "NVC-OMP": 20.9,
	}
	n := int64(1) << 30
	for _, b := range backend.Parallel() {
		r := Run(Config{Machine: a, Backend: b, Workload: wl(backend.OpForEach, n), Threads: 32, Alloc: allocsim.FirstTouch})
		got := r.Counters.Instructions / float64(n)
		if got < want[b.ID]*0.93 || got > want[b.ID]*1.07 {
			t.Errorf("%s: %.2f instr/elem, want ~%.1f (Table 3)", b.ID, got, want[b.ID])
		}
		// FP scalar: exactly one flop per element for every backend
		// (Table 3: 107G per 100 calls).
		if fp := r.Counters.FPScalar / float64(n); fp < 0.99 || fp > 1.01 {
			t.Errorf("%s: %.2f scalar flops/elem, want 1", b.ID, fp)
		}
	}
}

// TestCountersMatchTable4 pins reduce's counters: ICC and HPX vectorize
// (FP256), the others are scalar (Table 4).
func TestCountersMatchTable4(t *testing.T) {
	a := machine.MachA()
	n := int64(1) << 30
	for _, b := range backend.Parallel() {
		r := Run(Config{Machine: a, Backend: b, Workload: wl(backend.OpReduce, n), Threads: 32, Alloc: allocsim.FirstTouch})
		vectorized := b.ID == "ICC-TBB" || b.ID == "GCC-HPX"
		if vectorized {
			if r.Counters.FP256 == 0 || r.Counters.FPScalar > r.Counters.FP256 {
				t.Errorf("%s: expected 256-bit packed reduction (Table 4)", b.ID)
			}
		} else if r.Counters.FP256 != 0 {
			t.Errorf("%s: unexpected vectorization", b.ID)
		}
	}
	// HPX executes by far the most instructions (Table 4: 1.74T vs
	// 107-295G).
	hpx := Run(Config{Machine: a, Backend: backend.GCCHPX(), Workload: wl(backend.OpReduce, n), Threads: 32, Alloc: allocsim.FirstTouch})
	tbb := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(backend.OpReduce, n), Threads: 32, Alloc: allocsim.FirstTouch})
	if hpx.Counters.Instructions < 5*tbb.Counters.Instructions {
		t.Errorf("HPX should execute >5x TBB's instructions (Table 4: ~9x)")
	}
}

// TestAllocatorEffectsFig1 pins Figure 1's shape: first-touch helps
// for_each (k_it=1) and reduce substantially, is neutral for sort and
// for_each k_it=1000, and hurts find and inclusive_scan.
func TestAllocatorEffectsFig1(t *testing.T) {
	a := machine.MachA()
	n := int64(1) << 30
	gain := func(b *backend.Backend, op backend.Op, kit int) float64 {
		w := skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: kit, HitFrac: 0.41}
		def := avgSeconds(Config{Machine: a, Backend: b, Workload: w, Threads: 32, Alloc: allocsim.Default})
		ft := avgSeconds(Config{Machine: a, Backend: b, Workload: w, Threads: 32, Alloc: allocsim.FirstTouch})
		return def/ft - 1 // >0: first-touch faster
	}
	tbb := backend.GCCTBB()
	if g := gain(tbb, backend.OpForEach, 1); g < 0.2 {
		t.Errorf("for_each kit=1 first-touch gain %v, want >20%% (paper: up to 63%%)", g)
	}
	if g := gain(tbb, backend.OpReduce, 1); g < 0.2 {
		t.Errorf("reduce first-touch gain %v, want >20%% (paper: up to 50%%)", g)
	}
	if g := gain(tbb, backend.OpForEach, 1000); g > 0.1 || g < -0.1 {
		t.Errorf("for_each kit=1000 gain %v, want ~0", g)
	}
	if g := gain(tbb, backend.OpFind, 1); g > -0.02 {
		t.Errorf("find first-touch gain %v, want negative (paper: up to -24%%)", g)
	}
	if g := gain(backend.NVCOMP(), backend.OpInclusiveScan, 1); g > -0.02 {
		t.Errorf("NVC scan first-touch gain %v, want negative (paper: -19%%)", g)
	}
}

// TestHPXUsesOwnAllocator: the HPX backend ignores the Alloc setting
// (Section 5.1: HPX has its own memory allocation strategy).
func TestHPXUsesOwnAllocator(t *testing.T) {
	a := machine.MachA()
	hpx := backend.GCCHPX()
	d := Run(Config{Machine: a, Backend: hpx, Workload: wl(backend.OpReduce, 1<<28), Threads: 32, Alloc: allocsim.Default})
	f := Run(Config{Machine: a, Backend: hpx, Workload: wl(backend.OpReduce, 1<<28), Threads: 32, Alloc: allocsim.FirstTouch})
	if d.Seconds != f.Seconds {
		t.Errorf("HPX timing depends on allocator setting: %v vs %v", d.Seconds, f.Seconds)
	}
}

// TestSimInvariants: basic sanity over the whole config space.
func TestSimInvariants(t *testing.T) {
	a := machine.MachA()
	for _, b := range backend.All() {
		if b.IsGPU() {
			continue
		}
		for _, op := range backend.Ops() {
			var prev float64
			for _, threads := range []int{1, 2, 4, 8, 16, 32} {
				r := Run(Config{Machine: a, Backend: b, Workload: wl(op, 1<<24), Threads: threads, Alloc: allocsim.FirstTouch})
				if r.Seconds <= 0 {
					t.Fatalf("%s/%s t=%d: non-positive time", b.ID, op, threads)
				}
				if r.Counters.Instructions <= 0 {
					t.Fatalf("%s/%s t=%d: no instructions", b.ID, op, threads)
				}
				// Speedup over the same backend's 1-thread run must not
				// exceed the thread count — except sort, where the
				// 1-thread baseline is a different algorithm (introsort
				// vs mergesort) and genuine algorithmic superlinearity
				// exists (the paper's GNU sort reaches 66x on 128
				// cores).
				if threads == 1 {
					prev = r.Seconds
				} else if op != backend.OpSort && prev/r.Seconds > float64(threads)*1.12 {
					// 12% slack: backends whose parallel code moves
					// slightly less DRAM traffic than their sequential
					// fallback (MemFactor < 1) are mildly superlinear.
					t.Fatalf("%s/%s: superlinear self-speedup %v at %d threads", b.ID, op, prev/r.Seconds, threads)
				}
			}
		}
	}
}

// TestSeqBackendSingleCore: the sequential baseline never parallelizes.
func TestSeqBackendSingleCore(t *testing.T) {
	a := machine.MachA()
	for _, op := range backend.Ops() {
		r := Run(Config{Machine: a, Backend: backend.GCCSeq(), Workload: wl(op, 1<<22), Threads: 32, Alloc: allocsim.Default})
		if r.Parallel {
			t.Errorf("%s: GCC-SEQ ran in parallel", op)
		}
	}
}

// TestZeroSizeWorkload returns zero time without panicking.
func TestZeroSizeWorkload(t *testing.T) {
	a := machine.MachA()
	r := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(backend.OpReduce, 0), Threads: 32})
	if r.Seconds != 0 {
		t.Fatalf("zero-size time %v", r.Seconds)
	}
}

// TestDeterminism: the simulator is a pure function of its config.
func TestDeterminism(t *testing.T) {
	a := machine.MachC()
	cfg := Config{Machine: a, Backend: backend.GCCHPX(), Workload: wl(backend.OpSort, 1<<26), Threads: 128, Alloc: allocsim.FirstTouch}
	r1 := Run(cfg)
	r2 := Run(cfg)
	if r1.Seconds != r2.Seconds || r1.Counters != r2.Counters {
		t.Fatal("simulation is not deterministic")
	}
}

// TestCacheLevelsAffectTiming: a cache-resident problem runs much faster
// per element than a DRAM-resident one for a memory-bound op.
func TestCacheLevelsAffectTiming(t *testing.T) {
	a := machine.MachA()
	small := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(backend.OpReduce, 1<<21), Threads: 32, Alloc: allocsim.FirstTouch})
	big := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(backend.OpReduce, 1<<30), Threads: 32, Alloc: allocsim.FirstTouch})
	if small.Level == memsys.LevelDRAM {
		t.Fatalf("2^21 doubles should be cache-resident, got %v", small.Level)
	}
	if big.Level != memsys.LevelDRAM {
		t.Fatalf("2^30 doubles should be DRAM, got %v", big.Level)
	}
	perElemSmall := small.Seconds / float64(1<<21)
	perElemBig := big.Seconds / float64(1<<30)
	if perElemBig < perElemSmall {
		t.Errorf("DRAM per-element time (%v) should exceed cache-resident (%v)", perElemBig, perElemSmall)
	}
}

// TestTraceCoversSchedule: the trace accounts for every task, spans stay
// within the invocation, and cores never run two tasks at once.
func TestTraceCoversSchedule(t *testing.T) {
	a := machine.MachA()
	r := Run(Config{
		Machine: a, Backend: backend.GCCTBB(),
		Workload: wl(backend.OpSort, 1<<22),
		Threads:  8, Alloc: allocsim.FirstTouch,
		Trace: true,
	})
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	perCore := map[int][]TaskSpan{}
	for _, s := range r.Trace {
		if s.Start < 0 || s.End > r.Seconds*1.0001 || s.End < s.Start {
			t.Fatalf("span out of bounds: %+v (total %v)", s, r.Seconds)
		}
		if s.Core < 0 || s.Core >= 8 {
			t.Fatalf("bad core: %+v", s)
		}
		perCore[s.Core] = append(perCore[s.Core], s)
	}
	for c, spans := range perCore {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				x, y := spans[i], spans[j]
				if x.Start < y.End-1e-12 && y.Start < x.End-1e-12 {
					t.Fatalf("core %d runs two tasks at once: %+v %+v", c, x, y)
				}
			}
		}
	}
	// Sort on 8 threads: leaf phase + 3 merge rounds, 8 tasks each.
	if len(r.Trace) != 32 {
		t.Fatalf("trace has %d spans, want 32", len(r.Trace))
	}
	// No trace unless requested.
	r2 := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(backend.OpSort, 1<<22), Threads: 8, Alloc: allocsim.FirstTouch})
	if r2.Trace != nil {
		t.Fatal("trace recorded without Trace flag")
	}
}

// TestTraceMarksFindTruncation: early-exit cancellation marks the losers.
func TestTraceMarksFindTruncation(t *testing.T) {
	a := machine.MachA()
	w := wl(backend.OpFind, 1<<22)
	w.HitFrac = 0.6
	r := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: w, Threads: 8, Alloc: allocsim.FirstTouch, Trace: true})
	truncated := 0
	for _, s := range r.Trace {
		if s.Truncated {
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatal("no truncated spans in an early-exit find")
	}
}

// TestExtensionOpsSimulate: the four extension operations produce sane
// results across backends — memory-bound ceilings for the streaming ops,
// reduce-like behaviour for the read-only reductions.
func TestExtensionOpsSimulate(t *testing.T) {
	a := machine.MachA()
	for _, op := range backend.ExtOps() {
		seq := Run(Config{Machine: a, Backend: backend.GCCSeq(), Workload: wl(op, 1<<28), Threads: 1, Alloc: allocsim.FirstTouch})
		if seq.Seconds <= 0 || seq.Parallel {
			t.Fatalf("%s: bad sequential run", op)
		}
		for _, b := range backend.Parallel() {
			r := Run(Config{Machine: a, Backend: b, Workload: wl(op, 1<<28), Threads: 32, Alloc: allocsim.FirstTouch})
			s := seq.Seconds / r.Seconds
			if !r.Parallel {
				t.Fatalf("%s/%s: not parallel", b.ID, op)
			}
			if s < 1.5 || s > 32*1.2 {
				t.Errorf("%s/%s: speedup %v implausible", b.ID, op, s)
			}
		}
	}
	// copy and transform are pure streaming: their speedup cannot exceed
	// the STREAM ratio by much.
	for _, op := range []backend.Op{backend.OpCopy, backend.OpTransform} {
		seq := Run(Config{Machine: a, Backend: backend.GCCSeq(), Workload: wl(op, 1<<28), Threads: 1, Alloc: allocsim.FirstTouch})
		r := Run(Config{Machine: a, Backend: backend.GCCTBB(), Workload: wl(op, 1<<28), Threads: 32, Alloc: allocsim.FirstTouch})
		if s := seq.Seconds / r.Seconds; s > a.BWAllCores/a.BW1Core*1.25 {
			t.Errorf("%s: streaming speedup %v exceeds STREAM ratio", op, s)
		}
	}
}
