package simexec

import (
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/trace"
)

func tracedConfig(threads int, tr *trace.Tracer) Config {
	return Config{
		Machine:  machine.MachA(),
		Backend:  backend.GCCTBB(),
		Workload: wl(backend.OpForEach, 1<<22),
		Threads:  threads,
		Alloc:    allocsim.FirstTouch,
		Tracer:   tr,
	}
}

func TestSimTraceChunkSpansCoverElements(t *testing.T) {
	const threads = 8
	tr := trace.NewVirtual(threads, trace.DefaultCapacity)
	res := Run(tracedConfig(threads, tr))
	if res.Seconds <= 0 {
		t.Fatal("simulated run took no time")
	}
	// Chunk spans must partition [0, N): each element range appears exactly
	// once across the core tracks, with lo < hi.
	covered := int64(0)
	chunks := 0
	for c := 0; c < threads; c++ {
		for _, e := range tr.Events(c) {
			if e.Kind != trace.KindChunk {
				continue
			}
			chunks++
			if e.A0 < 0 || e.A1 <= e.A0 {
				t.Fatalf("chunk span has bad element range [%d, %d)", e.A0, e.A1)
			}
			if e.End < e.Start {
				t.Fatalf("chunk span runs backwards: %+v", e)
			}
			covered += e.A1 - e.A0
		}
	}
	if chunks == 0 {
		t.Fatal("no chunk spans recorded")
	}
	if covered != 1<<22 {
		t.Fatalf("chunk spans cover %d elements, want %d", covered, 1<<22)
	}
	// Spans are stamped in virtual time: the last end must agree with the
	// simulated duration (the clock cursor advanced past it).
	if got, want := tr.Now(), int64(res.Seconds*1e9); got != want {
		t.Fatalf("virtual cursor at %d ns after run, want %d", got, want)
	}
}

func TestSimTraceStealsMatchCounters(t *testing.T) {
	const threads = 8
	tr := trace.NewVirtual(threads, trace.DefaultCapacity)
	res := Run(tracedConfig(threads, tr))
	var local, remote, wakeups int
	for c := 0; c < threads; c++ {
		for _, e := range tr.Events(c) {
			switch e.Kind {
			case trace.KindSteal:
				if e.A1 == trace.TierRemote {
					remote++
				} else {
					local++
				}
				if e.A0 < -1 || e.A0 >= threads {
					t.Fatalf("steal victim %d out of range", e.A0)
				}
			case trace.KindWakeup:
				wakeups++
			}
		}
	}
	if float64(local) != res.Counters.LocalSteals || float64(remote) != res.Counters.RemoteSteals {
		t.Fatalf("trace steals local=%d remote=%d, counters local=%v remote=%v",
			local, remote, res.Counters.LocalSteals, res.Counters.RemoteSteals)
	}
	if float64(wakeups) != res.Counters.Wakeups {
		t.Fatalf("trace wakeups %d, counters %v", wakeups, res.Counters.Wakeups)
	}
}

func TestSimTraceInvocationsStackOnOneTimeline(t *testing.T) {
	const threads = 4
	tr := trace.NewVirtual(threads, trace.DefaultCapacity)
	cfg := tracedConfig(threads, tr)
	r1 := Run(cfg)
	mark := tr.Now()
	r2 := Run(cfg)
	if got, want := tr.Now(), int64(r1.Seconds*1e9)+int64(r2.Seconds*1e9); got != want {
		t.Fatalf("cursor %d after two runs, want %d", got, want)
	}
	// Every event of the second run must start at or after the first run's
	// end: the invocations do not overlap on the timeline.
	secondRun := 0
	for c := 0; c < threads; c++ {
		for _, e := range tr.Events(c) {
			if e.Start >= mark {
				secondRun++
			}
		}
	}
	if secondRun == 0 {
		t.Fatal("second invocation left no events after the first run's end")
	}
}

func TestSimTraceRejectsWrongTracer(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("wall tracer", func() {
		Run(tracedConfig(4, trace.New(8, 64)))
	})
	mustPanic("too few tracks", func() {
		Run(tracedConfig(8, trace.NewVirtual(2, 64)))
	})
}
