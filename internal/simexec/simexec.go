// Package simexec is the discrete-event performance simulator: it executes
// an algorithm skeleton (package skeleton) on a simulated machine (package
// machine) under a backend's scheduling strategy and cost sheet (package
// backend), producing virtual wall time and modeled hardware counters.
//
// The engine advances an epoch-based processor-sharing simulation: between
// events (task starts and completions) the set of running tasks is
// constant, each task's progress rate is min(compute rate, share of the
// memory system as allocated by memsys.Solve), and time advances to the
// next event. Early-exit phases (find) end when the task containing the
// hit completes, truncating the other tasks mid-flight — exactly the
// cancellation behaviour whose overhead the paper measures.
package simexec

import (
	"fmt"
	"math"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/counters"
	"pstlbench/internal/machine"
	"pstlbench/internal/memsys"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/trace"
)

// Config describes one simulated benchmark invocation.
type Config struct {
	Machine  *machine.Machine
	Backend  *backend.Backend
	Workload skeleton.Workload
	// Threads is the number of cores used (OMP_NUM_THREADS /
	// --hpx:threads in the paper's setup).
	Threads int
	// Alloc selects the allocation strategy. The HPX backend always uses
	// its own (first-touch) allocator, as in the paper.
	Alloc allocsim.Strategy

	// GPU options (NVC-CUDA backend only).
	// TransferBack forces a device-to-host transfer after each call
	// (Figures 8 and 9a).
	TransferBack bool
	// DataResident marks the input as already present in device memory
	// from a previous chained call (Figure 9b).
	DataResident bool

	// Trace records the task schedule (which core ran which task when)
	// into Result.Trace — the raw material for Gantt-style schedule
	// inspection.
	Trace bool

	// Tracer, when non-nil, receives the schedule as typed events in
	// virtual time: one track per simulated core (chunk spans carrying
	// element ranges, steal/wakeup/park instants), stamped relative to the
	// tracer's cursor so successive invocations stack end-to-end on one
	// timeline. Must be a virtual-time tracer with at least Threads tracks.
	Tracer *trace.Tracer
}

// TaskSpan is one scheduled task execution in a trace.
type TaskSpan struct {
	Phase, Task, Core int
	// Start and End are virtual times relative to the invocation start.
	Start, End float64
	// Truncated marks tasks cancelled by an early-exit phase end.
	Truncated bool
}

// Result is the outcome of one simulated invocation.
type Result struct {
	// Seconds is the virtual wall time of one call.
	Seconds float64
	// Counters are the modeled hardware counters of one call.
	Counters counters.Set
	// Level is the memory level that served the working set.
	Level memsys.Level
	// Parallel reports whether the backend actually ran in parallel
	// (false for sequential fallbacks).
	Parallel bool
	// Trace holds the task schedule when Config.Trace is set.
	Trace []TaskSpan
}

// epsElems is the completion tolerance of the epoch loop.
const epsElems = 1e-6

// Run simulates one invocation and returns its timing and counters.
func Run(cfg Config) Result {
	if cfg.Machine == nil || cfg.Backend == nil {
		panic("simexec: nil machine or backend")
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Threads > cfg.Machine.Cores {
		cfg.Threads = cfg.Machine.Cores
	}
	if cfg.Backend.IsGPU() {
		return runGPU(cfg)
	}
	if cfg.Workload.N == 0 {
		return Result{}
	}

	phases, parallel := skeleton.Build(cfg.Workload, cfg.Backend, cfg.Threads, cfg.Machine)
	return runPhaseList(cfg, phases, workingSet(cfg.Workload), parallel)
}

// RunPhases simulates an explicit phase list instead of deriving one from
// the workload's op — the entry the fused-pipeline model uses, where one
// invocation's phases (a staged or fused chain from skeleton.
// StagedChainPhases / FusedChainPhases) are not any single backend.Op.
// wsBytes is the repeatedly-touched working set that picks the serving
// memory level; parallel selects cfg.Threads cores versus one. The
// workload's Op only selects the backend traits (overhead sheet) applied
// to every phase.
func RunPhases(cfg Config, phases []skeleton.Phase, wsBytes int64, parallel bool) Result {
	if cfg.Machine == nil || cfg.Backend == nil {
		panic("simexec: nil machine or backend")
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Threads > cfg.Machine.Cores {
		cfg.Threads = cfg.Machine.Cores
	}
	if len(phases) == 0 {
		return Result{}
	}
	return runPhaseList(cfg, phases, wsBytes, parallel)
}

// runPhaseList is the shared engine body: memory level, page placement,
// and the phase loop.
func runPhaseList(cfg Config, phases []skeleton.Phase, ws int64, parallel bool) Result {
	tr := cfg.Backend.Traits(cfg.Workload.Op)

	coresUsed := cfg.Threads
	if !parallel {
		coresUsed = 1
	}
	level := memsys.CacheLevel(cfg.Machine, ws, coresUsed)

	alloc := cfg.Alloc
	if cfg.Backend.Runtime == "HPX" {
		alloc = allocsim.FirstTouch // HPX brings its own NUMA allocator
	} else if alloc == allocsim.Default && tr.DefaultAllocDistributed {
		// The op's setup code (shuffling, parallel generation) already
		// faulted the pages in parallel: the default allocator leaves
		// them distributed, minus the custom allocator's exact
		// chunk-to-thread alignment (and minus its penalty cases).
		alloc = allocsim.FirstTouch
	}
	placement := allocsim.Placement(cfg.Machine, cfg.Threads, alloc)

	st := newSimTrace(cfg.Tracer, cfg.Threads)

	var total float64
	var ctr counters.Set
	var spans []TaskSpan
	for pi, ph := range phases {
		var sink *[]TaskSpan
		if cfg.Trace {
			sink = &spans
		}
		t := runPhase(cfg, ph, tr, parallel, level, placement, alloc, &ctr, pi, total, sink, st)
		total += t
	}
	ctr.Seconds = total
	// Advance the shared virtual clock past this invocation so the next
	// simulated call starts where this one ended on the same timeline.
	if st != nil {
		st.tr.Advance(int64(total * 1e9))
	}
	return Result{Seconds: total, Counters: ctr, Level: level, Parallel: parallel, Trace: spans}
}

// simTrace adapts the phase simulation to a virtual-time tracer: it fixes
// the invocation's origin at the tracer's current cursor and converts
// phase-relative seconds into absolute virtual nanoseconds. A nil *simTrace
// disables every emission.
type simTrace struct {
	tr   *trace.Tracer
	base int64 // cursor at invocation start, ns
}

func newSimTrace(tr *trace.Tracer, threads int) *simTrace {
	if tr == nil {
		return nil
	}
	if !tr.Virtual() {
		panic("simexec: Config.Tracer must be a virtual-time tracer (trace.NewVirtual)")
	}
	if tr.Tracks() < threads {
		panic(fmt.Sprintf("simexec: tracer has %d tracks, need >= %d (one per core)", tr.Tracks(), threads))
	}
	return &simTrace{tr: tr, base: tr.Now()}
}

// at converts an invocation-relative time in seconds to virtual ns.
func (st *simTrace) at(sec float64) int64 { return st.base + int64(sec*1e9) }

func (st *simTrace) buf(core int) *trace.Buf {
	if st == nil {
		return nil
	}
	return st.tr.Buf(core)
}

// workingSet returns the bytes the benchmark loop touches repeatedly.
func workingSet(w skeleton.Workload) int64 {
	ws := w.N * int64(w.ElemBytes)
	switch w.Op {
	case backend.OpInclusiveScan, backend.OpSort, backend.OpTransform, backend.OpCopy:
		// These stream a separate output range (or a merge buffer).
		return 2 * ws
	default:
		return ws
	}
}

// runTask is the mutable state of one task during a phase simulation.
type runTask struct {
	remaining float64 // elements left
	startAt   float64 // when compute begins (after spawn costs)
	core      int
	idx       int
	running   bool
	done      bool

	effInstr   float64   // instructions per element after SIMD
	flops      float64   // FP ops per element
	bytes      float64   // memory traffic per element
	lanes      int       // SIMD lanes applied (for FP counter attribution)
	traffic    []float64 // NUMA distribution of its traffic
	cpuRate    float64   // elements/s when not memory limited
	cpuRateNow float64   // achieved rate in the current epoch
	earlyExit  bool
}

// runPhase simulates one phase and returns its duration, accumulating
// counters into ctr.
func runPhase(cfg Config, ph skeleton.Phase, tr backend.OpTraits, parallel bool,
	level memsys.Level, placement memsys.Placement, alloc allocsim.Strategy,
	ctr *counters.Set, phaseIdx int, phaseOffset float64, sink *[]TaskSpan,
	st *simTrace) float64 {

	m := cfg.Machine
	b := cfg.Backend
	threads := cfg.Threads
	if !parallel {
		threads = 1
	}

	// Effective per-element instruction cost: the backend's overhead is
	// scalar; the intrinsic work may vectorize.
	lanes := tr.SIMDLanes
	if lanes < 1 {
		lanes = 1
	}
	ipc := m.IPC
	freq := m.FreqGHz
	if !parallel {
		if b.SeqIPCFactor > 0 {
			ipc *= b.SeqIPCFactor
		}
		freq = m.SeqFreqGHz() // single-threaded runs boost
	}
	scalarRate := freq * 1e9 * ipc
	// The backend's scheduling/abstraction instructions retire at their
	// own rate: IPCFactor > 1 models overhead code that pipelines well
	// (independent bookkeeping), < 1 models serializing abstractions
	// (HPX's future machinery). Counters report raw instruction counts;
	// only the *time* cost of the overhead is scaled.
	overheadIPC := tr.IPCFactor
	if overheadIPC <= 0 {
		overheadIPC = 1
	}
	// Backend overhead applies to parallel execution and to the plain
	// loop of a backend that has no parallel implementation of the op
	// (GCC-SEQ's tighter codegen is a negative overhead). A sequential
	// fallback below the runtime's threshold is the plain loop: no
	// overhead.
	applyOverhead := parallel || !tr.ParallelImpl

	memFactor := tr.MemFactor
	if memFactor <= 0 {
		memFactor = 1
	}
	if !parallel && tr.ParallelImpl {
		// Below-threshold fallback runs the plain sequential loop, whose
		// traffic does not carry the parallel implementation's extra
		// passes.
		memFactor = 1
	}

	// Element prefix over the phase's tasks: task i covers elements
	// [elemLo[i], elemLo[i+1]) of the phase's iteration space — the lo/hi
	// annotation its chunk spans carry in the trace.
	var elemLo []int64
	if st != nil {
		elemLo = make([]int64, len(ph.Tasks)+1)
		for i, t := range ph.Tasks {
			elemLo[i+1] = elemLo[i] + int64(math.Round(t.Elems))
		}
	}

	tasks := make([]*runTask, len(ph.Tasks))
	for i, t := range ph.Tasks {
		intrinsic := t.InstrPerElem
		l := 1
		if t.Vectorizable && lanes > 1 {
			intrinsic /= float64(lanes)
			l = lanes
		}
		eff, costInstr := intrinsic, intrinsic
		if applyOverhead {
			eff += tr.InstrOverheadPerElem
			costInstr += tr.InstrOverheadPerElem / overheadIPC
		}
		if eff <= 0.5 {
			eff = 0.5
		}
		if costInstr <= 0.5 {
			costInstr = 0.5
		}
		rt := &runTask{
			idx:       i,
			remaining: t.Elems,
			effInstr:  eff,
			flops:     t.FlopsPerElem,
			bytes:     t.BytesPerElem * memFactor,
			lanes:     l,
			cpuRate:   scalarRate / costInstr,
			earlyExit: i == ph.EarlyExit,
		}
		tasks[i] = rt
	}

	forkCost := 0.0
	if parallel && len(tasks) > 1 {
		forkCost = b.ForkBase + b.ForkPerThread*float64(threads)
	}

	// Scheduling state.
	coreFreeAt := make([]float64, threads)
	coreTask := make([]*runTask, threads)
	queueAt := 0.0
	next := 0 // next unassigned task (FIFO in chunk order)

	// Home bands: under the band partition, core c owns the contiguous
	// chunk range [c*tpc, (c+1)*tpc). homeCore classifies dispatches as
	// local or remote steals; under NUMASteal it also drives the
	// locality-ordered victim scan and the traffic attribution.
	tpc := (len(tasks) + threads - 1) / threads
	homeCore := func(ti int) int { return ti / tpc }
	numaSteal := b.NUMASteal && b.Strategy == backend.StrategyStealing &&
		parallel && len(tasks) > 1
	var victimOrder [][]int
	if numaSteal {
		victimOrder = stealVictimOrder(m, threads)
	}

	// assign hands pending tasks to free cores according to the
	// backend's strategy. Static strategy binds task i to core i mod P;
	// the greedy strategies hand the next task to any free core. Alongside
	// the schedule itself, assign models the scheduler counters the native
	// pools report (Pool.Stats): every dispatch is a wakeup, a dispatch
	// sourced outside the core's own queues is a steal, and a free core
	// that finds nothing assignable records an empty spin.
	assign := func(now float64) {
		for c := 0; c < threads && next < len(tasks); c++ {
			if coreTask[c] != nil || coreFreeAt[c] > now {
				continue
			}
			var ti int
			switch b.Strategy {
			case backend.StrategyStatic:
				// Core c owns tasks c, c+P, c+2P, ... Find its next.
				ti = -1
				for i := next; i < len(tasks); i++ {
					if tasks[i].done || tasks[i].running {
						continue
					}
					if i%threads == c {
						ti = i
						break
					}
				}
				if ti < 0 {
					ctr.EmptySpins++
					continue
				}
			default:
				ti = -1
				if numaSteal {
					// Locality-ordered scan: the core drains its own band,
					// then same-node bands, then same-socket, then remote —
					// the node-ordered victim scan the native pool runs
					// under a topology.
					for _, vc := range victimOrder[c] {
						blo, bhi := vc*tpc, (vc+1)*tpc
						if bhi > len(tasks) {
							bhi = len(tasks)
						}
						for i := blo; i < bhi; i++ {
							if !tasks[i].done && !tasks[i].running {
								ti = i
								break
							}
						}
						if ti >= 0 {
							break
						}
					}
				} else {
					for i := next; i < len(tasks); i++ {
						if !tasks[i].done && !tasks[i].running {
							ti = i
							break
						}
					}
				}
				if ti < 0 {
					ctr.EmptySpins++
					return
				}
				// Mirror what the native pools count as a steal. A
				// central-queue worker acquires every task from the shared
				// injector, so each dispatch is a steal (local: a shared
				// queue has no home node). A band-stealing worker owns the
				// initial block partition of the chunk space; a dispatch
				// outside the core's own block means the task migrated off
				// its home, and crossing NUMA nodes makes it a remote
				// steal.
				if b.Strategy == backend.StrategyQueue {
					ctr.LocalSteals++
					if tb := st.buf(c); tb != nil {
						tb.Instant(trace.KindSteal, st.at(phaseOffset+forkCost+now), -1, trace.TierLocal)
					}
				} else if hc := homeCore(ti); hc != c {
					tier := int64(trace.TierLocal)
					if m.NodeOf(hc) != m.NodeOf(c) {
						ctr.RemoteSteals++
						tier = trace.TierRemote
					} else {
						ctr.LocalSteals++
					}
					if tb := st.buf(c); tb != nil {
						tb.Instant(trace.KindSteal, st.at(phaseOffset+forkCost+now), int64(hc), tier)
					}
				}
			}
			ctr.Wakeups++
			if tb := st.buf(c); tb != nil {
				tb.Instant(trace.KindWakeup, st.at(phaseOffset+forkCost+now), int64(c), 0)
			}
			t := tasks[ti]
			start := now + b.TaskCost
			if b.Strategy == backend.StrategyQueue {
				if queueAt > now {
					start = queueAt + b.TaskCost
				}
				queueAt = math.Max(queueAt, now) + b.QueuePop
			}
			t.core = c
			t.startAt = start
			t.running = true
			coreTask[c] = t
			if len(tasks) == 1 {
				// A whole-array task reads every page wherever it
				// lives; affinity is meaningless for it.
				t.traffic = placement.NodeFrac
			} else if numaSteal {
				// Execution follows data: with locality-ordered stealing a
				// chunk stays on the node that first-touched its pages
				// unless it was stolen across nodes, so its full traffic
				// targets the home node — local when it runs there, fabric
				// traffic only for the (now rare) remote steals. The
				// AffinityMatch calibration models uniform random
				// stealing's decorrelation, which this policy removes.
				t.traffic = allocsim.TaskTraffic(placement, m.NodeOf(homeCore(ti)), 1, alloc)
			} else {
				t.traffic = allocsim.TaskTraffic(placement, m.NodeOf(c), tr.AffinityMatch, alloc)
			}
			for ti == next && next < len(tasks) && (tasks[next].running || tasks[next].done) {
				next++
			}
		}
	}

	now := 0.0
	assign(now)

	remainingTasks := len(tasks)
	guard := 0
	for remainingTasks > 0 {
		guard++
		if guard > 16*len(tasks)+1024 {
			panic(fmt.Sprintf("simexec: phase did not converge (%s/%s)", b.ID, cfg.Workload.Op))
		}
		// Gather computing tasks.
		var streams []memsys.Stream
		var active []*runTask
		for _, t := range tasks {
			if t.running && t.startAt <= now+1e-15 && t.remaining > epsElems {
				active = append(active, t)
				streams = append(streams, memsys.Stream{
					Core:     t.core,
					Demand:   t.cpuRate * t.bytes,
					NodeFrac: t.traffic,
				})
			}
		}

		// Next scheduled start among assigned-but-not-yet-computing.
		nextStart := math.Inf(1)
		for _, t := range tasks {
			if t.running && t.startAt > now && t.startAt < nextStart {
				nextStart = t.startAt
			}
		}

		if len(active) == 0 {
			if math.IsInf(nextStart, 1) {
				panic("simexec: no active tasks and no scheduled starts")
			}
			now = nextStart
			assign(now)
			continue
		}

		rates := memsys.Solve(m, level, streams)
		tNext := nextStart
		var first *runTask // task defining the next completion event
		for i, t := range active {
			r := t.cpuRate
			if t.bytes > 0 && rates[i] < streams[i].Demand {
				r = rates[i] / t.bytes
			}
			if r <= 0 {
				r = 1 // defensive: never stall completely
			}
			t.cpuRateNow = r
			if fin := now + t.remaining/r; fin < tNext {
				tNext = fin
				first = t
			}
		}
		dt := tNext - now
		if dt < 0 {
			dt = 0
		}

		// Advance and accumulate counters. The task defining the event is
		// forced to complete even if floating-point underflow made its
		// time step vanish (now + remaining/rate == now for tiny work).
		phaseEnded := false
		for _, t := range active {
			adv := t.cpuRateNow * dt
			if adv > t.remaining || t == first {
				adv = t.remaining
			}
			t.remaining -= adv
			accumulate(ctr, adv, t, level)
			if t.remaining <= epsElems {
				t.remaining = 0
				t.done = true
				t.running = false
				coreTask[t.core] = nil
				coreFreeAt[t.core] = tNext
				remainingTasks--
				if next >= len(tasks) && remainingTasks > 0 {
					// Nothing left to hand out: the core parks for the
					// rest of the phase while stragglers finish.
					ctr.Parks++
					if tb := st.buf(t.core); tb != nil {
						tb.Instant(trace.KindPark, st.at(phaseOffset+forkCost+tNext), 0, 0)
					}
				}
				if sink != nil {
					*sink = append(*sink, TaskSpan{
						Phase: phaseIdx, Task: t.idx, Core: t.core,
						Start: phaseOffset + forkCost + t.startAt,
						End:   phaseOffset + forkCost + tNext,
					})
				}
				if tb := st.buf(t.core); tb != nil {
					tb.Span(trace.KindChunk,
						st.at(phaseOffset+forkCost+t.startAt),
						st.at(phaseOffset+forkCost+tNext),
						elemLo[t.idx], elemLo[t.idx+1])
				}
				if t.earlyExit {
					phaseEnded = true
				}
			}
		}
		now = tNext
		if phaseEnded {
			// Cancellation: remaining tasks stop here; their partial
			// work is already in the counters. Record the truncated
			// spans.
			for _, t := range tasks {
				if t.running && t.startAt <= now {
					if sink != nil {
						*sink = append(*sink, TaskSpan{
							Phase: phaseIdx, Task: t.idx, Core: t.core,
							Start:     phaseOffset + forkCost + t.startAt,
							End:       phaseOffset + forkCost + now,
							Truncated: true,
						})
					}
					if tb := st.buf(t.core); tb != nil {
						tb.Span(trace.KindChunk,
							st.at(phaseOffset+forkCost+t.startAt),
							st.at(phaseOffset+forkCost+now),
							elemLo[t.idx], elemLo[t.idx+1])
					}
				}
			}
			break
		}
		assign(now)
	}

	total := forkCost + now
	if cfg.Alloc == allocsim.FirstTouch && cfg.Backend.Runtime != "HPX" &&
		tr.FirstTouchPenalty > 1 && m.NUMANodes > 1 {
		// Documented calibration knob for Figure 1's negative cases:
		// the paper measures find/inclusive_scan losing up to 24 %/19 %
		// under the custom allocator without giving a mechanism.
		total *= tr.FirstTouchPenalty
	}
	if ph.SeqInstr > 0 {
		total += ph.SeqInstr / (m.FreqGHz * 1e9 * m.IPC)
		ctr.Instructions += ph.SeqInstr
		if level == memsys.LevelDRAM {
			ctr.DRAMBytes += ph.SeqBytes
		}
	}
	return total
}

// stealVictimOrder precomputes, for every core, the proximity-ordered core
// list its band scan follows under NUMASteal: itself first, then the other
// cores of its node, then its socket, then the rest — ascending within each
// tier so the simulation stays deterministic (the native pool randomizes
// within tiers instead).
func stealVictimOrder(m *machine.Machine, threads int) [][]int {
	order := make([][]int, threads)
	for c := 0; c < threads; c++ {
		node, sock := m.NodeOf(c), m.SocketOf(c)
		ord := make([]int, 0, threads)
		ord = append(ord, c)
		for _, tier := range [3]func(int) bool{
			func(v int) bool { return m.NodeOf(v) == node },
			func(v int) bool { return m.NodeOf(v) != node && m.SocketOf(v) == sock },
			func(v int) bool { return m.SocketOf(v) != sock },
		} {
			for v := 0; v < threads; v++ {
				if v != c && tier(v) {
					ord = append(ord, v)
				}
			}
		}
		order[c] = ord
	}
	return order
}

// accumulate adds the counter contribution of adv elements of task t.
func accumulate(ctr *counters.Set, adv float64, t *runTask, level memsys.Level) {
	ctr.Instructions += adv * t.effInstr
	switch t.lanes {
	case 4:
		ctr.FP256 += adv * t.flops / 4
	case 2:
		ctr.FP128 += adv * t.flops / 2
	default:
		ctr.FPScalar += adv * t.flops
	}
	if level == memsys.LevelDRAM {
		ctr.DRAMBytes += adv * t.bytes
	}
}
