package simexec

import (
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
)

// TestNUMAStealModel verifies the simulated plane responds to the
// --numa-steal policy the way the tentpole intends: on the 8-node Zen
// machine, uniform random stealing (off) migrates chunks across nodes and
// pays fabric traffic, while the locality-ordered scan (on) eliminates the
// remote steals and the remote traffic with them.
func TestNUMAStealModel(t *testing.T) {
	m := machine.MachB()
	run := func(on bool) Result {
		b := backend.GCCTBB()
		b.NUMASteal = on
		return Run(Config{
			Machine: m, Backend: b,
			Workload: wl(backend.OpForEach, 1<<26), // 512 MiB: DRAM-resident
			Threads:  m.Cores, Alloc: allocsim.FirstTouch,
		})
	}

	off := run(false)
	on := run(true)

	if off.Counters.RemoteSteals == 0 {
		t.Fatal("uniform stealing on Mach B recorded no remote steals")
	}
	if on.Counters.RemoteSteals >= off.Counters.RemoteSteals {
		t.Fatalf("NUMA steal order did not reduce remote steals: on=%v off=%v",
			on.Counters.RemoteSteals, off.Counters.RemoteSteals)
	}
	if on.Seconds >= off.Seconds {
		t.Fatalf("NUMA steal order did not help a DRAM-bound for_each: on=%vs off=%vs",
			on.Seconds, off.Seconds)
	}

	// The policy only changes scheduling and placement, not the work:
	// instruction counts match and the run stays deterministic.
	if on.Counters.Instructions != off.Counters.Instructions {
		t.Fatalf("instruction count changed with steal policy: on=%v off=%v",
			on.Counters.Instructions, off.Counters.Instructions)
	}
	if again := run(true); again.Seconds != on.Seconds {
		t.Fatalf("NUMASteal run not deterministic: %v vs %v", again.Seconds, on.Seconds)
	}

	// Static fork-join ignores the toggle entirely.
	g := backend.GCCGNU()
	g.NUMASteal = true
	gOn := Run(Config{Machine: m, Backend: g,
		Workload: wl(backend.OpForEach, 1<<26), Threads: m.Cores, Alloc: allocsim.FirstTouch})
	g2 := backend.GCCGNU()
	gOff := Run(Config{Machine: m, Backend: g2,
		Workload: wl(backend.OpForEach, 1<<26), Threads: m.Cores, Alloc: allocsim.FirstTouch})
	if gOn.Seconds != gOff.Seconds {
		t.Fatalf("static backend responded to NUMASteal: %v vs %v", gOn.Seconds, gOff.Seconds)
	}
}
