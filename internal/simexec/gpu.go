package simexec

import (
	"pstlbench/internal/counters"
	"pstlbench/internal/gpusim"
	"pstlbench/internal/memsys"
)

// runGPU dispatches an offload-backend invocation to the GPU model.
func runGPU(cfg Config) Result {
	br := gpusim.Run(cfg.Machine.GPU, cfg.Workload, gpusim.Options{
		TransferBack: cfg.TransferBack,
		DataResident: cfg.DataResident,
	})
	total := br.Total()
	return Result{
		Seconds:  total,
		Counters: counters.Set{Seconds: total},
		Level:    memsys.LevelDRAM,
		Parallel: true,
	}
}
