package simexec

import (
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
)

// TestSchedulerCountersModeled verifies the modeled scheduling statistics
// mirror each strategy's character: a greedy queue/stealing backend with a
// fine decomposition migrates tasks off their static home (steals), the
// static fork-join backend never does, and every parallel run dispatches
// tasks (wakeups).
func TestSchedulerCountersModeled(t *testing.T) {
	m := machine.MachA()
	run := func(b *backend.Backend) (s, w, p float64) {
		r := Run(Config{
			Machine: m, Backend: b,
			Workload: wl(backend.OpForEach, 1<<24),
			Threads:  16, Alloc: allocsim.FirstTouch,
		})
		return r.Counters.Steals(), r.Counters.Wakeups, r.Counters.Parks
	}

	sSteal, wSteal, _ := run(backend.GCCTBB())
	if wSteal == 0 {
		t.Fatal("TBB run recorded no task dispatches")
	}
	if sSteal == 0 {
		t.Errorf("TBB (work stealing) run recorded no steals")
	}

	sStatic, wStatic, _ := run(backend.GCCGNU())
	if wStatic == 0 {
		t.Fatal("GNU run recorded no task dispatches")
	}
	if sStatic != 0 {
		t.Errorf("static fork-join run recorded %v steals, want 0", sStatic)
	}

	sHPX, wHPX, _ := run(backend.GCCHPX())
	// Every central-queue dispatch comes off the shared injector, so the
	// modeled steal count equals the dispatch count.
	if wHPX == 0 || sHPX != wHPX {
		t.Errorf("HPX central-queue run: steals=%v wakeups=%v, want equal and > 0", sHPX, wHPX)
	}
	// The fine HPX decomposition dispatches far more tasks than the
	// coarser TBB one — the central-queue overhead axis of Fig. 3.
	if wHPX <= wSteal {
		t.Errorf("HPX dispatches (%v) not above TBB (%v)", wHPX, wSteal)
	}
}
