package flow

import (
	"math"
	"sort"

	"pstlbench/internal/core"
)

// AuditResult is the oracle's expectation for replaying a finite trace
// through a stream: exact event and window accounting plus the per-window
// checksums, computed by an independent sequential implementation of the
// windowing, watermark, and backpressure rules. The ext-stream experiment
// and the accounting tests replay the same trace through a live Stream
// and require equality.
type AuditResult struct {
	Accepted      int64
	Late          int64
	Paused        int64
	DroppedEvents int64
	Assigned      int64
	WindowsClosed int64 // including the final flush
	WindowsEmpty  int64
	PeakBuffered  int
	// WindowEvents and Checksums map window start (Unix ns) to the event
	// count and operator checksum of each closed NON-EMPTY window.
	WindowEvents map[int64]int
	Checksums    map[int64]float64
	// ChecksumTotal is the sum over Checksums — comparable to
	// StreamStats.Checksum when every window job completed.
	ChecksumTotal float64
}

// auditWin mirrors openWindow in the model.
type auditWin struct {
	start, end int64
	events     []Event
}

// Audit replays trace sequentially through the reference model of cfg's
// stream semantics and returns the exact expected accounting. The model
// is deliberately written from the rules, not shared with Stream: plain
// sorted-slice bookkeeping, sequential operator evaluation (zero
// core.Policy), no goroutines — so agreement is evidence the concurrent
// implementation enforces the same semantics.
func Audit(cfg StreamConfig, trace []Event) (AuditResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return AuditResult{}, err
	}
	res := AuditResult{
		WindowEvents: make(map[int64]int),
		Checksums:    make(map[int64]float64),
	}
	var wins []*auditWin // sorted by start
	buffered := 0
	maxTS := int64(math.MinInt64)
	seen := false
	size, slide := int64(cfg.Window.Size), int64(cfg.Window.Slide)

	watermark := func() int64 {
		if !seen {
			return math.MinInt64
		}
		return maxTS - int64(cfg.Window.Lateness)
	}
	closeReady := func(wm int64, flush bool) {
		for len(wins) > 0 {
			w := wins[0]
			if !flush && w.end > wm {
				return
			}
			wins = wins[1:]
			buffered -= len(w.events)
			res.WindowsClosed++
			if len(w.events) == 0 {
				res.WindowsEmpty++
				continue
			}
			res.WindowEvents[w.start] = len(w.events)
			sum := cfg.Op.Apply(core.Policy{}, w.events)
			res.Checksums[w.start] = sum
			res.ChecksumTotal += sum
		}
	}

	for _, ev := range trace {
		wm := watermark()
		// The event's windows, oldest first, skipping closed ones.
		var starts []int64
		first := floorDiv(ev.TS, slide) * slide
		for st := first; st > ev.TS-size; st -= slide {
			if st+size > wm {
				starts = append(starts, st)
			}
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		if len(starts) == 0 {
			res.Late++
			continue
		}
		if buffered+len(starts) > cfg.BufferCap {
			if cfg.Policy == Pause {
				res.Paused++
				continue
			}
			// Drop-oldest: evict from the front of the oldest windows.
			need := buffered + len(starts) - cfg.BufferCap
			for _, w := range wins {
				if need <= 0 {
					break
				}
				d := len(w.events)
				if d > need {
					d = need
				}
				w.events = w.events[d:]
				buffered -= d
				res.DroppedEvents += int64(d)
				need -= d
			}
		}
		for _, st := range starts {
			i := sort.Search(len(wins), func(i int) bool { return wins[i].start >= st })
			if i == len(wins) || wins[i].start != st {
				wins = append(wins, nil)
				copy(wins[i+1:], wins[i:])
				wins[i] = &auditWin{start: st, end: st + size}
			}
			wins[i].events = append(wins[i].events, ev)
		}
		buffered += len(starts)
		res.Assigned += int64(len(starts))
		res.Accepted++
		if !seen || ev.TS > maxTS {
			maxTS, seen = ev.TS, true
		}
		if buffered > res.PeakBuffered {
			res.PeakBuffered = buffered
		}
		closeReady(watermark(), false)
	}
	closeReady(0, true)
	return res, nil
}
