package flow

import (
	"testing"
	"time"
)

func windowsOf(w WindowSpec, ts int64) []int64 {
	var out []int64
	w.eachWindow(ts, func(start int64) { out = append(out, start) })
	return out
}

func TestTumblingAssignment(t *testing.T) {
	w, err := WindowSpec{Size: 100}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ts   int64
		want int64
	}{{0, 0}, {99, 0}, {100, 100}, {250, 200}, {-1, -100}, {-100, -100}} {
		got := windowsOf(w, tc.ts)
		if len(got) != 1 || got[0] != tc.want {
			t.Fatalf("ts=%d: windows %v, want [%d]", tc.ts, got, tc.want)
		}
	}
	if w.perEvent() != 1 {
		t.Fatalf("perEvent = %d, want 1", w.perEvent())
	}
}

func TestSlidingAssignment(t *testing.T) {
	w, err := WindowSpec{Size: 100, Slide: 25}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if w.perEvent() != 4 {
		t.Fatalf("perEvent = %d, want 4", w.perEvent())
	}
	// ts=130 belongs to windows starting at 125, 100, 75, 50 (each covers
	// [start, start+100)).
	got := windowsOf(w, 130)
	want := []int64{125, 100, 75, 50}
	if len(got) != len(want) {
		t.Fatalf("windows %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windows %v, want %v", got, want)
		}
	}
}

func TestWindowSpecValidation(t *testing.T) {
	if _, err := (WindowSpec{}).withDefaults(); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := (WindowSpec{Size: 100, Slide: 200}).withDefaults(); err == nil {
		t.Fatal("slide > size accepted (gaps would lose events)")
	}
	if _, err := (WindowSpec{Size: 100, Lateness: -1}).withDefaults(); err == nil {
		t.Fatal("negative lateness accepted")
	}
	w, err := (WindowSpec{Size: 100}).withDefaults()
	if err != nil || w.Slide != 100 {
		t.Fatalf("tumbling default: slide %v err %v", w.Slide, err)
	}
}

func TestFloorDiv(t *testing.T) {
	for _, tc := range []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-8, 2, -4}, {0, 5, 0}, {-1, 5, -1},
	} {
		if got := floorDiv(tc.a, tc.b); got != tc.want {
			t.Fatalf("floorDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestShapeFactors(t *testing.T) {
	p := time.Second
	if f := ShapeSteady.Factor(0, p, 4); f != 1 {
		t.Fatalf("steady factor %v", f)
	}
	if f := ShapeBursty.Factor(100*time.Millisecond, p, 4); f != 4 {
		t.Fatalf("bursty peak factor %v, want 4", f)
	}
	if f := ShapeBursty.Factor(600*time.Millisecond, p, 4); f >= 1 {
		t.Fatalf("bursty trough factor %v, want < 1", f)
	}
	if f := ShapeStep.Factor(2*p, p, 3); f != 3 {
		t.Fatalf("step factor %v, want 3", f)
	}
	lo := ShapeDiurnal.Factor(0, p, 4)
	hi := ShapeDiurnal.Factor(p/2, p, 4)
	if lo > 1.01 || hi < 3.9 {
		t.Fatalf("diurnal range [%v, %v], want ~[1, 4]", lo, hi)
	}
	// The mean of every shape stays near 1x sustained (step excluded: its
	// whole point is a permanent level shift).
	for _, sh := range []Shape{ShapeSteady, ShapeBursty} {
		sum := 0.0
		const n = 1000
		for i := 0; i < n; i++ {
			sum += sh.Factor(time.Duration(i)*p/n, p, 4)
		}
		if mean := sum / n; mean < 0.8 || mean > 1.3 {
			t.Fatalf("%s mean factor %v, want ~1", sh, mean)
		}
	}
	if _, ok := ParseShape("bursty"); !ok {
		t.Fatal("bursty did not parse")
	}
	if _, ok := ParseShape("nope"); ok {
		t.Fatal("unknown shape parsed")
	}
}
