package flow

import (
	"fmt"

	"pstlbench/internal/core"
	"pstlbench/internal/pipeline"
)

// OpSpec selects the windowed operator a stream applies to each closed
// window. Every operator returns an integer-valued float64 checksum, so
// the parallel result is bit-exact against the sequential audit oracle in
// any chunking or reduction order (integer sums are exact below 2^53).
type OpSpec struct {
	// Kind is one of OpKinds: reduce, scan, sort, topk, wordcount,
	// montecarlo.
	Kind string
	// K is the top-k depth (topk only; default 8).
	K int
	// Samples is the pseudo-random sample count per event (montecarlo
	// only; default 64). It scales the per-event compute cost, which the
	// WFQ admission cost accounts for via jobCost.
	Samples int
}

// OpKinds lists the windowed operators in stable order.
func OpKinds() []string {
	return []string{"reduce", "scan", "sort", "topk", "wordcount", "montecarlo"}
}

// withDefaults validates the spec and fills defaults.
func (o OpSpec) withDefaults() (OpSpec, error) {
	ok := false
	for _, k := range OpKinds() {
		if k == o.Kind {
			ok = true
		}
	}
	if !ok {
		return o, fmt.Errorf("flow: unknown op %q (want one of %v)", o.Kind, OpKinds())
	}
	if o.K <= 0 {
		o.K = 8
	}
	if o.Samples <= 0 {
		o.Samples = 64
	}
	return o, nil
}

// jobCost is the WFQ cost estimate for a window of n events — element
// count for the element-sweep operators, n×Samples for montecarlo, whose
// service time scales with the sample loop, not the event count.
func (o OpSpec) jobCost(n int) int {
	c := n
	if o.Kind == "montecarlo" {
		c = n * o.Samples
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Apply runs the operator over one closed window's events under p (which
// carries the window job's cancellation token) and returns the checksum.
// A zero Policy runs it sequentially — exactly how the audit oracle calls
// it.
func (o OpSpec) Apply(p core.Policy, evs []Event) float64 {
	n := len(evs)
	if n == 0 {
		return 0
	}
	switch o.Kind {
	case "reduce":
		return pipeline.Sum(p, values(evs), 0)
	case "scan":
		dst := make([]float64, n)
		values(evs).Scan(p, dst, func(a, b float64) float64 { return a + b })
		return dst[n/2] + dst[n-1]
	case "sort":
		dst := make([]float64, n)
		values(evs).Sort(p, dst, func(a, b float64) bool { return a < b })
		return dst[0] + dst[n/2] + dst[n-1]
	case "topk":
		k := o.K
		if k > n {
			k = n
		}
		src := make([]float64, n)
		values(evs).Copy(p, src)
		top := make([]float64, k)
		// Descending partial sort: the k largest values.
		core.PartialSortCopy(p, top, src, func(a, b float64) bool { return a > b })
		sum := 0.0
		for _, v := range top {
			sum += v
		}
		return sum
	case "wordcount":
		counts := wordCounts(p, evs)
		// Distinct-count-sensitive checksum: sum of squared counts plus the
		// vocabulary size. Integer arithmetic, so the map iteration order
		// and the chunk merge order never perturb it.
		sum := float64(len(counts))
		for _, c := range counts {
			sum += float64(c * c)
		}
		return sum
	case "montecarlo":
		samples := o.Samples
		// Per-event pi-estimator: each event seeds an LCG from its
		// timestamp and draws `samples` points in the unit square; the
		// checksum is the exact total hit count inside the quarter circle.
		hits := pipeline.Sum(p, pipeline.Generate(n, func(i int) float64 {
			state := uint64(evs[i].TS)*2862933555777941757 + uint64(i)*0x9E3779B97F4A7C15 + 1
			h := 0
			for s := 0; s < samples; s++ {
				state = state*6364136223846793005 + 1442695040888963407
				x := float64(state>>40) / float64(1<<24)
				state = state*6364136223846793005 + 1442695040888963407
				y := float64(state>>40) / float64(1<<24)
				if x*x+y*y <= 1 {
					h++
				}
			}
			return float64(h)
		}), 0)
		return hits
	}
	panic(fmt.Sprintf("flow: unknown op %q (validated at stream creation)", o.Kind))
}

// values is the fused source every element-sweep operator starts from.
func values(evs []Event) *pipeline.Pipeline[float64] {
	return pipeline.Generate(len(evs), func(i int) float64 { return evs[i].Val })
}

// wordCounts groups events by Key, counting occurrences — the wordcount
// shuffle. Parallel runs build one map per chunk and merge; int counts
// make the merged result independent of chunk boundaries.
func wordCounts(p core.Policy, evs []Event) map[string]int64 {
	n := len(evs)
	if !p.ShouldParallelize(n) {
		m := make(map[string]int64)
		for i := range evs {
			m[evs[i].Key]++
		}
		return m
	}
	chunks := p.Chunks(n)
	parts := make([]map[string]int64, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		m := make(map[string]int64)
		for i := c.Lo; i < c.Hi; i++ {
			m[evs[i].Key]++
		}
		parts[ci] = m
	})
	out := make(map[string]int64)
	for _, m := range parts {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}
