package flow

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pstlbench/internal/counters"
	"pstlbench/internal/serve"
)

// BackpressurePolicy selects what a stream does when its buffer cap is hit.
type BackpressurePolicy int

const (
	// DropOldest evicts the oldest buffered events (front of the oldest
	// open window) to make room — freshness wins, the source never stalls.
	DropOldest BackpressurePolicy = iota
	// Pause rejects the push (PushPaused) and buffers nothing — the
	// source decides whether to retry, slow down, or shed. Lossless as
	// long as the source honors the signal.
	Pause
)

func (p BackpressurePolicy) String() string {
	if p == Pause {
		return "pause"
	}
	return "drop"
}

// ParsePolicy maps a flag value ("drop" or "pause") to a policy.
func ParsePolicy(s string) (BackpressurePolicy, bool) {
	switch s {
	case "drop", "drop-oldest":
		return DropOldest, true
	case "pause":
		return Pause, true
	}
	return DropOldest, false
}

// PushStatus is the per-event outcome of Stream.Push — the backpressure
// and lateness signal a source acts on.
type PushStatus int

const (
	// PushAccepted means the event was buffered into every open window
	// containing it.
	PushAccepted PushStatus = iota
	// PushLate means every window containing the event had already closed
	// under the watermark; the event was counted late and discarded.
	PushLate
	// PushPaused means the buffer is at capacity under the Pause policy
	// (or the stream is closed); nothing was buffered.
	PushPaused
)

// StreamConfig configures one stream.
type StreamConfig struct {
	// Name identifies the stream (metrics label, report key).
	Name string
	// Tenant is the serve-layer fair-queuing flow window jobs bill to;
	// empty means Name — each stream is its own tenant by default.
	Tenant string
	// Window is the event-time windowing.
	Window WindowSpec
	// Op is the operator applied to each closed window.
	Op OpSpec
	// BufferCap bounds the total buffered (event, window) assignments
	// across all open windows — the memory bound backpressure defends
	// (default 65536). Must be at least the per-event window count.
	BufferCap int
	// Policy is the backpressure policy at the cap (default DropOldest).
	Policy BackpressurePolicy
	// PendingWindows bounds closed windows awaiting admission (default
	// 32); past it, newly closed windows are dropped and accounted.
	PendingWindows int
	// SubmitRetries bounds admission retries on a saturated server before
	// a closed window is dropped (default 3).
	SubmitRetries int
	// RetrySleepMax clamps the per-retry sleep (default 25ms).
	RetrySleepMax time.Duration
	// JobDeadline, when positive, bounds each window job's time in the
	// server; an expired window job counts canceled, not done.
	JobDeadline time.Duration
}

func (c StreamConfig) withDefaults() (StreamConfig, error) {
	if c.Name == "" {
		return c, fmt.Errorf("flow: stream name required")
	}
	if c.Tenant == "" {
		c.Tenant = c.Name
	}
	var err error
	if c.Window, err = c.Window.withDefaults(); err != nil {
		return c, err
	}
	if c.Op, err = c.Op.withDefaults(); err != nil {
		return c, err
	}
	if c.BufferCap == 0 {
		c.BufferCap = 65536
	}
	if c.BufferCap < c.Window.perEvent() {
		return c, fmt.Errorf("flow: buffer cap %d below windows per event %d",
			c.BufferCap, c.Window.perEvent())
	}
	if c.PendingWindows <= 0 {
		c.PendingWindows = 32
	}
	if c.SubmitRetries < 0 {
		c.SubmitRetries = 0
	} else if c.SubmitRetries == 0 {
		c.SubmitRetries = 3
	}
	if c.RetrySleepMax <= 0 {
		c.RetrySleepMax = 25 * time.Millisecond
	}
	return c, nil
}

// openWindow is one still-open window's buffered events.
type openWindow struct {
	start, end int64
	events     []Event
}

// Window is one closed window handed to a job: its event-time bounds and
// the events it buffered.
type Window struct {
	Stream string
	// Start and End are the window's event-time bounds [Start, End) in
	// Unix nanoseconds.
	Start, End int64
	Events     []Event
	// Flushed marks a window closed by Flush/Close rather than by the
	// watermark passing its end.
	Flushed  bool
	closedAt time.Time
}

// WindowResult is the terminal record of one closed window.
type WindowResult struct {
	Stream string `json:"stream"`
	Start  int64  `json:"start_unix_ns"`
	End    int64  `json:"end_unix_ns"`
	Events int    `json:"events"`
	// State is "done", "canceled" (job canceled or past deadline),
	// "dropped" (pending-window overflow or admission rejection), or
	// "empty" (closed with no events; never submitted).
	State string `json:"state"`
	// Checksum is the operator result, valid only when State is "done".
	Checksum float64 `json:"checksum,omitempty"`
	// LatencySeconds is wall time from window close to terminal state —
	// the per-window latency the p50/p99 report quotes.
	LatencySeconds float64 `json:"latency_seconds"`
	Flushed        bool    `json:"flushed,omitempty"`
}

// Stream is one named event stream: open-window buffers under a cap, a
// watermark, and a drainer feeding closed windows to the engine.
type Stream struct {
	cfg StreamConfig
	eng *Engine
	m   streamMetrics

	mu        sync.Mutex
	open      map[int64]*openWindow
	starts    []int64 // open window starts, ascending
	buffered  int
	peak      int
	hasEvents bool
	maxTS     int64
	closed    bool
	scratch   []int64 // per-push window-start scratch, reused under mu

	// Counters, all under mu. Events counts accepted pushes; Assigned
	// counts (event, window) buffer entries, so under tumbling windows
	// Assigned == Events and the conservation law
	// Assigned == sum(closed window events) + DroppedEvents + Buffered
	// holds exactly at any quiescent point.
	events, assigned, late, droppedEvents, pausedEvents int64
	windowsClosed, windowsFlushed, windowsEmpty         int64
	windowsDone, windowsCanceled, windowsDropped        int64
	checksum                                            float64

	closedQ chan *Window
	drainWG sync.WaitGroup
	jobWG   sync.WaitGroup
}

func newStream(e *Engine, cfg StreamConfig) (*Stream, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:     cfg,
		eng:     e,
		open:    make(map[int64]*openWindow),
		closedQ: make(chan *Window, cfg.PendingWindows),
	}
	s.initMetrics(e.met)
	return s, nil
}

// start launches the drainer; called by the engine once registered.
func (s *Stream) start() {
	s.drainWG.Add(1)
	go func() {
		defer s.drainWG.Done()
		for w := range s.closedQ {
			s.eng.submitWindow(s, w)
		}
	}()
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.cfg.Name }

// Config returns the stream's resolved configuration.
func (s *Stream) Config() StreamConfig { return s.cfg }

// watermarkLocked returns the current watermark: the maximum observed
// event time minus the allowed lateness, or math.MinInt64 before any
// event.
func (s *Stream) watermarkLocked() int64 {
	if !s.hasEvents {
		return math.MinInt64
	}
	return s.maxTS - int64(s.cfg.Window.Lateness)
}

// Watermark returns the stream's current watermark (Unix ns) and whether
// any event has been observed yet.
func (s *Stream) Watermark() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermarkLocked(), s.hasEvents
}

// WatermarkLag returns wall-clock now minus the watermark — how far event
// time trails real time. Zero before any event.
func (s *Stream) WatermarkLag() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasEvents {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - s.watermarkLocked())
}

// Buffered returns the current buffered (event, window) assignment count.
func (s *Stream) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffered
}

// Push offers one event to the stream. It never blocks: the return status
// says whether the event was buffered, late, or refused by backpressure.
func (s *Stream) Push(ev Event) PushStatus {
	s.mu.Lock()
	if s.closed {
		s.pausedEvents++
		s.mu.Unlock()
		s.m.paused.Inc()
		return PushPaused
	}
	// Resolve the event's still-open windows under the CURRENT watermark
	// (the event's own timestamp has not advanced it yet — an event cannot
	// close the windows it belongs to before being buffered into them).
	wm := s.watermarkLocked()
	size := int64(s.cfg.Window.Size)
	s.scratch = s.scratch[:0]
	s.cfg.Window.eachWindow(ev.TS, func(start int64) {
		if start+size > wm {
			s.scratch = append(s.scratch, start)
		}
	})
	if len(s.scratch) == 0 {
		s.late++
		s.mu.Unlock()
		s.m.late.Inc()
		return PushLate
	}
	need := len(s.scratch)
	if s.buffered+need > s.cfg.BufferCap {
		if s.cfg.Policy == Pause {
			s.pausedEvents++
			s.mu.Unlock()
			s.m.paused.Inc()
			return PushPaused
		}
		s.evictLocked(s.buffered + need - s.cfg.BufferCap)
	}
	for _, start := range s.scratch {
		w := s.open[start]
		if w == nil {
			w = &openWindow{start: start, end: start + size}
			s.open[start] = w
			i := sort.Search(len(s.starts), func(i int) bool { return s.starts[i] >= start })
			s.starts = append(s.starts, 0)
			copy(s.starts[i+1:], s.starts[i:])
			s.starts[i] = start
		}
		w.events = append(w.events, ev)
	}
	s.buffered += need
	s.assigned += int64(need)
	s.events++
	if !s.hasEvents || ev.TS > s.maxTS {
		s.maxTS, s.hasEvents = ev.TS, true
	}
	if s.buffered > s.peak {
		s.peak = s.buffered
	}
	// The advanced watermark may have closed the oldest windows.
	closed := s.closeExpiredLocked(s.watermarkLocked(), false)
	s.emitLocked(closed)
	s.mu.Unlock()
	s.m.events.Inc()
	return PushAccepted
}

// evictLocked drops k (event, window) assignments from the front of the
// oldest open windows — the DropOldest policy's victim order. Events are
// copied down in place so the evicted memory is actually released to the
// window's append slack, keeping the cap a real memory bound.
func (s *Stream) evictLocked(k int) {
	for _, start := range s.starts {
		if k <= 0 {
			break
		}
		w := s.open[start]
		d := len(w.events)
		if d > k {
			d = k
		}
		if d == 0 {
			continue
		}
		w.events = w.events[:copy(w.events, w.events[d:])]
		s.buffered -= d
		s.droppedEvents += int64(d)
		s.m.dropped.Add(int64(d))
		k -= d
	}
}

// closeExpiredLocked removes every open window whose end is at or behind
// the watermark (or all of them when flush is set) and returns them in
// start order. Closed windows leave the buffer immediately — their memory
// is owned by the job from here on.
func (s *Stream) closeExpiredLocked(wm int64, flush bool) []*Window {
	var out []*Window
	now := time.Now()
	for len(s.starts) > 0 {
		start := s.starts[0]
		w := s.open[start]
		if !flush && w.end > wm {
			break
		}
		s.starts = s.starts[1:]
		delete(s.open, start)
		s.buffered -= len(w.events)
		s.windowsClosed++
		s.m.closed.Inc()
		if flush {
			s.windowsFlushed++
		}
		if len(w.events) == 0 {
			s.windowsEmpty++
			continue
		}
		s.m.winEvents.Observe(float64(len(w.events)))
		out = append(out, &Window{
			Stream: s.cfg.Name, Start: w.start, End: w.end,
			Events: w.events, Flushed: flush, closedAt: now,
		})
	}
	return out
}

// emitLocked hands closed windows to the drainer without blocking: a full
// pending queue drops the window (the drainer is stalled on a saturated
// server — backpressure has reached the window plane). Must run under mu
// so no send can race Close's close(closedQ).
func (s *Stream) emitLocked(ws []*Window) {
	for _, w := range ws {
		select {
		case s.closedQ <- w:
		default:
			s.finishLocked(w, len(w.Events), "dropped", 0, time.Since(w.closedAt))
		}
	}
}

// windowDropped finalizes a window the server refused.
func (s *Stream) windowDropped(w *Window) {
	s.mu.Lock()
	s.finishLocked(w, len(w.Events), "dropped", 0, time.Since(w.closedAt))
	s.mu.Unlock()
}

// windowFinished finalizes a window whose job reached a terminal state.
func (s *Stream) windowFinished(w *Window, info serve.JobInfo) {
	state := "canceled"
	var sum float64
	if info.State == "done" {
		state = "done"
		sum = info.Checksum
	}
	lat := time.Since(w.closedAt)
	s.mu.Lock()
	s.finishLocked(w, len(w.Events), state, sum, lat)
	s.mu.Unlock()
}

// finishLocked records one terminal window outcome: counters, metrics,
// the latency region, and the engine result ring.
func (s *Stream) finishLocked(w *Window, events int, state string, sum float64, lat time.Duration) {
	switch state {
	case "done":
		s.windowsDone++
		s.checksum += sum
		s.m.done.Inc()
	case "canceled":
		s.windowsCanceled++
		s.m.canceled.Inc()
	case "dropped":
		s.windowsDropped++
		s.m.droppedW.Inc()
	}
	s.m.latency.Observe(lat.Seconds())
	if s.eng.reg != nil {
		s.eng.reg.Record("flow:"+s.cfg.Name, counters.Set{Seconds: lat.Seconds()})
	}
	// engine.record takes only the engine lock and never a stream's, so
	// the stream->engine lock order here is the only one that occurs.
	s.eng.record(WindowResult{
		Stream: s.cfg.Name, Start: w.Start, End: w.End, Events: events,
		State: state, Checksum: sum, LatencySeconds: lat.Seconds(),
		Flushed: w.Flushed,
	})
}

// Flush closes every open window regardless of the watermark and hands
// them to the drainer. The stream stays usable.
func (s *Stream) Flush() {
	s.mu.Lock()
	closed := s.closeExpiredLocked(0, true)
	s.emitLocked(closed)
	s.mu.Unlock()
}

// Close flushes, stops the drainer, and waits for every in-flight window
// job. Pushes after Close return PushPaused.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	closed := s.closeExpiredLocked(0, true)
	s.emitLocked(closed)
	s.closed = true
	close(s.closedQ)
	s.mu.Unlock()
	s.drainWG.Wait()
	s.jobWG.Wait()
}

// StreamStats is a consistent snapshot of one stream's accounting.
type StreamStats struct {
	Stream string `json:"stream"`
	Tenant string `json:"tenant"`
	Op     string `json:"op"`
	Policy string `json:"policy"`
	// Events counts accepted pushes; Assigned counts buffered
	// (event, window) entries (== Events for tumbling windows).
	Events   int64 `json:"events"`
	Assigned int64 `json:"assigned"`
	// LateEvents were discarded at the watermark; DroppedEvents were
	// evicted under DropOldest; PausedEvents were refused under Pause.
	LateEvents    int64 `json:"late_events"`
	DroppedEvents int64 `json:"dropped_events"`
	PausedEvents  int64 `json:"paused_events"`
	WindowsClosed int64 `json:"windows_closed"`
	// WindowsFlushed of the closed windows were forced by Flush/Close.
	WindowsFlushed  int64 `json:"windows_flushed"`
	WindowsEmpty    int64 `json:"windows_empty"`
	WindowsDone     int64 `json:"windows_done"`
	WindowsCanceled int64 `json:"windows_canceled"`
	WindowsDropped  int64 `json:"windows_dropped"`
	// Buffered is the current (event, window) buffer occupancy;
	// PeakBuffered its high-water mark — the number the BufferCap bound
	// is audited against.
	Buffered     int `json:"buffered"`
	PeakBuffered int `json:"peak_buffered"`
	// Checksum is the sum of done-window checksums (exact: integer-valued).
	Checksum float64 `json:"checksum"`
	// WatermarkLagSeconds is wall now minus the watermark.
	WatermarkLagSeconds float64 `json:"watermark_lag_seconds"`
	// P50/P99/MeanSeconds summarize per-window close-to-terminal latency.
	P50Seconds  float64 `json:"window_p50_seconds,omitempty"`
	P99Seconds  float64 `json:"window_p99_seconds,omitempty"`
	MeanSeconds float64 `json:"window_mean_seconds,omitempty"`
}

// Stats snapshots the stream.
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	st := StreamStats{
		Stream: s.cfg.Name, Tenant: s.cfg.Tenant, Op: s.cfg.Op.Kind,
		Policy: s.cfg.Policy.String(),
		Events: s.events, Assigned: s.assigned,
		LateEvents: s.late, DroppedEvents: s.droppedEvents, PausedEvents: s.pausedEvents,
		WindowsClosed: s.windowsClosed, WindowsFlushed: s.windowsFlushed,
		WindowsEmpty: s.windowsEmpty, WindowsDone: s.windowsDone,
		WindowsCanceled: s.windowsCanceled, WindowsDropped: s.windowsDropped,
		Buffered: s.buffered, PeakBuffered: s.peak, Checksum: s.checksum,
	}
	if s.hasEvents {
		st.WatermarkLagSeconds = float64(time.Now().UnixNano()-s.watermarkLocked()) / 1e9
	}
	s.mu.Unlock()
	if s.eng.reg != nil {
		rs := s.eng.reg.Stats("flow:" + s.cfg.Name)
		st.P50Seconds, st.P99Seconds, st.MeanSeconds = rs.P50, rs.P99, rs.Mean
	}
	return st
}
