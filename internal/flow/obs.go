package flow

import "pstlbench/internal/obs"

// streamMetrics is one stream's pstld_flow_* instrument set, every series
// labeled {stream="<name>"}. All obs instruments are nil-safe, so a stream
// without a Metrics registry pays only nil-receiver calls.
type streamMetrics struct {
	events    *obs.Counter
	late      *obs.Counter
	dropped   *obs.Counter
	paused    *obs.Counter
	closed    *obs.Counter
	done      *obs.Counter
	canceled  *obs.Counter
	droppedW  *obs.Counter
	latency   *obs.Histogram
	winEvents *obs.Histogram
}

// initMetrics registers the stream's instrument set plus the pull-time
// gauges (buffer depth, watermark lag) that read live stream state at
// scrape time. Safe with a nil registry.
func (s *Stream) initMetrics(r *obs.Registry) {
	name := s.cfg.Name
	s.m = streamMetrics{
		events: r.Counter("pstld_flow_events_total",
			"Events accepted into stream buffers.", "stream", name),
		late: r.Counter("pstld_flow_late_events_total",
			"Events discarded because every containing window had closed under the watermark.", "stream", name),
		dropped: r.Counter("pstld_flow_dropped_events_total",
			"Buffered events evicted by the drop-oldest backpressure policy.", "stream", name),
		paused: r.Counter("pstld_flow_paused_events_total",
			"Events refused at the buffer cap under the pause backpressure policy.", "stream", name),
		closed: r.Counter("pstld_flow_windows_closed_total",
			"Windows closed by the watermark or a flush.", "stream", name),
		done: r.Counter("pstld_flow_windows_done_total",
			"Closed windows whose job completed.", "stream", name),
		canceled: r.Counter("pstld_flow_windows_canceled_total",
			"Closed windows whose job was canceled or missed its deadline.", "stream", name),
		droppedW: r.Counter("pstld_flow_windows_dropped_total",
			"Closed windows dropped by pending-queue overflow or admission rejection.", "stream", name),
		latency: r.Histogram("pstld_flow_window_latency_seconds",
			"Wall time from window close to terminal job state.", obs.LatencyBuckets, "stream", name),
		winEvents: r.Histogram("pstld_flow_window_events",
			"Events per closed non-empty window.", obs.SizeBuckets, "stream", name),
	}
	if r == nil {
		return
	}
	r.GaugeFunc("pstld_flow_buffered_events",
		"Current buffered (event, window) assignments.",
		func() float64 { return float64(s.Buffered()) }, "stream", name)
	r.GaugeFunc("pstld_flow_watermark_lag_seconds",
		"Wall-clock now minus the stream watermark.",
		func() float64 { return s.WatermarkLag().Seconds() }, "stream", name)
}
