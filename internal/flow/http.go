package flow

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// IngestRequest is the POST /streams/{stream}/events body. Events with a
// zero timestamp are stamped with the server's wall clock at ingest.
type IngestRequest struct {
	Events []Event `json:"events"`
}

// IngestResponse reports the per-status split of one ingest batch.
type IngestResponse struct {
	Accepted int64 `json:"accepted"`
	Late     int64 `json:"late"`
	Paused   int64 `json:"paused"`
}

// Handler returns the engine's HTTP ingest surface:
//
//	POST /streams/{stream}/events push an event batch -> 200 IngestResponse
//	                              | 404 | 429 (whole batch paused)
//	GET  /streams                 per-stream stats     -> 200 []StreamStats
//	GET  /streams/{stream}        one stream's stats   -> 200 StreamStats | 404
//	GET  /healthz                 readiness            -> 200
//
// A 429 carries Retry-After: the pause backpressure policy, surfaced to
// remote sources the same way serve's admission control surfaces
// saturation to job clients.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /streams/{stream}/events", e.handleIngest)
	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("GET /streams/{stream}", func(w http.ResponseWriter, req *http.Request) {
		s := e.Stream(req.PathValue("stream"))
		if s == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such stream"})
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "streams": len(e.Streams())})
	})
	return mux
}

func (e *Engine) handleIngest(w http.ResponseWriter, req *http.Request) {
	s := e.Stream(req.PathValue("stream"))
	if s == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such stream"})
		return
	}
	var body IngestRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	var resp IngestResponse
	now := time.Now().UnixNano()
	for _, ev := range body.Events {
		if ev.TS == 0 {
			ev.TS = now
		}
		switch s.Push(ev) {
		case PushAccepted:
			resp.Accepted++
		case PushLate:
			resp.Late++
		case PushPaused:
			resp.Paused++
		}
	}
	status := http.StatusOK
	if resp.Paused > 0 && resp.Accepted == 0 && resp.Late == 0 && len(body.Events) > 0 {
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
