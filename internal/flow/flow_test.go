package flow

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/counters"
	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// newTestEngine builds an engine over a private server; both are torn
// down with the test.
func newTestEngine(t *testing.T, scfg serve.Config, ecfg Config) (*Engine, *serve.Server) {
	t.Helper()
	if scfg.Workers == 0 {
		scfg.Workers = 4
	}
	if scfg.QueueCap == 0 {
		scfg.QueueCap = 256
	}
	srv := serve.New(scfg)
	t.Cleanup(srv.Close)
	ecfg.Server = srv
	e, err := NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, srv
}

// drainResults waits until every closed window reached a terminal state.
func settle(t *testing.T, s *Stream) StreamStats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		terminal := st.WindowsDone + st.WindowsCanceled + st.WindowsDropped + st.WindowsEmpty
		if terminal == st.WindowsClosed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows did not settle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplayMatchesAuditExactly is the central exactness property: a
// deterministic trace replayed through a live Stream (concurrent window
// jobs on a real pool) must agree with the independent sequential oracle
// on every count and every per-window checksum, for each operator and for
// both tumbling and sliding windows.
func TestReplayMatchesAuditExactly(t *testing.T) {
	for _, tc := range []struct {
		name string
		win  WindowSpec
		op   OpSpec
	}{
		{"tumbling-reduce", WindowSpec{Size: 100, Lateness: 20}, OpSpec{Kind: "reduce"}},
		{"tumbling-scan", WindowSpec{Size: 100, Lateness: 20}, OpSpec{Kind: "scan"}},
		{"tumbling-sort", WindowSpec{Size: 100, Lateness: 0}, OpSpec{Kind: "sort"}},
		{"tumbling-topk", WindowSpec{Size: 100, Lateness: 20}, OpSpec{Kind: "topk", K: 4}},
		{"tumbling-wordcount", WindowSpec{Size: 100, Lateness: 20}, OpSpec{Kind: "wordcount"}},
		{"tumbling-montecarlo", WindowSpec{Size: 200, Lateness: 20}, OpSpec{Kind: "montecarlo", Samples: 8}},
		{"sliding-reduce", WindowSpec{Size: 100, Slide: 25, Lateness: 20}, OpSpec{Kind: "reduce"}},
		{"sliding-wordcount", WindowSpec{Size: 100, Slide: 50, Lateness: 10}, OpSpec{Kind: "wordcount"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := StreamConfig{
				Name: "s", Window: tc.win, Op: tc.op,
				PendingWindows: 4096, // audit assumes no pending overflow
			}
			trace := SynthTrace(4000, 0, 7, 30, 11, 500, 32, 42)
			want, err := Audit(cfg, trace)
			if err != nil {
				t.Fatal(err)
			}
			e, _ := newTestEngine(t, serve.Config{}, Config{ResultCap: 8192})
			s, err := e.AddStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			accepted, late, paused := Replay(s, trace)
			s.Close()
			st := s.Stats()

			if accepted != want.Accepted || late != want.Late || paused != want.Paused {
				t.Fatalf("replay counts (%d,%d,%d), audit (%d,%d,%d)",
					accepted, late, paused, want.Accepted, want.Late, want.Paused)
			}
			if st.Assigned != want.Assigned || st.DroppedEvents != want.DroppedEvents {
				t.Fatalf("assigned/dropped (%d,%d), audit (%d,%d)",
					st.Assigned, st.DroppedEvents, want.Assigned, want.DroppedEvents)
			}
			if st.WindowsClosed != want.WindowsClosed || st.WindowsEmpty != want.WindowsEmpty {
				t.Fatalf("windows closed/empty (%d,%d), audit (%d,%d)",
					st.WindowsClosed, st.WindowsEmpty, want.WindowsClosed, want.WindowsEmpty)
			}
			if st.PeakBuffered != want.PeakBuffered {
				t.Fatalf("peak buffered %d, audit %d", st.PeakBuffered, want.PeakBuffered)
			}
			if st.WindowsDropped != 0 || st.WindowsCanceled != 0 {
				t.Fatalf("dropped/canceled windows (%d,%d), want 0 for the audit comparison",
					st.WindowsDropped, st.WindowsCanceled)
			}
			if st.Buffered != 0 {
				t.Fatalf("buffered %d after close, want 0", st.Buffered)
			}
			// Every non-empty window's checksum, individually exact.
			results := e.Results()
			if len(results) != len(want.Checksums) {
				t.Fatalf("%d window results, audit %d", len(results), len(want.Checksums))
			}
			for _, r := range results {
				if r.State != "done" {
					t.Fatalf("window %d state %s", r.Start, r.State)
				}
				if wantSum, ok := want.Checksums[r.Start]; !ok || r.Checksum != wantSum {
					t.Fatalf("window %d checksum %v, audit %v (known=%v)",
						r.Start, r.Checksum, wantSum, ok)
				}
				if r.Events != want.WindowEvents[r.Start] {
					t.Fatalf("window %d events %d, audit %d",
						r.Start, r.Events, want.WindowEvents[r.Start])
				}
			}
			if st.Checksum != want.ChecksumTotal {
				t.Fatalf("total checksum %v, audit %v", st.Checksum, want.ChecksumTotal)
			}
		})
	}
}

// TestLateEventsAccounted pins the watermark rule directly: an event older
// than maxTS - lateness whose windows all closed is late, not buffered.
func TestLateEventsAccounted(t *testing.T) {
	e, _ := newTestEngine(t, serve.Config{}, Config{})
	s, err := e.AddStream(StreamConfig{
		Name:   "late",
		Window: WindowSpec{Size: 100, Lateness: 50},
		Op:     OpSpec{Kind: "reduce"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Push(Event{TS: 400, Val: 1}); got != PushAccepted {
		t.Fatalf("first push: %v", got)
	}
	// Watermark = 400-50 = 350: windows [0,100) and [100,200) are closed,
	// [300,400) is open.
	if got := s.Push(Event{TS: 120, Val: 1}); got != PushLate {
		t.Fatalf("stale event: %v, want late", got)
	}
	if got := s.Push(Event{TS: 360, Val: 1}); got != PushAccepted {
		t.Fatalf("within-lateness event: %v, want accepted", got)
	}
	st := s.Stats()
	if st.LateEvents != 1 || st.Events != 2 {
		t.Fatalf("late=%d events=%d, want 1/2", st.LateEvents, st.Events)
	}
}

// TestBackpressureDropOldest pins the memory bound: under a 4x burst the
// buffer never exceeds the cap, the oldest events are the ones evicted,
// and the conservation law assigned == closed + dropped + buffered holds.
func TestBackpressureDropOldest(t *testing.T) {
	cfg := StreamConfig{
		Name:   "bp",
		Window: WindowSpec{Size: 1000, Lateness: 0},
		// Cap far below the burst volume.
		BufferCap: 64,
		Policy:    DropOldest,
		Op:        OpSpec{Kind: "reduce"},
	}
	e, _ := newTestEngine(t, serve.Config{}, Config{})
	s, err := e.AddStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One window's worth of 4x cap events: all but the last 64 must be
	// evicted, and the peak must never pass the cap.
	const n = 256
	for i := 0; i < n; i++ {
		if got := s.Push(Event{TS: int64(i), Val: 1}); got != PushAccepted {
			t.Fatalf("push %d: %v", i, got)
		}
	}
	st := s.Stats()
	if st.PeakBuffered > cfg.BufferCap {
		t.Fatalf("peak buffered %d exceeds cap %d", st.PeakBuffered, cfg.BufferCap)
	}
	if st.DroppedEvents != n-int64(cfg.BufferCap) {
		t.Fatalf("dropped %d, want %d", st.DroppedEvents, n-cfg.BufferCap)
	}
	s.Close()
	st = settle(t, s)
	if got := st.Assigned; got != int64(sumClosedEvents(e))+st.DroppedEvents {
		t.Fatalf("conservation: assigned %d != closed %d + dropped %d",
			got, sumClosedEvents(e), st.DroppedEvents)
	}
	// The survivors are the NEWEST 64 events: values were all 1, so check
	// via the audit oracle instead, which pins the same eviction order.
	trace := make([]Event, n)
	for i := range trace {
		trace[i] = Event{TS: int64(i), Val: 1}
	}
	want, err := Audit(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedEvents != want.DroppedEvents || st.PeakBuffered != want.PeakBuffered {
		t.Fatalf("dropped/peak (%d,%d), audit (%d,%d)",
			st.DroppedEvents, st.PeakBuffered, want.DroppedEvents, want.PeakBuffered)
	}
}

func sumClosedEvents(e *Engine) int {
	n := 0
	for _, r := range e.Results() {
		n += r.Events
	}
	return n
}

// TestBackpressurePause pins the lossless policy: at the cap the push is
// refused, nothing is buffered, and after the window drains the source can
// resume.
func TestBackpressurePause(t *testing.T) {
	e, _ := newTestEngine(t, serve.Config{}, Config{})
	s, err := e.AddStream(StreamConfig{
		Name:      "pause",
		Window:    WindowSpec{Size: 1000, Lateness: 0},
		BufferCap: 16,
		Policy:    Pause,
		Op:        OpSpec{Kind: "reduce"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := s.Push(Event{TS: int64(i), Val: 1}); got != PushAccepted {
			t.Fatalf("push %d: %v", i, got)
		}
	}
	if got := s.Push(Event{TS: 16, Val: 1}); got != PushPaused {
		t.Fatalf("push at cap: %v, want paused", got)
	}
	st := s.Stats()
	if st.Buffered != 16 || st.PausedEvents != 1 || st.DroppedEvents != 0 {
		t.Fatalf("buffered=%d paused=%d dropped=%d", st.Buffered, st.PausedEvents, st.DroppedEvents)
	}
	// An event far enough ahead closes the stuck window... but it must be
	// refused too (it would need buffer room first). Pause never drops.
	if got := s.Push(Event{TS: 5000, Val: 1}); got != PushPaused {
		t.Fatalf("advancing push at cap: %v, want paused", got)
	}
	// Flush drains the buffer; then the source resumes.
	s.Flush()
	if got := s.Push(Event{TS: 5000, Val: 1}); got != PushAccepted {
		t.Fatalf("push after flush: %v, want accepted", got)
	}
}

// TestStreamSharesPoolWithBatchTenant is the end-to-end shape of the
// tentpole: a stream and a batch tenant submit through one server, WFQ
// isolates them, and every window job still returns the audited checksum.
func TestStreamSharesPoolWithBatchTenant(t *testing.T) {
	reg := counters.NewRegistry()
	e, srv := newTestEngine(t, serve.Config{
		QueueCap:      512,
		MaxConcurrent: 2,
		Weights:       map[string]float64{"stream": 1, "batch": 1},
	}, Config{Registry: reg, ResultCap: 8192})
	cfg := StreamConfig{
		Name: "wc", Tenant: "stream",
		Window:         WindowSpec{Size: 50, Lateness: 10},
		Op:             OpSpec{Kind: "wordcount"},
		PendingWindows: 4096,
	}
	trace := SynthTrace(3000, 0, 5, 10, 0, 0, 64, 7)
	want, err := Audit(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.AddStream(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Batch tenant hammers the same server while the stream replays.
	var wg sync.WaitGroup
	var batchDone int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			j, err := srv.Submit(serve.Spec{Kernel: "reduce", N: 1 << 12, Tenant: "batch"})
			if err != nil {
				continue
			}
			<-j.Done()
			if srv.Info(j).State == "done" {
				batchDone++
			}
		}
	}()
	Replay(s, trace)
	s.Close()
	wg.Wait()

	st := s.Stats()
	if st.Checksum != want.ChecksumTotal {
		t.Fatalf("stream checksum %v, audit %v (done=%d canceled=%d dropped=%d)",
			st.Checksum, want.ChecksumTotal, st.WindowsDone, st.WindowsCanceled, st.WindowsDropped)
	}
	if batchDone == 0 {
		t.Fatal("no batch job completed alongside the stream")
	}
	if st.P99Seconds <= 0 {
		t.Fatalf("no per-window latency recorded: %+v", st)
	}
}

// TestEngineMetricsExposition checks the pstld_flow_* families appear in
// Prometheus text form with the stream label and consistent totals.
func TestEngineMetricsExposition(t *testing.T) {
	met := obs.NewRegistry()
	e, _ := newTestEngine(t, serve.Config{}, Config{Metrics: met})
	s, err := e.AddStream(StreamConfig{
		Name: "m1", Window: WindowSpec{Size: 100}, Op: OpSpec{Kind: "reduce"},
	})
	if err != nil {
		t.Fatal(err)
	}
	Replay(s, SynthTrace(500, 0, 3, 0, 0, 0, 0, 3))
	s.Close()
	var buf bytes.Buffer
	met.WritePrometheus(&buf)
	text := buf.String()
	for _, fam := range []string{
		"pstld_flow_events_total", "pstld_flow_late_events_total",
		"pstld_flow_dropped_events_total", "pstld_flow_paused_events_total",
		"pstld_flow_windows_closed_total", "pstld_flow_windows_done_total",
		"pstld_flow_windows_dropped_total", "pstld_flow_window_latency_seconds",
		"pstld_flow_buffered_events", "pstld_flow_watermark_lag_seconds",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("family %s missing from exposition:\n%s", fam, text)
		}
	}
	if !strings.Contains(text, `stream="m1"`) {
		t.Fatal("stream label missing")
	}
	st := s.Stats()
	if got := int64(500); st.Events != got {
		t.Fatalf("events %d, want %d", st.Events, got)
	}
}

// TestHTTPIngest drives the engine's HTTP surface end to end.
func TestHTTPIngest(t *testing.T) {
	e, _ := newTestEngine(t, serve.Config{}, Config{})
	if _, err := e.AddStream(StreamConfig{
		Name: "h", Window: WindowSpec{Size: 100}, Op: OpSpec{Kind: "reduce"},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	body, _ := json.Marshal(IngestRequest{Events: []Event{
		{TS: 10, Val: 1}, {TS: 20, Val: 2}, {TS: 500, Val: 3},
	}})
	resp, err := srv.Client().Post(srv.URL+"/streams/h/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if ing.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", ing.Accepted)
	}
	// Unknown stream: 404.
	resp, err = srv.Client().Post(srv.URL+"/streams/nope/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown stream: status %d, want 404", resp.StatusCode)
	}
	// Stats and healthz.
	resp, err = srv.Client().Get(srv.URL + "/streams/h")
	if err != nil {
		t.Fatal(err)
	}
	var st StreamStats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Events != 3 {
		t.Fatalf("stats events %d, want 3", st.Events)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestGeneratorHonorsBackpressure runs a wall-clock generator against a
// tiny paused stream and checks the pause signal reaches the source.
func TestGeneratorHonorsBackpressure(t *testing.T) {
	e, _ := newTestEngine(t, serve.Config{}, Config{})
	s, err := e.AddStream(StreamConfig{
		Name:   "gen",
		Window: WindowSpec{Size: 1 << 62}, // never closes: pure buffer pressure
		// Cap small enough that the generator must hit it.
		BufferCap: 32,
		Policy:    Pause,
		Op:        OpSpec{Kind: "reduce"},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := &Generator{
		Stream: s, Rate: 20000, Shape: ShapeSteady, Seed: 9,
		PauseRetry: 100 * time.Microsecond, PauseBudget: 2,
	}
	stop := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { close(stop) })
	st := g.Run(stop)
	if st.Accepted != 32 {
		t.Fatalf("accepted %d, want exactly the cap 32", st.Accepted)
	}
	if st.Paused == 0 || st.PauseRetries == 0 {
		t.Fatalf("no pause signal reached the generator: %+v", st)
	}
	if got := s.Stats().Buffered; got != 32 {
		t.Fatalf("buffered %d, want 32", got)
	}
}

// TestFnJobsRejectedByRouterGuard pins that the custom-Fn path is
// in-process only at the serve layer's own validation: a spec with no Fn
// and an unknown kernel still fails, and a spec with Fn runs it.
func TestFnJobSubmitPath(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueCap: 8})
	defer srv.Close()
	j, err := srv.Submit(serve.Spec{
		Kernel: "flow:test", N: 100, Tenant: "t",
		Fn: func(p core.Policy) float64 { return 12345 },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if info := srv.Info(j); info.State != "done" || info.Checksum != 12345 {
		t.Fatalf("Fn job info %+v", info)
	}
	if _, err := srv.Submit(serve.Spec{Kernel: "flow:test", N: 100}); err == nil {
		t.Fatal("unknown kernel without Fn accepted")
	}
}
