package flow

import (
	"fmt"
	"time"
)

// WindowSpec defines the event-time windowing of a stream.
type WindowSpec struct {
	// Size is the window length in event time.
	Size time.Duration
	// Slide is the hop between window starts. Zero or Slide == Size gives
	// tumbling windows; Slide < Size gives overlapping sliding windows, in
	// which every event belongs to Size/Slide windows. Slide > Size is
	// rejected — the gaps between windows would silently lose events.
	Slide time.Duration
	// Lateness is the allowed out-of-orderness: the watermark trails the
	// maximum observed event time by this much, so an event up to Lateness
	// older than the newest one still finds its windows open. An event
	// whose every window has already closed is late and is not buffered.
	Lateness time.Duration
}

// withDefaults validates the spec and fills the tumbling default.
func (w WindowSpec) withDefaults() (WindowSpec, error) {
	if w.Size <= 0 {
		return w, fmt.Errorf("flow: window size %v, want > 0", w.Size)
	}
	if w.Slide == 0 {
		w.Slide = w.Size
	}
	if w.Slide < 0 || w.Slide > w.Size {
		return w, fmt.Errorf("flow: window slide %v, want (0, %v]", w.Slide, w.Size)
	}
	if w.Lateness < 0 {
		return w, fmt.Errorf("flow: window lateness %v, want >= 0", w.Lateness)
	}
	return w, nil
}

// perEvent returns how many windows each event belongs to.
func (w WindowSpec) perEvent() int {
	return int((int64(w.Size) + int64(w.Slide) - 1) / int64(w.Slide))
}

// eachWindow calls f with the start of every window [start, start+Size)
// containing event time ts, newest start first. Starts are aligned to
// multiples of Slide (floor division, so negative timestamps align too).
func (w WindowSpec) eachWindow(ts int64, f func(start int64)) {
	slide, size := int64(w.Slide), int64(w.Size)
	for start := floorDiv(ts, slide) * slide; start > ts-size; start -= slide {
		f(start)
	}
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
