// Package flow is the continuous-ingest streaming plane: unbounded
// sources (generators, replayed traces, HTTP ingest) feed per-tenant
// Streams, event-time windows close under a watermark into ordinary serve
// jobs, and every closed window runs as a fused parallel operator
// (internal/pipeline) on the SAME pool and through the SAME weighted fair
// queue as the batch tenants — streaming is a tenant of the service, not
// a second scheduler.
//
// The pieces:
//
//   - WindowSpec assigns each event to its tumbling or sliding event-time
//     windows; the watermark (max observed event time minus the allowed
//     lateness) decides when a window closes and when an event is late.
//   - Stream buffers open windows under a hard cap and propagates
//     backpressure to its source when the cap is hit: DropOldest evicts
//     the oldest buffered events, Pause rejects the push and lets the
//     source retry or shed.
//   - Engine compiles each closed window into a serve.Spec whose Fn is
//     the window operator (OpSpec: reduce/scan/sort/topk/wordcount/
//     montecarlo) and submits it to a shared serve.Server; admission
//     saturation is a second backpressure stage (bounded retries, then
//     the window is dropped and accounted).
//   - Audit replays a finite trace through an independent sequential
//     model of the same rules, giving the exact late/dropped/closed
//     accounting and per-window checksums the tests and the ext-stream
//     experiment validate against.
//
// Observability: pstld_flow_* metric families (events, late, dropped,
// windows closed/dropped, buffered depth, watermark lag, per-window
// latency), per-stream latency regions in a counters.Registry, and the
// per-window results ring the streaming driver's report is built from.
package flow

import (
	"fmt"
	"sync"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/counters"
	"pstlbench/internal/obs"
	"pstlbench/internal/serve"
)

// Event is one element of a stream: an event-time stamp, a numeric value,
// and an optional grouping key (the wordcount operator's word).
type Event struct {
	TS  int64   `json:"ts_unix_ns"`
	Val float64 `json:"val"`
	Key string  `json:"key,omitempty"`
}

// Config configures an Engine. Server is the only required field.
type Config struct {
	// Server is the shared serving layer window jobs are admitted through.
	// The engine does not own it: batch tenants submit to the same server,
	// and Close leaves it running.
	Server *serve.Server
	// Registry, when non-nil, records per-window latency into region
	// "flow:<stream>" for p50/p99 reporting.
	Registry *counters.Registry
	// Metrics, when non-nil, receives the pstld_flow_* families.
	Metrics *obs.Registry
	// ResultCap bounds the per-engine ring of retained WindowResults
	// (default 1024; <0 retains nothing).
	ResultCap int
	// OnResult, when non-nil, is called for every terminal window result,
	// after it is recorded. Called from engine goroutines while a stream
	// lock is held: it must not block and must not call back into the
	// engine's streams.
	OnResult func(WindowResult)
}

// Engine owns a set of named streams and drives their closed windows
// through the shared server.
type Engine struct {
	srv      *serve.Server
	reg      *counters.Registry
	met      *obs.Registry
	onResult func(WindowResult)

	mu        sync.Mutex
	streams   map[string]*Stream
	order     []string // insertion order, for stable Streams()/Stats()
	results   []WindowResult
	resultCap int
	closed    bool
}

// NewEngine returns an engine over cfg.Server.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("flow: Config.Server is required")
	}
	cap := cfg.ResultCap
	if cap == 0 {
		cap = 1024
	}
	if cap < 0 {
		cap = 0
	}
	return &Engine{
		srv:       cfg.Server,
		reg:       cfg.Registry,
		met:       cfg.Metrics,
		onResult:  cfg.OnResult,
		streams:   make(map[string]*Stream),
		resultCap: cap,
	}, nil
}

// AddStream creates and starts a stream; its drainer goroutine runs until
// the stream (or engine) is closed.
func (e *Engine) AddStream(cfg StreamConfig) (*Stream, error) {
	s, err := newStream(e, cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("flow: engine closed")
	}
	if _, dup := e.streams[s.cfg.Name]; dup {
		return nil, fmt.Errorf("flow: duplicate stream %q", s.cfg.Name)
	}
	e.streams[s.cfg.Name] = s
	e.order = append(e.order, s.cfg.Name)
	s.start()
	return s, nil
}

// Stream returns the named stream, or nil.
func (e *Engine) Stream(name string) *Stream {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.streams[name]
}

// Streams returns every stream in creation order.
func (e *Engine) Streams() []*Stream {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Stream, 0, len(e.order))
	for _, n := range e.order {
		out = append(out, e.streams[n])
	}
	return out
}

// Stats snapshots every stream, in creation order.
func (e *Engine) Stats() []StreamStats {
	ss := e.Streams()
	out := make([]StreamStats, len(ss))
	for i, s := range ss {
		out[i] = s.Stats()
	}
	return out
}

// WindowsFinished returns the total number of windows that reached a
// terminal result (done, canceled, dropped, or empty) across all streams —
// the streaming driver's -windows stop condition counts these.
func (e *Engine) WindowsFinished() int64 {
	var n int64
	for _, s := range e.Streams() {
		st := s.Stats()
		n += st.WindowsDone + st.WindowsCanceled + st.WindowsDropped + st.WindowsEmpty
	}
	return n
}

// record appends a terminal window result to the bounded ring.
func (e *Engine) record(r WindowResult) {
	e.mu.Lock()
	if e.resultCap > 0 {
		e.results = append(e.results, r)
		if len(e.results) > e.resultCap {
			// Amortized trim: shift once per overflow, keeping the newest.
			e.results = e.results[len(e.results)-e.resultCap:]
		}
	}
	cb := e.onResult
	e.mu.Unlock()
	if cb != nil {
		cb(r)
	}
}

// Results returns the retained window results, oldest first.
func (e *Engine) Results() []WindowResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]WindowResult(nil), e.results...)
}

// Close flushes every stream (open windows close regardless of the
// watermark), waits for their in-flight window jobs, and stops the
// drainers. The shared server stays up — it belongs to the caller.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	streams := make([]*Stream, 0, len(e.order))
	for _, n := range e.order {
		streams = append(streams, e.streams[n])
	}
	e.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}

// submitWindow admits one closed window to the shared server, retrying a
// bounded number of times on saturation — the second backpressure stage.
// If the server still refuses, the window is dropped and accounted; its
// buffered memory was already released when the window closed.
func (e *Engine) submitWindow(s *Stream, w *Window) {
	op := s.cfg.Op
	evs := w.Events
	spec := serve.Spec{
		ID:       fmt.Sprintf("%s-w%d", s.cfg.Name, w.Start),
		Kernel:   "flow:" + op.Kind,
		N:        op.jobCost(len(evs)),
		Tenant:   s.cfg.Tenant,
		Deadline: s.cfg.JobDeadline,
		Fn:       func(p core.Policy) float64 { return op.Apply(p, evs) },
	}
	var j *serve.Job
	var err error
	for attempt := 0; ; attempt++ {
		j, err = e.srv.Submit(spec)
		if err == nil {
			break
		}
		if sat, ok := err.(*serve.SaturatedError); ok && attempt < s.cfg.SubmitRetries {
			d := sat.RetryAfter
			if d > s.cfg.RetrySleepMax {
				d = s.cfg.RetrySleepMax
			}
			if d <= 0 {
				d = time.Millisecond
			}
			// Sleeping here is deliberate backpressure: the drainer stalls,
			// the pending-window channel behind it fills, and further closed
			// windows are dropped at that bound instead of queueing without
			// limit.
			time.Sleep(d)
			continue
		}
		s.windowDropped(w)
		return
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		<-j.Done()
		info := e.srv.Info(j)
		s.windowFinished(w, info)
	}()
}
