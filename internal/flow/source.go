package flow

import (
	"fmt"
	"math"
	"time"
)

// Shape names a load-generator arrival pattern. The instantaneous rate is
// the sustained rate times Factor, so every shape has a burst phase the
// backpressure experiments lean on.
type Shape string

const (
	// ShapeSteady arrives at the sustained rate.
	ShapeSteady Shape = "steady"
	// ShapeBursty alternates: the first quarter of each period runs at
	// Burst times the sustained rate, the rest near idle — same mean.
	ShapeBursty Shape = "bursty"
	// ShapeDiurnal is a sinusoid between the sustained rate and Burst
	// times it — the day/night curve, compressed to Period.
	ShapeDiurnal Shape = "diurnal"
	// ShapeStep runs one period at the sustained rate, then steps to
	// Burst times it for good — the capacity-cliff probe.
	ShapeStep Shape = "step"
)

// Shapes lists the generator shapes in stable order.
func Shapes() []Shape {
	return []Shape{ShapeSteady, ShapeBursty, ShapeDiurnal, ShapeStep}
}

// ParseShape maps a flag value to a Shape.
func ParseShape(s string) (Shape, bool) {
	for _, sh := range Shapes() {
		if string(sh) == s {
			return sh, true
		}
	}
	return ShapeSteady, false
}

// Factor returns the instantaneous rate multiplier at elapsed time t into
// the pattern, for a pattern period and burst amplitude.
func (sh Shape) Factor(t, period time.Duration, burst float64) float64 {
	if period <= 0 {
		period = time.Second
	}
	if burst < 1 {
		burst = 1
	}
	switch sh {
	case ShapeBursty:
		phase := float64(t%period) / float64(period)
		if phase < 0.25 {
			return burst
		}
		// Balance the burst so the mean stays ~1x sustained.
		rest := (1 - burst*0.25) / 0.75
		if rest < 0.05 {
			rest = 0.05
		}
		return rest
	case ShapeDiurnal:
		phase := float64(t%period) / float64(period)
		return 1 + (burst-1)*(1+math.Sin(2*math.Pi*phase-math.Pi/2))/2
	case ShapeStep:
		if t < period {
			return 1
		}
		return burst
	}
	return 1
}

// GenStats summarizes one Generator.Run.
type GenStats struct {
	// Generated counts events offered to the stream; Accepted, Late, and
	// Paused split them by final push status (a paused event that
	// exhausted its retry budget counts Paused once).
	Generated int64 `json:"generated"`
	Accepted  int64 `json:"accepted"`
	Late      int64 `json:"late"`
	Paused    int64 `json:"paused"`
	// PauseRetries counts retry sleeps taken on PushPaused — the visible
	// cost of the pause backpressure policy at the source.
	PauseRetries int64 `json:"pause_retries"`
}

// Generator is an unbounded wall-clock source: it pushes synthetic events
// at Rate events/second modulated by Shape, with event time = wall time,
// until stopped. Values and keys come from a seeded LCG, so two
// generators with the same seed produce the same value sequence (arrival
// TIMING is wall-clock and not reproducible — use Replay for that).
type Generator struct {
	Stream *Stream
	// Rate is the sustained arrival rate in events/second.
	Rate float64
	// Shape modulates the instantaneous rate (default steady).
	Shape Shape
	// Period is the shape's pattern length (default 1s).
	Period time.Duration
	// Burst is the shape's peak multiplier (default 4).
	Burst float64
	// Seed seeds the value/key LCG (default 1).
	Seed uint64
	// Words is the key dictionary size; 0 generates no keys. The draw is
	// min-of-two-uniforms, so low-index words are ~2x more frequent —
	// a mild skew for the wordcount operator.
	Words int
	// PauseRetry is the sleep after a PushPaused before retrying
	// (default 200µs); PauseBudget bounds retries per event (default 50)
	// before the event is abandoned as Paused.
	PauseRetry  time.Duration
	PauseBudget int
}

// Run generates until stop is closed and returns the totals. It runs in
// the caller's goroutine; start one per stream.
func (g *Generator) Run(stop <-chan struct{}) GenStats {
	if g.Period <= 0 {
		g.Period = time.Second
	}
	if g.Burst <= 0 {
		g.Burst = 4
	}
	if g.PauseRetry <= 0 {
		g.PauseRetry = 200 * time.Microsecond
	}
	if g.PauseBudget <= 0 {
		g.PauseBudget = 50
	}
	state := g.Seed
	if state == 0 {
		state = 1
	}
	var st GenStats
	const tick = time.Millisecond
	t := time.NewTicker(tick)
	defer t.Stop()
	start := time.Now()
	due := 0.0
	for {
		select {
		case <-stop:
			return st
		case <-t.C:
		}
		elapsed := time.Since(start)
		due += g.Rate * g.Shape.Factor(elapsed, g.Period, g.Burst) * tick.Seconds()
		for ; due >= 1; due-- {
			state = state*6364136223846793005 + 1442695040888963407
			ev := Event{TS: time.Now().UnixNano(), Val: float64(state % 1024)}
			if g.Words > 0 {
				a := int((state >> 16) % uint64(g.Words))
				b := int((state >> 40) % uint64(g.Words))
				if b < a {
					a = b
				}
				ev.Key = fmt.Sprintf("w%03d", a)
			}
			st.Generated++
			switch status := g.Stream.Push(ev); status {
			case PushAccepted:
				st.Accepted++
			case PushLate:
				st.Late++
			case PushPaused:
				// Honor the backpressure: sleep and retry, bounded.
				done := false
				for r := 0; r < g.PauseBudget; r++ {
					select {
					case <-stop:
						st.Paused++
						return st
					case <-time.After(g.PauseRetry):
					}
					st.PauseRetries++
					if s := g.Stream.Push(ev); s != PushPaused {
						if s == PushAccepted {
							st.Accepted++
						} else {
							st.Late++
						}
						done = true
						break
					}
				}
				if !done {
					st.Paused++
				}
			}
		}
	}
}

// Replay pushes a finite trace synchronously, in order, and returns the
// per-status counts. Event time comes from the trace, so the run is
// deterministic — the audit oracle replays the same trace through its
// independent model and the counts and checksums must match exactly.
func Replay(s *Stream, trace []Event) (accepted, late, paused int64) {
	for _, ev := range trace {
		switch s.Push(ev) {
		case PushAccepted:
			accepted++
		case PushLate:
			late++
		case PushPaused:
			paused++
		}
	}
	return
}

// SynthTrace builds a deterministic event trace for replay: n events whose
// event times advance stepNS per event with ±jitterNS of out-of-order
// noise, every lateEvery-th event arriving lateByNS behind its slot (the
// straggler population), values small integers, and keys drawn from a
// words-sized dictionary (0 = no keys). The same arguments always yield
// the same trace.
func SynthTrace(n int, startNS, stepNS, jitterNS int64, lateEvery int, lateByNS int64, words int, seed uint64) []Event {
	state := seed
	if state == 0 {
		state = 1
	}
	trace := make([]Event, n)
	for i := range trace {
		state = state*6364136223846793005 + 1442695040888963407
		ts := startNS + int64(i)*stepNS
		if jitterNS > 0 {
			ts += int64(state%uint64(2*jitterNS)) - jitterNS
		}
		if lateEvery > 0 && i%lateEvery == lateEvery-1 {
			ts -= lateByNS
		}
		ev := Event{TS: ts, Val: float64(state >> 32 % 1024)}
		if words > 0 {
			a := int((state >> 16) % uint64(words))
			b := int((state >> 40) % uint64(words))
			if b < a {
				a = b
			}
			ev.Key = fmt.Sprintf("w%03d", a)
		}
		trace[i] = ev
	}
	return trace
}
