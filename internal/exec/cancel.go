package exec

import "sync/atomic"

// Cancel is a cooperative cancellation token threaded through a parallel
// loop: the submitter hands one to the scheduler, and the scheduler checks
// it at chunk granularity on the dispatch path, so a canceled loop stops
// consuming workers at the next chunk boundary instead of running to
// completion. It generalizes the early-exit atomic bound the find-family
// algorithms already use — the same "abandon work that no longer matters"
// mechanism, but driven by the caller (an abandoned request, an expired
// deadline) rather than by the algorithm's own result.
//
// A nil *Cancel is the disabled token: Canceled on nil is an inlined
// pointer check, so uncancellable loops pay nothing on the dispatch path
// (guarded by BenchmarkCancelOverhead). Cancellation is one-way and sticky:
// there is no Reset, a token represents one logical operation.
//
// Cancellation is cooperative, not transactional: chunks that already ran
// have published their effects, chunks after the cancel point are skipped,
// so a canceled loop's output is torn by design. Callers must treat the
// token as the source of truth — check Canceled after the loop and discard
// the result when it fired (the contract internal/serve enforces for every
// job result it returns).
type Cancel struct {
	state atomic.Uint32
}

// Cancel requests cancellation. It is safe to call from any goroutine and
// idempotent; Canceled observes it on every subsequent check.
func (c *Cancel) Cancel() {
	c.state.Store(1)
}

// Canceled reports whether Cancel has been called. It is nil-safe: a nil
// token is never canceled, making it the zero-cost disabled path.
func (c *Cancel) Canceled() bool {
	return c != nil && c.state.Load() != 0
}

// CancelPool is implemented by pools whose dispatch path checks a
// cancellation token before every chunk, so a canceled loop frees its
// workers within one chunk boundary. ForChunksCancel still returns only
// after every scheduled chunk has completed or been skipped; the caller
// learns whether the loop was cut short from the token itself.
type CancelPool interface {
	Pool
	// ForChunksCancel is ForChunks with a cancellation token. A nil token
	// is valid and makes it equivalent to ForChunks.
	ForChunksCancel(n int, g Grain, c *Cancel, body func(worker, lo, hi int))
}

var _ CancelPool = Serial{}

// ForChunksCancel runs the loop inline as a single chunk, skipped when the
// token has already fired.
func (s Serial) ForChunksCancel(n int, g Grain, c *Cancel, body func(worker, lo, hi int)) {
	if c.Canceled() {
		return
	}
	s.ForChunks(n, g, body)
}
