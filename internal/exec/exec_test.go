package exec

import (
	"testing"
	"testing/quick"
)

func TestPartitionCoversRange(t *testing.T) {
	grains := map[string]Grain{
		"static": Static,
		"auto":   Auto,
		"fine":   Fine,
		"zero":   {},
		"min64":  {ChunksPerWorker: 8, MinChunk: 64},
		"max100": {ChunksPerWorker: 1, MaxChunk: 100},
	}
	for name, g := range grains {
		g := g
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 3, 7, 63, 64, 65, 1000, 4096, 1 << 20} {
				for _, w := range []int{1, 2, 3, 16, 128} {
					chunks := g.Partition(n, w)
					if n == 0 {
						if len(chunks) != 0 {
							t.Fatalf("n=0: got %d chunks", len(chunks))
						}
						continue
					}
					if len(chunks) == 0 {
						t.Fatalf("n=%d w=%d: no chunks", n, w)
					}
					lo := 0
					for i, c := range chunks {
						if c.Lo != lo {
							t.Fatalf("n=%d w=%d chunk %d: Lo=%d want %d", n, w, i, c.Lo, lo)
						}
						if c.Empty() {
							t.Fatalf("n=%d w=%d chunk %d empty", n, w, i)
						}
						lo = c.Hi
					}
					if lo != n {
						t.Fatalf("n=%d w=%d: chunks cover [0,%d) want [0,%d)", n, w, lo, n)
					}
				}
			}
		})
	}
}

func TestPartitionBalanced(t *testing.T) {
	for _, n := range []int{5, 17, 100, 1023, 1 << 16} {
		for _, w := range []int{1, 2, 7, 32} {
			chunks := Static.Partition(n, w)
			min, max := n, 0
			for _, c := range chunks {
				if l := c.Len(); l < min {
					min = l
				} else if l > max {
					max = l
				}
			}
			if max != 0 && max-min > 1 {
				t.Fatalf("n=%d w=%d: chunk sizes differ by %d", n, w, max-min)
			}
		}
	}
}

func TestPartitionChunkCountMatches(t *testing.T) {
	g := Grain{ChunksPerWorker: 4, MinChunk: 16, MaxChunk: 4096}
	for _, n := range []int{1, 15, 16, 17, 100000} {
		for _, w := range []int{1, 8, 64} {
			want := g.ChunkCount(n, w)
			got := len(g.Partition(n, w))
			if got != want {
				t.Fatalf("n=%d w=%d: ChunkCount=%d len(Partition)=%d", n, w, want, got)
			}
		}
	}
}

func TestPartitionRespectsMinChunk(t *testing.T) {
	g := Grain{ChunksPerWorker: 32, MinChunk: 100}
	chunks := g.Partition(350, 8)
	// 350/100 -> at most 4 chunks even though 256 were requested.
	if len(chunks) > 4 {
		t.Fatalf("got %d chunks, want <= 4", len(chunks))
	}
	for _, c := range chunks[:len(chunks)-1] {
		if c.Len() < 87 { // 350/4 rounded down
			t.Fatalf("undersized chunk %v", c)
		}
	}
}

func TestPartitionRespectsMaxChunk(t *testing.T) {
	g := Grain{ChunksPerWorker: 1, MaxChunk: 10}
	chunks := g.Partition(95, 2)
	if len(chunks) < 10 {
		t.Fatalf("got %d chunks, want >= 10", len(chunks))
	}
	for _, c := range chunks {
		if c.Len() > 10 {
			t.Fatalf("chunk %v exceeds MaxChunk", c)
		}
	}
}

// Property: for any n, workers, and grain parameters, the partition is a
// gapless, non-overlapping cover of [0, n) with balanced chunk sizes.
func TestPartitionProperties(t *testing.T) {
	f := func(n uint16, workers uint8, cpw uint8, minChunk uint8, maxChunk uint8) bool {
		g := Grain{
			ChunksPerWorker: int(cpw % 40),
			MinChunk:        int(minChunk % 70),
			MaxChunk:        int(maxChunk % 70),
		}
		nn := int(n)
		w := int(workers%64) + 1
		chunks := g.Partition(nn, w)
		lo := 0
		for _, c := range chunks {
			if c.Lo != lo || c.Empty() {
				return false
			}
			lo = c.Hi
		}
		return lo == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialPool(t *testing.T) {
	var p Serial
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	sum := 0
	p.ForChunks(100, Auto, func(worker, lo, hi int) {
		if worker != 0 {
			t.Fatalf("worker = %d", worker)
		}
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 99*100/2 {
		t.Fatalf("sum = %d", sum)
	}
	order := []int{}
	p.Do(func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("Do order = %v", order)
	}
	// Zero-length loop must not invoke the body.
	p.ForChunks(0, Static, func(worker, lo, hi int) { t.Fatal("body called for n=0") })
}

func TestRangeHelpers(t *testing.T) {
	r := Range{3, 7}
	if r.Len() != 4 || r.Empty() {
		t.Fatalf("Range{3,7}: Len=%d Empty=%v", r.Len(), r.Empty())
	}
	if !(Range{5, 5}).Empty() {
		t.Fatal("Range{5,5} should be empty")
	}
	if !(Range{6, 2}).Empty() {
		t.Fatal("inverted range should be empty")
	}
}

func TestGuidedPartition(t *testing.T) {
	chunks := Guided.Partition(1000, 4)
	// Coverage.
	lo := 0
	for i, c := range chunks {
		if c.Lo != lo || c.Empty() {
			t.Fatalf("chunk %d: %+v (expected Lo=%d)", i, c, lo)
		}
		lo = c.Hi
	}
	if lo != 1000 {
		t.Fatalf("cover ends at %d", lo)
	}
	// Monotonically non-increasing sizes: 250, 187, 140, ...
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Len() > chunks[i-1].Len() {
			t.Fatalf("guided chunk %d grew: %d > %d", i, chunks[i].Len(), chunks[i-1].Len())
		}
	}
	if chunks[0].Len() != 250 {
		t.Fatalf("first guided chunk = %d, want 250", chunks[0].Len())
	}
	// More chunks than static, fewer than per-element.
	if len(chunks) <= 4 || len(chunks) >= 1000 {
		t.Fatalf("guided produced %d chunks", len(chunks))
	}
	// MinChunk floor is honored.
	floored := Grain{ChunksPerWorker: -1, MinChunk: 100}.Partition(1000, 4)
	for i, c := range floored[:len(floored)-1] {
		if c.Len() < 100 {
			t.Fatalf("floored chunk %d below MinChunk: %d", i, c.Len())
		}
	}
	if got := Guided.ChunkCount(1000, 4); got != len(chunks) {
		t.Fatalf("guided ChunkCount %d != %d", got, len(chunks))
	}
	if Guided.Partition(0, 4) != nil {
		t.Fatal("guided n=0 should be nil")
	}
}
