package exec

import "testing"

func TestCancelNilIsDisabled(t *testing.T) {
	var c *Cancel
	if c.Canceled() {
		t.Fatal("nil token reports canceled")
	}
}

func TestCancelIsSticky(t *testing.T) {
	c := &Cancel{}
	if c.Canceled() {
		t.Fatal("fresh token reports canceled")
	}
	c.Cancel()
	c.Cancel() // idempotent
	if !c.Canceled() {
		t.Fatal("canceled token reports not canceled")
	}
}

func TestSerialForChunksCancel(t *testing.T) {
	var ran int
	Serial{}.ForChunksCancel(8, Auto, nil, func(_, lo, hi int) { ran += hi - lo })
	if ran != 8 {
		t.Fatalf("nil token: ran %d iterations, want 8", ran)
	}
	c := &Cancel{}
	c.Cancel()
	Serial{}.ForChunksCancel(8, Auto, c, func(_, lo, hi int) { ran += hi - lo })
	if ran != 8 {
		t.Fatalf("fired token: body still ran (%d iterations total)", ran)
	}
}
