// Package exec defines the executor abstraction shared by the native
// goroutine pools (package native) and the performance simulator
// (package simexec).
//
// The central idea of pSTL-Bench is that the *same* algorithm exhibits very
// different scalability depending on how its iteration space is partitioned
// and scheduled by the backend runtime (TBB work stealing, OpenMP static
// fork-join, HPX futures, ...).  This package therefore separates
//
//   - the partitioning policy (Grain): how an iteration space [0,n) is cut
//     into chunks, and
//   - the execution substrate (Pool): what runs those chunks.
//
// Both the real goroutine pools and the discrete-event simulator consume
// the chunk lists produced by Partition, so the schedule that is simulated
// is the schedule the library actually runs.
package exec

// Range is a half-open interval [Lo, Hi) of an iteration space.
type Range struct {
	Lo, Hi int
}

// Len returns the number of iterations in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Empty reports whether the range contains no iterations.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Grain describes a chunking policy for a parallel loop. The zero value
// means "static": exactly one chunk per worker.
type Grain struct {
	// ChunksPerWorker is the target number of chunks per worker.
	// 0 or 1 yields a static schedule (one chunk per worker); larger
	// values produce finer chunks that load-balance better at the cost
	// of per-task overhead. TBB's auto_partitioner is approximated with
	// 4, HPX's fine-grained task decomposition with 32.
	ChunksPerWorker int

	// MinChunk is the minimum chunk size in iterations; finer grains are
	// coalesced. 0 means 1.
	MinChunk int

	// MaxChunk, if positive, caps the chunk size in iterations,
	// producing more chunks than ChunksPerWorker would alone.
	MaxChunk int
}

// Static is the OpenMP-style static schedule: one contiguous chunk per
// worker.
var Static = Grain{ChunksPerWorker: 1}

// Auto approximates TBB's auto_partitioner: a few chunks per worker so the
// scheduler can rebalance.
var Auto = Grain{ChunksPerWorker: 4}

// Fine is a fine-grained decomposition in the style of HPX task futures.
var Fine = Grain{ChunksPerWorker: 32}

// Guided marks the OpenMP schedule(guided) policy: geometrically
// decreasing chunk sizes — large chunks first for low overhead, small
// chunks last for load balance.
var Guided = Grain{ChunksPerWorker: guidedMarker}

// guidedMarker selects the guided partitioning path in Partition.
const guidedMarker = -1

// IsGuided reports whether the grain uses the guided (geometrically
// decreasing) partition, whose chunk ranges cannot be computed in O(1).
// Schedulers use this to pick between the closed-form linear chunk lookup
// and ChunkAt's replay.
func (g Grain) IsGuided() bool { return g.ChunksPerWorker == guidedMarker }

// ChunkCount returns the number of chunks Partition will produce for an
// iteration space of n elements on the given number of workers. It never
// allocates; the guided count is computed by replaying the size recurrence
// arithmetically instead of materializing the partition.
func (g Grain) ChunkCount(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if g.ChunksPerWorker == guidedMarker {
		return guidedChunkCount(n, workers, g.MinChunk)
	}
	cpw := g.ChunksPerWorker
	if cpw < 1 {
		cpw = 1
	}
	chunks := workers * cpw
	minChunk := g.MinChunk
	if minChunk < 1 {
		minChunk = 1
	}
	if maxByMin := (n + minChunk - 1) / minChunk; chunks > maxByMin {
		chunks = maxByMin
	}
	if g.MaxChunk > 0 {
		if minByMax := (n + g.MaxChunk - 1) / g.MaxChunk; chunks < minByMax {
			chunks = minByMax
		}
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	return chunks
}

// Partition cuts [0, n) into the chunk list prescribed by the grain policy
// for the given worker count. Chunks are contiguous, non-overlapping, and
// cover [0, n) exactly; except for the guided policy they differ in size
// by at most one iteration.
func (g Grain) Partition(n, workers int) []Range {
	if g.ChunksPerWorker == guidedMarker {
		return guidedPartition(n, workers, g.MinChunk)
	}
	chunks := g.ChunkCount(n, workers)
	if chunks == 0 {
		return nil
	}
	out := make([]Range, 0, chunks)
	base := n / chunks
	rem := n % chunks
	lo := 0
	for i := 0; i < chunks; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ChunkAt returns the i-th chunk of the partition of [0, n), identical to
// Partition(n, workers)[i] but without materializing the slice. It is the
// index-based access path the native scheduler uses for zero-allocation
// chunk dispatch. For the linear grains the lookup is O(1); for Guided the
// chunk sizes form a recurrence, so the lookup replays the i leading sizes
// (O(i), with small guided chunk counts in practice).
//
// i outside [0, ChunkCount(n, workers)) returns the zero Range, for the
// linear and guided grains alike.
func (g Grain) ChunkAt(i, n, workers int) Range {
	if workers < 1 {
		workers = 1
	}
	if g.ChunksPerWorker == guidedMarker {
		if i < 0 || n <= 0 {
			return Range{}
		}
		minChunk := g.MinChunk
		if minChunk < 1 {
			minChunk = 1
		}
		// Replay only the geometric head. Once the fixed-size tail regime
		// starts, every remaining chunk is exactly minChunk wide (last one
		// capped at n), so the target index — or its out-of-range-ness —
		// resolves in O(1), mirroring guidedChunkCount. This bounds the
		// walk by the head length instead of O(n/minChunk).
		lo := 0
		for k := 0; lo < n; k++ {
			size := (n - lo) / workers
			if size < minChunk {
				if i < k {
					return Range{} // head index; already handled above
				}
				tlo := lo + (i-k)*minChunk
				if tlo >= n {
					return Range{}
				}
				thi := tlo + minChunk
				if thi > n {
					thi = n
				}
				return Range{Lo: tlo, Hi: thi}
			}
			if k == i {
				return Range{Lo: lo, Hi: lo + size}
			}
			lo += size
		}
		return Range{}
	}
	chunks := g.ChunkCount(n, workers)
	if chunks == 0 || i < 0 || i >= chunks {
		return Range{}
	}
	base := n / chunks
	rem := n % chunks
	// The first rem chunks carry one extra iteration.
	var lo int
	if i < rem {
		lo = i * (base + 1)
		return Range{Lo: lo, Hi: lo + base + 1}
	}
	lo = rem*(base+1) + (i-rem)*base
	return Range{Lo: lo, Hi: lo + base}
}

// ForEachChunk invokes fn(ci, r) for every chunk of the partition of [0, n)
// in ascending order, without allocating the chunk list. It is equivalent to
// ranging over Partition(n, workers).
func (g Grain) ForEachChunk(n, workers int, fn func(ci int, r Range)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if g.ChunksPerWorker == guidedMarker {
		minChunk := g.MinChunk
		if minChunk < 1 {
			minChunk = 1
		}
		lo := 0
		for ci := 0; lo < n; ci++ {
			size := guidedSize(n, lo, workers, minChunk)
			fn(ci, Range{Lo: lo, Hi: lo + size})
			lo += size
		}
		return
	}
	chunks := g.ChunkCount(n, workers)
	base := n / chunks
	rem := n % chunks
	lo := 0
	for ci := 0; ci < chunks; ci++ {
		hi := lo + base
		if ci < rem {
			hi++
		}
		fn(ci, Range{Lo: lo, Hi: hi})
		lo = hi
	}
}

// Pool is an execution substrate for parallel loops and task groups.
//
// Implementations must support concurrent independent loops and task
// groups from multiple goroutines, as well as nested parallelism (a loop
// body or task may itself call ForChunks or Do). Panics raised by loop
// bodies or tasks are recovered on the worker and re-raised on the calling
// goroutine once all siblings have finished.
type Pool interface {
	// Workers returns the number of workers the pool schedules onto.
	// Serial pools return 1.
	Workers() int

	// ForChunks partitions [0, n) according to g and invokes
	// body(worker, lo, hi) for every chunk, possibly concurrently.
	// worker identifies the executing worker in [0, Workers()]; the
	// value Workers() is used when the calling goroutine itself helps
	// execute chunks, so per-worker state must be sized Workers()+1.
	// ForChunks returns after every chunk has completed.
	ForChunks(n int, g Grain, body func(worker, lo, hi int))

	// Do runs the given thunks, possibly concurrently, and returns after
	// all of them have completed.
	Do(fns ...func())
}

// Serial is the trivial pool: everything runs inline on the calling
// goroutine. It is the reference implementation against which the parallel
// pools are tested.
type Serial struct{}

// Workers returns 1.
func (Serial) Workers() int { return 1 }

// ForChunks runs the loop body inline as a single chunk.
func (Serial) ForChunks(n int, _ Grain, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	body(0, 0, n)
}

// Do runs the thunks sequentially in order.
func (Serial) Do(fns ...func()) {
	for _, fn := range fns {
		fn()
	}
}

// guidedSize is one step of the schedule(guided) size recurrence: the chunk
// starting at lo is remaining/workers iterations, never below minChunk, and
// never beyond the end of the iteration space.
func guidedSize(n, lo, workers, minChunk int) int {
	size := (n - lo) / workers
	if size < minChunk {
		size = minChunk
	}
	if size > n-lo {
		size = n - lo
	}
	return size
}

// guidedChunkCount counts schedule(guided) chunks without materializing
// them. The size sequence has two regimes: a geometric head while
// remaining/workers >= minChunk, then a fixed-size tail of minChunk chunks
// (the integer floors make the head lengths data-dependent, so the head is
// replayed exactly rather than approximated with logarithms; it is
// O(workers * log(n)) steps and allocation-free).
func guidedChunkCount(n, workers, minChunk int) int {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	count := 0
	lo := 0
	for lo < n {
		size := (n - lo) / workers
		if size < minChunk {
			// Tail regime: every remaining chunk is exactly minChunk
			// (capped at the end), so the rest of the count is a division.
			return count + (n-lo+minChunk-1)/minChunk
		}
		count++
		lo += size
	}
	return count
}

// guidedPartition implements OpenMP's schedule(guided): each chunk is
// remaining/workers iterations, never below minChunk.
func guidedPartition(n, workers, minChunk int) []Range {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	out := make([]Range, 0, guidedChunkCount(n, workers, minChunk))
	lo := 0
	for lo < n {
		size := guidedSize(n, lo, workers, minChunk)
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
