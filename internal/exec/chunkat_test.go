package exec

import (
	"testing"
)

var chunkGrains = []Grain{
	Static,
	Auto,
	Fine,
	Guided,
	{ChunksPerWorker: 4, MinChunk: 100},
	{ChunksPerWorker: 2, MaxChunk: 33},
	{ChunksPerWorker: guidedMarker, MinChunk: 64},
}

// TestChunkAtMatchesPartition pins the index-based access path to the
// materializing one: ChunkCount, ChunkAt and ForEachChunk must agree with
// Partition exactly for every grain, size and worker count.
func TestChunkAtMatchesPartition(t *testing.T) {
	for _, g := range chunkGrains {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 65536} {
			for _, w := range []int{1, 2, 3, 8, 17, 128} {
				want := g.Partition(n, w)
				if got := g.ChunkCount(n, w); got != len(want) {
					t.Fatalf("grain %+v n=%d w=%d: ChunkCount=%d, Partition len=%d",
						g, n, w, got, len(want))
				}
				for i, r := range want {
					if got := g.ChunkAt(i, n, w); got != r {
						t.Fatalf("grain %+v n=%d w=%d: ChunkAt(%d)=%+v, want %+v",
							g, n, w, i, got, r)
					}
				}
				seen := 0
				g.ForEachChunk(n, w, func(ci int, r Range) {
					if ci != seen {
						t.Fatalf("grain %+v n=%d w=%d: ForEachChunk index %d, want %d",
							g, n, w, ci, seen)
					}
					if r != want[ci] {
						t.Fatalf("grain %+v n=%d w=%d: ForEachChunk chunk %d=%+v, want %+v",
							g, n, w, ci, r, want[ci])
					}
					seen++
				})
				if seen != len(want) {
					t.Fatalf("grain %+v n=%d w=%d: ForEachChunk visited %d chunks, want %d",
						g, n, w, seen, len(want))
				}
			}
		}
	}
}

// TestGuidedChunkCountNoAlloc verifies the guided count satellite fix:
// counting chunks must not materialize the partition.
func TestGuidedChunkCountNoAlloc(t *testing.T) {
	g := Guided
	allocs := testing.AllocsPerRun(100, func() {
		if g.ChunkCount(1<<20, 64) == 0 {
			t.Fatal("zero chunks")
		}
	})
	if allocs != 0 {
		t.Fatalf("guided ChunkCount allocates %v per call, want 0", allocs)
	}
}

func TestChunkAtOutOfRange(t *testing.T) {
	if r := Auto.ChunkAt(999, 100, 4); !r.Empty() {
		t.Fatalf("out-of-range ChunkAt = %+v, want empty", r)
	}
	if r := Guided.ChunkAt(999, 100, 4); !r.Empty() {
		t.Fatalf("guided out-of-range ChunkAt = %+v, want empty", r)
	}
}
