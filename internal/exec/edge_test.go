package exec

import (
	"math/rand"
	"testing"
)

// Edge cases of the chunk arithmetic at the boundaries the adaptive tuner
// exercises: empty iteration spaces, more workers than elements, and
// single-element chunks.

func TestChunkArithmeticEmptyRange(t *testing.T) {
	for _, g := range chunkGrains {
		for _, w := range []int{1, 4, 128} {
			if got := g.ChunkCount(0, w); got != 0 {
				t.Fatalf("grain %+v w=%d: ChunkCount(0)=%d, want 0", g, w, got)
			}
			for _, i := range []int{0, 1, 5} {
				if r := g.ChunkAt(i, 0, w); r != (Range{}) {
					t.Fatalf("grain %+v w=%d: ChunkAt(%d, 0)=%+v, want zero", g, w, i, r)
				}
			}
			if p := g.Partition(0, w); len(p) != 0 {
				t.Fatalf("grain %+v w=%d: Partition(0) has %d chunks", g, w, len(p))
			}
		}
	}
}

func TestChunkArithmeticMoreWorkersThanElements(t *testing.T) {
	for _, g := range chunkGrains {
		for _, n := range []int{1, 2, 3, 7} {
			for _, w := range []int{8, 64, 1000} {
				chunks := g.ChunkCount(n, w)
				if chunks < 1 || chunks > n {
					t.Fatalf("grain %+v n=%d w=%d: ChunkCount=%d outside [1, n]",
						g, n, w, chunks)
				}
				assertTiles(t, g, n, w)
			}
		}
	}
}

func TestChunkArithmeticMaxChunkOne(t *testing.T) {
	g := Grain{MaxChunk: 1}
	for _, n := range []int{1, 5, 64, 1000} {
		for _, w := range []int{1, 3, 16} {
			if got := g.ChunkCount(n, w); got != n {
				t.Fatalf("MaxChunk=1 n=%d w=%d: ChunkCount=%d, want n", n, w, got)
			}
			for i := 0; i < n; i++ {
				if r := g.ChunkAt(i, n, w); r.Lo != i || r.Hi != i+1 {
					t.Fatalf("MaxChunk=1 n=%d w=%d: ChunkAt(%d)=%+v, want [%d,%d)",
						n, w, i, r, i, i+1)
				}
			}
		}
	}
}

// TestAdaptiveGrainTilesRandomized is the property test for the grains the
// adaptive tuner proposes (MinChunk == MaxChunk == c): ChunkAt must tile
// [0, n) exactly once for any (n, workers, c), never overlapping and never
// dropping iterations.
func TestAdaptiveGrainTilesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		n := rng.Intn(100000)
		w := 1 + rng.Intn(256)
		c := 1 + rng.Intn(n+10)
		g := Grain{MinChunk: c, MaxChunk: c}
		if n == 0 {
			if got := g.ChunkCount(0, w); got != 0 {
				t.Fatalf("c=%d w=%d: ChunkCount(0)=%d", c, w, got)
			}
			continue
		}
		chunks := g.ChunkCount(n, w)
		wantChunks := (n + c - 1) / c
		if chunks != wantChunks {
			t.Fatalf("n=%d w=%d c=%d: ChunkCount=%d, want ceil(n/c)=%d",
				n, w, c, chunks, wantChunks)
		}
		assertTiles(t, g, n, w)
	}
}

// FuzzChunkAtTiles fuzzes the same tiling invariant over arbitrary grain
// parameters, including the guided policy.
func FuzzChunkAtTiles(f *testing.F) {
	f.Add(100, 4, 0, 0, 0)
	f.Add(65536, 32, 0, 2048, 2048) // adaptive-style uniform chunk
	f.Add(1000, 8, 4, 1, 0)         // auto
	f.Add(17, 64, -1, 0, 0)         // guided, workers > n
	f.Add(0, 3, 1, 0, 1)
	f.Fuzz(func(t *testing.T, n, workers, cpw, minChunk, maxChunk int) {
		if n < 0 || n > 1<<20 || workers < -4 || workers > 1024 {
			t.Skip()
		}
		if cpw < -1 || cpw > 1024 || minChunk < -4 || minChunk > 1<<20 || maxChunk < -4 || maxChunk > 1<<20 {
			t.Skip()
		}
		g := Grain{ChunksPerWorker: cpw, MinChunk: minChunk, MaxChunk: maxChunk}
		chunks := g.ChunkCount(n, workers)
		if n <= 0 {
			if chunks != 0 {
				t.Fatalf("grain %+v n=%d w=%d: ChunkCount=%d, want 0", g, n, workers, chunks)
			}
			return
		}
		if chunks < 1 || chunks > n {
			t.Fatalf("grain %+v n=%d w=%d: ChunkCount=%d outside [1, n]", g, n, workers, chunks)
		}
		assertTiles(t, g, n, workers)
	})
}

// assertTiles checks that the grain's indexed chunks cover [0, n)
// contiguously, in order, with no empty chunk, and that out-of-range
// indices return the zero Range.
func assertTiles(t *testing.T, g Grain, n, workers int) {
	t.Helper()
	chunks := g.ChunkCount(n, workers)
	pos := 0
	for i := 0; i < chunks; i++ {
		r := g.ChunkAt(i, n, workers)
		if r.Lo != pos {
			t.Fatalf("grain %+v n=%d w=%d: chunk %d starts at %d, want %d",
				g, n, workers, i, r.Lo, pos)
		}
		if r.Hi <= r.Lo {
			t.Fatalf("grain %+v n=%d w=%d: chunk %d empty [%d,%d)",
				g, n, workers, i, r.Lo, r.Hi)
		}
		pos = r.Hi
	}
	if pos != n {
		t.Fatalf("grain %+v n=%d w=%d: tiling covers [0,%d), want [0,%d)",
			g, n, workers, pos, n)
	}
	for _, i := range []int{-1, chunks, chunks + 3} {
		if r := g.ChunkAt(i, n, workers); r != (Range{}) {
			t.Fatalf("grain %+v n=%d w=%d: ChunkAt(%d)=%+v, want zero",
				g, n, workers, i, r)
		}
	}
}
