package exec

import (
	"math/rand"
	"testing"
)

// TestGuidedAgreementRandomized is a randomized property test: for guided
// grains across random n/workers/MinChunk — biased so the fixed-size tail
// regime is always exercised — Partition, ChunkAt and ForEachChunk must
// agree chunk-for-chunk, cover [0, n) exactly, and respect MinChunk except
// on the final capped chunk.
func TestGuidedAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(1<<14)
		workers := 1 + rng.Intn(64)
		minChunk := 1 + rng.Intn(128)
		if trial%3 == 0 {
			// Force a long tail: a minChunk big relative to n/workers makes
			// the geometric head short or empty.
			minChunk = 1 + n/(1+rng.Intn(8))
		}
		g := Grain{ChunksPerWorker: guidedMarker, MinChunk: minChunk}

		want := g.Partition(n, workers)
		count := g.ChunkCount(n, workers)
		if count != len(want) {
			t.Fatalf("n=%d w=%d min=%d: ChunkCount=%d, Partition len=%d",
				n, workers, minChunk, count, len(want))
		}

		lo := 0
		for i, r := range want {
			if r.Lo != lo || r.Empty() || r.Hi > n {
				t.Fatalf("n=%d w=%d min=%d: Partition[%d]=%+v does not tile at %d",
					n, workers, minChunk, i, r, lo)
			}
			if r.Len() < minChunk && r.Hi != n {
				t.Fatalf("n=%d w=%d min=%d: Partition[%d]=%+v below MinChunk before the end",
					n, workers, minChunk, i, r)
			}
			if got := g.ChunkAt(i, n, workers); got != r {
				t.Fatalf("n=%d w=%d min=%d: ChunkAt(%d)=%+v, want %+v",
					n, workers, minChunk, i, got, r)
			}
			lo = r.Hi
		}
		if lo != n {
			t.Fatalf("n=%d w=%d min=%d: partition covers [0,%d), want [0,%d)",
				n, workers, minChunk, lo, n)
		}

		visited := 0
		g.ForEachChunk(n, workers, func(ci int, r Range) {
			if ci != visited || r != want[ci] {
				t.Fatalf("n=%d w=%d min=%d: ForEachChunk(%d)=%+v, want index %d %+v",
					n, workers, minChunk, ci, r, visited, want[visited])
			}
			visited++
		})
		if visited != count {
			t.Fatalf("n=%d w=%d min=%d: ForEachChunk visited %d, want %d",
				n, workers, minChunk, visited, count)
		}

		// Out-of-range indices return the zero Range, same as the linear
		// grains.
		for _, i := range []int{-1, count, count + 1, count + rng.Intn(1000)} {
			if r := g.ChunkAt(i, n, workers); !r.Empty() {
				t.Fatalf("n=%d w=%d min=%d: ChunkAt(%d)=%+v, want empty",
					n, workers, minChunk, i, r)
			}
		}
	}
}

// TestGuidedChunkAtOutOfRangeBounded pins the satellite fix: an
// out-of-range lookup must resolve via the tail closed form, not by
// walking all O(n/minChunk) chunks. With n=1<<20 and MinChunk=1 the old
// code walked ~64k chunks; the bounded walk stops within the geometric
// head (O(workers * log n) steps).
func TestGuidedChunkAtOutOfRangeBounded(t *testing.T) {
	g := Guided
	const n = 1 << 20
	count := g.ChunkCount(n, 4)
	// Out-of-range far beyond the count, repeated enough that an O(n)
	// walk would be visibly slow under -race; mostly this documents the
	// contract, the agreement test above checks correctness.
	for i := 0; i < 1000; i++ {
		if r := g.ChunkAt(count+i, n, 4); !r.Empty() {
			t.Fatalf("ChunkAt(%d) = %+v, want empty", count+i, r)
		}
	}
	if r := g.ChunkAt(-1, n, 4); !r.Empty() {
		t.Fatalf("ChunkAt(-1) = %+v, want empty", r)
	}
}
