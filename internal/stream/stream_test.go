package stream

import (
	"testing"

	"pstlbench/internal/machine"
)

func TestSimulatedMatchesTable2(t *testing.T) {
	// The simulated STREAM numbers must reproduce the paper's Table 2 row
	// (this is the simulator's calibration anchor).
	cases := []struct {
		m        *machine.Machine
		one, all float64
	}{
		{machine.MachA(), 11.7, 135},
		{machine.MachB(), 26.0, 204},
		{machine.MachC(), 42.6, 249},
	}
	for _, c := range cases {
		if got := Simulated(c.m, 1); got < c.one*0.97 || got > c.one*1.03 {
			t.Errorf("%s 1-core: %v GB/s, want %v", c.m.Name, got, c.one)
		}
		if got := Simulated(c.m, c.m.Cores); got < c.all*0.95 || got > c.all*1.05 {
			t.Errorf("%s all-core: %v GB/s, want %v", c.m.Name, got, c.all)
		}
	}
}

func TestSimulatedMonotoneInCores(t *testing.T) {
	m := machine.MachC()
	prev := 0.0
	for _, cores := range []int{1, 2, 8, 32, 128} {
		got := Simulated(m, cores)
		if got < prev*0.999 {
			t.Fatalf("bandwidth decreased: %v cores -> %v GB/s (prev %v)", cores, got, prev)
		}
		prev = got
	}
	if Simulated(m, 0) <= 0 || Simulated(m, 10000) <= 0 {
		t.Fatal("core-count clamping broken")
	}
}

func TestNativeRunsAndIsPositive(t *testing.T) {
	r := Native(2, 1<<16, 2)
	for name, v := range map[string]float64{"copy": r.Copy, "scale": r.Scale, "add": r.Add, "triad": r.Triad} {
		if v <= 0 {
			t.Errorf("%s bandwidth %v, want > 0", name, v)
		}
	}
	if r.Best() < r.Triad {
		t.Error("Best below Triad")
	}
}

func TestNativeClampsArguments(t *testing.T) {
	r := Native(1, 0, 0) // degenerate: clamped to n=1, iters=1
	_ = r                // must simply not panic or divide by zero
}
