// Package stream implements the STREAM bandwidth benchmark (McCalpin) that
// the paper uses to calibrate expectations for memory-bound algorithms
// (Table 2's last row: single-core and all-core bandwidth).
//
// Despite the name, this package has nothing to do with streaming
// workloads: for the continuous-ingest streaming plane (event-time
// windows, watermarks, backpressure, windowed operators through the
// serving tier) see internal/flow. The CLI entry for THIS benchmark lives
// in pstlbench (-mode stream-sim / stream-native); cmd/pstlstream drives
// internal/flow.
//
// Two modes exist: Native measures the host this code actually runs on,
// using the library's own parallel Transform; Simulated runs the triad
// through the memory-system model and must reproduce the Table 2 figures,
// which ties the simulator's calibration to the paper's published numbers.
package stream

import (
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
	"pstlbench/internal/memsys"
	"pstlbench/internal/native"
)

// Result is a STREAM measurement in GB/s.
type Result struct {
	Copy, Scale, Add, Triad float64
}

// Best returns the headline figure (max of the four kernels, as STREAM
// reports are commonly summarized).
func (r Result) Best() float64 {
	best := r.Copy
	for _, v := range []float64{r.Scale, r.Add, r.Triad} {
		if v > best {
			best = v
		}
	}
	return best
}

// Native runs the four STREAM kernels on the host with the given worker
// count and returns measured bandwidth. n is the per-array element count
// (each element 8 bytes; STREAM wants arrays well beyond cache).
func Native(workers, n, iters int) Result {
	if n < 1 {
		n = 1
	}
	if iters < 1 {
		iters = 1
	}
	pool := native.New(workers, native.StrategyForkJoin)
	defer pool.Close()
	p := core.Par(pool).WithGrain(exec.Static)

	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	core.Generate(p, a, func(i int) float64 { return float64(i) })
	core.Fill(p, b, 2.0)
	core.Fill(p, c, 0.5)

	const scalar = 3.0
	measure := func(bytesPerElem int, kernel func()) float64 {
		best := 0.0
		for it := 0; it < iters; it++ {
			start := time.Now()
			kernel()
			secs := time.Since(start).Seconds()
			if secs <= 0 {
				continue
			}
			if bw := float64(n) * float64(bytesPerElem) / secs / 1e9; bw > best {
				best = bw
			}
		}
		return best
	}
	return Result{
		Copy:  measure(16, func() { core.Copy(p, c, a) }),
		Scale: measure(16, func() { core.Transform(p, b, c, func(v float64) float64 { return scalar * v }) }),
		Add:   measure(24, func() { core.TransformBinary(p, c, a, b, func(x, y float64) float64 { return x + y }) }),
		Triad: measure(24, func() {
			core.TransformBinary(p, a, b, c, func(x, y float64) float64 { return x + scalar*y })
		}),
	}
}

// Simulated runs the triad through the memory-system model with perfectly
// local first-touch placement and returns the achieved bandwidth for the
// given core count. It must reproduce Table 2's STREAM row.
func Simulated(m *machine.Machine, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	streams := make([]memsys.Stream, cores)
	for c := 0; c < cores; c++ {
		tr := make([]float64, m.NUMANodes)
		tr[m.NodeOf(c)] = 1
		streams[c] = memsys.Stream{Core: c, Demand: 1e13, NodeFrac: tr}
	}
	rates := memsys.Solve(m, memsys.LevelDRAM, streams)
	total := 0.0
	for _, r := range rates {
		total += r
	}
	return total / 1e9
}
