// Package trace is the event-tracing layer of the suite: a low-overhead
// recorder of scheduler events — chunk-execution spans, steal attempts with
// victim and locality tier, parks, wakeups, region and iteration markers —
// into fixed-capacity per-track ring buffers, one track per worker (native
// pools) or per simulated core (simexec), plus one for the measurement
// harness.
//
// Two clock domains share one event format: a wall-clock Tracer (New) stamps
// events with monotonic nanoseconds since the tracer was created, and a
// virtual-time Tracer (NewVirtual) carries a cursor that the simulator
// advances by each invocation's modeled duration, so simulated iterations
// stack end-to-end on one timeline. Consumers (the Chrome-trace exporter in
// chrome.go, the distribution summarizer in summary.go) treat both planes
// identically.
//
// The record path is allocation-free: events are fixed-size structs written
// into a preallocated ring under a short per-track critical section (the
// only contention is an exporter draining concurrently), and when the ring
// is full the oldest events are evicted and counted as lost rather than
// blocking or growing. A disabled tracer is a nil *Buf; every record method
// is nil-safe and its disabled path is a single inlined pointer check, so
// instrumented hot loops pay under a nanosecond per event when tracing is
// off (guarded by BenchmarkTraceDisabled).
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindChunk is a span: one loop chunk (or Do thunk) executed by a
	// worker. A0/A1 are the chunk's [lo, hi) element range natively, or
	// the simulator's task element range; Do thunks use A0 = -1 and
	// A1 = thunk index.
	KindChunk Kind = iota
	// KindSteal is an instant: the track's worker acquired work away from
	// its home queue. A0 is the victim worker (or -1 for the shared
	// injector/central queue), A1 is the locality tier (TierLocal or
	// TierRemote).
	KindSteal
	// KindPark is a span natively (the worker blocked on its semaphore
	// from Start to End) and an instant in the simulator (the core went
	// idle for the rest of the phase).
	KindPark
	// KindWakeup is an instant: a park token was delivered to the track's
	// worker. A0 is the woken worker id.
	KindWakeup
	// KindRegion is a span bracketing one measured region (a benchmark
	// instance), named like the counters.Registry region. A0 is the
	// interned name id (Tracer.Intern / Tracer.NameOf).
	KindRegion
	// KindIteration is an instant: the harness started a measurement
	// iteration. A0 is the iteration index within the current run.
	KindIteration

	numKinds
)

// Steal locality tiers (Event.A1 of KindSteal).
const (
	TierLocal  = 0 // victim on the thief's NUMA node (or no topology)
	TierRemote = 1 // victim on another node: data dragged across the fabric
)

// String returns the Chrome-trace event name of the kind.
func (k Kind) String() string {
	switch k {
	case KindChunk:
		return "chunk"
	case KindSteal:
		return "steal"
	case KindPark:
		return "park"
	case KindWakeup:
		return "wakeup"
	case KindRegion:
		return "region"
	case KindIteration:
		return "iteration"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fixed-size trace record. Timestamps are nanoseconds in the
// tracer's clock domain (wall or virtual); instants have End == Start.
type Event struct {
	Start int64
	End   int64
	A0    int64
	A1    int64
	Kind  Kind
}

// Duration returns the span length in seconds (0 for instants).
func (e Event) Duration() float64 { return float64(e.End-e.Start) * 1e-9 }

// DefaultCapacity is the per-track ring capacity used when a Tracer is
// created with capacity <= 0.
const DefaultCapacity = 1 << 16

// Buf is one track's ring buffer. It is a single conceptual producer
// (the owning worker), but writes are serialized with a mutex so occasional
// cross-track producers (wake tokens recorded on the woken worker's track)
// and a concurrently draining exporter stay race-free; the critical section
// is one slot store.
//
// A nil *Buf is the disabled tracer: every method is a nil-check no-op.
type Buf struct {
	mu  sync.Mutex
	ev  []Event
	pos uint64 // total events ever recorded; slot index is pos % cap
}

// Span records a [start, end] span event. No-op on a nil Buf.
func (b *Buf) Span(k Kind, start, end, a0, a1 int64) {
	if b == nil {
		return
	}
	b.record(k, start, end, a0, a1)
}

// Instant records a point event at time at. No-op on a nil Buf.
func (b *Buf) Instant(k Kind, at, a0, a1 int64) {
	if b == nil {
		return
	}
	b.record(k, at, at, a0, a1)
}

func (b *Buf) record(k Kind, start, end, a0, a1 int64) {
	b.mu.Lock()
	b.ev[b.pos%uint64(len(b.ev))] = Event{Start: start, End: end, A0: a0, A1: a1, Kind: k}
	b.pos++
	b.mu.Unlock()
}

// Recorded returns the total number of events ever recorded, including
// evicted ones. 0 on a nil Buf.
func (b *Buf) Recorded() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pos
}

// Lost returns how many events were evicted to make room (oldest first).
func (b *Buf) Lost() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := uint64(len(b.ev)); b.pos > c {
		return b.pos - c
	}
	return 0
}

// Events returns a copy of the surviving events, oldest first. Recording
// may continue concurrently; the snapshot is consistent. Nil on a nil Buf.
func (b *Buf) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := uint64(len(b.ev))
	if b.pos <= c {
		return append([]Event(nil), b.ev[:b.pos]...)
	}
	// Full ring: oldest surviving event sits at pos % cap.
	head := b.pos % c
	out := make([]Event, 0, c)
	out = append(out, b.ev[head:]...)
	out = append(out, b.ev[:head]...)
	return out
}

// Len returns how many events currently survive in the ring.
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := uint64(len(b.ev)); b.pos > c {
		return int(c)
	}
	return int(b.pos)
}

// Cap returns the ring capacity (0 on a nil Buf).
func (b *Buf) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.ev)
}

// Tracer owns the per-track ring buffers and the clock of one tracing
// session. A nil *Tracer is valid and disabled: Buf returns nil and the
// clock methods return 0 / no-op.
type Tracer struct {
	bufs    []*Buf
	labels  []string
	virtual bool
	start   time.Time    // wall tracer: epoch of Now
	cur     atomic.Int64 // virtual tracer: cursor in ns, advanced by producers

	mu    sync.Mutex
	names []string
	ids   map[string]int64
}

// New creates a wall-clock tracer with the given number of tracks and
// per-track ring capacity (DefaultCapacity when capacity <= 0). Now reports
// monotonic nanoseconds since this call.
func New(tracks, capacity int) *Tracer {
	return newTracer(tracks, capacity, false)
}

// NewVirtual creates a virtual-time tracer: Now reports a cursor that
// producers (the simulator) advance by each invocation's modeled duration
// via Advance, so events from successive simulated runs share one timeline.
func NewVirtual(tracks, capacity int) *Tracer {
	return newTracer(tracks, capacity, true)
}

func newTracer(tracks, capacity int, virtual bool) *Tracer {
	if tracks < 1 {
		tracks = 1
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		bufs:    make([]*Buf, tracks),
		labels:  make([]string, tracks),
		virtual: virtual,
		start:   time.Now(),
		ids:     make(map[string]int64),
	}
	for i := range t.bufs {
		t.bufs[i] = &Buf{ev: make([]Event, capacity)}
		t.labels[i] = fmt.Sprintf("track %d", i)
	}
	return t
}

// Tracks returns the number of tracks (0 on a nil Tracer).
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.bufs)
}

// Virtual reports whether timestamps are virtual rather than wall time.
func (t *Tracer) Virtual() bool { return t != nil && t.virtual }

// Buf returns the ring of the given track, or nil when the tracer is nil or
// the track is out of range — the nil result is the disabled recorder.
func (t *Tracer) Buf(track int) *Buf {
	if t == nil || track < 0 || track >= len(t.bufs) {
		return nil
	}
	return t.bufs[track]
}

// Now returns the current timestamp in the tracer's clock domain:
// nanoseconds since New for a wall tracer, the virtual cursor for a virtual
// one. 0 on a nil Tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	if t.virtual {
		return t.cur.Load()
	}
	return time.Since(t.start).Nanoseconds()
}

// Advance moves the virtual cursor forward by ns nanoseconds. It panics on
// a wall-clock tracer: wall time advances itself. No-op on a nil Tracer.
func (t *Tracer) Advance(ns int64) {
	if t == nil {
		return
	}
	if !t.virtual {
		panic("trace: Advance on a wall-clock tracer")
	}
	t.cur.Add(ns)
}

// SetLabel names a track ("worker 3", "core 0", "caller", "harness") for
// exports and summaries. No-op on a nil Tracer or out-of-range track.
func (t *Tracer) SetLabel(track int, label string) {
	if t == nil || track < 0 || track >= len(t.labels) {
		return
	}
	t.labels[track] = label
}

// Label returns the track's label.
func (t *Tracer) Label(track int) string {
	if t == nil || track < 0 || track >= len(t.labels) {
		return ""
	}
	return t.labels[track]
}

// Labels returns a copy of all track labels.
func (t *Tracer) Labels() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.labels...)
}

// Intern maps a region name to a stable id for KindRegion events. The
// submission path takes a mutex; it runs once per region, never per event.
// Returns -1 on a nil Tracer.
func (t *Tracer) Intern(name string) int64 {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := int64(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// NameOf returns the region name interned as id, or "" when unknown.
func (t *Tracer) NameOf(id int64) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= int64(len(t.names)) {
		return ""
	}
	return t.names[id]
}

// Events returns a snapshot of a track's surviving events, oldest first.
func (t *Tracer) Events(track int) []Event { return t.Buf(track).Events() }

// TotalEvents returns the number of events recorded across all tracks,
// including evicted ones.
func (t *Tracer) TotalEvents() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, b := range t.bufs {
		n += b.Recorded()
	}
	return n
}

// Lost returns the number of evicted events across all tracks.
func (t *Tracer) Lost() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, b := range t.bufs {
		n += b.Lost()
	}
	return n
}

// Surviving returns how many events currently sit in the rings across all
// tracks (TotalEvents minus Lost).
func (t *Tracer) Surviving() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, b := range t.bufs {
		n += b.Len()
	}
	return n
}

// Capacity returns the total ring capacity across all tracks.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, b := range t.bufs {
		n += b.Cap()
	}
	return n
}

// EpochUnixNano returns the wall-clock UnixNano corresponding to the
// tracer's time zero, so externally stamped wall times (job lifecycle
// spans) can be rebased onto the tracer's timeline: tracerTime =
// unixNano - EpochUnixNano. Returns 0 for a virtual or nil tracer, whose
// timeline has no wall anchor.
func (t *Tracer) EpochUnixNano() int64 {
	if t == nil || t.virtual {
		return 0
	}
	return t.start.UnixNano()
}
