package trace

import (
	"bytes"
	"strings"
	"testing"
)

func buildTracer() *Tracer {
	tr := New(3, 64)
	tr.SetLabel(0, "worker 0")
	tr.SetLabel(1, "worker 1")
	tr.SetLabel(2, "harness")
	ms := int64(1e6)
	b0 := tr.Buf(0)
	b0.Span(KindChunk, 0, 2*ms, 0, 512)
	b0.Instant(KindSteal, 2*ms, 1, TierRemote)
	b0.Span(KindChunk, 3*ms, 4*ms, 512, 1024)
	b1 := tr.Buf(1)
	b1.Span(KindPark, 0, 1*ms, 0, 0)
	b1.Instant(KindWakeup, 1*ms, 1, 0)
	h := tr.Buf(2)
	h.Span(KindRegion, 0, 4*ms, tr.Intern("reduce/native/stealing/1024"), 0)
	h.Instant(KindIteration, 0, 0, 0)
	return tr
}

func TestChromeExportShape(t *testing.T) {
	tr := buildTracer()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"traceEvents"`, `"ph":"X"`, `"ph":"i"`, `"ph":"M"`,
		`"thread_name"`, `"worker 0"`, `"victim":1`, `"tier":"remote"`,
		`"reduce/native/stealing/1024"`, `"clock":"wall"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s in:\n%s", want, out)
		}
	}
	ct, err := ReadChrome(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ReadChrome: %v", err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := buildTracer()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Virtual() {
		t.Fatal("wall trace read back as virtual")
	}
	tracks, labels := ct.Tracks()
	if len(tracks) != 3 || labels[0] != "worker 0" || labels[2] != "harness" {
		t.Fatalf("tracks=%d labels=%v", len(tracks), labels)
	}
	// Events survive with kinds, args and timestamps intact.
	want := map[Kind]int{KindChunk: 2, KindSteal: 1}
	got := map[Kind]int{}
	for _, e := range tracks[0] {
		got[e.Kind]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("track 0 %v count = %d, want %d", k, got[k], n)
		}
	}
	var steal Event
	for _, e := range tracks[0] {
		if e.Kind == KindSteal {
			steal = e
		}
	}
	if steal.A0 != 1 || steal.A1 != TierRemote {
		t.Fatalf("steal round-trip: %+v", steal)
	}
	if len(tracks[1]) != 2 || tracks[1][0].Kind != KindPark || tracks[1][1].Kind != KindWakeup {
		t.Fatalf("track 1 round-trip: %+v", tracks[1])
	}
	if tracks[2][0].Kind != KindRegion {
		t.Fatalf("region not recovered: %+v", tracks[2][0])
	}
	// A summary over the parsed events matches one over the live tracer.
	live := Summarize(tr)
	parsed := SummarizeEvents(tracks, labels, ct.Virtual(), -1<<62, 1<<62)
	if live.Tracks[0].Chunks != parsed.Tracks[0].Chunks ||
		live.Tracks[0].RemoteSteals != parsed.Tracks[0].RemoteSteals {
		t.Fatalf("live %+v != parsed %+v", live.Tracks[0], parsed.Tracks[0])
	}
}

func TestChromeVirtualClockMarking(t *testing.T) {
	tr := NewVirtual(1, 16)
	tr.Buf(0).Span(KindChunk, 0, 1000, 0, 8)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Virtual() {
		t.Fatal("virtual trace not marked as virtual")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"name":"x","ph":"Z","pid":0,"tid":0,"ts":0}]}`,
		`{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":0,"dur":-5}]}`,
		`{"traceEvents":[{"name":"","ph":"X","pid":0,"tid":0,"ts":0}]}`,
		`{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0,"ts":0}]}`,
	}
	for i, c := range cases {
		ct, err := ReadChrome(strings.NewReader(c))
		if err != nil {
			t.Fatalf("case %d failed to parse: %v", i, err)
		}
		if err := ct.Validate(); err == nil {
			t.Fatalf("case %d passed validation: %s", i, c)
		}
	}
	if _, err := ReadChrome(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage parsed as a trace")
	}
}

func TestReadChromeArrayForm(t *testing.T) {
	ct, err := ReadChrome(strings.NewReader(
		`[{"name":"chunk","ph":"X","pid":0,"tid":0,"ts":1,"dur":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	tracks, _ := ct.Tracks()
	if len(tracks) != 1 || tracks[0][0].Kind != KindChunk {
		t.Fatalf("array form tracks: %+v", tracks)
	}
}
