package trace

import (
	"math"
	"testing"
)

// Edge behavior of the summarizer, pinned because the adaptive tuner
// consumes these numbers blind: no NaN/Inf may ever leak out of Dist or
// BusySeconds, empty inputs summarize to zeros, and degenerate windows
// keep nothing.

// assertFinite walks every float of a summary and rejects NaN/Inf.
func assertFinite(t *testing.T, s *Summary) {
	t.Helper()
	check := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v", name, v)
		}
	}
	checkDist := func(name string, d Dist) {
		check(name+".P50", d.P50)
		check(name+".P95", d.P95)
		check(name+".Max", d.Max)
	}
	check("Start", s.Start)
	check("End", s.End)
	checkDist("Chunk", s.Chunk)
	checkDist("StealToWork", s.StealToWork)
	for _, ts := range s.Tracks {
		check("track.BusySeconds", ts.BusySeconds)
		checkDist("track.Chunk", ts.Chunk)
		checkDist("track.StealToWork", ts.StealToWork)
	}
}

func TestSummarizeNilTracer(t *testing.T) {
	if s := Summarize(nil); s != nil {
		t.Fatalf("Summarize(nil) = %+v, want nil", s)
	}
	if s := SummarizeWindow(nil, 0, 100); s != nil {
		t.Fatalf("SummarizeWindow(nil) = %+v, want nil", s)
	}
}

func TestSummarizeEmptyTracks(t *testing.T) {
	tr := New(3, 16)
	s := Summarize(tr)
	if s.Events != 0 {
		t.Fatalf("empty tracer summarized %d events", s.Events)
	}
	if len(s.Tracks) != 3 {
		t.Fatalf("got %d tracks, want 3", len(s.Tracks))
	}
	for _, ts := range s.Tracks {
		if ts.Chunks != 0 || ts.BusySeconds != 0 {
			t.Fatalf("empty track has stats: %+v", ts)
		}
		if ts.Chunk.Count != 0 || ts.StealToWork.Count != 0 || ts.IdleGap.Total() != 0 {
			t.Fatalf("empty track has distributions: %+v", ts)
		}
	}
	if s.Chunk != (Dist{}) || s.StealToWork != (Dist{}) {
		t.Fatalf("empty tracer has aggregate dists: %+v / %+v", s.Chunk, s.StealToWork)
	}
	if s.Start != 0 || s.End != 0 {
		t.Fatalf("empty tracer window [%v, %v], want [0, 0]", s.Start, s.End)
	}
	assertFinite(t, s)
}

func TestSummarizeZeroSpanWindow(t *testing.T) {
	tr := New(2, 16)
	b := tr.Buf(0)
	ms := int64(1e6)
	b.Span(KindChunk, 1*ms, 2*ms, 0, 100)
	b.Instant(KindSteal, 3*ms, 0, TierRemote)
	// A window excluding every event keeps nothing and stays finite.
	s := SummarizeWindow(tr, 10*ms, 10*ms)
	if s.Events != 0 {
		t.Fatalf("zero-span window kept %d events", s.Events)
	}
	assertFinite(t, s)
	// A zero-span window sitting exactly on an instant keeps it.
	s = SummarizeWindow(tr, 3*ms, 3*ms)
	if s.Events != 1 || s.Tracks[0].RemoteSteals != 1 {
		t.Fatalf("instant at window edge: events=%d tracks[0]=%+v", s.Events, s.Tracks[0])
	}
	if s.Start != s.End {
		t.Fatalf("instant-only window [%v, %v], want zero span", s.Start, s.End)
	}
	assertFinite(t, s)
}

func TestSummarizeInstantsOnlyTrack(t *testing.T) {
	// A track with steals and parks but no chunk spans: the busy union of
	// zero spans is 0, steal-to-work finds no match, nothing divides by
	// the empty span set.
	tr := New(1, 16)
	b := tr.Buf(0)
	ms := int64(1e6)
	b.Instant(KindSteal, 1*ms, 0, TierLocal)
	b.Span(KindPark, 2*ms, 3*ms, 0, 0)
	s := Summarize(tr)
	ts := s.Tracks[0]
	if ts.BusySeconds != 0 {
		t.Fatalf("busy union of no chunk spans = %v, want 0", ts.BusySeconds)
	}
	if ts.LocalSteals != 1 || ts.Parks != 1 {
		t.Fatalf("instant counts lost: %+v", ts)
	}
	if ts.StealToWork.Count != 0 {
		t.Fatalf("steal matched a nonexistent chunk: %+v", ts.StealToWork)
	}
	assertFinite(t, s)
}

func TestBusyUnionEmpty(t *testing.T) {
	if got := busyUnion(nil); got != 0 {
		t.Fatalf("busyUnion(nil) = %v, want 0", got)
	}
	if got := busyUnion([]Event{}); got != 0 {
		t.Fatalf("busyUnion(empty) = %v, want 0", got)
	}
}

func TestMakeDistEmpty(t *testing.T) {
	if d := makeDist(nil); d != (Dist{}) {
		t.Fatalf("makeDist(nil) = %+v, want zero", d)
	}
}
