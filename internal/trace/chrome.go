package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export/import: the JSON object format understood by
// chrome://tracing and Perfetto (ui.perfetto.dev). Spans become complete
// ("X") events and instants become instant ("i") events, one thread (tid)
// per track, with thread_name metadata labelling workers/cores; timestamps
// are microseconds as the format requires. The top-level otherData block
// records the clock domain and lost-event count so a parsed file can be
// summarized like a live tracer.

// chromeEvent is one entry of the traceEvents array (both directions).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is a parsed Chrome trace-event file.
type ChromeTrace struct {
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	TraceEvents     []chromeEvent  `json:"traceEvents"`
}

// ExportEvent is one externally produced event for WriteChromeExtra:
// timestamps are nanoseconds in the tracer's clock domain (an instant when
// End == Start), with free-form args.
type ExportEvent struct {
	Name  string
	Start int64
	End   int64
	Args  map[string]any
}

// ExportTrack is one externally produced track (e.g. job lifecycle spans
// from internal/obs) appended after the tracer's own tracks.
type ExportTrack struct {
	Label  string
	Events []ExportEvent
}

// WriteChrome streams the tracer's events as Chrome trace-event JSON.
func WriteChrome(w io.Writer, t *Tracer) error {
	return WriteChromeExtra(w, t, nil)
}

// WriteChromeExtra streams the tracer's events plus extra tracks supplied
// by a higher layer. Extra tracks get tids after the tracer's own tracks
// (so, e.g., a "jobs" track renders above or below the worker tracks with
// its spans containing the chunks they own on the shared timeline).
func WriteChromeExtra(w io.Writer, t *Tracer, extra []ExportTrack) error {
	if t == nil {
		return fmt.Errorf("trace: WriteChrome on a nil tracer")
	}
	bw := bufio.NewWriter(w)
	clock := "wall"
	if t.Virtual() {
		clock = "virtual"
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":%q,\"lostEvents\":%d},\"traceEvents\":[",
		clock, t.Lost())
	first := true
	emit := func(e chromeEvent) error {
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.Write(raw)
		first = false
		return nil
	}
	if err := emit(chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": fmt.Sprintf("pstlbench (%s clock)", clock)},
	}); err != nil {
		return err
	}
	for ti := 0; ti < t.Tracks(); ti++ {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: ti,
			Args: map[string]any{"name": t.Label(ti)},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: ti,
			Args: map[string]any{"sort_index": ti},
		}); err != nil {
			return err
		}
		for _, e := range t.Events(ti) {
			if err := emit(t.chromeOf(e, ti)); err != nil {
				return err
			}
		}
	}
	for xi, tr := range extra {
		tid := t.Tracks() + xi
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": tr.Label},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"sort_index": tid},
		}); err != nil {
			return err
		}
		for _, e := range tr.Events {
			ce := chromeEvent{
				Name: e.Name, Pid: 0, Tid: tid,
				Ts: float64(e.Start) / 1e3, Args: e.Args,
			}
			if e.End > e.Start {
				ce.Ph = "X"
				ce.Dur = float64(e.End-e.Start) / 1e3
			} else {
				ce.Ph = "i"
				ce.S = "t"
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeOf converts one Event to its Chrome representation.
func (t *Tracer) chromeOf(e Event, tid int) chromeEvent {
	ce := chromeEvent{Pid: 0, Tid: tid, Ts: float64(e.Start) / 1e3, Name: e.Kind.String()}
	switch e.Kind {
	case KindChunk:
		ce.Args = map[string]any{"lo": e.A0, "hi": e.A1}
	case KindSteal:
		tier := "local"
		if e.A1 == TierRemote {
			tier = "remote"
		}
		ce.Args = map[string]any{"victim": e.A0, "tier": tier}
	case KindWakeup:
		ce.Args = map[string]any{"worker": e.A0}
	case KindRegion:
		if name := t.NameOf(e.A0); name != "" {
			ce.Name = name
		}
		ce.Args = map[string]any{"region": ce.Name}
	case KindIteration:
		ce.Args = map[string]any{"iteration": e.A0}
	}
	if e.End > e.Start {
		ce.Ph = "X"
		ce.Dur = float64(e.End-e.Start) / 1e3
	} else {
		ce.Ph = "i"
		ce.S = "t"
	}
	return ce
}

// ReadChrome parses a Chrome trace-event JSON file (as written by
// WriteChrome; the array-only form is also accepted).
func ReadChrome(r io.Reader) (*ChromeTrace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		// JSON array form: bare traceEvents.
		var evs []chromeEvent
		if aerr := json.Unmarshal(data, &evs); aerr != nil {
			return nil, fmt.Errorf("trace: not a Chrome trace file: %v", err)
		}
		ct = ChromeTrace{TraceEvents: evs}
	}
	return &ct, nil
}

// Validate checks the parsed file against the Chrome trace-event shape the
// suite emits: a non-empty event array, known phase letters, microsecond
// timestamps that are finite and non-negative relative durations, and scoped
// instants.
func (ct *ChromeTrace) Validate() error {
	if len(ct.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	for i, e := range ct.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative dur %v", i, e.Name, e.Dur)
			}
		case "i":
			if e.S == "" {
				return fmt.Errorf("trace: event %d (%s): instant without scope", i, e.Name)
			}
		case "M", "B", "E", "b", "e", "n", "C":
			// Metadata and other standard phases: accepted.
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if e.Tid < 0 {
			return fmt.Errorf("trace: event %d (%s): negative tid", i, e.Name)
		}
	}
	return nil
}

// Virtual reports whether the file was recorded in virtual time.
func (ct *ChromeTrace) Virtual() bool {
	clock, _ := ct.OtherData["clock"].(string)
	return clock == "virtual"
}

// LostEvents returns the ring-eviction count recorded in the file.
func (ct *ChromeTrace) LostEvents() uint64 {
	if v, ok := ct.OtherData["lostEvents"].(float64); ok && v > 0 {
		return uint64(v)
	}
	return 0
}

// Tracks reconstructs per-track event slices and labels from the parsed
// file, the inverse of WriteChrome (region names collapse to KindRegion
// spans; unknown event names are treated as regions).
func (ct *ChromeTrace) Tracks() (tracks [][]Event, labels []string) {
	maxTid := 0
	for _, e := range ct.TraceEvents {
		if e.Tid > maxTid {
			maxTid = e.Tid
		}
	}
	tracks = make([][]Event, maxTid+1)
	labels = make([]string, maxTid+1)
	for i := range labels {
		labels[i] = fmt.Sprintf("track %d", i)
	}
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				if name, ok := e.Args["name"].(string); ok {
					labels[e.Tid] = name
				}
			}
			continue
		}
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		ev := Event{Start: int64(e.Ts * 1e3), End: int64((e.Ts + e.Dur) * 1e3)}
		argInt := func(key string) int64 {
			if v, ok := e.Args[key].(float64); ok {
				return int64(v)
			}
			return 0
		}
		switch e.Name {
		case "chunk":
			ev.Kind = KindChunk
			ev.A0, ev.A1 = argInt("lo"), argInt("hi")
		case "steal":
			ev.Kind = KindSteal
			ev.A0 = argInt("victim")
			if tier, _ := e.Args["tier"].(string); tier == "remote" {
				ev.A1 = TierRemote
			}
		case "park":
			ev.Kind = KindPark
		case "wakeup":
			ev.Kind = KindWakeup
			ev.A0 = argInt("worker")
		case "iteration":
			ev.Kind = KindIteration
			ev.A0 = argInt("iteration")
		default:
			ev.Kind = KindRegion
		}
		tracks[e.Tid] = append(tracks[e.Tid], ev)
	}
	return tracks, labels
}
