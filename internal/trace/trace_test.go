package trace

import (
	"math"
	"sync"
	"testing"
)

func TestNilTracerAndBufAreDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Tracks() != 0 || tr.Now() != 0 || tr.Buf(0) != nil {
		t.Fatal("nil tracer not inert")
	}
	tr.Advance(5) // must not panic
	if Summarize(tr) != nil {
		t.Fatal("nil tracer summarized to non-nil")
	}
	var b *Buf
	b.Span(KindChunk, 0, 10, 0, 0)
	b.Instant(KindSteal, 0, 0, 0)
	if b.Events() != nil || b.Lost() != 0 || b.Recorded() != 0 {
		t.Fatal("nil buf not inert")
	}
}

func TestWallClockMonotonic(t *testing.T) {
	tr := New(1, 16)
	a := tr.Now()
	b := tr.Now()
	if a < 0 || b < a {
		t.Fatalf("wall clock not monotonic: %d then %d", a, b)
	}
}

func TestVirtualClockCursor(t *testing.T) {
	tr := NewVirtual(1, 16)
	if tr.Now() != 0 {
		t.Fatalf("virtual clock starts at %d, want 0", tr.Now())
	}
	tr.Advance(1500)
	tr.Advance(500)
	if tr.Now() != 2000 {
		t.Fatalf("virtual clock = %d, want 2000", tr.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance on wall tracer did not panic")
		}
	}()
	New(1, 16).Advance(1)
}

func TestRingOverflowCountsLostAndEvictsOldestFirst(t *testing.T) {
	tr := New(1, 8)
	b := tr.Buf(0)
	const total = 20
	for i := 0; i < total; i++ {
		b.Instant(KindIteration, int64(i), int64(i), 0)
	}
	if got, want := b.Lost(), uint64(total-8); got != want {
		t.Fatalf("Lost = %d, want %d", got, want)
	}
	if got, want := b.Recorded(), uint64(total); got != want {
		t.Fatalf("Recorded = %d, want %d", got, want)
	}
	evs := b.Events()
	if len(evs) != 8 {
		t.Fatalf("surviving events = %d, want 8", len(evs))
	}
	// Oldest-first eviction: survivors are the newest 8, in order.
	for i, e := range evs {
		if want := int64(total - 8 + i); e.A0 != want {
			t.Fatalf("event %d has A0 = %d, want %d (oldest-first order violated)", i, e.A0, want)
		}
	}
	if tr.Lost() != uint64(total-8) || tr.TotalEvents() != total {
		t.Fatalf("tracer totals: lost=%d events=%d", tr.Lost(), tr.TotalEvents())
	}
}

func TestEventsBelowCapacityInOrder(t *testing.T) {
	tr := New(2, 8)
	b := tr.Buf(1)
	b.Span(KindChunk, 10, 20, 0, 5)
	b.Span(KindChunk, 20, 30, 5, 9)
	evs := tr.Events(1)
	if len(evs) != 2 || evs[0].Start != 10 || evs[1].Start != 20 {
		t.Fatalf("events = %+v", evs)
	}
	if len(tr.Events(0)) != 0 {
		t.Fatal("track 0 should be empty")
	}
}

// TestConcurrentProducersWithDrainingExporter is the -race stress test of
// the satellite list: every worker track emits continuously while an
// exporter goroutine drains snapshots and summaries concurrently.
func TestConcurrentProducersWithDrainingExporter(t *testing.T) {
	const (
		workers   = 8
		perWorker = 5000
	)
	tr := New(workers, 1024)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Exporter: drain every track and summarize while producers run.
	var exp sync.WaitGroup
	exp.Add(1)
	go func() {
		defer exp.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < workers; i++ {
				_ = tr.Events(i)
				_ = tr.Lost()
			}
			_ = Summarize(tr)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := tr.Buf(w)
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					b.Span(KindChunk, int64(i), int64(i+2), 0, 10)
				case 1:
					b.Instant(KindSteal, int64(i), int64((w+1)%workers), TierRemote)
				default:
					b.Instant(KindWakeup, int64(i), int64(w), 0)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	exp.Wait()
	if got, want := tr.TotalEvents(), uint64(workers*perWorker); got != want {
		t.Fatalf("recorded %d events, want %d", got, want)
	}
	// Survivors + lost must account for every record.
	var kept uint64
	for i := 0; i < workers; i++ {
		kept += uint64(len(tr.Events(i)))
	}
	if kept+tr.Lost() != tr.TotalEvents() {
		t.Fatalf("kept %d + lost %d != recorded %d", kept, tr.Lost(), tr.TotalEvents())
	}
}

func TestInternNames(t *testing.T) {
	tr := New(1, 8)
	a := tr.Intern("reduce/native/stealing/1024")
	b := tr.Intern("sort/native/stealing/1024")
	if a == b {
		t.Fatal("distinct names interned to same id")
	}
	if tr.Intern("reduce/native/stealing/1024") != a {
		t.Fatal("re-interning changed the id")
	}
	if tr.NameOf(a) != "reduce/native/stealing/1024" || tr.NameOf(999) != "" {
		t.Fatalf("NameOf mismatch: %q", tr.NameOf(a))
	}
}

func TestSummarizeDistributions(t *testing.T) {
	tr := New(2, 64)
	tr.SetLabel(0, "worker 0")
	b := tr.Buf(0)
	// Three chunks of 1ms, 2ms, 10ms with 1ms idle gaps; one remote steal
	// 0.5ms before the second chunk starts.
	ms := int64(1e6)
	b.Span(KindChunk, 0, 1*ms, 0, 100)
	b.Instant(KindSteal, 1*ms+ms/2, 1, TierRemote)
	b.Span(KindChunk, 2*ms, 4*ms, 100, 200)
	b.Span(KindChunk, 5*ms, 15*ms, 200, 300)
	b.Span(KindPark, 15*ms, 16*ms, 0, 0)
	s := Summarize(tr)
	ts := s.Tracks[0]
	if ts.Label != "worker 0" || ts.Chunks != 3 || ts.RemoteSteals != 1 || ts.Parks != 1 {
		t.Fatalf("track stats: %+v", ts)
	}
	if ts.Chunk.Count != 3 || math.Abs(ts.Chunk.P50-2e-3) > 1e-9 || math.Abs(ts.Chunk.Max-10e-3) > 1e-9 {
		t.Fatalf("chunk dist: %+v", ts.Chunk)
	}
	if ts.StealToWork.Count != 1 || math.Abs(ts.StealToWork.P50-0.5e-3) > 1e-9 {
		t.Fatalf("steal-to-work dist: %+v", ts.StealToWork)
	}
	if math.Abs(ts.BusySeconds-13e-3) > 1e-9 {
		t.Fatalf("busy = %v, want 13ms", ts.BusySeconds)
	}
	if ts.IdleGap.Total() != 2 {
		t.Fatalf("idle gaps = %d, want 2 (%s)", ts.IdleGap.Total(), ts.IdleGap)
	}
	if s.Chunk.Count != 3 || s.Events != 5 {
		t.Fatalf("aggregate: %+v events=%d", s.Chunk, s.Events)
	}
}

func TestSummarizeWindowFilters(t *testing.T) {
	tr := New(1, 64)
	b := tr.Buf(0)
	b.Span(KindChunk, 0, 10, 0, 1)
	b.Span(KindChunk, 100, 110, 1, 2)
	b.Span(KindChunk, 200, 210, 2, 3)
	s := SummarizeWindow(tr, 50, 150)
	if s.Tracks[0].Chunks != 1 || s.Events != 1 {
		t.Fatalf("window kept %d chunks / %d events, want 1/1", s.Tracks[0].Chunks, s.Events)
	}
}

func TestBusyUnionMergesNestedSpans(t *testing.T) {
	tr := New(1, 16)
	b := tr.Buf(0)
	// A thunk span [0, 10ms] wrapping two inner chunk spans (helping).
	ms := int64(1e6)
	b.Span(KindChunk, 0, 10*ms, -1, 0)
	b.Span(KindChunk, 1*ms, 3*ms, 0, 50)
	b.Span(KindChunk, 4*ms, 6*ms, 50, 100)
	s := Summarize(tr)
	if got := s.Tracks[0].BusySeconds; math.Abs(got-10e-3) > 1e-9 {
		t.Fatalf("busy union = %v, want 10ms (nested spans double-counted)", got)
	}
	if s.Tracks[0].IdleGap.Total() != 0 {
		t.Fatal("nested spans produced phantom idle gaps")
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, s := range []float64{0.5e-6, 5e-6, 50e-6, 0.5e-3, 5e-3, 50e-3} {
		h.Observe(s)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d = %d, want 1 (%s)", i, c, h)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
}
