package trace

import "testing"

// TestRingOccupancyAccessors covers the observability accessors: Len/Cap
// per ring, Surviving/Capacity across the tracer, and their behavior when
// a small ring overflows (drops counted, occupancy pinned at full).
func TestRingOccupancyAccessors(t *testing.T) {
	tr := New(2, 4)
	if got := tr.Capacity(); got != 8 {
		t.Fatalf("capacity = %d, want 2 tracks x 4", got)
	}
	b := tr.Buf(0)
	if b.Len() != 0 || b.Cap() != 4 {
		t.Fatalf("fresh ring len/cap = %d/%d, want 0/4", b.Len(), b.Cap())
	}
	for i := int64(0); i < 10; i++ {
		b.Span(KindChunk, i, i+1, 0, 0)
	}
	if got := b.Len(); got != 4 {
		t.Fatalf("overflowed ring len = %d, want 4", got)
	}
	if got := tr.Surviving(); got != 4 {
		t.Fatalf("surviving = %d, want 4 (track 1 untouched)", got)
	}
	if got := tr.Lost(); got != 6 {
		t.Fatalf("lost = %d, want 6", got)
	}
	if got := tr.TotalEvents(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
}

func TestEpochUnixNano(t *testing.T) {
	if got := New(1, 4).EpochUnixNano(); got == 0 {
		t.Fatal("wall tracer epoch = 0, want its start time")
	}
	if got := NewVirtual(1, 4).EpochUnixNano(); got != 0 {
		t.Fatalf("virtual tracer epoch = %d, want 0", got)
	}
	var nilT *Tracer
	if got := nilT.EpochUnixNano(); got != 0 {
		t.Fatalf("nil tracer epoch = %d, want 0", got)
	}
}
