package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist is a latency distribution derived from the event stream.
type Dist struct {
	Count         int
	P50, P95, Max float64 // seconds
}

func (d Dist) String() string {
	if d.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s/%s", fmtSeconds(d.P50), fmtSeconds(d.P95), fmtSeconds(d.Max))
}

// histBounds are the idle-gap histogram bucket upper bounds in seconds; the
// last bucket is unbounded.
var histBounds = [...]float64{1e-6, 10e-6, 100e-6, 1e-3, 10e-3}

// histLabels label the buckets for rendering.
var histLabels = [...]string{"<1us", "<10us", "<100us", "<1ms", "<10ms", ">=10ms"}

// Hist is a logarithmic duration histogram (idle gaps between chunk spans).
type Hist struct {
	Counts [len(histBounds) + 1]int
}

// Observe adds one duration sample (seconds).
func (h *Hist) Observe(sec float64) {
	for i, b := range histBounds {
		if sec < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(histBounds)]++
}

// Add accumulates o into h.
func (h *Hist) Add(o Hist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
}

// Total returns the sample count.
func (h Hist) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// String renders the non-empty buckets ("<1us:12 <10us:3").
func (h Hist) String() string {
	var parts []string
	for i, c := range h.Counts {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", histLabels[i], c))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// TrackStats are the per-worker (or per-core) statistics of one track.
type TrackStats struct {
	Track int
	Label string

	Chunks       int
	LocalSteals  int
	RemoteSteals int
	Parks        int
	Wakeups      int

	// BusySeconds is the union length of the track's chunk spans (nested
	// spans from helping are not double-counted).
	BusySeconds float64
	// Chunk is the chunk-execution latency distribution.
	Chunk Dist
	// StealToWork measures steal instant -> start of the next chunk span
	// on the same track: how long stolen work waits before running.
	StealToWork Dist
	// IdleGap is the histogram of gaps between consecutive busy intervals.
	IdleGap Hist
}

// Summary aggregates distributions over a trace, per track and overall —
// the per-worker view the adaptive-grain tuner and the report tables
// consume.
type Summary struct {
	// Virtual marks virtual-time (simulated) traces.
	Virtual bool
	// Start and End bound the summarized events, in seconds.
	Start, End float64
	// Events counts summarized events; Lost counts ring evictions (filled
	// from the tracer; 0 when summarizing parsed files without metadata).
	Events uint64
	Lost   uint64

	Tracks []TrackStats

	// Aggregates across every track.
	Chunk       Dist
	StealToWork Dist
	IdleGap     Hist
}

// Summarize derives distributions from every event currently held by the
// tracer. Nil tracers summarize to nil.
func Summarize(t *Tracer) *Summary {
	return SummarizeWindow(t, math.MinInt64, math.MaxInt64)
}

// SummarizeWindow summarizes only events lying fully inside [from, to]
// (nanoseconds in the tracer's clock domain) — used to attribute events to
// one measured region.
func SummarizeWindow(t *Tracer, from, to int64) *Summary {
	if t == nil {
		return nil
	}
	tracks := make([][]Event, t.Tracks())
	for i := range tracks {
		tracks[i] = t.Events(i)
	}
	s := SummarizeEvents(tracks, t.Labels(), t.Virtual(), from, to)
	s.Lost = t.Lost()
	return s
}

// SummarizeEvents summarizes explicit per-track event slices (as produced
// by Tracer.Events or parsed back from a Chrome trace file).
func SummarizeEvents(tracks [][]Event, labels []string, virtual bool, from, to int64) *Summary {
	s := &Summary{Virtual: virtual}
	tmin, tmax := int64(math.MaxInt64), int64(math.MinInt64)
	var allChunks, allSteal []float64
	for ti, evs := range tracks {
		ts := TrackStats{Track: ti}
		if ti < len(labels) {
			ts.Label = labels[ti]
		}
		var chunkDur, stealLat []float64
		var spans []Event   // chunk spans, for busy union and idle gaps
		var stealAt []int64 // steal instants
		var chunkStart []int64
		for _, e := range evs {
			if e.Start < from || e.End > to {
				continue
			}
			s.Events++
			if e.Start < tmin {
				tmin = e.Start
			}
			if e.End > tmax {
				tmax = e.End
			}
			switch e.Kind {
			case KindChunk:
				ts.Chunks++
				chunkDur = append(chunkDur, e.Duration())
				spans = append(spans, e)
				chunkStart = append(chunkStart, e.Start)
			case KindSteal:
				if e.A1 == TierRemote {
					ts.RemoteSteals++
				} else {
					ts.LocalSteals++
				}
				stealAt = append(stealAt, e.Start)
			case KindPark:
				ts.Parks++
			case KindWakeup:
				ts.Wakeups++
			}
		}
		// Steal-to-work latency: each steal matched with the first chunk
		// span starting at or after it.
		sort.Slice(chunkStart, func(i, j int) bool { return chunkStart[i] < chunkStart[j] })
		for _, at := range stealAt {
			k := sort.Search(len(chunkStart), func(i int) bool { return chunkStart[i] >= at })
			if k < len(chunkStart) {
				stealLat = append(stealLat, float64(chunkStart[k]-at)*1e-9)
			}
		}
		// Busy union and idle gaps over merged chunk intervals (nested
		// spans from helping overlap; merging avoids double counting).
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		var busyEnd int64
		started := false
		for _, e := range spans {
			if !started {
				busyEnd, started = e.End, true
				continue
			}
			if e.Start > busyEnd {
				ts.IdleGap.Observe(float64(e.Start-busyEnd) * 1e-9)
				busyEnd = e.End
				continue
			}
			if e.End > busyEnd {
				busyEnd = e.End
			}
		}
		ts.BusySeconds = busyUnion(spans)
		ts.Chunk = makeDist(chunkDur)
		ts.StealToWork = makeDist(stealLat)
		allChunks = append(allChunks, chunkDur...)
		allSteal = append(allSteal, stealLat...)
		s.IdleGap.Add(ts.IdleGap)
		s.Tracks = append(s.Tracks, ts)
	}
	if tmin <= tmax {
		s.Start = float64(tmin) * 1e-9
		s.End = float64(tmax) * 1e-9
	}
	s.Chunk = makeDist(allChunks)
	s.StealToWork = makeDist(allSteal)
	return s
}

// busyUnion returns the union length in seconds of spans sorted by Start.
func busyUnion(spans []Event) float64 {
	var total int64
	var curLo, curHi int64
	started := false
	for _, e := range spans {
		if !started {
			curLo, curHi, started = e.Start, e.End, true
			continue
		}
		if e.Start > curHi {
			total += curHi - curLo
			curLo, curHi = e.Start, e.End
			continue
		}
		if e.End > curHi {
			curHi = e.End
		}
	}
	if started {
		total += curHi - curLo
	}
	return float64(total) * 1e-9
}

// makeDist computes the percentile summary of samples (seconds).
func makeDist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sort.Float64s(xs)
	pick := func(q float64) float64 { return xs[int(q*float64(len(xs)-1)+0.5)] }
	return Dist{
		Count: len(xs),
		P50:   pick(0.50),
		P95:   pick(0.95),
		Max:   xs[len(xs)-1],
	}
}

// fmtSeconds formats a duration compactly for summaries.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3gs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3gus", s*1e6)
	default:
		return fmt.Sprintf("%.3gns", s*1e9)
	}
}
