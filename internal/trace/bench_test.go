package trace

import "testing"

// disabledBuf is a package-level nil *Buf so the compiler cannot prove the
// receiver nil and fold the calls away.
var disabledBuf *Buf

// BenchmarkTraceDisabled guards the acceptance bound of the tracing layer:
// with tracing off (nil buffer), an instrumented call site costs one inlined
// pointer check — at most ~1 ns/event.
func BenchmarkTraceDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledBuf.Span(KindChunk, int64(i), int64(i+1), 0, 512)
	}
}

func BenchmarkTraceDisabledInstant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledBuf.Instant(KindSteal, int64(i), 3, TierRemote)
	}
}

func BenchmarkTraceEnabledSpan(b *testing.B) {
	tr := New(1, DefaultCapacity)
	buf := tr.Buf(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Span(KindChunk, int64(i), int64(i+1), 0, 512)
	}
}

// TestRecordPathAllocFree guards the second acceptance bound: the enabled
// record path performs zero heap allocations.
func TestRecordPathAllocFree(t *testing.T) {
	tr := New(1, 256)
	buf := tr.Buf(0)
	n := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		buf.Span(KindChunk, n, n+10, 0, 64)
		buf.Instant(KindSteal, n+10, 1, TierLocal)
		n += 10
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v per run, want 0", allocs)
	}
}
