package tune_test

// Deterministic convergence tests on simulated machines: the acceptance
// bar of the adaptive-grain issue. The discrete-event simulator gives a
// noiseless landscape, so the tuner must reach — within 8 repeated
// invocations — a grain whose throughput is within 10% of the best fixed
// grain found by exhaustively sweeping the power-of-two chunk ladder.
//
// GCC-HPX is the backend under test because its cost sheet has the
// strongest grain sensitivity (high per-task spawn and central-queue pop
// costs), mirroring the paper's observation that HPX's fine decomposition
// only amortizes at the right grain.

import (
	"fmt"
	"testing"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/tune"
)

// simRun executes one simulated invocation with an explicit grain.
func simRun(m *machine.Machine, b *backend.Backend, op backend.Op, n int64, threads int, g exec.Grain) simexec.Result {
	bb := *b
	bb.Grain = g
	return simexec.Run(simexec.Config{
		Machine: m, Backend: &bb,
		Workload: skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.5},
		Threads:  threads, Alloc: allocsim.FirstTouch,
	})
}

// chunkLadder returns the power-of-two chunk sizes from one-chunk-per-worker
// down to points points.
func chunkLadder(n int64, threads, points int) []int {
	c := int((n + int64(threads) - 1) / int64(threads))
	var out []int
	for i := 0; i < points && c >= 1; i++ {
		out = append(out, c)
		c /= 2
	}
	return out
}

func TestConvergesWithinTenPercentOfSweep(t *testing.T) {
	const maxInvocations = 8
	machines := []*machine.Machine{machine.MachA(), machine.MachB()}
	ops := []backend.Op{backend.OpForEach, backend.OpReduce}
	sizes := []int64{1 << 16, 1 << 18}
	for _, m := range machines {
		for _, op := range ops {
			for _, n := range sizes {
				name := fmt.Sprintf("%s/%v/n=%d", m.Name, op, n)
				t.Run(name, func(t *testing.T) {
					b := backend.GCCHPX()
					threads := m.Cores

					// Exhaustive fixed-grain sweep over the ladder.
					bestTp := 0.0
					bestChunk := 0
					for _, c := range chunkLadder(n, threads, 6) {
						r := simRun(m, b, op, n, threads, exec.Grain{MinChunk: c, MaxChunk: c})
						if tp := float64(n) / r.Seconds; tp > bestTp {
							bestTp, bestChunk = tp, c
						}
					}
					if bestTp <= 0 {
						t.Fatal("sweep produced no throughput")
					}

					// Adaptive: repeated invocations of the same loop site.
					tn := tune.New(tune.Options{})
					k := tune.Key{Site: name, N: int(n), Workers: threads}
					for i := 0; i < maxInvocations; i++ {
						g := tn.Propose(k)
						r := simRun(m, b, op, n, threads, g)
						obs := tune.FromCounters(r.Counters)
						obs.Seconds = r.Seconds
						tn.Observe(k, obs)
					}

					g := tn.Propose(k)
					r := simRun(m, b, op, n, threads, g)
					tp := float64(n) / r.Seconds
					if tp < 0.9*bestTp {
						t.Errorf("converged grain %+v reaches %.3g items/s, below 90%% of best fixed (chunk=%d, %.3g items/s)",
							g, tp, bestChunk, bestTp)
					}
					if !tn.Converged(k) {
						t.Errorf("tuner not converged after %d invocations", maxInvocations)
					}
				})
			}
		}
	}
}
