package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// cacheVersion is the tuning-cache format version.
const cacheVersion = 1

// CacheEntry is one tuned operating point in the JSON cache.
type CacheEntry struct {
	Site        string  `json:"site"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Chunk       int     `json:"chunk"`
	Converged   bool    `json:"converged"`
	ItemsPerSec float64 `json:"items_per_sec,omitempty"`
	Trials      int     `json:"trials,omitempty"`
}

// Cache is the JSON-serializable tuning state: the converged (or
// in-progress) chunk size per key, for warm-starting a later run.
type Cache struct {
	Version int          `json:"version"`
	Entries []CacheEntry `json:"entries"`
}

// Export snapshots the tuner state into a Cache, entries sorted by key.
func (t *Tuner) Export() Cache {
	keys := t.Keys()
	c := Cache{Version: cacheVersion, Entries: make([]CacheEntry, 0, len(keys))}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		s := t.st[k]
		if s == nil || s.trials == 0 {
			continue
		}
		c.Entries = append(c.Entries, CacheEntry{
			Site:        k.Site,
			N:           k.N,
			Workers:     k.Workers,
			Chunk:       s.best,
			Converged:   s.locked,
			ItemsPerSec: s.bestTp,
			Trials:      s.trials,
		})
	}
	return c
}

// Import warm-starts the tuner from a cache: each valid entry seeds the
// key's operating point at the cached chunk, locked if it had converged.
// Entries for keys that already have live state are ignored (live
// observations outrank a stale cache). Returns the number of entries
// applied.
func (t *Tuner) Import(c Cache) (int, error) {
	if c.Version != cacheVersion {
		return 0, fmt.Errorf("tune: cache version %d, want %d", c.Version, cacheVersion)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	applied := 0
	for _, e := range c.Entries {
		if e.Site == "" || e.N <= 0 || e.Workers <= 0 || e.Chunk < 1 {
			continue
		}
		k := Key{Site: e.Site, N: e.N, Workers: e.Workers}
		if _, live := t.st[k]; live {
			continue
		}
		chunk := t.clamp(k, e.Chunk)
		s := &state{
			cur:     chunk,
			dir:     +1,
			best:    chunk,
			bestTp:  e.ItemsPerSec,
			prevTp:  e.ItemsPerSec,
			trials:  e.Trials,
			locked:  e.Converged,
			tried:   map[int]float64{chunk: e.ItemsPerSec},
			regions: make(map[int]string),
			keyStr:  k.String(),
		}
		if s.trials == 0 {
			s.trials = 1
		}
		t.st[k] = s
		applied++
	}
	return applied, nil
}

// WriteJSON writes the exported cache as indented JSON.
func (t *Tuner) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Export())
}

// ReadJSON decodes a cache from JSON.
func ReadJSON(r io.Reader) (Cache, error) {
	var c Cache
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return Cache{}, fmt.Errorf("tune: decoding cache: %w", err)
	}
	return c, nil
}

// SaveFile writes the tuning cache to path.
func (t *Tuner) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tune: writing cache: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile warm-starts the tuner from the cache at path. A missing file is
// not an error (cold start); a malformed one is. Returns the number of
// entries applied.
func (t *Tuner) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("tune: reading cache: %w", err)
	}
	defer f.Close()
	c, err := ReadJSON(f)
	if err != nil {
		return 0, err
	}
	return t.Import(c)
}
