package tune

import (
	"pstlbench/internal/counters"
	"pstlbench/internal/trace"
)

// Observation is the telemetry of one loop invocation, the controller's
// input. Two sources produce it:
//
//   - FromCounters builds one from a counters.Set delta — the native
//     pool's SchedStats or the simulator's modeled scheduler counters —
//     carrying the steal/park/spin mix but no latency shape;
//   - FromSummary builds one from a trace.Summary window, which adds the
//     chunk-latency percentiles, steal-to-work latency, and the idle-gap
//     mass that drives refinement.
type Observation struct {
	// Seconds is the invocation's duration (wall or virtual). Observations
	// with Seconds <= 0 are discarded by Observe.
	Seconds float64

	// Scheduler counters attributed to this invocation.
	LocalSteals  float64
	RemoteSteals float64
	Parks        float64
	Wakeups      float64
	EmptySpins   float64

	// HasTrace marks observations whose latency fields below are valid.
	HasTrace bool
	// ChunkP50 and ChunkP95 are chunk-execution latency percentiles in
	// seconds: the dispatch-cost-vs-latency signal.
	ChunkP50, ChunkP95 float64
	// StealToWorkP50 is the median delay between a steal and the stolen
	// work starting, in seconds.
	StealToWorkP50 float64
	// IdleFrac is the idle-gap mass: the fraction of the summarized window
	// the active workers spent outside chunk spans, in [0, 1].
	IdleFrac float64
}

// FromCounters builds an Observation from a counter-set delta. The set's
// Seconds field becomes the observation duration (leave it zero and fill
// Seconds separately when timing comes from elsewhere).
func FromCounters(c counters.Set) Observation {
	return Observation{
		Seconds:      c.Seconds,
		LocalSteals:  c.LocalSteals,
		RemoteSteals: c.RemoteSteals,
		Parks:        c.Parks,
		Wakeups:      c.Wakeups,
		EmptySpins:   c.EmptySpins,
	}
}

// FromSummary builds an Observation from a trace summary window. The
// summary carries no invocation duration of its own, so the caller passes
// seconds (the window span End-Start is used when seconds <= 0).
func FromSummary(s *trace.Summary, seconds float64) Observation {
	o := Observation{Seconds: seconds}
	if s == nil {
		return o
	}
	if o.Seconds <= 0 {
		o.Seconds = s.End - s.Start
	}
	for _, ts := range s.Tracks {
		o.LocalSteals += float64(ts.LocalSteals)
		o.RemoteSteals += float64(ts.RemoteSteals)
		o.Parks += float64(ts.Parks)
		o.Wakeups += float64(ts.Wakeups)
	}
	o.HasTrace = true
	o.ChunkP50 = s.Chunk.P50
	o.ChunkP95 = s.Chunk.P95
	o.StealToWorkP50 = s.StealToWork.P50
	o.IdleFrac = idleFrac(s)
	return o
}

// idleFrac computes the idle-gap mass of a summary: one minus the busy
// fraction of the window, averaged over the tracks that executed at least
// one chunk. Empty summaries and zero-span windows yield 0.
func idleFrac(s *trace.Summary) float64 {
	span := s.End - s.Start
	if span <= 0 {
		return 0
	}
	var busy float64
	active := 0
	for _, ts := range s.Tracks {
		if ts.Chunks == 0 {
			continue
		}
		busy += ts.BusySeconds
		active++
	}
	if active == 0 {
		return 0
	}
	f := 1 - busy/(span*float64(active))
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ObserveSummary enriches the controller state of k with the idle-gap mass
// of a trace summary without advancing the climb: the next counter-only
// Observe for k sees the trace's idle fraction as if it were its own. Use
// it when tracing is windowed per attempt (the harness summarizes only the
// final attempt) so trace signals still reach the tuner.
func (t *Tuner) ObserveSummary(k Key, s *trace.Summary) {
	if s == nil || k.N <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.lookup(k)
	st.pendingIdleFrac = idleFrac(s)
	st.hasPending = true
}
