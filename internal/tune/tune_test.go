package tune_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/trace"
	"pstlbench/internal/tune"
)

// The tuner's Source must plug into core.Policy without adaptation.
var _ core.GrainSource = tune.Source{}

// chunkOf returns the uniform chunk size of a tuner-proposed grain.
func chunkOf(t *testing.T, g exec.Grain) int {
	t.Helper()
	if g.MinChunk != g.MaxChunk || g.MinChunk < 1 {
		t.Fatalf("proposed grain is not a uniform chunk: %+v", g)
	}
	return g.MinChunk
}

func TestProposeStartsAtAuto(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	g := tn.Propose(k)
	want := exec.Auto.ChunkCount(k.N, k.Workers)
	if got := g.ChunkCount(k.N, k.Workers); got != want {
		t.Fatalf("first proposal yields %d chunks, want auto's %d", got, want)
	}
	if tn.Converged(k) {
		t.Fatal("converged before any observation")
	}
}

func TestProposeDegenerateKeys(t *testing.T) {
	tn := tune.New(tune.Options{})
	if g := tn.Propose(tune.Key{Site: "x", N: 0, Workers: 8}); g != exec.Auto {
		t.Fatalf("n=0 proposal = %+v, want exec.Auto", g)
	}
	// workers > n: the proposal must still tile [0, n).
	k := tune.Key{Site: "x", N: 3, Workers: 64}
	g := tn.Propose(k)
	checkTiling(t, g, k.N, k.Workers)
}

func TestCoarsensOnRemoteSteals(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	secs := 1.0
	prev := chunkOf(t, tn.Propose(k))
	for i := 0; i < 4; i++ {
		tn.Observe(k, tune.Observation{
			Seconds: secs, LocalSteals: 10, RemoteSteals: 100,
		})
		cur := chunkOf(t, tn.Propose(k))
		if cur < prev {
			t.Fatalf("step %d: refined %d -> %d under remote-steal pressure", i, prev, cur)
		}
		prev = cur
		secs *= 0.8 // coarser keeps paying off
	}
	if prev <= 1<<16/(8*4) {
		t.Fatalf("never coarsened past auto: chunk=%d", prev)
	}
}

func TestRefinesOnIdleGapMass(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "reduce", N: 1 << 16, Workers: 8}
	secs := 1.0
	prev := chunkOf(t, tn.Propose(k))
	for i := 0; i < 3; i++ {
		tn.Observe(k, tune.Observation{
			Seconds: secs, HasTrace: true, IdleFrac: 0.5,
		})
		cur := chunkOf(t, tn.Propose(k))
		if cur > prev {
			t.Fatalf("step %d: coarsened %d -> %d under idle-gap pressure", i, prev, cur)
		}
		prev = cur
		secs *= 0.8
	}
	if prev >= 1<<16/(8*4) {
		t.Fatalf("never refined below auto: chunk=%d", prev)
	}
}

func TestObserveSummaryFeedsIdleIntoCounterObservations(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "scan", N: 1 << 16, Workers: 8}
	start := chunkOf(t, tn.Propose(k))
	// A trace summary showing 60% idle, then a counter-only observation:
	// the pending idle fraction must force refinement.
	tn.ObserveSummary(k, &trace.Summary{
		Start: 0, End: 1,
		Tracks: []trace.TrackStats{{Chunks: 4, BusySeconds: 0.4}},
	})
	tn.Observe(k, tune.Observation{Seconds: 1.0})
	if cur := chunkOf(t, tn.Propose(k)); cur >= start {
		t.Fatalf("chunk %d -> %d: trace idle mass did not refine", start, cur)
	}
}

func TestReversalLocksAtBest(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	// Improving, improving, then worse: the climb must turn around once
	// and settle on the best-seen operating point.
	for _, secs := range []float64{1.0, 0.7, 0.9} {
		tn.Propose(k)
		tn.Observe(k, tune.Observation{Seconds: secs})
	}
	if !tn.Converged(k) {
		t.Fatal("not converged after a reversal into explored ground")
	}
	best, _, ok := tn.Best(k)
	if !ok {
		t.Fatal("no best point recorded")
	}
	if cur := chunkOf(t, tn.Propose(k)); cur != best {
		t.Fatalf("locked proposal %d != best %d", cur, best)
	}
}

func TestPlateauLocks(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	tn.Propose(k)
	tn.Observe(k, tune.Observation{Seconds: 1.0})
	tn.Propose(k)
	tn.Observe(k, tune.Observation{Seconds: 1.0})
	if !tn.Converged(k) {
		t.Fatal("flat landscape did not lock")
	}
}

func TestDriftReopensAfterLock(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	for _, secs := range []float64{1.0, 0.7, 0.9} {
		tn.Propose(k)
		tn.Observe(k, tune.Observation{Seconds: secs})
	}
	if !tn.Converged(k) {
		t.Fatal("setup: not converged")
	}
	// Two consecutive observations far below the locked throughput reopen
	// the climb.
	tn.Observe(k, tune.Observation{Seconds: 5.0})
	tn.Observe(k, tune.Observation{Seconds: 5.0})
	if tn.Converged(k) {
		t.Fatal("drifted landscape stayed locked")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	tn := tune.New(tune.Options{})
	k := tune.Key{Site: "for_each", N: 1 << 16, Workers: 8}
	for _, secs := range []float64{1.0, 0.7, 0.9} {
		tn.Propose(k)
		tn.Observe(k, tune.Observation{Seconds: secs})
	}
	wantChunk := chunkOf(t, tn.Propose(k))

	var buf bytes.Buffer
	if err := tn.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	c, err := tune.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(c.Entries) != 1 || !c.Entries[0].Converged {
		t.Fatalf("cache = %+v, want one converged entry", c)
	}

	warm := tune.New(tune.Options{})
	applied, err := warm.Import(c)
	if err != nil || applied != 1 {
		t.Fatalf("Import applied %d entries, err %v", applied, err)
	}
	if got := chunkOf(t, warm.Propose(k)); got != wantChunk {
		t.Fatalf("warm-started proposal %d, want %d", got, wantChunk)
	}
	if !warm.Converged(k) {
		t.Fatal("warm start dropped convergence")
	}
}

func TestImportRejectsWrongVersion(t *testing.T) {
	tn := tune.New(tune.Options{})
	if _, err := tn.Import(tune.Cache{Version: 99}); err == nil {
		t.Fatal("version 99 accepted")
	}
}

// TestProposalsAlwaysTile drives the tuner with pseudo-random observations
// and asserts every proposed grain tiles [0, n) exactly once — the tuner
// must never hand algorithms an overlapping or lossy decomposition.
func TestProposalsAlwaysTile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tn := tune.New(tune.Options{})
	for trial := 0; trial < 200; trial++ {
		k := tune.Key{
			Site:    "prop",
			N:       1 + rng.Intn(100000),
			Workers: 1 + rng.Intn(128),
		}
		for i := 0; i < 6; i++ {
			g := tn.Propose(k)
			checkTiling(t, g, k.N, k.Workers)
			o := tune.Observation{
				Seconds:      0.1 + rng.Float64(),
				LocalSteals:  float64(rng.Intn(100)),
				RemoteSteals: float64(rng.Intn(100)),
			}
			if rng.Intn(2) == 0 {
				o.HasTrace = true
				o.IdleFrac = rng.Float64()
			}
			tn.Observe(k, o)
		}
	}
}

// checkTiling asserts the grain's chunk decomposition covers [0, n)
// contiguously with no overlap.
func checkTiling(t *testing.T, g exec.Grain, n, workers int) {
	t.Helper()
	chunks := g.ChunkCount(n, workers)
	if n == 0 {
		if chunks != 0 {
			t.Fatalf("n=0: ChunkCount=%d, want 0", chunks)
		}
		return
	}
	if chunks < 1 {
		t.Fatalf("n=%d w=%d grain %+v: ChunkCount=%d", n, workers, g, chunks)
	}
	pos := 0
	for ci := 0; ci < chunks; ci++ {
		r := g.ChunkAt(ci, n, workers)
		if r.Lo != pos {
			t.Fatalf("n=%d w=%d grain %+v: chunk %d starts at %d, want %d", n, workers, g, ci, r.Lo, pos)
		}
		if r.Hi <= r.Lo {
			t.Fatalf("n=%d w=%d grain %+v: chunk %d empty [%d,%d)", n, workers, g, ci, r.Lo, r.Hi)
		}
		pos = r.Hi
	}
	if pos != n {
		t.Fatalf("n=%d w=%d grain %+v: tiling ends at %d", n, workers, g, pos)
	}
}

func TestFromSummary(t *testing.T) {
	s := &trace.Summary{
		Start: 0, End: 2,
		Tracks: []trace.TrackStats{
			{Chunks: 4, BusySeconds: 1.0, LocalSteals: 2, RemoteSteals: 3, Parks: 1},
			{Chunks: 0}, // idle track: excluded from the idle mass
		},
		Chunk:       trace.Dist{Count: 4, P50: 0.1, P95: 0.2, Max: 0.3},
		StealToWork: trace.Dist{Count: 5, P50: 0.01},
	}
	o := tune.FromSummary(s, 2.0)
	if !o.HasTrace {
		t.Fatal("HasTrace not set")
	}
	if o.LocalSteals != 2 || o.RemoteSteals != 3 || o.Parks != 1 {
		t.Fatalf("steal counters not summed: %+v", o)
	}
	if o.ChunkP50 != 0.1 || o.ChunkP95 != 0.2 || o.StealToWorkP50 != 0.01 {
		t.Fatalf("latency fields not copied: %+v", o)
	}
	if o.IdleFrac != 0.5 {
		t.Fatalf("IdleFrac = %v, want 0.5", o.IdleFrac)
	}
	// Zero-span summaries must not divide by zero.
	if o := tune.FromSummary(&trace.Summary{}, 1.0); o.IdleFrac != 0 {
		t.Fatalf("zero-span IdleFrac = %v, want 0", o.IdleFrac)
	}
}

func TestSourceKeysBySize(t *testing.T) {
	tn := tune.New(tune.Options{})
	src := tn.Site("for_each")
	g1 := src.Grain(1<<16, 8)
	checkTiling(t, g1, 1<<16, 8)
	// Observing one size must not disturb another.
	tn.Observe(tune.Key{Site: "for_each", N: 1 << 16, Workers: 8},
		tune.Observation{Seconds: 1, RemoteSteals: 100, LocalSteals: 1})
	g2 := src.Grain(1<<10, 8)
	want := exec.Auto.ChunkCount(1<<10, 8)
	if got := g2.ChunkCount(1<<10, 8); got != want {
		t.Fatalf("fresh size starts with %d chunks, want auto's %d", got, want)
	}
}

// syntheticLandscape models a loop whose optimal chunk scales with n
// (optimum at n/8, above the exec.Auto start so the default coarsening
// probe is the right direction): seconds grow with the ladder distance
// from the optimum, deterministically, so climbs are reproducible.
func syntheticLandscape(n, chunk int) float64 {
	opt := float64(n) / 8
	d := math.Abs(math.Log2(float64(chunk)) - math.Log2(opt))
	return 1e-3 * (1 + 0.25*d)
}

// driveToLock runs the propose/observe loop against the synthetic landscape
// until the tuner locks, returning the number of observations it took.
func driveToLock(t *testing.T, tn *tune.Tuner, k tune.Key) int {
	t.Helper()
	for i := 1; i <= 100; i++ {
		c := chunkOf(t, tn.Propose(k))
		tn.Observe(k, tune.Observation{Seconds: syntheticLandscape(k.N, c)})
		if tn.Converged(k) {
			return i
		}
	}
	t.Fatalf("tuner never converged for %v", k)
	return 0
}

// TestCrossSizeSeeding: a converged operating point at 2^20 must seed the
// climb at the unseen 2^21 near the scaled optimum, shortening convergence
// relative to a cold start from exec.Auto.
func TestCrossSizeSeeding(t *testing.T) {
	warm := tune.New(tune.Options{})
	k20 := tune.Key{Site: "for_each", N: 1 << 20, Workers: 8}
	k21 := tune.Key{Site: "for_each", N: 1 << 21, Workers: 8}
	driveToLock(t, warm, k20)

	// The first proposal for the unseen size starts near the scaled
	// optimum, not back at exec.Auto.
	seed := chunkOf(t, warm.Propose(k21))
	opt := (1 << 21) / 8
	if seed < opt/2 || seed > opt*2 {
		t.Fatalf("warm seed chunk = %d, want within 2x of %d", seed, opt)
	}

	cold := tune.New(tune.Options{})
	warmIters := driveToLock(t, warm, k21)
	coldIters := driveToLock(t, cold, k21)
	if warmIters >= coldIters {
		t.Fatalf("warm start took %d observations, cold %d; seeding must shorten the climb",
			warmIters, coldIters)
	}

	// Both must still find the same optimum: seeding biases the start, not
	// the result.
	wb, _, _ := warm.Best(k21)
	cb, _, _ := cold.Best(k21)
	if wb != cb && (wb < opt/2 || wb > opt*2) {
		t.Fatalf("warm best %d, cold best %d, optimum %d", wb, cb, opt)
	}
}

// TestCrossSizeSeedingInterpolates: with two converged sizes the seed for
// an in-between size interpolates the (log2 n, log2 chunk) ladder.
func TestCrossSizeSeedingInterpolates(t *testing.T) {
	tn := tune.New(tune.Options{})
	driveToLock(t, tn, tune.Key{Site: "scan", N: 1 << 18, Workers: 8})
	driveToLock(t, tn, tune.Key{Site: "scan", N: 1 << 22, Workers: 8})
	seed := chunkOf(t, tn.Propose(tune.Key{Site: "scan", N: 1 << 20, Workers: 8}))
	opt := (1 << 20) / 8
	if seed < opt/2 || seed > opt*2 {
		t.Fatalf("interpolated seed = %d, want within 2x of %d", seed, opt)
	}
	// A different site or worker count must not inherit the ladder.
	other := chunkOf(t, tn.Propose(tune.Key{Site: "sort", N: 1 << 20, Workers: 8}))
	want := chunkOf(t, tune.New(tune.Options{}).Propose(tune.Key{Site: "sort", N: 1 << 20, Workers: 8}))
	if other != want {
		t.Fatalf("unrelated site seeded to %d, want auto's %d", other, want)
	}
}
