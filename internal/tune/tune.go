// Package tune implements the adaptive grain auto-tuner: an online
// feedback controller that owns chunk-size selection for repeated parallel
// loops. It closes the loop the ROADMAP describes — the scheduler's split
// LocalSteals/RemoteSteals counters and the per-loop trace distributions
// flow back into exec.Grain selection, so a loop that runs more than once
// converges on a grain automatically instead of trusting a static policy.
//
// The controller is a bounded hill climb on a power-of-two chunk-size
// ladder, with an AIMD-flavored rule for picking the climb direction from
// scheduler telemetry:
//
//   - remote-steal-dominated loops coarsen: every remote steal drags
//     first-touched data across the NUMA fabric, so remote steals are
//     weighted RemoteWeight× heavier than local ones, and when they
//     dominate the steal mix the tuner grows the chunk size;
//   - purely-local stealing is tolerated: local deque steals are the
//     mechanism of load balance, not a pathology, so they never force a
//     direction on their own;
//   - idle-gap mass above threshold refines: when a trace window shows
//     workers idle for more than IdleFracRefine of the measured span, the
//     chunks are too coarse to balance and the tuner shrinks them.
//
// Absent a forcing signal the climb is throughput-driven: keep moving
// while the measured items/s improves by more than the noise floor,
// reverse once on a regression, and lock onto the best-seen chunk when a
// reversal re-visits explored ground. The noise floor is read from a
// counters.Registry region per (site, n, workers, chunk) — the relative
// standard deviation of the per-invocation seconds — so noisy sites need a
// larger improvement to keep climbing (the stop condition of the issue).
//
// State is keyed by (loop site, n, workers): the same loop at a different
// size or thread count is a different optimization problem. Tuned state is
// exportable as a JSON cache (see cache.go) for warm-starting later runs.
package tune

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pstlbench/internal/counters"
	"pstlbench/internal/exec"
)

// Key identifies one tuned loop: a loop site (typically the algorithm or
// benchmark name) at one problem size on one worker count.
type Key struct {
	Site    string
	N       int
	Workers int
}

func (k Key) String() string {
	return fmt.Sprintf("%s/n=%d/w=%d", k.Site, k.N, k.Workers)
}

// Options configures a Tuner. The zero value selects the defaults below.
type Options struct {
	// RemoteWeight is the weight of a remote (cross-NUMA) steal relative
	// to a local one in the steal-pressure signal. Default 4: the Table 6
	// knee shows remote steals cost a small multiple of local ones.
	RemoteWeight float64
	// CoarsenStealsPerChunk is the weighted-steal-per-chunk pressure above
	// which a remote-dominated steal mix forces coarsening. Default 0.25.
	CoarsenStealsPerChunk float64
	// IdleFracRefine is the idle-gap mass (fraction of the trace window the
	// workers spent idle) above which the tuner refines. Default 0.25.
	IdleFracRefine float64
	// MinGain is the minimum relative throughput improvement that counts
	// as progress; below it the climb is on a plateau and locks. The
	// effective threshold is max(MinGain, relative stddev of the current
	// operating point's per-invocation seconds). Default 0.02.
	MinGain float64
	// DriftTolerance is the relative throughput loss after lock that, seen
	// twice in a row, reopens the climb (the workload or machine state
	// drifted). Default 0.3.
	DriftTolerance float64
	// MinChunk is the smallest chunk size the tuner proposes. Default 1.
	MinChunk int
	// Registry receives one Seconds sample per observation under a
	// "tune:<key>/c=<chunk>" region; its per-region stddev is the noise
	// floor of the stop condition. A private registry is created when nil.
	Registry *counters.Registry
}

func (o Options) withDefaults() Options {
	if o.RemoteWeight <= 0 {
		o.RemoteWeight = 4
	}
	if o.CoarsenStealsPerChunk <= 0 {
		o.CoarsenStealsPerChunk = 0.25
	}
	if o.IdleFracRefine <= 0 {
		o.IdleFracRefine = 0.25
	}
	if o.MinGain <= 0 {
		o.MinGain = 0.02
	}
	if o.DriftTolerance <= 0 {
		o.DriftTolerance = 0.3
	}
	if o.MinChunk <= 0 {
		o.MinChunk = 1
	}
	return o
}

// Tuner is the adaptive grain controller. It is safe for concurrent use;
// all methods take an internal lock.
type Tuner struct {
	mu  sync.Mutex
	opt Options
	reg *counters.Registry
	st  map[Key]*state
}

// state is the per-key controller state.
type state struct {
	cur       int // chunk size of the current operating point
	dir       int // +1 coarsen (double), -1 refine (halve)
	best      int
	bestTp    float64
	prevTp    float64
	trials    int
	reversals int
	locked    bool
	driftBad  int
	// tried maps chunk size -> best throughput observed there, so a climb
	// that turns around recognizes explored ground and locks instead of
	// oscillating.
	tried map[int]float64
	// regions caches the registry region name per chunk size so the
	// steady-state Observe path is allocation-free.
	regions map[int]string
	keyStr  string
	// pendingIdleFrac carries the idle-gap mass of the most recent trace
	// summary (ObserveSummary) into counter-only observations.
	pendingIdleFrac float64
	hasPending      bool
}

// New returns a Tuner with the given options (zero value for defaults).
func New(opt Options) *Tuner {
	opt = opt.withDefaults()
	reg := opt.Registry
	if reg == nil {
		reg = counters.NewRegistry()
	}
	return &Tuner{opt: opt, reg: reg, st: make(map[Key]*state)}
}

// Registry returns the registry holding the tuner's per-operating-point
// timing regions.
func (t *Tuner) Registry() *counters.Registry { return t.reg }

// maxChunkFor returns the coarsest useful chunk size: one chunk per worker.
func maxChunkFor(k Key) int {
	w := k.Workers
	if w < 1 {
		w = 1
	}
	c := (k.N + w - 1) / w
	if c < 1 {
		c = 1
	}
	return c
}

// autoChunkFor returns the chunk size equivalent to exec.Auto — the
// starting point of every climb.
func autoChunkFor(k Key) int {
	chunks := exec.Auto.ChunkCount(k.N, k.Workers)
	if chunks < 1 {
		return 1
	}
	c := (k.N + chunks - 1) / chunks
	if c < 1 {
		c = 1
	}
	return c
}

// grainFor converts a chunk size into the equal-chunk grain the tuner
// proposes: MinChunk == MaxChunk == c yields exactly ceil(n/c) balanced
// chunks tiling [0, n).
func grainFor(c int) exec.Grain {
	return exec.Grain{MinChunk: c, MaxChunk: c}
}

// lookup returns the state for k, creating it on first use at the seeded
// operating point: a cross-size interpolation over converged sibling keys
// when any exist, exec.Auto otherwise. Callers hold t.mu.
func (t *Tuner) lookup(k Key) *state {
	s := t.st[k]
	if s == nil {
		c := t.seedChunk(k)
		s = &state{
			cur:     c,
			dir:     +1,
			best:    c,
			tried:   make(map[int]float64),
			regions: make(map[int]string),
			keyStr:  k.String(),
		}
		t.st[k] = s
	}
	return s
}

// seedChunk picks the starting chunk for an unseen key. When sibling keys —
// same Site and Workers at other sizes — have already converged, their
// operating points form a ladder in (log2 n, log2 chunk) space; the seed
// interpolates that ladder linearly at the new size (extrapolating the end
// segments, or assuming chunk ∝ n when only one sibling exists) and rounds
// to the nearest power of two. The seed only positions the hill-climb's
// first probe — the climb still runs and can walk away from a bad seed —
// but a converged run at 2^20 makes the first proposal at 2^21 land near
// the optimum instead of back at exec.Auto. Callers hold t.mu.
func (t *Tuner) seedChunk(k Key) int {
	type point struct{ ln, lc float64 }
	var pts []point
	for sk, ss := range t.st {
		if sk.Site != k.Site || sk.Workers != k.Workers || sk.N == k.N {
			continue
		}
		if !ss.locked || ss.best < 1 || sk.N <= 0 {
			continue
		}
		pts = append(pts, point{math.Log2(float64(sk.N)), math.Log2(float64(ss.best))})
	}
	if len(pts) == 0 {
		return t.clamp(k, autoChunkFor(k))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].ln < pts[j].ln })
	target := math.Log2(float64(k.N))
	var lc float64
	switch {
	case len(pts) == 1:
		// One sibling: assume the chunk scales with n (constant chunk
		// count), the behavior of a converged bandwidth-bound loop.
		lc = pts[0].lc + (target - pts[0].ln)
	case target <= pts[0].ln:
		lc = extrapolate(pts[0], pts[1], target)
	case target >= pts[len(pts)-1].ln:
		lc = extrapolate(pts[len(pts)-2], pts[len(pts)-1], target)
	default:
		for i := 1; i < len(pts); i++ {
			if target <= pts[i].ln {
				lc = extrapolate(pts[i-1], pts[i], target)
				break
			}
		}
	}
	e := int(math.Round(lc))
	if e < 0 {
		e = 0
	}
	if e > 30 {
		e = 30
	}
	return t.clamp(k, 1<<e)
}

// extrapolate evaluates the line through (a.ln, a.lc) and (b.ln, b.lc) at x.
func extrapolate(a, b struct{ ln, lc float64 }, x float64) float64 {
	if b.ln == a.ln {
		return a.lc
	}
	slope := (b.lc - a.lc) / (b.ln - a.ln)
	return a.lc + slope*(x-a.ln)
}

func (t *Tuner) clamp(k Key, c int) int {
	if c < t.opt.MinChunk {
		c = t.opt.MinChunk
	}
	if max := maxChunkFor(k); c > max {
		c = max
	}
	return c
}

// Propose returns the grain to use for the next invocation of the loop
// identified by k. Before any observation it is equivalent to exec.Auto;
// afterwards it is the controller's current operating point.
func (t *Tuner) Propose(k Key) exec.Grain {
	if k.N <= 0 {
		return exec.Auto
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return grainFor(t.lookup(k).cur)
}

// Converged reports whether the controller has locked onto a grain for k.
func (t *Tuner) Converged(k Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st[k]
	return s != nil && s.locked
}

// Best returns the best-throughput chunk size observed for k, with its
// items/s, or ok=false if k has never been observed.
func (t *Tuner) Best(k Key) (chunk int, itemsPerSec float64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st[k]
	if s == nil || s.trials == 0 {
		return 0, 0, false
	}
	return s.best, s.bestTp, true
}

// region returns the cached registry region name of s's current operating
// point. Callers hold t.mu.
func (s *state) region(t *Tuner) string {
	r, ok := s.regions[s.cur]
	if !ok {
		r = fmt.Sprintf("tune:%s/c=%d", s.keyStr, s.cur)
		s.regions[s.cur] = r
	}
	return r
}

// Observe ingests the measurement of one invocation that ran with the
// grain last proposed for k, and advances the controller. Observations
// with a non-positive duration are ignored.
func (t *Tuner) Observe(k Key, o Observation) {
	if k.N <= 0 || o.Seconds <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.lookup(k)
	tp := float64(k.N) / o.Seconds
	s.trials++
	region := s.region(t)
	t.reg.Record(region, counters.Set{Seconds: o.Seconds})
	if old, seen := s.tried[s.cur]; !seen || tp > old {
		s.tried[s.cur] = tp
	}
	if tp > s.bestTp {
		s.bestTp, s.best = tp, s.cur
	}

	if s.locked {
		// Drift watch: two consecutive invocations well below the locked
		// throughput mean the landscape moved — restart the climb from
		// the current point.
		if tp < s.bestTp*(1-t.opt.DriftTolerance) {
			s.driftBad++
		} else {
			s.driftBad = 0
		}
		if s.driftBad >= 2 {
			s.locked = false
			s.driftBad = 0
			s.trials = 1
			s.reversals = 0
			s.dir = +1
			s.tried = map[int]float64{s.cur: tp}
			s.best, s.bestTp = s.cur, tp
			s.prevTp = tp
		}
		return
	}

	forced := t.direction(k, s, o)

	if s.trials == 1 {
		// First sample: nothing to compare against. Take the forced
		// direction if any, else probe coarser (cut dispatch overhead).
		if forced != 0 {
			s.dir = forced
		}
		s.prevTp = tp
		s.advance(t, k)
		return
	}

	// Noise floor: the relative stddev of this operating point's timing
	// region, but never below MinGain.
	noise := t.opt.MinGain
	if rs := t.reg.Stats(region); rs.Calls >= 2 && rs.Mean > 0 {
		if rel := rs.StdDev / rs.Mean; rel > noise {
			noise = rel
		}
	}

	improved := tp >= s.prevTp*(1+noise)
	worse := tp < s.prevTp*(1-noise)
	switch {
	case forced != 0:
		s.dir = forced
	case worse:
		s.reversals++
		s.dir = -s.dir
	case !improved:
		// Plateau: within the noise band of the previous point. Settle.
		s.lockAtBest()
		return
	}
	s.prevTp = tp
	if s.reversals >= 2 {
		s.lockAtBest()
		return
	}
	s.advance(t, k)
}

// direction returns the forced climb direction from the scheduler
// telemetry of o: +1 when remote steals dominate and the weighted steal
// pressure per chunk is high, -1 when the idle-gap mass exceeds the refine
// threshold, 0 when the signals are quiet and throughput should decide.
func (t *Tuner) direction(k Key, s *state, o Observation) int {
	chunks := float64((k.N + s.cur - 1) / s.cur)
	if chunks < 1 {
		chunks = 1
	}
	weighted := (o.LocalSteals + t.opt.RemoteWeight*o.RemoteSteals) / chunks
	if o.RemoteSteals > o.LocalSteals && weighted > t.opt.CoarsenStealsPerChunk {
		return +1
	}
	idle := -1.0
	if o.HasTrace {
		idle = o.IdleFrac
	} else if s.hasPending {
		idle = s.pendingIdleFrac
	}
	if idle > t.opt.IdleFracRefine {
		return -1
	}
	return 0
}

// advance moves the operating point one ladder step in s.dir, bouncing off
// the [MinChunk, ceil(n/workers)] bounds and locking when the next step
// would only re-visit explored, not-better ground.
func (s *state) advance(t *Tuner, k Key) {
	for bounce := 0; bounce < 2; bounce++ {
		var next int
		if s.dir >= 0 {
			next = s.cur * 2
		} else {
			next = s.cur / 2
		}
		next = t.clamp(k, next)
		if next == s.cur {
			// Hit a bound: turn around.
			s.dir = -s.dir
			s.reversals++
			continue
		}
		if old, seen := s.tried[next]; seen && old <= s.bestTp {
			// The neighbor was already explored and is no better than the
			// best point — the climb is done.
			s.lockAtBest()
			return
		}
		s.cur = next
		return
	}
	// Both directions are bounded (degenerate ladder): settle.
	s.lockAtBest()
}

func (s *state) lockAtBest() {
	s.cur = s.best
	s.locked = true
	s.driftBad = 0
}

// Source binds a Tuner to one loop site, satisfying core.GrainSource: each
// Grain(n, workers) call proposes for Key{site, n, workers}. Plug it into a
// core.Policy with WithGrainSource and the tuner owns grain selection for
// every parallel loop the policy runs, without touching algorithm code.
type Source struct {
	T    *Tuner
	Site string
}

// Grain proposes the grain for a loop over n elements on workers workers.
func (s Source) Grain(n, workers int) exec.Grain {
	return s.T.Propose(Key{Site: s.Site, N: n, Workers: workers})
}

// Site returns a Source bound to the given loop site.
func (t *Tuner) Site(site string) Source { return Source{T: t, Site: site} }

// Keys returns every key with tuner state, sorted by String(), for
// deterministic reporting and export.
func (t *Tuner) Keys() []Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]Key, 0, len(t.st))
	for k := range t.st {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
