package obs

// ClusterMetrics bundles the distributed-plane instrument families on the
// registry's allocation-free path, shared between the router's health
// plane and the cluster transport clients:
//
//	pstld_cluster_heartbeat_seconds{shard}  heartbeat RTT histogram
//	pstld_cluster_health_state{shard}       0 healthy / 1 suspect / 2 dead
//	pstld_cluster_retries_total{peer}       transport attempts beyond the first
//	pstld_cluster_timeouts_total{peer}      per-attempt timeouts observed
//	pstld_cluster_replaced_total            jobs re-placed off dead shards
//	pstld_cluster_shard_deaths_total        shards declared dead
//
// All methods are nil-receiver-safe, like the instruments themselves: a
// tier without a registry runs the same code with no-op instruments.
type ClusterMetrics struct {
	reg *Registry
}

// NewClusterMetrics wraps reg; a nil registry yields a nil (no-op) bundle.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	if reg == nil {
		return nil
	}
	return &ClusterMetrics{reg: reg}
}

// HeartbeatRTT returns the heartbeat round-trip histogram for one shard.
func (m *ClusterMetrics) HeartbeatRTT(shard string) *Histogram {
	if m == nil {
		return nil
	}
	return m.reg.Histogram("pstld_cluster_heartbeat_seconds",
		"Heartbeat round-trip latency per shard.", LatencyBuckets, "shard", shard)
}

// HealthState registers the pull-time health-state gauge for one shard.
func (m *ClusterMetrics) HealthState(shard string, f func() float64) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("pstld_cluster_health_state",
		"Shard health state: 0 healthy, 1 suspect, 2 dead.", f, "shard", shard)
}

// Retries returns the transport retry counter for one peer: attempts
// beyond the first, whatever their outcome.
func (m *ClusterMetrics) Retries(peer string) *Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("pstld_cluster_retries_total",
		"Transport request retries per peer.", "peer", peer)
}

// Timeouts returns the transport timeout counter for one peer.
func (m *ClusterMetrics) Timeouts(peer string) *Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("pstld_cluster_timeouts_total",
		"Transport per-attempt timeouts per peer.", "peer", peer)
}
