package obs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pstlbench/internal/trace"
)

func TestPhaseNamesRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePhase(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePhase("nonsense"); ok {
		t.Fatal("ParsePhase accepted an unknown name")
	}
}

func TestSpanAttribution(t *testing.T) {
	s := NewJobSpan("job-1", 1, "acme", "sort", 1024)
	base := time.Now().UnixNano()
	s.MarkAt(PhaseAdmitted, base)
	s.MarkAt(PhaseEnqueued, base+1e9)
	s.MarkAt(PhaseStarted, base+3e9)
	s.MarkAt(PhaseCompleted, base+4e9)

	if q := s.QueueSeconds(); q < 1.99 || q > 2.01 {
		t.Fatalf("queue = %v, want 2s (enqueued -> started)", q)
	}
	if e := s.ExecSeconds(); e < 0.99 || e > 1.01 {
		t.Fatalf("exec = %v, want 1s", e)
	}
	if tot := s.TotalSeconds(); tot < 3.99 || tot > 4.01 {
		t.Fatalf("total = %v, want 4s", tot)
	}
	p, ns, ok := s.Terminal()
	if !ok || p != PhaseCompleted || ns != base+4e9 {
		t.Fatalf("terminal = %v %d %v", p, ns, ok)
	}
}

func TestSpanCanceledWhileQueued(t *testing.T) {
	s := NewJobSpan("job-2", 2, "acme", "sort", 1024)
	base := int64(1e15)
	s.MarkAt(PhaseAdmitted, base)
	s.MarkAt(PhaseEnqueued, base+1e9)
	s.MarkAt(PhaseCanceled, base+5e9)
	// Never started: the whole latency is queue wait.
	if q := s.QueueSeconds(); q != 4 {
		t.Fatalf("queue = %v, want 4 (enqueue -> cancel)", q)
	}
	if e := s.ExecSeconds(); e != 0 {
		t.Fatalf("exec = %v, want 0", e)
	}
}

func TestMarkOncePreservesFirstStamp(t *testing.T) {
	s := NewJobSpan("job-3", 3, "t", "reduce", 8)
	s.MarkAt(PhaseAdmitted, 12345)
	s.MarkOnce(PhaseAdmitted)
	if got := s.At(PhaseAdmitted); got != 12345 {
		t.Fatalf("MarkOnce overwrote the stamp: %d", got)
	}
	s.MarkOnce(PhaseFirstChunk)
	if s.At(PhaseFirstChunk) == 0 {
		t.Fatal("MarkOnce on a fresh phase did not stamp")
	}
}

func TestSeedPhasesRoundTrip(t *testing.T) {
	orig := NewJobSpan("job-4", 4, "t", "scan", 64)
	orig.MarkAt(PhaseAdmitted, 100)
	orig.MarkAt(PhaseEnqueued, 200)

	replayed := NewJobSpan("job-4", 4, "t", "scan", 64)
	replayed.SeedPhases(orig.Phases())
	replayed.Mark(PhaseReplayed)
	replayed.MarkOnce(PhaseAdmitted) // replay path: must keep pre-crash stamp

	if got := replayed.At(PhaseAdmitted); got != 100 {
		t.Fatalf("seeded admitted = %d, want 100", got)
	}
	if got := replayed.At(PhaseEnqueued); got != 200 {
		t.Fatalf("seeded enqueued = %d, want 200", got)
	}
	if replayed.At(PhaseReplayed) == 0 {
		t.Fatal("replayed phase missing")
	}
	// Unknown names are ignored, not fatal.
	replayed.SeedPhases(map[string]int64{"warp-drive": 7})
}

func TestMigrationCounting(t *testing.T) {
	s := NewJobSpan("j", 1, "t", "sort", 1)
	s.SetShard(0)
	s.Mark(PhaseMigrated)
	s.SetShard(1)
	s.Mark(PhaseMigrated)
	if got := s.Migrations(); got != 2 {
		t.Fatalf("migrations = %d, want 2", got)
	}
	if got := s.Shard(); got != 1 {
		t.Fatalf("shard = %d, want 1", got)
	}
}

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		s := NewJobSpan(fmt.Sprintf("job-%d", i), int64(i), "t", "sort", 1)
		s.MarkAt(PhaseCompleted, int64(i+1))
		l.Add(s)
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	spans := l.Spans()
	if len(spans) != 4 {
		t.Fatalf("surviving = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("job-%d", 6+i); s.ID != want {
			t.Fatalf("span[%d] = %s, want %s (oldest first)", i, s.ID, want)
		}
	}
}

// TestChromeTrackShape checks the span -> Chrome-track conversion: one
// complete event per terminal job with its phases in args, instants for
// intermediate phases, live jobs skipped, and timestamps rebased onto the
// provided epoch.
func TestChromeTrackShape(t *testing.T) {
	epoch := int64(1e15)
	done := NewJobSpan("job-1", 1, "acme", "sort", 128)
	done.MarkAt(PhaseAdmitted, epoch+1000)
	done.MarkAt(PhaseEnqueued, epoch+2000)
	done.MarkAt(PhaseStarted, epoch+3000)
	done.MarkAt(PhaseCompleted, epoch+9000)
	live := NewJobSpan("job-2", 2, "acme", "sort", 128)
	live.MarkAt(PhaseAdmitted, epoch+1000)

	tr := ChromeTrack([]*JobSpan{done, live}, epoch)
	if tr.Label != "jobs" {
		t.Fatalf("label = %q, want jobs", tr.Label)
	}
	var complete, instants int
	for _, e := range tr.Events {
		if e.End > e.Start {
			complete++
			if e.Start != 1000 || e.End != 9000 {
				t.Fatalf("rebased interval = [%d,%d], want [1000,9000]", e.Start, e.End)
			}
			if e.Args["terminal"] != "completed" {
				t.Fatalf("terminal arg = %v", e.Args["terminal"])
			}
		} else {
			instants++
		}
	}
	if complete != 1 {
		t.Fatalf("complete events = %d, want 1 (live span must be skipped)", complete)
	}
	if instants != 3 { // enqueued, started, completed (admitted is the span start)
		t.Fatalf("instants = %d, want 3", instants)
	}
}

// TestWriteChromeValidates: the combined tracer + span-log export parses
// back as a valid Chrome trace with the jobs track after the tracer's own.
func TestWriteChromeValidates(t *testing.T) {
	tc := trace.New(2, 64)
	s := NewJobSpan("job-1", 1, "t", "sort", 64)
	now := time.Now().UnixNano()
	s.MarkAt(PhaseAdmitted, now)
	s.MarkAt(PhaseCompleted, now+1e6)
	l := NewSpanLog(8)
	l.Add(s)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tc, l); err != nil {
		t.Fatal(err)
	}
	ct, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	_, labels := ct.Tracks()
	if len(labels) != 3 || labels[2] != "jobs" {
		t.Fatalf("labels = %v, want jobs track at tid 2", labels)
	}
}
