// Package obs is the serving-tier observability layer: a dependency-free
// Prometheus-text-format metrics registry (counters, gauges, fixed-bucket
// histograms with allocation-free atomic updates), per-job lifecycle spans
// that stitch a job's path through router, shard queue, batch, and pool
// into one phase-stamped record, and rolling-window latency histograms with
// SLO burn-rate tracking.
//
// The split of labor with the sibling packages: internal/trace sees the
// scheduler (chunks, steals, parks, per-worker rings); internal/counters
// sees measured regions (the Likwid-marker model of the paper's tables);
// obs sees the *service* — jobs, queues, tenants, shards — and exports all
// three where standard tooling can reach them: a /metrics endpoint any
// Prometheus scraper parses, Chrome-trace JSON where job spans sit above
// the scheduler's chunk spans, and windowed quantiles in /stats that
// reflect current load rather than cumulative-since-boot history.
//
// Every instrument follows the repo's disabled-path idiom: methods on nil
// receivers are no-ops costing one inlined pointer check, so call sites
// stay unconditional and a server built without a Registry pays nothing
// (guarded by BenchmarkMetricsDisabled). Enabled updates are lock-free
// atomics with zero heap allocations (TestMetricUpdatesAllocFree).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil Counter is disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil Gauge is disabled.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus an overflow bucket, a total count, and a fixed-point sum.
// Observe is a short bounded scan plus three atomic adds — allocation-free
// and lock-free, cheap enough for per-job and per-fsync call sites. A nil
// Histogram is disabled.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Int64
	// sumFP accumulates the observation sum in 1e-9 fixed point, the finest
	// grain that still gives ~292 years of second-valued observations
	// before int64 overflow; float64 can't be atomically added.
	sumFP atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumFP.Add(int64(v * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumFP.Load()) * 1e-9
}

// Snapshot returns a consistent-enough copy for exposition: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the overflow bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    float64(h.sumFP.Load()) * 1e-9,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time histogram: Counts[i] holds observations
// <= Bounds[i] (exclusive of lower buckets); Counts[len(Bounds)] is the
// overflow (+Inf) bucket. The same shape serves cumulative histograms and
// merged rolling windows.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the containing bucket, Prometheus histogram_quantile style. The
// overflow bucket clamps to the largest finite bound. 0 when empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// FracAbove estimates the fraction of observations strictly above t,
// interpolating within the bucket that straddles it — the SLO bad-event
// fraction.
func (s HistSnapshot) FracAbove(t float64) float64 {
	if s.Count == 0 {
		return 0
	}
	var above float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := math.Inf(1)
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		switch {
		case lo >= t:
			above += float64(c)
		case hi <= t:
			// entirely below: contributes nothing
		case math.IsInf(hi, 1):
			above += float64(c) // overflow bucket straddling t: count it all
		default:
			above += float64(c) * (hi - t) / (hi - lo)
		}
	}
	return above / float64(s.Count)
}

// ExpBuckets returns n exponential bucket upper bounds starting at start,
// each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default latency ladder: 10 µs to ~84 s in
// powers of two — wide enough for fsync stalls and 2^30 sorts alike.
var LatencyBuckets = ExpBuckets(1e-5, 2, 24)

// SizeBuckets is the default count ladder (batch occupancy, group-commit
// size): 1 to 32768 in powers of two.
var SizeBuckets = ExpBuckets(1, 2, 16)

// metric kinds inside a family.
const (
	kindCounter = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
	kindHistogramFunc
)

func kindType(kind int) string {
	switch kind {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// inst is one labeled instrument within a family.
type inst struct {
	labels string // sorted, rendered `k="v",...` (no braces), "" when unlabeled
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
	hf     func() HistSnapshot
}

// family is all instruments sharing one metric name.
type family struct {
	name, help string
	kind       int
	insts      []*inst
	byLabels   map[string]*inst
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes a lock and runs once per
// (name, labels); the returned instruments update lock-free. All methods
// are nil-safe: a nil Registry hands out nil (disabled) instruments.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels validates and renders alternating key, value label pairs
// into the canonical sorted `k="v"` form used as the instrument identity.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q, want key, value pairs", labels))
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+`="`+escapeLabel(labels[i+1])+`"`)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookupLocked returns the instrument for (name, labels), creating family
// and instrument as needed; panics when the name is reused with another
// kind. Caller holds r.mu.
func (r *Registry) lookupLocked(name, help string, kind int, labels []string) *inst {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*inst)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, reused as %s",
			name, kindType(f.kind), kindType(kind)))
	}
	ls := renderLabels(labels)
	in := f.byLabels[ls]
	if in == nil {
		in = &inst{labels: ls}
		f.byLabels[ls] = in
		f.insts = append(f.insts, in)
	}
	return in
}

// Counter registers (or returns the existing) counter under name with the
// given alternating key, value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.lookupLocked(name, help, kindCounter, labels)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.lookupLocked(name, help, kindGauge, labels)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// CounterFunc registers a pull-time counter: f is called at exposition and
// must be monotone non-decreasing (the registry does not enforce it). Use
// for counts already maintained under a lock elsewhere, so the hot path
// pays nothing extra. Exposition calls f WITHOUT the registry lock held,
// so f may take the locks its producer uses.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked(name, help, kindCounterFunc, labels).f = f
}

// GaugeFunc registers a pull-time gauge evaluated at exposition (without
// the registry lock held).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked(name, help, kindGaugeFunc, labels).f = f
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.lookupLocked(name, help, kindHistogram, labels)
	if in.h == nil {
		if len(bounds) == 0 {
			bounds = LatencyBuckets
		}
		in.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return in.h
}

// HistogramFunc registers a pull-time histogram: f returns a snapshot at
// exposition (called without the registry lock held). The rolling-window
// latency families use this — the window merge happens per scrape, not per
// observation.
func (r *Registry) HistogramFunc(name, help string, f func() HistSnapshot, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked(name, help, kindHistogramFunc, labels).hf = f
}

// fnum renders a sample value; Prometheus accepts Go's shortest-form
// floats plus +Inf/-Inf/NaN spellings.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): # HELP and # TYPE lines followed by the samples,
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
// The registry lock covers only the structure snapshot; pull-time closures
// run after it is released, so they may take their producers' locks
// without ordering against lazy registration.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type item struct {
		labels string
		c      *Counter
		g      *Gauge
		f      func() float64
		h      *Histogram
		hf     func() HistSnapshot
	}
	type fam struct {
		name, help string
		kind       int
		items      []item
	}
	r.mu.Lock()
	fams := make([]fam, len(r.fams))
	for fi, f := range r.fams {
		fams[fi] = fam{name: f.name, help: f.help, kind: f.kind, items: make([]item, len(f.insts))}
		for ii, in := range f.insts {
			fams[fi].items[ii] = item{labels: in.labels, c: in.c, g: in.g, f: in.f, h: in.h, hf: in.hf}
		}
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, kindType(f.kind))
		for _, in := range f.items {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, in.labels, float64(in.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, in.labels, in.g.Value())
			case kindCounterFunc, kindGaugeFunc:
				v := 0.0
				if in.f != nil {
					v = in.f()
				}
				writeSample(&b, f.name, in.labels, v)
			case kindHistogram, kindHistogramFunc:
				var s HistSnapshot
				if f.kind == kindHistogram {
					s = in.h.Snapshot()
				} else if in.hf != nil {
					s = in.hf()
				}
				writeHistogram(&b, f.name, in.labels, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteString("{" + labels + "}")
	}
	b.WriteString(" " + fnum(v) + "\n")
}

func writeHistogram(b *strings.Builder, name, labels string, s HistSnapshot) {
	join := func(extra string) string {
		if labels == "" {
			return extra
		}
		return labels + "," + extra
	}
	var cum int64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		writeSample(b, name+"_bucket", join(`le="`+fnum(bound)+`"`), float64(cum))
	}
	writeSample(b, name+"_bucket", join(`le="+Inf"`), float64(s.Count))
	writeSample(b, name+"_sum", labels, s.Sum)
	writeSample(b, name+"_count", labels, float64(s.Count))
}
