package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pstlbench/internal/trace"
)

// Phase is one checkpoint of a job's lifecycle. A span stamps each phase
// at most once per incarnation (migration restamps the queue phases on the
// new shard); the ordered timestamps attribute a job's latency to queue
// wait vs execution — the per-phase breakdown that makes a p99 regression
// explainable instead of just visible.
type Phase uint8

const (
	// PhaseAdmitted: the router/server accepted the submission.
	PhaseAdmitted Phase = iota
	// PhaseEnqueued: the job entered a shard's fair queue.
	PhaseEnqueued
	// PhaseDequeued: the fair queue released it to a concurrency slot.
	PhaseDequeued
	// PhaseBatched: it was coalesced into a small-job batch.
	PhaseBatched
	// PhaseMigrated: the rebalancer withdrew it for another shard.
	PhaseMigrated
	// PhaseStarted: its kernel began executing on the pool.
	PhaseStarted
	// PhaseFirstChunk: the first chunk of its parallel loop ran — the gap
	// from Started is pure scheduler dispatch latency.
	PhaseFirstChunk
	// PhaseReplayed: it was resubmitted from the job log after a restart.
	PhaseReplayed
	// PhaseCompleted: terminal, result delivered.
	PhaseCompleted
	// PhaseCanceled: terminal, canceled by client or shutdown.
	PhaseCanceled
	// PhaseFailed: terminal, deadline expired before completion.
	PhaseFailed

	// NumPhases bounds the phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"admitted", "enqueued", "dequeued", "batched", "migrated",
	"started", "first-chunk", "replayed", "completed", "canceled", "failed",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// ParsePhase maps a phase name (as serialized into job-log records and
// span JSON) back to its Phase.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// JobSpan is the lifecycle record of one job: identity plus one wall-clock
// nanosecond stamp per phase. Phase marks are atomic stores, so producers
// on different goroutines (submit path, pool worker, deadline timer,
// watcher) need no shared lock; identity fields are written once at
// creation. The Shard/Batch/Migrations fields are atomics because the
// router rewrites them on spill and migration.
type JobSpan struct {
	ID     string
	Seq    int64
	Tenant string
	Kernel string
	N      int

	shard      atomic.Int64
	batch      atomic.Int64
	migrations atomic.Int64
	ts         [NumPhases]int64 // UnixNano, 0 = phase never reached
}

// NewJobSpan starts an empty span (no phases marked, shard -1).
func NewJobSpan(id string, seq int64, tenant, kernel string, n int) *JobSpan {
	s := &JobSpan{ID: id, Seq: seq, Tenant: tenant, Kernel: kernel, N: n}
	s.shard.Store(-1)
	return s
}

// Mark stamps phase p with the current wall clock. Nil-safe — and the nil
// check comes before the clock read, so a disabled span costs no time.Now.
func (s *JobSpan) Mark(p Phase) {
	if s == nil {
		return
	}
	s.MarkAt(p, time.Now().UnixNano())
}

// MarkAt stamps phase p at the given UnixNano time (latest mark wins — a
// migrated job's re-enqueue overwrites its first). Nil-safe.
func (s *JobSpan) MarkAt(p Phase, ns int64) {
	if s == nil || p >= NumPhases {
		return
	}
	atomic.StoreInt64(&s.ts[p], ns)
	if p == PhaseMigrated {
		s.migrations.Add(1)
	}
}

// MarkOnce stamps phase p only if it has never been stamped — the
// admitted phase of a replayed job keeps its pre-crash value this way.
func (s *JobSpan) MarkOnce(p Phase) {
	if s == nil || p >= NumPhases {
		return
	}
	atomic.CompareAndSwapInt64(&s.ts[p], 0, time.Now().UnixNano())
}

// At returns phase p's UnixNano stamp, 0 when unreached.
func (s *JobSpan) At(p Phase) int64 {
	if s == nil || p >= NumPhases {
		return 0
	}
	return atomic.LoadInt64(&s.ts[p])
}

// Slot returns the address of phase p's stamp for external one-shot
// writers: core.Policy.FirstChunkNS CASes the first chunk's wall time in
// through this pointer without obs appearing on the dispatch path.
func (s *JobSpan) Slot(p Phase) *int64 {
	if s == nil || p >= NumPhases {
		return nil
	}
	return &s.ts[p]
}

// SetShard records the shard currently holding the job.
func (s *JobSpan) SetShard(shard int) {
	if s != nil {
		s.shard.Store(int64(shard))
	}
}

// Shard returns the current shard (-1 when unplaced or unsharded).
func (s *JobSpan) Shard() int {
	if s == nil {
		return -1
	}
	return int(s.shard.Load())
}

// SetBatch records the batch a coalesced job rode in (0 = unbatched).
func (s *JobSpan) SetBatch(id int64) {
	if s != nil {
		s.batch.Store(id)
	}
}

// Batch returns the batch id (0 = solo dispatch).
func (s *JobSpan) Batch() int64 {
	if s == nil {
		return 0
	}
	return s.batch.Load()
}

// Migrations returns how many times the job moved between shards.
func (s *JobSpan) Migrations() int64 {
	if s == nil {
		return 0
	}
	return s.migrations.Load()
}

// Terminal returns the terminal phase and its stamp, ok=false while the
// job is still live.
func (s *JobSpan) Terminal() (Phase, int64, bool) {
	for _, p := range [...]Phase{PhaseCompleted, PhaseCanceled, PhaseFailed} {
		if ns := s.At(p); ns != 0 {
			return p, ns, true
		}
	}
	return 0, 0, false
}

// QueueSeconds is time from (re-)enqueue to start — the queue-wait share
// of the job's latency. Falls back to admitted when enqueue was never
// stamped, and to the terminal stamp for jobs canceled while queued.
func (s *JobSpan) QueueSeconds() float64 {
	from := s.At(PhaseEnqueued)
	if from == 0 {
		from = s.At(PhaseAdmitted)
	}
	to := s.At(PhaseStarted)
	if to == 0 {
		_, t, ok := s.Terminal()
		if !ok {
			return 0
		}
		to = t
	}
	return secondsBetween(from, to)
}

// ExecSeconds is time from start to terminal — the execution share.
func (s *JobSpan) ExecSeconds() float64 {
	from := s.At(PhaseStarted)
	_, to, ok := s.Terminal()
	if !ok {
		return 0
	}
	return secondsBetween(from, to)
}

// TotalSeconds is admitted-to-terminal.
func (s *JobSpan) TotalSeconds() float64 {
	_, to, ok := s.Terminal()
	if !ok {
		return 0
	}
	return secondsBetween(s.At(PhaseAdmitted), to)
}

func secondsBetween(from, to int64) float64 {
	if from == 0 || to <= from {
		return 0
	}
	return float64(to-from) * 1e-9
}

// Phases returns the stamped phases as name -> UnixNano — the job-log and
// JSON serialization of the span's history.
func (s *JobSpan) Phases() map[string]int64 {
	if s == nil {
		return nil
	}
	out := make(map[string]int64)
	for p := Phase(0); p < NumPhases; p++ {
		if ns := s.At(p); ns != 0 {
			out[p.String()] = ns
		}
	}
	return out
}

// SeedPhases restamps the span from a serialized phase map (unknown names
// ignored) — how a replayed job recovers its pre-crash history.
func (s *JobSpan) SeedPhases(phases map[string]int64) {
	for name, ns := range phases {
		if p, ok := ParsePhase(name); ok && ns != 0 {
			s.MarkAt(p, ns)
		}
	}
}

// SpanInfo is the JSON shape of a span (the /spans endpoint and the
// experiment exports).
type SpanInfo struct {
	ID         string           `json:"id"`
	Tenant     string           `json:"tenant"`
	Kernel     string           `json:"kernel"`
	N          int              `json:"n"`
	Shard      int              `json:"shard"`
	Batch      int64            `json:"batch,omitempty"`
	Migrations int64            `json:"migrations,omitempty"`
	Phases     map[string]int64 `json:"phases"`
	// Attribution in seconds: Queue + Exec ~= Total for a run job.
	QueueSeconds float64 `json:"queue_seconds"`
	ExecSeconds  float64 `json:"exec_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Info snapshots the span.
func (s *JobSpan) Info() SpanInfo {
	if s == nil {
		return SpanInfo{Shard: -1}
	}
	return SpanInfo{
		ID: s.ID, Tenant: s.Tenant, Kernel: s.Kernel, N: s.N,
		Shard: s.Shard(), Batch: s.Batch(), Migrations: s.Migrations(),
		Phases:       s.Phases(),
		QueueSeconds: s.QueueSeconds(),
		ExecSeconds:  s.ExecSeconds(),
		TotalSeconds: s.TotalSeconds(),
	}
}

// SpanLog retains terminal job spans in a bounded ring, oldest evicted
// first — the span analogue of trace.Buf. A nil *SpanLog is disabled.
type SpanLog struct {
	mu   sync.Mutex
	ring []*JobSpan
	pos  uint64
}

// NewSpanLog returns a span ring holding up to capacity spans (default
// 4096 when <= 0).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanLog{ring: make([]*JobSpan, capacity)}
}

// Add retains a terminal span. Nil-safe.
func (l *SpanLog) Add(s *JobSpan) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.pos%uint64(len(l.ring))] = s
	l.pos++
	l.mu.Unlock()
}

// Total returns how many spans were ever added (including evicted ones).
func (l *SpanLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Spans returns the surviving spans, oldest first.
func (l *SpanLog) Spans() []*JobSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c := uint64(len(l.ring))
	if l.pos <= c {
		return append([]*JobSpan(nil), l.ring[:l.pos]...)
	}
	head := l.pos % c
	out := make([]*JobSpan, 0, c)
	out = append(out, l.ring[head:]...)
	out = append(out, l.ring[:head]...)
	return out
}

// ChromeTrack converts spans into one export track for the Chrome-trace
// writer: a complete event per job from its first stamp to its terminal
// stamp (live jobs are skipped), plus an instant per intermediate phase.
// Timestamps are rebased from UnixNano onto the tracer clock via
// epochUnixNano (trace.Tracer.EpochUnixNano), so job spans land on the
// same timeline as — and visually contain — the scheduler's chunk spans.
func ChromeTrack(spans []*JobSpan, epochUnixNano int64) trace.ExportTrack {
	tr := trace.ExportTrack{Label: "jobs"}
	for _, s := range spans {
		term, end, ok := s.Terminal()
		if !ok {
			continue
		}
		start := s.At(PhaseAdmitted)
		if start == 0 {
			start = s.At(PhaseEnqueued)
		}
		if start == 0 || end < start {
			continue
		}
		info := s.Info()
		tr.Events = append(tr.Events, trace.ExportEvent{
			Name:  fmt.Sprintf("job %s %s/%s", s.ID, s.Tenant, s.Kernel),
			Start: start - epochUnixNano,
			End:   end - epochUnixNano,
			Args: map[string]any{
				"id": s.ID, "tenant": s.Tenant, "kernel": s.Kernel,
				"n": s.N, "shard": info.Shard, "batch": info.Batch,
				"terminal": term.String(), "phases": info.Phases,
				"queue_seconds": info.QueueSeconds, "exec_seconds": info.ExecSeconds,
			},
		})
		for p := Phase(0); p < NumPhases; p++ {
			ns := s.At(p)
			if ns == 0 || p == PhaseAdmitted {
				continue
			}
			tr.Events = append(tr.Events, trace.ExportEvent{
				Name:  "phase:" + p.String(),
				Start: ns - epochUnixNano,
				End:   ns - epochUnixNano,
				Args:  map[string]any{"id": s.ID, "phase": p.String()},
			})
		}
	}
	return tr
}

// WriteChrome exports the tracer's scheduler events plus the span log's
// job spans as one Chrome trace-event file: chunk/steal/park events on
// their worker tracks, job lifecycle spans on an extra "jobs" track whose
// intervals contain the chunks they own.
func WriteChrome(w io.Writer, t *trace.Tracer, log *SpanLog) error {
	return trace.WriteChromeExtra(w, t, []trace.ExportTrack{
		ChromeTrack(log.Spans(), t.EpochUnixNano()),
	})
}
