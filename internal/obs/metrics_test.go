package obs

import (
	"math"
	"strings"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var w *Windows
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	w.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || w.Snapshot().Count != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
}

func TestCounterMonotone(t *testing.T) {
	c := NewRegistry().Counter("c", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "h", "tenant", "a")
	b := r.Counter("jobs_total", "h", "tenant", "b")
	a2 := r.Counter("jobs_total", "h", "tenant", "a")
	if a == b {
		t.Fatal("different labels shared an instrument")
	}
	if a != a2 {
		t.Fatal("same (name, labels) returned a new instrument")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m", "h")
}

// TestPrometheusExposition checks the rendered text against the 0.0.4
// format line by line: HELP/TYPE headers, sorted labels, cumulative
// histogram buckets ending in +Inf == count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pstld_jobs_total", "Jobs.", "tenant", "acme").Add(3)
	r.Gauge("pstld_load", "Load.").Set(0.5)
	r.GaugeFunc("pstld_depth", "Depth.", func() float64 { return 7 })
	h := r.Histogram("pstld_lat", "Latency.", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99) // overflow bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pstld_jobs_total Jobs.\n",
		"# TYPE pstld_jobs_total counter\n",
		`pstld_jobs_total{tenant="acme"} 3` + "\n",
		"# TYPE pstld_load gauge\n",
		"pstld_load 0.5\n",
		"pstld_depth 7\n",
		"# TYPE pstld_lat histogram\n",
		`pstld_lat_bucket{le="1"} 1` + "\n",
		`pstld_lat_bucket{le="2"} 2` + "\n",
		`pstld_lat_bucket{le="4"} 2` + "\n",
		`pstld_lat_bucket{le="+Inf"} 3` + "\n",
		"pstld_lat_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Every non-comment line must be `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestLabelSortingAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h", "zeta", "z", "alpha", `a"\`+"\n").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `m{alpha="a\"\\\n",zeta="z"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("labels not sorted/escaped: got\n%s\nwant line %q", b.String(), want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within bucket (1,2]", q)
	}
	h.Observe(100) // overflow clamps to the largest finite bound
	if q := h.Snapshot().Quantile(0.999); q != 8 {
		t.Fatalf("overflow quantile = %v, want clamp to 8", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramFracAbove(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3) // (2,4] bucket, above t=2
	}
	got := h.Snapshot().FracAbove(2)
	if math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("FracAbove(2) = %v, want 0.10", got)
	}
	if f := h.Snapshot().FracAbove(1000); f != 0 {
		t.Fatalf("FracAbove above all buckets = %v, want 0", f)
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	if s := h.Sum(); math.Abs(s-0.75) > 1e-6 {
		t.Fatalf("sum = %v, want 0.75", s)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if len(LatencyBuckets) != 24 || len(SizeBuckets) != 16 {
		t.Fatal("default ladders changed size")
	}
}

func TestHistogramFuncRendered(t *testing.T) {
	r := NewRegistry()
	r.HistogramFunc("w", "windowed", func() HistSnapshot {
		return HistSnapshot{Bounds: []float64{1}, Counts: []int64{2, 1}, Count: 3, Sum: 4}
	})
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{
		"# TYPE w histogram\n",
		`w_bucket{le="1"} 2` + "\n",
		`w_bucket{le="+Inf"} 3` + "\n",
		"w_sum 4\n",
		"w_count 3\n",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %q in\n%s", want, b.String())
		}
	}
}
