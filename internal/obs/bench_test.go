package obs

import (
	"testing"
	"time"
)

// The disabled path is the acceptance bar: a server built without a
// metrics registry must pay only a nil check per would-be update. Package-
// level nil receivers keep the compiler from proving the calls dead.
var (
	disabledCounter *Counter
	disabledGauge   *Gauge
	disabledHist    *Histogram
	disabledWindows *Windows
	disabledSpan    *JobSpan
)

func BenchmarkMetricsDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledCounter.Inc()
		disabledGauge.Set(1)
		disabledHist.Observe(0.01)
		disabledWindows.Observe(0.01)
		disabledSpan.Mark(PhaseStarted)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkWindowsObserve(b *testing.B) {
	w := NewWindows(WindowConfig{Width: 5 * time.Second, Count: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(0.003)
	}
}

func BenchmarkSpanMark(b *testing.B) {
	s := NewJobSpan("j", 1, "t", "sort", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.MarkAt(PhaseStarted, int64(i))
	}
}

// TestMetricUpdatesAllocFree pins the hot-path guarantee: enabled updates
// allocate nothing.
func TestMetricUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencyBuckets)
	w := NewWindows(WindowConfig{Width: time.Hour, Count: 4})
	s := NewJobSpan("j", 1, "t", "sort", 1)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.004)
		w.Observe(0.004)
		s.MarkAt(PhaseStarted, 42)
	}); n != 0 {
		t.Fatalf("hot-path updates allocated %v per run, want 0", n)
	}
}
