package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock steps window epochs deterministically.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func testWindows(width time.Duration, count int, clk *fakeClock) *Windows {
	return NewWindows(WindowConfig{
		Width: width, Count: count,
		Buckets: []float64{0.001, 0.01, 0.1, 1, 10},
		Now:     clk.now,
	})
}

// TestWindowsLoadStep is the satellite guarantee: a latency step shows up
// in the windowed view within two windows, while the pre-step traffic is
// still inside the horizon — current-load visibility without waiting for
// cumulative history to dilute.
func TestWindowsLoadStep(t *testing.T) {
	clk := &fakeClock{}
	w := testWindows(time.Second, 8, clk)

	for i := 0; i < 100; i++ {
		w.Observe(0.0005) // healthy traffic: p99 in the lowest bucket
	}
	before := w.Snapshot().Quantile(0.99)
	if before > 0.001 {
		t.Fatalf("pre-step p99 = %v, want <= 0.001", before)
	}

	// The step: latency jumps 1000x. Two windows later it must dominate
	// the merged view even though the fast traffic is still in-horizon.
	clk.advance(time.Second)
	for i := 0; i < 300; i++ {
		w.Observe(0.5)
	}
	clk.advance(time.Second)
	snap := w.Snapshot()
	if snap.Count != 400 {
		t.Fatalf("window count = %d, want 400 (both windows in horizon)", snap.Count)
	}
	after := snap.Quantile(0.99)
	if after < 0.1 {
		t.Fatalf("post-step p99 = %v, want >= 0.1 within two windows", after)
	}
}

// TestWindowsExpiry: traffic older than the horizon vanishes, and a slot
// reused after wraparound does not resurrect its previous window's counts.
func TestWindowsExpiry(t *testing.T) {
	clk := &fakeClock{}
	w := testWindows(time.Second, 4, clk)
	for i := 0; i < 10; i++ {
		w.Observe(0.5)
	}
	if got := w.Snapshot().Count; got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	clk.advance(3 * time.Second)
	if got := w.Snapshot().Count; got != 10 {
		t.Fatalf("count at horizon edge = %d, want 10", got)
	}
	clk.advance(time.Second)
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("count past horizon = %d, want 0", got)
	}
	// Reuse the wrapped slot: only the new observation may appear.
	w.Observe(0.5)
	if got := w.Snapshot().Count; got != 1 {
		t.Fatalf("count after slot reuse = %d, want 1", got)
	}
}

func TestWindowsSpan(t *testing.T) {
	clk := &fakeClock{}
	w := testWindows(5*time.Second, 16, clk)
	if got := w.Span(); got != 80*time.Second {
		t.Fatalf("span = %v, want 80s", got)
	}
}

func TestSLOBurnRate(t *testing.T) {
	clk := &fakeClock{}
	w := testWindows(time.Second, 4, clk)
	slo := SLO{Objective: 0.1, Target: 0.99}

	if br := slo.BurnRate(w.Snapshot()); br != 0 {
		t.Fatalf("empty burn rate = %v, want 0", br)
	}
	for i := 0; i < 100; i++ {
		w.Observe(0.0005) // all within objective
	}
	if br := slo.BurnRate(w.Snapshot()); br != 0 {
		t.Fatalf("healthy burn rate = %v, want 0", br)
	}
	for i := 0; i < 100; i++ {
		w.Observe(5) // all violating
	}
	// Half the traffic is bad against a 1% budget: burn ~= 50.
	br := slo.BurnRate(w.Snapshot())
	if br < 40 || br > 60 {
		t.Fatalf("violating burn rate = %v, want ~50", br)
	}
	if br := (SLO{}).BurnRate(w.Snapshot()); br != 0 {
		t.Fatalf("unset SLO burn rate = %v, want 0", br)
	}
}
