package obs

import (
	"sync"
	"time"
)

// WindowConfig sizes a rolling-window histogram. The zero value selects 16
// windows of 5 s over LatencyBuckets on the wall clock — about 80 s of
// history, enough to see a load step and forget it.
type WindowConfig struct {
	// Width is one window's duration (default 5s).
	Width time.Duration
	// Count is the number of windows retained (default 16).
	Count int
	// Buckets are the histogram upper bounds (default LatencyBuckets).
	Buckets []float64
	// Now returns the current time in nanoseconds; defaults to the wall
	// clock. Tests inject a fake clock to step windows deterministically.
	Now func() int64
}

// Windows is a rolling-window histogram: observations land in the current
// window slot, slots expire in place as time advances (no ticker
// goroutine), and Snapshot merges the live slots into one HistSnapshot.
// Unlike the cumulative reservoirs in counters.Registry, quantiles read
// from here reflect only the last Count x Width of traffic — the
// difference between "p99 since boot" and "p99 right now", which is what
// diurnal load and post-incident triage need.
//
// Observe takes a short mutex (slot rotation must be atomic with the
// write) and allocates nothing. A nil *Windows is disabled.
type Windows struct {
	width  int64
	n      int
	now    func() int64
	bounds []float64

	mu    sync.Mutex
	slots []wslot
}

type wslot struct {
	epoch  int64 // window index this slot holds; -1 when never used
	counts []int64
	count  int64
	sum    float64
}

// NewWindows returns a rolling-window histogram under cfg.
func NewWindows(cfg WindowConfig) *Windows {
	if cfg.Width <= 0 {
		cfg.Width = 5 * time.Second
	}
	if cfg.Count <= 0 {
		cfg.Count = 16
	}
	if len(cfg.Buckets) == 0 {
		cfg.Buckets = LatencyBuckets
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	w := &Windows{
		width:  int64(cfg.Width),
		n:      cfg.Count,
		now:    cfg.Now,
		bounds: cfg.Buckets,
		slots:  make([]wslot, cfg.Count),
	}
	for i := range w.slots {
		w.slots[i] = wslot{epoch: -1, counts: make([]int64, len(cfg.Buckets)+1)}
	}
	return w
}

// Span returns the total history the windows cover.
func (w *Windows) Span() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.width * int64(w.n))
}

// Observe records one observation into the current window.
func (w *Windows) Observe(v float64) {
	if w == nil {
		return
	}
	epoch := w.now() / w.width
	w.mu.Lock()
	s := &w.slots[epoch%int64(w.n)]
	if s.epoch != epoch {
		// The slot's previous window aged out: reset it in place.
		s.epoch = epoch
		s.count, s.sum = 0, 0
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i]++
	s.count++
	s.sum += v
	w.mu.Unlock()
}

// Snapshot merges every window still inside the rolling horizon (the
// current window included) into one histogram.
func (w *Windows) Snapshot() HistSnapshot {
	if w == nil {
		return HistSnapshot{}
	}
	epoch := w.now() / w.width
	oldest := epoch - int64(w.n) + 1
	out := HistSnapshot{
		Bounds: w.bounds,
		Counts: make([]int64, len(w.bounds)+1),
	}
	w.mu.Lock()
	for si := range w.slots {
		s := &w.slots[si]
		if s.epoch < oldest || s.epoch > epoch {
			continue
		}
		for i, c := range s.counts {
			out.Counts[i] += c
		}
		out.Count += s.count
		out.Sum += s.sum
	}
	w.mu.Unlock()
	return out
}

// SLO is a per-tenant latency objective: Target fraction of jobs should
// finish within Objective seconds.
type SLO struct {
	// Objective is the latency threshold in seconds.
	Objective float64
	// Target is the fraction of jobs that must meet it (default 0.99 when
	// zero). The error budget is 1 - Target.
	Target float64
}

// BurnRate returns how fast the error budget burns over the snapshot's
// horizon: the observed bad-event fraction divided by the budget. 1.0
// means exactly on budget; >1 means the objective will be violated if the
// window's traffic is representative; 0 when the snapshot is empty or the
// SLO is unset.
func (s SLO) BurnRate(snap HistSnapshot) float64 {
	if s.Objective <= 0 || snap.Count == 0 {
		return 0
	}
	target := s.Target
	if target <= 0 {
		target = 0.99
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-6
	}
	return snap.FracAbove(s.Objective) / budget
}
