// Package vtime provides the virtual-time primitives used by the
// performance simulator: a seconds-based Time type with convenient unit
// constructors, and a small event queue for discrete-event scheduling.
package vtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in (or duration of) virtual time, in seconds. The
// simulator works in float64 seconds rather than integer nanoseconds
// because modeled rates (bytes/s shared across cores) are continuous.
type Time float64

// Unit constructors.
func Seconds(s float64) Time      { return Time(s) }
func Milliseconds(m float64) Time { return Time(m * 1e-3) }
func Microseconds(u float64) Time { return Time(u * 1e-6) }
func Nanoseconds(n float64) Time  { return Time(n * 1e-9) }

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Nanoseconds returns the time as float64 nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) * 1e9 }

// Inf is a time later than any event.
const Inf = Time(math.MaxFloat64)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	s := float64(t)
	switch {
	case s == math.MaxFloat64:
		return "inf"
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3fus", s*1e6)
	default:
		return fmt.Sprintf("%.1fns", s*1e9)
	}
}

// Event is an entry in an EventQueue.
type Event struct {
	At      Time
	Payload any
}

// EventQueue is a min-heap of events ordered by time. Ties are broken by
// insertion order, so simulations are deterministic.
type EventQueue struct {
	h eventHeap
}

// Push adds an event.
func (q *EventQueue) Push(at Time, payload any) {
	heap.Push(&q.h, eventEntry{Event{at, payload}, q.h.nextSeq()})
}

// Pop removes and returns the earliest event. It panics on an empty queue.
func (q *EventQueue) Pop() Event {
	if q.Len() == 0 {
		panic("vtime.EventQueue: pop from empty queue")
	}
	return heap.Pop(&q.h).(eventEntry).Event
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Event, bool) {
	if q.Len() == 0 {
		return Event{}, false
	}
	return q.h.entries[0].Event, true
}

// Len returns the number of queued events.
func (q *EventQueue) Len() int { return len(q.h.entries) }

type eventEntry struct {
	Event
	seq uint64
}

type eventHeap struct {
	entries []eventEntry
	seq     uint64
}

func (h *eventHeap) nextSeq() uint64 { h.seq++; return h.seq }

func (h *eventHeap) Len() int { return len(h.entries) }
func (h *eventHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}
func (h *eventHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *eventHeap) Push(x any)    { h.entries = append(h.entries, x.(eventEntry)) }
func (h *eventHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}
