package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUnitConstructors(t *testing.T) {
	if Seconds(1.5) != 1.5 {
		t.Fatal("Seconds")
	}
	if Milliseconds(2) != Time(2e-3) {
		t.Fatal("Milliseconds")
	}
	if Microseconds(3) != Time(3e-6) {
		t.Fatal("Microseconds")
	}
	if Nanoseconds(4) != Time(4e-9) {
		t.Fatal("Nanoseconds")
	}
	if Seconds(2).Nanoseconds() != 2e9 {
		t.Fatal("Nanoseconds()")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		Seconds(1.5):       "1.500s",
		Milliseconds(2.25): "2.250ms",
		Microseconds(7):    "7.000us",
		Nanoseconds(12):    "12.0ns",
		Inf:                "inf",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(v), got, want)
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload.(string))
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("pop order %v", got)
	}
}

func TestEventQueueFIFOTies(t *testing.T) {
	var q EventQueue
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("tie order broken: got %d at position %d", got, i)
		}
	}
}

func TestEventQueuePeekAndEmpty(t *testing.T) {
	var q EventQueue
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
	q.Push(7, "x")
	e, ok := q.Peek()
	if !ok || e.At != 7 || q.Len() != 1 {
		t.Fatalf("Peek: %v %v len=%d", e, ok, q.Len())
	}
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	q.Pop()
}

// Property: events always pop in non-decreasing time order.
func TestPropEventQueueSorted(t *testing.T) {
	f := func(times []uint16) bool {
		var q EventQueue
		for _, v := range times {
			q.Push(Time(v), nil)
		}
		var got []float64
		for q.Len() > 0 {
			got = append(got, q.Pop().At.Seconds())
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var q EventQueue
	last := Time(-1)
	pushed, popped := 0, 0
	for i := 0; i < 2000; i++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			// Events may only be scheduled at or after the current time.
			q.Push(last+Time(rng.Float64()), nil)
			pushed++
		} else {
			e := q.Pop()
			popped++
			if e.At < last {
				t.Fatalf("time went backwards: %v after %v", e.At, last)
			}
			last = e.At
		}
	}
	if popped == 0 || pushed == 0 {
		t.Fatal("degenerate test run")
	}
}
