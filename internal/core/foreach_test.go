package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestForEachAppliesToEveryElement(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, n := range testSizes {
			s := iota(n)
			ForEach(p, s, func(v *float64) { *v *= 2 })
			for i, v := range s {
				if v != 2*float64(i+1) {
					t.Fatalf("n=%d: s[%d] = %v", n, i, v)
				}
			}
		}
	})
}

func TestForEachKernelMatchesPaper(t *testing.T) {
	// The paper's for_each kernel (Listing 1): run k_it increments and
	// store the result into the element.
	kit := 37
	kernel := func(v *float64) {
		var a float64
		for i := 0; i < kit; i++ {
			a++
		}
		*v = a
	}
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(5000)
		ForEach(p, s, kernel)
		for i, v := range s {
			if v != float64(kit) {
				t.Fatalf("s[%d] = %v, want %d", i, v, kit)
			}
		}
	})
}

func TestForEachIndex(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 10000)
		ForEachIndex(p, s, func(i int, v *int) { *v = i * i })
		for i, v := range s {
			if v != i*i {
				t.Fatalf("s[%d] = %d", i, v)
			}
		}
	})
}

func TestForEachN(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 100)
		got := ForEachN(p, s, 60, func(v *int) { *v = 1 })
		if got != 60 {
			t.Fatalf("ForEachN returned %d", got)
		}
		for i, v := range s {
			want := 0
			if i < 60 {
				want = 1
			}
			if v != want {
				t.Fatalf("s[%d] = %d, want %d", i, v, want)
			}
		}
	})
}

func TestForEachNPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 11} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d: no panic", n)
				}
			}()
			ForEachN(Seq(), make([]int, 10), n, func(*int) {})
		}()
	}
}

func TestGenerateIsDeterministicAcrossPolicies(t *testing.T) {
	want := make([]int, 8192)
	Generate(Seq(), want, func(i int) int { return i*31 + 7 })
	forEachPolicy(t, func(t *testing.T, p Policy) {
		got := make([]int, len(want))
		Generate(p, got, func(i int) int { return i*31 + 7 })
		if !equalSlices(got, want) {
			t.Fatal("parallel Generate differs from sequential")
		}
	})
}

func TestGenerateN(t *testing.T) {
	s := make([]int, 10)
	n := GenerateN(Seq(), s, 4, func(i int) int { return i + 1 })
	if n != 4 || !equalSlices(s, []int{1, 2, 3, 4, 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("GenerateN: n=%d s=%v", n, s)
	}
}

func TestFillAndFillN(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 9999)
		Fill(p, s, 42)
		for i, v := range s {
			if v != 42 {
				t.Fatalf("s[%d] = %d", i, v)
			}
		}
		FillN(p, s, 100, 7)
		if s[99] != 7 || s[100] != 42 {
			t.Fatalf("FillN boundary: s[99]=%d s[100]=%d", s[99], s[100])
		}
	})
}

func TestForEachEachElementVisitedExactlyOnce(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(1))
		n := 5000 + rng.Intn(5000)
		visits := make([]atomic.Int32, n)
		s := make([]int, n)
		ForEachIndex(p, s, func(i int, _ *int) { visits[i].Add(1) })
		for i := range visits {
			if c := visits[i].Load(); c != 1 {
				t.Fatalf("element %d visited %d times", i, c)
			}
		}
	})
}
