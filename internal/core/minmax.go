package core

// MinElement returns the index of the first minimum element of s under
// less, or -1 for an empty slice (std::min_element).
func MinElement[T any](p Policy, s []T, less func(a, b T) bool) int {
	return extremeElement(p, s, less, false)
}

// MaxElement returns the index of the first maximum element of s under
// less, or -1 for an empty slice (std::max_element).
func MaxElement[T any](p Policy, s []T, less func(a, b T) bool) int {
	return extremeElement(p, s, less, true)
}

// extremeElement finds the first index holding the extreme value. For max,
// C++ returns the *first* of equal maxima, which the strict "is better"
// predicate below preserves across chunk combination.
func extremeElement[T any](p Policy, s []T, less func(a, b T) bool, wantMax bool) int {
	n := len(s)
	if n == 0 {
		return -1
	}
	better := func(a, b T) bool { // a strictly better than b
		if wantMax {
			return less(b, a)
		}
		return less(a, b)
	}
	seqScan := func(lo, hi int) int {
		best := lo
		for i := lo + 1; i < hi; i++ {
			if better(s[i], s[best]) {
				best = i
			}
		}
		return best
	}
	if !p.parallel(n) {
		return seqScan(0, n)
	}
	chunks := p.Chunks(n)
	partial := make([]int, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		partial[ci] = seqScan(chunks.At(ci).Lo, chunks.At(ci).Hi)
	})
	best := partial[0]
	for _, idx := range partial[1:] {
		if better(s[idx], s[best]) {
			best = idx
		}
	}
	return best
}

// MinMaxElement returns the indices of the first minimum and the last
// maximum element of s under less, or (-1, -1) for an empty slice
// (std::minmax_element, which returns the *last* maximum).
func MinMaxElement[T any](p Policy, s []T, less func(a, b T) bool) (minIdx, maxIdx int) {
	n := len(s)
	if n == 0 {
		return -1, -1
	}
	type mm struct{ lo, hi int }
	seqScan := func(lo, hi int) mm {
		r := mm{lo, lo}
		for i := lo + 1; i < hi; i++ {
			if less(s[i], s[r.lo]) {
				r.lo = i
			}
			if !less(s[i], s[r.hi]) { // last max: ties move forward
				r.hi = i
			}
		}
		return r
	}
	if !p.parallel(n) {
		r := seqScan(0, n)
		return r.lo, r.hi
	}
	chunks := p.Chunks(n)
	partial := make([]mm, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		partial[ci] = seqScan(chunks.At(ci).Lo, chunks.At(ci).Hi)
	})
	best := partial[0]
	for _, r := range partial[1:] {
		if less(s[r.lo], s[best.lo]) {
			best.lo = r.lo
		}
		if !less(s[r.hi], s[best.hi]) {
			best.hi = r.hi
		}
	}
	return best.lo, best.hi
}
