package core

// Transform applies fn to every element of src and stores the results in
// dst (std::transform, unary form). dst must be at least as long as src and
// may alias it.
func Transform[T, U any](p Policy, dst []U, src []T, fn func(T) U) {
	if len(dst) < len(src) {
		panic("core.Transform: dst shorter than src")
	}
	n := len(src)
	if !p.parallel(n) {
		for i, v := range src {
			dst[i] = fn(v)
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = fn(src[i])
		}
	})
}

// TransformBinary applies fn pairwise to a and b and stores the results in
// dst (std::transform, binary form). a and b must have equal length; dst
// must be at least that long.
func TransformBinary[T, V, U any](p Policy, dst []U, a []T, b []V, fn func(T, V) U) {
	if len(a) != len(b) {
		panic("core.TransformBinary: length mismatch")
	}
	if len(dst) < len(a) {
		panic("core.TransformBinary: dst too short")
	}
	n := len(a)
	if !p.parallel(n) {
		for i := range a {
			dst[i] = fn(a[i], b[i])
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = fn(a[i], b[i])
		}
	})
}

// Replace substitutes every element equal to old with new_ (std::replace).
func Replace[T comparable](p Policy, s []T, old, new_ T) {
	ForEach(p, s, func(e *T) {
		if *e == old {
			*e = new_
		}
	})
}

// ReplaceIf substitutes every element satisfying pred with v
// (std::replace_if).
func ReplaceIf[T any](p Policy, s []T, pred func(T) bool, v T) {
	ForEach(p, s, func(e *T) {
		if pred(*e) {
			*e = v
		}
	})
}

// ReplaceCopy copies src into dst substituting old with new_
// (std::replace_copy).
func ReplaceCopy[T comparable](p Policy, dst, src []T, old, new_ T) {
	Transform(p, dst, src, func(v T) T {
		if v == old {
			return new_
		}
		return v
	})
}
