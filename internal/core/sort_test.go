package core

import (
	"math/rand"
	"slices"
	"testing"
)

func shuffledPermutation(rng *rand.Rand, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i + 1
	}
	rng.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
	return s
}

func TestSortPaperScenario(t *testing.T) {
	// The paper's X::sort: v is a random permutation of [1..n].
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(23))
		for _, n := range []int{0, 1, 2, 100, 4096, 4097, 50000} {
			s := shuffledPermutation(rng, n)
			Sort(p, s)
			for i, v := range s {
				if v != i+1 {
					t.Fatalf("n=%d: s[%d] = %d", n, i, v)
				}
			}
		}
	})
}

func TestSortFuncWithDuplicates(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(29))
		s := randomInts(rng, 30000, 100)
		want := slices.Clone(s)
		slices.Sort(want)
		SortFunc(p, s, intLess)
		if !equalSlices(s, want) {
			t.Fatal("SortFunc result differs from slices.Sort")
		}
	})
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		n := 20000
		asc := make([]int, n)
		for i := range asc {
			asc[i] = i
		}
		desc := make([]int, n)
		for i := range desc {
			desc[i] = n - i
		}
		Sort(p, asc)
		Sort(p, desc)
		if !IsSorted(Seq(), asc, intLess) || !IsSorted(Seq(), desc, intLess) {
			t.Fatal("sorted/reversed input not sorted")
		}
	})
}

type pair struct{ key, seq int }

func TestStableSortPreservesEqualOrder(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(31))
		s := make([]pair, 30000)
		for i := range s {
			s[i] = pair{key: rng.Intn(20), seq: i}
		}
		StableSort(p, s, func(a, b pair) bool { return a.key < b.key })
		for i := 1; i < len(s); i++ {
			if s[i-1].key > s[i].key {
				t.Fatalf("not sorted at %d", i)
			}
			if s[i-1].key == s[i].key && s[i-1].seq >= s[i].seq {
				t.Fatalf("stability violated at %d: seq %d then %d", i, s[i-1].seq, s[i].seq)
			}
		}
	})
}

func TestMerge(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(37))
		for _, sizes := range [][2]int{{0, 0}, {0, 5}, {5, 0}, {1, 1}, {1000, 3000}, {20000, 20000}, {17, 40000}} {
			a := randomInts(rng, sizes[0], 1000)
			b := randomInts(rng, sizes[1], 1000)
			slices.Sort(a)
			slices.Sort(b)
			dst := make([]int, len(a)+len(b))
			Merge(p, dst, a, b, intLess)
			want := append(append([]int{}, a...), b...)
			slices.Sort(want)
			if !equalSlices(dst, want) {
				t.Fatalf("sizes %v: merge mismatch", sizes)
			}
		}
	})
}

func TestMergeStability(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		// a-elements carry seq < 100000; b-elements >= 100000. For equal
		// keys, all a's must precede all b's.
		mk := func(n, base int, rng *rand.Rand) []pair {
			s := make([]pair, n)
			for i := range s {
				s[i] = pair{key: rng.Intn(8), seq: base + i}
			}
			slices.SortStableFunc(s, func(x, y pair) int { return x.key - y.key })
			return s
		}
		rng := rand.New(rand.NewSource(41))
		a := mk(15000, 0, rng)
		b := mk(15000, 100000, rng)
		dst := make([]pair, len(a)+len(b))
		Merge(p, dst, a, b, func(x, y pair) bool { return x.key < y.key })
		for i := 1; i < len(dst); i++ {
			x, y := dst[i-1], dst[i]
			if x.key > y.key {
				t.Fatalf("not sorted at %d", i)
			}
			if x.key == y.key {
				// Within a source: ascending seq. Across sources: a first.
				if (x.seq < 100000) == (y.seq < 100000) {
					if x.seq >= y.seq {
						t.Fatalf("within-source order violated at %d", i)
					}
				} else if x.seq >= 100000 {
					t.Fatalf("b-element before equal a-element at %d", i)
				}
			}
		}
	})
}

func TestMergePanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Merge(Seq(), make([]int, 3), []int{1}, []int{2}, intLess)
}

func TestInplaceMerge(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(43))
		s := randomInts(rng, 30000, 500)
		mid := 13000
		slices.Sort(s[:mid])
		slices.Sort(s[mid:])
		want := slices.Clone(s)
		slices.Sort(want)
		InplaceMerge(p, s, mid, intLess)
		if !equalSlices(s, want) {
			t.Fatal("inplace merge mismatch")
		}
		// Degenerate mids.
		s2 := []int{3, 1, 2}
		InplaceMerge(p, s2, 0, intLess)
		InplaceMerge(p, s2, 3, intLess)
		if !equalSlices(s2, []int{3, 1, 2}) {
			t.Fatal("degenerate mid mutated slice")
		}
	})
}

func TestIsSortedAndUntil(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(30000)
		less := func(a, b float64) bool { return a < b }
		if !IsSorted(p, s, less) {
			t.Fatal("sorted slice reported unsorted")
		}
		if got := IsSortedUntil(p, s, less); got != len(s) {
			t.Fatalf("IsSortedUntil = %d", got)
		}
		s[20000] = 0
		if IsSorted(p, s, less) {
			t.Fatal("unsorted slice reported sorted")
		}
		if got := IsSortedUntil(p, s, less); got != 20000 {
			t.Fatalf("IsSortedUntil = %d, want 20000", got)
		}
		if !IsSorted(p, []float64{}, less) || !IsSorted(p, []float64{1}, less) {
			t.Fatal("degenerate inputs not sorted")
		}
	})
}

func TestNthElement(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(47))
		for _, n := range []int{1, 2, 100, 20000} {
			for trial := 0; trial < 3; trial++ {
				s := randomInts(rng, n, 300)
				k := rng.Intn(n)
				want := slices.Clone(s)
				slices.Sort(want)
				NthElement(p, s, k, intLess)
				if s[k] != want[k] {
					t.Fatalf("n=%d k=%d: s[k]=%d want %d", n, k, s[k], want[k])
				}
				for i := 0; i < k; i++ {
					if s[i] > s[k] {
						t.Fatalf("element before k greater than s[k]")
					}
				}
				for i := k + 1; i < n; i++ {
					if s[i] < s[k] {
						t.Fatalf("element after k less than s[k]")
					}
				}
			}
		}
	})
}

func TestPartialSort(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(53))
		s := randomInts(rng, 25000, 10000)
		want := slices.Clone(s)
		slices.Sort(want)
		k := 500
		PartialSort(p, s, k, intLess)
		if !equalSlices(s[:k], want[:k]) {
			t.Fatal("first k elements not the k smallest in order")
		}
	})
}

func TestPartialSortCopy(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(59))
		src := randomInts(rng, 20000, 10000)
		orig := slices.Clone(src)
		want := slices.Clone(src)
		slices.Sort(want)
		dst := make([]int, 300)
		n := PartialSortCopy(p, dst, src, intLess)
		if n != 300 || !equalSlices(dst, want[:300]) {
			t.Fatalf("PartialSortCopy n=%d mismatch", n)
		}
		if !equalSlices(src, orig) {
			t.Fatal("PartialSortCopy mutated src")
		}
		// dst longer than src.
		short := []int{3, 1, 2}
		big := make([]int, 10)
		n = PartialSortCopy(p, big, short, intLess)
		if n != 3 || !equalSlices(big[:3], []int{1, 2, 3}) {
			t.Fatalf("short src: n=%d big=%v", n, big[:3])
		}
	})
}

func TestIsHeap(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		heap := []int{9, 7, 8, 3, 5, 6, 4}
		if !IsHeap(p, heap, intLess) {
			t.Fatal("valid heap rejected")
		}
		if got := IsHeapUntil(p, heap, intLess); got != len(heap) {
			t.Fatalf("IsHeapUntil = %d", got)
		}
		notHeap := []int{9, 7, 8, 3, 5, 10, 4}
		if IsHeap(p, notHeap, intLess) {
			t.Fatal("invalid heap accepted")
		}
		if got := IsHeapUntil(p, notHeap, intLess); got != 5 {
			t.Fatalf("IsHeapUntil = %d, want 5", got)
		}
		if !IsHeap(p, []int{}, intLess) || !IsHeap(p, []int{1}, intLess) {
			t.Fatal("degenerate heaps rejected")
		}
	})
}

func TestSortLargeUnderFineGrain(t *testing.T) {
	// Stress the merge recursion with a pool smaller than the task tree.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(61))
		s := shuffledPermutation(rng, 1<<17)
		Sort(p, s)
		for i, v := range s {
			if v != i+1 {
				t.Fatalf("s[%d] = %d", i, v)
			}
		}
	})
}
