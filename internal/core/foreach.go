package core

// ForEach applies fn to every element of s, possibly in parallel
// (std::for_each). fn receives a pointer so it can mutate the element in
// place, matching the paper's for_each kernel which stores its result back
// into the input array.
func ForEach[T any](p Policy, s []T, fn func(*T)) {
	n := len(s)
	if !p.parallel(n) {
		for i := range s {
			fn(&s[i])
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(&s[i])
		}
	})
}

// ForEachIndex applies fn to every index/element pair of s, possibly in
// parallel. It is the index-aware variant used when the kernel depends on
// the element position.
func ForEachIndex[T any](p Policy, s []T, fn func(i int, v *T)) {
	n := len(s)
	if !p.parallel(n) {
		for i := range s {
			fn(i, &s[i])
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i, &s[i])
		}
	})
}

// ForEachN applies fn to the first n elements of s (std::for_each_n) and
// returns n. It panics if n exceeds len(s) or is negative.
func ForEachN[T any](p Policy, s []T, n int, fn func(*T)) int {
	if n < 0 || n > len(s) {
		panic("core.ForEachN: n out of range")
	}
	ForEach(p, s[:n], fn)
	return n
}

// Generate assigns the result of successive gen calls to every element of s
// (std::generate). gen receives the element index so parallel generation is
// deterministic: gen must be a pure function of the index.
func Generate[T any](p Policy, s []T, gen func(i int) T) {
	ForEachIndex(p, s, func(i int, v *T) { *v = gen(i) })
}

// GenerateN assigns gen(i) to the first n elements of s (std::generate_n)
// and returns n.
func GenerateN[T any](p Policy, s []T, n int, gen func(i int) T) int {
	if n < 0 || n > len(s) {
		panic("core.GenerateN: n out of range")
	}
	Generate(p, s[:n], gen)
	return n
}

// Fill assigns v to every element of s (std::fill).
func Fill[T any](p Policy, s []T, v T) {
	ForEach(p, s, func(e *T) { *e = v })
}

// FillN assigns v to the first n elements of s (std::fill_n) and returns n.
func FillN[T any](p Policy, s []T, n int, v T) int {
	if n < 0 || n > len(s) {
		panic("core.FillN: n out of range")
	}
	Fill(p, s[:n], v)
	return n
}
