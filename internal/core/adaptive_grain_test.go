package core

import (
	"math/rand"
	"testing"

	"pstlbench/internal/exec"
	"pstlbench/internal/native"
)

// flipFlopGrains alternates between a coarse and a very fine grain on
// every Grain() call, simulating an adaptive tuner revising its proposal
// while an algorithm is mid-call. The multi-phase algorithms (copy-if,
// the scans, stable partition) derive every phase from ONE decomposition
// asked for at entry, so per-chunk intermediates must line up even when
// the source would answer differently between phases — these tests pin
// that contract at the chunk boundaries where it breaks.
type flipFlopGrains struct{ calls int }

func (g *flipFlopGrains) Grain(n, workers int) exec.Grain {
	g.calls++
	if g.calls%2 == 1 {
		return exec.Grain{ChunksPerWorker: 1}
	}
	return exec.Grain{ChunksPerWorker: 32, MaxChunk: 7}
}

func flipFlopPolicy(t *testing.T) (Policy, *flipFlopGrains) {
	t.Helper()
	pool := native.New(4, native.StrategyStealing)
	t.Cleanup(pool.Close)
	src := &flipFlopGrains{}
	return Par(pool).WithGrainSource(src), src
}

func TestCopyIfStableUnderShiftingGrains(t *testing.T) {
	p, gs := flipFlopPolicy(t)
	rng := rand.New(rand.NewSource(91))
	even := func(v int) bool { return v%2 == 0 }
	for rep := 0; rep < 4; rep++ {
		for _, n := range testSizes {
			src := randomInts(rng, n, 100)
			want := []int{}
			for _, v := range src {
				if even(v) {
					want = append(want, v)
				}
			}
			dst := make([]int, n)
			got := CopyIf(p, dst, src, even)
			if got != len(want) || !equalSlices(dst[:got], want) {
				t.Fatalf("rep=%d n=%d: CopyIf under shifting grains: got %d, want %d", rep, n, got, len(want))
			}
		}
	}
	if gs.calls < 2 {
		t.Fatalf("grain source consulted %d times, test exercised nothing", gs.calls)
	}
}

func TestTransformExclusiveScanStableUnderShiftingGrains(t *testing.T) {
	p, gs := flipFlopPolicy(t)
	add := func(a, b float64) float64 { return a + b }
	square := func(v float64) float64 { return v * v }
	for rep := 0; rep < 4; rep++ {
		for _, n := range testSizes {
			src := iota(n)
			want := make([]float64, n)
			acc := 10.0
			for i, v := range src {
				want[i] = acc
				acc += square(v)
			}
			dst := make([]float64, n)
			TransformExclusiveScan(p, dst, src, 10.0, add, square)
			if !equalSlices(dst, want) {
				t.Fatalf("rep=%d n=%d: TransformExclusiveScan under shifting grains diverged", rep, n)
			}
		}
	}
	if gs.calls < 2 {
		t.Fatalf("grain source consulted %d times, test exercised nothing", gs.calls)
	}
}
