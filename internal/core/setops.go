package core

import "sync/atomic"

// The set algorithms operate on sorted ranges. Their outputs have
// data-dependent positions, which makes them the least parallel-friendly
// algorithms in the STL; like several of the C++ backends the paper
// surveys, this implementation parallelizes only the verification-style
// operations (Includes) and runs the merging set operations sequentially.

// Includes reports whether the sorted range a contains every element of the
// sorted range b, multiset-style (std::includes).
func Includes[T any](p Policy, a, b []T, less func(x, y T) bool) bool {
	if len(b) == 0 {
		return true
	}
	if len(a) == 0 {
		return false
	}
	if !p.parallel(len(b)) || len(b) < 4 {
		return includesSeq(a, b, less)
	}
	// Split b into chunks; each chunk must be included in the sub-range
	// of a bracketing it. Chunks verify independently: multiset
	// inclusion is NOT chunk-decomposable at equal-run boundaries, so
	// chunks are extended to cover whole equal-runs of b.
	chunks := p.Chunks(len(b))
	bounds := make([]int, chunks.Len()+1)
	for ci := 1; ci < chunks.Len(); ci++ {
		lo := chunks.At(ci).Lo
		// Move the boundary forward past the current equal-run.
		for lo < len(b) && lo > 0 && !less(b[lo-1], b[lo]) {
			lo++
		}
		bounds[ci] = lo
	}
	bounds[chunks.Len()] = len(b)
	var failed atomic.Bool
	p.ForEachChunk(chunks, func(ci int) {
		lo, hi := bounds[ci], bounds[ci+1]
		if lo >= hi {
			return
		}
		// Bracket the relevant part of a: everything >= b[lo] and
		// <= b[hi-1].
		alo := lowerBound(a, b[lo], less)
		ahi := upperBound(a, b[hi-1], less)
		if !includesSeq(a[alo:ahi], b[lo:hi], less) {
			failed.Store(true)
		}
	})
	return !failed.Load()
}

func includesSeq[T any](a, b []T, less func(x, y T) bool) bool {
	i := 0
	for _, v := range b {
		for i < len(a) && less(a[i], v) {
			i++
		}
		if i >= len(a) || less(v, a[i]) {
			return false
		}
		i++
	}
	return true
}

// SetUnion writes the sorted multiset union of a and b into dst[:0] and
// returns the number of elements written (std::set_union). dst must have
// capacity len(a)+len(b) in the worst case.
func SetUnion[T any](p Policy, dst, a, b []T, less func(x, y T) bool) int {
	_ = p // merging set operations run sequentially; see package comment
	dst = dst[:cap(dst)]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case less(a[i], b[j]):
			dst[k] = a[i]
			i++
		case less(b[j], a[i]):
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	k += copy(dst[k:], b[j:])
	return k
}

// SetIntersection writes the sorted multiset intersection of a and b into
// dst[:0] and returns the count (std::set_intersection). dst must have
// capacity min(len(a), len(b)).
func SetIntersection[T any](p Policy, dst, a, b []T, less func(x, y T) bool) int {
	_ = p
	dst = dst[:cap(dst)]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case less(a[i], b[j]):
			i++
		case less(b[j], a[i]):
			j++
		default:
			dst[k] = a[i]
			i++
			j++
			k++
		}
	}
	return k
}

// SetDifference writes the sorted multiset difference a − b into dst[:0]
// and returns the count (std::set_difference). dst must have capacity
// len(a).
func SetDifference[T any](p Policy, dst, a, b []T, less func(x, y T) bool) int {
	_ = p
	dst = dst[:cap(dst)]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case less(a[i], b[j]):
			dst[k] = a[i]
			i++
			k++
		case less(b[j], a[i]):
			j++
		default:
			i++
			j++
		}
	}
	k += copy(dst[k:], a[i:])
	return k
}

// SetSymmetricDifference writes the sorted multiset symmetric difference of
// a and b into dst[:0] and returns the count
// (std::set_symmetric_difference). dst must have capacity len(a)+len(b).
func SetSymmetricDifference[T any](p Policy, dst, a, b []T, less func(x, y T) bool) int {
	_ = p
	dst = dst[:cap(dst)]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case less(a[i], b[j]):
			dst[k] = a[i]
			i++
			k++
		case less(b[j], a[i]):
			dst[k] = b[j]
			j++
			k++
		default:
			i++
			j++
		}
	}
	k += copy(dst[k:], a[i:])
	k += copy(dst[k:], b[j:])
	return k
}
