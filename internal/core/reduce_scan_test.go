package core

import (
	"math/rand"
	"testing"
)

func TestSumMatchesClosedForm(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, n := range testSizes {
			s := iota(n)
			got := Sum(p, s, 0)
			want := float64(n) * float64(n+1) / 2
			if got != want {
				t.Fatalf("n=%d: Sum = %v, want %v", n, got, want)
			}
		}
	})
}

func TestReduceWithInitAndOp(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 8192)
		for i := range s {
			s[i] = 1
		}
		got := Reduce(p, s, 100, func(a, b int) int { return a + b })
		if got != 100+8192 {
			t.Fatalf("Reduce = %d", got)
		}
		// Max as the reduction operator.
		rng := rand.New(rand.NewSource(3))
		r := randomInts(rng, 5000, 1<<20)
		gotMax := Reduce(p, r, -1, func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		wantMax := -1
		for _, v := range r {
			if v > wantMax {
				wantMax = v
			}
		}
		if gotMax != wantMax {
			t.Fatalf("max-reduce = %d, want %d", gotMax, wantMax)
		}
	})
}

func TestTransformReduce(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(4096)
		// Sum of squares.
		got := TransformReduce(p, s, 0.0,
			func(a, b float64) float64 { return a + b },
			func(v float64) float64 { return v * v })
		n := float64(len(s))
		want := n * (n + 1) * (2*n + 1) / 6
		if got != want {
			t.Fatalf("sum of squares = %v, want %v", got, want)
		}
	})
}

func TestTransformReduceBinaryInnerProduct(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := iota(3000)
		b := make([]float64, len(a))
		Fill(Seq(), b, 2)
		got := TransformReduceBinary(p, a, b, 0.0,
			func(x, y float64) float64 { return x + y },
			func(x, y float64) float64 { return x * y })
		n := float64(len(a))
		want := n * (n + 1) // 2 * sum(1..n)
		if got != want {
			t.Fatalf("inner product = %v, want %v", got, want)
		}
	})
}

func TestTransformReduceBinaryLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TransformReduceBinary(Seq(), []int{1}, []int{1, 2}, 0,
		func(a, b int) int { return a + b }, func(a, b int) int { return a * b })
}

func TestReduceEmpty(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		if got := Sum(p, []int{}, 5); got != 5 {
			t.Fatalf("empty Sum = %d, want init", got)
		}
	})
}

func TestInclusiveScanMatchesSequential(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(11))
		for _, n := range testSizes {
			src := randomInts(rng, n, 100)
			want := make([]int, n)
			acc := 0
			for i, v := range src {
				acc += v
				want[i] = acc
			}
			dst := make([]int, n)
			InclusiveSum(p, dst, src)
			if !equalSlices(dst, want) {
				t.Fatalf("n=%d: inclusive scan mismatch", n)
			}
		}
	})
}

func TestInclusiveScanInPlace(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(20000)
		InclusiveSum(p, s, s)
		for i := 0; i < len(s); i += 997 {
			k := float64(i + 1)
			if want := k * (k + 1) / 2; s[i] != want {
				t.Fatalf("s[%d] = %v, want %v", i, s[i], want)
			}
		}
	})
}

func TestInclusiveScanNonCommutativeOp(t *testing.T) {
	// String concatenation is associative but not commutative: any
	// reordering bug in the two-phase scan shows up immediately.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := make([]string, 500)
		for i := range src {
			src[i] = string(rune('a' + i%26))
		}
		dst := make([]string, len(src))
		InclusiveScan(p, dst, src, func(a, b string) string { return a + b })
		want := ""
		for i, v := range src {
			want += v
			if dst[i] != want {
				t.Fatalf("prefix %d mismatch", i)
			}
		}
	})
}

func TestExclusiveScan(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(13))
		for _, n := range testSizes {
			src := randomInts(rng, n, 100)
			want := make([]int, n)
			acc := 10
			for i, v := range src {
				want[i] = acc
				acc += v
			}
			dst := make([]int, n)
			ExclusiveScan(p, dst, src, 10, func(a, b int) int { return a + b })
			if !equalSlices(dst, want) {
				t.Fatalf("n=%d: exclusive scan mismatch", n)
			}
		}
	})
}

func TestExclusiveScanInPlace(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 10000)
		Fill(Seq(), s, 1)
		ExclusiveScan(p, s, s, 0, func(a, b int) int { return a + b })
		for i, v := range s {
			if v != i {
				t.Fatalf("s[%d] = %d", i, v)
			}
		}
	})
}

func TestTransformScans(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := iota(5000)
		dst := make([]float64, len(src))
		TransformInclusiveScan(p, dst, src,
			func(a, b float64) float64 { return a + b },
			func(v float64) float64 { return 2 * v })
		n := float64(1000)
		if want := n * (n + 1); dst[999] != want {
			t.Fatalf("transform inclusive scan: dst[999] = %v, want %v", dst[999], want)
		}
		TransformExclusiveScan(p, dst, src, 0.0,
			func(a, b float64) float64 { return a + b },
			func(v float64) float64 { return 2 * v })
		if want := n * (n - 1); dst[999] != float64(999)*1000 {
			t.Fatalf("transform exclusive scan: dst[999] = %v, want %v", dst[999], want)
		}
	})
}

func TestScanLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"inclusive": func() { InclusiveSum(Seq(), make([]int, 3), make([]int, 4)) },
		"exclusive": func() { ExclusiveScan(Seq(), make([]int, 5), make([]int, 4), 0, func(a, b int) int { return a + b }) },
	} {
		name, fn := name, fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdjacentDifference(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := make([]int, 30000)
		for i := range src {
			src[i] = i * i
		}
		dst := make([]int, len(src))
		AdjacentDifference(p, dst, src, func(cur, prev int) int { return cur - prev })
		if dst[0] != 0 {
			t.Fatalf("dst[0] = %d", dst[0])
		}
		for i := 1; i < len(dst); i += 631 {
			if want := 2*i - 1; dst[i] != want {
				t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
			}
		}
	})
}

func TestAdjacentDifferenceInPlaceAliased(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{1, 4, 9, 16, 25}
		AdjacentDifference(p, s, s, func(cur, prev int) int { return cur - prev })
		if !equalSlices(s, []int{1, 3, 5, 7, 9}) {
			t.Fatalf("aliased adjacent difference = %v", s)
		}
	})
}

func TestScanReconstructsAdjacentDifference(t *testing.T) {
	// InclusiveScan(AdjacentDifference(x)) == x: a classic round-trip
	// identity linking the two algorithms.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(17))
		src := randomInts(rng, 12345, 1000)
		diff := make([]int, len(src))
		AdjacentDifference(p, diff, src, func(cur, prev int) int { return cur - prev })
		back := make([]int, len(src))
		InclusiveSum(p, back, diff)
		if !equalSlices(back, src) {
			t.Fatal("scan(adjacent_difference(x)) != x")
		}
	})
}
