package core

import (
	"cmp"
	"slices"
	"sort"
)

// sortLeafSize is the input size below which the parallel mergesort hands a
// sub-range to the sequential sort. It bounds task overhead the same way
// the TBB and GNU runtimes' sequential-fallback thresholds do (the paper
// observes both fall back below ~2^9 elements).
const sortLeafSize = 1 << 12

// Sort sorts s in ascending order (std::sort with execution policy). The
// parallel implementation is a stable mergesort — sequential leaf sorts
// followed by log(p) rounds of parallel merges — whose limited scalability
// is exactly the behaviour studied in the paper's X::sort experiments.
func Sort[T cmp.Ordered](p Policy, s []T) {
	SortFunc(p, s, func(a, b T) bool { return a < b })
}

// SortFunc sorts s under the strict weak ordering less.
func SortFunc[T any](p Policy, s []T, less func(a, b T) bool) {
	n := len(s)
	if !p.parallel(n) || n <= sortLeafSize {
		slices.SortFunc(s, lessToCmp(less))
		return
	}
	tmp := make([]T, n)
	parallelMergeSort(p, s, tmp, less, mergeDepth(p.workers()), false)
}

// StableSort sorts s preserving the relative order of equal elements
// (std::stable_sort). The parallel mergesort is naturally stable; only the
// leaf sort differs from SortFunc.
func StableSort[T any](p Policy, s []T, less func(a, b T) bool) {
	n := len(s)
	if !p.parallel(n) || n <= sortLeafSize {
		slices.SortStableFunc(s, lessToCmp(less))
		return
	}
	tmp := make([]T, n)
	parallelMergeSort(p, s, tmp, less, mergeDepth(p.workers()), true)
}

// lessToCmp adapts a less predicate to the three-way comparison the slices
// package expects. Equality is reported as 0 via double negation, which is
// exactly what a strict weak ordering guarantees.
func lessToCmp[T any](less func(a, b T) bool) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
}

// mergeDepth returns the recursion depth that yields at least one leaf per
// worker (2^depth >= workers).
func mergeDepth(workers int) int {
	d := 0
	for 1<<d < workers {
		d++
	}
	return d + 1 // one extra level so stealing has slack to balance
}

// parallelMergeSort sorts s in place using tmp (same length) as merge
// scratch.
func parallelMergeSort[T any](p Policy, s, tmp []T, less func(a, b T) bool, depth int, stable bool) {
	if p.Canceled() {
		return // abandon the subtree; the result is discarded by contract
	}
	if depth == 0 || len(s) <= sortLeafSize {
		if stable {
			slices.SortStableFunc(s, lessToCmp(less))
		} else {
			slices.SortFunc(s, lessToCmp(less))
		}
		return
	}
	mid := len(s) / 2
	p.pool().Do(
		func() { parallelMergeSort(p, s[:mid], tmp[:mid], less, depth-1, stable) },
		func() { parallelMergeSort(p, s[mid:], tmp[mid:], less, depth-1, stable) },
	)
	parallelMergeInto(p, tmp, s[:mid], s[mid:], less, depth)
	copyChunked(p, s, tmp)
}

// copyChunked is a parallel copy used inside the sort, bypassing the
// policy's sequential threshold (the surrounding sort already decided to be
// parallel).
func copyChunked[T any](p Policy, dst, src []T) {
	p.ParallelFor(len(src), func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Merge merges the sorted slices a and b into dst (std::merge). dst must
// have length len(a)+len(b) and must not overlap a or b. The merge is
// stable: equal elements are taken from a first.
func Merge[T any](p Policy, dst, a, b []T, less func(x, y T) bool) {
	if len(dst) != len(a)+len(b) {
		panic("core.Merge: dst length must be len(a)+len(b)")
	}
	if !p.parallel(len(dst)) {
		seqMerge(dst, a, b, less)
		return
	}
	parallelMergeInto(p, dst, a, b, less, mergeDepth(p.workers()))
}

// parallelMergeInto recursively splits the larger input at its median,
// binary-searches the split point in the other input, and merges the two
// halves concurrently — the classic divide-and-conquer parallel merge.
// Stability (equal elements of a before equal elements of b) is preserved
// by the asymmetric split rules: splitting on a's median uses lower_bound
// in b, splitting on b's median uses upper_bound in a.
func parallelMergeInto[T any](p Policy, dst, a, b []T, less func(x, y T) bool, depth int) {
	if p.Canceled() {
		return
	}
	if depth <= 0 || len(a)+len(b) <= sortLeafSize {
		seqMerge(dst, a, b, less)
		return
	}
	if len(a) >= len(b) {
		ma := len(a) / 2
		pivot := a[ma]
		mb := lowerBound(b, pivot, less) // b-elements equal to pivot go right of it
		dst[ma+mb] = pivot
		p.pool().Do(
			func() { parallelMergeInto(p, dst[:ma+mb], a[:ma], b[:mb], less, depth-1) },
			func() { parallelMergeInto(p, dst[ma+mb+1:], a[ma+1:], b[mb:], less, depth-1) },
		)
		return
	}
	mb := len(b) / 2
	pivot := b[mb]
	ma := upperBound(a, pivot, less) // a-elements equal to pivot go left of it
	dst[ma+mb] = pivot
	p.pool().Do(
		func() { parallelMergeInto(p, dst[:ma+mb], a[:ma], b[:mb], less, depth-1) },
		func() { parallelMergeInto(p, dst[ma+mb+1:], a[ma:], b[mb+1:], less, depth-1) },
	)
}

// lowerBound returns the first index i in sorted s with !less(s[i], v),
// i.e. the std::lower_bound insertion point for v.
func lowerBound[T any](s []T, v T, less func(x, y T) bool) int {
	return sort.Search(len(s), func(i int) bool { return !less(s[i], v) })
}

// upperBound returns the first index i in sorted s with less(v, s[i]),
// i.e. the std::upper_bound insertion point for v.
func upperBound[T any](s []T, v T, less func(x, y T) bool) int {
	return sort.Search(len(s), func(i int) bool { return less(v, s[i]) })
}

// seqMerge is the sequential stable merge of sorted a and b into dst.
func seqMerge[T any](dst, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// InplaceMerge merges the two consecutive sorted ranges s[:mid] and s[mid:]
// into a single sorted range (std::inplace_merge). Like libstdc++'s
// implementation, it uses a temporary buffer.
func InplaceMerge[T any](p Policy, s []T, mid int, less func(x, y T) bool) {
	if mid < 0 || mid > len(s) {
		panic("core.InplaceMerge: mid out of range")
	}
	if mid == 0 || mid == len(s) {
		return
	}
	tmp := make([]T, len(s))
	Merge(p, tmp, s[:mid], s[mid:], less)
	Copy(p, s, tmp)
}

// PartialSort rearranges s so that its first k elements are the k smallest
// in ascending order (std::partial_sort). The remainder is left in an
// unspecified order.
func PartialSort[T any](p Policy, s []T, k int, less func(a, b T) bool) {
	if k < 0 || k > len(s) {
		panic("core.PartialSort: k out of range")
	}
	if k == 0 {
		return
	}
	NthElement(p, s, k-1, less)
	SortFunc(p, s[:k], less)
}

// PartialSortCopy copies the min(len(dst), len(src)) smallest elements of
// src into dst in ascending order and returns that count
// (std::partial_sort_copy).
func PartialSortCopy[T any](p Policy, dst, src []T, less func(a, b T) bool) int {
	k := min(len(dst), len(src))
	if k == 0 {
		return 0
	}
	tmp := make([]T, len(src))
	Copy(p, tmp, src)
	PartialSort(p, tmp, k, less)
	Copy(p, dst[:k], tmp[:k])
	return k
}

// NthElement rearranges s so that s[k] holds the element that would be
// there if s were fully sorted, with everything before it no greater and
// everything after no smaller (std::nth_element). It is a quickselect whose
// partition step runs through the parallel compaction machinery.
func NthElement[T any](p Policy, s []T, k int, less func(a, b T) bool) {
	if k < 0 || k >= len(s) {
		panic("core.NthElement: k out of range")
	}
	for len(s) > 1 {
		if len(s) <= sortLeafSize || !p.parallel(len(s)) {
			slices.SortFunc(s, lessToCmp(less))
			return
		}
		pivot := medianOfThree(s, less)
		lt := make([]T, 0, len(s))
		eq := make([]T, 0, len(s))
		gt := make([]T, 0, len(s))
		nlt := CopyIf(p, lt, s, func(v T) bool { return less(v, pivot) })
		neq := CopyIf(p, eq, s, func(v T) bool { return !less(v, pivot) && !less(pivot, v) })
		ngt := CopyIf(p, gt, s, func(v T) bool { return less(pivot, v) })
		Copy(p, s, lt[:nlt])
		Copy(p, s[nlt:], eq[:neq])
		Copy(p, s[nlt+neq:], gt[:ngt])
		switch {
		case k < nlt:
			s = s[:nlt]
		case k < nlt+neq:
			return // k lands inside the pivot-equal block
		default:
			s = s[nlt+neq:]
			k -= nlt + neq
		}
	}
}

// medianOfThree picks the median of the first, middle, and last element.
func medianOfThree[T any](s []T, less func(a, b T) bool) T {
	a, b, c := s[0], s[len(s)/2], s[len(s)-1]
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			b = a
		}
	}
	return b
}

// IsHeapUntil returns the length of the longest prefix of s that forms a
// binary max-heap under less (std::is_heap_until).
func IsHeapUntil[T any](p Policy, s []T, less func(a, b T) bool) int {
	// Element i violates the heap property if it is greater than its
	// parent. The first violating child bounds the heap prefix.
	n := len(s)
	if n < 2 {
		return n
	}
	i := findFirstIndex(p, n-1, func(child int) bool {
		c := child + 1
		return less(s[(c-1)/2], s[c])
	})
	if i < 0 {
		return n
	}
	return i + 1
}

// IsHeap reports whether s forms a binary max-heap under less
// (std::is_heap).
func IsHeap[T any](p Policy, s []T, less func(a, b T) bool) bool {
	return IsHeapUntil(p, s, less) == len(s)
}
