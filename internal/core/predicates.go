package core

// AnyOf reports whether pred holds for at least one element of s
// (std::any_of). The parallel version exits early on the first witness.
func AnyOf[T any](p Policy, s []T, pred func(T) bool) bool {
	return FindIf(p, s, pred) >= 0
}

// AllOf reports whether pred holds for every element of s (std::all_of).
// It is vacuously true for an empty slice.
func AllOf[T any](p Policy, s []T, pred func(T) bool) bool {
	return FindIfNot(p, s, pred) < 0
}

// NoneOf reports whether pred holds for no element of s (std::none_of).
func NoneOf[T any](p Policy, s []T, pred func(T) bool) bool {
	return FindIf(p, s, pred) < 0
}

// Count returns the number of elements of s equal to v (std::count).
func Count[T comparable](p Policy, s []T, v T) int {
	return CountIf(p, s, func(e T) bool { return e == v })
}

// CountIf returns the number of elements of s satisfying pred
// (std::count_if). Per-chunk partial counts are combined in chunk order,
// so the result is deterministic.
func CountIf[T any](p Policy, s []T, pred func(T) bool) int {
	n := len(s)
	if !p.parallel(n) {
		c := 0
		for _, e := range s {
			if pred(e) {
				c++
			}
		}
		return c
	}
	chunks := p.Chunks(n)
	partial := make([]int, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := 0
		for _, e := range s[chunks.At(ci).Lo:chunks.At(ci).Hi] {
			if pred(e) {
				c++
			}
		}
		partial[ci] = c
	})
	total := 0
	for _, c := range partial {
		total += c
	}
	return total
}

// Mismatch returns the first index at which a and b differ, or -1 if one is
// a prefix of the other over min(len(a), len(b)) elements (std::mismatch).
func Mismatch[T comparable](p Policy, a, b []T) int {
	n := min(len(a), len(b))
	return findFirstIndex(p, n, func(i int) bool { return a[i] != b[i] })
}

// MismatchFunc is Mismatch with an explicit equality predicate.
func MismatchFunc[T any](p Policy, a, b []T, eq func(x, y T) bool) int {
	n := min(len(a), len(b))
	return findFirstIndex(p, n, func(i int) bool { return !eq(a[i], b[i]) })
}

// Equal reports whether a and b have the same length and equal elements
// (std::equal on equally-sized ranges).
func Equal[T comparable](p Policy, a, b []T) bool {
	return len(a) == len(b) && Mismatch(p, a, b) < 0
}

// EqualFunc is Equal with an explicit equality predicate.
func EqualFunc[T any](p Policy, a, b []T, eq func(x, y T) bool) bool {
	return len(a) == len(b) && MismatchFunc(p, a, b, eq) < 0
}

// LexicographicalCompare reports whether a is lexicographically less than b
// (std::lexicographical_compare).
func LexicographicalCompare[T any](p Policy, a, b []T, less func(x, y T) bool) bool {
	n := min(len(a), len(b))
	i := findFirstIndex(p, n, func(i int) bool { return less(a[i], b[i]) || less(b[i], a[i]) })
	if i >= 0 {
		return less(a[i], b[i])
	}
	return len(a) < len(b)
}

// IsSortedUntil returns the length of the longest sorted prefix of s under
// less (std::is_sorted_until, returned as a count rather than an iterator).
func IsSortedUntil[T any](p Policy, s []T, less func(a, b T) bool) int {
	i := AdjacentFind(p, s, func(a, b T) bool { return less(b, a) })
	if i < 0 {
		return len(s)
	}
	return i + 1
}

// IsSorted reports whether s is sorted under less (std::is_sorted).
func IsSorted[T any](p Policy, s []T, less func(a, b T) bool) bool {
	return IsSortedUntil(p, s, less) == len(s)
}
